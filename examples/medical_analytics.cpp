/**
 * @file
 * Private medical data analytics over an encrypted gene-expression
 * database -- the paper's second use case (section VI-A(2)).
 *
 * A researcher studying a disease submits two patient-ID lists
 * (cases / controls). The untrusted NDP aggregates encrypted
 * expression levels (and their squares) per gene; the trusted
 * processor decrypts + verifies the sums, derives means/variances,
 * and runs Welch's t-test per gene. The raw per-patient data never
 * leaves the encrypted store.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.hh"
#include "workloads/medical.hh"

using namespace secndp;

int
main()
{
    constexpr std::size_t kPatients = 400;
    constexpr std::size_t kGenes = 32;
    constexpr std::size_t kGroup = 150;

    Rng rng(7);
    const Aes128::Key key{0x9e, 0x4e};
    SecureGeneDb db(key, kPatients, kGenes, /*frac_bits=*/8, rng);
    std::printf("encrypted gene DB: %zu patients x %zu genes "
                "(X and X^2 matrices provisioned)\n",
                db.patients(), db.genes());

    // Disease cohort: patients [0, kGroup); controls: the rest.
    std::vector<std::size_t> cases, controls;
    for (std::size_t p = 0; p < kGroup; ++p)
        cases.push_back(p);
    for (std::size_t p = kGroup; p < kPatients; ++p)
        controls.push_back(p);

    const auto case_stats = db.groupStats(cases);
    const auto ctrl_stats = db.groupStats(controls);
    std::printf("group sums verified: cases=%s controls=%s\n",
                case_stats.verified ? "yes" : "NO",
                ctrl_stats.verified ? "yes" : "NO");

    // Per-gene Welch's t-test on the securely computed moments.
    struct GeneP
    {
        std::size_t gene;
        double t, p;
    };
    std::vector<GeneP> results;
    for (std::size_t g = 0; g < kGenes; ++g) {
        const auto r = welchTTest(
            case_stats.mean[g], case_stats.variance[g], cases.size(),
            ctrl_stats.mean[g], ctrl_stats.variance[g],
            controls.size());
        results.push_back({g, r.t, r.pValue});
    }
    std::sort(results.begin(), results.end(),
              [](const GeneP &a, const GeneP &b) { return a.p < b.p; });

    std::printf("\ntop genes by two-sided p-value "
                "(random cohorts: expect nothing significant):\n");
    std::printf("  %-6s %-10s %-10s\n", "gene", "t", "p");
    for (std::size_t k = 0; k < 5; ++k) {
        std::printf("  %-6zu %-10.4f %-10.4f\n", results[k].gene,
                    results[k].t, results[k].p);
    }

    const unsigned significant = static_cast<unsigned>(
        std::count_if(results.begin(), results.end(),
                      [](const GeneP &r) { return r.p < 0.01; }));
    std::printf("\ngenes with p < 0.01: %u of %zu (false positives "
                "only)\n", significant, kGenes);

    return (case_stats.verified && ctrl_stats.verified &&
            significant <= kGenes / 8)
               ? 0
               : 1;
}
