/**
 * @file
 * SecNDP quickstart: protect a matrix in untrusted memory, let the
 * untrusted NDP compute a weighted summation over ciphertext, and
 * verify the result on the trusted side.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "secndp/protocol.hh"

using namespace secndp;

int
main()
{
    // ---------------------------------------------------------------
    // 1. The trusted processor holds a secret key. Nothing derived
    //    from it ever leaves the chip.
    // ---------------------------------------------------------------
    const Aes128::Key key{0x00, 0x11, 0x22, 0x33, 0x44, 0x55,
                          0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb,
                          0xcc, 0xdd, 0xee, 0xff};
    SecNdpClient client(key);

    // ---------------------------------------------------------------
    // 2. Build a private matrix: 8 rows x 16 columns of 32-bit
    //    values, placed at (simulated) physical address 0x10000.
    // ---------------------------------------------------------------
    Matrix secret_data(8, 16, ElemWidth::W32, 0x10000);
    for (std::size_t i = 0; i < secret_data.rows(); ++i)
        for (std::size_t j = 0; j < secret_data.cols(); ++j)
            secret_data.set(i, j, 100 * i + j);

    // ---------------------------------------------------------------
    // 3. Provision: arithmetic-encrypt (Alg. 1), generate encrypted
    //    per-row verification tags (Alg. 2+3), upload to the
    //    untrusted device. The device sees only ciphertext.
    // ---------------------------------------------------------------
    UntrustedNdpDevice device;
    client.provision(secret_data, device);
    std::printf("provisioned %zux%zu matrix; device holds ciphertext "
                "+ %zu encrypted tags\n",
                secret_data.rows(), secret_data.cols(),
                device.cipherTags().size());

    // ---------------------------------------------------------------
    // 4. Query: weighted sum of rows {1, 3, 5} with weights
    //    {2, 1, 4}. The NDP computes on ciphertext; the processor
    //    computes the matching OTP share on-chip; adding the two
    //    shares yields the plaintext result (Alg. 4+5).
    // ---------------------------------------------------------------
    const std::vector<std::size_t> rows{1, 3, 5};
    const std::vector<std::uint64_t> weights{2, 1, 4};
    const VerifiedResult result =
        client.weightedSumRows(device, rows, weights);

    std::printf("verified: %s\n", result.verified ? "yes" : "NO");
    std::printf("res[j] = 2*P[1][j] + P[3][j] + 4*P[5][j]:\n  ");
    for (std::size_t j = 0; j < 8; ++j)
        std::printf("%llu ",
                    static_cast<unsigned long long>(result.values[j]));
    std::printf("...\n");

    // Cross-check against the plaintext the processor never fetched.
    bool ok = result.verified;
    for (std::size_t j = 0; j < secret_data.cols(); ++j) {
        const std::uint64_t expect = 2 * secret_data.get(1, j) +
                                     secret_data.get(3, j) +
                                     4 * secret_data.get(5, j);
        ok &= (result.values[j] == expect);
    }
    std::printf("matches plaintext reference: %s\n", ok ? "yes" : "NO");

    // ---------------------------------------------------------------
    // 5. Tamper with the untrusted memory and watch verification
    //    fail. (See examples/attack_demo.cpp for the full tour.)
    // ---------------------------------------------------------------
    device.tamperCipher().set(3, 0, device.cipher().get(3, 0) + 1);
    const VerifiedResult tampered =
        client.weightedSumRows(device, rows, weights);
    std::printf("after tampering, verified: %s (expected NO)\n",
                tampered.verified ? "yes" : "NO");

    return (ok && !tampered.verified) ? 0 : 1;
}
