/**
 * @file
 * Adversary's tour of SecNDP (threat model of paper section II):
 * what an attacker who fully controls the memory/NDP side can see
 * and do, and why each attack fails.
 *
 *  1. Cold-boot snooping: the memory image is indistinguishable from
 *     random -- no plaintext structure survives encryption.
 *  2. Data tampering: flipping ciphertext bits corrupts results, but
 *     the linear-checksum tag catches it.
 *  3. Relocation: swapping two (row, tag) pairs is caught because
 *     pads and tags are address-bound.
 *  4. Replay: serving yesterday's (validly encrypted!) data after a
 *     re-encryption is caught because versions changed.
 *  5. Malicious compute: an NDP that returns garbage (or subtly
 *     scaled) results cannot forge a matching tag.
 */

#include <cstdio>
#include <map>

#include "common/rng.hh"
#include "secndp/protocol.hh"

using namespace secndp;

namespace {

int failures = 0;

void
check(bool cond, const char *what)
{
    std::printf("  [%s] %s\n", cond ? "DEFENDED" : "BREACHED!", what);
    if (!cond)
        ++failures;
}

} // namespace

int
main()
{
    const Aes128::Key key{0xa7, 0x7a, 0xcc};
    Rng rng(1337);

    Matrix secret(16, 8, ElemWidth::W32, 0x20000);
    for (std::size_t i = 0; i < 16; ++i)
        for (std::size_t j = 0; j < 8; ++j)
            secret.set(i, j, rng.nextBounded(1000));

    SecNdpClient client(key);
    UntrustedNdpDevice device;
    client.provision(secret, device);

    const std::vector<std::size_t> rows{2, 5, 7, 11};
    const std::vector<std::uint64_t> weights{1, 3, 1, 1};

    std::printf("attack 1: cold-boot memory dump\n");
    {
        // Entropy sniff test: byte histogram of the ciphertext image
        // should be flat-ish; the plaintext image (small ints) is
        // heavily concentrated.
        auto peak = [](std::span<const std::uint8_t> bytes) {
            std::map<std::uint8_t, std::size_t> hist;
            for (auto b : bytes)
                ++hist[b];
            std::size_t best = 0;
            for (const auto &kv : hist)
                best = std::max(best, kv.second);
            return static_cast<double>(best) / bytes.size();
        };
        const double plain_peak = peak(secret.buffer().byteSpan());
        const double cipher_peak =
            peak(device.cipher().buffer().byteSpan());
        std::printf("  plaintext image peak byte freq: %.2f; "
                    "ciphertext: %.3f\n", plain_peak, cipher_peak);
        check(cipher_peak < plain_peak / 5,
              "memory dump reveals no value distribution");
        // And re-encrypting identical data yields a fresh image.
        UntrustedNdpDevice device2;
        client.provision(secret, device2);
        check(device.cipher().buffer() != device2.cipher().buffer(),
              "re-encryption is unlinkable (fresh version)");
        // Restore the original provisioning for the next attacks.
        client.provision(secret, device);
    }

    std::printf("attack 2: tamper with stored ciphertext\n");
    {
        UntrustedNdpDevice evil = device;
        evil.tamperCipher().set(5, 3, evil.cipher().get(5, 3) ^ 0x10);
        const auto r = client.weightedSumRows(evil, rows, weights);
        check(!r.verified, "bit-flipped row detected");
    }

    std::printf("attack 3: relocate rows (swap data + tags)\n");
    {
        UntrustedNdpDevice evil = device;
        auto &c = evil.tamperCipher();
        for (std::size_t j = 0; j < c.cols(); ++j) {
            const auto tmp = c.get(2, j);
            c.set(2, j, c.get(5, j));
            c.set(5, j, tmp);
        }
        std::swap(evil.tamperTags()[2], evil.tamperTags()[5]);
        const auto r = client.weightedSumRows(evil, rows, weights);
        check(!r.verified, "row relocation detected");
    }

    std::printf("attack 4: replay stale (validly encrypted) data\n");
    {
        UntrustedNdpDevice stale = device; // snapshot v1
        Matrix updated = secret;
        updated.set(5, 0, 999999);
        client.provision(updated, device); // re-encrypt under v2
        const auto r = client.weightedSumRows(stale, rows, weights);
        check(!r.verified, "replay of old snapshot detected");
    }

    std::printf("attack 5: malicious NDP computation\n");
    {
        // The NDP returns a scaled result and the matching scaled
        // tag -- the strongest cheap forgery available to it.
        const auto honest = device.weightedSumRows(rows, weights, true);
        UntrustedNdpDevice evil = device;
        // Emulate by tampering every queried row by doubling its
        // ciphertext (=> result share doubles) and doubling tags.
        auto &c = evil.tamperCipher();
        for (auto i : rows) {
            for (std::size_t j = 0; j < c.cols(); ++j)
                c.set(i, j, 2 * c.get(i, j));
            evil.tamperTags()[i] =
                evil.tamperTags()[i] * Fq127(2);
        }
        const auto r = client.weightedSumRows(evil, rows, weights);
        check(!r.verified, "scaled-result forgery detected");
        (void)honest;
    }

    std::printf("attack 6: brute tag guessing (sampled)\n");
    {
        // Randomly perturbing the tag must never validate: success
        // probability is m/q ~ 2^-124 per try.
        bool any_pass = false;
        for (int t = 0; t < 200; ++t) {
            UntrustedNdpDevice evil = device;
            evil.tamperCipher().set(rows[0], 0,
                                    evil.cipher().get(rows[0], 0) + 1);
            evil.tamperTags()[rows[0]] +=
                Fq127::fromHalves(rng.next(), rng.next());
            any_pass |=
                client.weightedSumRows(evil, rows, weights).verified;
        }
        check(!any_pass, "no random tag forgery passed (200 tries)");
    }

    std::printf("\n%s\n", failures == 0
                              ? "all attacks defended."
                              : "SECURITY FAILURE -- see above");
    return failures == 0 ? 0 : 1;
}
