/**
 * @file
 * Private database aggregation with SecNDP -- the "queries on private
 * databases" use case of the paper's introduction.
 *
 * A table of per-user records (say, purchase amounts per category)
 * lives encrypted in untrusted NDP memory. An analyst runs
 * SQL-flavoured aggregates:
 *
 *   SELECT SUM(category_j) WHERE user IN (...)        -- selection
 *   SELECT AVG(category_j) GROUP BY cohort            -- group-by
 *   weighted blends (e.g., currency conversion)       -- scale mult.
 *
 * All of these are weighted summations: a selection is a 0/1 weight
 * vector, a group-by is several selections, and scaling is a
 * constant multiply -- exactly the linear operations arithmetic
 * sharing supports. Every result is verified against the encrypted
 * linear-checksum tags, so a malicious NDP cannot skew the analytics.
 */

#include <cstdio>
#include <numeric>
#include <vector>

#include "common/fixed_point.hh"
#include "common/rng.hh"
#include "secndp/protocol.hh"

using namespace secndp;

namespace {

constexpr std::size_t kUsers = 512;
constexpr std::size_t kCategories = 8;
const char *const kCategoryNames[kCategories] = {
    "groceries", "transport", "rent",    "dining",
    "travel",    "health",    "leisure", "other",
};
const FixedPointFormat kCents{32, 0}; // whole cents, exact

} // namespace

int
main()
{
    Rng rng(42);

    // Build the private table: users x categories, amounts in cents.
    Matrix table(kUsers, kCategories, ElemWidth::W32, 0x80000);
    std::vector<std::uint64_t> truth(kUsers * kCategories);
    for (std::size_t u = 0; u < kUsers; ++u) {
        for (std::size_t c = 0; c < kCategories; ++c) {
            const std::uint64_t cents = rng.nextBounded(200'00);
            truth[u * kCategories + c] = cents;
            table.set(u, c, cents);
        }
    }

    const Aes128::Key key{0xdb, 0x01};
    SecNdpClient client(key);
    UntrustedNdpDevice device;
    client.provision(table, device);
    std::printf("private table: %zu users x %zu spend categories, "
                "encrypted + tagged in untrusted memory\n\n",
                kUsers, kCategories);

    // ---- Query 1: SUM over a selection (users 100..199). ----------
    std::vector<std::size_t> sel_rows;
    std::vector<std::uint64_t> sel_weights;
    for (std::size_t u = 100; u < 200; ++u) {
        sel_rows.push_back(u);
        sel_weights.push_back(1); // WHERE user IN [100, 200)
    }
    const auto sum = client.weightedSumRows(device, sel_rows,
                                            sel_weights);
    std::printf("Q1  SELECT SUM(*) WHERE user IN [100,200)   "
                "[verified: %s]\n", sum.verified ? "yes" : "NO");
    bool ok = sum.verified;
    for (std::size_t c = 0; c < kCategories; ++c) {
        std::uint64_t expect = 0;
        for (std::size_t u = 100; u < 200; ++u)
            expect += truth[u * kCategories + c];
        ok &= (sum.values[c] == expect);
        if (c < 3) {
            std::printf("    %-10s $%8.2f\n", kCategoryNames[c],
                        sum.values[c] / 100.0);
        }
    }
    std::printf("    ... matches ground truth: %s\n\n",
                ok ? "yes" : "NO");

    // ---- Query 2: AVG GROUP BY cohort (even/odd user ids). --------
    std::printf("Q2  SELECT AVG(dining) GROUP BY user%%2   ");
    double avg[2] = {0, 0};
    bool q2_ok = true;
    for (int parity = 0; parity < 2; ++parity) {
        std::vector<std::size_t> rows;
        std::vector<std::uint64_t> ones;
        for (std::size_t u = parity; u < kUsers; u += 2) {
            rows.push_back(u);
            ones.push_back(1);
        }
        const auto r = client.weightedSumRows(device, rows, ones);
        q2_ok &= r.verified;
        avg[parity] = r.values[3] / 100.0 / rows.size();
    }
    std::printf("[verified: %s]\n", q2_ok ? "yes" : "NO");
    std::printf("    even users: $%.2f   odd users: $%.2f\n\n",
                avg[0], avg[1]);

    // ---- Query 3: weighted blend (currency conversion by 3x). -----
    const std::vector<std::size_t> blend_rows{7, 8, 9};
    const std::vector<std::uint64_t> blend_weights{3, 3, 3};
    const auto blend = client.weightedSumRows(device, blend_rows,
                                              blend_weights);
    std::printf("Q3  SELECT 3*SUM(*) WHERE user IN {7,8,9}   "
                "[verified: %s]\n", blend.verified ? "yes" : "NO");
    bool q3_ok = blend.verified;
    for (std::size_t c = 0; c < kCategories; ++c) {
        std::uint64_t expect = 0;
        for (auto u : blend_rows)
            expect += 3 * truth[u * kCategories + c];
        q3_ok &= (blend.values[c] == expect);
    }
    std::printf("    matches ground truth: %s\n\n",
                q3_ok ? "yes" : "NO");

    // ---- A dishonest database operator. ----------------------------
    std::printf("tamper check: operator inflates user 150's rent "
                "ciphertext...\n");
    device.tamperCipher().set(150, 2,
                              device.cipher().get(150, 2) + 100'00);
    const auto again = client.weightedSumRows(device, sel_rows,
                                              sel_weights);
    std::printf("    re-running Q1: verified = %s (expected NO)\n",
                again.verified ? "yes" : "NO");

    const bool all_ok = ok && q2_ok && q3_ok && !again.verified;
    std::printf("\n%s\n", all_ok ? "all queries verified correctly."
                                 : "FAILURE");
    return all_ok ? 0 : 1;
}
