/**
 * @file
 * End-to-end DLRM-style recommendation inference with the embedding
 * lookups (SLS) offloaded to untrusted NDP under SecNDP -- the
 * paper's primary use case (sections VI-A(1), VII-A).
 *
 * Functional path: a small recommendation model whose embedding
 * tables live encrypted in untrusted memory; each inference performs
 * verified SLS pooling via the SecNDP protocol, then runs the MLP on
 * the (trusted) CPU in fixed point. Results are checked against a
 * plaintext reference model.
 *
 * Performance path: the cycle-level simulator compares the same SLS
 * workload on the non-NDP baseline, native NDP, and SecNDP.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "arch/system.hh"
#include "common/fixed_point.hh"
#include "common/rng.hh"
#include "secndp/protocol.hh"
#include "workloads/dlrm.hh"
#include "workloads/mlp.hh"

using namespace secndp;

namespace {

constexpr unsigned kTables = 4;
constexpr unsigned kRows = 256;
constexpr unsigned kDim = 32;
constexpr unsigned kPf = 8;
constexpr unsigned kDense = 32;
const FixedPointFormat kFmt{32, 12};

} // namespace

int
main()
{
    Rng rng(2022);

    // -----------------------------------------------------------
    // Build the model: embedding tables (private!) + a linear head.
    // -----------------------------------------------------------
    std::vector<std::vector<double>> tables_plain(kTables);
    std::vector<Matrix> tables_fixed;
    for (unsigned t = 0; t < kTables; ++t) {
        tables_plain[t].resize(kRows * kDim);
        Matrix m(kRows, kDim, ElemWidth::W32,
                 0x100000ull * (t + 1));
        for (unsigned i = 0; i < kRows; ++i) {
            for (unsigned j = 0; j < kDim; ++j) {
                // Nonnegative embeddings keep the no-overflow
                // precondition of verification trivially satisfied.
                const double v = std::abs(rng.nextGaussian()) * 0.25;
                const std::int64_t raw = toFixed(v, kFmt);
                tables_plain[t][i * kDim + j] = fromFixed(raw, kFmt);
                m.set(i, j, static_cast<std::uint64_t>(raw));
            }
        }
        tables_fixed.push_back(std::move(m));
    }

    // The dense side stays on the trusted CPU: bottom MLP over dense
    // features, concat with the pooled embeddings, top MLP (a real
    // DLRM structure, not a stand-in head).
    DlrmDenseSide dense_side(kDense, {kDense, 16, 8},
                             kTables * kDim, {kTables * kDim + 8, 16, 1},
                             rng);

    // -----------------------------------------------------------
    // Provision every table into untrusted NDP memory (T0).
    // -----------------------------------------------------------
    const Aes128::Key key{0x5e, 0xc2};
    VersionManager versions; // one TEE-managed version pool
    std::vector<SecNdpClient> clients;
    std::vector<UntrustedNdpDevice> devices(kTables);
    clients.reserve(kTables);
    for (unsigned t = 0; t < kTables; ++t) {
        clients.emplace_back(key, &versions);
        clients[t].provision(tables_fixed[t], devices[t]);
    }
    std::printf("provisioned %u encrypted embedding tables "
                "(%u x %u each), versions live: %zu\n",
                kTables, kRows, kDim, versions.liveRegions());

    // -----------------------------------------------------------
    // Inference over a small batch: verified SLS on NDP, head on
    // the CPU; compare with the plaintext model.
    // -----------------------------------------------------------
    unsigned verified = 0;
    double max_err = 0.0;
    const unsigned batch = 16;
    for (unsigned s = 0; s < batch; ++s) {
        // Dense features for this sample.
        std::vector<double> dense(kDense);
        for (auto &d : dense)
            d = rng.nextGaussian() * 0.3;

        std::vector<double> pooled_secure, pooled_ref;
        for (unsigned t = 0; t < kTables; ++t) {
            std::vector<std::size_t> idx(kPf);
            for (auto &i : idx)
                i = rng.nextBounded(kRows);
            const std::vector<std::uint64_t> ones(kPf, 1);

            const auto pooled =
                clients[t].weightedSumRows(devices[t], idx, ones);
            verified += pooled.verified;
            for (unsigned j = 0; j < kDim; ++j) {
                pooled_secure.push_back(
                    fromFixed(static_cast<std::int64_t>(
                                  pooled.values[j]),
                              kFmt));
                double ref = 0.0;
                for (auto i : idx)
                    ref += tables_plain[t][i * kDim + j];
                pooled_ref.push_back(ref);
            }
        }
        // Secure path: fixed-point MLPs over the SecNDP-pooled
        // embeddings; reference: fp64 over plaintext pooling.
        const double p_secure =
            dense_side.predictFixed(dense, pooled_secure, kFmt);
        const double p_ref = dense_side.predict(dense, pooled_ref);
        max_err = std::max(max_err, std::abs(p_secure - p_ref));
    }
    std::printf("batch of %u inferences: %u/%u SLS queries verified, "
                "max |p_secure - p_ref| = %.3g\n",
                batch, verified, batch * kTables, max_err);

    // -----------------------------------------------------------
    // Performance: simulate the SLS phase of RMC1-small at
    // NDP_rank=8, NDP_reg=8 under three modes.
    // -----------------------------------------------------------
    SystemConfig sys;
    sys.dram.geometry.ranks = 8;
    sys.engine.nAesEngines = 12;
    SlsTraceConfig tc;
    tc.batch = 8;
    tc.pf = 80;
    const auto trace = buildSlsTrace(rmc1Small(), tc);

    const auto cpu = runWorkload(sys, trace, ExecMode::CpuUnprotected);
    const auto ndp = runWorkload(sys, trace, ExecMode::NdpUnprotected);
    const auto sec = runWorkload(sys, trace, ExecMode::SecNdpEnc);
    std::printf("\nSLS performance (RMC1-small, PF=80, 8 ranks, "
                "12 AES engines):\n");
    std::printf("  %-22s %10lld cycles  (1.00x)\n", "non-NDP baseline",
                static_cast<long long>(cpu.cycles));
    std::printf("  %-22s %10lld cycles  (%.2fx)\n", "unprotected NDP",
                static_cast<long long>(ndp.cycles),
                double(cpu.cycles) / ndp.cycles);
    std::printf("  %-22s %10lld cycles  (%.2fx, %d%% pkts "
                "decrypt-bound)\n",
                "SecNDP (enc-only)",
                static_cast<long long>(sec.cycles),
                double(cpu.cycles) / sec.cycles,
                static_cast<int>(100 * sec.fracDecryptBound));

    const bool ok = verified == batch * kTables && max_err < 1e-3 &&
                    ndp.cycles < cpu.cycles;
    return ok ? 0 : 1;
}
