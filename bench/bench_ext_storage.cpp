/**
 * @file
 * EXTENSION experiment (paper's framing: NDP applies to "main memory
 * or even storage", refs [45],[64],[76]; no figure in the paper):
 * SecNDP over near-STORAGE processing.
 *
 * An SLS-style embedding gather served from flash (RecSSD-like):
 * host-processing must ship every 16 KB page over the PCIe link;
 * near-storage processing pools inside the SSD and ships only
 * results. SecNDP adds host-side OTP generation -- and because flash
 * bandwidth is far below DRAM's, a SINGLE 111.3 Gbps AES engine
 * suffices (vs ~10 for the DRAM case, Fig. 8).
 */

#include "bench_common.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "storage/ssd_model.hh"

using namespace secndp;
using namespace secndp::bench;

int
main()
{
    setVerbose(false);
    banner("Extension: SecNDP over near-storage processing "
           "(SLS gather from flash, 16 queries x 256 pages)");

    SsdConfig cfg;
    Rng rng(11);
    std::vector<SsdQuery> queries(16);
    std::vector<std::uint64_t> otp_blocks;
    for (auto &q : queries) {
        for (unsigned p = 0; p < 256; ++p)
            q.pages.push_back(rng.nextBounded(1 << 20));
        otp_blocks.push_back(q.pages.size() * (cfg.pageBytes / 16));
    }

    const auto host = runSsdBatch(cfg, queries, false);
    const auto near = runSsdBatch(cfg, queries, true);

    std::printf("  %-28s %10.2f ms   host-link bytes: %.1f MB\n",
                "host processing (baseline)", host.totalNs / 1e6,
                host.hostBytes / 1e6);
    std::printf("  %-28s %10.2f ms   host-link bytes: %.3f MB "
                "(%.2fx)\n",
                "near-storage, unprotected", near.totalNs / 1e6,
                near.hostBytes / 1e6, host.totalNs / near.totalNs);

    for (unsigned aes : {1u, 2u}) {
        const auto sec = overlaySsdEngine(near, otp_blocks, aes);
        std::printf("  near-storage SecNDP, %u AES %9.2f ms   "
                    "(%.2fx, %.0f%% pkts decrypt-bound)\n",
                    aes, sec.totalNs / 1e6,
                    host.totalNs / sec.totalNs,
                    100 * sec.fractionDecryptBound);
    }
    const auto weak = overlaySsdEngine(near, otp_blocks, 1, 2.0);
    std::printf("  (weak 2 Gbps firmware AES: %8.2f ms, %.0f%% "
                "decrypt-bound -- a hardware engine is required)\n",
                weak.totalNs / 1e6, 100 * weak.fractionDecryptBound);

    std::printf("\nshape: near-storage wins ~(aggregate channel BW / "
                "host link BW) = ~%.1fx on scans;\nSecNDP matches it "
                "with ONE AES engine because flash bandwidth << DRAM "
                "bandwidth.\n",
                cfg.channels * cfg.channelGBps / cfg.hostGBps);
    writeStatsSidecar("bench_ext_storage");
    return 0;
}
