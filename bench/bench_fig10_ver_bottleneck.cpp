/**
 * @file
 * Reproduces paper Figure 10: percentage of SLS NDP packets
 * bottlenecked by decryption bandwidth under the verification-tag
 * options, as AES engines vary (NDP_rank=8, NDP_reg=8).
 *
 * Paper shape target: verification (especially Ver-ECC, which adds
 * no memory time for tags) raises the on-chip OTP work per packet,
 * so each scheme needs more AES engines than Enc-only to stop being
 * decrypt-bound; quantized variants need fewer.
 */

#include "bench_common.hh"
#include "common/logging.hh"

using namespace secndp;
using namespace secndp::bench;

namespace {

const unsigned kAesCounts[] = {2, 4, 6, 8, 10, 12, 16};

void
sweep(const char *name, const WorkloadTrace &trace, bool verifying)
{
    SystemConfig sys = defaultSystem(8, 8);
    const auto sim = simulateNdpBatch(sys, trace);
    std::printf("  %-12s", name);
    for (unsigned aes : kAesCounts) {
        EngineConfig ec = sys.engine;
        ec.nAesEngines = aes;
        const auto ov =
            overlayEngine(ec, sys.dram.clock, sim.batch.packets,
                          sim.work, verifying);
        std::printf(" %7.0f%%", 100.0 * ov.fractionDecryptBound);
    }
    std::printf("\n");
}

void
group(const char *title, QuantScheme quant, bool ecc_applicable)
{
    std::printf("\n%s\n", title);
    std::printf("  %-12s", "scheme");
    for (unsigned aes : kAesCounts)
        std::printf(" %5uAES", aes);
    std::printf("\n");

    const auto model = rmc1Small();
    SlsTraceConfig tc;
    tc.batch = 8;
    tc.pf = 80;
    tc.quant = quant;
    sweep("Enc-only", buildSlsTrace(model, tc), false);
    tc.layout = VerLayout::Coloc;
    sweep("Ver-coloc", buildSlsTrace(model, tc), true);
    tc.layout = VerLayout::Sep;
    sweep("Ver-sep", buildSlsTrace(model, tc), true);
    if (ecc_applicable) {
        tc.layout = VerLayout::Ecc;
        sweep("Ver-ECC", buildSlsTrace(model, tc), true);
    } else {
        std::printf("  %-12s %s\n", "Ver-ECC", "N/A (sub-line rows)");
    }
}

} // namespace

int
main()
{
    setVerbose(false);
    banner("Figure 10: %% of SLS packets decryption-bottlenecked per "
           "verification scheme\n(SecNDP, NDP_rank=8, NDP_reg=8)");

    group("SLS fp32", QuantScheme::None,
          verEccFits(slsRowBytes(rmc1Small(), QuantScheme::None)));
    group("SLS 8-bit quant (column/table-wise)",
          QuantScheme::ColumnWise,
          verEccFits(slsRowBytes(rmc1Small(),
                                 QuantScheme::ColumnWise)));

    std::printf("\npaper shape: Ver-ECC needs the most AES engines "
                "(tag pads with no extra memory\ntime to hide them); "
                "quantization cuts engine demand.\n");
    writeStatsSidecar("bench_fig10_ver_bottleneck");
    return 0;
}
