/**
 * @file
 * Reproduces paper Table III: end-to-end speedup of unprotected NDP,
 * SGX-CFL, SGX-ICL, and SecNDP (Ver-ECC tags) against the
 * unprotected non-NDP baseline, for the four DLRM configurations
 * (batch inference, PF=80, NDP_rank=8, NDP_reg=8) and the medical
 * data analytics workload (m=1024 genes, PF patients per query).
 *
 * Paper reference values (Table III):
 *   unprotected NDP : 2.46x / 3.11x / 4.05x / 4.44x / 7.46x
 *   SGX-CFL         : 0.0038x / 0.0037x / N/A / N/A / 0.1738x
 *   SGX-ICL         : 0.59x / 0.60x / N/A / N/A / 0.57x
 *   SecNDP          : 2.36x / 3.02x / 3.95x / 4.33x / 7.46x
 */

#include "arch/sgx_model.hh"
#include "bench_common.hh"
#include "common/logging.hh"
#include "energy/energy_model.hh"

using namespace secndp;
using namespace secndp::bench;

namespace {

struct Row
{
    std::string name;
    double ndp = 0, sgx_cfl = 0, sgx_icl = 0, secndp = 0;
    bool sgx_na = false;
};

Row
dlrmRow(const DlrmModelConfig &model)
{
    Row row;
    row.name = model.name;
    const unsigned batch = 8; // scaled batch; speedups are ratios
    SystemConfig sys = defaultSystem();

    SlsTraceConfig tc;
    tc.batch = batch;
    tc.pf = 80;
    const auto plain_trace = buildSlsTrace(model, tc);
    tc.layout = VerLayout::Ecc;
    const auto ver_trace = buildSlsTrace(model, tc);

    // NDP portion under each mode.
    const double sls_cpu =
        runWorkload(sys, plain_trace, ExecMode::CpuUnprotected).ns;
    const double sls_ndp =
        runWorkload(sys, plain_trace, ExecMode::NdpUnprotected).ns;
    const double sls_secndp =
        runWorkload(sys, ver_trace, ExecMode::SecNdpEncVer).ns;

    // CPU (MLP) portion: roofline model; under a TEE it pays the
    // cache-resident tax (paper: ~5% on ICL).
    const double fc = fcComputeNs(model, batch);
    const double tee_fc = fc * 1.05;

    const double base = fc + sls_cpu;
    row.ndp = base / (fc + sls_ndp);
    row.secndp = base / (tee_fc + sls_secndp);

    // SGX rows: whole model inside the enclave; the paper could only
    // run RMC1 under SGX (malloc limits) -- report N/A for RMC2.
    if (model.totalEmbBytes <= (2ULL << 30)) {
        const auto pages = uniquePagesTouched(plain_trace);
        row.sgx_cfl =
            1.0 / sgxEndToEndSlowdown(sgxCoffeeLake(), fc, sls_cpu,
                                      model.totalEmbBytes, pages);
        row.sgx_icl =
            1.0 / sgxEndToEndSlowdown(sgxIceLake(), fc, sls_cpu,
                                      model.totalEmbBytes, pages);
    } else {
        row.sgx_na = true;
    }
    return row;
}

Row
analyticsRow()
{
    Row row;
    row.name = "Data Analytics";
    SystemConfig sys = defaultSystem();

    MedicalDbConfig db;
    db.genes = 1024;
    db.patients = 100000;
    db.pf = 2500;  // scaled from 10,000 (single query, regular scan)
    db.numQueries = 4;
    const auto plain_trace = buildMedicalTrace(db, VerLayout::None);
    const auto ver_trace = buildMedicalTrace(db, VerLayout::Ecc);

    const double cpu =
        runWorkload(sys, plain_trace, ExecMode::CpuUnprotected).ns;
    const double ndp =
        runWorkload(sys, plain_trace, ExecMode::NdpUnprotected).ns;
    const double sec =
        runWorkload(sys, ver_trace, ExecMode::SecNdpEncVer).ns;

    row.ndp = cpu / ndp;
    row.secndp = cpu / sec;
    // Analytics is all memory phase; its 40 MB working set fits the
    // CFL EPC (tree-walk tax only).
    const std::uint64_t ws = db.pf * db.numQueries * 4096ull;
    row.sgx_cfl = 1.0 / sgxMemoryPhaseSlowdown(
                            sgxCoffeeLake(), ws,
                            uniquePagesTouched(plain_trace), cpu);
    row.sgx_icl = 1.0 / sgxMemoryPhaseSlowdown(
                            sgxIceLake(), ws,
                            uniquePagesTouched(plain_trace), cpu);
    return row;
}

void
printRow(const char *name, const std::vector<Row> &rows,
         double Row::*field, const char *fmt)
{
    std::printf("%-24s", name);
    for (const auto &r : rows) {
        if (r.sgx_na &&
            (field == &Row::sgx_cfl || field == &Row::sgx_icl))
            std::printf(" %11s", "N/A");
        else
            std::printf(fmt, r.*field);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    setVerbose(false);
    banner("Table III: SecNDP speedup against unsecured baseline "
           "and SGX (NDP_rank=8, NDP_reg=8, PF=80, batch scaled)");

    std::vector<Row> rows;
    for (const auto &model :
         {rmc1Small(), rmc1Large(), rmc2Small(), rmc2Large()})
        rows.push_back(dlrmRow(model));
    rows.push_back(analyticsRow());

    std::printf("%-24s", "");
    for (const auto &r : rows)
        std::printf(" %11s", r.name.c_str());
    std::printf("\n");
    hr();
    std::printf("%-24s", "unprotected non-NDP");
    for (std::size_t i = 0; i < rows.size(); ++i)
        std::printf(" %10.2fx", 1.0);
    std::printf("\n");
    printRow("unprotected NDP", rows, &Row::ndp, " %10.2fx");
    printRow("SGX-CFL", rows, &Row::sgx_cfl, " %10.4fx");
    printRow("SGX-ICL (no int. tree)", rows, &Row::sgx_icl,
             " %10.2fx");
    printRow("SecNDP (Ver-ECC)", rows, &Row::secndp, " %10.2fx");
    hr();
    std::printf("paper:  NDP 2.46/3.11/4.05/4.44/7.46; SecNDP "
                "2.36/3.02/3.95/4.33/7.46;\n        SGX-CFL "
                "0.0038/0.0037/NA/NA/0.1738; SGX-ICL "
                "0.59/0.60/NA/NA/0.57\n");
    writeStatsSidecar("bench_table3_endtoend");
    return 0;
}
