/**
 * @file
 * Reproduces paper Table IV: model accuracy (LogLoss) of the
 * recommendation model under the numeric formats SecNDP supports:
 * 32-bit fixed point (the ring format) and 8-bit table-/column-wise
 * quantization, against the fp32 reference.
 *
 * Paper reference values (production model, 40K samples):
 *   fp32                    0.64013        --
 *   fixed32                 0.64013   -3.6e-10
 *   table-wise 8-bit        0.64059    +0.07%
 *   column-wise 8-bit       0.64027    +0.02%
 *
 * Ours uses the calibrated synthetic CTR model (see DESIGN.md
 * substitutions); shape targets: fixed32 lossless, both 8-bit
 * schemes < 0.1% degradation, column-wise < table-wise.
 */

#include <cstdio>

#include "bench_common.hh"
#include "common/logging.hh"
#include "workloads/ctr_model.hh"

using namespace secndp;
using namespace secndp::bench;

int
main()
{
    setVerbose(false);
    banner("Table IV: accuracy of different quantization schemes "
           "(synthetic production-scale CTR model, 40K samples)");

    CtrModelConfig cfg; // full-size defaults: 40K samples
    cfg.numTables = 8;
    cfg.rowsPerTable = 1000;

    const double fp = evalCtrLogLoss(cfg, NumericFormat::Fp32);
    std::printf("  %-36s %-10s %s\n", "", "LogLoss",
                "LogLoss degradation");
    std::printf("  %-36s %.5f    %s\n",
                numericFormatName(NumericFormat::Fp32), fp, "0");
    for (auto fmt : {NumericFormat::Fixed32,
                     NumericFormat::Int8TableWise,
                     NumericFormat::Int8ColumnWise}) {
        const double ll = evalCtrLogLoss(cfg, fmt);
        const double deg = (ll - fp) / fp;
        if (fmt == NumericFormat::Fixed32)
            std::printf("  %-36s %.5f    %.2g\n",
                        numericFormatName(fmt), ll, ll - fp);
        else
            std::printf("  %-36s %.5f    %+.3f%%\n",
                        numericFormatName(fmt), ll, 100 * deg);
    }

    std::printf("\npaper: fp32 0.64013; fixed32 delta -3.6e-10; "
                "table-wise +0.07%%; column-wise +0.02%%\n");
    writeStatsSidecar("bench_table4_accuracy");
    return 0;
}
