/**
 * @file
 * ABLATION (paper Appendix D): the multi-secret linear checksum of
 * Algorithm 8 vs the single-point Algorithm 2.
 *
 * Trade-off: cnt_s secret points tighten the per-query forgery bound
 * from m/q to m/(cnt_s * q), but the trusted verifier pays extra
 * field exponentiations per checksum. The NDP side is unchanged.
 */

#include <chrono>
#include <cmath>

#include "bench_common.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "secndp/checksum.hh"
#include "secndp/protocol.hh"

using namespace secndp;
using namespace secndp::bench;

namespace {

double
bits(double x)
{
    return std::log2(x);
}

} // namespace

int
main()
{
    setVerbose(false);
    banner("Ablation (Appendix D): Algorithm 8 multi-secret checksum "
           "vs Algorithm 2");

    Rng rng(2024);
    const std::size_t n = 256, m = 1024; // analytics-sized rows
    Matrix plain(n, m, ElemWidth::W32, 0x10000);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < m; ++j)
            plain.set(i, j, rng.nextBounded(1 << 8));

    const std::vector<std::size_t> rows{1, 2, 3, 5, 8, 13, 21, 34};
    const std::vector<std::uint64_t> weights(rows.size(), 1);
    const double q_bits = 127.0;

    std::printf("  %-6s %-22s %-16s %-18s %-10s\n", "cnt_s",
                "forgery bound (bits)", "checksum (us)",
                "full verify (us)", "verified");
    for (unsigned cnt_s : {1u, 2u, 4u, 8u, 16u}) {
        SecNdpClient client(Aes128::Key{0x5a}, nullptr, cnt_s);
        UntrustedNdpDevice device;
        client.provision(plain, device);

        // Isolated checksum cost over one m-element row.
        Aes128 aes(Aes128::Key{0x5a});
        CounterModeEncryptor enc(aes);
        const auto secrets =
            deriveChecksumSecrets(enc, plain.baseAddr(), 1, cnt_s);
        const auto c0 = std::chrono::steady_clock::now();
        Fq127 sink(0);
        const int citers = 200;
        for (int it = 0; it < citers; ++it)
            sink += multiSecretChecksum(plain, 0, secrets);
        const auto c1 = std::chrono::steady_clock::now();
        const double checksum_us =
            std::chrono::duration<double, std::micro>(c1 - c0)
                .count() /
            citers;

        const auto t0 = std::chrono::steady_clock::now();
        VerifiedResult res;
        const int iters = 20;
        for (int it = 0; it < iters; ++it)
            res = client.weightedSumRows(device, rows, weights);
        const auto t1 = std::chrono::steady_clock::now();
        const double us =
            std::chrono::duration<double, std::micro>(t1 - t0)
                .count() /
            iters;

        // Bound: m / (cnt_s * q)  =>  security level in bits.
        const double bound_bits =
            q_bits + bits(cnt_s) - bits(static_cast<double>(m));
        std::printf("  %-6u 2^-%-19.1f %-16.2f %-18.1f %s%s\n", cnt_s,
                    bound_bits, checksum_us, us,
                    res.verified ? "yes" : "NO",
                    sink.isZero() ? " " : "");
    }

    std::printf("\nshape: each doubling of cnt_s buys one bit of "
                "soundness at O(m) field multiplies\neither way "
                "(incremental powers); end-to-end verify time is "
                "dominated by OTP\ngeneration, so Alg. 8 is "
                "essentially free on the trusted side -- and the NDP "
                "and\ntag memory layout are identical for every "
                "cnt_s.\n");
    writeStatsSidecar("bench_ablation_checksum");
    return 0;
}
