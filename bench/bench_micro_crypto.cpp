/**
 * @file
 * Microbenchmarks (google-benchmark) of the cryptographic substrate:
 * AES block encryption, counter-mode OTP generation, arithmetic
 * encryption, linear checksums, F_q arithmetic, and the end-to-end
 * weighted-summation protocol. These quantify the software cost of
 * the scheme's primitives (the paper's hardware engine is modeled in
 * src/engine; these numbers are for the functional library).
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "common/phase_profiler.hh"
#include "common/rng.hh"
#include "crypto/cwc.hh"
#include "crypto/gcm.hh"
#include "secndp/arith_encrypt.hh"
#include "secndp/checksum.hh"
#include "secndp/integrity_tree.hh"
#include "secndp/protocol.hh"

namespace secndp {
namespace {

const Aes128::Key kKey{0x13, 0x37};

void
BM_AesBlock(benchmark::State &state)
{
    Aes128 aes(kKey);
    Block128 block{};
    for (auto _ : state) {
        aes.encryptBlock(block, block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_AesBlock);

void
BM_OtpFill(benchmark::State &state)
{
    Aes128 aes(kKey);
    CounterModeEncryptor enc(aes);
    std::vector<std::uint8_t> pad(state.range(0));
    for (auto _ : state) {
        enc.otpFill(0, 1, pad);
        benchmark::DoNotOptimize(pad.data());
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OtpFill)->Arg(64)->Arg(1024)->Arg(16384);

void
BM_ArithEncrypt(benchmark::State &state)
{
    Aes128 aes(kKey);
    CounterModeEncryptor enc(aes);
    Rng rng(1);
    const std::size_t rows = state.range(0);
    Matrix plain(rows, 32, ElemWidth::W32, 0);
    for (std::size_t i = 0; i < rows; ++i)
        for (std::size_t j = 0; j < 32; ++j)
            plain.set(i, j, rng.next());
    std::uint64_t version = 0;
    for (auto _ : state) {
        Matrix c = arithEncrypt(enc, plain, ++version);
        benchmark::DoNotOptimize(c);
    }
    state.SetBytesProcessed(state.iterations() * plain.sizeBytes());
}
BENCHMARK(BM_ArithEncrypt)->Arg(8)->Arg(128);

void
BM_Fq127Mul(benchmark::State &state)
{
    Rng rng(2);
    Fq127 a = Fq127::fromHalves(rng.next(), rng.next());
    const Fq127 b = Fq127::fromHalves(rng.next(), rng.next());
    for (auto _ : state) {
        a *= b;
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_Fq127Mul);

void
BM_LinearChecksum(benchmark::State &state)
{
    Aes128 aes(kKey);
    CounterModeEncryptor enc(aes);
    Rng rng(3);
    const std::size_t m = state.range(0);
    Matrix mat(1, m, ElemWidth::W32, 0);
    for (std::size_t j = 0; j < m; ++j)
        mat.set(0, j, rng.next());
    const Fq127 s = enc.checksumSecret(0, 1);
    for (auto _ : state) {
        Fq127 t = linearChecksum(mat, 0, s);
        benchmark::DoNotOptimize(t);
    }
    state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_LinearChecksum)->Arg(32)->Arg(1024);

void
BM_WeightedSumProtocol(benchmark::State &state)
{
    Rng rng(4);
    const std::size_t pf = state.range(0);
    Matrix plain(256, 32, ElemWidth::W32, 0x10000);
    for (std::size_t i = 0; i < 256; ++i)
        for (std::size_t j = 0; j < 32; ++j)
            plain.set(i, j, rng.nextBounded(1 << 10));
    SecNdpClient client(kKey);
    UntrustedNdpDevice device;
    client.provision(plain, device);
    std::vector<std::size_t> rows(pf);
    std::vector<std::uint64_t> weights(pf, 1);
    for (auto &r : rows)
        r = rng.nextBounded(256);
    for (auto _ : state) {
        auto res = client.weightedSumRows(device, rows, weights);
        benchmark::DoNotOptimize(res);
    }
    state.SetItemsProcessed(state.iterations() * pf * 32);
}
BENCHMARK(BM_WeightedSumProtocol)->Arg(8)->Arg(80);

void
BM_VerificationOnly(benchmark::State &state)
{
    // Cost of the verify step relative to the unverified protocol.
    Rng rng(5);
    Matrix plain(256, 32, ElemWidth::W32, 0x10000);
    for (std::size_t i = 0; i < 256; ++i)
        for (std::size_t j = 0; j < 32; ++j)
            plain.set(i, j, rng.nextBounded(1 << 8));
    SecNdpClient client(kKey);
    UntrustedNdpDevice device;
    client.provision(plain, device);
    std::vector<std::size_t> rows(40);
    std::vector<std::uint64_t> weights(40, 1);
    for (auto &r : rows)
        r = rng.nextBounded(256);
    const bool verify = state.range(0) != 0;
    for (auto _ : state) {
        auto res = client.weightedSumRows(device, rows, weights,
                                          verify);
        benchmark::DoNotOptimize(res);
    }
}
BENCHMARK(BM_VerificationOnly)->Arg(0)->Arg(1);

void
BM_GcmSeal(benchmark::State &state)
{
    AesGcm gcm(kKey);
    Rng rng(6);
    std::vector<std::uint8_t> pt(state.range(0));
    for (auto &b : pt)
        b = static_cast<std::uint8_t>(rng.next());
    AesGcm::Iv iv{};
    for (auto _ : state) {
        auto sealed = gcm.seal(iv, pt);
        benchmark::DoNotOptimize(sealed);
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GcmSeal)->Arg(64)->Arg(4096);

void
BM_CwcSeal(benchmark::State &state)
{
    AesCwc cwc(kKey);
    Rng rng(7);
    std::vector<std::uint8_t> pt(state.range(0));
    for (auto &b : pt)
        b = static_cast<std::uint8_t>(rng.next());
    AesCwc::Nonce nonce{};
    for (auto _ : state) {
        auto sealed = cwc.seal(nonce, pt);
        benchmark::DoNotOptimize(sealed);
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CwcSeal)->Arg(64)->Arg(4096);

void
BM_IntegrityTreeRead(benchmark::State &state)
{
    CounterIntegrityTree tree(kKey, state.range(0), 8);
    Rng rng(8);
    for (auto _ : state) {
        auto r = tree.verifiedRead(rng.nextBounded(tree.size()));
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IntegrityTreeRead)->Arg(64)->Arg(4096);

void
BM_IntegrityTreeIncrement(benchmark::State &state)
{
    CounterIntegrityTree tree(kKey, 4096, 8);
    Rng rng(9);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tree.increment(rng.nextBounded(tree.size())));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IntegrityTreeIncrement);

} // namespace
} // namespace secndp

// Expanded BENCHMARK_MAIN() so the run leaves a .stats.json sidecar
// (wall-clock phase + run metadata) like the experiment benches do.
int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    auto &reg = secndp::StatRegistry::instance();
    reg.setMeta("tool", "bench_micro_crypto");
    {
        secndp::ScopedPhase phase("benchmarks");
        benchmark::RunSpecifiedBenchmarks();
    }
    benchmark::Shutdown();
    secndp::bench::writeStatsSidecar("bench_micro_crypto");
    return 0;
}
