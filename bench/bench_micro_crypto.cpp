/**
 * @file
 * Microbenchmarks (google-benchmark) of the cryptographic substrate:
 * AES block encryption, counter-mode OTP generation, arithmetic
 * encryption, linear checksums, F_q arithmetic, and the end-to-end
 * weighted-summation protocol. These quantify the software cost of
 * the scheme's primitives (the paper's hardware engine is modeled in
 * src/engine; these numbers are for the functional library).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>

#include "bench_common.hh"
#include "common/phase_profiler.hh"
#include "common/rng.hh"
#include "crypto/aes_backend.hh"
#include "crypto/cwc.hh"
#include "crypto/gcm.hh"
#include "secndp/arith_encrypt.hh"
#include "secndp/checksum.hh"
#include "secndp/integrity_tree.hh"
#include "secndp/protocol.hh"

namespace secndp {
namespace {

const Aes128::Key kKey{0x13, 0x37};

const AesBackend kAllBackends[] = {AesBackend::Scalar,
                                   AesBackend::AesNi,
                                   AesBackend::Vaes};

void
BM_AesBlock(benchmark::State &state)
{
    Aes128 aes(kKey);
    Block128 block{};
    for (auto _ : state) {
        aes.encryptBlock(block, block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_AesBlock);

/**
 * One backend x blocks-per-call cell of the kernel matrix. Rows for
 * backends the host CPU lacks are skipped (still listed, so runs on
 * different machines stay comparable by name).
 */
void
BM_AesBlocksBackend(benchmark::State &state)
{
    const auto backend = static_cast<AesBackend>(state.range(0));
    if (!aesBackendSupported(backend)) {
        state.SkipWithError("backend unsupported on this host");
        return;
    }
    Aes128 aes(kKey, backend);
    const std::size_t bpc = state.range(1);
    std::vector<Block128> blocks(bpc);
    for (auto _ : state) {
        aes.encryptBlocks(blocks.data(), blocks.data(), bpc);
        benchmark::DoNotOptimize(blocks.data());
    }
    state.SetLabel(aesBackendName(backend));
    state.SetBytesProcessed(state.iterations() * 16 * bpc);
}
BENCHMARK(BM_AesBlocksBackend)
    ->ArgNames({"backend", "blocks"})
    ->ArgsProduct({{0, 1, 2}, {1, 4, 8}});

/** Batched counter-mode pad generation per backend. */
void
BM_OtpFillBackend(benchmark::State &state)
{
    const auto backend = static_cast<AesBackend>(state.range(0));
    if (!aesBackendSupported(backend)) {
        state.SkipWithError("backend unsupported on this host");
        return;
    }
    Aes128 aes(kKey, backend);
    CounterModeEncryptor enc(aes);
    std::vector<std::uint8_t> pad(state.range(1));
    for (auto _ : state) {
        enc.otpFillBatch(0, 1, pad);
        benchmark::DoNotOptimize(pad.data());
    }
    state.SetLabel(aesBackendName(backend));
    state.SetBytesProcessed(state.iterations() * state.range(1));
}
BENCHMARK(BM_OtpFillBackend)
    ->ArgNames({"backend", "bytes"})
    ->ArgsProduct({{0, 1, 2}, {1024, 16384}});

void
BM_OtpFill(benchmark::State &state)
{
    Aes128 aes(kKey);
    CounterModeEncryptor enc(aes);
    std::vector<std::uint8_t> pad(state.range(0));
    for (auto _ : state) {
        enc.otpFill(0, 1, pad);
        benchmark::DoNotOptimize(pad.data());
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OtpFill)->Arg(64)->Arg(1024)->Arg(16384);

void
BM_ArithEncrypt(benchmark::State &state)
{
    Aes128 aes(kKey);
    CounterModeEncryptor enc(aes);
    Rng rng(1);
    const std::size_t rows = state.range(0);
    Matrix plain(rows, 32, ElemWidth::W32, 0);
    for (std::size_t i = 0; i < rows; ++i)
        for (std::size_t j = 0; j < 32; ++j)
            plain.set(i, j, rng.next());
    std::uint64_t version = 0;
    for (auto _ : state) {
        Matrix c = arithEncrypt(enc, plain, ++version);
        benchmark::DoNotOptimize(c);
    }
    state.SetBytesProcessed(state.iterations() * plain.sizeBytes());
}
BENCHMARK(BM_ArithEncrypt)->Arg(8)->Arg(128);

void
BM_Fq127Mul(benchmark::State &state)
{
    Rng rng(2);
    Fq127 a = Fq127::fromHalves(rng.next(), rng.next());
    const Fq127 b = Fq127::fromHalves(rng.next(), rng.next());
    for (auto _ : state) {
        a *= b;
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_Fq127Mul);

void
BM_LinearChecksum(benchmark::State &state)
{
    Aes128 aes(kKey);
    CounterModeEncryptor enc(aes);
    Rng rng(3);
    const std::size_t m = state.range(0);
    Matrix mat(1, m, ElemWidth::W32, 0);
    for (std::size_t j = 0; j < m; ++j)
        mat.set(0, j, rng.next());
    const Fq127 s = enc.checksumSecret(0, 1);
    for (auto _ : state) {
        Fq127 t = linearChecksum(mat, 0, s);
        benchmark::DoNotOptimize(t);
    }
    state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_LinearChecksum)->Arg(32)->Arg(1024);

void
BM_WeightedSumProtocol(benchmark::State &state)
{
    Rng rng(4);
    const std::size_t pf = state.range(0);
    Matrix plain(256, 32, ElemWidth::W32, 0x10000);
    for (std::size_t i = 0; i < 256; ++i)
        for (std::size_t j = 0; j < 32; ++j)
            plain.set(i, j, rng.nextBounded(1 << 10));
    SecNdpClient client(kKey);
    UntrustedNdpDevice device;
    client.provision(plain, device);
    std::vector<std::size_t> rows(pf);
    std::vector<std::uint64_t> weights(pf, 1);
    for (auto &r : rows)
        r = rng.nextBounded(256);
    for (auto _ : state) {
        auto res = client.weightedSumRows(device, rows, weights);
        benchmark::DoNotOptimize(res);
    }
    state.SetItemsProcessed(state.iterations() * pf * 32);
}
BENCHMARK(BM_WeightedSumProtocol)->Arg(8)->Arg(80);

void
BM_VerificationOnly(benchmark::State &state)
{
    // Cost of the verify step relative to the unverified protocol.
    Rng rng(5);
    Matrix plain(256, 32, ElemWidth::W32, 0x10000);
    for (std::size_t i = 0; i < 256; ++i)
        for (std::size_t j = 0; j < 32; ++j)
            plain.set(i, j, rng.nextBounded(1 << 8));
    SecNdpClient client(kKey);
    UntrustedNdpDevice device;
    client.provision(plain, device);
    std::vector<std::size_t> rows(40);
    std::vector<std::uint64_t> weights(40, 1);
    for (auto &r : rows)
        r = rng.nextBounded(256);
    const bool verify = state.range(0) != 0;
    for (auto _ : state) {
        auto res = client.weightedSumRows(device, rows, weights,
                                          verify);
        benchmark::DoNotOptimize(res);
    }
}
BENCHMARK(BM_VerificationOnly)->Arg(0)->Arg(1);

void
BM_GcmSeal(benchmark::State &state)
{
    AesGcm gcm(kKey);
    Rng rng(6);
    std::vector<std::uint8_t> pt(state.range(0));
    for (auto &b : pt)
        b = static_cast<std::uint8_t>(rng.next());
    AesGcm::Iv iv{};
    for (auto _ : state) {
        auto sealed = gcm.seal(iv, pt);
        benchmark::DoNotOptimize(sealed);
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GcmSeal)->Arg(64)->Arg(4096);

void
BM_CwcSeal(benchmark::State &state)
{
    AesCwc cwc(kKey);
    Rng rng(7);
    std::vector<std::uint8_t> pt(state.range(0));
    for (auto &b : pt)
        b = static_cast<std::uint8_t>(rng.next());
    AesCwc::Nonce nonce{};
    for (auto _ : state) {
        auto sealed = cwc.seal(nonce, pt);
        benchmark::DoNotOptimize(sealed);
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CwcSeal)->Arg(64)->Arg(4096);

void
BM_IntegrityTreeRead(benchmark::State &state)
{
    CounterIntegrityTree tree(kKey, state.range(0), 8);
    Rng rng(8);
    for (auto _ : state) {
        auto r = tree.verifiedRead(rng.nextBounded(tree.size()));
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IntegrityTreeRead)->Arg(64)->Arg(4096);

void
BM_IntegrityTreeIncrement(benchmark::State &state)
{
    CounterIntegrityTree tree(kKey, 4096, 8);
    Rng rng(9);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tree.increment(rng.nextBounded(tree.size())));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IntegrityTreeIncrement);

/**
 * Deterministic measurement pass for the perf gate: a fixed amount of
 * OTP work per configuration, timed directly (best of kReps), written
 * into the `crypto` stats group of the sidecar. The work counters are
 * machine-independent (watchable at 0% slack); the GB/s scalars are
 * informational; the watched throughput metric is the *ratio*
 * `speedup_accel_vs_scalar` -- batched best-backend OTP fill versus
 * the pre-batching per-element scalar loop -- which is stable across
 * hosts of the same ISA generation.
 */
void
measureCryptoKernels()
{
    using clock = std::chrono::steady_clock;
    static StatGroup g("crypto"); // outlives the sidecar write

    constexpr std::size_t kBytes = std::size_t{1} << 22; // per pass
    constexpr int kReps = 3;
    const auto best_of = [](auto &&fn) {
        double best = 1e30;
        for (int r = 0; r < kReps; ++r) {
            const auto t0 = clock::now();
            fn();
            const double s =
                std::chrono::duration<double>(clock::now() - t0)
                    .count();
            best = std::min(best, s);
        }
        return best;
    };

    // Baseline: the pre-batching hot loop, one otpElement call per
    // 64-bit element through table AES.
    Aes128 scalar_aes(kKey, AesBackend::Scalar);
    CounterModeEncryptor scalar_enc(scalar_aes);
    std::uint64_t sink = 0;
    const double t_elem = best_of([&] {
        for (std::size_t a = 0; a < kBytes; a += 8)
            sink ^= scalar_enc.otpElement(a, ElemWidth::W64, 1);
    });
    const double gbps_elem = kBytes / t_elem / 1e9;
    g.scalar("gbps_scalar_elem") = gbps_elem;

    std::vector<std::uint8_t> pad(kBytes);
    double best_accel = 0.0, best_scalar_batch = 0.0;
    for (AesBackend b : kAllBackends) {
        if (!aesBackendSupported(b))
            continue;
        ++g.counter("backends_run");
        Aes128 aes(kKey, b);
        CounterModeEncryptor enc(aes);
        const double t = best_of([&] { enc.otpFillBatch(0, 1, pad); });
        const double gbps = kBytes / t / 1e9;
        g.scalar(std::string("gbps_batch_") + aesBackendName(b)) =
            gbps;
        if (b == AesBackend::Scalar)
            best_scalar_batch = gbps;
        else
            best_accel = std::max(best_accel, gbps);
        sink ^= pad[0];
    }
    // Hosts without AES-NI (or forced scalar) fall back to comparing
    // the batched scalar path so the metric always exists.
    if (best_accel == 0.0)
        best_accel = best_scalar_batch;
    g.scalar("speedup_accel_vs_scalar") = best_accel / gbps_elem;
    g.counter("otp_bytes_per_config") += kBytes;
    g.counter("otp_elems_baseline") += kBytes / 8;
    benchmark::DoNotOptimize(sink);
}

} // namespace
} // namespace secndp

// Expanded BENCHMARK_MAIN() so the run leaves a .stats.json sidecar
// (wall-clock phase + run metadata) like the experiment benches do.
// The crypto measurement pass runs regardless of --benchmark_filter,
// so the perf gate can skip the google-benchmark timings but still
// refresh the crypto.* group.
int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    auto &reg = secndp::StatRegistry::instance();
    reg.setMeta("tool", "bench_micro_crypto");
    {
        secndp::ScopedPhase phase("benchmarks");
        benchmark::RunSpecifiedBenchmarks();
    }
    {
        secndp::ScopedPhase phase("crypto_kernels");
        secndp::measureCryptoKernels();
    }
    benchmark::Shutdown();
    secndp::bench::writeStatsSidecar("bench_micro_crypto");
    return 0;
}
