/**
 * @file
 * EXPERIMENT: trusted-side pad cache hit rate vs capacity.
 *
 * Plays the SLS chunk-address stream (the exact stream the serving
 * loop's admission pass sees) through a ShardedPadCache across a
 * capacity sweep, for a uniform trace and a production-skewed one
 * (Zipf 0.9 / 1.1), under both eviction policies. The cache only ever
 * sees addresses -- the hit rate is a pure function of the request
 * stream -- so no cipher runs here and the whole table is
 * deterministic in the trace seed.
 *
 * Expected shape: uniform traces need capacity ~ the full footprint
 * before the hit rate moves, while skewed traces hit >60% at a small
 * fraction of it (hot rows dominate) -- the premise of the serve_cache
 * perf-gate config. TinyLFU tracks LRU on skew and pulls ahead when
 * capacity is scarce (admission filters one-hit wonders).
 */

#include "bench_common.hh"
#include "cache/pad_cache.hh"

using namespace secndp;
using namespace secndp::bench;

namespace {

/** Rounds the request stream replays the trace (cold + warm). */
constexpr int kRounds = 3;

/** One config's replay: returns the hit rate over all rounds. */
ShardedPadCache::Counters
replay(const WorkloadTrace &trace, std::size_t capacity_bytes,
       CachePolicy policy)
{
    PadCacheConfig cfg;
    cfg.capacityBytes = capacity_bytes;
    cfg.shards = 8;
    cfg.policy = policy;
    ShardedPadCache cache(cfg);
    Block128 pad{};
    const Block128 zero{};
    for (int round = 0; round < kRounds; ++round) {
        for (const auto &q : trace.queries) {
            for (const auto &r : q.ranges) {
                const std::uint64_t end = r.vaddr + r.bytes;
                for (std::uint64_t chunk =
                         r.vaddr & ~std::uint64_t{15};
                     chunk < end; chunk += 16) {
                    if (!cache.lookup(chunk, 1, &pad))
                        cache.insert(chunk, 1, zero);
                }
            }
        }
    }
    return cache.counters();
}

} // namespace

int
main()
{
    setVerbose(false);
    banner("Pad-cache hit rate vs capacity (RMC1-small, PF=80, "
           "64-query pool, 3 rounds)");

    const auto model = rmc1Small();
    struct TraceCase
    {
        const char *name;
        double alpha;
    };
    const TraceCase cases[] = {
        {"uniform", 0.0}, {"zipf09", 0.9}, {"zipf11", 1.1}};

    StatGroup sweep("cache_sweep");
    std::printf("  %-8s %-8s %-10s %10s %10s %10s\n", "trace",
                "policy", "capacity", "hit-rate", "evictions",
                "entries");
    for (const TraceCase &tcase : cases) {
        SlsTraceConfig tc;
        tc.batch = 64;
        tc.pf = 80;
        tc.zipfAlpha = tcase.alpha;
        const auto trace = buildSlsTrace(model, tc);
        for (CachePolicy policy :
             {CachePolicy::Lru, CachePolicy::Lfu}) {
            for (std::size_t kb : {64u, 256u, 1024u, 4096u, 16384u}) {
                const auto c =
                    replay(trace, kb * 1024, policy);
                const double rate =
                    c.lookups ? static_cast<double>(c.hits) /
                                    static_cast<double>(c.lookups)
                              : 0.0;
                std::printf("  %-8s %-8s %7zu kB %9.2f%% %10llu "
                            "%10llu\n",
                            tcase.name, cachePolicyName(policy), kb,
                            100.0 * rate,
                            static_cast<unsigned long long>(
                                c.evictions),
                            static_cast<unsigned long long>(
                                c.insertions - c.evictions));
                char key[64];
                std::snprintf(key, sizeof(key), "hit_rate_%s_%s_%zukb",
                              tcase.name, cachePolicyName(policy),
                              kb);
                sweep.scalar(key) = rate;
            }
        }
    }

    std::printf("\nshape: the uniform stream needs the full footprint "
                "cached before reuse\nappears; Zipf-skewed streams "
                "cross 60%% at a fraction of it, and TinyLFU\n"
                "admission beats plain LRU exactly where capacity is "
                "scarce.\n");
    writeStatsSidecar("bench_cache_sweep");
    return 0;
}
