/**
 * @file
 * Shared helpers for the experiment benches. Each bench binary
 * regenerates one table or figure of the paper's evaluation
 * (section VII); see DESIGN.md's per-experiment index.
 *
 * Scaling note: the paper simulates full production batches; these
 * benches run the same generators at a reduced batch/pooling scale
 * (single-machine friendly) -- speedups are ratios of simulated
 * cycle counts and are insensitive to batch size once the NDP
 * pipeline is full. Scale knobs are printed with each run.
 */

#ifndef SECNDP_BENCH_BENCH_COMMON_HH
#define SECNDP_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "arch/system.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "ndp/ndp_system.hh"
#include "workloads/dlrm.hh"
#include "workloads/medical.hh"

namespace secndp::bench {

/** Default experiment system: Table II DRAM, 8 ranks, 12 AES. */
inline SystemConfig
defaultSystem(unsigned ranks = 8, unsigned ndp_reg = 8,
              unsigned n_aes = 12)
{
    SystemConfig cfg;
    cfg.dram.geometry.ranks = ranks;
    cfg.ndp.ndpReg = ndp_reg;
    cfg.engine.nAesEngines = n_aes;
    return cfg;
}

/**
 * NDP batch simulated once so multiple engine configurations can be
 * overlaid cheaply (the off-chip behaviour does not depend on the
 * engine, paper section IV-D).
 */
struct SimulatedNdpBatch
{
    BatchResult batch;
    std::vector<EngineWork> work;
};

inline SimulatedNdpBatch
simulateNdpBatch(const SystemConfig &cfg, const WorkloadTrace &trace)
{
    PageMapper pages(cfg.dram.geometry.totalBytes(), 4096,
                     cfg.pageSeed);
    std::vector<NdpQuery> packets;
    packets.reserve(trace.queries.size());
    SimulatedNdpBatch out;
    for (const auto &q : trace.queries) {
        packets.push_back(buildQuery(pages, q.ranges,
                                     cfg.dram.geometry.lineBytes));
        out.work.push_back(q.engineWork);
    }
    NdpSimulation sim(cfg.dram, cfg.ndp);
    out.batch = sim.run(packets);
    return out;
}

/** Shared-bus CPU baseline cycles for the same trace. */
inline Cycle
cpuBaselineCycles(const SystemConfig &cfg, const WorkloadTrace &trace)
{
    return runWorkload(cfg, trace, ExecMode::CpuUnprotected).cycles;
}

inline void
hr()
{
    std::printf("-------------------------------------------------"
                "-----------------------------\n");
}

inline void
banner(const char *what)
{
    std::printf("\n");
    hr();
    std::printf("%s\n", what);
    std::printf("SecNDP reproduction -- paper values are shape "
                "targets, not absolute-number targets.\n");
    hr();
}

/**
 * Write the process-wide StatRegistry as a machine-readable sidecar
 * `<name>.stats.json` next to the bench's text table, so successive
 * runs can be diffed/plotted mechanically (regression trajectories).
 *
 * Knobs: SECNDP_STATS_DIR relocates the sidecar directory;
 * SECNDP_NO_SIDECAR=1 suppresses it entirely. Call at the end of the
 * bench's main(), after every simulation object has been destroyed
 * (the registry folds destroyed groups into its retired aggregate,
 * so the sidecar covers the whole run).
 */
inline void
writeStatsSidecar(const std::string &name)
{
    if (const char *off = std::getenv("SECNDP_NO_SIDECAR"))
        if (off[0] == '1')
            return;
    std::string dir = ".";
    if (const char *d = std::getenv("SECNDP_STATS_DIR"))
        dir = d;
    const std::string path = dir + "/" + name + ".stats.json";
    std::ofstream os(path);
    if (!os) {
        warn("cannot write stats sidecar '%s'", path.c_str());
        return;
    }
    StatRegistry::instance().dumpJson(os);
    std::printf("\n[stats sidecar: %s]\n", path.c_str());
}

} // namespace secndp::bench

#endif // SECNDP_BENCH_BENCH_COMMON_HH
