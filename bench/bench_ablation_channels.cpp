/**
 * @file
 * ABLATION: memory channels vs the NDP advantage.
 *
 * The paper's configuration is one DDR4 channel (Table II); this
 * ablation asks how the NDP-vs-CPU gap changes when the host gets
 * more channels. Both sides scale: the baseline gains channel-level
 * parallelism (its bus bottleneck widens), while rank-NDP gains more
 * PUs (channels x ranks). The NDP *ratio* therefore stays roughly
 * equal to the per-channel rank count -- NDP's advantage is
 * orthogonal to adding channels, but channels are the expensive
 * resource (pins), which is the economic argument for NDP.
 */

#include "bench_common.hh"
#include "common/logging.hh"

using namespace secndp;
using namespace secndp::bench;

int
main()
{
    setVerbose(false);
    banner("Ablation: channel count vs NDP speedup "
           "(SLS fp32, PF=80, 8 ranks/channel, reg=8)");

    const auto model = rmc1Small();
    std::printf("  %-10s %-14s %-14s %-12s\n", "channels",
                "CPU cycles", "NDP cycles", "NDP speedup");
    for (unsigned channels : {1u, 2u, 4u}) {
        SystemConfig sys = defaultSystem(8, 8);
        sys.dram.geometry.channels = channels;
        SlsTraceConfig tc;
        tc.batch = 8;
        tc.pf = 80;
        const auto trace = buildSlsTrace(model, tc);
        const auto cpu =
            runWorkload(sys, trace, ExecMode::CpuUnprotected);
        const auto ndp =
            runWorkload(sys, trace, ExecMode::NdpUnprotected);
        std::printf("  %-10u %-14lld %-14lld %10.2fx\n", channels,
                    static_cast<long long>(cpu.cycles),
                    static_cast<long long>(ndp.cycles),
                    static_cast<double>(cpu.cycles) / ndp.cycles);
    }

    std::printf("\nshape: absolute times drop ~linearly with "
                "channels on BOTH sides; the NDP\nratio stays near "
                "the per-channel rank count. SecNDP's AES demand "
                "grows with\ntotal NDP bandwidth (channels x ranks), "
                "so engine provisioning follows Fig. 8\nscaled by "
                "the channel count.\n");
    writeStatsSidecar("bench_ablation_channels");
    return 0;
}
