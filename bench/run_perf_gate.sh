#!/usr/bin/env bash
# Run the fixed set of fast, seeded perf-gate configurations and write
# one <name>.stats.json sidecar (plus <name>.ts.csv time series) per
# config into OUT_DIR. The same script produces both the checked-in
# golden baselines (bench/baselines/) and the CI candidate run:
#
#   bench/run_perf_gate.sh build/tools/secndp_sim /tmp/gate-run
#   build/tools/secndp_report diff --baseline bench/baselines /tmp/gate-run
#
# Every config uses a fixed seed so simulated counters are
# deterministic; only host_phases.* and meta.git differ between
# machines, and neither is watched by bench/baselines/thresholds.tsv.
set -euo pipefail

if [[ $# -ne 2 ]]; then
    echo "usage: $0 <secndp_sim-binary> <out-dir>" >&2
    exit 2
fi
SIM=$1
OUT=$2
mkdir -p "$OUT"

run() {
    local name=$1
    shift
    echo "perf-gate: $name"
    "$SIM" "$@" --seed 7 --sample-interval 500 \
        --stats-json "$OUT/$name.stats.json" \
        --timeseries-out "$OUT/$name.ts.csv" > /dev/null
}

# Serving-layer config: fixed-seed open-loop loadgen run. Simulated
# serve.* metrics are deterministic; worker-thread interleaving only
# moves wall clock (host_phases.*), which is unwatched.
LOADGEN="$(dirname "$SIM")/secndp_loadgen"
run_serve() {
    local name=$1
    shift
    echo "perf-gate: $name"
    "$LOADGEN" "$@" --seed 7 --sample-interval 500 \
        --stats-json "$OUT/$name.stats.json" \
        --timeseries-out "$OUT/$name.ts.csv" > /dev/null
}

# TCP front-end config: one closed-loop socket session over loopback
# (server --listen + client --connect). The conservative virtual-time
# bridge keeps serve.* and net.* a pure function of the session
# parameters; net_wall.* is wall clock and unwatched. The server's
# sidecar is the gated artifact.
run_serve_net() {
    local name=$1
    shift
    echo "perf-gate: $name"
    "$LOADGEN" --listen 127.0.0.1:0 --seed 7 --sample-interval 500 \
        "$@" \
        --stats-json "$OUT/$name.stats.json" \
        --timeseries-out "$OUT/$name.ts.csv" \
        > "$OUT/$name.listen.log" 2>&1 &
    local srv=$!
    local port=""
    for _ in $(seq 100); do
        port=$(sed -n 's/^listening  *127\.0\.0\.1:\([0-9]*\)$/\1/p' \
            "$OUT/$name.listen.log")
        [[ -n "$port" ]] && break
        sleep 0.1
    done
    if [[ -z "$port" ]]; then
        echo "perf-gate: $name server never listened" >&2
        cat "$OUT/$name.listen.log" >&2
        exit 1
    fi
    "$LOADGEN" --connect "127.0.0.1:$port" --mode closed \
        --concurrency 16 --requests 96 --seed 7 > /dev/null
    wait "$srv"
}

# Adversary sweep: detection-rate counters are a pure function of the
# redteam seed (no time series; the sweep has no simulated timeline).
REDTEAM="$(dirname "$SIM")/secndp_redteam"
run_redteam() {
    local name=$1
    shift
    echo "perf-gate: $name"
    "$REDTEAM" "$@" --seed 7 \
        --stats-json "$OUT/$name.stats.json" > /dev/null
}

# Crypto kernel matrix: bench_micro_crypto's deterministic crypto.*
# measurement pass (the google-benchmark timing rows are skipped via
# a match-nothing filter; the pass runs regardless). Work counters
# are machine-independent; the watched throughput metric is the
# accel-vs-scalar *ratio*, which is stable across same-ISA hosts.
MICRO="$(dirname "$SIM")/../bench/bench_micro_crypto"
run_micro() {
    local name=$1
    echo "perf-gate: $name"
    SECNDP_STATS_DIR="$OUT" "$MICRO" \
        --benchmark_filter='^$' > /dev/null
    mv "$OUT/bench_micro_crypto.stats.json" "$OUT/$name.stats.json"
}

run sls_cpu      --workload sls --mode cpu
run sls_tee      --workload sls --mode tee
run sls_ndp      --workload sls --mode ndp
run sls_enc      --workload sls --mode enc
run sls_ver      --workload sls --mode ver
run medical_enc  --workload medical --mode enc
run sls_enc_zipf --workload sls --mode enc --zipf 0.8 --batch 4
run_serve serve_open --mode open --qps 2000000 --requests 96 \
    --exec-mode enc --shards 2 --workers 2 --max-batch 8
# Same load with the request tracer armed: simulated serve.* metrics
# must match serve_open exactly (tracing observes, never perturbs),
# and the trace.* counters pin span coverage. Needs a tracing build
# (-DSECNDP_ENABLE_TRACING=ON, the default).
run_serve serve_trace --mode open --qps 2000000 --requests 96 \
    --exec-mode enc --shards 2 --workers 2 --max-batch 8 \
    --trace-requests "$OUT/serve_trace.spans.json" \
    --flight-out "$OUT/serve_trace.flight.json"
# Same load with the live telemetry plane armed (metrics endpoint on
# an ephemeral port + SLO tracker): simulated serve.* metrics must
# match serve_open exactly (scrapes render published snapshots, never
# live stats), and the telemetry.slo.* counters pin the SLO
# bookkeeping. The endpoint port is ephemeral and never lands in the
# sidecar, so the output stays byte-deterministic.
run_serve serve_metrics --mode open --qps 2000000 --requests 96 \
    --exec-mode enc --shards 2 --workers 2 --max-batch 8 \
    --metrics-port 0
# Skewed closed-loop twins: identical Zipf-0.9 load with the
# trusted-side pad cache off (serve_skew) and on (serve_cache). The
# small pool keeps the hot set resident, so the cached run must clear
# a 60% pad hit rate and beat the uncached twin's p99 -- both asserted
# right here, because thresholds.tsv only compares a config against
# its *own* baseline, never across configs. Zero evictions at this
# capacity keeps cache.* byte-deterministic.
run_serve serve_skew --mode closed --concurrency 16 --requests 384 \
    --exec-mode enc --shards 2 --workers 2 --max-batch 8 \
    --pool 2 --pf 40 --zipf 0.9 --aes 2
run_serve serve_cache --mode closed --concurrency 16 --requests 384 \
    --exec-mode enc --shards 2 --workers 2 --max-batch 8 \
    --pool 2 --pf 40 --zipf 0.9 --aes 2 \
    --cache-mb 2 --cache-policy lru --cache-shards 8
python3 - "$OUT" <<'EOF'
import json, sys
out = sys.argv[1]
skew = json.load(open(f"{out}/serve_skew.stats.json"))["groups"]
cache = json.load(open(f"{out}/serve_cache.stats.json"))["groups"]
rate = cache["cache"]["hit_rate"]
p99_off = skew["serve"]["latency_ns"]["p99"]
p99_on = cache["serve"]["latency_ns"]["p99"]
if rate < 0.60:
    sys.exit(f"perf-gate: serve_cache pad hit rate {rate:.3f} < 0.60")
if p99_on >= p99_off:
    sys.exit(f"perf-gate: serve_cache p99 {p99_on:.0f}ns not below "
             f"serve_skew p99 {p99_off:.0f}ns")
print(f"perf-gate: serve_cache hit rate {rate:.3f}, "
      f"p99 {p99_off:.0f} -> {p99_on:.0f} ns "
      f"({100 * (p99_off - p99_on) / p99_off:.1f}% win)")
EOF
# Closed-loop socket session: closed-loop id assignment differs from
# the in-process generator by design (ids stripe across connections),
# so this config carries its own baseline with net.* thresholds.
run_serve_net serve_net \
    --exec-mode enc --shards 2 --workers 2 --max-batch 8
run_redteam redteam_smoke --queries 100
run_micro micro_crypto
# Device-generation scaling sweep: the committed matrix (all three
# generations x {1,2} channels x {2,4,8} ranks) in NDP mode. Every
# scaling.* scalar is a pure function of the fixed trace seed. The
# absolute floor below asserts the headline claim -- DDR5
# pseudo-channels beat DDR4-2400 NDP throughput at equal channel and
# rank count -- because thresholds.tsv only compares a config against
# its *own* baseline, never across generations.
SCALING="$(dirname "$SIM")/../bench/bench_scaling_sweep"
run_scaling() {
    local name=$1
    echo "perf-gate: $name"
    SECNDP_STATS_DIR="$OUT" "$SCALING" > /dev/null
}
run_scaling scaling_sweep
python3 - "$OUT" <<'EOF'
import json, sys
out = sys.argv[1]
s = json.load(open(f"{out}/scaling_sweep.stats.json"))
scaling = s["groups"]["scaling"]
sp = scaling["speedup_ddr5_pch_vs_ddr4"]
FLOOR = 1.25
if sp < FLOOR:
    sys.exit(f"perf-gate: scaling speedup ddr5-pch/ddr4 {sp:.2f}x "
             f"< {FLOOR:.2f}x floor")
print(f"perf-gate: scaling ddr5-pch vs ddr4 {sp:.2f}x "
      f"(floor {FLOOR:.2f}x), best '{s['meta']['scaling_best']}'")
EOF

echo "perf-gate: wrote $(ls "$OUT"/*.stats.json | wc -l) sidecars to $OUT"
