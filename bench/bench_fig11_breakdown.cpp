/**
 * @file
 * Reproduces paper Figure 11:
 *  (top) normalized end-to-end execution time of SecNDP, broken into
 *        the NDP portion (SLS) and the CPU-TEE portion (MLPs), per
 *        DLRM configuration;
 *  (bottom) end-to-end inference speedup vs batch size, SecNDP vs
 *        SGX (SGX does not scale with batch).
 *
 * NDP_rank=8, NDP_reg=8, PF=80, fp32 rows (as in the paper).
 */

#include "arch/sgx_model.hh"
#include "bench_common.hh"
#include "common/logging.hh"

using namespace secndp;
using namespace secndp::bench;

namespace {

struct Breakdown
{
    double base_cpu, base_sls; // unprotected non-NDP
    double sec_cpu, sec_sls;   // SecNDP (TEE CPU + secure SLS)
};

Breakdown
run(const DlrmModelConfig &model, unsigned batch)
{
    SystemConfig sys = defaultSystem(8, 8, 12);
    SlsTraceConfig tc;
    tc.batch = batch;
    tc.pf = 80;
    const auto trace = buildSlsTrace(model, tc);
    tc.layout = VerLayout::Ecc;
    const auto ver_trace = buildSlsTrace(model, tc);

    Breakdown b;
    b.base_cpu = fcComputeNs(model, batch);
    b.base_sls =
        runWorkload(sys, trace, ExecMode::CpuUnprotected).ns;
    b.sec_cpu = b.base_cpu * 1.05; // TEE tax on cache-resident MLPs
    b.sec_sls =
        runWorkload(sys, ver_trace, ExecMode::SecNdpEncVer).ns;
    return b;
}

} // namespace

int
main()
{
    setVerbose(false);
    banner("Figure 11 (top): normalized execution time breakdown, "
           "SecNDP vs non-NDP baseline\n(batch=8 scaled, PF=80, "
           "NDP_rank=8, NDP_reg=8, Ver-ECC)");

    std::printf("  %-12s %12s %12s %12s %12s %9s\n", "model",
                "base-CPU", "base-NDPpart", "sec-CPU", "sec-NDPpart",
                "speedup");
    for (const auto &model :
         {rmc1Small(), rmc1Large(), rmc2Small(), rmc2Large()}) {
        const auto b = run(model, 8);
        const double base = b.base_cpu + b.base_sls;
        std::printf("  %-12s %11.1f%% %11.1f%% %11.1f%% %11.1f%% "
                    "%8.2fx\n",
                    model.name.c_str(), 100 * b.base_cpu / base,
                    100 * b.base_sls / base, 100 * b.sec_cpu / base,
                    100 * b.sec_sls / base,
                    base / (b.sec_cpu + b.sec_sls));
    }

    banner("Figure 11 (bottom): end-to-end speedup vs batch size "
           "(RMC1-small)");
    std::printf("  %-8s %10s %10s %10s\n", "batch", "SecNDP",
                "SGX-ICL", "SGX-CFL");
    const auto model = rmc1Small();
    for (unsigned batch : {2u, 8u, 32u, 64u}) {
        const auto b = run(model, batch);
        const double base = b.base_cpu + b.base_sls;
        const double secndp = base / (b.sec_cpu + b.sec_sls);

        SlsTraceConfig tc;
        tc.batch = batch;
        tc.pf = 80;
        const auto pages =
            uniquePagesTouched(buildSlsTrace(model, tc));
        const double icl =
            1.0 / sgxEndToEndSlowdown(sgxIceLake(), b.base_cpu,
                                      b.base_sls,
                                      model.totalEmbBytes, pages);
        const double cfl =
            1.0 / sgxEndToEndSlowdown(sgxCoffeeLake(), b.base_cpu,
                                      b.base_sls,
                                      model.totalEmbBytes, pages);
        std::printf("  %-8u %9.2fx %9.2fx %9.4fx\n", batch, secndp,
                    icl, cfl);
    }

    std::printf("\npaper shape: SecNDP end-to-end 2.3x-4.3x at "
                "batch=256, growing with batch size\n(better NDP "
                "pipeline fill); SGX flat or worse with batch.\n");
    writeStatsSidecar("bench_fig11_breakdown");
    return 0;
}
