/**
 * @file
 * SCALING SWEEP: device generation x channels x ranks.
 *
 * Not a paper figure: the paper evaluates one DDR4-2400 channel
 * (Table II). This sweep asks what the same rank-NDP design gains
 * from newer device generations -- DDR5's faster clock and, in the
 * pseudo-channel configuration, two independent 32-bit sub-channels
 * per channel, each with its own per-rank PU (2x the PU count at the
 * same pin cost). Every cell runs the identical seeded SLS batch in
 * NDP mode and reports sustained query throughput in *time* (QPS),
 * so generations with different memory clocks compare fairly.
 *
 * The scaling.* sidecar group carries the full matrix plus per-cell
 * DDR5-pch-vs-DDR4 speedups and the headline
 * scaling.speedup_ddr5_pch_vs_ddr4 (largest common cell), which
 * bench/run_perf_gate.sh gates against an absolute floor.
 *
 * Flags (all optional; defaults are the committed gate matrix):
 *   --gens A,B,C     device generations to sweep
 *   --channels LIST  comma-separated channel counts
 *   --ranks LIST     comma-separated ranks-per-channel counts
 *   --batch N        SLS queries per run
 *   --pf N           pooling factor
 * CI's scaling-smoke job runs a tiny matrix twice and byte-diffs the
 * sidecars; keep every counter seed-deterministic.
 */

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/logging.hh"
#include "memsim/dram_spec.hh"

using namespace secndp;
using namespace secndp::bench;

namespace {

std::vector<unsigned>
parseUnsignedList(const std::string &s, const char *flag)
{
    std::vector<unsigned> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        const std::size_t comma = s.find(',', pos);
        const std::string tok =
            s.substr(pos, comma == std::string::npos ? std::string::npos
                                                     : comma - pos);
        if (tok.empty() ||
            tok.find_first_not_of("0123456789") != std::string::npos)
            fatal("%s: bad list element '%s'", flag, tok.c_str());
        out.push_back(static_cast<unsigned>(std::stoul(tok)));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

std::vector<std::string>
parseNameList(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        const std::size_t comma = s.find(',', pos);
        out.push_back(s.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

/** Generation name as a stats-scalar key fragment: '-'/'.' -> '_'. */
std::string
keyOf(const std::string &gen)
{
    std::string k = gen;
    for (auto &c : k)
        if (c == '-' || c == '.')
            c = '_';
    return k;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);

    std::vector<std::string> gens = dramGenerationNames();
    std::vector<unsigned> channels = {1u, 2u};
    std::vector<unsigned> ranks = {2u, 4u, 8u};
    unsigned batch = 8;
    unsigned pf = 40;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                fatal("%s needs a value", arg.c_str());
            return argv[i];
        };
        if (arg == "--gens") gens = parseNameList(next());
        else if (arg == "--channels")
            channels = parseUnsignedList(next(), "--channels");
        else if (arg == "--ranks")
            ranks = parseUnsignedList(next(), "--ranks");
        else if (arg == "--batch") batch = std::stoul(next());
        else if (arg == "--pf") pf = std::stoul(next());
        else fatal("unknown flag '%s'", arg.c_str());
    }
    if (gens.empty() || channels.empty() || ranks.empty() ||
        batch == 0 || pf == 0)
        fatal("empty sweep axis");

    banner("Scaling sweep: DRAM generation x channels x ranks "
           "(SLS NDP throughput)");
    std::printf("  matrix: batch=%u pf=%u, %zu generation(s) x %zu "
                "channel count(s) x %zu rank count(s)\n\n",
                batch, pf, gens.size(), channels.size(), ranks.size());
    std::printf("  %-16s %-9s %-7s %-14s %-12s\n", "generation",
                "channels", "ranks", "NDP cycles", "QPS");

    // (gen, channels, ranks) -> sustained QPS, on the time axis so
    // the 1.2 GHz and 2.4 GHz clocks compare fairly.
    std::map<std::string, std::map<std::pair<unsigned, unsigned>,
                                   double>> qps;
    for (const auto &gen : gens) {
        const DramConfig dram = makeDramConfig(gen);
        for (const unsigned c : channels) {
            for (const unsigned r : ranks) {
                SystemConfig sys = defaultSystem(r, 8);
                sys.dram = dram;
                sys.dram.geometry.channels = c;
                sys.dram.geometry.ranks = r;
                SlsTraceConfig tc;
                tc.batch = batch;
                tc.pf = pf;
                const auto trace = buildSlsTrace(rmc1Small(), tc);
                const auto m = runWorkload(sys, trace,
                                           ExecMode::NdpUnprotected);
                const double q =
                    trace.queries.size() * 1e9 / m.ns;
                qps[gen][{c, r}] = q;
                std::printf("  %-16s %-9u %-7u %-14lld %12.0f\n",
                            gen.c_str(), c, r,
                            static_cast<long long>(m.cycles), q);
            }
        }
    }

    // Sidecar group: the matrix, per-cell DDR5-pch speedups, and the
    // gated headline. Scoped so it retires before the sidecar dump.
    std::string best_name;
    {
        StatGroup scaling("scaling");
        double best = 0.0;
        for (const auto &gen : gens) {
            const std::string gk = keyOf(gen);
            for (const auto &[cell, q] : qps[gen]) {
                char key[96];
                std::snprintf(key, sizeof(key), "qps_%s_c%u_r%u",
                              gk.c_str(), cell.first, cell.second);
                scaling.scalar(key) = q;
                if (q > best) {
                    best = q;
                    char nm[96];
                    std::snprintf(nm, sizeof(nm), "%s c%u r%u",
                                  gen.c_str(), cell.first,
                                  cell.second);
                    best_name = nm;
                }
            }
        }
        scaling.scalar("best_qps") = best;

        // Equal-pin speedup: DDR5 pseudo-channels vs the paper's
        // DDR4-2400 at the same (channels, ranks) cell. The headline
        // is the largest cell both generations ran.
        const auto d4 = qps.find("ddr4-2400");
        const auto d5 = qps.find("ddr5-4800-pch");
        if (d4 != qps.end() && d5 != qps.end()) {
            double headline = 0.0;
            std::pair<unsigned, unsigned> headline_cell{0, 0};
            for (const auto &[cell, q5] : d5->second) {
                const auto base = d4->second.find(cell);
                if (base == d4->second.end() || base->second <= 0)
                    continue;
                const double sp = q5 / base->second;
                char key[96];
                std::snprintf(key, sizeof(key),
                              "speedup_ddr5_pch_vs_ddr4_c%u_r%u",
                              cell.first, cell.second);
                scaling.scalar(key) = sp;
                if (cell >= headline_cell) {
                    headline_cell = cell;
                    headline = sp;
                }
            }
            if (headline > 0) {
                scaling.scalar("speedup_ddr5_pch_vs_ddr4") = headline;
                std::printf("\n  DDR5-pch vs DDR4-2400 (equal "
                            "channels=%u, ranks=%u): %.2fx\n",
                            headline_cell.first, headline_cell.second,
                            headline);
            }
        }
    }
    std::printf("  best: %s\n", best_name.c_str());

    {
        auto &reg = StatRegistry::instance();
        reg.setMeta("tool", "bench_scaling_sweep");
        reg.setMeta("scaling_best", best_name);
        char knobs[64];
        std::snprintf(knobs, sizeof(knobs), "batch=%u pf=%u", batch,
                      pf);
        reg.setMeta("config", knobs);
    }

    std::printf("\nshape: DDR5 pseudo-channels double the per-rank PU "
                "count at equal pins;\nthe per-pseudo-channel line "
                "rate matches the DDR4 bus (BL16 at 2x clock on\nhalf "
                "the width), so NDP throughput scales with channels x "
                "ranks x pseudo-\nchannels minus shared-command-bus "
                "and refresh overheads.\n");
    writeStatsSidecar("scaling_sweep");
    return 0;
}
