/**
 * @file
 * Reproduces paper Figure 9: speedup of the SecNDP verification-tag
 * storage options (Enc-only / Ver-coloc / Ver-sep / Ver-ECC) at
 * NDP_rank=8, NDP_reg=8 with 12 AES engines, normalized to each
 * workload's unprotected non-NDP baseline.
 *
 * Paper shape targets:
 *  - fp32 SLS: Ver-ECC == Enc-only (no extra access); Ver-coloc
 *    slightly below; Ver-sep worst (~40% below Enc-only: an extra
 *    activation + line per row).
 *  - quantized SLS: Ver-ECC not applicable (tag does not fit the
 *    ECC budget of a sub-line row); Ver-coloc close to Enc-only but
 *    not equal (misaligned rows straddle line boundaries).
 *  - analytics: verification nearly free (tag small vs 4 KB rows).
 */

#include "bench_common.hh"
#include "common/logging.hh"

using namespace secndp;
using namespace secndp::bench;

namespace {

void
row(const char *name, const WorkloadTrace &base_trace,
    const WorkloadTrace &trace, ExecMode mode, bool applicable = true)
{
    if (!applicable) {
        std::printf("  %-12s %10s\n", name, "N/A");
        return;
    }
    SystemConfig sys = defaultSystem(8, 8, 12);
    const Cycle base = cpuBaselineCycles(sys, base_trace);
    const auto m = runWorkload(sys, trace, mode);
    std::printf("  %-12s %9.2fx   (%.0f%% pkts decrypt-bound)\n",
                name, static_cast<double>(base) / m.cycles,
                100 * m.fracDecryptBound);
}

void
group(const char *title, QuantScheme quant, bool ecc_applicable)
{
    std::printf("\n%s\n", title);
    const auto model = rmc1Small();
    SlsTraceConfig tc;
    tc.batch = 8;
    tc.pf = 80;
    tc.quant = quant;
    const auto base_trace = buildSlsTrace(model, tc);

    row("Enc-only", base_trace, base_trace, ExecMode::SecNdpEnc);
    tc.layout = VerLayout::Coloc;
    row("Ver-coloc", base_trace, buildSlsTrace(model, tc),
        ExecMode::SecNdpEncVer);
    tc.layout = VerLayout::Sep;
    row("Ver-sep", base_trace, buildSlsTrace(model, tc),
        ExecMode::SecNdpEncVer);
    tc.layout = VerLayout::Ecc;
    row("Ver-ECC", base_trace, buildSlsTrace(model, tc),
        ExecMode::SecNdpEncVer, ecc_applicable);
}

} // namespace

int
main()
{
    setVerbose(false);
    banner("Figure 9: SecNDP encryption + verification schemes "
           "(NDP_rank=8, NDP_reg=8, 12 AES engines)");

    group("SLS fp32 (128 B rows)", QuantScheme::None,
          verEccFits(slsRowBytes(rmc1Small(), QuantScheme::None)));
    group("SLS 8-bit quant (32 B rows; tags don't fit ECC)",
          QuantScheme::ColumnWise,
          verEccFits(slsRowBytes(rmc1Small(),
                                 QuantScheme::ColumnWise)));

    std::printf("\nMedical data analytics (4 KB rows)\n");
    MedicalDbConfig db;
    db.genes = 1024;
    db.patients = 50000;
    db.pf = 1500;
    db.numQueries = 4;
    const auto ana_base = buildMedicalTrace(db, VerLayout::None);
    row("Enc-only", ana_base, ana_base, ExecMode::SecNdpEnc);
    row("Ver-coloc", ana_base, buildMedicalTrace(db, VerLayout::Coloc),
        ExecMode::SecNdpEncVer);
    row("Ver-sep", ana_base, buildMedicalTrace(db, VerLayout::Sep),
        ExecMode::SecNdpEncVer);
    row("Ver-ECC", ana_base, buildMedicalTrace(db, VerLayout::Ecc),
        ExecMode::SecNdpEncVer);

    std::printf("\npaper shape: Ver-ECC == Enc-only; Ver-sep ~40%% "
                "below Enc-only on fp32 SLS;\nVer-coloc close to "
                "Enc-only; analytics verification nearly free.\n");
    writeStatsSidecar("bench_fig9_verification");
    return 0;
}
