/**
 * @file
 * Reproduces paper Figure 7: speedup of the NDP-offloaded kernels
 * (SLS fp32, SLS 8-bit quantized, medical analytics) over the
 * unprotected non-NDP baseline, across NDP settings
 * (NDP_rank, NDP_reg) and, for SecNDP-Enc, numbers of AES engines.
 *
 * Paper shape targets: speedup grows with NDP_rank and (for SLS)
 * with NDP_reg, up to 5.59x (fp32) / 6.89x (quantized) / 7.46x
 * (analytics) at rank=8; with few AES engines SecNDP falls behind
 * native NDP, and reaches it as engines are added ("the performance
 * bottleneck eventually shifts to the memory bandwidth").
 */

#include "bench_common.hh"
#include "common/logging.hh"

using namespace secndp;
using namespace secndp::bench;

namespace {

struct NdpSetting
{
    unsigned ranks, regs;
};

const NdpSetting kSettings[] = {{2, 4}, {4, 4}, {8, 4}, {8, 8}};
const unsigned kAesCounts[] = {2, 4, 8, 12};

/**
 * Sweep one workload variant. All speedups are normalized to
 * `base_trace`'s non-NDP time on the same hardware -- for quantized
 * SLS variants that is the fp32 baseline, exactly as in the paper
 * (where "quantization provides 17-27% speedup ... in both the NDP
 * and non-NDP settings" relative to the fp32 bars).
 */
void
sweep(const char *title, const WorkloadTrace &base_trace,
      const WorkloadTrace &trace)
{
    std::printf("\n%s\n", title);
    std::printf("  %-12s %-9s %-10s", "(rank,reg)", "non-NDP",
                "unprot-NDP");
    for (unsigned aes : kAesCounts)
        std::printf(" enc@%-2uAES ", aes);
    std::printf("\n");

    for (const auto &setting : kSettings) {
        SystemConfig sys = defaultSystem(setting.ranks, setting.regs);
        const Cycle base = cpuBaselineCycles(sys, base_trace);
        const Cycle own = &trace == &base_trace
                              ? base
                              : cpuBaselineCycles(sys, trace);
        const auto sim = simulateNdpBatch(sys, trace);
        std::printf("  (%u,%u)%6s %7.2fx %9.2fx", setting.ranks,
                    setting.regs, "",
                    static_cast<double>(base) / own,
                    static_cast<double>(base) /
                        sim.batch.totalCycles);
        for (unsigned aes : kAesCounts) {
            EngineConfig ec = sys.engine;
            ec.nAesEngines = aes;
            const auto ov = overlayEngine(ec, sys.dram.clock,
                                          sim.batch.packets, sim.work,
                                          false);
            std::printf(" %8.2fx ",
                        static_cast<double>(base) / ov.totalCycles);
        }
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    setVerbose(false);
    banner("Figure 7: speedup of unprotected NDP (red) and "
           "SecNDP-Enc vs #AES engines (green),\nnormalized to the "
           "unprotected non-NDP baseline (blue) of each workload");

    const auto model = rmc1Small();
    SlsTraceConfig tc;
    tc.batch = 8;
    tc.pf = 80;

    // SLS, fp32 rows (128 B) -- also the normalization baseline for
    // the quantized variants, as in the paper's Figure 7.
    const auto fp32_trace = buildSlsTrace(model, tc);
    sweep("SLS fp32 (PF=80)", fp32_trace, fp32_trace);

    // SLS, 8-bit column/table-wise quantization (32 B rows).
    tc.quant = QuantScheme::ColumnWise;
    sweep("SLS 8-bit quant, column/table-wise (vs fp32 baseline)",
          fp32_trace, buildSlsTrace(model, tc));

    // SLS, 8-bit row-wise quantization (40 B rows + in-row scale).
    tc.quant = QuantScheme::RowWise;
    sweep("SLS 8-bit quant, row-wise (row_quan, vs fp32 baseline)",
          fp32_trace, buildSlsTrace(model, tc));

    // Medical analytics (contiguous scans; one result per query, so
    // NDP_reg does not matter -- visible below).
    MedicalDbConfig db;
    db.genes = 1024;
    db.patients = 50000;
    db.pf = 1500;
    db.numQueries = 4;
    const auto ana = buildMedicalTrace(db, VerLayout::None);
    sweep("Medical data analytics", ana, ana);

    std::printf("\npaper shape: fp32 up to 5.59x, quant up to 6.89x, "
                "analytics 7.46x at (8,8);\nSecNDP-Enc approaches "
                "unprotected NDP as AES engines increase; quantized "
                "SLS\nneeds ~1/3 the AES engines of fp32.\n");
    writeStatsSidecar("bench_fig7_ndp_speedup");
    return 0;
}
