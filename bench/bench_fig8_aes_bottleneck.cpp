/**
 * @file
 * Reproduces paper Figure 8: the percentage of NDP packets whose
 * completion is bottlenecked by decryption (OTP-generation)
 * bandwidth, as a function of the number of AES engines, for
 * different NDP_rank counts, for SLS with and without quantization.
 *
 * Paper shape targets: with NDP_rank=8, ~8 engines still leave ~30%
 * of fp32 packets decrypt-bound (10 engines match burst-mode
 * throughput); quantization cuts the required engines to about a
 * third.
 */

#include "bench_common.hh"
#include "common/logging.hh"

using namespace secndp;
using namespace secndp::bench;

namespace {

const unsigned kAesCounts[] = {1, 2, 4, 6, 8, 10, 12, 16};

void
sweep(const char *title, QuantScheme quant)
{
    const auto model = rmc1Small();
    std::printf("\n%s\n", title);
    std::printf("  %-10s", "NDP_rank");
    for (unsigned aes : kAesCounts)
        std::printf(" %5uAES", aes);
    std::printf("\n");

    for (unsigned ranks : {2u, 4u, 8u}) {
        SystemConfig sys = defaultSystem(ranks, 8);
        SlsTraceConfig tc;
        tc.batch = 8;
        tc.pf = 80;
        tc.quant = quant;
        const auto trace = buildSlsTrace(model, tc);
        const auto sim = simulateNdpBatch(sys, trace);

        std::printf("  %-10u", ranks);
        for (unsigned aes : kAesCounts) {
            EngineConfig ec = sys.engine;
            ec.nAesEngines = aes;
            const auto ov = overlayEngine(ec, sys.dram.clock,
                                          sim.batch.packets, sim.work,
                                          false);
            std::printf(" %7.0f%%", 100.0 * ov.fractionDecryptBound);
        }
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    setVerbose(false);
    banner("Figure 8: %% of SLS NDP packets bottlenecked by "
           "decryption bandwidth\n(SecNDP-Enc, NDP_reg=8, PF=80)");

    sweep("SLS fp32", QuantScheme::None);
    sweep("SLS 8-bit quant (column/table-wise)",
          QuantScheme::ColumnWise);

    std::printf("\npaper shape: more ranks need more AES engines; "
                "~10 engines cover rank=8 fp32\nburst mode; "
                "quantization needs roughly one third the engines.\n");
    writeStatsSidecar("bench_fig8_aes_bottleneck");
    return 0;
}
