/**
 * @file
 * Reproduces paper Table V: memory energy consumption of SecNDP in
 * pJ per result bit for the SLS workload at PF=80, and the SecNDP
 * engine area estimate of section VII-C.
 *
 * Paper reference (pJ/bit, PF = pooling factor):
 *   unprotected non-NDP : DIMM 27.42xPF, IO 7.3xPF, engine 0, 100%
 *   unprotected NDP     : DIMM 27.42xPF, IO 7.3,    engine 0, 79.2%
 *   non-NDP Enc         : DIMM 27.42xPF, IO 7.3xPF, 0.5xPF,  101.5%
 *   SecNDP Enc          : DIMM 27.42xPF, IO 7.3,    0.9xPF,  81.83%
 *   SecNDP Enc+ver      : DIMM 30.85xPF, IO 8.2,    1.01xPF+1.72,
 *                                                            92.09%
 *   Area: 1.625 mm^2 at 45 nm with 10 AES engines.
 */

#include "bench_common.hh"
#include "common/logging.hh"
#include "energy/energy_model.hh"

using namespace secndp;
using namespace secndp::bench;

int
main()
{
    setVerbose(false);
    banner("Table V: memory energy consumption of SecNDP "
           "(SLS fp32, PF=80, per result bit)");

    const unsigned pf = 80;
    SystemConfig sys = defaultSystem(8, 8, 12);
    const auto model = rmc1Small();
    SlsTraceConfig tc;
    tc.batch = 8;
    tc.pf = pf;
    const auto trace = buildSlsTrace(model, tc);
    tc.layout = VerLayout::Ecc;
    const auto ver_trace = buildSlsTrace(model, tc);

    const double result_bits =
        static_cast<double>(trace.queries.size()) * 32 * 32;

    const EnergyParams ep;
    struct Line
    {
        const char *name;
        EnergyBreakdown e;
    };
    std::vector<Line> lines;

    auto add = [&](const char *name, const WorkloadTrace &t,
                   ExecMode mode, double dimm_factor) {
        const auto m = runWorkload(sys, t, mode);
        lines.push_back({name, computeEnergy(ep, m, dimm_factor)});
    };

    add("unprotected non-NDP", trace, ExecMode::CpuUnprotected, 1.0);
    add("unprotected NDP", trace, ExecMode::NdpUnprotected, 1.0);
    add("non-NDP Enc", trace, ExecMode::CpuTee, 1.0);
    add("SecNDP Enc", trace, ExecMode::SecNdpEnc, 1.0);
    // Ver-ECC: 16 B tag rides the ECC chip per 128 B row => 1.125x
    // device/interface bits.
    add("SecNDP Enc+ver", ver_trace, ExecMode::SecNdpEncVer,
        1.0 + 16.0 / 128.0);

    const double base_total = lines[0].e.totalPj();
    std::printf("  %-22s %11s %9s %13s %10s\n", "", "DIMM", "DIMM IO",
                "SecNDP Engine", "Normd.Mem");
    std::printf("  %-22s %11s %9s %13s %10s\n", "(pJ/result-bit)", "",
                "", "", "(PF=80)");
    hr();
    for (const auto &l : lines) {
        std::printf("  %-22s %11.1f %9.2f %13.2f %9.2f%%\n", l.name,
                    l.e.dimmPj / result_bits, l.e.ioPj / result_bits,
                    l.e.enginePj / result_bits,
                    100.0 * l.e.totalPj() / base_total);
    }
    hr();
    std::printf("paper (pJ/result-bit): DIMM 27.42xPF=2194; IO "
                "7.3xPF=584 (non-NDP) or 7.3 (NDP);\nengine 0.5xPF=40 "
                "(non-NDP Enc), 0.9xPF=72 (SecNDP Enc), "
                "1.01xPF+1.72=82.5 (Enc+ver);\nnormalized 100 / 79.2 "
                "/ 101.5 / 81.83 / 92.09 %%\n");

    std::printf("\nSecNDP engine area at 45 nm:\n");
    for (unsigned aes : {8u, 10u, 12u}) {
        std::printf("  %2u AES engines + OTP PU + verifier: %.3f "
                    "mm^2\n", aes, engineAreaMm2(ep, aes, true));
    }
    std::printf("paper: 1.625 mm^2 with 10 AES engines\n");
    writeStatsSidecar("bench_table5_energy");
    return 0;
}
