/**
 * @file
 * ABLATION: rank-level load imbalance vs NDP speedup.
 *
 * The paper attributes the gap between SLS (irregular) and analytics
 * (regular) NDP speedups to access-pattern regularity (section
 * VII-A). This ablation sweeps the Zipf skew of embedding-row
 * popularity and the pooling factor: hotter rows concentrate work on
 * fewer pages/ranks, and the slowest-rank bound (plus NDP_reg
 * occupancy) eats into the rank-parallel speedup.
 */

#include "bench_common.hh"
#include "common/logging.hh"

using namespace secndp;
using namespace secndp::bench;

int
main()
{
    setVerbose(false);
    banner("Ablation: access skew and pooling factor vs NDP speedup "
           "(RMC1-small, rank=8, reg=8)");

    const auto model = rmc1Small();

    std::printf("Zipf skew sweep (PF=80):\n");
    std::printf("  %-8s %-12s %-10s\n", "alpha", "NDP-speedup",
                "lines/query");
    for (double alpha : {0.0, 0.6, 0.9, 1.1, 1.4}) {
        SystemConfig sys = defaultSystem(8, 8);
        SlsTraceConfig tc;
        tc.batch = 8;
        tc.pf = 80;
        tc.zipfAlpha = alpha;
        const auto trace = buildSlsTrace(model, tc);
        const Cycle base = cpuBaselineCycles(sys, trace);
        const auto sim = simulateNdpBatch(sys, trace);
        std::printf("  %-8.1f %11.2fx %-10.1f\n", alpha,
                    static_cast<double>(base) / sim.batch.totalCycles,
                    static_cast<double>(sim.batch.totalLines) /
                        trace.queries.size());
    }

    std::printf("\nPooling-factor sweep (uniform rows):\n");
    std::printf("  %-8s %-12s\n", "PF", "NDP-speedup");
    for (unsigned pf : {10u, 20u, 40u, 80u, 160u}) {
        SystemConfig sys = defaultSystem(8, 8);
        SlsTraceConfig tc;
        tc.batch = 8;
        tc.pf = pf;
        const auto trace = buildSlsTrace(model, tc);
        const Cycle base = cpuBaselineCycles(sys, trace);
        const auto sim = simulateNdpBatch(sys, trace);
        std::printf("  %-8u %11.2fx\n", pf,
                    static_cast<double>(base) /
                        sim.batch.totalCycles);
    }

    std::printf("\nshape: higher skew concentrates lookups (fewer "
                "distinct lines via dedup, hotter\nrows/banks) and "
                "lowers the rank-parallel win; larger PF amortizes "
                "per-packet\noverheads and fills all ranks, raising "
                "speedup toward the rank count.\n");
    writeStatsSidecar("bench_ablation_skew");
    return 0;
}
