/**
 * @file
 * ABLATION: per-packet latency distribution under SecNDP.
 *
 * Recommendation serving cares about tail latency, not just
 * throughput (the paper's RecNMP lineage reports P95 latencies).
 * This ablation reports mean/P50/P95/P99 packet latency for native
 * NDP and SecNDP-Enc across AES-engine counts and NDP_reg values:
 * the decryption pipeline and register occupancy both stretch the
 * tail before they dent the mean.
 */

#include "bench_common.hh"
#include "common/logging.hh"
#include "common/stats.hh"

using namespace secndp;
using namespace secndp::bench;

namespace {

void
report(const char *name, const std::vector<Cycle> &finish,
       const std::vector<PacketTiming> &packets)
{
    Samples lat;
    for (std::size_t q = 0; q < packets.size(); ++q)
        lat.add(static_cast<double>(finish[q] - packets[q].issued));
    std::printf("  %-22s %8.0f %8.0f %8.0f %8.0f\n", name, lat.mean(),
                lat.percentile(0.50), lat.percentile(0.95),
                lat.percentile(0.99));
}

} // namespace

int
main()
{
    setVerbose(false);
    banner("Ablation: per-packet latency distribution "
           "(SLS fp32, PF=80, rank=8; cycles)");

    const auto model = rmc1Small();
    SlsTraceConfig tc;
    tc.batch = 16;
    tc.pf = 80;
    const auto trace = buildSlsTrace(model, tc);

    std::printf("  %-22s %8s %8s %8s %8s\n", "config", "mean", "P50",
                "P95", "P99");
    for (unsigned regs : {2u, 8u}) {
        SystemConfig sys = defaultSystem(8, regs);
        const auto sim = simulateNdpBatch(sys, trace);

        char label[64];
        std::snprintf(label, sizeof(label), "NDP reg=%u", regs);
        std::vector<Cycle> native;
        for (const auto &p : sim.batch.packets)
            native.push_back(p.finished);
        report(label, native, sim.batch.packets);

        for (unsigned aes : {4u, 12u}) {
            EngineConfig ec = sys.engine;
            ec.nAesEngines = aes;
            const auto ov = overlayEngine(ec, sys.dram.clock,
                                          sim.batch.packets, sim.work,
                                          false);
            std::snprintf(label, sizeof(label),
                          "SecNDP reg=%u aes=%u", regs, aes);
            report(label, ov.finished, sim.batch.packets);
        }
    }

    std::printf("\nshape: starved AES pools inflate the whole "
                "distribution, tail first; enough\nengines collapse "
                "SecNDP's distribution onto native NDP's. More "
                "registers raise\nPER-PACKET latency (more in-flight "
                "interference) while improving batch\nthroughput -- "
                "the classic latency/throughput trade the NDP_reg "
                "knob controls.\n");
    writeStatsSidecar("bench_ablation_latency");
    return 0;
}
