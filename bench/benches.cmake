# Bench targets are defined at the top level (include()d from the root
# CMakeLists) with RUNTIME_OUTPUT_DIRECTORY set to build/bench, so that
# directory contains ONLY runnable experiment binaries and
# `for b in build/bench/*; do $b; done` regenerates every table/figure
# without tripping over CMake-generated files.

function(secndp_bench name)
    add_executable(${name} ${PROJECT_SOURCE_DIR}/bench/${name}.cpp)
    target_link_libraries(${name} PRIVATE secndp_workloads
        secndp_energy)
    set_target_properties(${name} PROPERTIES
        RUNTIME_OUTPUT_DIRECTORY ${PROJECT_BINARY_DIR}/bench)
endfunction()

secndp_bench(bench_table3_endtoend)
secndp_bench(bench_fig7_ndp_speedup)
secndp_bench(bench_fig8_aes_bottleneck)
secndp_bench(bench_fig9_verification)
secndp_bench(bench_fig10_ver_bottleneck)
secndp_bench(bench_fig11_breakdown)
secndp_bench(bench_table4_accuracy)
secndp_bench(bench_table5_energy)
secndp_bench(bench_ablation_checksum)
secndp_bench(bench_ablation_skew)
secndp_bench(bench_ablation_latency)
secndp_bench(bench_ablation_channels)
secndp_bench(bench_ablation_provisioning)
secndp_bench(bench_scaling_sweep)

secndp_bench(bench_cache_sweep)
target_link_libraries(bench_cache_sweep PRIVATE secndp_cache)

secndp_bench(bench_ext_storage)
target_link_libraries(bench_ext_storage PRIVATE secndp_storage)

add_executable(bench_micro_crypto
    ${PROJECT_SOURCE_DIR}/bench/bench_micro_crypto.cpp)
target_link_libraries(bench_micro_crypto PRIVATE secndp_core
    benchmark::benchmark)
set_target_properties(bench_micro_crypto PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${PROJECT_BINARY_DIR}/bench)
