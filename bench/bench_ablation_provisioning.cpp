/**
 * @file
 * ABLATION: provisioning (initialization step T0) cost.
 *
 * Before any secure NDP query, the table must be arithmetic-encrypted
 * and written to memory, and per-row tags generated (paper Fig. 4,
 * T0). The write stream and OTP generation pipeline, so T0 time is
 * max(memory-write time, AES-pool time, tag-engine time). This bench
 * locates the crossover: with few AES engines T0 is encryption-bound;
 * with the Fig. 8 provisioning (~10+), it is write-bandwidth-bound --
 * i.e. SecNDP provisioning costs the same as loading plaintext.
 */

#include "bench_common.hh"
#include "common/logging.hh"

using namespace secndp;
using namespace secndp::bench;

namespace {

/** Sustained write bandwidth of the channel from a short stream. */
double
writeGBps(const SystemConfig &sys)
{
    DramChannel channel(sys.dram);
    MemoryController ctrl(channel);
    const unsigned n = 4096; // 256 KB sequential write burst
    for (unsigned i = 0; i < n; ++i)
        ctrl.enqueue({i * 64ull, true, i});
    const Cycle cycles = ctrl.drain(0);
    return n * 64.0 / (cycles * sys.dram.clock.nsPerCycle());
}

} // namespace

int
main()
{
    setVerbose(false);
    banner("Ablation: provisioning (T0) time for a 1 GB embedding "
           "table, with per-row tags");

    SystemConfig sys = defaultSystem(8, 8);
    const double table_gb = 1.0;
    const double bytes = table_gb * (1ULL << 30);
    const double rows = bytes / 128.0; // fp32 rows, m=32

    const double wr_gbps = writeGBps(sys);
    const double write_ms = bytes / wr_gbps / 1e6;
    std::printf("  sustained write bandwidth: %.1f GB/s -> write "
                "stream %.1f ms\n\n", wr_gbps, write_ms);

    std::printf("  %-8s %-16s %-14s %-12s %-12s\n", "AES", "OTP (ms)",
                "tags (ms)", "T0 (ms)", "bound-by");
    for (unsigned aes : {1u, 2u, 4u, 8u, 10u, 12u}) {
        EngineConfig ec = sys.engine;
        ec.nAesEngines = aes;
        // Data pads: one AES block per 16 B; tag pads: 1 per row + s.
        const double blocks = bytes / 16.0;
        const double bpc = ec.blocksPerCycle(sys.dram.clock);
        const double otp_ms = blocks / bpc *
                              sys.dram.clock.nsPerCycle() / 1e6;
        // Tag generation: m field MACs per row in the verification
        // engine (4 pipelined MAC lanes for bulk T0 hashing; query
        // verification only ever needs m ops/packet) + 1 AES pad
        // per row.
        const double tag_lanes = 4.0;
        const double tag_cycles = rows * 32.0 / tag_lanes;
        const double tag_pad_ms = rows / bpc *
                                  sys.dram.clock.nsPerCycle() / 1e6;
        const double tag_ms =
            std::max(tag_cycles * sys.dram.clock.nsPerCycle() / 1e6,
                     tag_pad_ms);
        const double t0 = std::max({write_ms, otp_ms, tag_ms});
        const char *bound = t0 == write_ms ? "memory"
                            : t0 == otp_ms ? "AES pool"
                                           : "tag engine";
        std::printf("  %-8u %-16.1f %-14.1f %-12.1f %-12s\n", aes,
                    otp_ms, tag_ms, t0, bound);
    }

    std::printf("\nshape: provisioning is encryption-bound below the "
                "Fig. 8 engine provisioning\nand memory-bound at/"
                "above it -- securing the table costs no extra T0 "
                "time once\nthe engines sized for queries exist. "
                "Re-encryption (version bump) costs the\nsame T0, "
                "which is why versions are per-region and bumped in "
                "bulk (section V-A).\n");
    writeStatsSidecar("bench_ablation_provisioning");
    return 0;
}
