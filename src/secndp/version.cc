#include "secndp/version.hh"

#include "common/logging.hh"

namespace secndp {

std::uint64_t
VersionManager::freshVersion(std::uint64_t region_id)
{
    auto it = versions_.find(region_id);
    if (it == versions_.end()) {
        if (versions_.size() >= capacity_) {
            fatal("version manager capacity (%zu regions) exceeded",
                  capacity_);
        }
        it = versions_.emplace(region_id, 0).first;
    }
    it->second = nextVersion_++;
    return it->second;
}

std::uint64_t
VersionManager::currentVersion(std::uint64_t region_id) const
{
    auto it = versions_.find(region_id);
    SECNDP_ASSERT(it != versions_.end(),
                  "unknown region %lu", region_id);
    return it->second;
}

void
VersionManager::release(std::uint64_t region_id)
{
    versions_.erase(region_id);
}

} // namespace secndp
