#include "secndp/version.hh"

#include "common/logging.hh"

namespace secndp {

std::uint64_t
VersionManager::freshVersion(std::uint64_t region_id)
{
    // Wraparound policy (see version.hh): reusing an (addr, version)
    // pair would repeat counter-mode pads, so refuse outright before
    // issuing anything. The operator must re-key to re-open the
    // version space. (nextVersion_ == 0 also rejects a manager
    // mis-constructed with the reserved first_version 0.)
    if (nextVersion_ == 0) {
        fatal("version space exhausted after %llu draws: refusing to "
              "wrap (re-key to re-open the version space)",
              static_cast<unsigned long long>(drawCount_));
    }
    auto it = versions_.find(region_id);
    if (it == versions_.end()) {
        if (versions_.size() >= capacity_) {
            fatal("version manager capacity (%zu regions) exceeded",
                  capacity_);
        }
        it = versions_.emplace(region_id, 0).first;
    }
    it->second = nextVersion_++;
    ++drawCount_;
    // Fire before returning: whoever derived state from this
    // region's previous version must drop it before anything can be
    // encrypted (or served) under the new one.
    if (bumpListener_)
        bumpListener_(region_id, it->second);
    return it->second;
}

void
VersionManager::rekey(std::uint64_t first_version)
{
    SECNDP_ASSERT(first_version != 0,
                  "version 0 is reserved (never versioned)");
    versions_.clear();
    nextVersion_ = first_version;
    // (0, 0): the whole version space was re-opened under a new key;
    // every cached derivation of the old one is stale.
    if (bumpListener_)
        bumpListener_(0, 0);
}

std::uint64_t
VersionManager::currentVersion(std::uint64_t region_id) const
{
    auto it = versions_.find(region_id);
    SECNDP_ASSERT(it != versions_.end(),
                  "unknown region %lu", region_id);
    return it->second;
}

void
VersionManager::release(std::uint64_t region_id)
{
    versions_.erase(region_id);
}

} // namespace secndp
