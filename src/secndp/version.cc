#include "secndp/version.hh"

#include "common/logging.hh"

namespace secndp {

std::uint64_t
VersionManager::freshVersion(std::uint64_t region_id)
{
    // Wraparound policy (see version.hh): reusing an (addr, version)
    // pair would repeat counter-mode pads, so refuse outright before
    // issuing anything. The operator must re-key to re-open the
    // version space. (nextVersion_ == 0 also rejects a manager
    // mis-constructed with the reserved first_version 0.)
    if (nextVersion_ == 0) {
        fatal("version space exhausted after %llu draws: refusing to "
              "wrap (re-key to re-open the version space)",
              static_cast<unsigned long long>(drawCount_));
    }
    auto it = versions_.find(region_id);
    if (it == versions_.end()) {
        if (versions_.size() >= capacity_) {
            fatal("version manager capacity (%zu regions) exceeded",
                  capacity_);
        }
        it = versions_.emplace(region_id, 0).first;
    }
    it->second = nextVersion_++;
    ++drawCount_;
    return it->second;
}

std::uint64_t
VersionManager::currentVersion(std::uint64_t region_id) const
{
    auto it = versions_.find(region_id);
    SECNDP_ASSERT(it != versions_.end(),
                  "unknown region %lu", region_id);
    return it->second;
}

void
VersionManager::release(std::uint64_t region_id)
{
    versions_.erase(region_id);
}

} // namespace secndp
