#include "secndp/integrity_tree.hh"

#include <cstring>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace secndp {

CounterIntegrityTree::CounterIntegrityTree(const Aes128::Key &key,
                                           std::size_t num_counters,
                                           unsigned arity)
    : gcm_(key), arity_(arity)
{
    SECNDP_ASSERT(arity >= 2, "tree arity must be >= 2");
    SECNDP_ASSERT(num_counters > 0, "empty tree");
    counters_.assign(roundUp(num_counters, arity), 0);

    // Build stored tag levels bottom-up until one node remains; the
    // MAC over that last level is the on-chip root.
    std::size_t nodes = counters_.size() / arity_;
    while (true) {
        levels_.emplace_back(nodes);
        if (nodes == 1)
            break;
        nodes = divCeil(nodes, arity_);
    }
    // Fill tags bottom-up.
    for (std::size_t level = 0; level < levels_.size(); ++level)
        for (std::size_t n = 0; n < levels_[level].size(); ++n)
            levels_[level][n] = nodeTag(level, n);
    root_ = nodeTag(levels_.size(), 0);
}

std::vector<std::uint8_t>
CounterIntegrityTree::childBytes(std::size_t level,
                                 std::size_t node) const
{
    std::vector<std::uint8_t> bytes;
    if (level == 0) {
        bytes.resize(arity_ * sizeof(std::uint64_t));
        std::memcpy(bytes.data(), counters_.data() + node * arity_,
                    bytes.size());
    } else {
        const auto &children = levels_[level - 1];
        const std::size_t first = node * arity_;
        const std::size_t last =
            std::min<std::size_t>(first + arity_, children.size());
        bytes.resize((last - first) * sizeof(Tag));
        std::memcpy(bytes.data(), children[first].data(),
                    bytes.size());
    }
    return bytes;
}

CounterIntegrityTree::Tag
CounterIntegrityTree::nodeTag(std::size_t level, std::size_t node) const
{
    // GMAC with a (level, node)-unique nonce: position binding stops
    // cross-node splicing. No two (level, node) pairs collide.
    AesGcm::Iv iv{};
    iv[0] = static_cast<std::uint8_t>(level);
    for (unsigned i = 0; i < 8; ++i)
        iv[4 + i] = static_cast<std::uint8_t>(node >> (8 * i));
    const auto bytes = childBytes(level, node);
    return gcm_.seal(iv, {}, bytes).tag;
}

CounterIntegrityTree::ReadResult
CounterIntegrityTree::verifiedRead(std::size_t idx) const
{
    SECNDP_ASSERT(idx < counters_.size(), "counter %zu out of %zu",
                  idx, counters_.size());
    ReadResult out;
    // Recompute the path bottom-up; every recomputed tag must match
    // the stored one, and the top one must match the on-chip root.
    std::size_t node = idx / arity_;
    for (std::size_t level = 0; level < levels_.size(); ++level) {
        if (nodeTag(level, node) != levels_[level][node])
            return out;
        node /= arity_;
    }
    if (nodeTag(levels_.size(), 0) != root_)
        return out;
    out.ok = true;
    out.value = counters_[idx];
    return out;
}

void
CounterIntegrityTree::rebuildPath(std::size_t idx)
{
    std::size_t node = idx / arity_;
    for (std::size_t level = 0; level < levels_.size(); ++level) {
        levels_[level][node] = nodeTag(level, node);
        node /= arity_;
    }
    root_ = nodeTag(levels_.size(), 0);
}

void
CounterIntegrityTree::write(std::size_t idx, std::uint64_t value)
{
    SECNDP_ASSERT(idx < counters_.size(), "counter %zu out of %zu",
                  idx, counters_.size());
    counters_[idx] = value;
    rebuildPath(idx);
}

bool
CounterIntegrityTree::increment(std::size_t idx)
{
    const auto read = verifiedRead(idx);
    if (!read.ok)
        return false;
    write(idx, read.value + 1);
    return true;
}

} // namespace secndp
