/**
 * @file
 * The weighted-summation sign/verify oracles of paper Algorithms 6
 * and 7, used to play the standard MAC forgery game (Definition A.4)
 * in tests.
 *
 * ws-MAC signs a matrix by running the honest protocol end to end and
 * returning the NDP-visible response (C_res_0..m-1, C_Tres). ws-Verify
 * accepts an (adversary-chosen) response of the same shape and runs
 * the processor's verification against it. A MAC adversary wins by
 * making ws-Verify pass on a response no sign query produced.
 */

#ifndef SECNDP_SECNDP_ORACLES_HH
#define SECNDP_SECNDP_ORACLES_HH

#include <cstdint>
#include <span>
#include <vector>

#include "secndp/protocol.hh"

namespace secndp {

/** A signed weighted-summation response (what crosses the bus). */
struct WsResponse
{
    /** C_res_j for j in [0, m). */
    std::vector<std::uint64_t> values;
    /** C_Tres. */
    Fq127 cipherTag;

    bool operator==(const WsResponse &o) const = default;
};

/** Sign + verification oracles bound to one provisioned matrix. */
class WsOracles
{
  public:
    /**
     * Provision `plain` under `key` and fix the query shape
     * (row index set + weights, per Definition A.4's constant
     * sequences).
     */
    WsOracles(const Aes128::Key &key, const Matrix &plain,
              std::vector<std::size_t> rows,
              std::vector<std::uint64_t> weights);

    /** ws-MAC: honest protocol run; returns the bus response. */
    WsResponse sign() const;

    /**
     * ws-Verify: run the processor's check against a supplied
     * response.
     * @return true iff verification passes
     */
    bool verify(const WsResponse &response) const;

    /** Count oracle calls (for advantage bookkeeping in tests). */
    std::uint64_t signQueries() const { return signQueries_; }
    std::uint64_t verifyQueries() const { return verifyQueries_; }

    /** The device, so adversarial tests can inspect ciphertext. */
    const UntrustedNdpDevice &device() const { return device_; }

  private:
    SecNdpClient client_;
    UntrustedNdpDevice device_;
    std::vector<std::size_t> rows_;
    std::vector<std::uint64_t> weights_;
    mutable std::uint64_t signQueries_ = 0;
    mutable std::uint64_t verifyQueries_ = 0;
};

} // namespace secndp

#endif // SECNDP_SECNDP_ORACLES_HH
