#include "secndp/oracles.hh"

#include "common/logging.hh"
#include "secndp/checksum.hh"

namespace secndp {

WsOracles::WsOracles(const Aes128::Key &key, const Matrix &plain,
                     std::vector<std::size_t> rows,
                     std::vector<std::uint64_t> weights)
    : client_(key), rows_(std::move(rows)), weights_(std::move(weights))
{
    SECNDP_ASSERT(rows_.size() == weights_.size(),
                  "index/weight length mismatch");
    client_.provision(plain, device_, /*with_tags=*/true);
}

WsResponse
WsOracles::sign() const
{
    ++signQueries_;
    const auto share = device_.weightedSumRows(rows_, weights_,
                                               /*with_tag=*/true);
    return WsResponse{share.values, *share.cipherTag};
}

bool
WsOracles::verify(const WsResponse &response) const
{
    ++verifyQueries_;
    SECNDP_ASSERT(response.values.size() == client_.geometry().cols,
                  "response arity %zu != m %zu", response.values.size(),
                  client_.geometry().cols);

    const std::uint64_t mask = elemMask(client_.geometry().we);
    const auto otp_share = client_.otpRowShare(rows_, weights_);

    std::vector<std::uint64_t> res(response.values.size());
    for (std::size_t j = 0; j < res.size(); ++j)
        res[j] = (response.values[j] + otp_share[j]) & mask;

    // E_Tres.
    Fq127 e_tag(0);
    for (std::size_t k = 0; k < rows_.size(); ++k) {
        e_tag += Fq127(weights_[k]) *
                 client_.encryptor().tagOtp(
                     client_.geometry().rowAddr(rows_[k]),
                     client_.version());
    }

    const Fq127 s = client_.encryptor().checksumSecret(
        client_.geometry().baseAddr, client_.version());
    const Fq127 recomputed = linearChecksum(res, s);
    return recomputed == response.cipherTag + e_tag;
}

} // namespace secndp
