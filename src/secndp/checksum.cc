#include "secndp/checksum.hh"

#include "common/logging.hh"

namespace secndp {

namespace {

/**
 * Horner evaluation of sum_j v_j * s^(m-j) =
 * s * (v_{m-1} + s * (v_{m-2} + ... )) ... built from index 0 forward:
 * acc = (acc + v_j) ... careful -- expanding:
 * T = ((v_0 * s + v_1) * s + v_2) ... * s + v_{m-1}) * s
 * since exponents run m, m-1, ..., 1.
 *
 * Hot path: the accumulator stays weakly reduced across the loop
 * (Fq127Horner) and is canonically reduced once at the end. The
 * fully-reduced per-step variant below is the reference oracle.
 */
template <typename GetElem>
Fq127
hornerChecksum(std::size_t m, Fq127 s, GetElem get)
{
    Fq127Horner acc;
    for (std::size_t j = 0; j < m; ++j)
        acc.mulAdd(s, get(j));
    acc.mulAdd(s, 0); // trailing * s (exponents run m..1)
    return acc.reduced();
}

/** Reference oracle: canonical reduction at every step. */
template <typename GetElem>
Fq127
hornerChecksumRef(std::size_t m, Fq127 s, GetElem get)
{
    Fq127 acc(0);
    for (std::size_t j = 0; j < m; ++j)
        acc = acc * s + Fq127(get(j));
    return acc * s;
}

template <typename GetElem>
Fq127
multiSecret(std::size_t m, const std::vector<Fq127> &secrets, GetElem get)
{
    SECNDP_ASSERT(!secrets.empty(), "no checksum secrets");
    const std::size_t cnt_s = secrets.size();
    if (cnt_s == 1) {
        // Degenerates to Algorithm 2: use the O(m) Horner form.
        return hornerChecksum(m, secrets[0], get);
    }
    // Walk exponents e = 1..m (j = m-1 .. 0). Within residue class
    // k = e mod cnt_s, the needed power s_k^(e / cnt_s) increases by
    // exactly one multiplication per visit, so the whole sum costs
    // O(m) field multiplies instead of O(m log m). The element-times-
    // power products accumulate unreduced in 256-bit limbs (Fq127Dot)
    // and reduce once at the end.
    std::vector<Fq127> power(cnt_s, Fq127(1));
    std::vector<bool> seen(cnt_s, false);
    Fq127Dot acc;
    for (std::size_t e = 1; e <= m; ++e) {
        const std::size_t k = e % cnt_s;
        if (!seen[k]) {
            seen[k] = true;
            power[k] = secrets[k].pow(e / cnt_s); // exp 0 or 1
        } else {
            power[k] *= secrets[k];
        }
        acc.addProduct(power[k], get(m - e));
    }
    return acc.reduced();
}

/** Reference oracle for the Algorithm 8 sum, fully reduced per step. */
template <typename GetElem>
Fq127
multiSecretRef(std::size_t m, const std::vector<Fq127> &secrets,
               GetElem get)
{
    SECNDP_ASSERT(!secrets.empty(), "no checksum secrets");
    const std::size_t cnt_s = secrets.size();
    if (cnt_s == 1)
        return hornerChecksumRef(m, secrets[0], get);
    std::vector<Fq127> power(cnt_s, Fq127(1));
    std::vector<bool> seen(cnt_s, false);
    Fq127 acc(0);
    for (std::size_t e = 1; e <= m; ++e) {
        const std::size_t k = e % cnt_s;
        if (!seen[k]) {
            seen[k] = true;
            power[k] = secrets[k].pow(e / cnt_s);
        } else {
            power[k] *= secrets[k];
        }
        acc += Fq127(get(m - e)) * power[k];
    }
    return acc;
}

} // namespace

Fq127
linearChecksum(const Matrix &mat, std::size_t row, Fq127 s)
{
    SECNDP_ASSERT(row < mat.rows(), "row %zu out of %zu", row,
                  mat.rows());
    return hornerChecksum(mat.cols(), s,
                          [&](std::size_t j) { return mat.get(row, j); });
}

Fq127
linearChecksum(const std::vector<std::uint64_t> &vec, Fq127 s)
{
    return hornerChecksum(vec.size(), s,
                          [&](std::size_t j) { return vec[j]; });
}

Fq127
linearChecksumReference(const Matrix &mat, std::size_t row, Fq127 s)
{
    SECNDP_ASSERT(row < mat.rows(), "row %zu out of %zu", row,
                  mat.rows());
    return hornerChecksumRef(mat.cols(), s, [&](std::size_t j) {
        return mat.get(row, j);
    });
}

Fq127
linearChecksumReference(const std::vector<std::uint64_t> &vec, Fq127 s)
{
    return hornerChecksumRef(vec.size(), s,
                             [&](std::size_t j) { return vec[j]; });
}

Fq127
multiSecretChecksumReference(const std::vector<std::uint64_t> &vec,
                             const std::vector<Fq127> &secrets)
{
    return multiSecretRef(vec.size(), secrets,
                          [&](std::size_t j) { return vec[j]; });
}

Fq127
multiSecretChecksum(const Matrix &mat, std::size_t row,
                    const std::vector<Fq127> &secrets)
{
    SECNDP_ASSERT(row < mat.rows(), "row %zu out of %zu", row,
                  mat.rows());
    return multiSecret(mat.cols(), secrets,
                       [&](std::size_t j) { return mat.get(row, j); });
}

Fq127
multiSecretChecksum(const std::vector<std::uint64_t> &vec,
                    const std::vector<Fq127> &secrets)
{
    return multiSecret(vec.size(), secrets,
                       [&](std::size_t j) { return vec[j]; });
}

std::vector<Fq127>
deriveChecksumSecrets(const CounterModeEncryptor &enc,
                      std::uint64_t paddr_matrix, std::uint64_t version,
                      unsigned cnt_s)
{
    SECNDP_ASSERT(cnt_s >= 1, "cnt_s must be positive");
    std::vector<Fq127> secrets;
    secrets.reserve(cnt_s);
    for (unsigned k = 0; k < cnt_s; ++k) {
        // Distinct tweaks per point: offset the (zero-padded) version
        // field. Version draws are spaced by the caller's manager, and
        // cnt_s is tiny, so tweak uniqueness is preserved.
        secrets.push_back(
            enc.checksumSecret(paddr_matrix,
                               version + (std::uint64_t{k} << 56)));
    }
    return secrets;
}

std::vector<Fq127>
encryptedTags(const CounterModeEncryptor &enc, const Matrix &plain,
              std::uint64_t version, unsigned cnt_s)
{
    const auto secrets =
        deriveChecksumSecrets(enc, plain.baseAddr(), version, cnt_s);
    std::vector<Fq127> tags;
    tags.reserve(plain.rows());
    for (std::size_t i = 0; i < plain.rows(); ++i) {
        const Fq127 t = multiSecretChecksum(plain, i, secrets);
        const Fq127 pad = enc.tagOtp(plain.rowAddr(i), version);
        tags.push_back(t - pad);
    }
    return tags;
}

Fq127
decryptTag(const CounterModeEncryptor &enc, Fq127 cipher_tag,
           std::uint64_t paddr_row, std::uint64_t version)
{
    return cipher_tag + enc.tagOtp(paddr_row, version);
}

} // namespace secndp
