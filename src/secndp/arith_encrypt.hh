/**
 * @file
 * Arithmetic encryption, Arith-E (paper Algorithm 1), and its inverse.
 *
 * Ciphertext element c_j = p_j - e_j mod 2^we, where e_j is the j-th
 * w_e-bit substring of the counter-mode OTP for the containing
 * w_c-bit chunk. The ciphertext and the OTP are arithmetic shares of
 * the plaintext: C + E = P element-wise in Z(2^we), which is what lets
 * the untrusted NDP compute on C while the processor computes on E.
 */

#ifndef SECNDP_SECNDP_ARITH_ENCRYPT_HH
#define SECNDP_SECNDP_ARITH_ENCRYPT_HH

#include <cstdint>

#include "crypto/counter_mode.hh"
#include "secndp/matrix.hh"

namespace secndp {

/**
 * Encrypt a plaintext matrix (Alg. 1). The ciphertext inherits the
 * plaintext's geometry and base address.
 *
 * @param enc pad generator bound to the processor key
 * @param plain plaintext matrix P
 * @param version version number v drawn for this encryption
 * @return ciphertext matrix C with C = P - E mod 2^we
 */
Matrix arithEncrypt(const CounterModeEncryptor &enc, const Matrix &plain,
                    std::uint64_t version);

/** Invert Alg. 1: P = C + E mod 2^we. */
Matrix arithDecrypt(const CounterModeEncryptor &enc, const Matrix &cipher,
                    std::uint64_t version);

/**
 * The processor's share of one element: the OTP substring e for the
 * element at (i, j) of a matrix with this geometry (Alg. 4 lines 8-12).
 */
std::uint64_t otpShare(const CounterModeEncryptor &enc,
                       const Matrix &geometry, std::size_t i,
                       std::size_t j, std::uint64_t version);

} // namespace secndp

#endif // SECNDP_SECNDP_ARITH_ENCRYPT_HH
