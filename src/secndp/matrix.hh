/**
 * @file
 * The 2-D matrix container used by the scheme.
 *
 * A Matrix is n rows x m columns of w_e-bit ring elements, packed
 * row-major at a (simulated) physical base address. The same container
 * holds plaintext P and ciphertext C -- the scheme is share-symmetric.
 * Addresses matter: OTPs are bound to element addresses (Alg. 1), the
 * checksum secret to paddr(P) (Alg. 2), and tag pads to paddr(P_i)
 * (Alg. 3).
 */

#ifndef SECNDP_SECNDP_MATRIX_HH
#define SECNDP_SECNDP_MATRIX_HH

#include <cstdint>

#include "ring/ring_buffer.hh"
#include "secndp/params.hh"

namespace secndp {

/**
 * Shape and placement of a matrix, without its payload. The trusted
 * client keeps only this (plus the version) after provisioning -- the
 * whole point of SecNDP is that the processor does not hold the data.
 */
struct MatrixGeometry
{
    std::size_t rows = 0;
    std::size_t cols = 0;
    ElemWidth we = ElemWidth::W32;
    std::uint64_t baseAddr = 0;

    std::size_t rowBytes() const { return cols * bytes(we); }
    std::size_t sizeBytes() const { return rows * rowBytes(); }

    std::uint64_t rowAddr(std::size_t i) const
    {
        return baseAddr + i * rowBytes();
    }

    std::uint64_t elemAddr(std::size_t i, std::size_t j) const
    {
        return rowAddr(i) + j * bytes(we);
    }

    bool operator==(const MatrixGeometry &o) const = default;
};

/** Row-major matrix of ring elements with an attached base address. */
class Matrix
{
  public:
    Matrix() = default;

    /**
     * @param rows number of row vectors n
     * @param cols elements per row m
     * @param we element width
     * @param base_addr simulated physical byte address of element (0,0);
     *        must be 16-byte (cipher block) aligned
     */
    Matrix(std::size_t rows, std::size_t cols, ElemWidth we,
           std::uint64_t base_addr);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    ElemWidth width() const { return data_.width(); }
    std::uint64_t baseAddr() const { return baseAddr_; }

    /** Shape + placement, as retained by the trusted side. */
    MatrixGeometry geometry() const
    {
        return {rows_, cols_, width(), baseAddr_};
    }

    /** Total payload size in bytes. */
    std::size_t sizeBytes() const { return data_.sizeBytes(); }

    /** Bytes per row. */
    std::size_t rowBytes() const { return cols_ * bytes(width()); }

    /** Physical byte address of row i. */
    std::uint64_t rowAddr(std::size_t i) const
    {
        return baseAddr_ + i * rowBytes();
    }

    /** Physical byte address of element (i, j). */
    std::uint64_t elemAddr(std::size_t i, std::size_t j) const
    {
        return rowAddr(i) + j * bytes(width());
    }

    std::uint64_t get(std::size_t i, std::size_t j) const
    {
        return data_.get(i * cols_ + j);
    }

    void set(std::size_t i, std::size_t j, std::uint64_t v)
    {
        data_.set(i * cols_ + j, v);
    }

    /** The flat element store (memory image). */
    const RingBuffer &buffer() const { return data_; }
    RingBuffer &buffer() { return data_; }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::uint64_t baseAddr_ = 0;
    RingBuffer data_;
};

} // namespace secndp

#endif // SECNDP_SECNDP_MATRIX_HH
