/**
 * @file
 * Linear modular checksums and encrypted verification tags
 * (paper Algorithms 2, 3, and 8).
 *
 * The checksum of a row vector P_i is the Halevi-Krawczyk-style
 * polynomial hash T_i = sum_j P_{i,j} * s^(m-j) mod q over the
 * Mersenne field q = 2^127 - 1, with the secret point s derived from
 * the block cipher in tweak domain '01'. Linearity in P is the key
 * property: h(a x P) = a x h(P), which lets the NDP compute the tag of
 * a weighted-summation *result* from the per-row tags.
 *
 * Tags are stored encrypted (MAC-then-encrypt): C_Ti = T_i - E_Ti
 * mod q with the pad E_Ti from tweak domain '10' (Alg. 3).
 *
 * Algorithm 8 (appendix D) generalizes h to cnt_s independent secret
 * points, tightening the forgery bound from m/q to m/(cnt_s * q).
 */

#ifndef SECNDP_SECNDP_CHECKSUM_HH
#define SECNDP_SECNDP_CHECKSUM_HH

#include <cstdint>
#include <vector>

#include "crypto/counter_mode.hh"
#include "ring/mersenne.hh"
#include "secndp/matrix.hh"

namespace secndp {

/**
 * Linear checksum h_K of one row (Alg. 2):
 * T_i = sum_{j=0}^{m-1} P_{i,j} * s^(m-j) mod q.
 *
 * (Alg. 5 line 10 of the paper writes s^j; Alg. 2 and the appendix
 * correctness proof use s^(m-j) -- we follow the latter everywhere.)
 */
Fq127 linearChecksum(const Matrix &mat, std::size_t row, Fq127 s);

/** Checksum of an arbitrary result vector (processor side, Alg. 5). */
Fq127 linearChecksum(const std::vector<std::uint64_t> &vec, Fq127 s);

/**
 * Multi-secret checksum of Algorithm 8:
 * T_i = sum_j P_{i,j} * s_{(m-j) mod cnt_s} ^ floor((m-j)/cnt_s) mod q.
 */
Fq127 multiSecretChecksum(const Matrix &mat, std::size_t row,
                          const std::vector<Fq127> &secrets);

/** Multi-secret checksum of a result vector. */
Fq127 multiSecretChecksum(const std::vector<std::uint64_t> &vec,
                          const std::vector<Fq127> &secrets);

/**
 * @name Reference oracles
 * The pre-lazy-reduction implementations: canonical F_q reduction at
 * every Horner step. Mathematically identical to the production
 * functions above (which keep accumulators weakly reduced and fold
 * once per chunk, see ring/mersenne.hh); tests pin the equivalence on
 * random and adversarial inputs.
 */
/// @{
Fq127 linearChecksumReference(const Matrix &mat, std::size_t row,
                              Fq127 s);
Fq127 linearChecksumReference(const std::vector<std::uint64_t> &vec,
                              Fq127 s);
Fq127 multiSecretChecksumReference(const std::vector<std::uint64_t> &vec,
                                   const std::vector<Fq127> &secrets);
/// @}

/**
 * Derive the cnt_s secret points of Alg. 8 from the cipher. With
 * cnt_s == 1 this is exactly the single s of Alg. 2. Each point comes
 * from an independent tweak (version offset in the '01' domain), a
 * generalization of "use all w_c bits" that stays non-degenerate for
 * w_t = 127 ~ w_c = 128.
 */
std::vector<Fq127> deriveChecksumSecrets(const CounterModeEncryptor &enc,
                                         std::uint64_t paddr_matrix,
                                         std::uint64_t version,
                                         unsigned cnt_s);

/**
 * Per-row encrypted tags for a whole matrix (Alg. 3):
 * C_Ti = h_K(P_i) - E_Ti mod q. With cnt_s > 1 the checksums use the
 * Algorithm 8 construction.
 */
std::vector<Fq127> encryptedTags(const CounterModeEncryptor &enc,
                                 const Matrix &plain,
                                 std::uint64_t version,
                                 unsigned cnt_s = 1);

/** Recover T_i from an encrypted tag: T = C_T + E_T mod q. */
Fq127 decryptTag(const CounterModeEncryptor &enc, Fq127 cipher_tag,
                 std::uint64_t paddr_row, std::uint64_t version);

} // namespace secndp

#endif // SECNDP_SECNDP_CHECKSUM_HH
