/**
 * @file
 * Software-managed version numbers (paper section V-A).
 *
 * SecNDP lets trusted software inside the TEE manage counter-mode
 * version numbers: one version per data region (e.g. per embedding
 * table), re-drawn on every (re-)encryption of that region so no
 * version is ever reused for the same address. The TEE protects the
 * manager's state, so no off-chip integrity tree is needed.
 *
 * The paper's enclave software manages at most 64 versions
 * (section VI-A); the manager enforces a configurable capacity to
 * model that limit.
 *
 * Wraparound policy: counter-mode security rests on never reusing an
 * (address, version) pair, so the 64-bit draw counter must never wrap
 * back into previously-issued values. Version 0 is reserved ("never
 * versioned"). When the counter is exhausted the manager fatal()s --
 * re-keying (a fresh K, which re-opens the whole version space) is
 * the only sound continuation, and that is an operator decision, not
 * something to paper over silently. At one re-encryption per
 * nanosecond the space lasts ~584 years, so exhaustion in practice
 * means a bug or an attack, never normal operation.
 */

#ifndef SECNDP_SECNDP_VERSION_HH
#define SECNDP_SECNDP_VERSION_HH

#include <cstdint>
#include <functional>
#include <map>

namespace secndp {

/** Region-granular version-number manager living inside the TEE. */
class VersionManager
{
  public:
    /**
     * Invalidation hook fired on every version bump, *before*
     * freshVersion/rekey returns: any trusted-side state derived from
     * the region's previous version (cached counter-mode pads, src/
     * cache) must be dropped or re-tagged. `new_version == 0` means
     * "the whole version space was re-opened" (rekey): everything
     * derived from this manager is stale, whatever its region.
     */
    using BumpListener =
        std::function<void(std::uint64_t region_id,
                           std::uint64_t new_version)>;
    /**
     * @param capacity maximum number of live regions (paper: 64).
     * @param first_version first version number to draw (>= 1; 0 is
     *        reserved). Non-default values exist for wraparound tests
     *        and for resuming a persisted counter after migration.
     */
    explicit VersionManager(std::size_t capacity = 64,
                            std::uint64_t first_version = 1)
        : capacity_(capacity), nextVersion_(first_version)
    {}

    /**
     * Register a region (or re-encrypt an existing one) and draw a
     * fresh version for it. Monotonic draw => never reused.
     * fatal()s when capacity would be exceeded.
     *
     * @param region_id caller-chosen region identifier
     * @return the fresh version number
     */
    std::uint64_t freshVersion(std::uint64_t region_id);

    /**
     * Re-key: a fresh cipher key K re-opens the whole version space
     * (the only sound continuation of wraparound, see the file
     * comment). Every live region is released and the draw counter
     * restarts at `first_version`; the bump listener fires once with
     * (0, 0) so every cached derivation of the old key is dropped.
     * The caller owns actually rotating K and re-provisioning.
     */
    void rekey(std::uint64_t first_version = 1);

    /** Observe every version bump (pass nullptr to detach). */
    void setBumpListener(BumpListener listener)
    {
        bumpListener_ = std::move(listener);
    }

    /** Current version of a region; panics if unknown. */
    std::uint64_t currentVersion(std::uint64_t region_id) const;

    /** Drop a region, freeing capacity. */
    void release(std::uint64_t region_id);

    std::size_t liveRegions() const { return versions_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** Total versions ever drawn (uniqueness witness for tests). */
    std::uint64_t drawCount() const { return drawCount_; }

  private:
    std::size_t capacity_;
    std::uint64_t nextVersion_ = 1; // 0 reserved as "never versioned"
    std::uint64_t drawCount_ = 0;
    std::map<std::uint64_t, std::uint64_t> versions_;
    BumpListener bumpListener_;
};

} // namespace secndp

#endif // SECNDP_SECNDP_VERSION_HH
