/**
 * @file
 * Scheme-level parameters (paper section IV-A, Table VI).
 */

#ifndef SECNDP_SECNDP_PARAMS_HH
#define SECNDP_SECNDP_PARAMS_HH

#include "ring/ring_buffer.hh"

namespace secndp {

/** Parameters of one SecNDP instantiation. */
struct SchemeParams
{
    /** Element width w_e: data lives in Z(2^we). */
    ElemWidth we = ElemWidth::W32;

    /** Block cipher width w_c in bits (128 for AES). */
    static constexpr unsigned wc = 128;

    /** Verification tag width w_t; q = 2^wt - 1 is the tag field. */
    static constexpr unsigned wt = 127;

    /** Elements per cipher block: l = wc / we. */
    unsigned elemsPerBlock() const { return wc / bits(we); }

    /** Tag size in bytes as stored in memory (rounded to 16). */
    static constexpr unsigned tagBytes = 16;
};

} // namespace secndp

#endif // SECNDP_SECNDP_PARAMS_HH
