#include "secndp/protocol.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"
#include "common/phase_profiler.hh"
#include "secndp/arith_encrypt.hh"
#include "secndp/checksum.hh"

namespace secndp {

//
// UntrustedNdpDevice
//

void
UntrustedNdpDevice::store(Matrix cipher, std::vector<Fq127> cipher_tags)
{
    SECNDP_ASSERT(cipher_tags.empty() ||
                      cipher_tags.size() == cipher.rows(),
                  "tag count %zu != row count %zu", cipher_tags.size(),
                  cipher.rows());
    // Untrusted memory never forgets: the outgoing image stays around
    // as a stale snapshot an adversary can replay (history depth 1).
    if (cipher_.rows() > 0) {
        staleCipher_ = std::move(cipher_);
        staleTags_ = std::move(cipherTags_);
        hasStale_ = true;
    }
    cipher_ = std::move(cipher);
    cipherTags_ = std::move(cipher_tags);
}

std::uint64_t
UntrustedNdpDevice::weightedSumElems(
    std::span<const std::size_t> row_idx,
    std::span<const std::size_t> col_idx,
    std::span<const std::uint64_t> weights) const
{
    SECNDP_ASSERT(row_idx.size() == col_idx.size() &&
                      row_idx.size() == weights.size(),
                  "index/weight length mismatch");
    const Matrix &src =
        hook_ && hasStale_ && hook_->replayQuery(cipher_.baseAddr())
            ? staleCipher_
            : cipher_;
    const ElemWidth we = src.width();
    const std::uint64_t mask = elemMask(we);
    std::uint64_t acc = 0;
    for (std::size_t k = 0; k < row_idx.size(); ++k) {
        std::uint64_t c = src.get(row_idx[k], col_idx[k]);
        if (hook_) {
            c = hook_->onCipherRead(
                src.elemAddr(row_idx[k], col_idx[k]), c, we);
        }
        acc += weights[k] * c;
        acc &= mask;
    }
    if (hook_)
        hook_->onResult(src.baseAddr(), std::span(&acc, 1), we);
    return acc;
}

UntrustedNdpDevice::RowSumShare
UntrustedNdpDevice::weightedSumRows(std::span<const std::size_t> rows,
                                    std::span<const std::uint64_t> weights,
                                    bool with_tag) const
{
    SECNDP_ASSERT(rows.size() == weights.size(),
                  "index/weight length mismatch");
    // A hooked device lets the adversary pick the data source (replay
    // of the stale snapshot) and corrupt each read; the honest path
    // is byte-identical to the unhooked one.
    const bool replay =
        hook_ && hasStale_ && hook_->replayQuery(cipher_.baseAddr());
    const Matrix &src = replay ? staleCipher_ : cipher_;
    const std::vector<Fq127> &tags = replay ? staleTags_ : cipherTags_;

    const ElemWidth we = src.width();
    const std::uint64_t mask = elemMask(we);
    RowSumShare share;
    share.values.assign(src.cols(), 0);
    for (std::size_t k = 0; k < rows.size(); ++k) {
        SECNDP_ASSERT(rows[k] < src.rows(), "row %zu out of %zu",
                      rows[k], src.rows());
        for (std::size_t j = 0; j < src.cols(); ++j) {
            std::uint64_t c = src.get(rows[k], j);
            if (hook_)
                c = hook_->onCipherRead(src.elemAddr(rows[k], j), c,
                                        we);
            share.values[j] =
                (share.values[j] + weights[k] * c) & mask;
        }
    }
    if (hook_)
        hook_->onResult(src.baseAddr(), std::span(share.values), we);
    if (with_tag) {
        SECNDP_ASSERT(!tags.empty(),
                      "tag requested but none provisioned");
        Fq127 tag(0);
        for (std::size_t k = 0; k < rows.size(); ++k) {
            Fq127 t = tags[rows[k]];
            if (hook_)
                t = hook_->onTagRead(src.rowAddr(rows[k]), t);
            tag += Fq127(weights[k]) * t;
        }
        share.cipherTag = tag;
        if (hook_)
            share.cipherTag = hook_->onResultTag(src.baseAddr(), tag);
    }
    return share;
}

//
// SecNdpClient
//

SecNdpClient::SecNdpClient(const Aes128::Key &key,
                           VersionManager *versions,
                           unsigned checksum_secrets)
    : cipher_(key), encryptor_(cipher_),
      versions_(versions ? versions : &ownVersions_),
      checksumSecretCount_(checksum_secrets)
{
    SECNDP_ASSERT(checksum_secrets >= 1, "cnt_s must be >= 1");
}

std::vector<Fq127>
SecNdpClient::checksumSecrets() const
{
    return deriveChecksumSecrets(encryptor_, geometry_.baseAddr,
                                 version_, checksumSecretCount_);
}

void
SecNdpClient::provision(const Matrix &plain, UntrustedNdpDevice &device,
                        bool with_tags,
                        std::optional<std::uint64_t> region_id)
{
    ScopedPhase phase("encrypt");
    geometry_ = plain.geometry();
    version_ =
        versions_->freshVersion(region_id.value_or(plain.baseAddr()));
    withTags_ = with_tags;

    // Version bump: every pad cached for this region's previous
    // version is now stale. Eager invalidation here; the cache's
    // version tag would reject any survivor at lookup time anyway.
    if (padCache_ != nullptr) {
        padCache_->invalidateRange(geometry_.baseAddr,
                                   geometry_.baseAddr +
                                       geometry_.sizeBytes());
    }

    Matrix cipher = arithEncrypt(encryptor_, plain, version_);
    std::vector<Fq127> tags;
    if (with_tags) {
        tags = encryptedTags(encryptor_, plain, version_,
                             checksumSecretCount_);
    }
    device.store(std::move(cipher), std::move(tags));
    provisioned_ = true;
}

std::uint64_t
SecNdpClient::weightedSumElems(
    const UntrustedNdpDevice &device,
    std::span<const std::size_t> row_idx,
    std::span<const std::size_t> col_idx,
    std::span<const std::uint64_t> weights) const
{
    SECNDP_ASSERT(provisioned_, "client not provisioned");
    const std::uint64_t mask = elemMask(geometry_.we);

    // NDP share (over the bus).
    const std::uint64_t c_res =
        device.weightedSumElems(row_idx, col_idx, weights);

    // Processor share: OTPs regenerated on-chip (Alg. 4 lines 8-14),
    // gathered window-by-window so independent chunks pipeline
    // through the cipher and same-chunk neighbours share one pad.
    constexpr std::size_t window = 64;
    std::uint64_t addrs[window];
    std::uint64_t pads[window];
    std::uint64_t e_res = 0;
    for (std::size_t base = 0; base < row_idx.size(); base += window) {
        const std::size_t n =
            std::min(window, row_idx.size() - base);
        for (std::size_t k = 0; k < n; ++k) {
            addrs[k] = geometry_.elemAddr(row_idx[base + k],
                                          col_idx[base + k]);
        }
        encryptor_.otpElements(std::span(addrs, n), geometry_.we,
                               version_, std::span(pads, n));
        for (std::size_t k = 0; k < n; ++k)
            e_res = (e_res + weights[base + k] * pads[k]) & mask;
    }
    return (c_res + e_res) & mask;
}

std::vector<std::uint64_t>
SecNdpClient::otpRowShare(std::span<const std::size_t> rows,
                          std::span<const std::uint64_t> weights) const
{
    SECNDP_ASSERT(provisioned_, "client not provisioned");
    const std::uint64_t mask = elemMask(geometry_.we);
    const unsigned nb = bytes(geometry_.we);

    std::vector<std::uint64_t> e_res(geometry_.cols, 0);
    std::vector<std::uint8_t> row_pad(geometry_.rowBytes());
    InlinePadCache local;
    for (std::size_t k = 0; k < rows.size(); ++k) {
        // One pass of the encryption engine over the row's OTP. The
        // row address is block aligned whenever rowBytes % 16 == 0;
        // otherwise fall back to per-element pads through the chunk
        // store (one AES call per 16 bytes even on the scalar path).
        // With a shared pad cache attached, both paths probe it
        // before the cipher; hot rows then cost zero AES calls.
        const std::uint64_t row_addr = geometry_.rowAddr(rows[k]);
        if (row_addr % 16 == 0 && geometry_.rowBytes() % 16 == 0) {
            if (padCache_ != nullptr) {
                encryptor_.otpFillCached(*padCache_, row_addr,
                                         version_, row_pad);
            } else {
                encryptor_.otpFillBatch(row_addr, version_, row_pad);
            }
            for (std::size_t j = 0; j < geometry_.cols; ++j) {
                std::uint64_t pad = 0;
                std::memcpy(&pad, row_pad.data() + j * nb, nb);
                e_res[j] = (e_res[j] + weights[k] * pad) & mask;
            }
        } else {
            for (std::size_t j = 0; j < geometry_.cols; ++j) {
                const std::uint64_t addr =
                    geometry_.elemAddr(rows[k], j);
                const std::uint64_t pad =
                    padCache_ != nullptr
                        ? encryptor_.otpElementCached(
                              *padCache_, addr, geometry_.we,
                              version_)
                        : encryptor_.otpElementCached(
                              local, addr, geometry_.we, version_);
                e_res[j] = (e_res[j] + weights[k] * pad) & mask;
            }
        }
    }
    return e_res;
}

std::size_t
SecNdpClient::flushPadCache() const
{
    if (padCache_ == nullptr || !provisioned_)
        return 0;
    return padCache_->invalidateRange(geometry_.baseAddr,
                                      geometry_.baseAddr +
                                          geometry_.sizeBytes());
}

Fq127
SecNdpClient::otpTagShare(std::span<const std::size_t> rows,
                          std::span<const std::uint64_t> weights) const
{
    // Tag pads are independent counter blocks: derive them in batched
    // cipher calls, then fold the weighted sum lazily (one canonical
    // reduction at the end).
    constexpr std::size_t window = CounterModeEncryptor::batchBlocks;
    std::uint64_t addrs[window];
    Fq127 pads[window];
    Fq127Dot acc;
    for (std::size_t base = 0; base < rows.size(); base += window) {
        const std::size_t n = std::min(window, rows.size() - base);
        for (std::size_t k = 0; k < n; ++k)
            addrs[k] = geometry_.rowAddr(rows[base + k]);
        encryptor_.tagOtps(std::span(addrs, n), version_,
                           std::span(pads, n));
        for (std::size_t k = 0; k < n; ++k)
            acc.addProduct(pads[k], weights[base + k]);
    }
    return acc.reduced();
}

VerifiedResult
SecNdpClient::weightedSumRows(const UntrustedNdpDevice &device,
                              std::span<const std::size_t> rows,
                              std::span<const std::uint64_t> weights,
                              bool verify) const
{
    SECNDP_ASSERT(provisioned_, "client not provisioned");
    const std::uint64_t mask = elemMask(geometry_.we);
    const bool with_tag = verify && withTags_;

    // NDP computes on ciphertext; processor on OTPs, in parallel.
    const auto ndp_share = device.weightedSumRows(rows, weights,
                                                  with_tag);
    const auto otp_share = otpRowShare(rows, weights);

    VerifiedResult result;
    result.values.resize(geometry_.cols);
    for (std::size_t j = 0; j < geometry_.cols; ++j) {
        result.values[j] =
            (ndp_share.values[j] + otp_share[j]) & mask;
    }

    if (with_tag) {
        ScopedPhase phase("verify");
        result.verificationPerformed = true;
        if (!ndp_share.cipherTag) {
            // The device withheld C_Tres -- a protocol violation; an
            // unverifiable result must never be trusted.
            result.verified = false;
        } else {
            // Retrieved MAC: C_Tres + E_Tres (Alg. 5; note the
            // paper's line 16 typo writes '-', the proof and Alg. 3
            // require '+').
            const Fq127 retrieved =
                *ndp_share.cipherTag + otpTagShare(rows, weights);
            // Recomputed MAC of the assembled result (with cnt_s == 1
            // this is exactly Algorithm 2's single-point hash).
            const Fq127 recomputed =
                multiSecretChecksum(result.values, checksumSecrets());
            result.verified = (recomputed == retrieved);
        }
    }
    return result;
}

Matrix
SecNdpClient::fetchAll(const UntrustedNdpDevice &device) const
{
    SECNDP_ASSERT(provisioned_, "client not provisioned");
    return arithDecrypt(encryptor_, device.cipher(), version_);
}

} // namespace secndp
