/**
 * @file
 * The SecNDP weighted-summation protocol (paper Algorithms 4 and 5,
 * Figure 4), split along the trust boundary:
 *
 *   UntrustedNdpDevice -- memory + NDP PU. Holds only ciphertext and
 *       encrypted tags; computes weighted sums over them. Identical to
 *       what an unprotected NDP PU would execute (the paper's central
 *       deployment claim). Exposes tamper hooks so tests and the attack
 *       demo can play the adversary.
 *
 *   SecNdpClient -- the trusted processor (TEE + SecNDP engine,
 *       functional view). Encrypts/provisions data, computes the OTP
 *       share of every result, reassembles res = C_res + E_res, and
 *       verifies results against the encrypted linear-checksum tags.
 *
 * This module is the *functional* scheme; cycle-level performance lives
 * in src/memsim + src/ndp + src/engine.
 */

#ifndef SECNDP_SECNDP_PROTOCOL_HH
#define SECNDP_SECNDP_PROTOCOL_HH

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "cache/pad_cache.hh"
#include "crypto/aes.hh"
#include "crypto/counter_mode.hh"
#include "ring/mersenne.hh"
#include "secndp/matrix.hh"
#include "secndp/tamper_hook.hh"
#include "secndp/version.hh"

namespace secndp {

/** Untrusted memory + NDP processing unit (functional model). */
class UntrustedNdpDevice
{
  public:
    /**
     * Initialization step T0: store ciphertext (and optional tags).
     * The previous store (if any) is retained as a *stale snapshot*
     * -- exactly what a malicious memory can replay after a
     * re-encryption (paper section II; see attachTamperHook).
     */
    void store(Matrix cipher, std::vector<Fq127> cipher_tags = {});

    /** Whether tags were provisioned. */
    bool hasTags() const { return !cipherTags_.empty(); }

    /**
     * NDP side of Alg. 4: C_res = sum_k a_k * C_{i_k, j_k} mod 2^we
     * over arbitrary element coordinates.
     */
    std::uint64_t weightedSumElems(
        std::span<const std::size_t> row_idx,
        std::span<const std::size_t> col_idx,
        std::span<const std::uint64_t> weights) const;

    /** NDP-side result of a row-granular weighted summation. */
    struct RowSumShare
    {
        /** C_res_j for every column j (Alg. 5 line 5). */
        std::vector<std::uint64_t> values;
        /** C_Tres = sum_k a_k * C_Tk mod q (Alg. 5 line 15). */
        std::optional<Fq127> cipherTag;
    };

    /**
     * NDP side of Alg. 5 (the SLS kernel): weighted sum of whole rows,
     * plus the matching tag combination when requested.
     */
    RowSumShare weightedSumRows(std::span<const std::size_t> rows,
                                std::span<const std::uint64_t> weights,
                                bool with_tag) const;

    const Matrix &cipher() const { return cipher_; }
    const std::vector<Fq127> &cipherTags() const { return cipherTags_; }

    /** @name Adversary hooks (tests / attack demo only) */
    /// @{
    Matrix &tamperCipher() { return cipher_; }
    std::vector<Fq127> &tamperTags() { return cipherTags_; }

    /**
     * Attach a policy-driven adversary (src/faults FaultInjector).
     * When attached, every query consults the hook: ciphertext and
     * tag reads may be corrupted, a stale snapshot may be replayed,
     * and result shares / combined tags may be tampered, forged, or
     * dropped. Pass nullptr to detach. The device never owns the
     * hook; with none attached the honest fast path is taken.
     */
    void attachTamperHook(TamperHook *hook) { hook_ = hook; }
    TamperHook *tamperHook() const { return hook_; }

    /** Is a pre-re-encryption snapshot available for replay? */
    bool hasStaleSnapshot() const { return hasStale_; }
    /// @}

  private:
    Matrix cipher_;
    std::vector<Fq127> cipherTags_;
    /** Previous store, kept as replay ammunition for the adversary. */
    Matrix staleCipher_;
    std::vector<Fq127> staleTags_;
    bool hasStale_ = false;
    TamperHook *hook_ = nullptr;
};

/** Result of a verified weighted summation on the trusted side. */
struct VerifiedResult
{
    /** res_j = C_res_j + E_res_j mod 2^we. */
    std::vector<std::uint64_t> values;
    /** Whether a verification tag was checked at all. */
    bool verificationPerformed = false;
    /** Tag check outcome (true when not performed -- nothing failed). */
    bool verified = true;
};

/** The trusted processor side of SecNDP. */
class SecNdpClient
{
  public:
    /**
     * @param key processor secret key K (stays on-chip)
     * @param versions optional shared version manager; a private one is
     *        created when null
     * @param checksum_secrets cnt_s of Algorithm 8: number of secret
     *        points in the linear checksum. 1 (default) is the
     *        plain Algorithm 2; larger values tighten the forgery
     *        bound from m/q to m/(cnt_s * q) at the cost of extra
     *        field exponentiations. Only the trusted side changes --
     *        NDP tag combination is identical either way.
     */
    explicit SecNdpClient(const Aes128::Key &key,
                          VersionManager *versions = nullptr,
                          unsigned checksum_secrets = 1);

    /**
     * T0: draw a fresh version, arithmetic-encrypt `plain`, generate
     * per-row encrypted tags when `with_tags`, and upload everything to
     * the device. Only geometry + version are retained locally.
     *
     * @param region_id version-manager region (defaults to baseAddr)
     */
    void provision(const Matrix &plain, UntrustedNdpDevice &device,
                   bool with_tags = true,
                   std::optional<std::uint64_t> region_id = std::nullopt);

    /**
     * Run the full Alg. 4 protocol for scattered elements:
     * res = sum_k a_k * P_{i_k, j_k} mod 2^we.
     */
    std::uint64_t weightedSumElems(
        const UntrustedNdpDevice &device,
        std::span<const std::size_t> row_idx,
        std::span<const std::size_t> col_idx,
        std::span<const std::uint64_t> weights) const;

    /**
     * Run the full Alg. 4 + Alg. 5 protocol for row-granular weighted
     * summation (the SLS / pooling kernel):
     * res_j = sum_k a_k * P_{i_k, j} for all j, verified when `verify`.
     *
     * Verification fails on any tampering of ciphertext, tags, or on
     * arithmetic overflow past 2^we (paper footnote 1).
     */
    VerifiedResult weightedSumRows(const UntrustedNdpDevice &device,
                                   std::span<const std::size_t> rows,
                                   std::span<const std::uint64_t> weights,
                                   bool verify = true) const;

    /**
     * Processor-side OTP share of a row weighted sum (Alg. 4 lines
     * 8-14 for every column): E_res_j = sum_k a_k * E_{i_k, j}.
     * Exposed for the oracles and for the engine model.
     */
    std::vector<std::uint64_t> otpRowShare(
        std::span<const std::size_t> rows,
        std::span<const std::uint64_t> weights) const;

    /** Fetch + decrypt the whole matrix (TEE baseline data path). */
    Matrix fetchAll(const UntrustedNdpDevice &device) const;

    const MatrixGeometry &geometry() const { return geometry_; }
    std::uint64_t version() const { return version_; }
    const CounterModeEncryptor &encryptor() const { return encryptor_; }

    /**
     * Attach a shared trusted-side pad cache (src/cache): the OTP hot
     * loops then consult it before the AES backends. Only Data-domain
     * chunk pads are cached (tag and checksum pads never are, keeping
     * the cache key a plain chunk address). Version safety is
     * enforced twice: provision() eagerly invalidates the region's
     * address range on every version bump, and the cache's own
     * version tag rejects any survivor at lookup time. Pass nullptr
     * to detach; the client never owns the cache.
     */
    void attachPadCache(ShardedPadCache *cache) { padCache_ = cache; }
    ShardedPadCache *padCache() const { return padCache_; }

    /**
     * Drop every cached pad of the currently provisioned region --
     * the replay-recovery re-read path: after a failed verification
     * the trusted side distrusts everything it derived for this data
     * and regenerates pads from the cipher on the next query.
     * Returns the number of entries invalidated (0 when no cache).
     */
    std::size_t flushPadCache() const;

  private:
    /** E_Tres = sum_k a_k * E_Tk mod q (Alg. 5 lines 11-14). */
    Fq127 otpTagShare(std::span<const std::size_t> rows,
                      std::span<const std::uint64_t> weights) const;

    /** The checksum secrets for the current provisioning. */
    std::vector<Fq127> checksumSecrets() const;

    Aes128 cipher_;
    CounterModeEncryptor encryptor_;
    VersionManager ownVersions_;
    VersionManager *versions_;
    MatrixGeometry geometry_;
    std::uint64_t version_ = 0;
    unsigned checksumSecretCount_ = 1;
    bool provisioned_ = false;
    bool withTags_ = false;
    ShardedPadCache *padCache_ = nullptr;
};

} // namespace secndp

#endif // SECNDP_SECNDP_PROTOCOL_HH
