/**
 * @file
 * MAC tree (Bonsai-Merkle-counter-tree style, paper refs [62], [72])
 * protecting version counters stored in untrusted memory.
 *
 * SecNDP's default is software-managed versions inside the TEE
 * (section V-A); this module implements the alternative the paper
 * cites for designs whose version store does not fit on-chip: an
 * arity-k tree of GMAC tags over counter blocks, with only the root
 * tag held on-chip. Any tampering or replay of the off-chip counter
 * array or of interior tags is detected on the next verified read.
 *
 * The SGX-CFL reference model's "integrity tree walk" tax is exactly
 * the per-access hash count this structure exposes via hashesPerRead.
 */

#ifndef SECNDP_SECNDP_INTEGRITY_TREE_HH
#define SECNDP_SECNDP_INTEGRITY_TREE_HH

#include <cstdint>
#include <vector>

#include "crypto/gcm.hh"

namespace secndp {

/** Keyed MAC tree over an untrusted counter array. */
class CounterIntegrityTree
{
  public:
    using Tag = AesGcm::Tag;

    /**
     * @param key processor secret key (on-chip)
     * @param num_counters leaves (rounded up to a full block)
     * @param arity children per node (counters per leaf block)
     */
    CounterIntegrityTree(const Aes128::Key &key,
                         std::size_t num_counters, unsigned arity = 8);

    std::size_t size() const { return counters_.size(); }
    unsigned arity() const { return arity_; }
    /** Number of tag levels (>= 1; excludes the on-chip root). */
    std::size_t levels() const { return levels_.size(); }

    /** Verified read: checks the whole path against the root. */
    struct ReadResult
    {
        bool ok = false;
        std::uint64_t value = 0;
    };
    ReadResult verifiedRead(std::size_t idx) const;

    /** Update a counter and re-MAC its path (root changes). */
    void write(std::size_t idx, std::uint64_t value);

    /** Convenience: verified read-increment-write. ok=false on
     *  detected tampering (value not incremented). */
    bool increment(std::size_t idx);

    /** MACs recomputed per verified read (tree-walk cost). */
    std::size_t hashesPerRead() const { return levels_.size() + 1; }

    /** @name Adversary hooks (untrusted storage) */
    /// @{
    std::vector<std::uint64_t> &tamperCounters() { return counters_; }
    /** level 0 = leaf tags ... back = highest stored level. */
    std::vector<std::vector<Tag>> &tamperTags() { return levels_; }
    /// @}

  private:
    /** MAC of a node's children (level, index bound into the IV). */
    Tag nodeTag(std::size_t level, std::size_t node) const;
    /** Raw child bytes of a node. */
    std::vector<std::uint8_t> childBytes(std::size_t level,
                                         std::size_t node) const;
    void rebuildPath(std::size_t idx);

    AesGcm gcm_;
    unsigned arity_;
    /** Untrusted: the counters themselves. */
    std::vector<std::uint64_t> counters_;
    /** Untrusted: stored tags per level (level 0 over counters). */
    std::vector<std::vector<Tag>> levels_;
    /** Trusted (on-chip): MAC over the highest stored level. */
    Tag root_{};
};

} // namespace secndp

#endif // SECNDP_SECNDP_INTEGRITY_TREE_HH
