#include "secndp/matrix.hh"

#include "common/logging.hh"

namespace secndp {

Matrix::Matrix(std::size_t rows, std::size_t cols, ElemWidth we,
               std::uint64_t base_addr)
    : rows_(rows), cols_(cols), baseAddr_(base_addr),
      data_(rows * cols, we)
{
    SECNDP_ASSERT(rows > 0 && cols > 0, "empty matrix");
    SECNDP_ASSERT(base_addr % 16 == 0,
                  "matrix base address %lu not cipher-block aligned",
                  base_addr);
}

} // namespace secndp
