#include "secndp/arith_encrypt.hh"

#include <algorithm>
#include <cstring>
#include <span>
#include <vector>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace secndp {

namespace {

/**
 * Shared body of encrypt/decrypt: out = in -/+ E mod 2^we, walking the
 * matrix chunk by chunk exactly as Alg. 1 does. The matrix payload is
 * flat and contiguous, so up to batchBlocks consecutive chunk pads at
 * a time go through one pipelined cipher call.
 */
Matrix
applyPad(const CounterModeEncryptor &enc, const Matrix &in,
         std::uint64_t version, bool subtract)
{
    Matrix out(in.rows(), in.cols(), in.width(), in.baseAddr());
    const std::uint64_t mask = elemMask(in.width());
    const std::size_t total = in.rows() * in.cols();
    const unsigned nb = bytes(in.width());
    const unsigned per_block = 16 / nb;

    Block128 pads[CounterModeEncryptor::batchBlocks];
    std::size_t flat = 0;
    while (flat < total) {
        const std::size_t i = flat / in.cols();
        const std::size_t j = flat % in.cols();
        const std::uint64_t addr = in.elemAddr(i, j);
        SECNDP_ASSERT(addr % 16 == 0,
                      "chunk walk desynced at element %zu", flat);
        const std::size_t nblk = std::min<std::size_t>(
            CounterModeEncryptor::batchBlocks,
            (total - flat + per_block - 1) / per_block);
        enc.otpBlocks(addr, version, std::span(pads, nblk));
        for (std::size_t b = 0; b < nblk; ++b) {
            for (unsigned k = 0; k < per_block && flat < total;
                 ++k, ++flat) {
                std::uint64_t e = 0;
                std::memcpy(&e, pads[b].data() + k * nb, nb);
                const std::size_t r = flat / in.cols();
                const std::size_t c = flat % in.cols();
                const std::uint64_t p = in.get(r, c);
                const std::uint64_t v =
                    subtract ? (p - e) & mask : (p + e) & mask;
                out.set(r, c, v);
            }
        }
    }
    return out;
}

} // namespace

Matrix
arithEncrypt(const CounterModeEncryptor &enc, const Matrix &plain,
             std::uint64_t version)
{
    return applyPad(enc, plain, version, /*subtract=*/true);
}

Matrix
arithDecrypt(const CounterModeEncryptor &enc, const Matrix &cipher,
             std::uint64_t version)
{
    return applyPad(enc, cipher, version, /*subtract=*/false);
}

std::uint64_t
otpShare(const CounterModeEncryptor &enc, const Matrix &geometry,
         std::size_t i, std::size_t j, std::uint64_t version)
{
    return enc.otpElement(geometry.elemAddr(i, j), geometry.width(),
                          version);
}

} // namespace secndp
