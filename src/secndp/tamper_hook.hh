/**
 * @file
 * Interception points on the untrusted side of the SecNDP protocol.
 *
 * The paper's threat model (section II) gives the adversary full
 * control of memory and the NDP PUs: it can corrupt stored ciphertext
 * and tags, replay stale-but-validly-encrypted snapshots, and return
 * arbitrary partial sums or forged C_Tres tags. UntrustedNdpDevice
 * exposes exactly those powers through this interface so an attached
 * adversary (src/faults FaultInjector, or a bespoke test double) can
 * exercise them in controlled, seeded ways.
 *
 * The hook lives in the core library (not src/faults) so the protocol
 * has no dependency on the fault subsystem: a device with no hook
 * attached takes the unhooked fast path, byte-identical to the
 * pre-adversary behavior.
 */

#ifndef SECNDP_SECNDP_TAMPER_HOOK_HH
#define SECNDP_SECNDP_TAMPER_HOOK_HH

#include <cstdint>
#include <optional>
#include <span>

#include "ring/mersenne.hh"
#include "ring/ring_buffer.hh"

namespace secndp {

/** Adversary interface over the untrusted memory + NDP side. */
class TamperHook
{
  public:
    virtual ~TamperHook() = default;

    /**
     * Query start. Return true to serve the device's stale snapshot
     * (the previous store) instead of the current one -- a replay of
     * validly-encrypted data from before the last re-encryption.
     * Only consulted when a stale snapshot exists.
     */
    virtual bool replayQuery(std::uint64_t base_addr) = 0;

    /**
     * A ciphertext element read at byte address `addr`. Returns the
     * (possibly corrupted) value the NDP PU actually computes with.
     */
    virtual std::uint64_t onCipherRead(std::uint64_t addr,
                                       std::uint64_t value,
                                       ElemWidth we) = 0;

    /** A stored-tag read for the row at `row_addr`. */
    virtual Fq127 onTagRead(std::uint64_t row_addr, Fq127 tag) = 0;

    /**
     * The combined result share C_res about to be returned to the
     * processor; the adversary may tamper it in place.
     */
    virtual void onResult(std::uint64_t base_addr,
                          std::span<std::uint64_t> values,
                          ElemWidth we) = 0;

    /**
     * The combined tag C_Tres about to be returned. Returning nullopt
     * models a dropped/withheld tag (a protocol violation the client
     * must treat as a verification failure).
     */
    virtual std::optional<Fq127> onResultTag(std::uint64_t base_addr,
                                             Fq127 tag) = 0;
};

} // namespace secndp

#endif // SECNDP_SECNDP_TAMPER_HOOK_HH
