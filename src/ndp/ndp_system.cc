#include "ndp/ndp_system.hh"

#include <algorithm>
#include <queue>
#include <set>

#include "common/logging.hh"
#include "common/sampler.hh"
#include "common/trace_event.hh"

namespace secndp {

NdpSimulation::NdpSimulation(const DramConfig &dram_cfg,
                             const NdpConfig &ndp_cfg)
    : dramCfg_(dram_cfg), ndpCfg_(ndp_cfg)
{
}

BatchResult
NdpSimulation::run(const std::vector<NdpQuery> &queries)
{
    const unsigned n_ranks = dramCfg_.geometry.ranks;
    const unsigned n_channels = dramCfg_.geometry.channels;
    const unsigned n_pch = dramCfg_.geometry.pseudoChannels;
    const unsigned n_pus = n_ranks * n_pch * n_channels;

    // Fresh device + per-(channel, pseudo-channel, rank) controller
    // state per batch: DDR5 pseudo-channels multiply the PU count,
    // and their NDP command streams drain in parallel (subject to
    // the channel's shared command bus, enforced by DramChannel).
    channels_.clear();
    for (unsigned c = 0; c < n_channels; ++c)
        channels_.push_back(std::make_unique<DramChannel>(dramCfg_));
    mapper_ = std::make_unique<AddressMapper>(dramCfg_.geometry);
    rankCtrls_.clear();
    for (unsigned c = 0; c < n_channels; ++c) {
        for (unsigned p = 0; p < n_pch; ++p) {
            for (unsigned r = 0; r < n_ranks; ++r) {
                (void)p;
                (void)r;
                rankCtrls_.push_back(
                    std::make_unique<MemoryController>(*channels_[c]));
            }
        }
    }
    auto pu_of = [&](const DramCoord &coord) {
        return (coord.channel * n_pch + coord.pseudoChannel) * n_ranks +
               coord.rank;
    };

    struct QState
    {
        std::size_t outstanding = 0;
        Cycle lastDone = 0;
        std::vector<std::uint8_t> touches;
        unsigned pusTouched = 0;
    };

    BatchResult result;
    result.packets.resize(queries.size());
    std::vector<QState> qstate(queries.size());

    // Pre-compute per-query PU footprints.
    for (std::size_t q = 0; q < queries.size(); ++q) {
        qstate[q].touches.assign(n_pus, 0);
        for (const auto addr : queries[q].lineAddrs) {
            const unsigned pu = pu_of(mapper_->decode(addr));
            if (!qstate[q].touches[pu]) {
                qstate[q].touches[pu] = 1;
                ++qstate[q].pusTouched;
            }
        }
        qstate[q].outstanding = queries[q].lineAddrs.size();
        result.packets[q].lines = queries[q].lineAddrs.size();
        result.packets[q].ranksTouched = qstate[q].pusTouched;
        result.totalLines += queries[q].lineAddrs.size();
    }

    // Register occupancy per PU; min-heap of packet-finish events.
    std::vector<unsigned> free_regs(n_pus, ndpCfg_.ndpReg);
    using FinishEvent = std::pair<Cycle, std::size_t>;
    std::priority_queue<FinishEvent, std::vector<FinishEvent>,
                        std::greater<>> finish_events;

    // Completion wiring: a line read done -> count down its packet.
    for (auto &ctrl : rankCtrls_) {
        ctrl->onComplete([&](const MemRequest &req, Cycle done) {
            auto &qs = qstate[req.tag];
            SECNDP_ASSERT(qs.outstanding > 0, "double completion");
            qs.lastDone = std::max(qs.lastDone, done);
            if (--qs.outstanding == 0) {
                const Cycle fin = qs.lastDone + ndpCfg_.packetLdCycles;
                result.packets[req.tag].finished = fin;
                finish_events.emplace(fin, req.tag);
            }
        });
    }

    Cycle now = 0;
    std::size_t next_q = 0;
    std::size_t completed = 0;

    auto can_issue = [&](std::size_t q) {
        for (unsigned pu = 0; pu < n_pus; ++pu)
            if (qstate[q].touches[pu] && free_regs[pu] == 0)
                return false;
        return true;
    };

    auto &sampler = Sampler::instance();
    while (completed < queries.size() || next_q < queries.size()) {
        logSetCycle(now);
        if (sampler.active()) {
            sampler.tick(now);
            // Backlog: packets not yet finished (waiting + in
            // flight) -- the level the NDP_reg window throttles.
            sampler.gauge("ndp_backlog", now,
                          static_cast<double>(queries.size() -
                                              completed));
        }
        // Release registers of packets that finished by `now`.
        while (!finish_events.empty() &&
               finish_events.top().first <= now) {
            const std::size_t q = finish_events.top().second;
            finish_events.pop();
            for (unsigned pu = 0; pu < n_pus; ++pu)
                if (qstate[q].touches[pu])
                    ++free_regs[pu];
            ++completed;
        }

        // Issue packets in order while registers allow.
        while (next_q < queries.size() && can_issue(next_q)) {
            const std::size_t q = next_q++;
            debugLog("issue packet %zu (%zu lines)", q,
                     queries[q].lineAddrs.size());
            result.packets[q].issued = now;
            for (unsigned pu = 0; pu < n_pus; ++pu)
                if (qstate[q].touches[pu])
                    --free_regs[pu];
            if (queries[q].lineAddrs.empty()) {
                // Degenerate packet: only the NDPLd remains here
                // (init is charged uniformly after the loop).
                const Cycle fin = now + ndpCfg_.packetLdCycles;
                result.packets[q].finished = fin;
                qstate[q].lastDone = fin;
                finish_events.emplace(fin, q);
                continue;
            }
            for (const auto addr : queries[q].lineAddrs) {
                const unsigned pu = pu_of(mapper_->decode(addr));
                rankCtrls_[pu]->enqueue({addr, false, q}, now);
            }
            // Charge packet-init latency by construction: the finish
            // below adds packetInitCycles once per packet.
        }

        // Advance: tick every busy controller at `now`, find the next
        // interesting cycle.
        Cycle next = MemoryController::idleForever;
        for (auto &ctrl : rankCtrls_) {
            if (!ctrl->busy())
                continue;
            const Cycle hint = ctrl->tick(now);
            next = std::min(next, hint);
        }
        if (!finish_events.empty())
            next = std::min(next, finish_events.top().first);

        if (next == MemoryController::idleForever) {
            // Nothing in flight: if packets remain unissued we are
            // stalled on registers, which requires a pending finish
            // event -- so this means we are done.
            SECNDP_ASSERT(next_q >= queries.size() &&
                              finish_events.empty(),
                          "NDP scheduler deadlock at cycle %lld",
                          static_cast<long long>(now));
            break;
        }
        now = std::max(now + 1, next);
    }
    logClearCycle();

    // Account per-packet init latency and the batch makespan.
    for (std::size_t q = 0; q < result.packets.size(); ++q) {
        auto &p = result.packets[q];
        p.finished += ndpCfg_.packetInitCycles;
        result.totalCycles = std::max(result.totalCycles, p.finished);
        stats_.histogram("packet_latency").sample(
            static_cast<double>(p.latency()));
        stats_.histogram("packet_lines").sample(
            static_cast<double>(p.lines));
        stats_.histogram("packet_ranks").sample(
            static_cast<double>(p.ranksTouched));
        SECNDP_TRACE_ASYNC_BEGIN("ndp", "packet", q, p.issued);
        SECNDP_TRACE_ASYNC_END("ndp", "packet", q, p.finished);
    }
    stats_.counter("packets") += result.packets.size();
    stats_.counter("lines") += result.totalLines;
    ++stats_.counter("batches");
    for (const auto &ch : channels_) {
        result.acts += ch->stats().counterValue("acts");
        result.reads += ch->stats().counterValue("reads");
    }
    return result;
}

BatchResult
runCpuBatch(const DramConfig &dram_cfg,
            const std::vector<NdpQuery> &queries)
{
    const unsigned n_channels = dram_cfg.geometry.channels;
    const unsigned n_pch = dram_cfg.geometry.pseudoChannels;
    AddressMapper mapper(dram_cfg.geometry);

    // One shared-bus controller per (channel, pseudo-channel), as in
    // a real CPU: each pseudo-channel has its own data bus, so it
    // gets its own FR-FCFS bus scheduler.
    std::vector<std::unique_ptr<DramChannel>> channels;
    std::vector<std::unique_ptr<MemoryController>> ctrls;
    for (unsigned c = 0; c < n_channels; ++c) {
        channels.push_back(std::make_unique<DramChannel>(dram_cfg));
        for (unsigned p = 0; p < n_pch; ++p) {
            (void)p;
            ctrls.push_back(
                std::make_unique<MemoryController>(*channels[c]));
        }
    }

    BatchResult result;
    result.packets.resize(queries.size());
    std::vector<std::size_t> outstanding(queries.size());

    for (auto &ctrl : ctrls) {
        ctrl->onComplete([&](const MemRequest &req, Cycle done) {
            auto &p = result.packets[req.tag];
            p.finished = std::max(p.finished, done);
            SECNDP_ASSERT(outstanding[req.tag] > 0,
                          "double completion");
            --outstanding[req.tag];
        });
    }

    for (std::size_t q = 0; q < queries.size(); ++q) {
        outstanding[q] = queries[q].lineAddrs.size();
        result.packets[q].lines = queries[q].lineAddrs.size();
        result.packets[q].issued = 0;
        result.totalLines += queries[q].lineAddrs.size();
        for (const auto addr : queries[q].lineAddrs) {
            const auto coord = mapper.decode(addr);
            ctrls[coord.channel * n_pch + coord.pseudoChannel]
                ->enqueue({addr, false, q});
        }
    }
    if (n_pch <= 1) {
        // Disjoint channels: sequential per-controller drains are
        // exact (kept verbatim for DDR4 sidecar byte-identity).
        for (auto &ctrl : ctrls) {
            result.totalCycles =
                std::max(result.totalCycles, ctrl->drain(0));
        }
    } else {
        // Pseudo-channels share a channel's command bus, so their
        // controllers must advance in lockstep, not one after the
        // other.
        auto &sampler = Sampler::instance();
        Cycle now = 0;
        for (;;) {
            logSetCycle(now);
            sampler.tick(now);
            Cycle next = MemoryController::idleForever;
            bool busy = false;
            for (auto &ctrl : ctrls) {
                if (!ctrl->busy())
                    continue;
                busy = true;
                next = std::min(next, ctrl->tick(now));
            }
            if (!busy)
                break;
            now = (next == MemoryController::idleForever) ? now + 1
                                                          : next;
        }
        logClearCycle();
        result.totalCycles = now;
        for (const auto &p : result.packets)
            result.totalCycles =
                std::max(result.totalCycles, p.finished);
    }
    // Short-lived group: folds into the registry's retired aggregate
    // when this function returns, so end-of-run reports see it.
    StatGroup stats("cpu_batch");
    for (const auto &p : result.packets) {
        SECNDP_ASSERT(p.lines == 0 || p.finished > 0,
                      "unfinished packet");
        stats.histogram("packet_latency").sample(
            static_cast<double>(p.finished - p.issued));
    }
    stats.counter("packets") += result.packets.size();
    stats.counter("lines") += result.totalLines;
    for (const auto &ch : channels) {
        result.acts += ch->stats().counterValue("acts");
        result.reads += ch->stats().counterValue("reads");
    }
    return result;
}

} // namespace secndp
