/**
 * @file
 * NDP packet generation: translate a query's virtual byte ranges into
 * the deduplicated physical line set the rank PUs must read
 * (paper section VI-B: "the packet generator divides the physical
 * memory requests into packets of NDP commands").
 */

#ifndef SECNDP_NDP_PACKET_GEN_HH
#define SECNDP_NDP_PACKET_GEN_HH

#include <cstdint>
#include <span>

#include "memsim/page_mapper.hh"
#include "ndp/ndp_system.hh"

namespace secndp {

/** A contiguous virtual byte range one query touches. */
struct AccessRange
{
    std::uint64_t vaddr = 0;
    std::uint32_t bytes = 0;
};

/**
 * Build one NDP packet from a query's access ranges.
 *
 * Each range is translated page-by-page (ranges may cross page
 * boundaries, e.g. tag-colocated rows), expanded to line granularity,
 * and deduplicated: a line shared by two ranges is read once.
 *
 * @param mapper demand-paging translator (allocates on first touch)
 * @param ranges the query's byte ranges
 * @param line_bytes cache-line size
 */
NdpQuery buildQuery(PageMapper &mapper,
                    std::span<const AccessRange> ranges,
                    unsigned line_bytes = 64);

} // namespace secndp

#endif // SECNDP_NDP_PACKET_GEN_HH
