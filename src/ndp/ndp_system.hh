/**
 * @file
 * Cycle-level execution model of rank-level NDP (and of the non-NDP
 * CPU baseline over the same work).
 *
 * A *packet* (NdpQuery) is the unit the memory controller dispatches
 * to the rank PUs: the set of line reads one pooling operation needs,
 * plus any tag lines when verification fetches tags from memory. The
 * PU's multiply-accumulate datapath keeps up with the burst rate
 * (paper: a lightweight integer ALU suffices), so packet latency is
 * read-stream-bound:
 *
 *   - every (pseudo-channel, rank) slice serves its own lines through
 *     a private controller (rank-internal bandwidth; DDR5
 *     pseudo-channels double the PU count per rank),
 *   - a packet finishes when its slowest rank finishes (+ NDPLd),
 *   - a packet may only start when every PU has a free register
 *     (NDP_reg bounds in-flight packets).
 *
 * The CPU baseline (`runCpuBatch`) pushes the identical line stream
 * through ONE controller -- the shared channel bus -- which is exactly
 * the bandwidth wall NDP removes.
 */

#ifndef SECNDP_NDP_NDP_SYSTEM_HH
#define SECNDP_NDP_NDP_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "memsim/controller.hh"
#include "ndp/ndp_config.hh"

namespace secndp {

/** One NDP packet: the physical line addresses one query touches. */
struct NdpQuery
{
    std::vector<std::uint64_t> lineAddrs; ///< line-aligned, physical
};

/** Timing record of one executed packet. */
struct PacketTiming
{
    Cycle issued = 0;    ///< when registers were acquired
    Cycle finished = 0;  ///< last read done + NDPLd
    std::uint64_t lines = 0;
    unsigned ranksTouched = 0;

    Cycle latency() const { return finished - issued; }
};

/** Result of running a batch of packets. */
struct BatchResult
{
    std::vector<PacketTiming> packets;
    Cycle totalCycles = 0;
    std::uint64_t totalLines = 0;
    std::uint64_t acts = 0;
    std::uint64_t reads = 0;
};

/** Rank-NDP cycle-level simulator. */
class NdpSimulation
{
  public:
    NdpSimulation(const DramConfig &dram_cfg, const NdpConfig &ndp_cfg);

    /**
     * Execute a batch of packets in order with NDP_reg-bounded
     * overlap; returns per-packet timings and the batch makespan.
     */
    BatchResult run(const std::vector<NdpQuery> &queries);

    /** Device state of one channel (valid after run()). */
    const DramChannel &channel(unsigned c = 0) const
    {
        return *channels_[c];
    }

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

  private:
    DramConfig dramCfg_;
    NdpConfig ndpCfg_;
    StatGroup stats_{"ndp"};
    std::vector<std::unique_ptr<DramChannel>> channels_;
    std::unique_ptr<AddressMapper> mapper_;
    /** One controller per (channel, pseudo-channel, rank) PU. */
    std::vector<std::unique_ptr<MemoryController>> rankCtrls_;
};

/**
 * Non-NDP baseline: the same line reads, one shared-bus controller,
 * no packet windowing (the CPU's request stream is limited by the
 * channel, not by PU registers). Returns per-packet completion as the
 * time the packet's last line arrives on-chip.
 */
BatchResult runCpuBatch(const DramConfig &dram_cfg,
                        const std::vector<NdpQuery> &queries);

} // namespace secndp

#endif // SECNDP_NDP_NDP_SYSTEM_HH
