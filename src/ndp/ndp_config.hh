/**
 * @file
 * Configuration of the rank-NDP subsystem (paper section V, Fig. 5).
 */

#ifndef SECNDP_NDP_NDP_CONFIG_HH
#define SECNDP_NDP_NDP_CONFIG_HH

namespace secndp {

/** Rank-NDP PU and packet-protocol parameters. */
struct NdpConfig
{
    /**
     * Registers per NDP PU (NDP_reg). Each in-flight packet holds one
     * register in every PU it touches, so this bounds packet-level
     * concurrency -- the knob swept in paper Figure 7.
     */
    unsigned ndpReg = 8;

    /**
     * DRAM cycles to configure memory-mapped control registers before
     * a packet's commands can issue (paper section VI-B).
     */
    unsigned packetInitCycles = 12;

    /**
     * Cycles for the final NDPLd that moves a PU register's partial
     * result back to the processor (paper: "a cycle in the final
     * stage"; we charge a small fixed cost per packet).
     */
    unsigned packetLdCycles = 4;
};

} // namespace secndp

#endif // SECNDP_NDP_NDP_CONFIG_HH
