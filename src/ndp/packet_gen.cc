#include "ndp/packet_gen.hh"

#include <algorithm>

#include "common/logging.hh"

namespace secndp {

NdpQuery
buildQuery(PageMapper &mapper, std::span<const AccessRange> ranges,
           unsigned line_bytes)
{
    NdpQuery query;
    const std::uint64_t page = mapper.pageBytes();
    for (const auto &range : ranges) {
        SECNDP_ASSERT(range.bytes > 0, "empty access range");
        std::uint64_t v = range.vaddr;
        std::uint64_t remaining = range.bytes;
        while (remaining > 0) {
            // Stay within one page per translation step.
            const std::uint64_t in_page =
                std::min<std::uint64_t>(remaining,
                                        page - (v % page));
            const std::uint64_t pbase = mapper.translate(v);
            const std::uint64_t first = pbase / line_bytes;
            const std::uint64_t last =
                (pbase + in_page - 1) / line_bytes;
            for (std::uint64_t line = first; line <= last; ++line)
                query.lineAddrs.push_back(line * line_bytes);
            v += in_page;
            remaining -= in_page;
        }
    }
    // Deduplicate shared lines (e.g. two sub-line rows in one line).
    std::sort(query.lineAddrs.begin(), query.lineAddrs.end());
    query.lineAddrs.erase(
        std::unique(query.lineAddrs.begin(), query.lineAddrs.end()),
        query.lineAddrs.end());
    return query;
}

} // namespace secndp
