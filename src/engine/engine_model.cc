#include "engine/engine_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/sampler.hh"
#include "common/stats.hh"
#include "common/trace_event.hh"

namespace secndp {

EngineOverlayResult
overlayEngine(const EngineConfig &cfg, const DramClock &clock,
              const std::vector<PacketTiming> &ndp,
              const std::vector<EngineWork> &work, bool verifying)
{
    SECNDP_ASSERT(ndp.size() == work.size(),
                  "packet/work size mismatch (%zu vs %zu)", ndp.size(),
                  work.size());
    const double blocks_per_cycle = cfg.blocksPerCycle(clock);
    SECNDP_ASSERT(blocks_per_cycle > 0, "zero AES throughput");

    EngineOverlayResult result;
    result.finished.resize(ndp.size());
    result.decryptBound.resize(ndp.size());
    result.otpStart.resize(ndp.size());
    result.otpDone.resize(ndp.size());
    result.verifyStart.resize(ndp.size());

    // Short-lived stat group: folded into the registry's retired
    // aggregate on return, so end-of-run reports carry the engine's
    // per-packet histograms.
    StatGroup stats("engine");
#if SECNDP_TRACING
    std::uint32_t aes_track = 0, ver_track = 0;
    if (SECNDP_TRACE_ACTIVE()) {
        aes_track = Tracer::instance().newTrack("engine.aes_pool");
        if (verifying)
            ver_track = Tracer::instance().newTrack("engine.verify");
    }
#endif

    // The AES pool serves packets FIFO; generation for packet q can
    // start once the packet is issued (addresses known) and the pool
    // has drained packet q-1's work.
    double pool_free = 0.0;
    std::size_t bound = 0;
    for (std::size_t q = 0; q < ndp.size(); ++q) {
        const double start =
            std::max(pool_free, static_cast<double>(ndp[q].issued));
        const double otp_done =
            start + work[q].totalBlocks() / blocks_per_cycle;
        pool_free = otp_done;

        const Cycle otp_cycle =
            static_cast<Cycle>(std::ceil(otp_done));
        const bool decrypt_bound = otp_cycle > ndp[q].finished;
        result.decryptBound[q] = decrypt_bound;
        Cycle fin = std::max(otp_cycle, ndp[q].finished) +
                    cfg.adderCycles;
        if (verifying)
            fin += cfg.verifyCheckCycles;
        result.finished[q] = fin;
        result.otpStart[q] = start;
        result.otpDone[q] = otp_done;
        result.verifyStart[q] = static_cast<double>(
            std::max(otp_cycle, ndp[q].finished) + cfg.adderCycles);
        result.totalCycles = std::max(result.totalCycles, fin);
        bound += decrypt_bound;
        result.totalAesBlocks += work[q].totalBlocks();
        result.totalOtpPuOps += work[q].otpPuOps;
        result.totalVerifyOps += work[q].verifyOps;

        stats.histogram("otp_blocks").sample(
            static_cast<double>(work[q].totalBlocks()));
        // Slack between the OTP share and the NDP share: positive
        // means the engine was the late one (decryption-bound).
        stats.histogram("otp_lag_cycles").sample(
            static_cast<double>(otp_cycle - ndp[q].finished));
        stats.histogram("packet_latency").sample(
            static_cast<double>(fin - ndp[q].issued));
        // Time-series: the pool is busy generating OTPs for exactly
        // [start, otp_done); verifier checks occupy the fixed window
        // before packet finish. Overlap-per-interval gives the busy
        // fraction / mean queue depth directly.
        auto &sampler = Sampler::instance();
        if (sampler.active()) {
            if (work[q].totalBlocks() > 0)
                sampler.recordSpan("aes_busy_frac", start, otp_done);
            if (verifying) {
                const double vstart = static_cast<double>(
                    std::max(otp_cycle, ndp[q].finished) +
                    cfg.adderCycles);
                sampler.recordSpan(
                    "verify_queue_depth", vstart,
                    vstart +
                        static_cast<double>(cfg.verifyCheckCycles));
            }
        }
#if SECNDP_TRACING
        if (SECNDP_TRACE_ACTIVE() && work[q].totalBlocks() > 0) {
            const auto ts = static_cast<Cycle>(start);
            Tracer::instance().complete(
                "engine", "otp", aes_track, ts,
                std::max<Cycle>(otp_cycle - ts, 1));
            if (verifying) {
                Tracer::instance().complete(
                    "engine", "verify", ver_track,
                    std::max(otp_cycle, ndp[q].finished) +
                        cfg.adderCycles,
                    cfg.verifyCheckCycles);
            }
        }
#endif
    }
    stats.counter("packets") += ndp.size();
    stats.counter("decrypt_bound") += bound;
    stats.counter("aes_blocks") += result.totalAesBlocks;
    stats.counter("otp_pu_ops") += result.totalOtpPuOps;
    stats.counter("verify_ops") += result.totalVerifyOps;
    result.fractionDecryptBound =
        ndp.empty() ? 0.0
                    : static_cast<double>(bound) / ndp.size();
    return result;
}

Cycle
teeDecryptFinish(const EngineConfig &cfg, const DramClock &clock,
                 std::uint64_t total_blocks, Cycle mem_finish)
{
    const double blocks_per_cycle = cfg.blocksPerCycle(clock);
    const Cycle otp = static_cast<Cycle>(
        std::ceil(total_blocks / blocks_per_cycle));
    return std::max(mem_finish, otp) + cfg.adderCycles;
}

} // namespace secndp
