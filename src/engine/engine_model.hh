/**
 * @file
 * Performance model of the on-chip SecNDP engine (paper section V-C):
 * a pool of pipelined AES engines generating OTPs, the OTP PU that
 * replays NDP commands on the pads, and the verification engine.
 *
 * The engine works packet by packet, overlapped with the NDP's
 * off-chip work: a packet's OTP generation starts when the packet
 * issues and proceeds at the pool's aggregate throughput
 * (n_aes x 111.3 Gbps, [22]); the decrypted result is ready one adder
 * delay after BOTH shares are ready. A packet is
 * "decryption-bottlenecked" when its OTP share finishes after its NDP
 * share -- the quantity plotted in paper Figures 8 and 10.
 */

#ifndef SECNDP_ENGINE_ENGINE_MODEL_HH
#define SECNDP_ENGINE_ENGINE_MODEL_HH

#include <cstdint>
#include <vector>

#include "memsim/dram_params.hh"
#include "ndp/ndp_system.hh"

namespace secndp {

/** SecNDP engine provisioning. */
struct EngineConfig
{
    /** Number of parallel AES engines (swept in Figures 7/8). */
    unsigned nAesEngines = 10;

    /** Per-engine throughput, Gbit/s (45 nm design of [22]). */
    double aesGbpsPerEngine = 111.3;

    /** Final decrypt adder latency, cycles (section V-E3). */
    unsigned adderCycles = 1;

    /** Extra verification-check latency, cycles (1-2 per V-E3). */
    unsigned verifyCheckCycles = 2;

    /** Pool throughput in AES blocks per DRAM cycle. */
    double
    blocksPerCycle(const DramClock &clock) const
    {
        const double bits_per_ns = nAesEngines * aesGbpsPerEngine;
        return bits_per_ns * clock.nsPerCycle() / 128.0;
    }
};

/** Per-packet on-chip work the engine must perform. */
struct EngineWork
{
    /** AES blocks of OTP for the data share (touched elements). */
    std::uint64_t dataOtpBlocks = 0;
    /** AES blocks for tag pads + checksum secret when verifying. */
    std::uint64_t tagOtpBlocks = 0;
    /** OTP PU multiply-accumulate ops (energy accounting). */
    std::uint64_t otpPuOps = 0;
    /** Verification engine field ops (energy accounting). */
    std::uint64_t verifyOps = 0;

    std::uint64_t totalBlocks() const
    {
        return dataOtpBlocks + tagOtpBlocks;
    }
};

/** Outcome of overlaying engine timing on an NDP batch. */
struct EngineOverlayResult
{
    /** Final per-packet completion (max of shares + adder). */
    std::vector<Cycle> finished;
    /** Per-packet: was the OTP share the late one? */
    std::vector<bool> decryptBound;
    /** Per-packet AES-pool OTP window [otpStart, otpDone), cycles
     *  (equal when the packet has no engine work). Feeds the
     *  per-request otp_gen spans of the request tracer. */
    std::vector<double> otpStart;
    std::vector<double> otpDone;
    /** Per-packet verify-check window start, cycles; the window is
     *  verifyCheckCycles long (only meaningful when verifying). */
    std::vector<double> verifyStart;
    Cycle totalCycles = 0;
    double fractionDecryptBound = 0.0;
    std::uint64_t totalAesBlocks = 0;
    std::uint64_t totalOtpPuOps = 0;
    std::uint64_t totalVerifyOps = 0;
};

/**
 * Overlay the engine pipeline on NDP packet timings. `ndp` and `work`
 * must be index-aligned per packet.
 */
EngineOverlayResult overlayEngine(const EngineConfig &cfg,
                                  const DramClock &clock,
                                  const std::vector<PacketTiming> &ndp,
                                  const std::vector<EngineWork> &work,
                                  bool verifying);

/**
 * Timing of a CPU-TEE (non-NDP, counter-mode protected) stream: the
 * whole data stream must be decrypted at the pool rate; returns the
 * cycle at which decryption of `total_blocks` finishes if it starts
 * at 0 and can never outrun `mem_finish`.
 */
Cycle teeDecryptFinish(const EngineConfig &cfg, const DramClock &clock,
                       std::uint64_t total_blocks, Cycle mem_finish);

} // namespace secndp

#endif // SECNDP_ENGINE_ENGINE_MODEL_HH
