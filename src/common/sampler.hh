/**
 * @file
 * Time-series sampling of simulation statistics.
 *
 * The process-wide Sampler bins the simulated-cycle axis into
 * fixed-width intervals (default 10k cycles) and derives per-interval
 * series from three sources:
 *
 *  - counter probes: at every interval boundary crossed by a tick()
 *    it polls cumulative StatRegistry counters and converts the delta
 *    into a rate. Built-in probes: `bus_util` (ctrl.bus_busy_cycles
 *    per controller-cycle) and `row_hit_rate` (fraction of dram
 *    column accesses that did not need an ACT);
 *  - gauges: instantaneous levels published by simulation loops
 *    (e.g. `ndp_backlog`, the packets issued-or-waiting but not yet
 *    finished); the last value written in an interval wins;
 *  - busy spans: [begin, end) work intervals (e.g. AES-pool OTP
 *    generation, verifier checks) accumulated as the mean concurrency
 *    within each interval (`aes_busy_frac`, `verify_queue_depth`).
 *
 * The result is written as CSV (`secndp_sim --timeseries-out`) --
 * column 0 is the interval-end cycle, remaining columns are series
 * in sorted name order -- and mirrored into the Chrome tracer as
 * counter tracks when a trace is being recorded.
 *
 * Inactive cost: tick() is one branch. The Sampler assumes a single
 * simulated clock domain per activation (one `secndp_sim` run); it is
 * not meant to span multiple independently-clocked batches.
 */

#ifndef SECNDP_COMMON_SAMPLER_HH
#define SECNDP_COMMON_SAMPLER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace secndp {

class Sampler
{
  public:
    static Sampler &instance();

    static constexpr std::int64_t defaultInterval = 10000;

    /** Reset all state and start sampling with the given interval. */
    void start(std::int64_t interval_cycles = defaultInterval);

    /** Deactivate and drop all collected series. */
    void stop();

    /**
     * Return the leaked singleton to its freshly-constructed state:
     * inactive, default interval, no series, no counter baselines,
     * and trace mirroring re-armed. Call between serve runs in one
     * process (and in tests) so a stop->start cycle can never carry
     * stale bins or series into the next activation.
     */
    void reset();

    bool active() const { return active_; }
    std::int64_t interval() const { return interval_; }

    /**
     * Publish the current simulated cycle; closes every interval
     * whose end has passed (polling the counter probes once per
     * crossing). Call from simulation loops. O(1) when inactive.
     */
    void tick(std::int64_t now)
    {
        if (active_ && now >= nextBoundary_)
            advanceTo(now);
        if (active_ && now > lastCycle_)
            lastCycle_ = now;
    }

    /** Record an instantaneous level (last write per interval wins). */
    void gauge(const std::string &series, std::int64_t now,
               double value);

    /**
     * Record a busy span [begin, end) in cycles; each overlapped
     * interval accumulates overlap/interval (mean concurrency).
     */
    void recordSpan(const std::string &series, double begin,
                    double end);

    /**
     * Close the final (possibly partial) interval, write the CSV, and
     * mirror every series into the Chrome tracer as counter tracks if
     * a trace is recording. Leaves the Sampler active (call stop() to
     * clear). Returns false if the file cannot be written.
     */
    bool writeCsv(const std::string &path);

    // --- introspection (tests) ---
    std::vector<std::string> seriesNames() const;
    std::size_t intervalCount() const;
    /** Value of `series` in interval `bin` (0 when absent). */
    double valueAt(const std::string &series, std::size_t bin) const;

    /**
     * Latest value of every series (last written bin per series) --
     * the gauge view the live telemetry snapshot publishes. Empty
     * when inactive. Caller must be the sampling thread (the Sampler
     * is single-threaded by contract).
     */
    std::map<std::string, double> latestValues() const;

  private:
    Sampler() = default;

    void advanceTo(std::int64_t now);
    /** Poll counter probes; spread deltas over bins [curBin_, upTo). */
    void closeBins(std::size_t up_to);
    std::vector<double> &seriesRef(const std::string &name);

    bool active_ = false;
    std::int64_t interval_ = defaultInterval;
    std::int64_t nextBoundary_ = 0;
    std::int64_t lastCycle_ = 0;
    std::size_t curBin_ = 0; ///< first not-yet-closed interval
    /** Peak live "ctrl" group count seen at any boundary -- the
     *  bus_util normalizer. Captured during ticks because the final
     *  flush runs after the per-batch controllers are destroyed. */
    std::size_t ctrlSeen_ = 0;
    double lastBusBusy_ = 0.0;
    double lastColCmds_ = 0.0;
    double lastActs_ = 0.0;
    /** Series already mirrored into the Chrome tracer: writeCsv can
     *  run twice (normal path + abort-path atexit flush) and must not
     *  emit duplicate counter tracks. */
    bool mirrored_ = false;
    std::map<std::string, std::vector<double>> series_;
};

} // namespace secndp

#endif // SECNDP_COMMON_SAMPLER_HH
