#include "common/phase_profiler.hh"

#include <mutex>

#include "common/stats.hh"

namespace secndp {

namespace {

/**
 * Serializes accumulation into the shared host_phases group: phases
 * now close on serving worker-pool threads as well as the main loop,
 * and StatGroups are single-writer by contract (common/stats.hh).
 */
std::mutex &
phaseMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

StatGroup &
hostPhaseStats()
{
    // Intentionally leaked (like StatRegistry::instance) so the group
    // stays live through any static-destruction-order shenanigans.
    // Marked shared: phases close on worker threads too, so no thread
    // may claim this group in an owned telemetry snapshot (wall-clock
    // phases are post-mortem data anyway).
    static StatGroup *g = [] {
        auto *group = new StatGroup("host_phases");
        group->markSharedWriter();
        return group;
    }();
    return *g;
}

ScopedPhase::~ScopedPhase()
{
    const auto elapsed =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_)
            .count();
    auto &g = hostPhaseStats();
    std::lock_guard<std::mutex> lock(phaseMutex());
    g.scalar(std::string(name_) + "_ms") += elapsed;
    ++g.counter(std::string(name_) + "_calls");
}

} // namespace secndp
