#include "common/phase_profiler.hh"

#include "common/stats.hh"

namespace secndp {

StatGroup &
hostPhaseStats()
{
    // Intentionally leaked (like StatRegistry::instance) so the group
    // stays live through any static-destruction-order shenanigans.
    static StatGroup *g = new StatGroup("host_phases");
    return *g;
}

ScopedPhase::~ScopedPhase()
{
    const auto elapsed =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_)
            .count();
    auto &g = hostPhaseStats();
    g.scalar(std::string(name_) + "_ms") += elapsed;
    ++g.counter(std::string(name_) + "_calls");
}

} // namespace secndp
