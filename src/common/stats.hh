/**
 * @file
 * A statistics registry in the spirit of gem5's stats package.
 *
 * Components own a StatGroup of named counters/scalars/distributions/
 * histograms. Every StatGroup auto-registers with the process-wide
 * StatRegistry on construction and unregisters on destruction; a
 * destroyed group's values are folded into a per-name "retired"
 * aggregate, so an end-of-process dump still sees the work of
 * short-lived simulation objects (channels and controllers are
 * rebuilt per batch). Same-named groups (e.g. the per-rank "ctrl"
 * controllers) are merged in dumps: counters and scalars add,
 * distributions and histograms union.
 *
 * StatRegistry::dumpJson emits the experiment-report schema consumed
 * by the bench sidecars, `secndp_sim --stats-json`, and the
 * `secndp_report` analysis CLI (see DESIGN.md "Observability"):
 *
 *   { "schema_version": 2,
 *     "meta": { "key": "value", ... },           // run metadata
 *     "groups":
 *       { "group": { "stat": value
 *                  | {"count":..,"min":..,"max":..,"mean":..}      // dist
 *                  | {"count":..,"min":..,"max":..,"mean":..,
 *                     "p50":..,"p95":..,"p99":..} } } }            // histo
 *
 * Key order is fully deterministic (every object sorted by key), so
 * two runs of the same binary produce byte-identical reports modulo
 * metadata -- a requirement for the checked-in perf baselines under
 * bench/baselines/ that `secndp_report diff` gates CI on.
 *
 * Concurrency: the registry itself (add/retire/snapshot/meta/
 * counterSumNamed) is fully thread-safe, but each StatGroup is
 * SINGLE-WRITER -- counter()/scalar()/histogram() hand out plain
 * references with no internal locking, so exactly one thread may
 * mutate a given group instance at a time. Multi-threaded components
 * (the src/serve worker pool) therefore give every thread its own
 * same-named group (or a job-local group folded under a lock) and
 * rely on the retire-time fold: when each group is destroyed its
 * values merge into the per-name retired aggregate, and dumps show
 * one combined group whose totals are independent of job-to-thread
 * interleaving. Keep per-thread samples integral so the folded double
 * sums are exact (and thus byte-deterministic) regardless of retire
 * order. Shared groups written from several threads must serialize
 * externally -- see common/phase_profiler.cc for the host_phases
 * example.
 *
 * Live telemetry (src/telemetry) needs a mid-run snapshot that never
 * races a writer. Every group records the thread that constructed it
 * as its OWNER; StatRegistry::snapshotOwned() merges the retired
 * aggregate (mutated only under the registry mutex) with the live
 * groups owned by the *calling* thread, so the caller only ever reads
 * groups it is itself the single writer of. Externally-serialized
 * shared groups (host_phases) call markSharedWriter() to opt out of
 * every owned snapshot; concurrently-written components expose their
 * own locked copies instead (see serve/worker_pool.hh).
 */

#ifndef SECNDP_COMMON_STATS_HH
#define SECNDP_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

namespace secndp {

/** An accumulating distribution: count / min / max / mean / sum. */
class Distribution
{
  public:
    void sample(double v);
    void reset();
    void mergeFrom(const Distribution &other);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double minValue() const { return count_ ? min_ : 0.0; }
    double maxValue() const { return count_ ? max_ : 0.0; }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A value collection with exact quantiles (stores every sample; use
 * for per-packet metrics, not per-cycle ones).
 */
class Samples
{
  public:
    void add(double v) { values_.push_back(v); }
    std::size_t count() const { return values_.size(); }

    /** Exact p-quantile, p in [0, 1] (nearest-rank). Empty -> 0. */
    double percentile(double p) const;

    double mean() const;

  private:
    std::vector<double> values_;
};

/**
 * A log2-bucketed histogram: O(1) memory regardless of sample count,
 * exact count/min/max/mean, and approximate quantiles (linear
 * interpolation inside the hit bucket, clamped to the observed
 * min/max so small-count histograms stay sensible).
 *
 * Bucket 0 holds v < 1 (including zero and negatives); bucket k >= 1
 * holds 2^(k-1) <= v < 2^k.
 */
class Histogram
{
  public:
    void sample(double v);
    void reset();
    void mergeFrom(const Histogram &other);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double minValue() const { return count_ ? min_ : 0.0; }
    double maxValue() const { return count_ ? max_ : 0.0; }

    /** Approximate p-quantile, p clamped to [0, 1]. Empty -> 0. */
    double percentile(double p) const;

    /** Bucket index a value falls in. */
    static unsigned bucketOf(double v);
    /** Inclusive lower edge of bucket b. */
    static double bucketLow(unsigned b);
    /** Exclusive upper edge of bucket b. */
    static double bucketHigh(unsigned b);

    /** Raw bucket counts (index = bucketOf; trailing zeros trimmed). */
    const std::vector<std::uint64_t> &buckets() const
    {
        return buckets_;
    }

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A named collection of scalar statistics. Scalars are created lazily
 * on first access, so callers can just bump `group.counter("reads")++`.
 *
 * Groups register with StatRegistry::instance() on construction and
 * fold into its retired aggregate on destruction; pass
 * StatGroup::noRegister to opt out (used for merged snapshots).
 */
class StatGroup
{
  public:
    /** Tag type to construct a group invisible to the registry. */
    struct NoRegisterTag {};
    static constexpr NoRegisterTag noRegister{};

    explicit StatGroup(std::string name);
    StatGroup(std::string name, NoRegisterTag);
    StatGroup(const StatGroup &other);
    StatGroup(StatGroup &&other);
    StatGroup &operator=(const StatGroup &other);
    ~StatGroup();

    /** Integral counter (created at 0 on first use). */
    std::uint64_t &counter(const std::string &stat);

    /** Floating-point scalar (created at 0.0 on first use). */
    double &scalar(const std::string &stat);

    /** Distribution (created empty on first use). */
    Distribution &distribution(const std::string &stat);

    /** Log2-bucketed histogram (created empty on first use). */
    Histogram &histogram(const std::string &stat);

    /** Value lookups that do not create entries (0 when absent). */
    std::uint64_t counterValue(const std::string &stat) const;
    double scalarValue(const std::string &stat) const;

    /** Histogram lookup without creation (nullptr when absent). */
    const Histogram *findHistogram(const std::string &stat) const;

    /** @name Read-only iteration (snapshot/exposition consumers) */
    /// @{
    const std::map<std::string, std::uint64_t> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, double> &scalars() const
    {
        return scalars_;
    }
    const std::map<std::string, Distribution> &distributions() const
    {
        return distributions_;
    }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }
    /// @}

    const std::string &name() const { return name_; }

    /** Does the calling thread own (single-write) this group? */
    bool ownedByCaller() const
    {
        return owner_ == std::this_thread::get_id();
    }

    /**
     * Mark this group as written by several threads under external
     * serialization (e.g. host_phases): it then belongs to *no*
     * thread and is skipped by StatRegistry::snapshotOwned(), whose
     * consistency contract is "only read what the caller writes".
     */
    void markSharedWriter() { owner_ = std::thread::id(); }

    /** Is there anything to report? */
    bool empty() const;

    /** Zero every statistic in this group. */
    void reset();

    /** Accumulate another group's values into this one. */
    void mergeFrom(const StatGroup &other);

    /** Pretty-print `name.stat value` lines. */
    void dump(std::ostream &os) const;

    /** Emit this group's stats as one JSON object (no trailing \n). */
    void dumpJson(std::ostream &os) const;

  private:
    std::string name_;
    bool registered_ = false;
    /** Constructing thread; see "Concurrency" in the file doc. */
    std::thread::id owner_ = std::this_thread::get_id();
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> scalars_;
    std::map<std::string, Distribution> distributions_;
    std::map<std::string, Histogram> histograms_;
};

/**
 * Process-wide registry of every live StatGroup plus the merged
 * values of groups that have been destroyed ("retired"). Thread-safe;
 * never destroyed (intentionally leaked) so StatGroups with static
 * storage duration can unregister safely at exit.
 */
class StatRegistry
{
  public:
    /** Bump when the dumpJson layout changes incompatibly. */
    static constexpr int schemaVersion = 2;

    static StatRegistry &instance();

    /** Number of currently-registered groups. */
    std::size_t liveGroups() const;

    /** Number of currently-registered groups with this name. */
    std::size_t liveGroupsNamed(const std::string &name) const;

    /**
     * Sum of one counter across every live and retired group named
     * `group` -- the cheap cumulative read the time-series Sampler
     * polls at every interval boundary (no snapshot copy).
     */
    std::uint64_t counterSumNamed(const std::string &group,
                                  const std::string &stat) const;

    /**
     * Attach run metadata (workload, config knobs, bench name, ...)
     * emitted under the report's top-level "meta" object. Values are
     * strings; setting a key again overwrites it.
     */
    void setMeta(const std::string &key, const std::string &value);

    /** Current metadata, including the compiled-in git describe. */
    std::map<std::string, std::string> metaSnapshot() const;

    /**
     * Merged view (live + retired) keyed by group name. The returned
     * groups are unregistered snapshots. Only safe when no other
     * thread is concurrently writing a registered group (end-of-run
     * dumps after pools have drained).
     */
    std::map<std::string, StatGroup> snapshot() const;

    /**
     * Race-free mid-run snapshot: the retired aggregate plus every
     * live group the *calling* thread owns (constructed). Groups
     * being written by other threads -- and shared groups that opted
     * out via markSharedWriter() -- are excluded, so the result is
     * point-in-time consistent without stopping any writer. The
     * single-writer telemetry path in src/serve composes this with
     * the worker pool's own locked copy.
     */
    std::map<std::string, StatGroup> snapshotOwned() const;

    /** Pretty-print every merged group, `name.stat value` lines. */
    void dump(std::ostream &os) const;

    /** JSON experiment report: {group: {stat: ...}} (see file doc). */
    void dumpJson(std::ostream &os) const;

    /** Reset all live groups and drop the retired aggregate. */
    void resetAll();

  private:
    friend class StatGroup;
    StatRegistry() = default;

    void add(StatGroup *g);
    /** Remove without folding (moved-from groups). */
    void forget(StatGroup *g);
    /** Remove and fold the group's values into the retired merge. */
    void retire(StatGroup *g);

    mutable std::mutex mutex_;
    std::vector<StatGroup *> live_;
    std::map<std::string, StatGroup> retired_;
    std::map<std::string, std::string> meta_;
};

/**
 * Build identification string: the compiled-in `git describe` (the
 * same value stats reports carry as meta.git), or "unknown" when the
 * build had no git context. Used by every CLI tool's --version.
 */
const char *buildVersion();

} // namespace secndp

#endif // SECNDP_COMMON_STATS_HH
