/**
 * @file
 * A tiny statistics registry in the spirit of gem5's stats package.
 *
 * Components register named counters/scalars in a StatGroup; groups can
 * be dumped together for an experiment report. Everything is plain
 * double/uint64 -- no sampling, no histograms beyond a simple
 * Distribution that tracks min/max/mean.
 */

#ifndef SECNDP_COMMON_STATS_HH
#define SECNDP_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace secndp {

/** An accumulating distribution: count / min / max / mean / sum. */
class Distribution
{
  public:
    void sample(double v);
    void reset();

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double minValue() const { return count_ ? min_ : 0.0; }
    double maxValue() const { return count_ ? max_ : 0.0; }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A value collection with exact quantiles (stores every sample; use
 * for per-packet metrics, not per-cycle ones).
 */
class Samples
{
  public:
    void add(double v) { values_.push_back(v); }
    std::size_t count() const { return values_.size(); }

    /** Exact p-quantile, p in [0, 1] (nearest-rank). Empty -> 0. */
    double percentile(double p) const;

    double mean() const;

  private:
    std::vector<double> values_;
};

/**
 * A named collection of scalar statistics. Scalars are created lazily
 * on first access, so callers can just bump `group.counter("reads")++`.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Integral counter (created at 0 on first use). */
    std::uint64_t &counter(const std::string &stat);

    /** Floating-point scalar (created at 0.0 on first use). */
    double &scalar(const std::string &stat);

    /** Distribution (created empty on first use). */
    Distribution &distribution(const std::string &stat);

    /** Value lookups that do not create entries (0 when absent). */
    std::uint64_t counterValue(const std::string &stat) const;
    double scalarValue(const std::string &stat) const;

    const std::string &name() const { return name_; }

    /** Zero every statistic in this group. */
    void reset();

    /** Pretty-print `name.stat value` lines. */
    void dump(std::ostream &os) const;

  private:
    std::string name_;
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> scalars_;
    std::map<std::string, Distribution> distributions_;
};

} // namespace secndp

#endif // SECNDP_COMMON_STATS_HH
