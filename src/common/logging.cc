#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace secndp {

namespace {

/** Current minimum level; initialized from SECNDP_LOG on first use. */
LogLevel &
levelRef()
{
    static LogLevel level = [] {
        LogLevel l = LogLevel::Info;
        if (const char *env = std::getenv("SECNDP_LOG")) {
            if (!parseLogLevel(env, l)) {
                std::fprintf(stderr,
                             "warn: SECNDP_LOG='%s' is not "
                             "debug|info|warn|error; using info\n",
                             env);
                l = LogLevel::Info;
            }
        }
        return l;
    }();
    return level;
}

thread_local std::int64_t currentCycle = -1;
thread_local bool haveCycle = false;

void
vreport(const char *prefix, const char *fmt, va_list args)
{
    if (haveCycle) {
        std::fprintf(stderr, "%s [cyc %lld]: ", prefix,
                     static_cast<long long>(currentCycle));
    } else {
        std::fprintf(stderr, "%s: ", prefix);
    }
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
}

} // namespace

void
setLogLevel(LogLevel level)
{
    levelRef() = level;
}

LogLevel
logLevel()
{
    return levelRef();
}

bool
parseLogLevel(const std::string &s, LogLevel &out)
{
    if (s == "debug") out = LogLevel::Debug;
    else if (s == "info") out = LogLevel::Info;
    else if (s == "warn" || s == "warning") out = LogLevel::Warn;
    else if (s == "error") out = LogLevel::Error;
    else return false;
    return true;
}

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

void
logSetCycle(std::int64_t cycle)
{
    currentCycle = cycle;
    haveCycle = true;
}

void
logClearCycle()
{
    haveCycle = false;
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
panicAssert(const char *cond, const char *file, int line, const char *fmt,
            ...)
{
    std::fprintf(stderr, "panic: assertion '%s' failed at %s:%d: ", cond,
                 file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
error(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("error", fmt, args);
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    if (logLevel() > LogLevel::Warn)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (logLevel() > LogLevel::Info)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

void
debugLog(const char *fmt, ...)
{
    if (logLevel() > LogLevel::Debug)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("debug", fmt, args);
    va_end(args);
}

void
setVerbose(bool verbose)
{
    setLogLevel(verbose ? LogLevel::Info : LogLevel::Warn);
}

bool
verboseEnabled()
{
    return logLevel() <= LogLevel::Info;
}

} // namespace secndp
