/**
 * @file
 * Small bit-manipulation helpers shared across modules.
 */

#ifndef SECNDP_COMMON_BITUTIL_HH
#define SECNDP_COMMON_BITUTIL_HH

#include <cstdint>

namespace secndp {

/** Mask with the low `bits` bits set (bits in [0, 64]). */
constexpr std::uint64_t
lowMask(unsigned bits)
{
    return bits >= 64 ? ~0ULL : ((std::uint64_t{1} << bits) - 1);
}

/** True iff v is a power of two (v > 0). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)) for v > 0. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

/** ceil(a / b) for b > 0. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Round a up to the next multiple of b (b > 0). */
constexpr std::uint64_t
roundUp(std::uint64_t a, std::uint64_t b)
{
    return divCeil(a, b) * b;
}

/** Extract bits [lo, hi) of v (hi > lo, hi <= 64). */
constexpr std::uint64_t
bitSlice(std::uint64_t v, unsigned lo, unsigned hi)
{
    return (v >> lo) & lowMask(hi - lo);
}

} // namespace secndp

#endif // SECNDP_COMMON_BITUTIL_HH
