#include "common/rng.hh"

#include <cmath>
#include <unordered_set>

#include "common/logging.hh"

namespace secndp {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    SECNDP_ASSERT(bound > 0, "nextBounded(0)");
    // Lemire's nearly-divisionless method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
        std::uint64_t t = -bound % bound;
        while (l < t) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    SECNDP_ASSERT(lo <= hi, "bad range [%ld, %ld]", lo, hi);
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(
        span == 0 ? next() : nextBounded(span));
}

double
Rng::nextDouble()
{
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::nextGaussian()
{
    if (haveGauss_) {
        haveGauss_ = false;
        return gaussSpare_;
    }
    double u1, u2;
    do {
        u1 = nextDouble();
    } while (u1 <= 1e-300);
    u2 = nextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    gaussSpare_ = r * std::sin(theta);
    haveGauss_ = true;
    return r * std::cos(theta);
}

std::uint64_t
Rng::nextZipf(std::uint64_t n, double alpha)
{
    SECNDP_ASSERT(n > 0, "nextZipf(0)");
    if (alpha <= 0.0)
        return nextBounded(n);

    // Inverse-CDF on the continuous approximation; accurate enough for
    // workload skew synthesis and O(1) per draw.
    const double s = 1.0 - alpha;
    const double nd = static_cast<double>(n);
    double u = nextDouble();
    double x;
    if (std::abs(s) < 1e-9) {
        x = std::exp(u * std::log(nd + 1.0));
    } else {
        const double top = std::pow(nd + 1.0, s);
        x = std::pow(u * (top - 1.0) + 1.0, 1.0 / s);
    }
    std::uint64_t idx = static_cast<std::uint64_t>(x) - 1;
    return idx >= n ? n - 1 : idx;
}

std::vector<std::uint64_t>
Rng::sampleDistinct(std::uint64_t n, std::size_t k)
{
    SECNDP_ASSERT(k <= n, "cannot draw %zu distinct from %lu", k, n);
    std::vector<std::uint64_t> out;
    out.reserve(k);
    if (k * 2 >= n) {
        // Dense case: partial Fisher-Yates over an index array.
        std::vector<std::uint64_t> pool(n);
        for (std::uint64_t i = 0; i < n; ++i)
            pool[i] = i;
        for (std::size_t i = 0; i < k; ++i) {
            const std::uint64_t j = i + nextBounded(n - i);
            std::swap(pool[i], pool[j]);
            out.push_back(pool[i]);
        }
    } else {
        std::unordered_set<std::uint64_t> seen;
        while (out.size() < k) {
            const std::uint64_t v = nextBounded(n);
            if (seen.insert(v).second)
                out.push_back(v);
        }
    }
    return out;
}

} // namespace secndp
