/**
 * @file
 * Deterministic pseudo-random number generation for simulation and
 * workload synthesis.
 *
 * We use xoshiro256** (public domain, Blackman & Vigna): fast, high
 * quality, and trivially seedable, so every experiment in the repo is
 * reproducible bit-for-bit from its seed. NOT a CSPRNG -- key material
 * in tests is fine, but the crypto module never uses this for pads.
 */

#ifndef SECNDP_COMMON_RNG_HH
#define SECNDP_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace secndp {

/** xoshiro256** generator with splitmix64 seeding. */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = defaultSeed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** UniformRandomBitGenerator interface (usable with <random>). */
    result_type operator()() { return next(); }
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Standard normal via Box-Muller. */
    double nextGaussian();

    /**
     * Zipf-distributed index in [0, n) with exponent alpha, via
     * rejection-inversion (Hormann & Derflinger). alpha == 0 degrades
     * to uniform. Used to synthesise skewed embedding-row popularity.
     */
    std::uint64_t nextZipf(std::uint64_t n, double alpha);

    /** k distinct uniform indices from [0, n) (k <= n). */
    std::vector<std::uint64_t> sampleDistinct(std::uint64_t n,
                                              std::size_t k);

  public:
    /** Repo-wide default seed ("secndp" leetspeak). */
    static constexpr std::uint64_t defaultSeed = 0x5ec0d9d15ec0d9d1ULL;

  private:
    std::uint64_t state_[4];
    bool haveGauss_ = false;
    double gaussSpare_ = 0.0;
};

} // namespace secndp

#endif // SECNDP_COMMON_RNG_HH
