/**
 * @file
 * Minimal gem5-style logging and error-reporting helpers.
 *
 * panic()  -- an internal invariant was violated (a simulator bug);
 *             aborts so the failure can be debugged.
 * fatal()  -- the user asked for something impossible (bad config);
 *             exits with an error code.
 * warn() / inform() -- non-fatal status messages.
 */

#ifndef SECNDP_COMMON_LOGGING_HH
#define SECNDP_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace secndp {

/** Print a formatted message and abort(). Never returns. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted message and exit(1). Never returns. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);

/** Whether inform() output is currently enabled. */
bool verboseEnabled();

/** Implementation detail of SECNDP_ASSERT. Never returns. */
[[noreturn]] void panicAssert(const char *cond, const char *file, int line,
                              const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/**
 * panic() unless the condition holds. Used for internal invariants that
 * must hold regardless of user input.
 */
#define SECNDP_ASSERT(cond, ...)                                           \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::secndp::panicAssert(#cond, __FILE__, __LINE__, __VA_ARGS__); \
        }                                                                  \
    } while (0)

} // namespace secndp

#endif // SECNDP_COMMON_LOGGING_HH
