/**
 * @file
 * Minimal gem5-style logging and error-reporting helpers.
 *
 * panic()  -- an internal invariant was violated (a simulator bug);
 *             aborts so the failure can be debugged.
 * fatal()  -- the user asked for something impossible (bad config);
 *             exits with an error code.
 * warn() / inform() / debugLog() -- non-fatal status messages, gated
 *             by the process log level.
 *
 * The level defaults to Info, can be set programmatically
 * (setLogLevel), from the SECNDP_LOG environment variable
 * (debug|info|warn|error, read on first use), or via
 * `secndp_sim --log-level`. Messages are prefixed with their level
 * and -- when a simulation loop has published one via logSetCycle()
 * -- the current simulated cycle:
 *
 *   info [cyc 1234]: refresh issued on rank 3
 */

#ifndef SECNDP_COMMON_LOGGING_HH
#define SECNDP_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdint>
#include <string>

namespace secndp {

/** Message severities, most to least verbose. */
enum class LogLevel
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
};

/** Set the minimum level that gets printed. */
void setLogLevel(LogLevel level);

/** Current minimum level (consults SECNDP_LOG on first call). */
LogLevel logLevel();

/** Parse "debug|info|warn|error"; returns false on junk. */
bool parseLogLevel(const std::string &s, LogLevel &out);

const char *logLevelName(LogLevel level);

/**
 * Publish the current simulated cycle so log lines emitted from
 * inside a simulation loop carry it. Clear with logClearCycle() when
 * the loop exits. Thread-local.
 */
void logSetCycle(std::int64_t cycle);
void logClearCycle();

/** Print a formatted message and abort(). Never returns. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted message and exit(1). Never returns. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print an error to stderr (always shown). */
void error(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr (level <= Warn). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr (level <= Info). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a debug message to stderr (level == Debug). */
void debugLog(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * @name Legacy verbosity shim
 * setVerbose(false) used to silence inform(); it now maps to
 * LogLevel::Warn (and setVerbose(true) to LogLevel::Info). Prefer
 * setLogLevel().
 */
/// @{
void setVerbose(bool verbose);
bool verboseEnabled();
/// @}

/** Implementation detail of SECNDP_ASSERT. Never returns. */
[[noreturn]] void panicAssert(const char *cond, const char *file, int line,
                              const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/**
 * panic() unless the condition holds. Used for internal invariants that
 * must hold regardless of user input.
 */
#define SECNDP_ASSERT(cond, ...)                                           \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::secndp::panicAssert(#cond, __FILE__, __LINE__, __VA_ARGS__); \
        }                                                                  \
    } while (0)

} // namespace secndp

#endif // SECNDP_COMMON_LOGGING_HH
