/**
 * @file
 * Scoped host-side wall-clock phase profiler.
 *
 * Simulated cycles tell us where the *modeled hardware* spends time;
 * this answers the complementary question of where the *simulator
 * process* spends wall time (setup / encrypt / sim-drain / verify /
 * report). Phases accumulate into the registered "host_phases"
 * StatGroup -- `<phase>_ms` (total milliseconds) and `<phase>_calls`
 * -- so they ride along in every stats sidecar for free.
 *
 * Usage:
 *   { ScopedPhase p("sim_drain"); ... expensive work ... }
 *
 * Phases nest freely (each scope accounts its own wall time, so
 * nested phases double-count against their parent by design; treat
 * the numbers as per-phase inclusive cost, not a partition). Scopes
 * may close on any thread -- accumulation into the shared group is
 * serialized internally, so serving worker-pool jobs can use phases
 * too. Wall times are inherently machine-dependent: `secndp_report
 * diff` never gates on host_phases metrics.
 */

#ifndef SECNDP_COMMON_PHASE_PROFILER_HH
#define SECNDP_COMMON_PHASE_PROFILER_HH

#include <chrono>
#include <string>

namespace secndp {

class StatGroup;

/** The process-wide "host_phases" StatGroup (created on first use). */
StatGroup &hostPhaseStats();

/** RAII phase scope: accumulates wall time on destruction. */
class ScopedPhase
{
  public:
    explicit ScopedPhase(const char *name)
        : name_(name), start_(std::chrono::steady_clock::now())
    {
    }
    ~ScopedPhase();

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    const char *name_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace secndp

#endif // SECNDP_COMMON_PHASE_PROFILER_HH
