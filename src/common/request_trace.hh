/**
 * @file
 * Per-request lifecycle tracing and the anomaly flight recorder.
 *
 * Every query admitted by the serving layer gets a trace ID (its
 * request ID) and leaves a sequence of typed spans behind as it moves
 * through the pipeline:
 *
 *   queue_wait    admission -> batch flush
 *   batch_form    the flush instant (aux = batch occupancy)
 *   otp_gen       engine AES-pool window generating the OTP share
 *   sim_drain     the request's shard occupying its memory channel
 *   verify        tag-check window on the engine (ver mode only)
 *   retry         one recovery re-read (backoff + re-read cost)
 *   host_fallback trusted host recompute after retries exhausted
 *   shed          admission rejection (queue full) -- terminal
 *   abort         recovery ladder gave up -- terminal
 *   fault         an injected fault, cross-linked to its victim trace
 *
 * Spans land in per-thread single-producer ring buffers (the *flight
 * recorder*): recording is a bump-index store with no locks and no
 * allocation past the first span of a thread, cheap enough to leave
 * on in production runs (<5%, gated by the serve_trace perf config).
 * The rings keep the last `flightCapacity` spans per thread; on the
 * first *anomaly* -- abort, load shed, missed forgery, or an SLO
 * breach when `sloNs` is set -- their merged contents auto-dump to a
 * `.flight.json` so the moments before the incident survive it.
 *
 * Timestamps are virtual nanoseconds on the serving timeline and all
 * IDs are deterministic in the seed, so span logs and flight dumps
 * byte-compare across same-seed runs (the CI trace-smoke job does).
 *
 * Cost model mirrors trace_event.hh: with SECNDP_TRACING == 0
 * (-DSECNDP_ENABLE_TRACING=OFF) every SECNDP_RQSPAN macro expands to
 * nothing and start() refuses to arm, so sidecars stay byte-identical
 * to untraced builds. The trace-context thread-locals (current trace
 * / current virtual time) survive compile-out: the fault injector
 * uses them to attribute injections to victim requests even when no
 * spans are recorded.
 *
 * Schemas ("secndp-spans-v1" full log, "secndp-flight-v1" dump) are
 * parsed by src/report and joined against serve.* histograms by
 * `secndp_report explain`.
 */

#ifndef SECNDP_COMMON_REQUEST_TRACE_HH
#define SECNDP_COMMON_REQUEST_TRACE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#ifndef SECNDP_TRACING
#define SECNDP_TRACING 1
#endif

namespace secndp {

/** Span taxonomy of the request lifecycle (see file doc). */
enum class SpanKind : std::uint8_t
{
    QueueWait,
    BatchForm,
    OtpGen,
    SimDrain,
    Verify,
    Retry,
    HostFallback,
    Shed,
    Abort,
    Fault,
};

constexpr unsigned spanKindCount = 10;

const char *spanKindName(SpanKind kind);
bool parseSpanKind(const std::string &name, SpanKind &out);

/** One recorded span. POD so ring slots assign without allocation. */
struct SpanRecord
{
    std::uint64_t trace = 0; ///< victim request ID
    std::uint64_t seq = 0;   ///< global emission order
    double startNs = 0.0;    ///< virtual serving-timeline start
    double durNs = 0.0;      ///< 0 for instant events
    SpanKind kind = SpanKind::QueueWait;
    std::uint32_t shard = 0; ///< executing shard / channel
    std::uint64_t aux = 0;   ///< kind-specific payload (see emitters)
};

/** What tripped a flight dump. */
enum class AnomalyKind : std::uint8_t
{
    Abort,
    Shed,
    MissedForgery,
    SloBreach,
};

constexpr unsigned anomalyKindCount = 4;

const char *anomalyKindName(AnomalyKind kind);

/**
 * Process-wide request tracer + flight recorder (see file doc).
 *
 * Threading: record() is wait-free per thread (each producer owns a
 * private ring; the only atomic is the global seq counter). start(),
 * stop(), the write*() dumpers and anomaly() take the registry mutex
 * and belong on the coordinating thread; dumping while producers are
 * mid-record is tolerated (a torn slot at the ring head) but the
 * serving loop only dumps from the emitting thread, so in practice
 * snapshots are exact.
 */
class RequestTracer
{
  public:
    /** "No trace in scope" sentinel for the thread-local context. */
    static constexpr std::uint64_t noTrace = ~std::uint64_t{0};

    struct Config
    {
        /** Spans each thread's flight ring retains. */
        std::size_t flightCapacity = 4096;
        /** Keep an unbounded span log for writeSpanLog(). */
        bool keepSpanLog = false;
        /** Auto-dump target on the first anomaly ("" = no dump). */
        std::string flightPath;
        /** Latency SLO; >0 arms the SloBreach anomaly. */
        double sloNs = 0.0;
    };

    static RequestTracer &instance();

    /**
     * Arm the tracer. Returns false (and stays inactive) when tracing
     * is compiled out. Re-arming while active resets all state.
     */
    bool start(const Config &cfg);

    /** Disarm and drop all recorded state. Idempotent. */
    void stop();

    bool active() const { return active_; }
    double sloNs() const { return config_.sloNs; }

    /** @name Trace context (thread-local, survives compile-out) */
    /// @{
    static void setCurrent(std::uint64_t trace) { tlsTrace_ = trace; }
    static void clearCurrent() { tlsTrace_ = noTrace; }
    static std::uint64_t current() { return tlsTrace_; }
    /** Virtual "now" for emitters without their own clock (faults). */
    static void setNow(double ns) { tlsNowNs_ = ns; }
    static double now() { return tlsNowNs_; }
    /// @}

    /** Record one span (no-op when inactive). */
    void record(std::uint64_t trace, SpanKind kind, double start_ns,
                double dur_ns, std::uint32_t shard = 0,
                std::uint64_t aux = 0);

    /**
     * Report an anomaly: counts it and, on the first one, dumps the
     * flight rings to the configured path. No-op when inactive.
     */
    void anomaly(AnomalyKind kind, std::uint64_t trace, double at_ns);

    /** @name Accounting (stable once producers are quiescent) */
    /// @{
    std::uint64_t spansRecorded() const { return nextSeq_.load(); }
    std::uint64_t droppedSpans() const;
    std::uint64_t anomalyCount() const;
    std::uint64_t anomalyCountOf(AnomalyKind kind) const
    {
        return anomalies_[static_cast<unsigned>(kind)];
    }
    std::uint64_t flightDumps() const { return flightDumps_; }
    /// @}

    /** All retained flight-ring spans, merged in seq order. */
    std::vector<SpanRecord> mergedSpans() const;

    /** Full span log in seq order (empty unless keepSpanLog). */
    std::vector<SpanRecord> spanLog() const;

    /** Write the full span log as secndp-spans-v1. */
    bool writeSpanLog(const std::string &path) const;

    /** Manually dump the flight rings as secndp-flight-v1. */
    bool writeFlight(const std::string &path) const;

  private:
    /** One thread's single-producer ring. */
    struct ThreadRing
    {
        explicit ThreadRing(std::size_t capacity)
            : slots(capacity)
        {
        }
        std::vector<SpanRecord> slots;
        std::uint64_t pushes = 0;
    };

    RequestTracer() = default;

    ThreadRing *ringForThisThread();
    bool writeFlightLocked(const std::string &path,
                           bool has_anomaly) const;
    std::vector<SpanRecord> mergedSpansLocked() const;

    Config config_;
    bool active_ = false;
    /** Bumped on every start/stop so stale thread-local ring pointers
     *  from a previous arming re-register instead of dangling. */
    std::uint64_t epoch_ = 0;

    std::atomic<std::uint64_t> nextSeq_{0};

    mutable std::mutex mutex_; ///< rings_/log_/anomaly registry
    std::vector<std::unique_ptr<ThreadRing>> rings_;
    std::vector<SpanRecord> log_;

    std::uint64_t anomalies_[anomalyKindCount] = {};
    std::uint64_t flightDumps_ = 0;
    bool flightDumped_ = false;
    AnomalyKind firstAnomaly_ = AnomalyKind::Abort;
    std::uint64_t firstAnomalyTrace_ = 0;
    double firstAnomalyNs_ = 0.0;

    static thread_local std::uint64_t tlsTrace_;
    static thread_local double tlsNowNs_;
    static thread_local ThreadRing *tlsRing_;
    static thread_local std::uint64_t tlsEpoch_;
};

} // namespace secndp

#if SECNDP_TRACING

/** True when the request tracer is armed (guard for arg work). */
#define SECNDP_RQTRACE_ACTIVE() \
    (::secndp::RequestTracer::instance().active())

#define SECNDP_RQSPAN(trace, kind, start_ns, dur_ns, shard, aux)       \
    do {                                                               \
        if (SECNDP_RQTRACE_ACTIVE()) {                                 \
            ::secndp::RequestTracer::instance().record(                \
                trace, kind, start_ns, dur_ns, shard, aux);            \
        }                                                              \
    } while (0)

#define SECNDP_RQANOMALY(kind, trace, at_ns)                           \
    do {                                                               \
        if (SECNDP_RQTRACE_ACTIVE()) {                                 \
            ::secndp::RequestTracer::instance().anomaly(kind, trace,   \
                                                        at_ns);        \
        }                                                              \
    } while (0)

#else // !SECNDP_TRACING

#define SECNDP_RQTRACE_ACTIVE() (false)
#define SECNDP_RQSPAN(trace, kind, start_ns, dur_ns, shard, aux) \
    do {                                                         \
    } while (0)
#define SECNDP_RQANOMALY(kind, trace, at_ns) \
    do {                                     \
    } while (0)

#endif // SECNDP_TRACING

#endif // SECNDP_COMMON_REQUEST_TRACE_HH
