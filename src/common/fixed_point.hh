/**
 * @file
 * Fixed-point conversion helpers.
 *
 * SecNDP (like arithmetic secret sharing generally) computes in the
 * integer ring Z(2^we), so floating-point workloads quantize to
 * fixed-point first (paper section III-C). These helpers convert between
 * float/double and two's-complement fixed point with a runtime number of
 * fractional bits, with round-to-nearest and saturation.
 */

#ifndef SECNDP_COMMON_FIXED_POINT_HH
#define SECNDP_COMMON_FIXED_POINT_HH

#include <cmath>
#include <cstdint>
#include <limits>

namespace secndp {

/** Parameters of a fixed-point representation. */
struct FixedPointFormat
{
    /** Total bit width (values live in Z(2^totalBits)). */
    unsigned totalBits = 32;
    /** Number of fractional bits. */
    unsigned fracBits = 16;

    double scale() const { return std::ldexp(1.0, fracBits); }
    std::int64_t maxRaw() const
    {
        return (std::int64_t{1} << (totalBits - 1)) - 1;
    }
    std::int64_t minRaw() const
    {
        return -(std::int64_t{1} << (totalBits - 1));
    }
};

/**
 * Quantize a real value to fixed point (round-to-nearest-even,
 * saturating), returned as the two's-complement raw integer.
 */
inline std::int64_t
toFixed(double v, const FixedPointFormat &fmt)
{
    const double scaled = v * fmt.scale();
    double rounded = std::nearbyint(scaled);
    if (rounded > static_cast<double>(fmt.maxRaw()))
        rounded = static_cast<double>(fmt.maxRaw());
    if (rounded < static_cast<double>(fmt.minRaw()))
        rounded = static_cast<double>(fmt.minRaw());
    return static_cast<std::int64_t>(rounded);
}

/** Reinterpret a raw fixed-point integer as a real value. */
inline double
fromFixed(std::int64_t raw, const FixedPointFormat &fmt)
{
    return static_cast<double>(raw) / fmt.scale();
}

/**
 * Encode a signed raw value into the unsigned ring Z(2^we) (two's
 * complement truncation), the representation stored in memory and
 * operated on by the scheme.
 */
inline std::uint64_t
toRing(std::int64_t raw, unsigned we)
{
    const std::uint64_t mask =
        we >= 64 ? ~0ULL : ((std::uint64_t{1} << we) - 1);
    return static_cast<std::uint64_t>(raw) & mask;
}

/** Decode a ring element back to a signed value (sign-extend we bits). */
inline std::int64_t
fromRing(std::uint64_t v, unsigned we)
{
    if (we >= 64)
        return static_cast<std::int64_t>(v);
    const std::uint64_t sign_bit = std::uint64_t{1} << (we - 1);
    const std::uint64_t mask = (std::uint64_t{1} << we) - 1;
    v &= mask;
    if (v & sign_bit)
        return static_cast<std::int64_t>(v | ~mask);
    return static_cast<std::int64_t>(v);
}

} // namespace secndp

#endif // SECNDP_COMMON_FIXED_POINT_HH
