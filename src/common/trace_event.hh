/**
 * @file
 * Lightweight Chrome trace-event tracing, keyed by *simulated* cycle.
 *
 * The singleton Tracer writes the Trace Event Format JSON that
 * chrome://tracing and Perfetto (https://ui.perfetto.dev) load
 * directly: one simulated cycle is reported as one microsecond of
 * trace time. Components emit
 *
 *   - complete ("X") duration events on named tracks (e.g. one track
 *     per memory controller's data bus, one per AES pool),
 *   - async ("b"/"e") spans for work that overlaps freely (NDP
 *     packets in flight),
 *   - counter ("C") events (queue occupancy).
 *
 * Cost model: when the SECNDP_TRACING macro is 0 (CMake option
 * -DSECNDP_ENABLE_TRACING=OFF) every SECNDP_TRACE_* macro expands to
 * nothing -- compile-time zero cost. When compiled in but no trace
 * file is open (the default), each macro is a single predictable
 * branch on a bool.
 *
 * Usage (see tools/secndp_sim.cc --trace-out):
 *   Tracer::instance().start("run.trace");
 *   ... simulate ...
 *   Tracer::instance().stop();
 */

#ifndef SECNDP_COMMON_TRACE_EVENT_HH
#define SECNDP_COMMON_TRACE_EVENT_HH

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

#ifndef SECNDP_TRACING
#define SECNDP_TRACING 1
#endif

namespace secndp {

/** Chrome trace-event writer (process-wide singleton). */
class Tracer
{
  public:
    static Tracer &instance();

    /**
     * Open `path` and start recording. Returns false (and stays
     * inactive) if the file cannot be opened. Restarting while
     * active first finishes the current trace.
     */
    bool start(const std::string &path);

    /** Finish the JSON document and close the file. Idempotent. */
    void stop();

    bool active() const { return active_; }

    /**
     * Allocate a track (a Chrome "thread") labelled `name`. Tracks
     * render as separate rows; events on one track should not
     * overlap (use async spans for overlapping work).
     */
    std::uint32_t newTrack(const std::string &name);

    /** Complete event: [ts, ts+dur) on `track`, cycles. */
    void complete(const char *cat, const char *name,
                  std::uint32_t track, std::int64_t ts,
                  std::int64_t dur);

    /** Async span begin/end; (cat, id) pairs the two ends. */
    void asyncBegin(const char *cat, const char *name,
                    std::uint64_t id, std::int64_t ts);
    void asyncEnd(const char *cat, const char *name, std::uint64_t id,
                  std::int64_t ts);

    /** Counter event: `value` of series `name` at `ts`. */
    void counter(const char *cat, const char *name,
                 std::uint32_t track, std::int64_t ts, double value);

    /** Events written so far (diagnostics/tests). */
    std::uint64_t eventCount() const { return events_; }

  private:
    Tracer() = default;
    void emitPrefix();

    std::FILE *out_ = nullptr;
    bool active_ = false;
    bool first_ = true;
    std::uint32_t nextTrack_ = 1;
    std::uint64_t events_ = 0;
    std::mutex mutex_;
};

} // namespace secndp

#if SECNDP_TRACING

/** True when a trace file is open (guard for arg computation). */
#define SECNDP_TRACE_ACTIVE() (::secndp::Tracer::instance().active())

#define SECNDP_TRACE_COMPLETE(cat, name, track, ts, dur)               \
    do {                                                               \
        if (SECNDP_TRACE_ACTIVE()) {                                   \
            ::secndp::Tracer::instance().complete(cat, name, track,    \
                                                  ts, dur);            \
        }                                                              \
    } while (0)

#define SECNDP_TRACE_ASYNC_BEGIN(cat, name, id, ts)                    \
    do {                                                               \
        if (SECNDP_TRACE_ACTIVE()) {                                   \
            ::secndp::Tracer::instance().asyncBegin(cat, name, id,     \
                                                    ts);               \
        }                                                              \
    } while (0)

#define SECNDP_TRACE_ASYNC_END(cat, name, id, ts)                      \
    do {                                                               \
        if (SECNDP_TRACE_ACTIVE()) {                                   \
            ::secndp::Tracer::instance().asyncEnd(cat, name, id, ts);  \
        }                                                              \
    } while (0)

#define SECNDP_TRACE_COUNTER(cat, name, track, ts, value)              \
    do {                                                               \
        if (SECNDP_TRACE_ACTIVE()) {                                   \
            ::secndp::Tracer::instance().counter(cat, name, track, ts, \
                                                 value);               \
        }                                                              \
    } while (0)

#else // !SECNDP_TRACING

#define SECNDP_TRACE_ACTIVE() (false)
#define SECNDP_TRACE_COMPLETE(cat, name, track, ts, dur) \
    do {                                                 \
    } while (0)
#define SECNDP_TRACE_ASYNC_BEGIN(cat, name, id, ts) \
    do {                                            \
    } while (0)
#define SECNDP_TRACE_ASYNC_END(cat, name, id, ts) \
    do {                                          \
    } while (0)
#define SECNDP_TRACE_COUNTER(cat, name, track, ts, value) \
    do {                                                  \
    } while (0)

#endif // SECNDP_TRACING

#endif // SECNDP_COMMON_TRACE_EVENT_HH
