#include "common/trace_event.hh"

#include "common/logging.hh"

namespace secndp {

Tracer &
Tracer::instance()
{
    // Leaked like StatRegistry: safe to touch from static dtors.
    static Tracer *t = new Tracer();
    return *t;
}

bool
Tracer::start(const std::string &path)
{
    stop();
    std::lock_guard<std::mutex> lock(mutex_);
    out_ = std::fopen(path.c_str(), "w");
    if (!out_) {
        warn("cannot open trace file '%s'", path.c_str());
        return false;
    }
    std::fputs("{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n",
               out_);
    first_ = true;
    nextTrack_ = 1;
    events_ = 0;
    active_ = true;
    return true;
}

void
Tracer::stop()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!out_)
        return;
    std::fputs("\n]}\n", out_);
    std::fclose(out_);
    out_ = nullptr;
    active_ = false;
}

void
Tracer::emitPrefix()
{
    // Callers hold mutex_.
    if (!first_)
        std::fputs(",\n", out_);
    first_ = false;
    ++events_;
}

std::uint32_t
Tracer::newTrack(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint32_t tid = nextTrack_++;
    if (out_) {
        emitPrefix();
        std::fprintf(out_,
                     "{\"name\": \"thread_name\", \"ph\": \"M\", "
                     "\"pid\": 0, \"tid\": %u, "
                     "\"args\": {\"name\": \"%s\"}}",
                     tid, name.c_str());
    }
    return tid;
}

void
Tracer::complete(const char *cat, const char *name,
                 std::uint32_t track, std::int64_t ts, std::int64_t dur)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!out_)
        return;
    emitPrefix();
    std::fprintf(out_,
                 "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
                 "\"pid\": 0, \"tid\": %u, \"ts\": %lld, "
                 "\"dur\": %lld}",
                 name, cat, track, static_cast<long long>(ts),
                 static_cast<long long>(dur));
}

void
Tracer::asyncBegin(const char *cat, const char *name, std::uint64_t id,
                   std::int64_t ts)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!out_)
        return;
    emitPrefix();
    std::fprintf(out_,
                 "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"b\", "
                 "\"id\": %llu, \"pid\": 0, \"tid\": 0, \"ts\": %lld}",
                 name, cat, static_cast<unsigned long long>(id),
                 static_cast<long long>(ts));
}

void
Tracer::asyncEnd(const char *cat, const char *name, std::uint64_t id,
                 std::int64_t ts)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!out_)
        return;
    emitPrefix();
    std::fprintf(out_,
                 "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"e\", "
                 "\"id\": %llu, \"pid\": 0, \"tid\": 0, \"ts\": %lld}",
                 name, cat, static_cast<unsigned long long>(id),
                 static_cast<long long>(ts));
}

void
Tracer::counter(const char *cat, const char *name, std::uint32_t track,
                std::int64_t ts, double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!out_)
        return;
    emitPrefix();
    std::fprintf(out_,
                 "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"C\", "
                 "\"pid\": 0, \"tid\": %u, \"ts\": %lld, "
                 "\"args\": {\"value\": %.6g}}",
                 name, cat, track, static_cast<long long>(ts), value);
}

} // namespace secndp
