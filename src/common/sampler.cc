#include "common/sampler.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/stats.hh"
#include "common/trace_event.hh"

namespace secndp {

Sampler &
Sampler::instance()
{
    static Sampler *sampler = new Sampler();
    return *sampler;
}

void
Sampler::start(std::int64_t interval_cycles)
{
    stop();
    interval_ = std::max<std::int64_t>(1, interval_cycles);
    // First tick triggers advanceTo immediately so the controller
    // count is captured while the simulation objects are live.
    nextBoundary_ = 0;
    // Counter baselines: only deltas from here on belong to this run
    // (the process may have simulated batches before activation).
    auto &reg = StatRegistry::instance();
    lastBusBusy_ = static_cast<double>(
        reg.counterSumNamed("ctrl", "bus_busy_cycles"));
    lastColCmds_ =
        static_cast<double>(reg.counterSumNamed("dram", "reads") +
                            reg.counterSumNamed("dram", "writes"));
    lastActs_ =
        static_cast<double>(reg.counterSumNamed("dram", "acts"));
    active_ = true;
}

void
Sampler::stop()
{
    active_ = false;
    interval_ = defaultInterval;
    nextBoundary_ = 0;
    lastCycle_ = 0;
    curBin_ = 0;
    ctrlSeen_ = 0;
    lastBusBusy_ = lastColCmds_ = lastActs_ = 0.0;
    mirrored_ = false;
    series_.clear();
}

void
Sampler::reset()
{
    stop();
}

std::vector<double> &
Sampler::seriesRef(const std::string &name)
{
    return series_[name];
}

void
Sampler::closeBins(std::size_t up_to)
{
    if (up_to <= curBin_)
        return;
    const std::size_t n_bins = up_to - curBin_;

    auto &reg = StatRegistry::instance();
    // Counter names are the probe contract with memsim (see
    // controller.cc / channel.cc).
    const double bus_busy = static_cast<double>(
        reg.counterSumNamed("ctrl", "bus_busy_cycles"));
    const double col_cmds = static_cast<double>(
        reg.counterSumNamed("dram", "reads") +
        reg.counterSumNamed("dram", "writes"));
    const double acts =
        static_cast<double>(reg.counterSumNamed("dram", "acts"));
    const double n_ctrl =
        static_cast<double>(std::max<std::size_t>(1, ctrlSeen_));

    const double d_busy = bus_busy - lastBusBusy_;
    const double d_cols = col_cmds - lastColCmds_;
    const double d_acts = acts - lastActs_;
    lastBusBusy_ = bus_busy;
    lastColCmds_ = col_cmds;
    lastActs_ = acts;

    // A tick may jump several boundaries at once (event-driven time);
    // the deltas are attributed uniformly across the skipped bins.
    const double util = std::clamp(
        d_busy / (n_bins * static_cast<double>(interval_) * n_ctrl),
        0.0, 1.0);
    const double hit_rate =
        d_cols > 0.0 ? std::clamp((d_cols - d_acts) / d_cols, 0.0, 1.0)
                     : 0.0;

    auto &bus = seriesRef("bus_util");
    auto &hits = seriesRef("row_hit_rate");
    if (bus.size() < up_to)
        bus.resize(up_to, 0.0);
    if (hits.size() < up_to)
        hits.resize(up_to, 0.0);
    for (std::size_t b = curBin_; b < up_to; ++b) {
        bus[b] = util;
        hits[b] = hit_rate;
    }
    curBin_ = up_to;
}

void
Sampler::advanceTo(std::int64_t now)
{
    ctrlSeen_ = std::max(
        ctrlSeen_, StatRegistry::instance().liveGroupsNamed("ctrl"));
    // Interval k covers cycles [k*I, (k+1)*I); every interval whose
    // end is <= now is complete.
    const auto complete =
        static_cast<std::size_t>(now / interval_);
    closeBins(complete);
    nextBoundary_ =
        static_cast<std::int64_t>(curBin_ + 1) * interval_;
}

void
Sampler::gauge(const std::string &series, std::int64_t now,
               double value)
{
    if (!active_)
        return;
    const auto bin = static_cast<std::size_t>(
        std::max<std::int64_t>(0, now) / interval_);
    auto &v = seriesRef(series);
    if (v.size() <= bin)
        v.resize(bin + 1, 0.0);
    v[bin] = value;
    if (now > lastCycle_)
        lastCycle_ = now;
}

void
Sampler::recordSpan(const std::string &series, double begin,
                    double end)
{
    if (!active_ || !(end > begin))
        return;
    begin = std::max(begin, 0.0);
    end = std::max(end, begin);
    const double iv = static_cast<double>(interval_);
    const auto first = static_cast<std::size_t>(begin / iv);
    const auto last = static_cast<std::size_t>((end - 1e-9) / iv);
    auto &v = seriesRef(series);
    if (v.size() <= last)
        v.resize(last + 1, 0.0);
    for (std::size_t b = first; b <= last; ++b) {
        const double lo = std::max(begin, b * iv);
        const double hi = std::min(end, (b + 1) * iv);
        if (hi > lo)
            v[b] += (hi - lo) / iv;
    }
    if (static_cast<std::int64_t>(end) > lastCycle_)
        lastCycle_ = static_cast<std::int64_t>(end);
}

std::vector<std::string>
Sampler::seriesNames() const
{
    std::vector<std::string> names;
    names.reserve(series_.size());
    for (const auto &kv : series_)
        names.push_back(kv.first);
    return names;
}

std::size_t
Sampler::intervalCount() const
{
    std::size_t n = 0;
    for (const auto &kv : series_)
        n = std::max(n, kv.second.size());
    return n;
}

double
Sampler::valueAt(const std::string &series, std::size_t bin) const
{
    auto it = series_.find(series);
    if (it == series_.end() || bin >= it->second.size())
        return 0.0;
    return it->second[bin];
}

std::map<std::string, double>
Sampler::latestValues() const
{
    std::map<std::string, double> latest;
    for (const auto &kv : series_) {
        if (!kv.second.empty())
            latest[kv.first] = kv.second.back();
    }
    return latest;
}

bool
Sampler::writeCsv(const std::string &path)
{
    if (!active_)
        return false;
    // Close the trailing partial interval so short runs still produce
    // at least one row. The probe rates in the partial bin are
    // normalized by the full interval width (a conservative
    // under-estimate for the tail).
    if (lastCycle_ >= static_cast<std::int64_t>(curBin_) * interval_)
        closeBins(static_cast<std::size_t>(lastCycle_ / interval_) + 1);

    const std::size_t rows = intervalCount();
    std::ofstream os(path);
    if (!os)
        return false;

    os << "cycle";
    for (const auto &kv : series_)
        os << "," << kv.first;
    os << "\n";
    char buf[64];
    for (std::size_t bin = 0; bin < rows; ++bin) {
        const std::int64_t cycle_end = std::min<std::int64_t>(
            static_cast<std::int64_t>(bin + 1) * interval_,
            std::max<std::int64_t>(lastCycle_, 1));
        os << cycle_end;
        for (const auto &kv : series_) {
            const double v =
                bin < kv.second.size() ? kv.second[bin] : 0.0;
            std::snprintf(buf, sizeof(buf), "%.6g", v);
            os << "," << buf;
        }
        os << "\n";
    }

    // Mirror into the event trace so Perfetto shows the derived
    // series alongside the raw spans they were computed from. At most
    // once per activation: the abort-path atexit flush may call
    // writeCsv after the normal path already has.
    auto &tracer = Tracer::instance();
    if (tracer.active() && !mirrored_) {
        mirrored_ = true;
        for (const auto &kv : series_) {
            const auto track = tracer.newTrack("sample." + kv.first);
            for (std::size_t bin = 0; bin < kv.second.size(); ++bin) {
                tracer.counter(
                    "sample", kv.first.c_str(), track,
                    static_cast<std::int64_t>(bin + 1) * interval_,
                    kv.second[bin]);
            }
        }
    }
    return os.good();
}

} // namespace secndp
