#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace secndp {

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
}

void
Distribution::reset()
{
    *this = Distribution();
}

void
Distribution::mergeFrom(const Distribution &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
    sum_ += other.sum_;
}

double
Samples::percentile(double p) const
{
    if (values_.empty())
        return 0.0;
    std::vector<double> sorted = values_;
    std::sort(sorted.begin(), sorted.end());
    p = std::min(1.0, std::max(0.0, p));
    const std::size_t rank = static_cast<std::size_t>(
        p * (sorted.size() - 1) + 0.5);
    return sorted[rank];
}

double
Samples::mean() const
{
    if (values_.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : values_)
        acc += v;
    return acc / values_.size();
}

unsigned
Histogram::bucketOf(double v)
{
    if (!(v >= 1.0)) // NaN, negatives, and [0, 1) all land in bucket 0
        return 0;
    const int e = static_cast<int>(std::floor(std::log2(v)));
    return static_cast<unsigned>(std::min(e, 62)) + 1;
}

double
Histogram::bucketLow(unsigned b)
{
    return b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b) - 1);
}

double
Histogram::bucketHigh(unsigned b)
{
    return std::ldexp(1.0, static_cast<int>(b));
}

void
Histogram::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
    const unsigned b = bucketOf(v);
    if (b >= buckets_.size())
        buckets_.resize(b + 1, 0);
    ++buckets_[b];
}

void
Histogram::reset()
{
    *this = Histogram();
}

void
Histogram::mergeFrom(const Histogram &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.buckets_.size() > buckets_.size())
        buckets_.resize(other.buckets_.size(), 0);
    for (std::size_t b = 0; b < other.buckets_.size(); ++b)
        buckets_[b] += other.buckets_[b];
}

double
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    p = std::min(1.0, std::max(0.0, p));
    if (p == 0.0)
        return min_;
    if (p == 1.0)
        return max_;
    // Cumulative-count target, then interpolate linearly inside the
    // bucket that holds it, treating each sample as occupying the
    // midpoint of its 1/cnt slice (midpoint convention). The bucket's
    // effective bounds clamp to the observed [min, max] so single-
    // valued histograms return that value exactly and the result never
    // overshoots into the unpopulated tail of a wide log2 bucket.
    const double target = p * count_;
    double cum = 0.0;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
        if (buckets_[b] == 0)
            continue;
        const double prev = cum;
        cum += buckets_[b];
        if (cum >= target - 1e-9) {
            const double cnt = static_cast<double>(buckets_[b]);
            double frac = (target - prev - 0.5) / cnt;
            frac = std::min(1.0, std::max(0.0, frac));
            const double lo = std::max(
                bucketLow(static_cast<unsigned>(b)), min_);
            const double hi = std::min(
                bucketHigh(static_cast<unsigned>(b)), max_);
            return lo + frac * (hi - lo);
        }
    }
    return max_;
}

StatGroup::StatGroup(std::string name) : name_(std::move(name))
{
    StatRegistry::instance().add(this);
    registered_ = true;
}

StatGroup::StatGroup(std::string name, NoRegisterTag)
    : name_(std::move(name))
{
}

StatGroup::StatGroup(const StatGroup &other)
    : name_(other.name_), counters_(other.counters_),
      scalars_(other.scalars_), distributions_(other.distributions_),
      histograms_(other.histograms_)
{
    if (other.registered_) {
        StatRegistry::instance().add(this);
        registered_ = true;
    }
}

StatGroup::StatGroup(StatGroup &&other)
    : name_(std::move(other.name_)),
      counters_(std::move(other.counters_)),
      scalars_(std::move(other.scalars_)),
      distributions_(std::move(other.distributions_)),
      histograms_(std::move(other.histograms_))
{
    if (other.registered_) {
        auto &reg = StatRegistry::instance();
        reg.forget(&other);
        other.registered_ = false;
        reg.add(this);
        registered_ = true;
    }
}

StatGroup &
StatGroup::operator=(const StatGroup &other)
{
    // Registration status follows the object, not the assignment.
    name_ = other.name_;
    counters_ = other.counters_;
    scalars_ = other.scalars_;
    distributions_ = other.distributions_;
    histograms_ = other.histograms_;
    return *this;
}

StatGroup::~StatGroup()
{
    if (registered_)
        StatRegistry::instance().retire(this);
}

std::uint64_t &
StatGroup::counter(const std::string &stat)
{
    return counters_[stat];
}

double &
StatGroup::scalar(const std::string &stat)
{
    return scalars_[stat];
}

Distribution &
StatGroup::distribution(const std::string &stat)
{
    return distributions_[stat];
}

Histogram &
StatGroup::histogram(const std::string &stat)
{
    return histograms_[stat];
}

std::uint64_t
StatGroup::counterValue(const std::string &stat) const
{
    auto it = counters_.find(stat);
    return it == counters_.end() ? 0 : it->second;
}

double
StatGroup::scalarValue(const std::string &stat) const
{
    auto it = scalars_.find(stat);
    return it == scalars_.end() ? 0.0 : it->second;
}

const Histogram *
StatGroup::findHistogram(const std::string &stat) const
{
    auto it = histograms_.find(stat);
    return it == histograms_.end() ? nullptr : &it->second;
}

bool
StatGroup::empty() const
{
    return counters_.empty() && scalars_.empty() &&
           distributions_.empty() && histograms_.empty();
}

void
StatGroup::reset()
{
    for (auto &kv : counters_)
        kv.second = 0;
    for (auto &kv : scalars_)
        kv.second = 0.0;
    for (auto &kv : distributions_)
        kv.second.reset();
    for (auto &kv : histograms_)
        kv.second.reset();
}

void
StatGroup::mergeFrom(const StatGroup &other)
{
    for (const auto &kv : other.counters_)
        counters_[kv.first] += kv.second;
    for (const auto &kv : other.scalars_)
        scalars_[kv.first] += kv.second;
    for (const auto &kv : other.distributions_)
        distributions_[kv.first].mergeFrom(kv.second);
    for (const auto &kv : other.histograms_)
        histograms_[kv.first].mergeFrom(kv.second);
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &kv : counters_)
        os << name_ << "." << kv.first << " " << kv.second << "\n";
    for (const auto &kv : scalars_)
        os << name_ << "." << kv.first << " " << kv.second << "\n";
    for (const auto &kv : distributions_) {
        os << name_ << "." << kv.first << ".count " << kv.second.count()
           << "\n";
        os << name_ << "." << kv.first << ".mean " << kv.second.mean()
           << "\n";
        os << name_ << "." << kv.first << ".min " << kv.second.minValue()
           << "\n";
        os << name_ << "." << kv.first << ".max " << kv.second.maxValue()
           << "\n";
    }
    for (const auto &kv : histograms_) {
        const auto &h = kv.second;
        os << name_ << "." << kv.first << ".count " << h.count() << "\n";
        os << name_ << "." << kv.first << ".mean " << h.mean() << "\n";
        os << name_ << "." << kv.first << ".min " << h.minValue() << "\n";
        os << name_ << "." << kv.first << ".max " << h.maxValue() << "\n";
        os << name_ << "." << kv.first << ".p50 " << h.percentile(0.50)
           << "\n";
        os << name_ << "." << kv.first << ".p95 " << h.percentile(0.95)
           << "\n";
        os << name_ << "." << kv.first << ".p99 " << h.percentile(0.99)
           << "\n";
    }
}

namespace {

void
jsonEscape(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
jsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    // Integral doubles print without a fraction for readability.
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        os << static_cast<long long>(v);
        return;
    }
    const auto old = os.precision(17);
    os << v;
    os.precision(old);
}

} // namespace

void
StatGroup::dumpJson(std::ostream &os) const
{
    // One globally-sorted key sequence across all four stat kinds, so
    // the report is byte-stable regardless of which kind a stat is.
    enum Kind { KCounter, KScalar, KDist, KHisto };
    std::map<std::string, Kind> keys;
    for (const auto &kv : counters_)
        keys.emplace(kv.first, KCounter);
    for (const auto &kv : scalars_)
        keys.emplace(kv.first, KScalar);
    for (const auto &kv : distributions_)
        keys.emplace(kv.first, KDist);
    for (const auto &kv : histograms_)
        keys.emplace(kv.first, KHisto);

    os << "{";
    bool first = true;
    for (const auto &kk : keys) {
        if (!first)
            os << ", ";
        first = false;
        jsonEscape(os, kk.first);
        os << ": ";
        switch (kk.second) {
          case KCounter:
            os << counters_.at(kk.first);
            break;
          case KScalar:
            jsonNumber(os, scalars_.at(kk.first));
            break;
          case KDist: {
            const auto &d = distributions_.at(kk.first);
            os << "{\"count\": " << d.count() << ", \"min\": ";
            jsonNumber(os, d.minValue());
            os << ", \"max\": ";
            jsonNumber(os, d.maxValue());
            os << ", \"mean\": ";
            jsonNumber(os, d.mean());
            os << "}";
            break;
          }
          case KHisto: {
            const auto &h = histograms_.at(kk.first);
            os << "{\"count\": " << h.count() << ", \"min\": ";
            jsonNumber(os, h.minValue());
            os << ", \"max\": ";
            jsonNumber(os, h.maxValue());
            os << ", \"mean\": ";
            jsonNumber(os, h.mean());
            os << ", \"p50\": ";
            jsonNumber(os, h.percentile(0.50));
            os << ", \"p95\": ";
            jsonNumber(os, h.percentile(0.95));
            os << ", \"p99\": ";
            jsonNumber(os, h.percentile(0.99));
            os << "}";
            break;
          }
        }
    }
    os << "}";
}

StatRegistry &
StatRegistry::instance()
{
    // Intentionally leaked: StatGroups with static storage duration
    // may unregister during exit, after function-local statics with
    // destructors would have been torn down.
    static StatRegistry *reg = new StatRegistry();
    return *reg;
}

void
StatRegistry::add(StatGroup *g)
{
    std::lock_guard<std::mutex> lock(mutex_);
    live_.push_back(g);
}

void
StatRegistry::forget(StatGroup *g)
{
    std::lock_guard<std::mutex> lock(mutex_);
    live_.erase(std::remove(live_.begin(), live_.end(), g),
                live_.end());
}

void
StatRegistry::retire(StatGroup *g)
{
    std::lock_guard<std::mutex> lock(mutex_);
    live_.erase(std::remove(live_.begin(), live_.end(), g),
                live_.end());
    if (g->empty())
        return;
    auto it = retired_.find(g->name());
    if (it == retired_.end()) {
        it = retired_
                 .emplace(g->name(),
                          StatGroup(g->name(), StatGroup::noRegister))
                 .first;
    }
    it->second.mergeFrom(*g);
}

std::size_t
StatRegistry::liveGroups() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return live_.size();
}

std::size_t
StatRegistry::liveGroupsNamed(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const StatGroup *g : live_)
        n += g->name() == name;
    return n;
}

std::uint64_t
StatRegistry::counterSumNamed(const std::string &group,
                              const std::string &stat) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t sum = 0;
    auto it = retired_.find(group);
    if (it != retired_.end())
        sum += it->second.counterValue(stat);
    for (const StatGroup *g : live_) {
        if (g->name() == group)
            sum += g->counterValue(stat);
    }
    return sum;
}

void
StatRegistry::setMeta(const std::string &key, const std::string &value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    meta_[key] = value;
}

std::map<std::string, std::string>
StatRegistry::metaSnapshot() const
{
    std::map<std::string, std::string> meta;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        meta = meta_;
    }
#ifdef SECNDP_GIT_DESCRIBE
    meta.emplace("git", SECNDP_GIT_DESCRIBE);
#endif
    return meta;
}

std::map<std::string, StatGroup>
StatRegistry::snapshotOwned() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, StatGroup> merged;
    auto slot = [&](const std::string &name) -> StatGroup & {
        auto it = merged.find(name);
        if (it == merged.end()) {
            it = merged
                     .emplace(name,
                              StatGroup(name, StatGroup::noRegister))
                     .first;
        }
        return it->second;
    };
    // The retired aggregate only mutates under mutex_ (retire()), so
    // it is always safe to copy; live groups are safe exactly when
    // the caller is their single writer.
    for (const auto &kv : retired_)
        slot(kv.first).mergeFrom(kv.second);
    for (const StatGroup *g : live_) {
        if (g->ownedByCaller() && !g->empty())
            slot(g->name()).mergeFrom(*g);
    }
    return merged;
}

std::map<std::string, StatGroup>
StatRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, StatGroup> merged;
    auto slot = [&](const std::string &name) -> StatGroup & {
        auto it = merged.find(name);
        if (it == merged.end()) {
            it = merged
                     .emplace(name,
                              StatGroup(name, StatGroup::noRegister))
                     .first;
        }
        return it->second;
    };
    for (const auto &kv : retired_)
        slot(kv.first).mergeFrom(kv.second);
    for (const StatGroup *g : live_) {
        if (!g->empty())
            slot(g->name()).mergeFrom(*g);
    }
    return merged;
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &kv : snapshot())
        kv.second.dump(os);
}

void
StatRegistry::dumpJson(std::ostream &os) const
{
    const auto merged = snapshot();
    const auto meta = metaSnapshot();
    os << "{\n  \"schema_version\": " << schemaVersion << ",\n";
    os << "  \"meta\": {";
    bool first = true;
    for (const auto &kv : meta) {
        if (!first)
            os << ",";
        first = false;
        os << "\n    ";
        jsonEscape(os, kv.first);
        os << ": ";
        jsonEscape(os, kv.second);
    }
    os << (meta.empty() ? "},\n" : "\n  },\n");
    os << "  \"groups\": {";
    first = true;
    for (const auto &kv : merged) {
        if (!first)
            os << ",";
        first = false;
        os << "\n    ";
        jsonEscape(os, kv.first);
        os << ": ";
        kv.second.dumpJson(os);
    }
    os << (merged.empty() ? "}\n}\n" : "\n  }\n}\n");
}

void
StatRegistry::resetAll()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (StatGroup *g : live_)
        g->reset();
    retired_.clear();
}

const char *
buildVersion()
{
#ifdef SECNDP_GIT_DESCRIBE
    if (SECNDP_GIT_DESCRIBE[0] != '\0')
        return SECNDP_GIT_DESCRIBE;
#endif
    return "unknown";
}

} // namespace secndp
