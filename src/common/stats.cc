#include "common/stats.hh"

#include <algorithm>

namespace secndp {

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
}

void
Distribution::reset()
{
    *this = Distribution();
}

double
Samples::percentile(double p) const
{
    if (values_.empty())
        return 0.0;
    std::vector<double> sorted = values_;
    std::sort(sorted.begin(), sorted.end());
    p = std::min(1.0, std::max(0.0, p));
    const std::size_t rank = static_cast<std::size_t>(
        p * (sorted.size() - 1) + 0.5);
    return sorted[rank];
}

double
Samples::mean() const
{
    if (values_.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : values_)
        acc += v;
    return acc / values_.size();
}

std::uint64_t &
StatGroup::counter(const std::string &stat)
{
    return counters_[stat];
}

double &
StatGroup::scalar(const std::string &stat)
{
    return scalars_[stat];
}

Distribution &
StatGroup::distribution(const std::string &stat)
{
    return distributions_[stat];
}

std::uint64_t
StatGroup::counterValue(const std::string &stat) const
{
    auto it = counters_.find(stat);
    return it == counters_.end() ? 0 : it->second;
}

double
StatGroup::scalarValue(const std::string &stat) const
{
    auto it = scalars_.find(stat);
    return it == scalars_.end() ? 0.0 : it->second;
}

void
StatGroup::reset()
{
    for (auto &kv : counters_)
        kv.second = 0;
    for (auto &kv : scalars_)
        kv.second = 0.0;
    for (auto &kv : distributions_)
        kv.second.reset();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &kv : counters_)
        os << name_ << "." << kv.first << " " << kv.second << "\n";
    for (const auto &kv : scalars_)
        os << name_ << "." << kv.first << " " << kv.second << "\n";
    for (const auto &kv : distributions_) {
        os << name_ << "." << kv.first << ".count " << kv.second.count()
           << "\n";
        os << name_ << "." << kv.first << ".mean " << kv.second.mean()
           << "\n";
        os << name_ << "." << kv.first << ".min " << kv.second.minValue()
           << "\n";
        os << name_ << "." << kv.first << ".max " << kv.second.maxValue()
           << "\n";
    }
}

} // namespace secndp
