#include "common/request_trace.hh"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace secndp {

thread_local std::uint64_t RequestTracer::tlsTrace_ =
    RequestTracer::noTrace;
thread_local double RequestTracer::tlsNowNs_ = 0.0;
thread_local RequestTracer::ThreadRing *RequestTracer::tlsRing_ =
    nullptr;
thread_local std::uint64_t RequestTracer::tlsEpoch_ = 0;

const char *
spanKindName(SpanKind kind)
{
    switch (kind) {
      case SpanKind::QueueWait: return "queue_wait";
      case SpanKind::BatchForm: return "batch_form";
      case SpanKind::OtpGen: return "otp_gen";
      case SpanKind::SimDrain: return "sim_drain";
      case SpanKind::Verify: return "verify";
      case SpanKind::Retry: return "retry";
      case SpanKind::HostFallback: return "host_fallback";
      case SpanKind::Shed: return "shed";
      case SpanKind::Abort: return "abort";
      case SpanKind::Fault: return "fault";
    }
    return "?";
}

bool
parseSpanKind(const std::string &name, SpanKind &out)
{
    for (unsigned k = 0; k < spanKindCount; ++k) {
        if (name == spanKindName(static_cast<SpanKind>(k))) {
            out = static_cast<SpanKind>(k);
            return true;
        }
    }
    return false;
}

const char *
anomalyKindName(AnomalyKind kind)
{
    switch (kind) {
      case AnomalyKind::Abort: return "abort";
      case AnomalyKind::Shed: return "shed";
      case AnomalyKind::MissedForgery: return "missed_forgery";
      case AnomalyKind::SloBreach: return "slo_breach";
    }
    return "?";
}

RequestTracer &
RequestTracer::instance()
{
    // Leaked for the same reason as StatRegistry: emitters with
    // static storage duration may record during teardown.
    static RequestTracer *tracer = new RequestTracer();
    return *tracer;
}

bool
RequestTracer::start(const Config &cfg)
{
#if !SECNDP_TRACING
    (void)cfg;
    return false;
#else
    std::lock_guard<std::mutex> lock(mutex_);
    config_ = cfg;
    if (config_.flightCapacity == 0)
        config_.flightCapacity = 1;
    rings_.clear();
    log_.clear();
    nextSeq_.store(0);
    for (auto &a : anomalies_)
        a = 0;
    flightDumps_ = 0;
    flightDumped_ = false;
    ++epoch_;
    active_ = true;
    return true;
#endif
}

void
RequestTracer::stop()
{
    std::lock_guard<std::mutex> lock(mutex_);
    active_ = false;
    ++epoch_;
    rings_.clear();
    log_.clear();
}

RequestTracer::ThreadRing *
RequestTracer::ringForThisThread()
{
    if (tlsRing_ && tlsEpoch_ == epoch_)
        return tlsRing_;
    std::lock_guard<std::mutex> lock(mutex_);
    rings_.push_back(
        std::make_unique<ThreadRing>(config_.flightCapacity));
    tlsRing_ = rings_.back().get();
    tlsEpoch_ = epoch_;
    return tlsRing_;
}

void
RequestTracer::record(std::uint64_t trace, SpanKind kind,
                      double start_ns, double dur_ns,
                      std::uint32_t shard, std::uint64_t aux)
{
    if (!active_)
        return;
    SpanRecord rec;
    rec.trace = trace;
    rec.seq = nextSeq_.fetch_add(1, std::memory_order_relaxed);
    rec.startNs = start_ns;
    rec.durNs = dur_ns;
    rec.kind = kind;
    rec.shard = shard;
    rec.aux = aux;

    ThreadRing *ring = ringForThisThread();
    ring->slots[ring->pushes % ring->slots.size()] = rec;
    ++ring->pushes;

    if (config_.keepSpanLog) {
        std::lock_guard<std::mutex> lock(mutex_);
        log_.push_back(rec);
    }
}

void
RequestTracer::anomaly(AnomalyKind kind, std::uint64_t trace,
                       double at_ns)
{
    if (!active_)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    ++anomalies_[static_cast<unsigned>(kind)];
    if (flightDumped_ || config_.flightPath.empty())
        return;
    // First anomaly wins: the flight dump freezes the moments before
    // the *initial* incident, later ones only count.
    flightDumped_ = true;
    firstAnomaly_ = kind;
    firstAnomalyTrace_ = trace;
    firstAnomalyNs_ = at_ns;
    if (writeFlightLocked(config_.flightPath, true)) {
        ++flightDumps_;
    } else {
        warn("cannot write flight dump '%s'",
             config_.flightPath.c_str());
    }
}

std::uint64_t
RequestTracer::droppedSpans() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t dropped = 0;
    for (const auto &ring : rings_) {
        if (ring->pushes > ring->slots.size())
            dropped += ring->pushes - ring->slots.size();
    }
    return dropped;
}

std::uint64_t
RequestTracer::anomalyCount() const
{
    std::uint64_t n = 0;
    for (const auto &a : anomalies_)
        n += a;
    return n;
}

std::vector<SpanRecord>
RequestTracer::mergedSpansLocked() const
{
    std::vector<SpanRecord> spans;
    for (const auto &ring : rings_) {
        const std::size_t kept =
            std::min<std::uint64_t>(ring->pushes, ring->slots.size());
        const std::size_t cap = ring->slots.size();
        for (std::size_t i = 0; i < kept; ++i) {
            // Oldest retained first: the ring wraps at `pushes`.
            const std::size_t at =
                (ring->pushes - kept + i) % cap;
            spans.push_back(ring->slots[at]);
        }
    }
    std::sort(spans.begin(), spans.end(),
              [](const SpanRecord &a, const SpanRecord &b) {
                  return a.seq < b.seq;
              });
    return spans;
}

std::vector<SpanRecord>
RequestTracer::mergedSpans() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return mergedSpansLocked();
}

std::vector<SpanRecord>
RequestTracer::spanLog() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<SpanRecord> log = log_;
    std::sort(log.begin(), log.end(),
              [](const SpanRecord &a, const SpanRecord &b) {
                  return a.seq < b.seq;
              });
    return log;
}

namespace {

/**
 * Deterministic JSON number: integral values print without a
 * fraction, everything else with enough digits to round-trip --
 * matching the stats sidecar writer so byte-comparison tooling treats
 * both formats identically.
 */
void
writeNumber(std::FILE *out, double v)
{
    if (!std::isfinite(v)) {
        std::fputs("null", out);
        return;
    }
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        std::fprintf(out, "%lld", static_cast<long long>(v));
        return;
    }
    std::fprintf(out, "%.17g", v);
}

void
writeSpan(std::FILE *out, const SpanRecord &s, bool first)
{
    std::fprintf(out,
                 "%s    {\"seq\": %" PRIu64 ", \"trace\": %" PRIu64
                 ", \"kind\": \"%s\", \"start_ns\": ",
                 first ? "" : ",\n", s.seq, s.trace,
                 spanKindName(s.kind));
    writeNumber(out, s.startNs);
    std::fputs(", \"dur_ns\": ", out);
    writeNumber(out, s.durNs);
    std::fprintf(out, ", \"shard\": %u, \"aux\": %" PRIu64 "}",
                 s.shard, s.aux);
}

bool
writeSpanFile(const std::string &path, const char *schema,
              const std::vector<SpanRecord> &spans,
              const char *extra_json)
{
    std::FILE *out = std::fopen(path.c_str(), "wb");
    if (!out)
        return false;
    std::fprintf(out, "{\n  \"schema\": \"%s\",\n%s", schema,
                 extra_json);
    std::fprintf(out, "  \"span_count\": %zu,\n  \"spans\": [\n",
                 spans.size());
    bool first = true;
    for (const SpanRecord &s : spans) {
        writeSpan(out, s, first);
        first = false;
    }
    std::fputs(spans.empty() ? "  ]\n}\n" : "\n  ]\n}\n", out);
    return std::fclose(out) == 0;
}

} // namespace

bool
RequestTracer::writeSpanLog(const std::string &path) const
{
    return writeSpanFile(path, "secndp-spans-v1", spanLog(), "");
}

bool
RequestTracer::writeFlightLocked(const std::string &path,
                                 bool has_anomaly) const
{
    std::uint64_t dropped = 0;
    for (const auto &ring : rings_) {
        if (ring->pushes > ring->slots.size())
            dropped += ring->pushes - ring->slots.size();
    }
    char extra[256];
    if (has_anomaly) {
        char at[64];
        std::FILE *mem = nullptr;
        (void)mem;
        // Format at_ns with the shared deterministic convention.
        if (firstAnomalyNs_ == std::floor(firstAnomalyNs_) &&
            std::abs(firstAnomalyNs_) < 1e15) {
            std::snprintf(at, sizeof(at), "%lld",
                          static_cast<long long>(firstAnomalyNs_));
        } else {
            std::snprintf(at, sizeof(at), "%.17g", firstAnomalyNs_);
        }
        std::snprintf(extra, sizeof(extra),
                      "  \"anomaly\": {\"kind\": \"%s\", \"trace\": "
                      "%" PRIu64 ", \"at_ns\": %s},\n"
                      "  \"dropped\": %" PRIu64 ",\n",
                      anomalyKindName(firstAnomaly_),
                      firstAnomalyTrace_, at, dropped);
    } else {
        std::snprintf(extra, sizeof(extra),
                      "  \"anomaly\": null,\n  \"dropped\": %" PRIu64
                      ",\n",
                      dropped);
    }
    return writeSpanFile(path, "secndp-flight-v1",
                         mergedSpansLocked(), extra);
}

bool
RequestTracer::writeFlight(const std::string &path) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return writeFlightLocked(path, flightDumped_);
}

} // namespace secndp
