/**
 * @file
 * TCP serving front-end: the SecNDP virtual-time serving loop
 * (serve/server.cc) driven by real sockets instead of an in-process
 * arrival generator.
 *
 * Determinism over real TCP -- the conservative virtual-time bridge:
 *
 * The serving layer is a discrete-event simulation on a virtual
 * nanosecond timeline, and its stats sidecars must stay
 * byte-deterministic in the seed even though wall-clock socket
 * interleaving is inherently racy. The bridge achieves this the way
 * conservative parallel discrete-event simulators do: every Query
 * frame carries a client-stamped *virtual* arrival time, and the
 * server only acts at virtual time T once per-connection watermarks
 * prove that no frame stamped <= T can still arrive:
 *
 *   - closed loop: a connection has exactly one request outstanding
 *     and its next arrival is, by protocol, the completionNs (or
 *     Overload shedNs) of the response the server itself issued -- an
 *     *exact, inclusive* bound. Between receiving a query and posting
 *     its response the connection can produce nothing at all.
 *   - open loop: arrivals are client-stamped from the deterministic
 *     Poisson stream (serve/loadgen.hh) and strictly increase per
 *     connection, so the last-seen arrival is an *exclusive* bound.
 *   - a connection whose request quota is exhausted (or that sent
 *     Fin) bounds at +infinity.
 *
 * Requests are id-striped across the session's C connections:
 * connection c owns ids c, c+C, c+2C, ... < R, so the server can
 * compute every connection's quota from the Hello alone and the heap
 * replay order (arrival time, id) is a pure function of the frames.
 * Open-loop ids in global arrival order are round-robin across
 * connections, which makes the replayed stream identical to the
 * in-process generator: open-loop serve.* groups are byte-identical
 * to `runServe` for the same (workload, load, seed). Closed-loop id
 * assignment differs from in-process (which assigns ids in completion
 * order), so closed-loop socket runs are self-deterministic but get
 * their own perf-gate baseline.
 *
 * Wall-clock-dependent metrics never contaminate the deterministic
 * groups: they live in "net_wall" (stripped by CI determinism diffs,
 * like host_phases), while "net" and "serve" carry only counters that
 * are pure functions of the session.
 *
 * Drain: after the last response the server stops accepting
 * (TcpServer::beginDrain), FinAcks + flushes every connection, flips
 * /readyz to 503 via the exporter, drains the host-crypto workers,
 * and returns -- one session per server run, which is what lets CI
 * run the same session twice and diff sidecars.
 */

#ifndef SECNDP_NET_NET_SERVER_HH
#define SECNDP_NET_NET_SERVER_HH

#include <cstdint>
#include <string>

#include "serve/server.hh"

namespace secndp {

/** TCP front-end configuration (wraps the serving-system config). */
struct NetServeConfig
{
    /** The serving system itself (queue, batching, shards, faults,
     *  telemetry) -- identical semantics to runServe. */
    ServeConfig serve;

    std::string bindAddr = "127.0.0.1";
    /** 0 picks an ephemeral port; read it back from the report. */
    std::uint16_t port = 0;
    /** Concurrent-connection cap passed to the TcpServer. */
    int maxConnections = 4096;
    /**
     * Wall-clock seconds without any socket event while the bridge is
     * blocked on a watermark before the session is declared stalled
     * and the run fails (guards CI against wedged clients).
     */
    double idleTimeoutS = 30.0;
};

/** Outcome of one TCP serving session. */
struct NetServeReport
{
    /** The serving-loop report, same semantics as runServe. */
    ServeReport serve;
    /** Port actually bound (resolves port=0). */
    std::uint16_t port = 0;
    /** Session parameters learned from the Hello handshake. */
    LoadMode mode = LoadMode::Closed;
    std::uint32_t connections = 0;
    std::uint64_t totalRequests = 0;
    std::uint64_t seed = 0;
    /** True iff the whole session ran to completion cleanly. */
    bool ok = false;
    /** First failure reason when !ok. */
    std::string error;
};

/**
 * Bind, serve exactly one client session (announced by Hello frames)
 * to completion, drain, and return. Request payloads are drawn from
 * `pool` (query id uses pool entry id mod pool size; the wire
 * queryIndex is advisory). Blocks the calling thread. fatal()s on an
 * empty pool; client misbehavior fails the session in the report
 * instead of killing the process.
 *
 * `onListen`, when non-null, is invoked with the resolved port once
 * the socket is accepting (before the session starts) -- loadgen uses
 * it to print the port a client should connect to.
 */
NetServeReport runNetServe(const NetServeConfig &cfg,
                           const WorkloadTrace &pool,
                           void (*onListen)(std::uint16_t) = nullptr);

} // namespace secndp

#endif // SECNDP_NET_NET_SERVER_HH
