/**
 * @file
 * Shared non-blocking socket plumbing for every TCP front-end in the
 * repo (the src/net query server and the src/telemetry metrics
 * exporter): one event-loop idiom, not two.
 *
 * Everything here is Linux-only (epoll readiness is the serving
 * model); on other platforms the callers degrade gracefully at their
 * own start() entry points. All helpers are EINTR-safe and all writes
 * go through send(MSG_NOSIGNAL), so a peer that disconnects mid-write
 * can never deliver SIGPIPE and kill the process -- belt and braces,
 * ignoreSigpipe() additionally installs SIG_IGN for third-party code
 * paths that still call write(2) on sockets.
 */

#ifndef SECNDP_NET_SOCKET_UTIL_HH
#define SECNDP_NET_SOCKET_UTIL_HH

#include <cstdint>
#include <string>

namespace secndp::net {

/** Put SIGPIPE out of business process-wide (idempotent). */
void ignoreSigpipe();

/** O_NONBLOCK on, false on fcntl failure. */
bool setNonBlocking(int fd);

/**
 * Bind + listen a non-blocking TCP socket on `bindAddr:port`
 * (SO_REUSEADDR; port 0 selects an ephemeral port). Returns the
 * listening fd, or -1 with `err` set. `boundPort` (when non-null)
 * receives the resolved port via getsockname -- the only way to learn
 * an ephemeral bind.
 */
int listenTcp(const std::string &bindAddr, std::uint16_t port,
              int backlog, std::uint16_t *boundPort,
              std::string *err);

/**
 * Blocking TCP connect to `host:port` (numeric IPv4 host). Returns
 * the connected fd (still in blocking mode -- callers flip it with
 * setNonBlocking for event loops), or -1 with `err` set.
 */
int connectTcp(const std::string &host, std::uint16_t port,
               std::string *err);

/** Outcome of one readSome/writeSome call. */
struct IoResult
{
    /** Bytes moved (0 is legal for writeSome on an empty span). */
    std::size_t n = 0;
    /** Kernel buffer empty/full: try again on the next readiness. */
    bool wouldBlock = false;
    /** Peer closed its end (readSome only). */
    bool eof = false;
    /** Hard error (errno-backed); the connection is dead. */
    bool error = false;
};

/**
 * Drain as much as possible from `fd` into `buf` (append), in
 * `chunk`-byte reads, stopping at EAGAIN/EOF/error or once `maxBytes`
 * total buffered bytes is reached (bounded per-connection buffers).
 * EINTR is retried internally.
 */
IoResult readSome(int fd, std::string &buf, std::size_t chunk,
                  std::size_t maxBytes);

/**
 * Write as much of buf[pos..) as the kernel accepts
 * (send + MSG_NOSIGNAL, EINTR retried); advances `pos`.
 */
IoResult writeSome(int fd, const std::string &buf, std::size_t &pos);

/**
 * A self-pipe for waking an epoll loop from another thread. Both ends
 * are non-blocking.
 */
struct WakePipe
{
    int rd = -1;
    int wr = -1;

    bool open(std::string *err = nullptr);
    void close();
    /** Poke the read end awake (safe from any thread; lossy by
     *  design -- one pending byte is enough). */
    void notify() const;
    /** Drain every pending notification (call from the loop). */
    void drain() const;
};

} // namespace secndp::net

#endif // SECNDP_NET_SOCKET_UTIL_HH
