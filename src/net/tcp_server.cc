#include "net/tcp_server.hh"

#include <algorithm>
#include <chrono>
#include <map>
#include <utility>

#include "net/socket_util.hh"

#ifdef __linux__
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace secndp::net {

/** One live connection (owned by the event-loop thread). */
struct TcpServer::Conn
{
    int fd = -1;
    std::uint64_t id = 0;
    FrameDecoder decoder;
    std::string out;
    std::size_t outPos = 0;
    bool wantWrite = false;
    bool readPaused = false;
    /** Poisoned or server-done: close once `out` fully flushes. */
    bool closeAfterFlush = false;
    std::chrono::steady_clock::time_point openedAt;
};

#ifdef __linux__

namespace {

/** Count complete frames (and interesting types) in encoded bytes. */
void
countOutFrames(StatGroup &net, const std::string &bytes)
{
    std::size_t pos = 0;
    while (pos + kHeaderBytes <= bytes.size()) {
        const std::uint8_t type =
            static_cast<std::uint8_t>(bytes[pos + 5]);
        std::uint32_t len = 0;
        for (int i = 3; i >= 0; --i)
            len = (len << 8) |
                  static_cast<std::uint8_t>(bytes[pos + 8 + i]);
        ++net.counter("frames_out");
        if (type == static_cast<std::uint8_t>(FrameType::Overload))
            ++net.counter("overload_frames");
        else if (type == static_cast<std::uint8_t>(FrameType::Error))
            ++net.counter("error_frames");
        pos += kHeaderBytes + len;
    }
}

} // namespace

TcpServer::~TcpServer()
{
    stop();
}

bool
TcpServer::start(const Config &cfg, Handler *handler,
                 std::string *err)
{
    if (running_.load()) {
        if (err)
            *err = "server already running";
        return false;
    }
    cfg_ = cfg;
    handler_ = handler;
    ignoreSigpipe();

    listenFd_ = listenTcp(cfg_.bindAddr, cfg_.port, cfg_.backlog,
                          &port_, err);
    if (listenFd_ < 0)
        return false;
    if (!wake_.open(err)) {
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    stopRequested_.store(false);
    draining_.store(false);
    running_.store(true);
    thread_ = std::thread([this] { serveLoop(); });
    return true;
}

void
TcpServer::stop()
{
    if (!running_.load() && !thread_.joinable())
        return;
    stopRequested_.store(true);
    wake_.notify();
    if (thread_.joinable())
        thread_.join();
    if (listenFd_ >= 0)
        ::close(listenFd_);
    listenFd_ = -1;
    wake_.close();
    running_.store(false);
    port_ = 0;

    if (cfg_.registerStats) {
        // One-shot fold into the process registry so the sidecar
        // carries net.* / net_wall.* exactly once per server run.
        std::lock_guard<std::mutex> lock(mutex_);
        cfg_.registerStats = false;
        {
            StatGroup g("net");
            g.mergeFrom(net_);
        }
        if (!wall_.empty()) {
            StatGroup w("net_wall");
            w.markSharedWriter();
            w.mergeFrom(wall_);
        }
    }
}

void
TcpServer::post(std::uint64_t connId, std::string bytes,
                bool closeAfterFlush)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        outbox_.push_back(
            Outbox{connId, std::move(bytes), closeAfterFlush});
    }
    wake_.notify();
}

void
TcpServer::beginDrain()
{
    draining_.store(true);
    wake_.notify();
}

void
TcpServer::snapshotStats(StatGroup &net, StatGroup &wall) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    net.mergeFrom(net_);
    wall.mergeFrom(wall_);
}

void
TcpServer::serveLoop()
{
    const int epfd = ::epoll_create1(0);
    if (epfd < 0) {
        running_.store(false);
        return;
    }

    auto interest = [&](int op, int fd, std::uint32_t events,
                        void *ptr) {
        epoll_event ev{};
        ev.events = events;
        ev.data.ptr = ptr;
        ::epoll_ctl(epfd, op, fd, &ev);
    };

    Conn listenSentinel, wakeSentinel;
    listenSentinel.fd = listenFd_;
    wakeSentinel.fd = wake_.rd;
    interest(EPOLL_CTL_ADD, listenFd_, EPOLLIN, &listenSentinel);
    interest(EPOLL_CTL_ADD, wake_.rd, EPOLLIN, &wakeSentinel);
    bool listening = true;

    std::map<std::uint64_t, Conn *> conns;
    std::uint64_t nextId = 1;
    // Conns closed mid-batch: the events array may still hold their
    // pointers, so deletion is deferred to the end of each loop
    // iteration and closed conns are flagged with fd = -1.
    std::vector<Conn *> dead;

    auto connEvents = [&](const Conn *c) -> std::uint32_t {
        std::uint32_t ev = 0;
        if (!c->readPaused && !c->closeAfterFlush)
            ev |= EPOLLIN;
        if (c->wantWrite)
            ev |= EPOLLOUT;
        return ev;
    };
    auto rearm = [&](Conn *c) {
        interest(EPOLL_CTL_MOD, c->fd, connEvents(c), c);
    };

    auto closeConn = [&](Conn *c, bool clean) {
        interest(EPOLL_CTL_DEL, c->fd, 0, nullptr);
        ::close(c->fd);
        c->fd = -1;
        conns.erase(c->id);
        dead.push_back(c);
        active_.store(conns.size());
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++net_.counter("conns_closed");
            const double ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - c->openedAt)
                    .count();
            wall_.histogram("conn_lifetime_ms").sample(ms);
        }
        if (handler_)
            handler_->onDisconnect(c->id, clean);
    };

    /** Queue bytes on a connection and arm the flush. */
    auto enqueue = [&](Conn *c, const std::string &bytes,
                       bool thenClose) {
        c->out.append(bytes);
        if (thenClose)
            c->closeAfterFlush = true;
        c->wantWrite = c->outPos < c->out.size();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            countOutFrames(net_, bytes);
            const double depth =
                static_cast<double>(c->out.size() - c->outPos);
            double &hw = wall_.scalar("write_buf_high_water");
            hw = std::max(hw, depth);
            // Slow reader: stop reading this socket until the flush
            // catches up (bounded buffers, not unbounded queueing).
            if (!c->readPaused &&
                c->out.size() - c->outPos > cfg_.writeHighWater) {
                c->readPaused = true;
                ++wall_.counter("read_pauses");
            }
        }
        rearm(c);
    };

    auto poisonConn = [&](Conn *c, WireError werr) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++net_.counter(std::string("err_") +
                           wireErrorName(werr));
        }
        std::string frame;
        encodeError(frame, werr);
        enqueue(c, frame, /*thenClose=*/true);
    };

    auto flushConn = [&](Conn *c) -> bool {
        const IoResult w = writeSome(c->fd, c->out, c->outPos);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            net_.counter("bytes_out") += w.n;
        }
        if (w.error) {
            closeConn(c, false);
            return false;
        }
        if (c->outPos >= c->out.size()) {
            c->out.clear();
            c->outPos = 0;
            c->wantWrite = false;
            if (c->closeAfterFlush) {
                closeConn(c, true);
                return false;
            }
        } else {
            c->wantWrite = true;
        }
        if (c->readPaused &&
            c->out.size() - c->outPos < cfg_.writeLowWater) {
            c->readPaused = false;
        }
        rearm(c);
        return true;
    };

    epoll_event events[64];
    while (!stopRequested_.load()) {
        if (listening && draining_.load()) {
            // Drain: stop accepting; in-flight connections finish.
            interest(EPOLL_CTL_DEL, listenFd_, 0, nullptr);
            listening = false;
        }

        const int n = ::epoll_wait(epfd, events, 64, 200);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++wall_.counter("epoll_wakeups");
        }

        // Completion path first: frames posted by the serve thread
        // land in connection buffers before this round's writability
        // events are handled.
        std::vector<Outbox> posted;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            posted.swap(outbox_);
        }
        for (Outbox &ob : posted) {
            auto it = conns.find(ob.connId);
            if (it == conns.end()) {
                std::lock_guard<std::mutex> lock(mutex_);
                ++net_.counter("post_drops");
                continue;
            }
            enqueue(it->second, ob.bytes, ob.closeAfterFlush);
            // Try an eager flush: most responses fit the socket
            // buffer and never need an EPOLLOUT round-trip.
            flushConn(it->second);
        }

        for (int i = 0; i < n; ++i) {
            auto *c = static_cast<Conn *>(events[i].data.ptr);

            if (c == &wakeSentinel) {
                wake_.drain();
                continue;
            }

            if (c == &listenSentinel) {
                if (!listening)
                    continue;
                for (;;) {
                    const int fd =
                        ::accept(listenFd_, nullptr, nullptr);
                    if (fd < 0)
                        break;
                    if (static_cast<int>(conns.size()) >=
                            cfg_.maxConnections ||
                        !setNonBlocking(fd)) {
                        ::close(fd);
                        std::lock_guard<std::mutex> lock(mutex_);
                        ++net_.counter("conns_refused");
                        continue;
                    }
                    auto *nc = new Conn;
                    nc->fd = fd;
                    nc->id = nextId++;
                    nc->openedAt = std::chrono::steady_clock::now();
                    conns.emplace(nc->id, nc);
                    active_.store(conns.size());
                    {
                        std::lock_guard<std::mutex> lock(mutex_);
                        ++net_.counter("conns_accepted");
                    }
                    interest(EPOLL_CTL_ADD, fd, connEvents(nc), nc);
                }
                continue;
            }

            // The conn may already be closed (earlier event this
            // batch, or the completion pass above); its object is
            // kept alive until the end of the iteration.
            if (c->fd < 0)
                continue;

            if (events[i].events & (EPOLLHUP | EPOLLERR)) {
                closeConn(c, c->decoder.pending() == 0);
                continue;
            }

            if (events[i].events & EPOLLIN) {
                std::string chunk;
                const std::size_t cap =
                    cfg_.maxDecoderBacklog > c->decoder.pending()
                        ? cfg_.maxDecoderBacklog -
                              c->decoder.pending()
                        : 0;
                const IoResult r = readSome(c->fd, chunk, 4096, cap);
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    net_.counter("bytes_in") += chunk.size();
                }
                c->decoder.feed(chunk.data(), chunk.size());
                Frame f;
                while (c->decoder.next(f)) {
                    {
                        std::lock_guard<std::mutex> lock(mutex_);
                        ++net_.counter("frames_in");
                        ++net_.counter(
                            std::string("frames_in_") +
                            frameTypeName(f.type));
                    }
                    if (handler_)
                        handler_->onFrame(c->id, f);
                    // The handler may have posted a poisoning close.
                    if (c->closeAfterFlush)
                        break;
                }
                if (c->decoder.error() != WireError::None) {
                    poisonConn(c, c->decoder.error());
                    flushConn(c);
                    continue;
                }
                if (c->decoder.pending() >= cfg_.maxDecoderBacklog) {
                    // Undecodable flood (cap-sized partial frame).
                    poisonConn(c, WireError::Oversize);
                    flushConn(c);
                    continue;
                }
                if (r.eof) {
                    const bool midFrame = c->decoder.pending() > 0;
                    if (midFrame) {
                        std::lock_guard<std::mutex> lock(mutex_);
                        ++net_.counter("disconnect_midframe");
                    }
                    closeConn(c, !midFrame);
                    continue;
                }
                if (r.error) {
                    {
                        std::lock_guard<std::mutex> lock(mutex_);
                        ++net_.counter("err_read");
                    }
                    closeConn(c, false);
                    continue;
                }
                rearm(c);
            }

            if (c->fd >= 0 && (events[i].events & EPOLLOUT))
                flushConn(c);
        }

        for (Conn *c : dead)
            delete c;
        dead.clear();
    }

    // Teardown: anything still open goes away unceremoniously (the
    // graceful path drains via FinAck + closeAfterFlush first).
    while (!conns.empty())
        closeConn(conns.begin()->second, false);
    for (Conn *c : dead)
        delete c;
    dead.clear();
    active_.store(0);
    ::close(epfd);
    running_.store(false);
}

#else // !__linux__

TcpServer::~TcpServer() = default;

bool
TcpServer::start(const Config &, Handler *, std::string *err)
{
    if (err)
        *err = "TCP front-end requires Linux (epoll)";
    return false;
}

void
TcpServer::stop()
{
}

void
TcpServer::post(std::uint64_t, std::string, bool)
{
}

void
TcpServer::beginDrain()
{
}

void
TcpServer::snapshotStats(StatGroup &, StatGroup &) const
{
}

void
TcpServer::serveLoop()
{
}

#endif // __linux__

} // namespace secndp::net
