#include "net/socket_util.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>

#ifdef __linux__
#include <arpa/inet.h>
#include <csignal>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace secndp::net {

#ifdef __linux__

void
ignoreSigpipe()
{
    // All our own writes already pass MSG_NOSIGNAL; this covers any
    // remaining write(2)-on-socket path. Never un-done: a serving
    // process has no use for the default terminate-on-SIGPIPE.
    ::signal(SIGPIPE, SIG_IGN);
}

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

int
listenTcp(const std::string &bindAddr, std::uint16_t port,
          int backlog, std::uint16_t *boundPort, std::string *err)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (err)
            *err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, bindAddr.c_str(), &addr.sin_addr) != 1) {
        if (err)
            *err = "bad bind address: " + bindAddr;
        ::close(fd);
        return -1;
    }
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, backlog) != 0 || !setNonBlocking(fd)) {
        if (err)
            *err = std::string("bind/listen ") + bindAddr + ":" +
                   std::to_string(port) + ": " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    if (boundPort) {
        sockaddr_in bound{};
        socklen_t blen = sizeof(bound);
        *boundPort = port;
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                          &blen) == 0)
            *boundPort = ntohs(bound.sin_port);
    }
    return fd;
}

int
connectTcp(const std::string &host, std::uint16_t port,
           std::string *err)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (err)
            *err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        if (err)
            *err = "bad host address: " + host;
        ::close(fd);
        return -1;
    }
    int rc;
    do {
        rc = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
        if (err)
            *err = "connect " + host + ":" + std::to_string(port) +
                   ": " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

IoResult
readSome(int fd, std::string &buf, std::size_t chunk,
         std::size_t maxBytes)
{
    IoResult res;
    char tmp[4096];
    while (buf.size() < maxBytes) {
        const std::size_t want =
            std::min({chunk, sizeof(tmp), maxBytes - buf.size()});
        const ssize_t r = ::recv(fd, tmp, want, 0);
        if (r > 0) {
            buf.append(tmp, static_cast<std::size_t>(r));
            res.n += static_cast<std::size_t>(r);
        } else if (r == 0) {
            res.eof = true;
            return res;
        } else if (errno == EINTR) {
            continue;
        } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
            res.wouldBlock = true;
            return res;
        } else {
            res.error = true;
            return res;
        }
    }
    return res; // buffer full: caller applies its bounded-buffer rule
}

IoResult
writeSome(int fd, const std::string &buf, std::size_t &pos)
{
    IoResult res;
    while (pos < buf.size()) {
        const ssize_t w = ::send(fd, buf.data() + pos,
                                 buf.size() - pos, MSG_NOSIGNAL);
        if (w > 0) {
            pos += static_cast<std::size_t>(w);
            res.n += static_cast<std::size_t>(w);
        } else if (w < 0 && errno == EINTR) {
            continue;
        } else if (w < 0 &&
                   (errno == EAGAIN || errno == EWOULDBLOCK)) {
            res.wouldBlock = true;
            return res;
        } else {
            res.error = true;
            return res;
        }
    }
    return res;
}

bool
WakePipe::open(std::string *err)
{
    int fds[2];
    if (::pipe(fds) != 0) {
        if (err)
            *err = std::string("pipe: ") + std::strerror(errno);
        return false;
    }
    rd = fds[0];
    wr = fds[1];
    setNonBlocking(rd);
    setNonBlocking(wr);
    return true;
}

void
WakePipe::close()
{
    if (rd >= 0)
        ::close(rd);
    if (wr >= 0)
        ::close(wr);
    rd = wr = -1;
}

void
WakePipe::notify() const
{
    if (wr < 0)
        return;
    const char b = 'x';
    ssize_t n;
    do {
        n = ::write(wr, &b, 1);
    } while (n < 0 && errno == EINTR);
    // A full pipe is fine: a wakeup is already pending.
}

void
WakePipe::drain() const
{
    if (rd < 0)
        return;
    char buf[64];
    while (::read(rd, buf, sizeof(buf)) > 0) {
    }
}

#else // !__linux__

void
ignoreSigpipe()
{
}

bool
setNonBlocking(int)
{
    return false;
}

int
listenTcp(const std::string &, std::uint16_t, int, std::uint16_t *,
          std::string *err)
{
    if (err)
        *err = "TCP front-end requires Linux sockets";
    return -1;
}

int
connectTcp(const std::string &, std::uint16_t, std::string *err)
{
    if (err)
        *err = "TCP front-end requires Linux sockets";
    return -1;
}

IoResult
readSome(int, std::string &, std::size_t, std::size_t)
{
    IoResult r;
    r.error = true;
    return r;
}

IoResult
writeSome(int, const std::string &, std::size_t &)
{
    IoResult r;
    r.error = true;
    return r;
}

bool
WakePipe::open(std::string *err)
{
    if (err)
        *err = "wake pipe requires Linux";
    return false;
}

void
WakePipe::close()
{
}

void
WakePipe::notify() const
{
}

void
WakePipe::drain() const
{
}

#endif // __linux__

} // namespace secndp::net
