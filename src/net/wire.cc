#include "net/wire.hh"

#include <cstring>

namespace secndp::net {

namespace {

/** Fixed payload size per frame type (v1: every type is fixed). */
std::size_t
payloadBytes(FrameType t)
{
    switch (t) {
      case FrameType::Hello:    return 1 + 4 + 4 + 8 + 8;
      case FrameType::HelloAck: return 0;
      case FrameType::Query:    return 8 + 8 + 8 + 8;
      case FrameType::Response: return 8 + 1 + 8 + 8;
      case FrameType::Overload: return 8 + 8;
      case FrameType::Fin:      return 0;
      case FrameType::FinAck:   return 0;
      case FrameType::Error:    return 1;
    }
    return SIZE_MAX; // unknown type: never matches a real length
}

void
putU8(std::string &out, std::uint8_t v)
{
    out.push_back(static_cast<char>(v));
}

void
putU16(std::string &out, std::uint16_t v)
{
    for (int i = 0; i < 2; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putF64(std::string &out, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(out, bits);
}

std::uint8_t
getU8(const char *p)
{
    return static_cast<std::uint8_t>(*p);
}

std::uint16_t
getU16(const char *p)
{
    std::uint16_t v = 0;
    for (int i = 1; i >= 0; --i)
        v = static_cast<std::uint16_t>(
            (v << 8) | static_cast<std::uint8_t>(p[i]));
    return v;
}

std::uint32_t
getU32(const char *p)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | static_cast<std::uint8_t>(p[i]);
    return v;
}

std::uint64_t
getU64(const char *p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | static_cast<std::uint8_t>(p[i]);
    return v;
}

double
getF64(const char *p)
{
    const std::uint64_t bits = getU64(p);
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

void
putHeader(std::string &out, FrameType type, std::size_t payload)
{
    for (std::uint8_t b : kMagic)
        out.push_back(static_cast<char>(b));
    putU8(out, kWireVersion);
    putU8(out, static_cast<std::uint8_t>(type));
    putU16(out, 0); // flags
    putU32(out, static_cast<std::uint32_t>(payload));
}

} // namespace

const char *
frameTypeName(FrameType t)
{
    switch (t) {
      case FrameType::Hello:    return "hello";
      case FrameType::HelloAck: return "hello_ack";
      case FrameType::Query:    return "query";
      case FrameType::Response: return "response";
      case FrameType::Overload: return "overload";
      case FrameType::Fin:      return "fin";
      case FrameType::FinAck:   return "fin_ack";
      case FrameType::Error:    return "error";
    }
    return "?";
}

const char *
wireErrorName(WireError e)
{
    switch (e) {
      case WireError::None:        return "none";
      case WireError::BadMagic:    return "bad_magic";
      case WireError::BadVersion:  return "bad_version";
      case WireError::BadFlags:    return "bad_flags";
      case WireError::Oversize:    return "oversize";
      case WireError::BadPayload:  return "bad_payload";
      case WireError::UnknownType: return "unknown_type";
    }
    return "?";
}

void
encodeHello(std::string &out, const HelloFrame &f)
{
    putHeader(out, FrameType::Hello, payloadBytes(FrameType::Hello));
    putU8(out, static_cast<std::uint8_t>(f.mode));
    putU32(out, f.connIndex);
    putU32(out, f.connections);
    putU64(out, f.totalRequests);
    putU64(out, f.seed);
}

void
encodeHelloAck(std::string &out)
{
    putHeader(out, FrameType::HelloAck, 0);
}

void
encodeQuery(std::string &out, const QueryFrame &f)
{
    putHeader(out, FrameType::Query, payloadBytes(FrameType::Query));
    putU64(out, f.id);
    putU64(out, f.queryIndex);
    putF64(out, f.arrivalNs);
    putF64(out, f.deadlineNs);
}

void
encodeResponse(std::string &out, const ResponseFrame &f)
{
    putHeader(out, FrameType::Response,
              payloadBytes(FrameType::Response));
    putU64(out, f.id);
    putU8(out, static_cast<std::uint8_t>(f.status));
    putF64(out, f.completionNs);
    putF64(out, f.latencyNs);
}

void
encodeOverload(std::string &out, const OverloadFrame &f)
{
    putHeader(out, FrameType::Overload,
              payloadBytes(FrameType::Overload));
    putU64(out, f.id);
    putF64(out, f.shedNs);
}

void
encodeFin(std::string &out)
{
    putHeader(out, FrameType::Fin, 0);
}

void
encodeFinAck(std::string &out)
{
    putHeader(out, FrameType::FinAck, 0);
}

void
encodeError(std::string &out, WireError code)
{
    putHeader(out, FrameType::Error, payloadBytes(FrameType::Error));
    putU8(out, static_cast<std::uint8_t>(code));
}

void
FrameDecoder::feed(const char *data, std::size_t n)
{
    // Compact consumed bytes before growing: pending() stays the true
    // buffered amount and the buffer never creeps.
    if (pos_ > 0) {
        buf_.erase(0, pos_);
        pos_ = 0;
    }
    buf_.append(data, n);
}

bool
FrameDecoder::next(Frame &out)
{
    if (error_ != WireError::None)
        return false;
    const std::size_t avail = buf_.size() - pos_;
    if (avail < kHeaderBytes)
        return false;
    const char *h = buf_.data() + pos_;

    for (int i = 0; i < 4; ++i) {
        if (static_cast<std::uint8_t>(h[i]) != kMagic[i]) {
            error_ = WireError::BadMagic;
            return false;
        }
    }
    if (getU8(h + 4) != kWireVersion) {
        error_ = WireError::BadVersion;
        return false;
    }
    const std::uint8_t rawType = getU8(h + 5);
    if (getU16(h + 6) != 0) {
        error_ = WireError::BadFlags;
        return false;
    }
    const std::uint32_t len = getU32(h + 8);
    if (len > kMaxPayload) {
        error_ = WireError::Oversize;
        return false;
    }
    if (rawType < static_cast<std::uint8_t>(FrameType::Hello) ||
        rawType > static_cast<std::uint8_t>(FrameType::Error)) {
        error_ = WireError::UnknownType;
        return false;
    }
    const FrameType type = static_cast<FrameType>(rawType);
    if (len != payloadBytes(type)) {
        error_ = WireError::BadPayload;
        return false;
    }
    if (avail < kHeaderBytes + len)
        return false; // wait for the rest of the payload

    const char *p = h + kHeaderBytes;
    out = Frame{};
    out.type = type;
    switch (type) {
      case FrameType::Hello:
        out.hello.mode = static_cast<WireLoadMode>(getU8(p));
        out.hello.connIndex = getU32(p + 1);
        out.hello.connections = getU32(p + 5);
        out.hello.totalRequests = getU64(p + 9);
        out.hello.seed = getU64(p + 17);
        break;
      case FrameType::Query:
        out.query.id = getU64(p);
        out.query.queryIndex = getU64(p + 8);
        out.query.arrivalNs = getF64(p + 16);
        out.query.deadlineNs = getF64(p + 24);
        break;
      case FrameType::Response:
        out.response.id = getU64(p);
        out.response.status =
            static_cast<ResponseStatus>(getU8(p + 8));
        out.response.completionNs = getF64(p + 9);
        out.response.latencyNs = getF64(p + 17);
        break;
      case FrameType::Overload:
        out.overload.id = getU64(p);
        out.overload.shedNs = getF64(p + 8);
        break;
      case FrameType::Error:
        out.error.code = getU8(p);
        break;
      case FrameType::HelloAck:
      case FrameType::Fin:
      case FrameType::FinAck:
        break;
    }
    pos_ += kHeaderBytes + len;
    return true;
}

} // namespace secndp::net
