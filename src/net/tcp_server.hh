/**
 * @file
 * Epoll-based non-blocking TCP front-end for the SecNDP query
 * protocol (src/net/wire.hh).
 *
 * One event-loop thread owns every socket: it accepts connections,
 * drains reads into per-connection FrameDecoders, dispatches decoded
 * frames to a Handler (called on the loop thread), and flushes
 * per-connection write buffers. Other threads never touch a socket;
 * they hand completed response frames to post(), which queues the
 * bytes and pokes the loop awake through a self-pipe -- the
 * completion path the batch scheduler uses so simulation workers stay
 * socket-free.
 *
 * Bounded buffers and backpressure:
 *   - reads are bounded by the decoder backlog cap; a connection
 *     whose buffered-but-undecodable bytes exceed it is closed as a
 *     protocol violation (with kMaxPayload-sized frames this only
 *     fires on hostile streams);
 *   - writes are bounded by a high/low watermark pair: when a
 *     connection's outgoing buffer passes the high watermark the
 *     server STOPS READING from that socket (EPOLLIN off) until the
 *     flush drains it below the low watermark, so a slow or stalled
 *     reader can neither balloon server memory nor starve other
 *     connections. Queue-level shedding is separate and explicit:
 *     the serving bridge answers shed admissions with an Overload
 *     frame (see net_server.cc).
 *
 * Any malformed frame (bad magic/version/flags, oversized or
 * mismatched length, unknown type) poisons the connection: the server
 * bumps the matching net.* error counter, sends one Error frame, and
 * closes after flushing. Mid-frame disconnects are counted
 * separately.
 *
 * Statistics: the loop thread owns two groups -- "net" (counters that
 * are deterministic for a fixed session: frames, bytes, connection
 * and error counts) and "net_wall" (wall-clock values: connection
 * lifetimes, write-buffer high-water, backpressure pauses, epoll
 * wakeups). Both are mutex-copied for live snapshots and folded into
 * the StatRegistry at stop() so they ride the standard sidecars;
 * determinism diffs strip net_wall exactly like host_phases.
 */

#ifndef SECNDP_NET_TCP_SERVER_HH
#define SECNDP_NET_TCP_SERVER_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hh"
#include "net/socket_util.hh"
#include "net/wire.hh"

namespace secndp::net {

class TcpServer
{
  public:
    struct Config
    {
        std::string bindAddr = "127.0.0.1";
        /** 0 picks an ephemeral port (read back via port()). */
        std::uint16_t port = 0;
        int backlog = 512;
        /** Concurrent connection cap; excess accepts are closed. */
        int maxConnections = 4096;
        /** Undecodable-bytes cap per connection (protocol abuse). */
        std::size_t maxDecoderBacklog = 64 * 1024;
        /** Stop reading a connection whose write buffer passes this. */
        std::size_t writeHighWater = 256 * 1024;
        /** Resume reading once the flush drains below this. */
        std::size_t writeLowWater = 64 * 1024;
        /** Fold net/net_wall into the StatRegistry at stop(). */
        bool registerStats = true;
    };

    /** Frame sink; every method runs on the event-loop thread. */
    class Handler
    {
      public:
        virtual ~Handler() = default;
        virtual void onFrame(std::uint64_t connId, const Frame &f) = 0;
        /** Peer gone (clean = no partial frame left behind). */
        virtual void onDisconnect(std::uint64_t connId, bool clean) = 0;
    };

    TcpServer() = default;
    ~TcpServer();

    TcpServer(const TcpServer &) = delete;
    TcpServer &operator=(const TcpServer &) = delete;

    /** Bind, listen, launch the loop thread. False + err on failure. */
    bool start(const Config &cfg, Handler *handler,
               std::string *err = nullptr);

    /** Close every socket and join the loop. Idempotent. */
    void stop();

    bool running() const { return running_.load(); }
    std::uint16_t port() const { return port_; }

    /**
     * Queue encoded frame bytes for `connId` and wake the loop
     * (thread-safe; the loop thread does the actual socket write).
     * closeAfterFlush closes the connection once everything queued so
     * far has been written.
     */
    void post(std::uint64_t connId, std::string bytes,
              bool closeAfterFlush = false);

    /** Stop accepting new connections (drain mode); existing
     *  connections keep flowing. Thread-safe, idempotent. */
    void beginDrain();

    /** Currently open connections. */
    std::size_t activeConnections() const
    {
        return active_.load();
    }

    /** Locked point-in-time copies of the two stat groups. */
    void snapshotStats(StatGroup &net, StatGroup &wall) const;

  private:
    struct Conn;
    struct Outbox
    {
        std::uint64_t connId;
        std::string bytes;
        bool closeAfterFlush;
    };

    void serveLoop();

    Config cfg_;
    Handler *handler_ = nullptr;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopRequested_{false};
    std::atomic<bool> draining_{false};
    std::atomic<std::size_t> active_{0};
    std::uint16_t port_ = 0;
    int listenFd_ = -1;
    WakePipe wake_;
    std::thread thread_;

    mutable std::mutex mutex_; ///< guards outbox_ + stats groups
    std::vector<Outbox> outbox_;
    StatGroup net_{"net", StatGroup::noRegister};
    StatGroup wall_{"net_wall", StatGroup::noRegister};
};

} // namespace secndp::net

#endif // SECNDP_NET_TCP_SERVER_HH
