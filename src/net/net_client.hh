/**
 * @file
 * Socket-mode load generator: drives a SecNDP TCP front-end
 * (net/net_server.hh) over `connections` concurrent sockets from one
 * epoll thread, speaking the wire protocol of net/wire.hh.
 *
 * The client is the *deterministic half* of the virtual-time bridge:
 * it stamps every Query with its virtual arrival time --
 *
 *   open loop   -- the same Poisson stream the in-process generator
 *                  uses (serve/loadgen.hh), id i = i-th arrival,
 *                  connection i % C carries it; queries stream as
 *                  fast as the sockets accept (pacing is virtual, so
 *                  wall-clock send times are irrelevant);
 *   closed loop -- one outstanding request per connection; the next
 *                  arrival is exactly the completionNs (or Overload
 *                  shedNs) echoed from the server's response.
 *
 * Every id gets exactly one terminal outcome (Response Ok/Aborted or
 * Overload); the report counts lost and duplicated ids so the CI
 * closed-loop burst can assert zero of both. Latency statistics come
 * from the server-stamped virtual values, so the "net_client" stat
 * group is byte-deterministic in the seed; wall-clock observations
 * land in "net_wall" (stripped by determinism diffs).
 */

#ifndef SECNDP_NET_NET_CLIENT_HH
#define SECNDP_NET_NET_CLIENT_HH

#include <cstdint>
#include <string>

#include "serve/loadgen.hh"

namespace secndp {

/** Socket-mode load parameters. */
struct NetClientConfig
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    LoadMode mode = LoadMode::Closed;
    /** Concurrent TCP connections (the session's fan-in width C). */
    std::uint32_t connections = 16;
    /** Total requests across the whole session. */
    std::uint64_t requests = 256;
    /** Open loop: mean arrival rate (virtual QPS). */
    double qps = 500000.0;
    /** Relative completion deadline per request, ns (0 = none). */
    double deadlineNs = 0.0;
    std::uint64_t seed = Rng::defaultSeed;
    /** Wall-clock seconds without any server byte before the run is
     *  declared stalled. */
    double timeoutS = 60.0;
};

/** Outcome of one socket-mode load run. */
struct NetClientReport
{
    std::uint64_t offered = 0;   ///< queries sent
    std::uint64_t completed = 0; ///< Response(Ok) received
    std::uint64_t rejected = 0;  ///< Overload frames (shed)
    std::uint64_t aborted = 0;   ///< Response(Aborted) received
    /** Ids that never got a terminal outcome (must be 0). */
    std::uint64_t lost = 0;
    /** Ids that got more than one outcome (must be 0). */
    std::uint64_t duplicates = 0;
    double makespanNs = 0.0;   ///< max virtual completion/shed time
    double sustainedQps = 0.0; ///< completed / makespan
    double p50LatencyNs = 0.0;
    double p95LatencyNs = 0.0;
    double p99LatencyNs = 0.0;
    bool ok = false;
    std::string error;
};

/**
 * Run one full session against `host:port`: connect, Hello handshake
 * on every connection, stream/echo queries per the load model, Fin /
 * FinAck teardown. Blocks until every id has an outcome (ok=true) or
 * the session fails (ok=false + error). Folds "net_client" /
 * "net_wall" stat groups into the registry before returning.
 */
NetClientReport runNetClient(const NetClientConfig &cfg);

} // namespace secndp

#endif // SECNDP_NET_NET_CLIENT_HH
