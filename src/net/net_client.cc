#include "net/net_client.hh"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "net/socket_util.hh"
#include "net/wire.hh"

#ifdef __linux__
#include <sys/epoll.h>
#include <unistd.h>
#endif

namespace secndp {

#ifdef __linux__

namespace {

/** Soft cap on a connection's buffered-but-unsent bytes; open-loop
 *  streaming refills once the flush drains below it. */
constexpr std::size_t kSendBacklog = 64 * 1024;

struct ClientConn
{
    int fd = -1;
    std::uint32_t slot = 0;
    net::FrameDecoder decoder;
    std::string out;
    std::size_t outPos = 0;
    bool wantWrite = false;
    bool helloAcked = false;
    std::uint64_t quota = 0; ///< ids this connection owns
    std::uint64_t sent = 0;  ///< queries sent so far
    std::uint64_t gotten = 0; ///< terminal outcomes received
    bool finSent = false;
    bool finAcked = false;
    bool done = false; ///< server closed us after FinAck
};

} // namespace

NetClientReport
runNetClient(const NetClientConfig &cfg)
{
    NetClientReport rep;
    const std::uint32_t C = cfg.connections ? cfg.connections : 1;
    const std::uint64_t R = cfg.requests;
    if (R == 0 || R > net::kMaxSessionRequests) {
        rep.error = "requests must be in [1, 2^20]";
        return rep;
    }

    net::ignoreSigpipe();
    const auto wallStart = std::chrono::steady_clock::now();

    // Deterministic virtual arrival stream (open loop only): id i is
    // the i-th arrival, carried by connection i mod C -- the same
    // stream the in-process generator replays.
    std::vector<double> arrivals;
    if (cfg.mode == LoadMode::Open)
        arrivals = openLoopArrivalsNs(R, cfg.qps, cfg.seed);

    // Deterministic client-side stats (latencies are server-stamped
    // virtual values, so this group is a pure function of the seed).
    StatGroup stats("net_client", StatGroup::noRegister);
    StatGroup wall("net_wall", StatGroup::noRegister);

    /** 0 = none, 1 = ok, 2 = overload, 3 = aborted. */
    std::vector<std::uint8_t> outcome(R, 0);
    /** Per-id virtual latency; folded into the histogram in id order
     *  at session end so the running mean is independent of the racy
     *  response-arrival interleaving across connections. */
    std::vector<double> latencyById(R, -1.0);

    const int epfd = ::epoll_create1(0);
    if (epfd < 0) {
        rep.error = "epoll_create1 failed";
        return rep;
    }

    std::vector<std::unique_ptr<ClientConn>> conns;
    conns.reserve(C);

    auto interest = [&](int op, ClientConn *c) {
        epoll_event ev{};
        ev.events = EPOLLIN;
        if (c->wantWrite)
            ev.events |= EPOLLOUT;
        ev.data.ptr = c;
        ::epoll_ctl(epfd, op, c->fd, &ev);
    };

    auto fail = [&](ClientConn *c, const std::string &why) {
        if (rep.error.empty()) {
            rep.error = "conn " + std::to_string(c ? c->slot : 0) +
                        ": " + why;
        }
    };

    auto quotaOf = [&](std::uint32_t slot) -> std::uint64_t {
        return R > slot ? (R - slot - 1) / C + 1 : 0;
    };

    auto deadlineOf = [&](double arrival) {
        return cfg.deadlineNs > 0 ? arrival + cfg.deadlineNs : 0.0;
    };

    auto sendQuery = [&](ClientConn *c, double arrival) {
        net::QueryFrame q;
        q.id = c->slot + c->sent * std::uint64_t{C};
        q.queryIndex = 0; // advisory; the server derives it from id
        q.arrivalNs = arrival;
        q.deadlineNs = deadlineOf(arrival);
        net::encodeQuery(c->out, q);
        ++c->sent;
        ++rep.offered;
        ++stats.counter("queries_sent");
    };

    auto sendFin = [&](ClientConn *c) {
        if (!c->finSent) {
            net::encodeFin(c->out);
            c->finSent = true;
        }
    };

    /** Top up the send buffer (open loop streams; closed loop's
     *  queries are echoed from the response handler) and flush. */
    auto pumpOut = [&](ClientConn *c) {
        if (c->done || c->fd < 0)
            return;
        for (;;) {
            if (c->helloAcked && cfg.mode == LoadMode::Open) {
                // Stream queries up to the backlog cap; pacing is
                // virtual so wall-clock send times do not matter.
                while (c->sent < c->quota &&
                       c->out.size() - c->outPos < kSendBacklog) {
                    sendQuery(
                        c, arrivals[c->slot +
                                    c->sent * std::uint64_t{C}]);
                }
                if (c->sent == c->quota)
                    sendFin(c);
            }
            if (c->outPos >= c->out.size())
                break;
            const net::IoResult w =
                net::writeSome(c->fd, c->out, c->outPos);
            if (w.error) {
                fail(c, "write failed");
                return;
            }
            if (c->outPos < c->out.size())
                break; // socket full: EPOLLOUT resumes the flush
            c->out.clear();
            c->outPos = 0;
            if (!(c->helloAcked && cfg.mode == LoadMode::Open &&
                  c->sent < c->quota))
                break; // nothing more to generate
        }
        const bool backlog = c->outPos < c->out.size();
        if (backlog != c->wantWrite) {
            c->wantWrite = backlog;
            interest(EPOLL_CTL_MOD, c);
        }
    };

    auto recordOutcome = [&](ClientConn *c, std::uint64_t id,
                             std::uint8_t kind, double when) {
        if (id >= R || id % C != c->slot) {
            fail(c, "outcome for an id this connection does not own");
            return false;
        }
        if (outcome[id] != 0) {
            ++rep.duplicates;
            ++stats.counter("duplicates");
            return true; // counted, not fatal: the report gates on it
        }
        outcome[id] = kind;
        ++c->gotten;
        rep.makespanNs = std::max(rep.makespanNs, when);
        if (cfg.mode == LoadMode::Closed) {
            // The echo: our next request arrives exactly when the
            // previous one left the system.
            if (c->sent < c->quota)
                sendQuery(c, when);
            else if (c->gotten == c->quota)
                sendFin(c);
        }
        return true;
    };

    auto onFrame = [&](ClientConn *c, const net::Frame &f) {
        switch (f.type) {
        case net::FrameType::HelloAck:
            if (c->helloAcked) {
                fail(c, "duplicate HelloAck");
                break;
            }
            c->helloAcked = true;
            if (cfg.mode == LoadMode::Closed) {
                if (c->quota > 0)
                    sendQuery(c, 0.0);
                else
                    sendFin(c);
            } else if (c->quota == 0) {
                sendFin(c);
            }
            break;
        case net::FrameType::Response:
            if (recordOutcome(c, f.response.id,
                              f.response.status ==
                                      net::ResponseStatus::Ok
                                  ? 1
                                  : 3,
                              f.response.completionNs)) {
                if (f.response.status == net::ResponseStatus::Ok) {
                    ++rep.completed;
                    ++stats.counter("responses_ok");
                    latencyById[f.response.id] = f.response.latencyNs;
                } else {
                    ++rep.aborted;
                    ++stats.counter("responses_aborted");
                }
            }
            break;
        case net::FrameType::Overload:
            if (recordOutcome(c, f.overload.id, 2, f.overload.shedNs)) {
                ++rep.rejected;
                ++stats.counter("overloads");
            }
            break;
        case net::FrameType::FinAck:
            c->finAcked = true;
            break;
        case net::FrameType::Error:
            fail(c, std::string("server error frame: ") +
                        net::wireErrorName(static_cast<net::WireError>(
                            f.error.code)));
            break;
        default:
            fail(c, "unexpected frame type from server");
            break;
        }
    };

    // Connect the fan-in, one Hello per connection.
    for (std::uint32_t i = 0; i < C && rep.error.empty(); ++i) {
        std::string err;
        const int fd = net::connectTcp(cfg.host, cfg.port, &err);
        if (fd < 0) {
            rep.error = err;
            break;
        }
        net::setNonBlocking(fd);
        auto c = std::make_unique<ClientConn>();
        c->fd = fd;
        c->slot = i;
        c->quota = quotaOf(i);
        net::HelloFrame h;
        h.mode = cfg.mode == LoadMode::Closed
                     ? net::WireLoadMode::Closed
                     : net::WireLoadMode::Open;
        h.connIndex = i;
        h.connections = C;
        h.totalRequests = R;
        h.seed = cfg.seed;
        net::encodeHello(c->out, h);
        interest(EPOLL_CTL_ADD, c.get());
        pumpOut(c.get());
        conns.push_back(std::move(c));
    }
    stats.counter("conns") = static_cast<double>(conns.size());

    auto lastByte = std::chrono::steady_clock::now();
    std::size_t doneCount = 0;

    epoll_event events[64];
    while (rep.error.empty() && doneCount < conns.size()) {
        const int n = ::epoll_wait(epfd, events, 64, 200);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            rep.error = "epoll_wait failed";
            break;
        }
        if (n == 0) {
            const double quiet =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - lastByte)
                    .count();
            if (quiet > cfg.timeoutS) {
                rep.error = "stalled: no server traffic within the "
                            "timeout";
                break;
            }
            continue;
        }
        for (int i = 0; i < n && rep.error.empty(); ++i) {
            auto *c = static_cast<ClientConn *>(events[i].data.ptr);
            if (c->done || c->fd < 0)
                continue;
            if (events[i].events & EPOLLIN) {
                std::string chunk;
                const net::IoResult r =
                    net::readSome(c->fd, chunk, 4096, 1 << 20);
                if (!chunk.empty())
                    lastByte = std::chrono::steady_clock::now();
                c->decoder.feed(chunk.data(), chunk.size());
                net::Frame f;
                while (rep.error.empty() && c->decoder.next(f))
                    onFrame(c, f);
                if (c->decoder.error() != net::WireError::None) {
                    fail(c, std::string("protocol error: ") +
                                net::wireErrorName(
                                    c->decoder.error()));
                    break;
                }
                if (r.eof) {
                    if (c->finAcked &&
                        c->decoder.pending() == 0) {
                        // Orderly teardown: FinAck then close.
                        ::epoll_ctl(epfd, EPOLL_CTL_DEL, c->fd,
                                    nullptr);
                        ::close(c->fd);
                        c->fd = -1;
                        c->done = true;
                        ++doneCount;
                    } else {
                        fail(c, "server closed the connection "
                                "early");
                    }
                    continue;
                }
                if (r.error) {
                    fail(c, "read failed");
                    continue;
                }
            }
            if ((events[i].events & (EPOLLOUT | EPOLLIN)) &&
                !c->done && c->fd >= 0)
                pumpOut(c);
            if (events[i].events & (EPOLLHUP | EPOLLERR)) {
                if (!c->done)
                    fail(c, "connection reset");
            }
        }
    }

    for (auto &c : conns) {
        if (c->fd >= 0) {
            ::close(c->fd);
            c->fd = -1;
        }
    }
    ::close(epfd);

    for (std::uint64_t id = 0; id < R; ++id) {
        if (outcome[id] == 0)
            ++rep.lost;
        if (latencyById[id] >= 0.0)
            stats.histogram("latency_ns").sample(latencyById[id]);
    }
    stats.counter("lost") = static_cast<double>(rep.lost);
    rep.sustainedQps = rep.makespanNs > 0
                           ? rep.completed / (rep.makespanNs / 1e9)
                           : 0.0;
    rep.p50LatencyNs = stats.histogram("latency_ns").percentile(0.50);
    rep.p95LatencyNs = stats.histogram("latency_ns").percentile(0.95);
    rep.p99LatencyNs = stats.histogram("latency_ns").percentile(0.99);
    stats.scalar("makespan_ns") = rep.makespanNs;
    stats.scalar("sustained_qps") = rep.sustainedQps;
    wall.scalar("run_wall_ms") =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wallStart)
            .count();

    rep.ok = rep.error.empty() && rep.lost == 0 &&
             rep.duplicates == 0;

    // Fold into the registry so the standard sidecars carry them.
    {
        StatGroup g("net_client");
        g.mergeFrom(stats);
    }
    {
        StatGroup w("net_wall");
        w.markSharedWriter();
        w.mergeFrom(wall);
    }
    return rep;
}

#else // !__linux__

NetClientReport
runNetClient(const NetClientConfig &)
{
    NetClientReport rep;
    rep.error = "socket mode requires Linux (epoll)";
    return rep;
}

#endif // __linux__

} // namespace secndp
