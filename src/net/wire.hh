/**
 * @file
 * The SecNDP binary query protocol (wire format v1).
 *
 * Every frame is a fixed 12-byte header followed by a type-specific
 * fixed-size payload, all little-endian:
 *
 *   offset  size  field
 *   0       4     magic "SNDP" (0x53 0x4e 0x44 0x50 on the wire)
 *   4       1     version (kWireVersion)
 *   5       1     type (FrameType)
 *   6       2     flags (reserved, must be 0)
 *   8       4     payload length in bytes
 *
 * Frame types (client = loadgen socket mode, server = --listen):
 *
 *   Hello     c->s  session announce: load mode, connection index /
 *                   count, total requests, seed. The first Hello
 *                   fixes the session; mismatching Hellos are
 *                   protocol errors.
 *   HelloAck  s->c  session accepted.
 *   Query     c->s  one request: id, pool query index, virtual
 *                   arrival ns, absolute deadline ns.
 *   Response  s->c  completion: id, status (Ok/Aborted), virtual
 *                   completion ns, latency ns.
 *   Overload  s->c  admission shed this id (explicit backpressure --
 *                   never silently dropped).
 *   Fin       c->s  no more queries on this connection.
 *   FinAck    s->c  every response for this connection has been
 *                   queued; the server closes after flushing.
 *   Error     s->c  protocol violation (code); the server closes.
 *
 * Payload sizes are fixed per type and lengths above kMaxPayload are
 * rejected before any allocation, so a hostile length field can never
 * balloon a connection buffer. The incremental FrameDecoder consumes
 * a byte stream (any fragmentation, down to one byte per read) and
 * yields frames or a terminal WireError.
 */

#ifndef SECNDP_NET_WIRE_HH
#define SECNDP_NET_WIRE_HH

#include <cstdint>
#include <string>

namespace secndp::net {

constexpr std::uint8_t kWireVersion = 1;
constexpr std::size_t kHeaderBytes = 12;
/** Largest legal payload; all v1 payloads are tiny and fixed. */
constexpr std::size_t kMaxPayload = 256;
/** Largest session a Hello may announce (bounds server-side state). */
constexpr std::uint64_t kMaxSessionRequests = 1ull << 20;

/** Wire magic, byte order as transmitted. */
constexpr std::uint8_t kMagic[4] = {0x53, 0x4e, 0x44, 0x50}; // "SNDP"

enum class FrameType : std::uint8_t
{
    Hello = 1,
    HelloAck = 2,
    Query = 3,
    Response = 4,
    Overload = 5,
    Fin = 6,
    FinAck = 7,
    Error = 8,
};

const char *frameTypeName(FrameType t);

/** Terminal protocol violations (the connection is closed). */
enum class WireError : std::uint8_t
{
    None = 0,
    BadMagic,
    BadVersion,
    BadFlags,
    Oversize,     ///< length > kMaxPayload
    BadPayload,   ///< length does not match the type's fixed size
    UnknownType,
};

const char *wireErrorName(WireError e);

/** Load models on the wire (mirrors serve LoadMode). */
enum class WireLoadMode : std::uint8_t
{
    Open = 0,
    Closed = 1,
};

struct HelloFrame
{
    WireLoadMode mode = WireLoadMode::Closed;
    std::uint32_t connIndex = 0;   ///< this connection's slot [0, n)
    std::uint32_t connections = 1; ///< session fan-in width
    std::uint64_t totalRequests = 0;
    std::uint64_t seed = 0;
};

enum class ResponseStatus : std::uint8_t
{
    Ok = 0,
    Aborted = 1, ///< verification never passed, fallback unavailable
};

struct QueryFrame
{
    std::uint64_t id = 0;
    std::uint64_t queryIndex = 0;
    double arrivalNs = 0.0;
    double deadlineNs = 0.0;
};

struct ResponseFrame
{
    std::uint64_t id = 0;
    ResponseStatus status = ResponseStatus::Ok;
    double completionNs = 0.0;
    double latencyNs = 0.0;
};

struct OverloadFrame
{
    std::uint64_t id = 0;
    double shedNs = 0.0;
};

struct ErrorFrame
{
    std::uint8_t code = 0; ///< a WireError value
};

/** One decoded frame (the union member named by `type` is valid). */
struct Frame
{
    FrameType type = FrameType::Error;
    HelloFrame hello;
    QueryFrame query;
    ResponseFrame response;
    OverloadFrame overload;
    ErrorFrame error;
};

/** @name Frame encoders (append header + payload to `out`) */
/// @{
void encodeHello(std::string &out, const HelloFrame &f);
void encodeHelloAck(std::string &out);
void encodeQuery(std::string &out, const QueryFrame &f);
void encodeResponse(std::string &out, const ResponseFrame &f);
void encodeOverload(std::string &out, const OverloadFrame &f);
void encodeFin(std::string &out);
void encodeFinAck(std::string &out);
void encodeError(std::string &out, WireError code);
/// @}

/**
 * Incremental frame parser over a connection's read buffer. Feed
 * bytes with feed(); then call next() until it returns false. Once
 * error() != None the decoder is poisoned and the connection must be
 * closed (the stream cannot be resynchronized).
 */
class FrameDecoder
{
  public:
    /** Append raw bytes from the socket. */
    void feed(const char *data, std::size_t n);

    /**
     * Decode the next complete frame into `out`. Returns false when
     * no complete frame is buffered (more bytes needed) or the
     * decoder is poisoned -- check error() to tell the two apart.
     */
    bool next(Frame &out);

    WireError error() const { return error_; }

    /** Bytes currently buffered (bounded-buffer accounting). */
    std::size_t pending() const { return buf_.size() - pos_; }

  private:
    std::string buf_;
    std::size_t pos_ = 0;
    WireError error_ = WireError::None;
};

} // namespace secndp::net

#endif // SECNDP_NET_WIRE_HH
