#include "net/net_server.hh"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/phase_profiler.hh"
#include "common/request_trace.hh"
#include "common/sampler.hh"
#include "common/stats.hh"
#include "crypto/aes.hh"
#include "crypto/counter_mode.hh"
#include "net/tcp_server.hh"
#include "net/wire.hh"
#include "serve/host_crypto.hh"
#include "serve/worker_pool.hh"
#include "telemetry/metrics_exporter.hh"
#include "telemetry/slo_tracker.hh"
#include "telemetry/snapshot.hh"

namespace secndp {

namespace {

/** Same admission epsilon the in-process loop uses. */
constexpr double kEps = 1e-9;

/** One client-stamped arrival waiting to be replayed. */
struct NetArrival
{
    double t = 0.0;
    std::uint64_t id = 0;
    double deadlineNs = 0.0;
};

/** Min-heap order: (arrival time, id) -- the replay order. */
struct ArrivalAfter
{
    bool operator()(const NetArrival &a, const NetArrival &b) const
    {
        if (a.t != b.t)
            return a.t > b.t;
        return a.id > b.id;
    }
};

/**
 * The conservative virtual-time bridge between the TcpServer event
 * loop and the serving simulation (see net_server.hh for the model).
 *
 * Threading: onFrame/onDisconnect run on the event-loop thread and
 * only append raw events under `m_`. ALL session state (slots, the
 * arrival heap, watermarks, counters) is owned by the serving thread,
 * which drains the raw-event queue via pump()/pumpBlocking() -- so no
 * session field ever needs a lock and the StatGroup single-writer
 * contract holds.
 */
class SessionBridge : public net::TcpServer::Handler
{
  public:
    SessionBridge(net::TcpServer &srv, std::size_t queueCapacity,
                  double idleTimeoutS)
        : srv_(srv), queueCapacity_(queueCapacity),
          idleTimeoutS_(idleTimeoutS)
    {
    }

    // ---- event-loop thread ----

    void onFrame(std::uint64_t connId, const net::Frame &f) override
    {
        std::lock_guard<std::mutex> lock(m_);
        events_.push_back(RawEvent{connId, false, false, f});
        cv_.notify_all();
    }

    void onDisconnect(std::uint64_t connId, bool clean) override
    {
        std::lock_guard<std::mutex> lock(m_);
        events_.push_back(RawEvent{connId, true, clean, net::Frame{}});
        cv_.notify_all();
    }

    // ---- serving thread ----

    /** Block until every announced connection said Hello (or fail). */
    bool waitSession()
    {
        for (;;) {
            pump();
            if (failed_)
                return false;
            if (started_ && helloed_ == connections_)
                return true;
            if (!pumpBlocking())
                return false;
        }
    }

    bool failed() const { return failed_; }
    const std::string &error() const { return error_; }
    net::WireLoadMode mode() const { return mode_; }
    std::uint32_t connections() const { return connections_; }
    std::uint64_t totalRequests() const { return total_; }
    std::uint64_t seed() const { return seed_; }

    /**
     * Replay every arrival with t <= now + eps through `fn`, in
     * (t, id) order, blocking until the watermarks prove the set is
     * complete. `fn` may shed (sendOverload), which in closed loop
     * re-arms an expectation at the shed time that this same call
     * then waits for -- mirroring the in-process immediate reissue.
     */
    template <typename Fn>
    bool admitUpTo(double now, Fn &&fn)
    {
        for (;;) {
            pump();
            for (;;) {
                if (failed_)
                    return false;
                if (heap_.empty() || heap_.top().t > now + kEps)
                    break;
                const NetArrival top = heap_.top();
                if (!certainBefore(top))
                    break;
                heap_.pop();
                fn(top);
            }
            if (failed_)
                return false;
            const bool heapReady =
                heap_.empty() || heap_.top().t > now + kEps;
            if (heapReady && certainBeyond(now + kEps))
                return true;
            if (!pumpBlocking())
                return false;
        }
    }

    /**
     * Exact min(cap, earliest pending-or-future arrival), blocking
     * until the watermarks make it exact. RequestQueue::noArrival
     * when nothing will ever arrive (or the session failed -- check
     * failed()).
     */
    double nextEventTime(double cap)
    {
        for (;;) {
            pump();
            if (failed_)
                return RequestQueue::noArrival;
            double cand = cap;
            if (!heap_.empty())
                cand = std::min(cand, heap_.top().t);
            bool uncertain = false;
            for (const Slot &s : slots_) {
                if (s.received >= s.quota || s.gone)
                    continue;
                if (mode_ == net::WireLoadMode::Closed) {
                    if (s.expecting)
                        cand = std::min(cand, s.expectedT);
                } else if (s.lastSeen < cand) {
                    // An unseen arrival from this connection could
                    // still land below the candidate.
                    uncertain = true;
                }
            }
            if (!uncertain)
                return cand;
            if (!pumpBlocking())
                return RequestQueue::noArrival;
        }
    }

    /** True iff no buffered and no future arrivals remain (the
     *  scheduler's force-drain flag, = in-process arrivals.empty()). */
    bool drained() const
    {
        if (!heap_.empty())
            return false;
        for (const Slot &s : slots_)
            if (s.received < s.quota && !s.gone)
                return false;
        return true;
    }

    void sendResponse(std::uint64_t id, net::ResponseStatus status,
                      double completionNs, double latencyNs)
    {
        Slot &s = slots_[id % connections_];
        ++s.responded;
        armNext(s, completionNs);
        net::ResponseFrame f;
        f.id = id;
        f.status = status;
        f.completionNs = completionNs;
        f.latencyNs = latencyNs;
        std::string bytes;
        net::encodeResponse(bytes, f);
        srv_.post(s.connId, std::move(bytes));
        maybeFinAck(s);
    }

    void sendOverload(std::uint64_t id, double shedNs)
    {
        Slot &s = slots_[id % connections_];
        ++s.responded;
        armNext(s, shedNs);
        net::OverloadFrame f;
        f.id = id;
        f.shedNs = shedNs;
        std::string bytes;
        net::encodeOverload(bytes, f);
        srv_.post(s.connId, std::move(bytes));
        maybeFinAck(s);
    }

    /** After the last response: pump until every session connection
     *  has been FinAck'd and closed (false on stall/failure). */
    bool drainConnections()
    {
        for (;;) {
            pump();
            if (failed_)
                return false;
            bool all = true;
            for (const Slot &s : slots_)
                if (!s.gone)
                    all = false;
            if (all)
                return true;
            if (!pumpBlocking())
                return false;
        }
    }

    /** One-shot fold of the session counters into the registry's
     *  "net" group (joins the TcpServer's transport counters). */
    void foldStats()
    {
        if (folded_)
            return;
        folded_ = true;
        StatGroup g("net");
        g.mergeFrom(bnet_);
    }

  private:
    struct RawEvent
    {
        std::uint64_t connId;
        bool disconnect;
        bool clean;
        net::Frame frame;
    };

    /** Per-connection session state (serving thread only). */
    struct Slot
    {
        std::uint64_t connId = 0;
        bool helloed = false;
        std::uint64_t quota = 0;    ///< ids this connection owns
        std::uint64_t received = 0; ///< queries received
        std::uint64_t responded = 0;
        /** Closed loop: exact next-arrival expectation. */
        bool expecting = false;
        double expectedT = 0.0;
        /** Open loop: exclusive watermark (arrivals are strictly
         *  increasing per connection); -1 = nothing seen yet. */
        double lastSeen = -1.0;
        bool finReceived = false;
        bool finAcked = false;
        bool gone = false;
    };

    std::uint64_t quotaOf(std::uint64_t slot) const
    {
        return total_ > slot ? (total_ - slot - 1) / connections_ + 1
                             : 0;
    }

    std::uint64_t nextIdOf(std::uint64_t slot) const
    {
        return slot + slots_[slot].received * connections_;
    }

    /** Would the (exactly known) pending arrival of any connection
     *  replay BEFORE `top` in (t, id) order? */
    bool certainBefore(const NetArrival &top) const
    {
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            const Slot &s = slots_[i];
            if (s.received >= s.quota || s.gone)
                continue;
            if (mode_ == net::WireLoadMode::Closed) {
                if (!s.expecting)
                    continue; // awaiting our response: silent
                if (s.expectedT < top.t ||
                    (s.expectedT == top.t && nextIdOf(i) < top.id))
                    return false;
            } else if (s.lastSeen < top.t) {
                return false;
            }
        }
        return true;
    }

    /** No arrival with t <= T can still be produced. */
    bool certainBeyond(double T) const
    {
        for (const Slot &s : slots_) {
            if (s.received >= s.quota || s.gone)
                continue;
            if (mode_ == net::WireLoadMode::Closed) {
                if (s.expecting && s.expectedT <= T)
                    return false;
            } else if (s.lastSeen < T) {
                return false;
            }
        }
        return true;
    }

    void armNext(Slot &s, double t)
    {
        if (mode_ == net::WireLoadMode::Closed &&
            s.received < s.quota && !s.gone) {
            s.expecting = true;
            s.expectedT = t;
        }
    }

    void maybeFinAck(Slot &s)
    {
        if (s.finReceived && !s.finAcked && s.responded == s.quota) {
            std::string bytes;
            net::encodeFinAck(bytes);
            srv_.post(s.connId, std::move(bytes),
                      /*closeAfterFlush=*/true);
            s.finAcked = true;
        }
    }

    void failSession(const std::string &why)
    {
        if (!failed_) {
            failed_ = true;
            error_ = why;
        }
    }

    /** Protocol violation on one connection: Error frame + close. */
    void poison(std::uint64_t connId, const char *counter)
    {
        ++bnet_.counter(counter);
        std::string bytes;
        net::encodeError(bytes, net::WireError::BadPayload);
        srv_.post(connId, std::move(bytes), /*closeAfterFlush=*/true);
    }

    bool inSession(std::uint64_t connId) const
    {
        return connSlot_.find(connId) != connSlot_.end();
    }

    void handleHello(std::uint64_t connId, const net::HelloFrame &h)
    {
        const bool modeOk =
            h.mode == net::WireLoadMode::Open ||
            h.mode == net::WireLoadMode::Closed;
        if (!modeOk || h.connections == 0 ||
            h.connIndex >= h.connections || h.totalRequests == 0 ||
            h.totalRequests > net::kMaxSessionRequests) {
            poison(connId, "bad_hello");
            if (inSession(connId))
                failSession("malformed Hello on a session connection");
            return;
        }
        if (!started_) {
            if (h.mode == net::WireLoadMode::Closed &&
                h.connections > queueCapacity_) {
                poison(connId, "bad_hello");
                failSession("closed-loop connections exceed queue "
                            "capacity (every request would be shed)");
                return;
            }
            started_ = true;
            mode_ = h.mode;
            connections_ = h.connections;
            total_ = h.totalRequests;
            seed_ = h.seed;
            slots_.assign(connections_, Slot{});
            bnet_.counter("session_conns") =
                static_cast<double>(connections_);
            bnet_.counter("session_requests") =
                static_cast<double>(total_);
        } else if (h.mode != mode_ || h.connections != connections_ ||
                   h.totalRequests != total_ || h.seed != seed_) {
            poison(connId, "bad_hello");
            failSession("Hello session parameters mismatch");
            return;
        }
        Slot &s = slots_[h.connIndex];
        if (s.helloed) {
            poison(connId, "bad_hello");
            failSession("duplicate Hello for connection slot");
            return;
        }
        s.helloed = true;
        s.connId = connId;
        s.quota = quotaOf(h.connIndex);
        if (mode_ == net::WireLoadMode::Closed && s.quota > 0) {
            s.expecting = true; // first arrival is exactly t = 0
            s.expectedT = 0.0;
        }
        connSlot_[connId] = h.connIndex;
        ++helloed_;
        std::string bytes;
        net::encodeHelloAck(bytes);
        srv_.post(connId, std::move(bytes));
    }

    void handleQuery(std::uint64_t connId, const net::QueryFrame &q)
    {
        auto it = connSlot_.find(connId);
        if (it == connSlot_.end()) {
            poison(connId, "bad_query");
            return; // query before Hello on a stray connection
        }
        const std::uint64_t slot = it->second;
        Slot &s = slots_[slot];
        const bool arrivalOk =
            q.arrivalNs >= 0.0 &&
            q.arrivalNs <= 1e18 && // ~30 virtual years: sane bound
            (mode_ == net::WireLoadMode::Closed
                 ? (s.expecting && q.arrivalNs == s.expectedT)
                 : q.arrivalNs > s.lastSeen);
        if (s.received >= s.quota || q.id != nextIdOf(slot) ||
            !arrivalOk) {
            poison(connId, "bad_query");
            failSession("out-of-protocol Query frame");
            return;
        }
        heap_.push(NetArrival{q.arrivalNs, q.id, q.deadlineNs});
        ++s.received;
        if (mode_ == net::WireLoadMode::Closed)
            s.expecting = false;
        else
            s.lastSeen = q.arrivalNs;
    }

    void handleFin(std::uint64_t connId)
    {
        auto it = connSlot_.find(connId);
        if (it == connSlot_.end()) {
            poison(connId, "unexpected_frame");
            return;
        }
        Slot &s = slots_[it->second];
        s.finReceived = true;
        maybeFinAck(s);
    }

    void handleDisconnect(std::uint64_t connId)
    {
        auto it = connSlot_.find(connId);
        if (it == connSlot_.end())
            return; // never joined the session
        Slot &s = slots_[it->second];
        s.gone = true;
        if (!s.finAcked) {
            ++bnet_.counter("conn_lost_midsession");
            failSession("connection lost mid-session");
        }
    }

    void apply(const RawEvent &ev)
    {
        if (ev.disconnect) {
            handleDisconnect(ev.connId);
            return;
        }
        switch (ev.frame.type) {
        case net::FrameType::Hello:
            handleHello(ev.connId, ev.frame.hello);
            break;
        case net::FrameType::Query:
            handleQuery(ev.connId, ev.frame.query);
            break;
        case net::FrameType::Fin:
            handleFin(ev.connId);
            break;
        default:
            poison(ev.connId, "unexpected_frame");
            if (inSession(ev.connId))
                failSession("unexpected frame type from client");
            break;
        }
    }

    /** Apply everything queued (never blocks). */
    void pump()
    {
        std::deque<RawEvent> evs;
        {
            std::lock_guard<std::mutex> lock(m_);
            evs.swap(events_);
        }
        for (const RawEvent &e : evs)
            apply(e);
    }

    /** Block for at least one new raw event; idle timeout fails the
     *  session (a wedged client must not hang the server). */
    bool pumpBlocking()
    {
        std::unique_lock<std::mutex> lock(m_);
        if (events_.empty() &&
            !cv_.wait_for(lock,
                          std::chrono::duration<double>(idleTimeoutS_),
                          [&] { return !events_.empty(); })) {
            lock.unlock();
            failSession("session stalled: no client traffic within "
                        "the idle timeout");
            return false;
        }
        std::deque<RawEvent> evs;
        evs.swap(events_);
        lock.unlock();
        for (const RawEvent &e : evs)
            apply(e);
        return true;
    }

    net::TcpServer &srv_;
    const std::size_t queueCapacity_;
    const double idleTimeoutS_;

    std::mutex m_;
    std::condition_variable cv_;
    std::deque<RawEvent> events_;

    // Session state: serving thread only.
    bool started_ = false;
    bool failed_ = false;
    bool folded_ = false;
    std::string error_;
    net::WireLoadMode mode_ = net::WireLoadMode::Closed;
    std::uint32_t connections_ = 0;
    std::uint32_t helloed_ = 0;
    std::uint64_t total_ = 0;
    std::uint64_t seed_ = 0;
    std::vector<Slot> slots_;
    std::map<std::uint64_t, std::uint64_t> connSlot_;
    std::priority_queue<NetArrival, std::vector<NetArrival>,
                        ArrivalAfter>
        heap_;
    StatGroup bnet_{"net", StatGroup::noRegister};
};

} // namespace

NetServeReport
runNetServe(const NetServeConfig &cfg, const WorkloadTrace &pool,
            void (*onListen)(std::uint16_t))
{
    if (pool.queries.empty())
        fatal("serving request pool has no queries");

    NetServeReport nrep;
    ServeReport &rep = nrep.serve;

    net::TcpServer tcp;
    SessionBridge bridge(tcp, cfg.serve.queueCapacity,
                         cfg.idleTimeoutS);
    net::TcpServer::Config tcfg;
    tcfg.bindAddr = cfg.bindAddr;
    tcfg.port = cfg.port;
    tcfg.maxConnections = cfg.maxConnections;
    std::string err;
    if (!tcp.start(tcfg, &bridge, &err)) {
        nrep.error = "listen failed: " + err;
        return nrep;
    }
    nrep.port = tcp.port();

    telemetry::MetricsExporter *exporter = cfg.serve.telemetry.exporter;
    telemetry::SloTracker *slo = cfg.serve.telemetry.slo;
    std::uint64_t pub_seq = 0;

    // The serving machinery below is the runServe() loop with the
    // in-process arrival generator swapped for the bridge; every
    // simulated-side stat keeps identical semantics.
    RequestQueue queue(cfg.serve.policy, cfg.serve.queueCapacity);
    BatchScheduler sched(queue, cfg.serve.batch, cfg.serve.shards);

    SystemConfig shard_cfg = cfg.serve.sys;
    shard_cfg.dram.geometry.channels = 1;
    std::vector<PageMapper> mappers;
    mappers.reserve(cfg.serve.shards ? cfg.serve.shards : 1);
    for (unsigned s = 0; s < std::max(cfg.serve.shards, 1u); ++s) {
        mappers.emplace_back(shard_cfg.dram.geometry.totalBytes(),
                             4096, cfg.serve.sys.pageSeed + s);
    }

    const Aes128::Key host_key{0x5e, 0xc0, 0xd9, 0x01, 0x5e, 0xc0,
                               0xd9, 0x02, 0x5e, 0xc0, 0xd9, 0x03,
                               0x5e, 0xc0, 0xd9, 0x04};
    Aes128 host_aes(host_key);
    CounterModeEncryptor host_enc(host_aes);
    StatGroup serve("serve");
    WorkerPool workers(cfg.serve.workers);

    std::unique_ptr<IntegrityShadow> shadow;
    if (cfg.serve.faults.enabled()) {
        shadow = std::make_unique<IntegrityShadow>(
            cfg.serve.faults, cfg.serve.faultSeed, cfg.serve.recovery);
    }

    auto publishSnapshot = [&](double sim_now, bool complete) {
        if (!exporter)
            return;
        auto snap = std::make_shared<telemetry::TelemetrySnapshot>(
            telemetry::captureOwnedSnapshot());
        snap->seq = ++pub_seq;
        snap->simNowNs = sim_now;
        snap->complete = complete;
        snap->fold(workers.statsSnapshot());
        for (const auto &kv : Sampler::instance().latestValues())
            snap->gauges["sampler." + kv.first] = kv.second;
        snap->gauges["serve.queue_depth"] =
            static_cast<double>(queue.size());
        snap->gauges["net.active_connections"] =
            static_cast<double>(tcp.activeConnections());
        if (slo) {
            slo->advanceTo(sim_now);
            for (const auto &kv : slo->gauges())
                snap->gauges[kv.first] = kv.second;
        }
        exporter->publish(std::move(snap));
    };
    // Ready before the handshake: clients (and CI) poll /readyz to
    // learn the server is accepting before they connect. The port is
    // announced only after /readyz flips, so seeing the listen line
    // already implies readiness.
    if (exporter) {
        publishSnapshot(0.0, false);
        exporter->setReady(true);
    }
    if (onListen)
        onListen(tcp.port());

    auto finish = [&](bool ok, const std::string &why) {
        if (exporter)
            exporter->setReady(false);
        tcp.beginDrain();
        if (ok)
            ok = bridge.drainConnections();
        {
            ScopedPhase phase("verify_drain");
            workers.drain();
        }
        tcp.stop();
        bridge.foldStats();
        nrep.ok = ok;
        if (!ok)
            nrep.error = !bridge.error().empty() ? bridge.error()
                                                 : why;
    };

    if (!bridge.waitSession()) {
        finish(false, "session handshake failed");
        publishSnapshot(0.0, true);
        return nrep;
    }
    nrep.mode = bridge.mode() == net::WireLoadMode::Closed
                    ? LoadMode::Closed
                    : LoadMode::Open;
    nrep.connections = bridge.connections();
    nrep.totalRequests = bridge.totalRequests();
    nrep.seed = bridge.seed();
    const std::size_t total = bridge.totalRequests();

    double now = 0.0;
    double busy_until = 0.0;
    auto &sampler = Sampler::instance();
    const auto cycle_of = [&](double ns) {
        return static_cast<std::int64_t>(
            cfg.serve.sys.dram.clock.cyclesFromNs(ns));
    };

    // One replayed arrival: identical admission semantics to the
    // in-process admit() except the closed-loop reissue lives on the
    // client side of the wire (the Overload frame carries the time).
    auto admitOne = [&](const NetArrival &a) {
        ++rep.offered;
        ServeRequest r;
        r.id = a.id;
        r.queryIndex = a.id % pool.queries.size();
        r.arrivalNs = a.t;
        r.deadlineNs = a.deadlineNs;
        if (queue.push(r)) {
            ++rep.admitted;
            ++serve.counter("requests_admitted");
        } else {
            ++rep.rejected;
            ++serve.counter("requests_rejected");
            if (slo)
                slo->recordShed(a.t);
            SECNDP_RQSPAN(r.id, SpanKind::Shed, a.t, 0.0, 0,
                          queue.size());
            SECNDP_RQANOMALY(AnomalyKind::Shed, r.id, a.t);
            bridge.sendOverload(a.id, a.t);
        }
    };

    while (rep.completed + rep.rejected + rep.aborted < total) {
        if (!bridge.admitUpTo(now, admitOne))
            break;
        const bool idle = now >= busy_until - kEps;
        if (idle) {
            double wake = RequestQueue::noArrival;
            auto batch = sched.poll(now, bridge.drained(), &wake);
            if (!batch.empty()) {
                const double start = now;
                const auto exec = runShardedBatch(
                    shard_cfg, cfg.serve.mode, pool, batch, mappers);
                busy_until = start + exec.batchServiceNs;
                ++rep.batches;
                ++serve.counter("batches");
                serve.histogram("batch_occupancy")
                    .sample(static_cast<double>(batch.size()));
                serve.histogram("batch_service_ns")
                    .sample(exec.batchServiceNs);

                std::vector<HostCryptoWork> host_work;
                host_work.reserve(batch.size());
                for (std::size_t i = 0; i < batch.size(); ++i) {
                    const ServeRequest &r = batch[i];
                    double completion =
                        start + exec.requestServiceNs[i];
#if SECNDP_TRACING
                    if (SECNDP_RQTRACE_ACTIVE()) {
                        auto &rq = RequestTracer::instance();
                        const QueryTiming &qt = exec.requestTiming[i];
                        const unsigned s = exec.requestShard[i];
                        rq.record(r.id, SpanKind::QueueWait,
                                  r.arrivalNs, start - r.arrivalNs,
                                  s, 0);
                        rq.record(r.id, SpanKind::BatchForm, start,
                                  0.0, s, batch.size());
                        if (qt.otpDurNs > 0.0) {
                            rq.record(r.id, SpanKind::OtpGen,
                                      start + qt.otpStartNs,
                                      qt.otpDurNs, s, qt.otpBlocks);
                        }
                        rq.record(r.id, SpanKind::SimDrain, start,
                                  exec.requestServiceNs[i], s,
                                  qt.decryptBound);
                        if (qt.verifyDurNs > 0.0) {
                            rq.record(r.id, SpanKind::Verify,
                                      start + qt.verifyStartNs,
                                      qt.verifyDurNs, s, 0);
                        }
                    }
#endif
                    bool abort_req = false;
                    if (shadow) {
                        RequestTracer::setCurrent(r.id);
                        RequestTracer::setNow(completion);
                        const auto rec = shadow->recovery().run(
                            [&] { return shadow->verifyOnce(r.id); },
                            exec.requestServiceNs[i]);
                        RequestTracer::clearCurrent();
                        completion += rec.penaltyNs;
                        switch (rec.outcome) {
                        case RecoveryOutcome::Clean:
                            break;
                        case RecoveryOutcome::RecoveredRetry:
                            ++rep.recoveredRetry;
                            break;
                        case RecoveryOutcome::RecoveredFallback:
                            ++rep.recoveredFallback;
                            break;
                        case RecoveryOutcome::Aborted:
                            abort_req = true;
                            break;
                        }
                    }
                    if (abort_req) {
                        ++rep.aborted;
                        ++serve.counter("requests_aborted");
                        if (slo)
                            slo->recordAbort(completion);
                        SECNDP_RQSPAN(r.id, SpanKind::Abort,
                                      completion, 0.0,
                                      exec.requestShard[i], 0);
                        SECNDP_RQANOMALY(AnomalyKind::Abort, r.id,
                                         completion);
                        bridge.sendResponse(
                            r.id, net::ResponseStatus::Aborted,
                            completion, 0.0);
                    } else {
                        const double latency =
                            completion - r.arrivalNs;
                        if (slo)
                            slo->recordLatency(completion, latency);
                        serve.histogram("latency_ns").sample(latency);
                        serve.histogram("queue_wait_ns")
                            .sample(start - r.arrivalNs);
                        serve.histogram("service_ns")
                            .sample(exec.requestServiceNs[i]);
                        if (r.deadlineNs > 0 &&
                            completion > r.deadlineNs) {
                            ++rep.deadlineMisses;
                            ++serve.counter("deadline_misses");
                        }
#if SECNDP_TRACING
                        {
                            auto &rq = RequestTracer::instance();
                            if (rq.active() && rq.sloNs() > 0.0 &&
                                latency > rq.sloNs()) {
                                rq.anomaly(AnomalyKind::SloBreach,
                                           r.id, completion);
                            }
                        }
#endif
                        ++rep.completed;
                        ++serve.counter("requests_completed");
                        bridge.sendResponse(r.id,
                                            net::ResponseStatus::Ok,
                                            completion, latency);
                    }

                    const TraceQuery &q = pool.queries[r.queryIndex];
                    HostCryptoWork w;
                    w.addr = (q.ranges.empty() ? r.id * 4096
                                               : q.ranges[0].vaddr) &
                             ~std::uint64_t{15};
                    w.dataOtpBlocks =
                        std::min(q.engineWork.dataOtpBlocks,
                                 cfg.serve.hostOtpBlockCap);
                    w.tagOtpBlocks =
                        std::min(q.engineWork.tagOtpBlocks,
                                 cfg.serve.hostOtpBlockCap);
                    w.verifyOps = q.engineWork.verifyOps;
                    host_work.push_back(w);
                }
                workers.submit([&host_enc,
                                work = std::move(host_work)](
                                   StatGroup &g) {
                    runHostCrypto(host_enc, work, g);
                });

                sampler.tick(cycle_of(busy_until));
                sampler.gauge("serve_queue_depth", cycle_of(start),
                              static_cast<double>(queue.size()));
                sampler.gauge("serve_batch_fill", cycle_of(start),
                              static_cast<double>(batch.size()) /
                                  cfg.serve.batch.maxBatch);
                publishSnapshot(busy_until, false);
                continue; // re-evaluate at the same instant
            }
            const double next = bridge.nextEventTime(wake);
            if (bridge.failed())
                break;
            if (next == RequestQueue::noArrival)
                break; // no queued work, no future arrivals
            now = std::max(now, next);
        } else {
            const double next = bridge.nextEventTime(busy_until);
            if (bridge.failed())
                break;
            now = std::max(now, next);
        }
    }

    const bool sessionOk =
        !bridge.failed() &&
        rep.completed + rep.rejected + rep.aborted == total;

    // Optional wall-clock hold before the drain flips /readyz to 503
    // (same observability window the in-process loop offers).
    if (exporter && sessionOk &&
        cfg.serve.telemetry.holdBeforeDrainMs > 0) {
        publishSnapshot(std::max(busy_until, now), false);
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(
                cfg.serve.telemetry.holdBeforeDrainMs));
    }

    finish(sessionOk, "serving loop ended before the session "
                      "completed");

#if SECNDP_TRACING
    if (RequestTracer::instance().active()) {
        auto &rq = RequestTracer::instance();
        StatGroup trace("trace");
        trace.counter("spans") = rq.spansRecorded();
        trace.counter("spans_dropped") = rq.droppedSpans();
        trace.counter("anomalies") = rq.anomalyCount();
        trace.counter("flight_dumps") = rq.flightDumps();
        trace.counter("slo_breaches") =
            rq.anomalyCountOf(AnomalyKind::SloBreach);
        trace.counter("sheds") = rq.anomalyCountOf(AnomalyKind::Shed);
        trace.counter("aborts") =
            rq.anomalyCountOf(AnomalyKind::Abort);
    }
#endif

    rep.makespanNs = std::max(busy_until, now);
    rep.sustainedQps = rep.makespanNs > 0
                           ? rep.completed / (rep.makespanNs / 1e9)
                           : 0.0;
    serve.scalar("sustained_qps") = rep.sustainedQps;
    serve.scalar("makespan_ns") = rep.makespanNs;
    serve.counter("flush_full") = sched.fullFlushes();
    serve.counter("flush_timeout") = sched.timeoutFlushes();
    serve.counter("flush_drain") = sched.drainFlushes();
    rep.p50LatencyNs = serve.histogram("latency_ns").percentile(0.50);
    rep.p95LatencyNs = serve.histogram("latency_ns").percentile(0.95);
    rep.p99LatencyNs = serve.histogram("latency_ns").percentile(0.99);
    if (shadow) {
        rep.tamperDetected = shadow->injector().detectedQueries();
        rep.faultsInjected = shadow->injector().injectedTotal();
    }

    if (slo) {
        slo->advanceTo(rep.makespanNs);
        StatGroup tg("telemetry");
        slo->publish(tg);
    }
    // Final complete snapshot; the net/net_wall groups folded at
    // finish() are part of the retired aggregate it captures.
    publishSnapshot(rep.makespanNs, true);

    return nrep;
}

} // namespace secndp
