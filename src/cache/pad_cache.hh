/**
 * @file
 * Skew-aware trusted-side cache of counter-mode OTP pads.
 *
 * Production DLRM traces are heavily skewed (PF 50-100 over hot
 * rows), yet the trusted engine regenerates every pad from scratch --
 * the host-side OTP bottleneck of paper Fig. 8. This subsystem caches
 * per-chunk pads E(K, 00 || chunk || v) (Def. A.2) keyed by the
 * 16-byte-aligned chunk address, with the pad's version number stored
 * as a tag inside the entry.
 *
 * Version safety (paper section V-A): a hit is only returned when the
 * entry's stored version equals the version the caller is encrypting
 * under. Any (address, version) bump -- a write re-provision, a
 * replay-recovery re-read, or a wraparound re-key -- either
 * invalidates the entry eagerly (the invalidate entry points / the
 * VersionManager bump listener) or is caught lazily at lookup time:
 * a version-tag
 * mismatch counts a stale_version_reject, erases the entry, and
 * misses. Under no interleaving can a pad outlive its
 * (address, version).
 *
 * Sharding/locking contract (DESIGN.md section 14): entries hash to
 * one of a power-of-two number of shards; each shard owns a mutex,
 * an open hash map, and an intrusive recency list. Every operation
 * takes exactly one shard lock (invalidateRange/publish walk the
 * shards one at a time), so there is no lock ordering and no
 * deadlock. Statistics counters are relaxed atomics: exact totals,
 * no ordering claims between them.
 *
 * Determinism contract: policy state (recency order, frequency
 * sketch, evictions) is mutated only by lookup/insert/admit/
 * invalidate*. peek() and fill() never touch policy state or the
 * stat counters, so a single-threaded admission pass plus concurrent
 * worker peek/fill traffic (the src/serve arrangement) keeps every
 * cache.* counter a pure function of the request stream.
 */

#ifndef SECNDP_CACHE_PAD_CACHE_HH
#define SECNDP_CACHE_PAD_CACHE_HH

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/block_cipher.hh"

namespace secndp {

class StatGroup;

/** Eviction policy of one ShardedPadCache. */
enum class CachePolicy
{
    Lru, ///< evict the least-recently-used entry
    Lfu, ///< TinyLFU: frequency-sketch admission over LRU eviction
};

/** "lru" / "lfu" (fatal on anything else). */
CachePolicy parseCachePolicy(const std::string &s);
const char *cachePolicyName(CachePolicy p);

/** Construction knobs; capacityBytes == 0 means "no cache". */
struct PadCacheConfig
{
    /** Total budget across shards; entries are 64-byte accounted. */
    std::size_t capacityBytes = 0;
    unsigned shards = 8;
    CachePolicy policy = CachePolicy::Lru;

    bool enabled() const { return capacityBytes > 0; }
};

/**
 * Sharded, thread-safe cache of (chunk address, version) -> pad.
 * See the file comment for the locking and determinism contracts.
 */
class ShardedPadCache
{
  public:
    /** Accounting weight per entry (key + tag + pad + links). */
    static constexpr std::size_t kEntryBytes = 64;

    explicit ShardedPadCache(const PadCacheConfig &cfg);
    ShardedPadCache(const ShardedPadCache &) = delete;
    ShardedPadCache &operator=(const ShardedPadCache &) = delete;

    /**
     * Promoting lookup. Returns true and copies the pad only when an
     * entry for `chunkAddr` exists, carries exactly `version`, and
     * has its pad bytes filled. A version-tag mismatch erases the
     * stale entry, counts a stale_version_reject, and misses.
     */
    bool lookup(std::uint64_t chunkAddr, std::uint64_t version,
                Block128 *pad);

    /** Insert (or refresh) a filled entry; may evict. */
    void insert(std::uint64_t chunkAddr, std::uint64_t version,
                const Block128 &pad);

    /**
     * Metadata-only lookup-or-reserve for deferred pad generation
     * (the src/serve admission pass): a hit promotes and returns
     * true; a miss reserves an *unfilled* entry (running the same
     * admission/eviction policy as insert) and returns false. The
     * reserved entry misses in lookup() until fill() lands.
     */
    bool admit(std::uint64_t chunkAddr, std::uint64_t version);

    /**
     * Payload-only write: set the pad bytes of an entry previously
     * reserved by admit(). No policy mutation, no counters. Returns
     * false when the entry is gone or the version no longer matches
     * (the pad is then simply not cached).
     */
    bool fill(std::uint64_t chunkAddr, std::uint64_t version,
              const Block128 &pad);

    /**
     * Non-promoting read for worker threads: no policy mutation, no
     * counters. Same version-tag and filled checks as lookup(), but
     * a stale entry is left for the owning thread to reap.
     */
    bool peek(std::uint64_t chunkAddr, std::uint64_t version,
              Block128 *pad) const;

    /** Erase one chunk's entry (no-op when absent). */
    void invalidate(std::uint64_t chunkAddr);

    /** Erase every entry with lo <= chunkAddr < hi; returns count. */
    std::size_t invalidateRange(std::uint64_t lo, std::uint64_t hi);

    /** Erase everything (wraparound re-key); returns count. */
    std::size_t invalidateAll();

    /** Exact relaxed-atomic totals since construction. */
    struct Counters
    {
        std::uint64_t lookups = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t insertions = 0;
        std::uint64_t evictions = 0;
        std::uint64_t admissionRejects = 0;
        std::uint64_t invalidations = 0;
        std::uint64_t staleRejects = 0;
    };
    Counters counters() const;

    /** Live entries across all shards (locks each in turn). */
    std::size_t entries() const;
    /** Live entries in one shard. */
    std::size_t shardEntries(unsigned shard) const;

    std::size_t capacityEntries() const { return capacityEntries_; }
    unsigned shardCount() const
    {
        return static_cast<unsigned>(shards_.size());
    }
    /** Shard a chunk address hashes to (tests pin distribution). */
    unsigned shardOf(std::uint64_t chunkAddr) const;

    /** hits / lookups (0 when no lookups yet). */
    double hitRate() const;

    const PadCacheConfig &config() const { return cfg_; }

    /**
     * Publish the cache.* stats group: counters, hit_rate scalar,
     * occupancy/capacity gauges. Call from the group's owning thread
     * at end of run (the SloTracker::publish pattern).
     */
    void publish(StatGroup &g) const;

  private:
    /**
     * TinyLFU-style frequency sketch: 4-row count-min of 4-bit
     * saturating counters with periodic halving, sized to the shard's
     * entry capacity. Guarded by the owning shard's mutex.
     */
    class FreqSketch
    {
      public:
        void init(std::size_t entry_capacity);
        void record(std::uint64_t key);
        unsigned estimate(std::uint64_t key) const;

      private:
        void age();
        std::vector<std::uint8_t> table_;
        std::size_t mask_ = 0;
        std::uint64_t ops_ = 0;
        std::uint64_t sampleLimit_ = 0;
    };

    struct Entry
    {
        std::uint64_t version = 0;
        bool filled = false;
        Block128 pad{};
        /** Position in Shard::recency (front = most recent). */
        std::list<std::uint64_t>::iterator lruIt;
    };

    struct Shard
    {
        mutable std::mutex mu;
        std::unordered_map<std::uint64_t, Entry> map;
        /** Chunk addresses, most-recently-used first. */
        std::list<std::uint64_t> recency;
        FreqSketch sketch;
    };

    /** Under shard lock: place-or-refresh an entry, policy applied. */
    bool emplaceLocked(Shard &s, std::uint64_t chunkAddr,
                       std::uint64_t version, const Block128 *pad);
    void eraseLocked(Shard &s,
                     std::unordered_map<std::uint64_t, Entry>::iterator it);

    PadCacheConfig cfg_;
    std::size_t capacityEntries_ = 0;
    std::size_t shardCapacity_ = 0;
    unsigned shardShift_ = 0;
    std::vector<std::unique_ptr<Shard>> shards_;

    mutable std::atomic<std::uint64_t> lookups_{0};
    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
    mutable std::atomic<std::uint64_t> insertions_{0};
    mutable std::atomic<std::uint64_t> evictions_{0};
    mutable std::atomic<std::uint64_t> admissionRejects_{0};
    mutable std::atomic<std::uint64_t> invalidations_{0};
    mutable std::atomic<std::uint64_t> staleRejects_{0};
};

/**
 * One-entry pad cache for tight scalar streaming loops: the thin
 * adapter that replaced the old CounterModeEncryptor::PadCache. It
 * satisfies the same lookup/insert concept the cached
 * CounterModeEncryptor template APIs use, so there is exactly one
 * caching code path whether the backing store is this register-sized
 * value or the sharded cache above.
 */
class InlinePadCache
{
  public:
    bool lookup(std::uint64_t chunkAddr, std::uint64_t version,
                Block128 *pad)
    {
        if (!valid_ || chunkAddr_ != chunkAddr || version_ != version)
            return false;
        *pad = pad_;
        return true;
    }

    void insert(std::uint64_t chunkAddr, std::uint64_t version,
                const Block128 &pad)
    {
        chunkAddr_ = chunkAddr;
        version_ = version;
        pad_ = pad;
        valid_ = true;
    }

  private:
    std::uint64_t chunkAddr_ = ~std::uint64_t{0};
    std::uint64_t version_ = 0;
    bool valid_ = false;
    Block128 pad_{};
};

} // namespace secndp

#endif // SECNDP_CACHE_PAD_CACHE_HH
