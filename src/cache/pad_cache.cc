#include "cache/pad_cache.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/stats.hh"

namespace secndp {

namespace {

/** splitmix64 finalizer: shard + sketch index hashing. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::size_t
ceilPow2(std::size_t v)
{
    std::size_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

CachePolicy
parseCachePolicy(const std::string &s)
{
    if (s == "lru")
        return CachePolicy::Lru;
    if (s == "lfu")
        return CachePolicy::Lfu;
    fatal("unknown cache policy '%s' (expected lru|lfu)", s.c_str());
}

const char *
cachePolicyName(CachePolicy p)
{
    return p == CachePolicy::Lru ? "lru" : "lfu";
}

void
ShardedPadCache::FreqSketch::init(std::size_t entry_capacity)
{
    const std::size_t width =
        ceilPow2(std::max<std::size_t>(64, entry_capacity * 4));
    table_.assign(width * 4, 0);
    mask_ = width - 1;
    ops_ = 0;
    sampleLimit_ = static_cast<std::uint64_t>(width) * 10;
}

void
ShardedPadCache::FreqSketch::record(std::uint64_t key)
{
    static constexpr std::uint64_t seeds[4] = {
        0xc3a5c85c97cb3127ULL, 0xb492b66fbe98f273ULL,
        0x9ae16a3b2f90404fULL, 0x85ebca6b27d4eb2fULL};
    const std::size_t width = mask_ + 1;
    for (unsigned r = 0; r < 4; ++r) {
        std::uint8_t &c =
            table_[r * width + (mix64(key ^ seeds[r]) & mask_)];
        if (c < 15)
            ++c;
    }
    if (++ops_ >= sampleLimit_)
        age();
}

unsigned
ShardedPadCache::FreqSketch::estimate(std::uint64_t key) const
{
    static constexpr std::uint64_t seeds[4] = {
        0xc3a5c85c97cb3127ULL, 0xb492b66fbe98f273ULL,
        0x9ae16a3b2f90404fULL, 0x85ebca6b27d4eb2fULL};
    const std::size_t width = mask_ + 1;
    unsigned est = 15;
    for (unsigned r = 0; r < 4; ++r) {
        est = std::min<unsigned>(
            est, table_[r * width + (mix64(key ^ seeds[r]) & mask_)]);
    }
    return est;
}

void
ShardedPadCache::FreqSketch::age()
{
    for (auto &c : table_)
        c = static_cast<std::uint8_t>(c >> 1);
    ops_ = 0;
}

ShardedPadCache::ShardedPadCache(const PadCacheConfig &cfg) : cfg_(cfg)
{
    SECNDP_ASSERT(cfg.capacityBytes > 0,
                  "ShardedPadCache constructed with zero capacity");
    capacityEntries_ =
        std::max<std::size_t>(1, cfg.capacityBytes / kEntryBytes);
    std::size_t nshards = ceilPow2(std::max(1u, cfg.shards));
    nshards = std::min<std::size_t>(nshards, 1024);
    // Never hand a shard zero entries of budget.
    while (nshards > 1 && capacityEntries_ / nshards == 0)
        nshards >>= 1;
    shardCapacity_ =
        std::max<std::size_t>(1, capacityEntries_ / nshards);
    shardShift_ = 0;
    while ((std::size_t{1} << shardShift_) < nshards)
        ++shardShift_;
    shards_.reserve(nshards);
    for (std::size_t i = 0; i < nshards; ++i) {
        auto s = std::make_unique<Shard>();
        if (cfg_.policy == CachePolicy::Lfu)
            s->sketch.init(shardCapacity_);
        shards_.push_back(std::move(s));
    }
}

unsigned
ShardedPadCache::shardOf(std::uint64_t chunkAddr) const
{
    return static_cast<unsigned>(
        mix64(chunkAddr >> 4) & (shards_.size() - 1));
}

void
ShardedPadCache::eraseLocked(
    Shard &s, std::unordered_map<std::uint64_t, Entry>::iterator it)
{
    s.recency.erase(it->second.lruIt);
    s.map.erase(it);
}

bool
ShardedPadCache::emplaceLocked(Shard &s, std::uint64_t chunkAddr,
                               std::uint64_t version,
                               const Block128 *pad)
{
    if (s.map.size() >= shardCapacity_) {
        const std::uint64_t victim = s.recency.back();
        if (cfg_.policy == CachePolicy::Lfu &&
            s.sketch.estimate(mix64(chunkAddr)) <=
                s.sketch.estimate(mix64(victim))) {
            // TinyLFU admission: the candidate has not proven itself
            // hotter than the coldest resident -- keep the resident.
            admissionRejects_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        auto vit = s.map.find(victim);
        SECNDP_ASSERT(vit != s.map.end(),
                      "recency list / map out of sync");
        eraseLocked(s, vit);
        evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    s.recency.push_front(chunkAddr);
    Entry e;
    e.version = version;
    e.lruIt = s.recency.begin();
    if (pad != nullptr) {
        e.pad = *pad;
        e.filled = true;
    }
    s.map.emplace(chunkAddr, e);
    insertions_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

bool
ShardedPadCache::lookup(std::uint64_t chunkAddr, std::uint64_t version,
                        Block128 *pad)
{
    Shard &s = *shards_[shardOf(chunkAddr)];
    std::lock_guard<std::mutex> lk(s.mu);
    lookups_.fetch_add(1, std::memory_order_relaxed);
    if (cfg_.policy == CachePolicy::Lfu)
        s.sketch.record(mix64(chunkAddr));
    auto it = s.map.find(chunkAddr);
    if (it == s.map.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    if (it->second.version != version) {
        // Lazy version-safety: the tag check rejects and reaps any
        // entry that outlived its (address, version).
        staleRejects_.fetch_add(1, std::memory_order_relaxed);
        eraseLocked(s, it);
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    if (!it->second.filled) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    s.recency.splice(s.recency.begin(), s.recency, it->second.lruIt);
    hits_.fetch_add(1, std::memory_order_relaxed);
    *pad = it->second.pad;
    return true;
}

bool
ShardedPadCache::admit(std::uint64_t chunkAddr, std::uint64_t version)
{
    Shard &s = *shards_[shardOf(chunkAddr)];
    std::lock_guard<std::mutex> lk(s.mu);
    lookups_.fetch_add(1, std::memory_order_relaxed);
    if (cfg_.policy == CachePolicy::Lfu)
        s.sketch.record(mix64(chunkAddr));
    auto it = s.map.find(chunkAddr);
    if (it != s.map.end()) {
        if (it->second.version == version) {
            s.recency.splice(s.recency.begin(), s.recency,
                             it->second.lruIt);
            hits_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
        staleRejects_.fetch_add(1, std::memory_order_relaxed);
        eraseLocked(s, it);
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    emplaceLocked(s, chunkAddr, version, nullptr);
    return false;
}

void
ShardedPadCache::insert(std::uint64_t chunkAddr, std::uint64_t version,
                        const Block128 &pad)
{
    Shard &s = *shards_[shardOf(chunkAddr)];
    std::lock_guard<std::mutex> lk(s.mu);
    if (cfg_.policy == CachePolicy::Lfu)
        s.sketch.record(mix64(chunkAddr));
    auto it = s.map.find(chunkAddr);
    if (it != s.map.end()) {
        // Refresh in place; a differing version is a bump-by-write
        // and simply overwrites the tag (eager invalidation).
        it->second.version = version;
        it->second.pad = pad;
        it->second.filled = true;
        s.recency.splice(s.recency.begin(), s.recency,
                         it->second.lruIt);
        return;
    }
    emplaceLocked(s, chunkAddr, version, &pad);
}

bool
ShardedPadCache::fill(std::uint64_t chunkAddr, std::uint64_t version,
                      const Block128 &pad)
{
    Shard &s = *shards_[shardOf(chunkAddr)];
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.map.find(chunkAddr);
    if (it == s.map.end() || it->second.version != version)
        return false;
    it->second.pad = pad;
    it->second.filled = true;
    return true;
}

bool
ShardedPadCache::peek(std::uint64_t chunkAddr, std::uint64_t version,
                      Block128 *pad) const
{
    const Shard &s = *shards_[shardOf(chunkAddr)];
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.map.find(chunkAddr);
    if (it == s.map.end() || it->second.version != version ||
        !it->second.filled)
        return false;
    *pad = it->second.pad;
    return true;
}

void
ShardedPadCache::invalidate(std::uint64_t chunkAddr)
{
    Shard &s = *shards_[shardOf(chunkAddr)];
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.map.find(chunkAddr);
    if (it == s.map.end())
        return;
    eraseLocked(s, it);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t
ShardedPadCache::invalidateRange(std::uint64_t lo, std::uint64_t hi)
{
    std::size_t n = 0;
    for (auto &sp : shards_) {
        Shard &s = *sp;
        std::lock_guard<std::mutex> lk(s.mu);
        for (auto it = s.map.begin(); it != s.map.end();) {
            if (it->first >= lo && it->first < hi) {
                auto victim = it++;
                eraseLocked(s, victim);
                ++n;
            } else {
                ++it;
            }
        }
    }
    invalidations_.fetch_add(n, std::memory_order_relaxed);
    return n;
}

std::size_t
ShardedPadCache::invalidateAll()
{
    std::size_t n = 0;
    for (auto &sp : shards_) {
        Shard &s = *sp;
        std::lock_guard<std::mutex> lk(s.mu);
        n += s.map.size();
        s.map.clear();
        s.recency.clear();
    }
    invalidations_.fetch_add(n, std::memory_order_relaxed);
    return n;
}

ShardedPadCache::Counters
ShardedPadCache::counters() const
{
    Counters c;
    c.lookups = lookups_.load(std::memory_order_relaxed);
    c.hits = hits_.load(std::memory_order_relaxed);
    c.misses = misses_.load(std::memory_order_relaxed);
    c.insertions = insertions_.load(std::memory_order_relaxed);
    c.evictions = evictions_.load(std::memory_order_relaxed);
    c.admissionRejects =
        admissionRejects_.load(std::memory_order_relaxed);
    c.invalidations = invalidations_.load(std::memory_order_relaxed);
    c.staleRejects = staleRejects_.load(std::memory_order_relaxed);
    return c;
}

std::size_t
ShardedPadCache::entries() const
{
    std::size_t n = 0;
    for (const auto &sp : shards_) {
        std::lock_guard<std::mutex> lk(sp->mu);
        n += sp->map.size();
    }
    return n;
}

std::size_t
ShardedPadCache::shardEntries(unsigned shard) const
{
    const Shard &s = *shards_.at(shard);
    std::lock_guard<std::mutex> lk(s.mu);
    return s.map.size();
}

double
ShardedPadCache::hitRate() const
{
    const std::uint64_t l = lookups_.load(std::memory_order_relaxed);
    const std::uint64_t h = hits_.load(std::memory_order_relaxed);
    return l ? static_cast<double>(h) / static_cast<double>(l) : 0.0;
}

void
ShardedPadCache::publish(StatGroup &g) const
{
    const Counters c = counters();
    g.counter("lookups") += c.lookups;
    g.counter("hits") += c.hits;
    g.counter("misses") += c.misses;
    g.counter("insertions") += c.insertions;
    g.counter("evictions") += c.evictions;
    g.counter("admission_rejects") += c.admissionRejects;
    g.counter("invalidations") += c.invalidations;
    g.counter("stale_version_rejects") += c.staleRejects;
    g.counter("occupancy_entries") += entries();
    g.counter("capacity_entries") += capacityEntries_;
    g.counter("shards") += shardCount();
    g.scalar("hit_rate") = hitRate();
}

} // namespace secndp
