/**
 * @file
 * Minimal JSON value + recursive-descent parser for the stats-report
 * tooling (`secndp_report`). Parses the full RFC 8259 grammar the
 * simulator emits; not a general-purpose library (no \uXXXX
 * decoding beyond pass-through, numbers are doubles).
 */

#ifndef SECNDP_REPORT_JSON_HH
#define SECNDP_REPORT_JSON_HH

#include <string>
#include <utility>
#include <vector>

namespace secndp::report {

class JsonValue
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    /**
     * Parse one JSON document (trailing garbage is an error). On
     * failure returns false and, when `err` is non-null, stores a
     * message with the byte offset.
     */
    static bool parse(const std::string &text, JsonValue &out,
                      std::string *err = nullptr);

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    bool asBool() const { return bool_; }
    double asNumber() const { return number_; }
    const std::string &asString() const { return string_; }
    const std::vector<JsonValue> &items() const { return items_; }
    /** Object members in file order (duplicates preserved). */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return members_;
    }

    /** First member with this key; nullptr when absent/not object. */
    const JsonValue *find(const std::string &key) const;

    /** numberOr: this->find(key) as a number, or `fallback`. */
    double numberOr(const std::string &key, double fallback) const;

  private:
    Type type_ = Type::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;

    friend class JsonParser;
};

} // namespace secndp::report

#endif // SECNDP_REPORT_JSON_HH
