#include "report/spans.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <limits>
#include <map>
#include <sstream>

#include "report/json.hh"
#include "report/report.hh"

namespace secndp::report {

namespace {

bool
readFile(const std::string &path, std::string &out, std::string *err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (err)
            *err = "cannot open '" + path + "'";
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

bool
hasSuffix(const std::string &s, const std::string &suffix)
{
    return s.size() > suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

} // namespace

bool
parseSpanSet(const std::string &text, SpanSet &out, std::string *err)
{
    JsonValue root;
    if (!JsonValue::parse(text, root, err))
        return false;
    if (!root.isObject()) {
        if (err)
            *err = "span file is not a JSON object";
        return false;
    }
    const JsonValue *schema = root.find("schema");
    if (!schema || !schema->isString() ||
        (schema->asString() != "secndp-spans-v1" &&
         schema->asString() != "secndp-flight-v1")) {
        if (err)
            *err = "not a secndp span/flight file (bad schema)";
        return false;
    }
    const bool flight = schema->asString() == "secndp-flight-v1";

    const JsonValue *spans = root.find("spans");
    if (!spans || !spans->isArray()) {
        if (err)
            *err = "span file has no spans array";
        return false;
    }
    for (const JsonValue &item : spans->items()) {
        if (!item.isObject()) {
            if (err)
                *err = "span entry is not an object";
            return false;
        }
        const JsonValue *kind = item.find("kind");
        if (!kind || !kind->isString()) {
            if (err)
                *err = "span entry has no kind";
            return false;
        }
        SpanRow row;
        row.kind = kind->asString();
        row.seq =
            static_cast<std::uint64_t>(item.numberOr("seq", 0.0));
        row.trace =
            static_cast<std::uint64_t>(item.numberOr("trace", 0.0));
        row.startNs = item.numberOr("start_ns", 0.0);
        row.durNs = item.numberOr("dur_ns", 0.0);
        row.shard =
            static_cast<std::uint32_t>(item.numberOr("shard", 0.0));
        row.aux =
            static_cast<std::uint64_t>(item.numberOr("aux", 0.0));
        out.spans.push_back(std::move(row));
    }

    if (flight) {
        if (const JsonValue *an = root.find("anomaly");
            an && an->isObject()) {
            AnomalyRow row;
            if (const JsonValue *k = an->find("kind");
                k && k->isString())
                row.kind = k->asString();
            row.trace = static_cast<std::uint64_t>(
                an->numberOr("trace", 0.0));
            row.atNs = an->numberOr("at_ns", 0.0);
            out.anomalies.push_back(std::move(row));
        }
        out.dropped += static_cast<std::uint64_t>(
            root.numberOr("dropped", 0.0));
    }
    ++out.files;
    return true;
}

bool
loadSpanSet(const std::string &path, SpanSet &out, std::string *err)
{
    std::string text;
    if (!readFile(path, text, err))
        return false;
    if (!parseSpanSet(text, out, err)) {
        if (err)
            *err = path + ": " + *err;
        return false;
    }
    return true;
}

bool
loadSpanOperand(const std::string &path, SpanSet &out,
                std::string *err)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    std::vector<std::string> files;
    if (fs::is_directory(path, ec)) {
        for (const auto &entry : fs::directory_iterator(path, ec)) {
            if (!entry.is_regular_file())
                continue;
            const std::string name =
                entry.path().filename().string();
            if (hasSuffix(name, ".spans.json") ||
                hasSuffix(name, ".flight.json"))
                files.push_back(entry.path().string());
        }
        if (ec) {
            if (err)
                *err = "cannot list '" + path + "': " + ec.message();
            return false;
        }
        if (files.empty()) {
            if (err)
                *err = "no *.spans.json or *.flight.json in '" +
                       path + "'";
            return false;
        }
        std::sort(files.begin(), files.end());
    } else {
        files.push_back(path);
    }
    for (const auto &file : files) {
        if (!loadSpanSet(file, out, err))
            return false;
    }
    std::stable_sort(out.spans.begin(), out.spans.end(),
                     [](const SpanRow &a, const SpanRow &b) {
                         return a.seq < b.seq;
                     });
    return true;
}

namespace {

/** p in [0,1] over an already-sorted vector, linear interpolation. */
double
sortedPercentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const double idx = p * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

std::string
fmtNs(double v)
{
    char buf[48];
    if (v == std::floor(v) && std::abs(v) < 1e15)
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    else
        std::snprintf(buf, sizeof(buf), "%.4g", v);
    return buf;
}

/** Phases that sum to the span-derived end-to-end latency. */
constexpr const char *additivePhases[] = {"queue_wait", "sim_drain",
                                          "retry", "host_fallback"};
/** Engine windows inside sim_drain (informational, not additive). */
constexpr const char *overlayPhases[] = {"otp_gen", "verify"};

struct PerTrace
{
    double additive[4] = {};
    double overlay[2] = {};
    bool hasQueueWait = false;
    bool hasDrain = false;
    bool terminal = false; ///< shed or aborted
};

} // namespace

bool
printExplain(std::ostream &os, const SpanSet &set,
             const StatsReport *stats)
{
    std::map<std::uint64_t, PerTrace> traces;
    for (const SpanRow &s : set.spans) {
        PerTrace &t = traces[s.trace];
        if (s.kind == "shed" || s.kind == "abort") {
            t.terminal = true;
            continue;
        }
        for (std::size_t k = 0; k < std::size(additivePhases); ++k) {
            if (s.kind == additivePhases[k]) {
                t.additive[k] += s.durNs;
                if (k == 0)
                    t.hasQueueWait = true;
                else if (k == 1)
                    t.hasDrain = true;
            }
        }
        for (std::size_t k = 0; k < std::size(overlayPhases); ++k) {
            if (s.kind == overlayPhases[k])
                t.overlay[k] += s.durNs;
        }
    }

    // A request is attributable when its full additive chain is
    // present (flight dumps truncate: the ring may have evicted a
    // request's queue_wait but kept its drain).
    struct Complete
    {
        std::uint64_t trace;
        const PerTrace *t;
        double latency;
    };
    std::vector<Complete> complete;
    std::size_t terminal = 0, partial = 0;
    for (const auto &kv : traces) {
        if (kv.second.terminal) {
            ++terminal;
            continue;
        }
        if (!kv.second.hasQueueWait || !kv.second.hasDrain) {
            ++partial;
            continue;
        }
        double lat = 0.0;
        for (double d : kv.second.additive)
            lat += d;
        complete.push_back({kv.first, &kv.second, lat});
    }

    os << "== explain: " << set.spans.size() << " span(s) from "
       << set.files << " file(s), " << traces.size() << " trace(s): "
       << complete.size() << " complete, " << terminal
       << " shed/aborted, " << partial << " partial";
    if (set.dropped > 0)
        os << ", " << set.dropped << " span(s) dropped by the ring";
    os << " ==\n";
    for (const AnomalyRow &a : set.anomalies) {
        os << "  anomaly: " << a.kind << " trace=" << a.trace
           << " at " << fmtNs(a.atNs) << " ns\n";
    }
    if (complete.empty()) {
        os << "  no complete request to attribute (need queue_wait + "
              "sim_drain spans)\n";
        return false;
    }

    std::vector<double> lat;
    lat.reserve(complete.size());
    double lat_sum = 0.0;
    for (const auto &c : complete) {
        lat.push_back(c.latency);
        lat_sum += c.latency;
    }
    std::sort(lat.begin(), lat.end());
    const double p50 = sortedPercentile(lat, 0.50);
    const double p95 = sortedPercentile(lat, 0.95);
    const double p99 = sortedPercentile(lat, 0.99);

    // Per-phase duration distribution across complete requests.
    char head[192];
    std::snprintf(head, sizeof(head),
                  "  %-22s %10s %10s %10s %10s %7s\n", "phase (ns)",
                  "p50", "p95", "p99", "mean", "share%");
    os << head;
    const auto phaseRow = [&](const char *name, bool overlay,
                              auto getter) {
        std::vector<double> durs;
        durs.reserve(complete.size());
        double sum = 0.0;
        for (const auto &c : complete) {
            durs.push_back(getter(*c.t));
            sum += durs.back();
        }
        std::sort(durs.begin(), durs.end());
        char line[224];
        std::snprintf(line, sizeof(line),
                      "  %-22s %10s %10s %10s %10s %6.1f%%\n",
                      (std::string(name) + (overlay ? " ^" : ""))
                          .c_str(),
                      fmtNs(sortedPercentile(durs, 0.50)).c_str(),
                      fmtNs(sortedPercentile(durs, 0.95)).c_str(),
                      fmtNs(sortedPercentile(durs, 0.99)).c_str(),
                      fmtNs(sum / durs.size()).c_str(),
                      lat_sum > 0.0 ? sum / lat_sum * 100.0 : 0.0);
        os << line;
    };
    for (std::size_t k = 0; k < std::size(additivePhases); ++k) {
        phaseRow(additivePhases[k], false,
                 [k](const PerTrace &t) { return t.additive[k]; });
    }
    for (std::size_t k = 0; k < std::size(overlayPhases); ++k) {
        phaseRow(overlayPhases[k], true,
                 [k](const PerTrace &t) { return t.overlay[k]; });
    }
    os << "  (^ overlays sim_drain: engine window, not additive)\n";

    // Latency cohorts: who pays the tail, and which phase dominates.
    std::snprintf(head, sizeof(head),
                  "  %-12s %8s %12s %16s %14s\n", "cohort", "reqs",
                  "mean_lat", "dominant_phase", "exemplar");
    os << head;
    struct Cohort
    {
        const char *name;
        double lo, hi; ///< (lo, hi]
    };
    const double inf = std::numeric_limits<double>::infinity();
    const Cohort cohorts[] = {{"<=p50", -inf, p50},
                              {"(p50,p95]", p50, p95},
                              {"(p95,p99]", p95, p99},
                              {">p99", p99, inf}};
    for (const Cohort &co : cohorts) {
        double sums[std::size(additivePhases)] = {};
        double lat_acc = 0.0, worst = -inf;
        std::size_t n = 0;
        std::uint64_t exemplar = 0;
        for (const auto &c : complete) {
            if (c.latency <= co.lo || c.latency > co.hi)
                continue;
            ++n;
            lat_acc += c.latency;
            for (std::size_t k = 0; k < std::size(additivePhases);
                 ++k)
                sums[k] += c.t->additive[k];
            if (c.latency > worst) {
                worst = c.latency;
                exemplar = c.trace;
            }
        }
        char line[224];
        if (n == 0) {
            std::snprintf(line, sizeof(line),
                          "  %-12s %8s %12s %16s %14s\n", co.name,
                          "0", "-", "-", "-");
            os << line;
            continue;
        }
        std::size_t dom = 0;
        for (std::size_t k = 1; k < std::size(additivePhases); ++k)
            if (sums[k] > sums[dom])
                dom = k;
        char ex[32];
        std::snprintf(ex, sizeof(ex), "trace %llu",
                      static_cast<unsigned long long>(exemplar));
        std::snprintf(line, sizeof(line),
                      "  %-12s %8zu %12s %16s %14s\n", co.name, n,
                      fmtNs(lat_acc / n).c_str(), additivePhases[dom],
                      ex);
        os << line;
    }

    // Cross-check the span-derived percentiles against the sidecar
    // histogram: spans are exact, the log2 histogram interpolates, so
    // they should agree to within a bucket.
    char line[224];
    std::snprintf(line, sizeof(line),
                  "  span-derived latency: p50 %s  p95 %s  p99 %s\n",
                  fmtNs(p50).c_str(), fmtNs(p95).c_str(),
                  fmtNs(p99).c_str());
    os << line;
    if (stats) {
        const auto side = [&](const char *f) -> std::string {
            auto it =
                stats->metrics.find(std::string("serve.latency_ns.") +
                                    f);
            return it == stats->metrics.end() ? "-"
                                              : fmtNs(it->second);
        };
        std::snprintf(line, sizeof(line),
                      "  sidecar  latency_ns:  p50 %s  p95 %s  p99 %s"
                      "  (count %s)\n",
                      side("p50").c_str(), side("p95").c_str(),
                      side("p99").c_str(), side("count").c_str());
        os << line;
    }
    return true;
}

} // namespace secndp::report
