#include "report/report.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "report/json.hh"

namespace secndp::report {

namespace {

/** Meta keys that legitimately differ between comparable runs. */
bool
metaKeyIgnored(const std::string &key)
{
    return key == "git";
}

bool
readFile(const std::string &path, std::string &out, std::string *err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (err)
            *err = "cannot open '" + path + "'";
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

void
flattenGroup(const std::string &group, const JsonValue &stats,
             std::map<std::string, double> &metrics)
{
    for (const auto &kv : stats.members()) {
        const std::string base = group + "." + kv.first;
        if (kv.second.isNumber()) {
            metrics[base] = kv.second.asNumber();
        } else if (kv.second.isObject()) {
            // Distribution/histogram: one metric per numeric field.
            for (const auto &fld : kv.second.members()) {
                if (fld.second.isNumber())
                    metrics[base + "." + fld.first] =
                        fld.second.asNumber();
            }
        }
    }
}

} // namespace

bool
parseStatsReport(const std::string &text, const std::string &name,
                 StatsReport &out, std::string *err)
{
    out = StatsReport();
    out.name = name;
    JsonValue root;
    if (!JsonValue::parse(text, root, err))
        return false;
    if (!root.isObject()) {
        if (err)
            *err = "report is not a JSON object";
        return false;
    }

    const JsonValue *ver = root.find("schema_version");
    const JsonValue *groups = root.find("groups");
    if (ver && ver->isNumber() && groups && groups->isObject()) {
        out.schemaVersion = static_cast<int>(ver->asNumber());
        if (const JsonValue *meta = root.find("meta");
            meta && meta->isObject()) {
            for (const auto &kv : meta->members())
                if (kv.second.isString())
                    out.meta[kv.first] = kv.second.asString();
        }
        for (const auto &kv : groups->members())
            if (kv.second.isObject())
                flattenGroup(kv.first, kv.second, out.metrics);
    } else {
        // PR-1 layout: the root object IS the group map.
        out.schemaVersion = 1;
        for (const auto &kv : root.members())
            if (kv.second.isObject())
                flattenGroup(kv.first, kv.second, out.metrics);
    }
    return true;
}

bool
loadStatsReport(const std::string &path, StatsReport &out,
                std::string *err)
{
    std::string text;
    if (!readFile(path, text, err))
        return false;
    std::string stem = std::filesystem::path(path).filename().string();
    // Strip the ".stats.json" (or plain ".json") suffix.
    for (const char *suffix : {".stats.json", ".json"}) {
        const std::size_t n = std::string(suffix).size();
        if (stem.size() > n &&
            stem.compare(stem.size() - n, n, suffix) == 0) {
            stem.resize(stem.size() - n);
            break;
        }
    }
    if (!parseStatsReport(text, stem, out, err)) {
        if (err)
            *err = path + ": " + *err;
        return false;
    }
    return true;
}

bool
globMatch(const std::string &pattern, const std::string &name)
{
    // Iterative `*`-glob with backtracking.
    std::size_t p = 0, n = 0;
    std::size_t star = std::string::npos, mark = 0;
    while (n < name.size()) {
        if (p < pattern.size() &&
            (pattern[p] == name[n] || pattern[p] == '?')) {
            ++p;
            ++n;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            mark = n;
        } else if (star != std::string::npos) {
            p = star + 1;
            n = ++mark;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

bool
parseWatchRules(std::istream &in, std::vector<WatchRule> &out,
                std::string *err)
{
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream fields(line);
        WatchRule rule;
        std::string direction;
        if (!(fields >> rule.pattern))
            continue; // blank/comment line
        if (!(fields >> rule.maxRegressPct) ||
            rule.maxRegressPct < 0.0) {
            if (err)
                *err = "line " + std::to_string(lineno) +
                       ": expected 'pattern pct [direction]'";
            return false;
        }
        if (fields >> direction) {
            if (direction == "up_is_bad") {
                rule.upIsBad = true;
            } else if (direction == "down_is_bad") {
                rule.upIsBad = false;
            } else {
                if (err)
                    *err = "line " + std::to_string(lineno) +
                           ": unknown direction '" + direction + "'";
                return false;
            }
        }
        out.push_back(std::move(rule));
    }
    return true;
}

bool
loadWatchRules(const std::string &path, std::vector<WatchRule> &out,
               std::string *err)
{
    std::ifstream in(path);
    if (!in) {
        if (err)
            *err = "cannot open thresholds file '" + path + "'";
        return false;
    }
    return parseWatchRules(in, out, err);
}

DiffResult
diffReports(const StatsReport &base, const StatsReport &cur,
            const std::vector<WatchRule> &rules)
{
    DiffResult result;

    if (base.schemaVersion != cur.schemaVersion) {
        result.problems.push_back(
            "schema mismatch: baseline v" +
            std::to_string(base.schemaVersion) + " vs run v" +
            std::to_string(cur.schemaVersion) +
            " (stale baseline? regenerate bench/baselines)");
    }
    // Unlike runs must not be silently compared: every meta key
    // present on either side has to agree (modulo the ignore set).
    for (const auto &kv : base.meta) {
        if (metaKeyIgnored(kv.first))
            continue;
        auto it = cur.meta.find(kv.first);
        const std::string curval =
            it == cur.meta.end() ? "<absent>" : it->second;
        if (curval != kv.second) {
            result.problems.push_back(
                "meta mismatch: " + kv.first + " baseline '" +
                kv.second + "' vs run '" + curval + "'");
        }
    }
    for (const auto &kv : cur.meta) {
        if (!metaKeyIgnored(kv.first) && !base.meta.count(kv.first)) {
            result.problems.push_back("meta mismatch: " + kv.first +
                                      " baseline '<absent>' vs run '" +
                                      kv.second + "'");
        }
    }

    const double eps = 1e-9;
    for (const auto &kv : base.metrics) {
        const WatchRule *rule = nullptr;
        for (const auto &r : rules) {
            if (globMatch(r.pattern, kv.first)) {
                rule = &r;
                break;
            }
        }
        if (!rule)
            continue;

        MetricDelta d;
        d.metric = kv.first;
        d.base = kv.second;
        d.watched = true;

        auto it = cur.metrics.find(kv.first);
        if (it == cur.metrics.end()) {
            result.problems.push_back("watched metric missing from "
                                      "run: " +
                                      kv.first);
            continue;
        }
        d.cur = it->second;
        d.deltaPct = d.base != 0.0
                         ? (d.cur - d.base) / std::abs(d.base) * 100.0
                         : 0.0;
        const double slack = rule->maxRegressPct / 100.0;
        if (rule->upIsBad) {
            d.regressed =
                d.cur > d.base + std::abs(d.base) * slack + eps;
        } else {
            d.regressed =
                d.cur < d.base - std::abs(d.base) * slack - eps;
        }
        // base == 0: any appearance (up_is_bad) / disappearance is
        // already covered by the formulas above via the eps term.
        result.regressions += d.regressed;
        result.watched.push_back(std::move(d));
    }
    return result;
}

namespace {

std::string
fmtNum(double v)
{
    char buf[48];
    if (v == std::floor(v) && std::abs(v) < 1e15)
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    else
        std::snprintf(buf, sizeof(buf), "%.4g", v);
    return buf;
}

bool
hasSuffix(const std::string &s, const std::string &suffix)
{
    return s.size() > suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

/** Strip a known stat-object field suffix; empty when none. */
std::string
objectPrefix(const std::string &metric)
{
    for (const char *f :
         {".count", ".min", ".max", ".mean", ".p50", ".p95", ".p99"}) {
        if (hasSuffix(metric, f))
            return metric.substr(0, metric.size() -
                                        std::string(f).size());
    }
    return std::string();
}

} // namespace

void
printSummary(std::ostream &os, const StatsReport &r)
{
    os << "== " << r.name << " (schema v" << r.schemaVersion << ") ==\n";
    if (!r.meta.empty()) {
        os << "  ";
        bool first = true;
        for (const auto &kv : r.meta) {
            if (!first)
                os << " ";
            first = false;
            os << kv.first << "=" << kv.second;
        }
        os << "\n";
    }

    // Partition the flat metric map back into scalars, stat objects
    // (dist/histo prefixes), host phases, and the adversary/detection
    // groups (surfaced as their own section so attack runs read at a
    // glance).
    std::vector<std::pair<std::string, double>> scalars;
    std::vector<std::pair<std::string, double>> integrity;
    std::vector<std::pair<std::string, double>> crypto;
    std::map<std::string, double> cache;   // suffix -> value
    std::map<std::string, double> scaling; // suffix -> value
    std::map<std::string, bool> objects;   // prefix -> has p50
    std::vector<std::pair<std::string, double>> phases;
    const auto isIntegrity = [](const std::string &name) {
        return name.rfind("faults.", 0) == 0 ||
               name.rfind("verify.", 0) == 0 ||
               name.rfind("redteam.", 0) == 0;
    };
    const auto isCrypto = [](const std::string &name) {
        return name.rfind("crypto.", 0) == 0;
    };
    for (const auto &kv : r.metrics) {
        if (kv.first.rfind("host_phases.", 0) == 0) {
            if (hasSuffix(kv.first, "_ms"))
                phases.push_back(kv);
            continue;
        }
        if (kv.first.rfind("cache.", 0) == 0) {
            cache[kv.first.substr(6)] = kv.second;
            continue;
        }
        if (kv.first.rfind("scaling.", 0) == 0) {
            scaling[kv.first.substr(8)] = kv.second;
            continue;
        }
        const std::string prefix = objectPrefix(kv.first);
        if (prefix.empty()) {
            if (isIntegrity(kv.first))
                integrity.push_back(kv);
            else if (isCrypto(kv.first))
                crypto.push_back(kv);
            else
                scalars.push_back(kv);
        }
        else if (hasSuffix(kv.first, ".p50"))
            objects[prefix] = true;
        else
            objects.emplace(prefix, false);
    }

    if (!scalars.empty()) {
        os << "  counters/scalars\n";
        for (const auto &kv : scalars) {
            char line[128];
            std::snprintf(line, sizeof(line), "    %-36s %14s\n",
                          kv.first.c_str(), fmtNum(kv.second).c_str());
            os << line;
        }
    }
    // Trusted-side pad cache: one line when the run published a
    // cache.* group, silent otherwise (cache-off runs carry none).
    if (!cache.empty()) {
        const auto get = [&](const char *k) {
            auto it = cache.find(k);
            return it == cache.end() ? 0.0 : it->second;
        };
        char line[256];
        std::snprintf(line, sizeof(line),
                      "  pad cache: hit rate %.3f (%s/%s lookups), "
                      "%s evictions, %s stale-version rejects, "
                      "%s invalidations\n",
                      get("hit_rate"), fmtNum(get("hits")).c_str(),
                      fmtNum(get("lookups")).c_str(),
                      fmtNum(get("evictions")).c_str(),
                      fmtNum(get("stale_version_rejects")).c_str(),
                      fmtNum(get("invalidations")).c_str());
        os << line;
    }
    // Device-generation scaling sweep: one line when the run
    // published a scaling.* group (bench_scaling_sweep), silent
    // otherwise.
    if (!scaling.empty()) {
        std::size_t cells = 0;
        for (const auto &kv : scaling)
            if (kv.first.rfind("qps_", 0) == 0)
                ++cells;
        const auto best = r.meta.find("scaling_best");
        const auto sp = scaling.find("speedup_ddr5_pch_vs_ddr4");
        char line[256];
        if (sp != scaling.end()) {
            std::snprintf(line, sizeof(line),
                          "  scaling: %zu cell(s), best %s, "
                          "ddr5-pch vs ddr4 %.2fx\n",
                          cells,
                          best != r.meta.end() ? best->second.c_str()
                                               : "?",
                          sp->second);
        } else {
            std::snprintf(line, sizeof(line),
                          "  scaling: %zu cell(s), best %s\n", cells,
                          best != r.meta.end() ? best->second.c_str()
                                               : "?");
        }
        os << line;
    }
    if (!integrity.empty()) {
        os << "  integrity (fault injection / verification)\n";
        for (const auto &kv : integrity) {
            char line[128];
            std::snprintf(line, sizeof(line), "    %-36s %14s\n",
                          kv.first.c_str(), fmtNum(kv.second).c_str());
            os << line;
        }
    }
    if (!crypto.empty()) {
        os << "  crypto kernels (host)\n";
        for (const auto &kv : crypto) {
            char line[128];
            std::snprintf(line, sizeof(line), "    %-36s %14s\n",
                          kv.first.c_str(), fmtNum(kv.second).c_str());
            os << line;
        }
    }
    if (!objects.empty()) {
        char head[160];
        std::snprintf(head, sizeof(head),
                      "  %-38s %10s %10s %10s %10s %10s %10s\n",
                      "distributions", "count", "mean", "p50", "p95",
                      "p99", "max");
        os << head;
        for (const auto &kv : objects) {
            auto field = [&](const char *f) {
                auto it = r.metrics.find(kv.first + "." + f);
                return it == r.metrics.end() ? std::string("-")
                                             : fmtNum(it->second);
            };
            char line[256];
            std::snprintf(line, sizeof(line),
                          "    %-36s %10s %10s %10s %10s %10s %10s\n",
                          kv.first.c_str(), field("count").c_str(),
                          field("mean").c_str(), field("p50").c_str(),
                          field("p95").c_str(), field("p99").c_str(),
                          field("max").c_str());
            os << line;
        }
    }
    if (!phases.empty()) {
        os << "  host phases (wall ms)\n";
        for (const auto &kv : phases) {
            const std::string name = kv.first.substr(
                std::string("host_phases.").size(),
                kv.first.size() - std::string("host_phases.").size() -
                    3);
            auto calls =
                r.metrics.find("host_phases." + name + "_calls");
            char line[160];
            std::snprintf(
                line, sizeof(line), "    %-36s %10.3f  (%s calls)\n",
                name.c_str(), kv.second,
                calls == r.metrics.end()
                    ? "?"
                    : fmtNum(calls->second).c_str());
            os << line;
        }
    }
}

void
printDiff(std::ostream &os, const std::string &name,
          const DiffResult &d)
{
    os << "== " << name << ": " << d.watched.size()
       << " watched metric(s), " << d.regressions << " regression(s)";
    if (!d.problems.empty())
        os << ", " << d.problems.size() << " problem(s)";
    os << " ==\n";
    for (const auto &p : d.problems)
        os << "  PROBLEM: " << p << "\n";
    if (!d.watched.empty()) {
        char head[160];
        std::snprintf(head, sizeof(head), "  %-38s %12s %12s %9s\n",
                      "metric", "baseline", "run", "delta");
        os << head;
    }
    for (const auto &m : d.watched) {
        char line[256];
        std::snprintf(line, sizeof(line),
                      "  %-38s %12s %12s %+8.2f%%%s\n",
                      m.metric.c_str(), fmtNum(m.base).c_str(),
                      fmtNum(m.cur).c_str(), m.deltaPct,
                      m.regressed ? "  << REGRESSED" : "");
        os << line;
    }
}

int
diffDirectories(std::ostream &os, const std::string &baseline_dir,
                const std::string &run_dir,
                const std::string &thresholds_path)
{
    namespace fs = std::filesystem;
    std::string err;

    const std::string thresholds =
        thresholds_path.empty()
            ? (fs::path(baseline_dir) / "thresholds.tsv").string()
            : thresholds_path;
    std::vector<WatchRule> rules;
    if (!loadWatchRules(thresholds, rules, &err)) {
        os << "error: " << err << "\n";
        return 3;
    }

    std::error_code ec;
    std::vector<fs::path> baselines;
    for (const auto &entry :
         fs::directory_iterator(baseline_dir, ec)) {
        if (entry.is_regular_file() &&
            hasSuffix(entry.path().filename().string(),
                      ".stats.json"))
            baselines.push_back(entry.path());
    }
    if (ec) {
        os << "error: cannot list '" << baseline_dir
           << "': " << ec.message() << "\n";
        return 3;
    }
    if (baselines.empty()) {
        os << "error: no *.stats.json baselines in '" << baseline_dir
           << "'\n";
        return 3;
    }
    std::sort(baselines.begin(), baselines.end());

    bool io_error = false;
    bool regressed = false;
    for (const auto &basefile : baselines) {
        StatsReport base, cur;
        if (!loadStatsReport(basefile.string(), base, &err)) {
            os << "error: " << err << "\n";
            io_error = true;
            continue;
        }
        const fs::path runfile =
            fs::path(run_dir) / basefile.filename();
        if (!loadStatsReport(runfile.string(), cur, &err)) {
            os << "error: " << err << " (baseline "
               << basefile.filename().string()
               << " has no counterpart in run dir?)\n";
            io_error = true;
            continue;
        }
        const DiffResult d = diffReports(base, cur, rules);
        printDiff(os, base.name, d);
        regressed |= d.failed();
    }
    if (io_error)
        return 3;
    if (regressed) {
        os << "FAIL: performance gate\n";
        return 1;
    }
    os << "OK: all watched metrics within thresholds\n";
    return 0;
}

} // namespace secndp::report
