#include "report/json.hh"

#include <cctype>
#include <cstdlib>

namespace secndp::report {

class JsonParser
{
  public:
    JsonParser(const std::string &s, std::string *err)
        : s_(s), err_(err)
    {
    }

    bool run(JsonValue &out)
    {
        ws();
        if (!value(out))
            return false;
        ws();
        if (pos_ != s_.size())
            return fail("trailing characters");
        return true;
    }

  private:
    /**
     * Recursion guard: value() self-recurses once per container
     * level, so adversarial input like 100k '[' characters would
     * otherwise overflow the stack. Real sidecars nest 3-4 deep.
     */
    static constexpr unsigned maxDepth = 64;

    const std::string &s_;
    std::string *err_;
    std::size_t pos_ = 0;
    unsigned depth_ = 0;

    bool fail(const char *what)
    {
        if (err_) {
            *err_ = std::string(what) + " at offset " +
                    std::to_string(pos_);
        }
        return false;
    }

    int peek() const
    {
        return pos_ < s_.size()
                   ? static_cast<unsigned char>(s_[pos_])
                   : -1;
    }
    bool eat(char c)
    {
        if (peek() != c)
            return false;
        ++pos_;
        return true;
    }
    void ws()
    {
        while (peek() == ' ' || peek() == '\n' || peek() == '\t' ||
               peek() == '\r')
            ++pos_;
    }

    bool literal(const char *lit)
    {
        const std::size_t n = std::char_traits<char>::length(lit);
        if (s_.compare(pos_, n, lit) != 0)
            return fail("bad literal");
        pos_ += n;
        return true;
    }

    bool string(std::string &out)
    {
        if (!eat('"'))
            return fail("expected string");
        out.clear();
        while (peek() != '"') {
            if (peek() < 0)
                return fail("unterminated string");
            if (eat('\\')) {
                switch (peek()) {
                  case '"': out += '"'; ++pos_; break;
                  case '\\': out += '\\'; ++pos_; break;
                  case '/': out += '/'; ++pos_; break;
                  case 'b': out += '\b'; ++pos_; break;
                  case 'f': out += '\f'; ++pos_; break;
                  case 'n': out += '\n'; ++pos_; break;
                  case 'r': out += '\r'; ++pos_; break;
                  case 't': out += '\t'; ++pos_; break;
                  case 'u': {
                    ++pos_;
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const int c = peek();
                        if (!std::isxdigit(c))
                            return fail("bad \\u escape");
                        code = code * 16 +
                               (std::isdigit(c)
                                    ? c - '0'
                                    : std::tolower(c) - 'a' + 10);
                        ++pos_;
                    }
                    // ASCII only; anything else becomes '?' (the
                    // simulator never emits non-ASCII keys).
                    out += code < 0x80 ? static_cast<char>(code) : '?';
                    break;
                  }
                  default: return fail("bad escape");
                }
            } else {
                out += s_[pos_++];
            }
        }
        ++pos_; // closing quote
        return true;
    }

    bool number(double &out)
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (!std::isdigit(peek()))
            return fail("expected number");
        while (std::isdigit(peek()))
            ++pos_;
        if (eat('.')) {
            if (!std::isdigit(peek()))
                return fail("bad fraction");
            while (std::isdigit(peek()))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!std::isdigit(peek()))
                return fail("bad exponent");
            while (std::isdigit(peek()))
                ++pos_;
        }
        out = std::strtod(s_.c_str() + start, nullptr);
        return true;
    }

    bool value(JsonValue &out)
    {
        switch (peek()) {
          case '{': {
            if (++depth_ > maxDepth)
                return fail("nesting too deep");
            out.type_ = JsonValue::Type::Object;
            ++pos_;
            ws();
            if (eat('}')) {
                --depth_;
                return true;
            }
            do {
                ws();
                std::string key;
                if (!string(key))
                    return false;
                ws();
                if (!eat(':'))
                    return fail("expected ':'");
                ws();
                JsonValue v;
                if (!value(v))
                    return false;
                out.members_.emplace_back(std::move(key),
                                          std::move(v));
                ws();
            } while (eat(','));
            if (!eat('}'))
                return fail("expected '}'");
            --depth_;
            return true;
          }
          case '[': {
            if (++depth_ > maxDepth)
                return fail("nesting too deep");
            out.type_ = JsonValue::Type::Array;
            ++pos_;
            ws();
            if (eat(']')) {
                --depth_;
                return true;
            }
            do {
                ws();
                JsonValue v;
                if (!value(v))
                    return false;
                out.items_.push_back(std::move(v));
                ws();
            } while (eat(','));
            if (!eat(']'))
                return fail("expected ']'");
            --depth_;
            return true;
          }
          case '"':
            out.type_ = JsonValue::Type::String;
            return string(out.string_);
          case 't':
            out.type_ = JsonValue::Type::Bool;
            out.bool_ = true;
            return literal("true");
          case 'f':
            out.type_ = JsonValue::Type::Bool;
            out.bool_ = false;
            return literal("false");
          case 'n':
            out.type_ = JsonValue::Type::Null;
            return literal("null");
          default:
            out.type_ = JsonValue::Type::Number;
            return number(out.number_);
        }
    }
};

bool
JsonValue::parse(const std::string &text, JsonValue &out,
                 std::string *err)
{
    out = JsonValue();
    return JsonParser(text, err).run(out);
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &kv : members_) {
        if (kv.first == key)
            return &kv.second;
    }
    return nullptr;
}

double
JsonValue::numberOr(const std::string &key, double fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isNumber() ? v->asNumber() : fallback;
}

} // namespace secndp::report
