/**
 * @file
 * Analysis layer over the stats-report sidecars: load `.stats.json`
 * files, flatten them to `group.stat[.field]` metric maps, render
 * summary tables, and diff a run directory against a baseline
 * directory under per-metric watch rules -- the engine behind the
 * `secndp_report` CLI and the CI perf-regression gate.
 *
 * Watch rules ("thresholds file") are one rule per line:
 *
 *   # metric-glob        max-regression-%  [direction]
 *   ndp.packet_latency.p95   5             up_is_bad
 *   ndp.lines                0.0           down_is_bad
 *
 * `*` in the glob matches any run of characters. Direction defaults
 * to up_is_bad (latency-like). A metric matching several rules uses
 * the first matching line. A watched metric missing from the current
 * run counts as a regression (the signal disappeared).
 */

#ifndef SECNDP_REPORT_REPORT_HH
#define SECNDP_REPORT_REPORT_HH

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace secndp::report {

class JsonValue;

/** One parsed .stats.json sidecar, flattened. */
struct StatsReport
{
    std::string name;       ///< file stem, e.g. "sls_enc"
    int schemaVersion = 0;  ///< 1 when the file has no version field
    std::map<std::string, std::string> meta;
    /** `group.stat` for plain numbers; `group.stat.p95` etc. for
     *  distribution/histogram fields. */
    std::map<std::string, double> metrics;
};

/** Parse report text (the file's contents). */
bool parseStatsReport(const std::string &text, const std::string &name,
                      StatsReport &out, std::string *err = nullptr);

/** Load and parse one sidecar file. */
bool loadStatsReport(const std::string &path, StatsReport &out,
                     std::string *err = nullptr);

/** `*`-glob match (anchored both ends). */
bool globMatch(const std::string &pattern, const std::string &name);

/** One line of the thresholds file. */
struct WatchRule
{
    std::string pattern;
    double maxRegressPct = 0.0;
    bool upIsBad = true;
};

bool parseWatchRules(std::istream &in, std::vector<WatchRule> &out,
                     std::string *err = nullptr);
bool loadWatchRules(const std::string &path,
                    std::vector<WatchRule> &out,
                    std::string *err = nullptr);

/** Comparison of one metric between baseline and current run. */
struct MetricDelta
{
    std::string metric;
    double base = 0.0;
    double cur = 0.0;
    double deltaPct = 0.0; ///< +/- percent vs base (0 when base==0)
    bool watched = false;
    bool regressed = false;
};

struct DiffResult
{
    std::vector<MetricDelta> watched; ///< every watched metric
    /** Hard failures: schema/meta mismatch, missing metrics. */
    std::vector<std::string> problems;
    std::size_t regressions = 0;

    bool failed() const
    {
        return regressions > 0 || !problems.empty();
    }
};

/** Diff two parsed reports under the watch rules. */
DiffResult diffReports(const StatsReport &base, const StatsReport &cur,
                       const std::vector<WatchRule> &rules);

/** Human-readable per-report summary table. */
void printSummary(std::ostream &os, const StatsReport &r);

/** Human-readable diff table (one report pair). */
void printDiff(std::ostream &os, const std::string &name,
               const DiffResult &d);

/**
 * Gate driver: diff every `*.stats.json` in `baseline_dir` against
 * its same-named counterpart in `run_dir`, using
 * `thresholds_path` (empty -> `<baseline_dir>/thresholds.tsv`).
 * Prints tables/problems to `os`. Returns the process exit code:
 * 0 clean, 1 regression/mismatch, 3 I/O or parse error.
 */
int diffDirectories(std::ostream &os, const std::string &baseline_dir,
                    const std::string &run_dir,
                    const std::string &thresholds_path);

} // namespace secndp::report

#endif // SECNDP_REPORT_REPORT_HH
