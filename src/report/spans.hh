/**
 * @file
 * Span-log / flight-dump loading and the `secndp_report explain`
 * tail-latency attribution engine.
 *
 * Input files are the request tracer's two schemas (see
 * common/request_trace.hh): "secndp-spans-v1" full span logs and
 * "secndp-flight-v1" anomaly dumps. A span operand may be a single
 * file or a directory, in which case every `*.spans.json` and
 * `*.flight.json` inside is merged (non-recursive).
 *
 * Kinds are kept as strings here on purpose: the report library
 * layers below src/common and must not depend on the tracer's enums.
 * Phase math recognizes the serving-layer vocabulary (`queue_wait`,
 * `sim_drain`, `retry`, `host_fallback` are additive; `otp_gen` and
 * `verify` overlay `sim_drain`; `shed`/`abort` are terminal), and
 * unknown kinds pass through untouched so newer span logs still load.
 */

#ifndef SECNDP_REPORT_SPANS_HH
#define SECNDP_REPORT_SPANS_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace secndp::report {

struct StatsReport;

/** One span row, as loaded (kind kept verbatim). */
struct SpanRow
{
    std::uint64_t seq = 0;
    std::uint64_t trace = 0;
    std::string kind;
    double startNs = 0.0;
    double durNs = 0.0;
    std::uint32_t shard = 0;
    std::uint64_t aux = 0;
};

/** The anomaly header of a flight dump. */
struct AnomalyRow
{
    std::string kind;
    std::uint64_t trace = 0;
    double atNs = 0.0;
};

/** One or more merged span files. */
struct SpanSet
{
    std::vector<SpanRow> spans;        ///< merged, seq-sorted
    std::vector<AnomalyRow> anomalies; ///< one per flight dump
    std::uint64_t dropped = 0;         ///< summed flight "dropped"
    std::size_t files = 0;
};

/** Parse one span/flight file's text into (appended onto) `out`. */
bool parseSpanSet(const std::string &text, SpanSet &out,
                  std::string *err = nullptr);

/** Load and parse one span/flight file. */
bool loadSpanSet(const std::string &path, SpanSet &out,
                 std::string *err = nullptr);

/**
 * Load a span operand: a file, or a directory expanded to every
 * *.spans.json / *.flight.json inside (sorted; non-recursive).
 * Re-sorts the merged set by seq.
 */
bool loadSpanOperand(const std::string &path, SpanSet &out,
                     std::string *err = nullptr);

/**
 * Print the per-phase tail-latency attribution: per-phase
 * p50/p95/p99/mean durations, latency cohorts (<=p50 .. >p99 of the
 * span-derived end-to-end latency) with their dominant phase and an
 * exemplar trace ID, plus a cross-check against the sidecar's
 * serve.latency_ns percentiles when `stats` is given.
 *
 * Returns false (after printing a diagnostic) when the span set has
 * no complete request to attribute.
 */
bool printExplain(std::ostream &os, const SpanSet &set,
                  const StatsReport *stats);

} // namespace secndp::report

#endif // SECNDP_REPORT_SPANS_HH
