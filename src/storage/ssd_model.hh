/**
 * @file
 * Near-storage processing substrate (paper refs [45], [64], [76]).
 *
 * The paper's scheme applies unchanged to NDP in storage ("offloading
 * computation to main memory or even storage"); this module provides
 * the SSD-side analogue of memsim+ndp: a multi-channel, multi-die
 * flash timing model and a near-storage execution mode where an
 * in-SSD PU consumes pages locally so only results cross the host
 * link (RecSSD-style SLS offload).
 *
 * Timing model per page read:
 *   die:     tR (array -> page register), dies operate in parallel
 *   channel: page transfer, serialized per channel (ONFI bus)
 *   host:    page transfer over the host link, serialized --
 *            SKIPPED in near-storage mode (results only)
 *
 * SecNDP on storage: the host engine generates the OTP share for the
 * touched bytes exactly as in the DRAM case; overlaySsdEngine mirrors
 * engine/engine_model for nanosecond-domain storage packets.
 */

#ifndef SECNDP_STORAGE_SSD_MODEL_HH
#define SECNDP_STORAGE_SSD_MODEL_HH

#include <cstdint>
#include <vector>

namespace secndp {

/** SSD geometry and timing. */
struct SsdConfig
{
    unsigned channels = 8;
    unsigned diesPerChannel = 4;
    unsigned pageBytes = 16384;
    double pageReadNs = 25000.0;     ///< tR (TLC-class read)
    double channelGBps = 1.2;        ///< ONFI transfer per channel
    double hostGBps = 3.5;           ///< PCIe host link
    /** In-SSD PU compute keeps up with channel rate (like the
     *  rank-NDP PU); extra per-packet firmware overhead: */
    double packetOverheadNs = 2000.0;

    double channelXferNs() const
    {
        return pageBytes / channelGBps;
    }
    double hostXferNs() const
    {
        return pageBytes / hostGBps;
    }
};

/** One storage packet: flash page indices one query touches. */
struct SsdQuery
{
    std::vector<std::uint64_t> pages;
};

/** Per-packet timing. */
struct SsdPacketTiming
{
    double issuedNs = 0.0;
    double finishedNs = 0.0;
    std::uint64_t pages = 0;
};

/** Batch outcome. */
struct SsdBatchResult
{
    std::vector<SsdPacketTiming> packets;
    double totalNs = 0.0;
    std::uint64_t totalPages = 0;
    std::uint64_t hostBytes = 0; ///< bytes crossing the host link
};

/**
 * Execute a batch of storage packets.
 *
 * @param near_storage true = in-SSD PU (pages stay inside; only
 *        results cross the host link), false = host processing
 *        (every page crosses the host link)
 * @param result_bytes_per_packet host-link bytes per packet result
 */
SsdBatchResult runSsdBatch(const SsdConfig &cfg,
                           const std::vector<SsdQuery> &queries,
                           bool near_storage,
                           unsigned result_bytes_per_packet = 128);

/** Engine work for secure near-storage packets (AES blocks). */
struct SsdEngineOverlay
{
    std::vector<double> finishedNs;
    double totalNs = 0.0;
    double fractionDecryptBound = 0.0;
};

/**
 * Overlay host-side OTP generation (n_aes x aes_gbps) on a
 * near-storage batch; otp_blocks is per packet.
 */
SsdEngineOverlay overlaySsdEngine(const SsdBatchResult &batch,
                                  const std::vector<std::uint64_t>
                                      &otp_blocks,
                                  unsigned n_aes,
                                  double aes_gbps = 111.3);

} // namespace secndp

#endif // SECNDP_STORAGE_SSD_MODEL_HH
