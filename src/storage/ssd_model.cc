#include "storage/ssd_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace secndp {

SsdBatchResult
runSsdBatch(const SsdConfig &cfg, const std::vector<SsdQuery> &queries,
            bool near_storage, unsigned result_bytes_per_packet)
{
    const unsigned n_dies = cfg.channels * cfg.diesPerChannel;
    // Greedy resource timelines (all in ns).
    std::vector<double> die_free(n_dies, 0.0);
    std::vector<double> channel_free(cfg.channels, 0.0);
    double host_free = 0.0;

    SsdBatchResult result;
    result.packets.resize(queries.size());

    double issue_clock = 0.0;
    for (std::size_t q = 0; q < queries.size(); ++q) {
        auto &pkt = result.packets[q];
        pkt.issuedNs = issue_clock;
        pkt.pages = queries[q].pages.size();
        result.totalPages += pkt.pages;
        double finish = issue_clock + cfg.packetOverheadNs;

        for (const auto page : queries[q].pages) {
            // Static striping: page -> (channel, die).
            const unsigned ch =
                static_cast<unsigned>(page % cfg.channels);
            const unsigned die = static_cast<unsigned>(
                ch * cfg.diesPerChannel +
                (page / cfg.channels) % cfg.diesPerChannel);

            // Die senses the page, then the channel moves it.
            const double sense_start =
                std::max(die_free[die], pkt.issuedNs);
            const double sense_end = sense_start + cfg.pageReadNs;
            die_free[die] = sense_end;

            const double xfer_start =
                std::max(channel_free[ch], sense_end);
            double xfer_end = xfer_start + cfg.channelXferNs();
            channel_free[ch] = xfer_end;

            if (!near_storage) {
                // Page continues over the shared host link.
                const double host_start =
                    std::max(host_free, xfer_end);
                xfer_end = host_start + cfg.hostXferNs();
                host_free = xfer_end;
                result.hostBytes += cfg.pageBytes;
            }
            finish = std::max(finish, xfer_end);
        }
        if (near_storage) {
            // Only the result crosses the host link.
            const double host_start = std::max(host_free, finish);
            finish = host_start +
                     result_bytes_per_packet / cfg.hostGBps;
            host_free = finish;
            result.hostBytes += result_bytes_per_packet;
        }
        pkt.finishedNs = finish;
        result.totalNs = std::max(result.totalNs, finish);
        // Packets stream in; the next can start immediately (the SSD
        // queues commands), so issue_clock stays put. Firmware
        // serialization is captured by packetOverheadNs above.
    }
    return result;
}

SsdEngineOverlay
overlaySsdEngine(const SsdBatchResult &batch,
                 const std::vector<std::uint64_t> &otp_blocks,
                 unsigned n_aes, double aes_gbps)
{
    SECNDP_ASSERT(batch.packets.size() == otp_blocks.size(),
                  "packet/work size mismatch");
    SsdEngineOverlay out;
    out.finishedNs.resize(batch.packets.size());
    const double blocks_per_ns = n_aes * aes_gbps / 128.0;
    double pool_free = 0.0;
    std::size_t bound = 0;
    for (std::size_t q = 0; q < batch.packets.size(); ++q) {
        const double start =
            std::max(pool_free, batch.packets[q].issuedNs);
        const double otp_done =
            start + otp_blocks[q] / blocks_per_ns;
        pool_free = otp_done;
        const bool decrypt_bound =
            otp_done > batch.packets[q].finishedNs;
        bound += decrypt_bound;
        out.finishedNs[q] =
            std::max(otp_done, batch.packets[q].finishedNs);
        out.totalNs = std::max(out.totalNs, out.finishedNs[q]);
    }
    out.fractionDecryptBound =
        batch.packets.empty()
            ? 0.0
            : static_cast<double>(bound) / batch.packets.size();
    return out;
}

} // namespace secndp
