/**
 * @file
 * Runtime-dispatched AES kernel backends.
 *
 * The functional crypto layer ships three interchangeable AES round
 * pipelines behind the same round-key schedule:
 *
 *   Scalar -- the byte-oriented FIPS-197 implementation in aes.cc.
 *             Portable, auditably simple, always available.
 *   AesNi  -- one hardware AES round per _mm_aesenc_si128, four
 *             independent blocks pipelined per call group so the
 *             6-7 cycle aesenc latency overlaps across blocks.
 *   Vaes   -- the VAES/AVX2 form: _mm256_aesenc_epi128 drives two
 *             blocks per ymm register, eight blocks per call group.
 *
 * All three compute FIPS-197 AES over the same expanded round keys,
 * so ciphertexts are byte-identical regardless of the backend; tests
 * pin this (tests/test_crypto_backends.cc). Selection happens once
 * per process via CPUID (bestAesBackend), and SECNDP_FORCE_SCALAR=1
 * in the environment pins the portable path for determinism checks
 * and for machines where perf parity with CI matters.
 *
 * The intrinsic kernels are compiled with per-function target
 * attributes (no global -maes/-mvaes flags), so the library still
 * builds and runs on CPUs without the extensions -- detection simply
 * never selects them, and non-x86 builds compile the kernels out
 * entirely.
 */

#ifndef SECNDP_CRYPTO_AES_BACKEND_HH
#define SECNDP_CRYPTO_AES_BACKEND_HH

#include <cstddef>
#include <cstdint>

namespace secndp {

/** Available AES round-pipeline implementations. */
enum class AesBackend
{
    Scalar, ///< portable byte-wise tables (aes.cc)
    AesNi,  ///< AES-NI, 4 blocks pipelined per group
    Vaes,   ///< VAES + AVX2, 8 blocks per group
};

/**
 * The fastest backend this CPU supports, honouring
 * SECNDP_FORCE_SCALAR=1. Computed once; cheap to call repeatedly.
 */
AesBackend bestAesBackend();

/** Can `b` run on this CPU? (Scalar always can.) */
bool aesBackendSupported(AesBackend b);

/**
 * Downgrade a requested backend to the nearest supported one
 * (Vaes -> AesNi -> Scalar). Used by cipher constructors so an
 * explicit request on weaker hardware degrades instead of faulting.
 */
AesBackend resolveAesBackend(AesBackend requested);

/** Stable lowercase name ("scalar" / "aesni" / "vaes"). */
const char *aesBackendName(AesBackend b);

namespace detail {

/**
 * Encrypt `n` 16-byte blocks with pre-expanded round keys `rk`
 * ((rounds + 1) * 16 bytes). `in` and `out` may alias exactly.
 * Only callable when the matching backend is supported (the
 * dispatchers in aes.cc guarantee this).
 */
void aesniEncryptBlocks(const std::uint8_t *rk, unsigned rounds,
                        const std::uint8_t *in, std::uint8_t *out,
                        std::size_t n);
void vaesEncryptBlocks(const std::uint8_t *rk, unsigned rounds,
                       const std::uint8_t *in, std::uint8_t *out,
                       std::size_t n);

} // namespace detail

} // namespace secndp

#endif // SECNDP_CRYPTO_AES_BACKEND_HH
