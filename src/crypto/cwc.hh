/**
 * @file
 * A CWC-style AEAD (Kohno-Viega-Whiting, paper ref [42]) built from
 * the repo's own primitives: AES counter-mode encryption + the
 * 127-bit linear modular hash over q = 2^127 - 1 as the MAC.
 *
 * This is the mode whose hash SecNDP borrows (section III-B "Linear
 * Checksum and MACs": CWC uses linear modular hashing "not only for
 * its performance but also to leverage its linearity"). Having it in
 * the repo closes the loop: the same Fq127 polynomial MAC serves both
 * a conventional per-block AEAD (this file) and SecNDP's computable
 * verification tags (secndp/checksum).
 *
 * Construction (MAC-then-encrypt over CTR, simplified CWC):
 *   keystream  = AES-CTR(K, nonce, counter >= 2)
 *   ciphertext = plaintext XOR keystream
 *   hash point s = first 127 bits of E(K, 01 || nonce || 1)
 *   T = hash127_s(aad || ct || lengths) + E(K, 10 || nonce || 1) mod q
 */

#ifndef SECNDP_CRYPTO_CWC_HH
#define SECNDP_CRYPTO_CWC_HH

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "crypto/aes.hh"
#include "ring/mersenne.hh"

namespace secndp {

/** AES-CWC-style AEAD with 96-bit nonces and 16-byte tags. */
class AesCwc
{
  public:
    static constexpr unsigned nonceBytes = 12;
    static constexpr unsigned tagBytes = 16;
    using Nonce = std::array<std::uint8_t, nonceBytes>;
    using Tag = std::array<std::uint8_t, tagBytes>;

    explicit AesCwc(const Aes128::Key &key) : aes_(key) {}

    struct Sealed
    {
        std::vector<std::uint8_t> ciphertext;
        Tag tag;
    };
    Sealed seal(const Nonce &nonce,
                std::span<const std::uint8_t> plaintext,
                std::span<const std::uint8_t> aad = {}) const;

    struct Opened
    {
        bool ok = false;
        std::vector<std::uint8_t> plaintext;
    };
    Opened open(const Nonce &nonce,
                std::span<const std::uint8_t> ciphertext,
                const Tag &tag,
                std::span<const std::uint8_t> aad = {}) const;

    /** The keyed 127-bit polynomial hash (exposed for tests). */
    Fq127 hash127(Fq127 s, std::span<const std::uint8_t> aad,
                  std::span<const std::uint8_t> data) const;

  private:
    Block128 block(std::uint8_t domain, const Nonce &nonce,
                   std::uint32_t counter) const;
    void ctrCrypt(const Nonce &nonce,
                  std::span<const std::uint8_t> in,
                  std::vector<std::uint8_t> &out) const;
    Tag computeTag(const Nonce &nonce,
                   std::span<const std::uint8_t> aad,
                   std::span<const std::uint8_t> ciphertext) const;

    Aes128 aes_;
};

} // namespace secndp

#endif // SECNDP_CRYPTO_CWC_HH
