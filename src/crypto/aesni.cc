#include "crypto/aes_backend.hh"

#include <cstdlib>

#include "common/logging.hh"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
#define SECNDP_X86_AES 1
#include <cpuid.h>
#include <immintrin.h>
#else
#define SECNDP_X86_AES 0
#endif

namespace secndp {

namespace {

#if SECNDP_X86_AES

bool
cpuHasAesni()
{
    unsigned a = 0, b = 0, c = 0, d = 0;
    if (!__get_cpuid(1, &a, &b, &c, &d))
        return false;
    // AES-NI (ECX[25]) implies the SSE2 baseline on every shipping
    // part; x86-64 mandates SSE2 anyway.
    return (c & (1u << 25)) != 0;
}

bool
osSavesAvxState()
{
    unsigned a = 0, b = 0, c = 0, d = 0;
    if (!__get_cpuid(1, &a, &b, &c, &d))
        return false;
    if (!(c & (1u << 27))) // OSXSAVE
        return false;
    // xgetbv(0): XCR0 bits 1 (SSE) and 2 (AVX) must both be
    // OS-enabled. Raw encoding avoids requiring target("xsave").
    unsigned lo, hi;
    __asm__ volatile(".byte 0x0f, 0x01, 0xd0"
                     : "=a"(lo), "=d"(hi)
                     : "c"(0));
    return (lo & 0x6) == 0x6;
}

bool
cpuHasVaes()
{
    unsigned a = 0, b = 0, c = 0, d = 0;
    if (!__get_cpuid_count(7, 0, &a, &b, &c, &d))
        return false;
    const bool avx2 = (b & (1u << 5)) != 0;
    const bool vaes = (c & (1u << 9)) != 0;
    return avx2 && vaes && cpuHasAesni() && osSavesAvxState();
}

#else

bool cpuHasAesni() { return false; }
bool cpuHasVaes() { return false; }

#endif // SECNDP_X86_AES

bool
forceScalar()
{
    const char *f = std::getenv("SECNDP_FORCE_SCALAR");
    return f != nullptr && f[0] == '1';
}

} // namespace

bool
aesBackendSupported(AesBackend b)
{
    switch (b) {
    case AesBackend::Scalar:
        return true;
    case AesBackend::AesNi:
        return cpuHasAesni();
    case AesBackend::Vaes:
        return cpuHasVaes();
    }
    return false;
}

AesBackend
bestAesBackend()
{
    static const AesBackend best = [] {
        if (forceScalar())
            return AesBackend::Scalar;
        if (cpuHasVaes())
            return AesBackend::Vaes;
        if (cpuHasAesni())
            return AesBackend::AesNi;
        return AesBackend::Scalar;
    }();
    return best;
}

AesBackend
resolveAesBackend(AesBackend requested)
{
    if (requested == AesBackend::Vaes && !aesBackendSupported(requested))
        requested = AesBackend::AesNi;
    if (requested == AesBackend::AesNi && !aesBackendSupported(requested))
        requested = AesBackend::Scalar;
    return requested;
}

const char *
aesBackendName(AesBackend b)
{
    switch (b) {
    case AesBackend::Scalar:
        return "scalar";
    case AesBackend::AesNi:
        return "aesni";
    case AesBackend::Vaes:
        return "vaes";
    }
    return "?";
}

namespace detail {

#if SECNDP_X86_AES

namespace {

/** One block through the full AES-NI round pipeline. */
__attribute__((target("aes,sse2"))) inline __m128i
aesniOne(__m128i b, const __m128i *rk, unsigned rounds)
{
    b = _mm_xor_si128(b, _mm_loadu_si128(rk));
    for (unsigned r = 1; r < rounds; ++r)
        b = _mm_aesenc_si128(b, _mm_loadu_si128(rk + r));
    return _mm_aesenclast_si128(b, _mm_loadu_si128(rk + rounds));
}

} // namespace

__attribute__((target("aes,sse2"))) void
aesniEncryptBlocks(const std::uint8_t *rk, unsigned rounds,
                   const std::uint8_t *in, std::uint8_t *out,
                   std::size_t n)
{
    const __m128i *rkv = reinterpret_cast<const __m128i *>(rk);
    std::size_t i = 0;
    // Four independent blocks per group: the data dependencies are
    // per-block, so the aesenc latency of one block hides behind the
    // issue slots of the other three.
    for (; i + 4 <= n; i += 4) {
        const __m128i *src =
            reinterpret_cast<const __m128i *>(in + 16 * i);
        __m128i k = _mm_loadu_si128(rkv);
        __m128i b0 = _mm_xor_si128(_mm_loadu_si128(src + 0), k);
        __m128i b1 = _mm_xor_si128(_mm_loadu_si128(src + 1), k);
        __m128i b2 = _mm_xor_si128(_mm_loadu_si128(src + 2), k);
        __m128i b3 = _mm_xor_si128(_mm_loadu_si128(src + 3), k);
        for (unsigned r = 1; r < rounds; ++r) {
            k = _mm_loadu_si128(rkv + r);
            b0 = _mm_aesenc_si128(b0, k);
            b1 = _mm_aesenc_si128(b1, k);
            b2 = _mm_aesenc_si128(b2, k);
            b3 = _mm_aesenc_si128(b3, k);
        }
        k = _mm_loadu_si128(rkv + rounds);
        b0 = _mm_aesenclast_si128(b0, k);
        b1 = _mm_aesenclast_si128(b1, k);
        b2 = _mm_aesenclast_si128(b2, k);
        b3 = _mm_aesenclast_si128(b3, k);
        __m128i *dst = reinterpret_cast<__m128i *>(out + 16 * i);
        _mm_storeu_si128(dst + 0, b0);
        _mm_storeu_si128(dst + 1, b1);
        _mm_storeu_si128(dst + 2, b2);
        _mm_storeu_si128(dst + 3, b3);
    }
    for (; i < n; ++i) {
        const __m128i b = aesniOne(
            _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(in + 16 * i)),
            rkv, rounds);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + 16 * i), b);
    }
}

__attribute__((target("vaes,avx2,aes,sse2"))) void
vaesEncryptBlocks(const std::uint8_t *rk, unsigned rounds,
                  const std::uint8_t *in, std::uint8_t *out,
                  std::size_t n)
{
    const __m128i *rkv = reinterpret_cast<const __m128i *>(rk);
    std::size_t i = 0;
    // Eight blocks per group: two per ymm register, four registers.
    for (; i + 8 <= n; i += 8) {
        const __m256i *src =
            reinterpret_cast<const __m256i *>(in + 16 * i);
        __m256i k =
            _mm256_broadcastsi128_si256(_mm_loadu_si128(rkv));
        __m256i b0 = _mm256_xor_si256(_mm256_loadu_si256(src + 0), k);
        __m256i b1 = _mm256_xor_si256(_mm256_loadu_si256(src + 1), k);
        __m256i b2 = _mm256_xor_si256(_mm256_loadu_si256(src + 2), k);
        __m256i b3 = _mm256_xor_si256(_mm256_loadu_si256(src + 3), k);
        for (unsigned r = 1; r < rounds; ++r) {
            k = _mm256_broadcastsi128_si256(_mm_loadu_si128(rkv + r));
            b0 = _mm256_aesenc_epi128(b0, k);
            b1 = _mm256_aesenc_epi128(b1, k);
            b2 = _mm256_aesenc_epi128(b2, k);
            b3 = _mm256_aesenc_epi128(b3, k);
        }
        k = _mm256_broadcastsi128_si256(_mm_loadu_si128(rkv + rounds));
        b0 = _mm256_aesenclast_epi128(b0, k);
        b1 = _mm256_aesenclast_epi128(b1, k);
        b2 = _mm256_aesenclast_epi128(b2, k);
        b3 = _mm256_aesenclast_epi128(b3, k);
        __m256i *dst = reinterpret_cast<__m256i *>(out + 16 * i);
        _mm256_storeu_si256(dst + 0, b0);
        _mm256_storeu_si256(dst + 1, b1);
        _mm256_storeu_si256(dst + 2, b2);
        _mm256_storeu_si256(dst + 3, b3);
    }
    for (; i < n; ++i) {
        const __m128i b = aesniOne(
            _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(in + 16 * i)),
            rkv, rounds);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + 16 * i), b);
    }
}

#else // !SECNDP_X86_AES

void
aesniEncryptBlocks(const std::uint8_t *, unsigned, const std::uint8_t *,
                   std::uint8_t *, std::size_t)
{
    fatal("AES-NI kernel called on a build without x86 AES support");
}

void
vaesEncryptBlocks(const std::uint8_t *, unsigned, const std::uint8_t *,
                  std::uint8_t *, std::size_t)
{
    fatal("VAES kernel called on a build without x86 AES support");
}

#endif // SECNDP_X86_AES

} // namespace detail

} // namespace secndp
