#include "crypto/counter_mode.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace secndp {

Block128
buildCounterBlock(TweakDomain domain, std::uint64_t addr,
                  std::uint64_t version)
{
    SECNDP_ASSERT(addr < (std::uint64_t{1} << 56),
                  "address %lu exceeds 56-bit tweak field", addr);
    Block128 block{};
    block[0] = static_cast<std::uint8_t>(domain);
    for (unsigned i = 0; i < 7; ++i)
        block[1 + i] = static_cast<std::uint8_t>(addr >> (8 * i));
    for (unsigned i = 0; i < 8; ++i)
        block[8 + i] = static_cast<std::uint8_t>(version >> (8 * i));
    return block;
}

Block128
CounterModeEncryptor::otpBlock(std::uint64_t addr,
                               std::uint64_t version) const
{
    SECNDP_ASSERT(addr % BlockCipher::blockBytes == 0,
                  "OTP chunk address %lu not block aligned", addr);
    const Block128 in = buildCounterBlock(TweakDomain::Data, addr,
                                          version);
    Block128 out;
    cipher_.encryptBlock(in, out);
    return out;
}

void
CounterModeEncryptor::otpBlocks(std::uint64_t addr,
                                std::uint64_t version,
                                std::span<Block128> out) const
{
    SECNDP_ASSERT(addr % BlockCipher::blockBytes == 0,
                  "OTP chunk address %lu not block aligned", addr);
    for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = buildCounterBlock(
            TweakDomain::Data,
            addr + i * BlockCipher::blockBytes, version);
    }
    cipher_.encryptBlocks(out.data(), out.data(), out.size());
}

void
CounterModeEncryptor::otpBlocksAt(std::span<const std::uint64_t> addrs,
                                  std::uint64_t version,
                                  std::span<Block128> out) const
{
    SECNDP_ASSERT(addrs.size() == out.size(),
                  "pad output size %zu != address count %zu",
                  out.size(), addrs.size());
    std::size_t i = 0;
    while (i < addrs.size()) {
        const std::size_t n =
            std::min<std::size_t>(addrs.size() - i, batchBlocks);
        for (std::size_t k = 0; k < n; ++k) {
            SECNDP_ASSERT(addrs[i + k] % BlockCipher::blockBytes == 0,
                          "OTP chunk address %lu not block aligned",
                          addrs[i + k]);
            out[i + k] = buildCounterBlock(TweakDomain::Data,
                                           addrs[i + k], version);
        }
        cipher_.encryptBlocks(out.data() + i, out.data() + i, n);
        i += n;
    }
}

std::uint64_t
CounterModeEncryptor::otpElement(std::uint64_t paddr, ElemWidth we,
                                 std::uint64_t version) const
{
    const std::uint64_t chunk_addr =
        paddr & ~std::uint64_t{BlockCipher::blockBytes - 1};
    const Block128 pad = otpBlock(chunk_addr, version);
    const unsigned offset =
        static_cast<unsigned>(paddr - chunk_addr);
    SECNDP_ASSERT(offset % bytes(we) == 0,
                  "element address %lu not aligned to %u-bit width",
                  paddr, bits(we));
    std::uint64_t v = 0;
    std::memcpy(&v, pad.data() + offset, bytes(we));
    return v;
}

void
CounterModeEncryptor::otpElements(std::span<const std::uint64_t> paddrs,
                                  ElemWidth we, std::uint64_t version,
                                  std::span<std::uint64_t> out) const
{
    SECNDP_ASSERT(paddrs.size() == out.size(),
                  "pad output size %zu != address count %zu",
                  out.size(), paddrs.size());
    constexpr std::uint64_t chunk_mask =
        ~std::uint64_t{BlockCipher::blockBytes - 1};
    const unsigned nb = bytes(we);

    std::size_t i = 0;
    while (i < paddrs.size()) {
        // Gather a window: runs of elements in the same chunk collapse
        // to one counter block; up to batchBlocks distinct chunks are
        // encrypted in a single pipelined cipher call.
        Block128 pads[batchBlocks];
        std::uint64_t chunk_of[batchBlocks];
        std::size_t nchunks = 0;
        std::uint64_t last = ~std::uint64_t{0};
        std::size_t j = i;
        for (; j < paddrs.size(); ++j) {
            const std::uint64_t chunk = paddrs[j] & chunk_mask;
            if (chunk != last) {
                if (nchunks == batchBlocks)
                    break;
                chunk_of[nchunks] = chunk;
                pads[nchunks] = buildCounterBlock(TweakDomain::Data,
                                                  chunk, version);
                last = chunk;
                ++nchunks;
            }
        }
        cipher_.encryptBlocks(pads, pads, nchunks);

        std::size_t ci = 0;
        for (std::size_t k = i; k < j; ++k) {
            const std::uint64_t chunk = paddrs[k] & chunk_mask;
            if (chunk != chunk_of[ci])
                ++ci; // next run; chunk_of preserves run order
            const unsigned offset =
                static_cast<unsigned>(paddrs[k] - chunk);
            SECNDP_ASSERT(offset % nb == 0,
                          "element address %lu not aligned to %u-bit "
                          "width",
                          paddrs[k], bits(we));
            std::uint64_t v = 0;
            std::memcpy(&v, pads[ci].data() + offset, nb);
            out[k] = v;
        }
        i = j;
    }
}

void
CounterModeEncryptor::otpFillBatch(std::uint64_t addr,
                                   std::uint64_t version,
                                   std::span<std::uint8_t> out) const
{
    SECNDP_ASSERT(addr % BlockCipher::blockBytes == 0,
                  "OTP fill address %lu not block aligned", addr);
    constexpr std::size_t bb = BlockCipher::blockBytes;
    std::size_t done = 0;
    // Whole blocks: build counter blocks directly in the output and
    // encrypt them in place, batchBlocks at a time.
    while (out.size() - done >= bb) {
        const std::size_t nblk =
            std::min<std::size_t>((out.size() - done) / bb,
                                  batchBlocks);
        Block128 *blocks =
            reinterpret_cast<Block128 *>(out.data() + done);
        for (std::size_t b = 0; b < nblk; ++b) {
            blocks[b] = buildCounterBlock(TweakDomain::Data,
                                          addr + done + b * bb,
                                          version);
        }
        cipher_.encryptBlocks(blocks, blocks, nblk);
        done += nblk * bb;
    }
    if (done < out.size()) {
        const Block128 pad = otpBlock(addr + done, version);
        std::memcpy(out.data() + done, pad.data(), out.size() - done);
    }
}

void
CounterModeEncryptor::tagOtps(std::span<const std::uint64_t> paddr_rows,
                              std::uint64_t version,
                              std::span<Fq127> out) const
{
    SECNDP_ASSERT(paddr_rows.size() == out.size(),
                  "tag pad output size %zu != address count %zu",
                  out.size(), paddr_rows.size());
    std::size_t i = 0;
    while (i < paddr_rows.size()) {
        Block128 blocks[batchBlocks];
        const std::size_t n = std::min<std::size_t>(
            paddr_rows.size() - i, batchBlocks);
        for (std::size_t k = 0; k < n; ++k) {
            blocks[k] = buildCounterBlock(TweakDomain::Tag,
                                          paddr_rows[i + k], version);
        }
        cipher_.encryptBlocks(blocks, blocks, n);
        for (std::size_t k = 0; k < n; ++k)
            out[i + k] = first127(blocks[k]);
        i += n;
    }
}

Fq127
CounterModeEncryptor::first127(const Block128 &block)
{
    std::uint64_t lo, hi;
    std::memcpy(&lo, block.data(), 8);
    std::memcpy(&hi, block.data() + 8, 8);
    hi &= 0x7fffffffffffffffULL; // keep the first w_t = 127 bits
    return Fq127::fromHalves(lo, hi);
}

Fq127
CounterModeEncryptor::checksumSecret(std::uint64_t paddr_matrix,
                                     std::uint64_t version) const
{
    const Block128 in = buildCounterBlock(TweakDomain::Checksum,
                                          paddr_matrix, version);
    Block128 out;
    cipher_.encryptBlock(in, out);
    return first127(out);
}

Fq127
CounterModeEncryptor::tagOtp(std::uint64_t paddr_row,
                             std::uint64_t version) const
{
    const Block128 in = buildCounterBlock(TweakDomain::Tag, paddr_row,
                                          version);
    Block128 out;
    cipher_.encryptBlock(in, out);
    return first127(out);
}

} // namespace secndp
