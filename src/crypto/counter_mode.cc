#include "crypto/counter_mode.hh"

#include <cstring>

#include "common/logging.hh"

namespace secndp {

Block128
buildCounterBlock(TweakDomain domain, std::uint64_t addr,
                  std::uint64_t version)
{
    SECNDP_ASSERT(addr < (std::uint64_t{1} << 56),
                  "address %lu exceeds 56-bit tweak field", addr);
    Block128 block{};
    block[0] = static_cast<std::uint8_t>(domain);
    for (unsigned i = 0; i < 7; ++i)
        block[1 + i] = static_cast<std::uint8_t>(addr >> (8 * i));
    for (unsigned i = 0; i < 8; ++i)
        block[8 + i] = static_cast<std::uint8_t>(version >> (8 * i));
    return block;
}

Block128
CounterModeEncryptor::otpBlock(std::uint64_t addr,
                               std::uint64_t version) const
{
    SECNDP_ASSERT(addr % BlockCipher::blockBytes == 0,
                  "OTP chunk address %lu not block aligned", addr);
    const Block128 in = buildCounterBlock(TweakDomain::Data, addr,
                                          version);
    Block128 out;
    cipher_.encryptBlock(in, out);
    return out;
}

std::uint64_t
CounterModeEncryptor::otpElement(std::uint64_t paddr, ElemWidth we,
                                 std::uint64_t version) const
{
    const std::uint64_t chunk_addr =
        paddr & ~std::uint64_t{BlockCipher::blockBytes - 1};
    const Block128 pad = otpBlock(chunk_addr, version);
    const unsigned offset =
        static_cast<unsigned>(paddr - chunk_addr);
    SECNDP_ASSERT(offset % bytes(we) == 0,
                  "element address %lu not aligned to %u-bit width",
                  paddr, bits(we));
    std::uint64_t v = 0;
    std::memcpy(&v, pad.data() + offset, bytes(we));
    return v;
}

void
CounterModeEncryptor::otpFill(std::uint64_t addr, std::uint64_t version,
                              std::span<std::uint8_t> out) const
{
    SECNDP_ASSERT(addr % BlockCipher::blockBytes == 0,
                  "OTP fill address %lu not block aligned", addr);
    std::size_t done = 0;
    while (done < out.size()) {
        const Block128 pad = otpBlock(addr + done, version);
        const std::size_t n =
            std::min<std::size_t>(BlockCipher::blockBytes,
                                  out.size() - done);
        std::memcpy(out.data() + done, pad.data(), n);
        done += n;
    }
}

Fq127
CounterModeEncryptor::first127(const Block128 &block)
{
    std::uint64_t lo, hi;
    std::memcpy(&lo, block.data(), 8);
    std::memcpy(&hi, block.data() + 8, 8);
    hi &= 0x7fffffffffffffffULL; // keep the first w_t = 127 bits
    return Fq127::fromHalves(lo, hi);
}

Fq127
CounterModeEncryptor::checksumSecret(std::uint64_t paddr_matrix,
                                     std::uint64_t version) const
{
    const Block128 in = buildCounterBlock(TweakDomain::Checksum,
                                          paddr_matrix, version);
    Block128 out;
    cipher_.encryptBlock(in, out);
    return first127(out);
}

Fq127
CounterModeEncryptor::tagOtp(std::uint64_t paddr_row,
                             std::uint64_t version) const
{
    const Block128 in = buildCounterBlock(TweakDomain::Tag, paddr_row,
                                          version);
    Block128 out;
    cipher_.encryptBlock(in, out);
    return first127(out);
}

} // namespace secndp
