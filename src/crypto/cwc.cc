#include "crypto/cwc.hh"

#include <cstring>

#include "common/logging.hh"

namespace secndp {

Block128
AesCwc::block(std::uint8_t domain, const Nonce &nonce,
              std::uint32_t counter) const
{
    Block128 in{};
    in[0] = domain;
    std::memcpy(in.data() + 1, nonce.data(), nonceBytes);
    for (unsigned i = 0; i < 3; ++i)
        in[13 + i] = static_cast<std::uint8_t>(counter >> (8 * i));
    Block128 out;
    aes_.encryptBlock(in, out);
    return out;
}

void
AesCwc::ctrCrypt(const Nonce &nonce, std::span<const std::uint8_t> in,
                 std::vector<std::uint8_t> &out) const
{
    out.resize(in.size());
    std::uint32_t counter = 2;
    std::size_t off = 0;
    while (off < in.size()) {
        const Block128 pad = block(0x00, nonce, counter++);
        const std::size_t n =
            std::min<std::size_t>(16, in.size() - off);
        for (std::size_t i = 0; i < n; ++i)
            out[off + i] = in[off + i] ^ pad[i];
        off += n;
    }
}

Fq127
AesCwc::hash127(Fq127 s, std::span<const std::uint8_t> aad,
                std::span<const std::uint8_t> data) const
{
    // Polynomial hash over 96-bit message chunks (< q, so injective
    // per chunk), Horner form, with a final length block.
    Fq127 acc(0);
    auto absorb = [&](std::span<const std::uint8_t> bytes) {
        std::size_t off = 0;
        while (off < bytes.size()) {
            std::uint8_t chunk[12] = {};
            const std::size_t n =
                std::min<std::size_t>(12, bytes.size() - off);
            std::memcpy(chunk, bytes.data() + off, n);
            std::uint64_t lo = 0;
            std::uint32_t hi = 0;
            std::memcpy(&lo, chunk, 8);
            std::memcpy(&hi, chunk + 8, 4);
            acc = acc * s + Fq127::fromHalves(lo, hi);
            off += n;
        }
    };
    absorb(aad);
    absorb(data);
    const Fq127 lengths = Fq127::fromHalves(
        static_cast<std::uint64_t>(aad.size()),
        static_cast<std::uint64_t>(data.size()));
    return acc * s + lengths;
}

AesCwc::Tag
AesCwc::computeTag(const Nonce &nonce,
                   std::span<const std::uint8_t> aad,
                   std::span<const std::uint8_t> ciphertext) const
{
    // Hash point (domain 0x01) and tag pad (domain 0x02), both
    // nonce-bound.
    const Block128 sb = block(0x01, nonce, 1);
    std::uint64_t lo, hi;
    std::memcpy(&lo, sb.data(), 8);
    std::memcpy(&hi, sb.data() + 8, 8);
    const Fq127 s =
        Fq127::fromHalves(lo, hi & 0x7fffffffffffffffULL);

    const Fq127 t = hash127(s, aad, ciphertext);

    const Block128 pb = block(0x02, nonce, 1);
    std::memcpy(&lo, pb.data(), 8);
    std::memcpy(&hi, pb.data() + 8, 8);
    const Fq127 pad =
        Fq127::fromHalves(lo, hi & 0x7fffffffffffffffULL);

    const Fq127 sealed = t + pad;
    Tag tag{};
    const std::uint64_t tlo = sealed.lo64();
    const std::uint64_t thi = sealed.hi64();
    std::memcpy(tag.data(), &tlo, 8);
    std::memcpy(tag.data() + 8, &thi, 8);
    return tag;
}

AesCwc::Sealed
AesCwc::seal(const Nonce &nonce,
             std::span<const std::uint8_t> plaintext,
             std::span<const std::uint8_t> aad) const
{
    Sealed out;
    ctrCrypt(nonce, plaintext, out.ciphertext);
    out.tag = computeTag(nonce, aad, out.ciphertext);
    return out;
}

AesCwc::Opened
AesCwc::open(const Nonce &nonce,
             std::span<const std::uint8_t> ciphertext, const Tag &tag,
             std::span<const std::uint8_t> aad) const
{
    Opened out;
    const Tag expect = computeTag(nonce, aad, ciphertext);
    std::uint8_t diff = 0;
    for (unsigned i = 0; i < tagBytes; ++i)
        diff |= static_cast<std::uint8_t>(expect[i] ^ tag[i]);
    if (diff != 0)
        return out;
    out.ok = true;
    ctrCrypt(nonce, ciphertext, out.plaintext);
    return out;
}

} // namespace secndp
