/**
 * @file
 * AES-GCM authenticated encryption (NIST SP 800-38D), from scratch.
 *
 * This is the conventional memory-protection AEAD the paper contrasts
 * SecNDP with (section III-B): GCM gives confidentiality + a MAC, but
 * its GHASH tag is keyed on the *ciphertext bits*, so an untrusted
 * NDP cannot combine tags of rows into the tag of a weighted sum --
 * the property SecNDP's linear modular hash adds. The TEE (non-NDP)
 * baseline uses exactly this kind of scheme per cache line.
 *
 * Pinned to the classic NIST GCM test vectors in tests/test_gcm.cc.
 */

#ifndef SECNDP_CRYPTO_GCM_HH
#define SECNDP_CRYPTO_GCM_HH

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "crypto/aes.hh"

namespace secndp {

/** An element of GF(2^128) in GCM's bit order. */
class Gf128
{
  public:
    constexpr Gf128() : value_(0) {}

    /** From 16 big-endian bytes (GCM block convention). */
    static Gf128 fromBytes(const Block128 &block);
    Block128 toBytes() const;

    Gf128 operator^(Gf128 o) const
    {
        Gf128 r;
        r.value_ = value_ ^ o.value_;
        return r;
    }
    Gf128 &operator^=(Gf128 o)
    {
        value_ ^= o.value_;
        return *this;
    }

    /** Carry-less multiply modulo x^128 + x^7 + x^2 + x + 1. */
    Gf128 operator*(Gf128 o) const;

    bool operator==(const Gf128 &o) const = default;
    bool isZero() const { return value_ == 0; }

  private:
    /** Bit i of the GCM block is bit (127 - i) here. */
    unsigned __int128 value_;
};

/** GHASH_H over a byte string (zero-padded to blocks). */
Gf128 ghash(Gf128 h, std::span<const std::uint8_t> aad,
            std::span<const std::uint8_t> data);

/** AES-128-GCM with 96-bit IVs. */
class AesGcm
{
  public:
    static constexpr unsigned ivBytes = 12;
    static constexpr unsigned tagBytes = 16;
    using Iv = std::array<std::uint8_t, ivBytes>;
    using Tag = std::array<std::uint8_t, tagBytes>;

    explicit AesGcm(const Aes128::Key &key);

    /** Encrypt + authenticate. IVs must never repeat under one key. */
    struct Sealed
    {
        std::vector<std::uint8_t> ciphertext;
        Tag tag;
    };
    Sealed seal(const Iv &iv, std::span<const std::uint8_t> plaintext,
                std::span<const std::uint8_t> aad = {}) const;

    /**
     * Verify + decrypt.
     * @return plaintext, or std::nullopt-like empty + false on tag
     *         mismatch (plaintext is only released on success)
     */
    struct Opened
    {
        bool ok = false;
        std::vector<std::uint8_t> plaintext;
    };
    Opened open(const Iv &iv,
                std::span<const std::uint8_t> ciphertext,
                const Tag &tag,
                std::span<const std::uint8_t> aad = {}) const;

  private:
    Block128 counterBlock(const Iv &iv, std::uint32_t counter) const;
    void ctrCrypt(const Iv &iv, std::span<const std::uint8_t> in,
                  std::vector<std::uint8_t> &out) const;
    Tag computeTag(const Iv &iv, std::span<const std::uint8_t> aad,
                   std::span<const std::uint8_t> ciphertext) const;

    Aes128 aes_;
    Gf128 h_; ///< hash subkey E(K, 0^128)
};

} // namespace secndp

#endif // SECNDP_CRYPTO_GCM_HH
