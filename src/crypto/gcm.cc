#include "crypto/gcm.hh"

#include <cstring>

#include "common/logging.hh"

namespace secndp {

using u128 = unsigned __int128;

Gf128
Gf128::fromBytes(const Block128 &block)
{
    Gf128 g;
    u128 v = 0;
    for (unsigned i = 0; i < 16; ++i)
        v = (v << 8) | block[i];
    g.value_ = v;
    return g;
}

Block128
Gf128::toBytes() const
{
    Block128 out;
    u128 v = value_;
    for (int i = 15; i >= 0; --i) {
        out[i] = static_cast<std::uint8_t>(v);
        v >>= 8;
    }
    return out;
}

Gf128
Gf128::operator*(Gf128 o) const
{
    // SP 800-38D algorithm 1. GCM bit 0 is the MSB of value_, so
    // "multiply by x" is a right shift with reduction by
    // R = 11100001 || 0^120.
    const u128 reduction = static_cast<u128>(0xe1ULL) << 120;
    u128 z = 0;
    u128 v = o.value_;
    u128 x = value_;
    for (int i = 0; i < 128; ++i) {
        if (x & (static_cast<u128>(1) << 127))
            z ^= v;
        x <<= 1;
        const bool lsb = v & 1;
        v >>= 1;
        if (lsb)
            v ^= reduction;
    }
    Gf128 r;
    r.value_ = z;
    return r;
}

Gf128
ghash(Gf128 h, std::span<const std::uint8_t> aad,
      std::span<const std::uint8_t> data)
{
    Gf128 y;
    auto absorb = [&](std::span<const std::uint8_t> bytes) {
        std::size_t off = 0;
        while (off < bytes.size()) {
            Block128 block{};
            const std::size_t n =
                std::min<std::size_t>(16, bytes.size() - off);
            std::memcpy(block.data(), bytes.data() + off, n);
            y = (y ^ Gf128::fromBytes(block)) * h;
            off += n;
        }
    };
    absorb(aad);
    absorb(data);
    // Length block: bit lengths of AAD and data, big-endian 64 each.
    Block128 lens{};
    const std::uint64_t aad_bits = aad.size() * 8ull;
    const std::uint64_t data_bits = data.size() * 8ull;
    for (unsigned i = 0; i < 8; ++i) {
        lens[7 - i] = static_cast<std::uint8_t>(aad_bits >> (8 * i));
        lens[15 - i] = static_cast<std::uint8_t>(data_bits >> (8 * i));
    }
    return (y ^ Gf128::fromBytes(lens)) * h;
}

AesGcm::AesGcm(const Aes128::Key &key) : aes_(key)
{
    Block128 zero{}, hbytes;
    aes_.encryptBlock(zero, hbytes);
    h_ = Gf128::fromBytes(hbytes);
}

Block128
AesGcm::counterBlock(const Iv &iv, std::uint32_t counter) const
{
    Block128 block{};
    std::memcpy(block.data(), iv.data(), ivBytes);
    for (unsigned i = 0; i < 4; ++i)
        block[12 + i] = static_cast<std::uint8_t>(counter >>
                                                  (8 * (3 - i)));
    return block;
}

void
AesGcm::ctrCrypt(const Iv &iv, std::span<const std::uint8_t> in,
                 std::vector<std::uint8_t> &out) const
{
    out.resize(in.size());
    std::uint32_t counter = 2; // counter 1 is reserved for the tag
    std::size_t off = 0;
    while (off < in.size()) {
        Block128 pad;
        aes_.encryptBlock(counterBlock(iv, counter++), pad);
        const std::size_t n =
            std::min<std::size_t>(16, in.size() - off);
        for (std::size_t i = 0; i < n; ++i)
            out[off + i] = in[off + i] ^ pad[i];
        off += n;
    }
}

AesGcm::Tag
AesGcm::computeTag(const Iv &iv, std::span<const std::uint8_t> aad,
                   std::span<const std::uint8_t> ciphertext) const
{
    const Gf128 s = ghash(h_, aad, ciphertext);
    Block128 ektr0;
    aes_.encryptBlock(counterBlock(iv, 1), ektr0);
    const Block128 sb = s.toBytes();
    Tag tag;
    for (unsigned i = 0; i < tagBytes; ++i)
        tag[i] = sb[i] ^ ektr0[i];
    return tag;
}

AesGcm::Sealed
AesGcm::seal(const Iv &iv, std::span<const std::uint8_t> plaintext,
             std::span<const std::uint8_t> aad) const
{
    Sealed out;
    ctrCrypt(iv, plaintext, out.ciphertext);
    out.tag = computeTag(iv, aad, out.ciphertext);
    return out;
}

AesGcm::Opened
AesGcm::open(const Iv &iv, std::span<const std::uint8_t> ciphertext,
             const Tag &tag, std::span<const std::uint8_t> aad) const
{
    Opened out;
    const Tag expect = computeTag(iv, aad, ciphertext);
    // Constant-time-ish comparison.
    std::uint8_t diff = 0;
    for (unsigned i = 0; i < tagBytes; ++i)
        diff |= static_cast<std::uint8_t>(expect[i] ^ tag[i]);
    if (diff != 0)
        return out; // ok = false, no plaintext released
    out.ok = true;
    ctrCrypt(iv, ciphertext, out.plaintext);
    return out;
}

} // namespace secndp
