/**
 * @file
 * Abstract block-cipher interface.
 *
 * The SecNDP scheme is defined over any w_c-bit block cipher E(K, X)
 * (paper section IV-A). The repo ships AES-128 (crypto/aes.hh); tests
 * also use a trivially-invertible TestCipher to exercise scheme algebra
 * independently of AES.
 */

#ifndef SECNDP_CRYPTO_BLOCK_CIPHER_HH
#define SECNDP_CRYPTO_BLOCK_CIPHER_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace secndp {

/** 128-bit block type used throughout the crypto layer. */
using Block128 = std::array<std::uint8_t, 16>;

/** A 128-bit-block cipher (encryption direction only). */
class BlockCipher
{
  public:
    virtual ~BlockCipher() = default;

    /** Block size in bytes (always 16 here; kept for clarity). */
    static constexpr unsigned blockBytes = 16;

    /** Encrypt one block. in and out may alias. */
    virtual void encryptBlock(const Block128 &in, Block128 &out) const = 0;

    /**
     * Encrypt `n` independent blocks. `in` and `out` may be the same
     * array (counter-mode builds counter blocks in place and encrypts
     * over them); partial overlap is not allowed. The default loops
     * over encryptBlock; hardware-backed ciphers override this with a
     * pipelined kernel -- the batch is the unit of instruction-level
     * parallelism, so callers should hand over as many independent
     * blocks per call as they can.
     */
    virtual void encryptBlocks(const Block128 *in, Block128 *out,
                               std::size_t n) const
    {
        for (std::size_t i = 0; i < n; ++i)
            encryptBlock(in[i], out[i]);
    }
};

} // namespace secndp

#endif // SECNDP_CRYPTO_BLOCK_CIPHER_HH
