/**
 * @file
 * Tweaked counter-mode one-time-pad generation.
 *
 * Implements the randomized encryption systems E_00(), E_01(), E_10()
 * of paper Definition A.2: a block cipher evaluated over
 * (domain || address || version || zero padding). Domain '00' pads the
 * arithmetic-encrypted data (Alg. 1), '01' derives the checksum secret
 * s (Alg. 2), and '10' pads the verification tags (Alg. 3). Domain
 * separation is what keeps the three uses independent.
 *
 * Block input layout (128 bits, little-endian fields):
 *   byte 0       : domain tag (2 significant bits)
 *   bytes 1..7   : byte address (56 bits; the paper's w_A = 38 fits)
 *   bytes 8..15  : version number v (64 bits)
 * Injective over (domain, addr, v), which is all the proofs require.
 */

#ifndef SECNDP_CRYPTO_COUNTER_MODE_HH
#define SECNDP_CRYPTO_COUNTER_MODE_HH

#include <cstdint>
#include <span>

#include "crypto/block_cipher.hh"
#include "ring/mersenne.hh"
#include "ring/ring_buffer.hh"

namespace secndp {

/** Tweak domains of Definition A.2. */
enum class TweakDomain : std::uint8_t
{
    Data = 0b00,     ///< E_00: OTPs for arithmetic encryption (Alg. 1)
    Checksum = 0b01, ///< E_01: the checksum secret s (Alg. 2)
    Tag = 0b10,      ///< E_10: OTPs for encrypted tags (Alg. 3)
};

/** Assemble the counter block for (domain, addr, version). */
Block128 buildCounterBlock(TweakDomain domain, std::uint64_t addr,
                           std::uint64_t version);

/**
 * Counter-mode pad generator bound to one block cipher instance.
 * Stateless beyond the cipher; all methods are const and thread-safe
 * given a thread-safe cipher.
 */
class CounterModeEncryptor
{
  public:
    /**
     * Independent counter blocks handed to the cipher per batched
     * call: enough to keep the widest kernel (VAES, 8 blocks/group)
     * saturated while staying stack-friendly.
     */
    static constexpr std::size_t batchBlocks = 8;

    /** cipher must outlive this object. */
    explicit CounterModeEncryptor(const BlockCipher &cipher)
        : cipher_(cipher)
    {}

    /**
     * OTP block for the w_c-aligned 16-byte chunk at byte address
     * `addr` (Alg. 1 line 7). addr must be 16-byte aligned.
     */
    Block128 otpBlock(std::uint64_t addr, std::uint64_t version) const;

    /**
     * OTP blocks for out.size() *consecutive* chunks starting at the
     * 16-byte-aligned address `addr`: out[i] covers addr + 16 * i.
     * Counter blocks are built in place and pipelined through the
     * cipher's batch entry point.
     */
    void otpBlocks(std::uint64_t addr, std::uint64_t version,
                   std::span<Block128> out) const;

    /**
     * OTP for the single w_e-bit element located at byte address
     * `paddr` (Alg. 4 lines 9-11): encrypt the containing chunk and
     * slice out this element's substring.
     */
    std::uint64_t otpElement(std::uint64_t paddr, ElemWidth we,
                             std::uint64_t version) const;

    /**
     * Cache of the last OTP chunk pad, for scalar-friendly streaming
     * loops: consecutive elements inside one 16-byte chunk cost a
     * single cipher call regardless of backend. Value-type; callers
     * own one per (stream, version) and may reuse it across versions
     * (the key includes the version).
     */
    struct PadCache
    {
        std::uint64_t chunkAddr = ~std::uint64_t{0};
        std::uint64_t version = 0;
        bool valid = false;
        Block128 pad{};
    };

    /** otpElement through a chunk-pad cache (Alg. 4 amortized). */
    std::uint64_t otpElementCached(PadCache &cache, std::uint64_t paddr,
                                   ElemWidth we,
                                   std::uint64_t version) const;

    /**
     * Batch form of otpElement: out[k] is the pad for the element at
     * paddrs[k]. Runs of elements sharing a 16-byte chunk reuse one
     * pad; distinct chunks are pipelined through the cipher in groups
     * of up to batchBlocks. Element addresses may be arbitrary
     * (scattered gather patterns included).
     */
    void otpElements(std::span<const std::uint64_t> paddrs, ElemWidth we,
                     std::uint64_t version,
                     std::span<std::uint64_t> out) const;

    /**
     * Fill `out` with OTP bytes for the byte range starting at the
     * 16-byte-aligned address `addr` (bulk form of Alg. 1), batching
     * whole blocks through the cipher. out.size() need not be a
     * multiple of 16.
     */
    void otpFillBatch(std::uint64_t addr, std::uint64_t version,
                      std::span<std::uint8_t> out) const;

    /** Alias of otpFillBatch (the historical name). */
    void otpFill(std::uint64_t addr, std::uint64_t version,
                 std::span<std::uint8_t> out) const
    {
        otpFillBatch(addr, version, out);
    }

    /**
     * Batch tag pads: out[k] = first w_t bits of
     * E(K, 10 || paddr_rows[k] || v), pipelined through the cipher
     * (bulk form of Alg. 3 line 4 / Alg. 5 lines 11-14).
     */
    void tagOtps(std::span<const std::uint64_t> paddr_rows,
                 std::uint64_t version, std::span<Fq127> out) const;

    /**
     * Checksum secret s: first w_t = 127 bits of
     * E(K, 01 || paddr(P) || v), as a field element (Alg. 2 line 4).
     */
    Fq127 checksumSecret(std::uint64_t paddr_matrix,
                         std::uint64_t version) const;

    /**
     * Tag pad E_Ti: first w_t bits of E(K, 10 || paddr(P_i) || v)
     * (Alg. 3 line 4).
     */
    Fq127 tagOtp(std::uint64_t paddr_row, std::uint64_t version) const;

    const BlockCipher &cipher() const { return cipher_; }

  private:
    /** Low 127 bits of a cipher output block, reduced into F_q. */
    static Fq127 first127(const Block128 &block);

    const BlockCipher &cipher_;
};

} // namespace secndp

#endif // SECNDP_CRYPTO_COUNTER_MODE_HH
