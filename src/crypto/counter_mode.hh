/**
 * @file
 * Tweaked counter-mode one-time-pad generation.
 *
 * Implements the randomized encryption systems E_00(), E_01(), E_10()
 * of paper Definition A.2: a block cipher evaluated over
 * (domain || address || version || zero padding). Domain '00' pads the
 * arithmetic-encrypted data (Alg. 1), '01' derives the checksum secret
 * s (Alg. 2), and '10' pads the verification tags (Alg. 3). Domain
 * separation is what keeps the three uses independent.
 *
 * Block input layout (128 bits, little-endian fields):
 *   byte 0       : domain tag (2 significant bits)
 *   bytes 1..7   : byte address (56 bits; the paper's w_A = 38 fits)
 *   bytes 8..15  : version number v (64 bits)
 * Injective over (domain, addr, v), which is all the proofs require.
 */

#ifndef SECNDP_CRYPTO_COUNTER_MODE_HH
#define SECNDP_CRYPTO_COUNTER_MODE_HH

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>

#include "common/logging.hh"
#include "crypto/block_cipher.hh"
#include "ring/mersenne.hh"
#include "ring/ring_buffer.hh"

namespace secndp {

/** Tweak domains of Definition A.2. */
enum class TweakDomain : std::uint8_t
{
    Data = 0b00,     ///< E_00: OTPs for arithmetic encryption (Alg. 1)
    Checksum = 0b01, ///< E_01: the checksum secret s (Alg. 2)
    Tag = 0b10,      ///< E_10: OTPs for encrypted tags (Alg. 3)
};

/** Assemble the counter block for (domain, addr, version). */
Block128 buildCounterBlock(TweakDomain domain, std::uint64_t addr,
                           std::uint64_t version);

/**
 * Counter-mode pad generator bound to one block cipher instance.
 * Stateless beyond the cipher; all methods are const and thread-safe
 * given a thread-safe cipher.
 */
class CounterModeEncryptor
{
  public:
    /**
     * Independent counter blocks handed to the cipher per batched
     * call: enough to keep the widest kernel (VAES, 8 blocks/group)
     * saturated while staying stack-friendly.
     */
    static constexpr std::size_t batchBlocks = 8;

    /** cipher must outlive this object. */
    explicit CounterModeEncryptor(const BlockCipher &cipher)
        : cipher_(cipher)
    {}

    /**
     * OTP block for the w_c-aligned 16-byte chunk at byte address
     * `addr` (Alg. 1 line 7). addr must be 16-byte aligned.
     */
    Block128 otpBlock(std::uint64_t addr, std::uint64_t version) const;

    /**
     * OTP blocks for out.size() *consecutive* chunks starting at the
     * 16-byte-aligned address `addr`: out[i] covers addr + 16 * i.
     * Counter blocks are built in place and pipelined through the
     * cipher's batch entry point.
     */
    void otpBlocks(std::uint64_t addr, std::uint64_t version,
                   std::span<Block128> out) const;

    /**
     * OTP blocks for *scattered* 16-byte-aligned chunk addresses:
     * out[i] covers addrs[i]. Pipelined through the cipher in groups
     * of up to batchBlocks (the gather form of otpBlocks; cache-miss
     * lists are the typical caller).
     */
    void otpBlocksAt(std::span<const std::uint64_t> addrs,
                     std::uint64_t version,
                     std::span<Block128> out) const;

    /**
     * OTP for the single w_e-bit element located at byte address
     * `paddr` (Alg. 4 lines 9-11): encrypt the containing chunk and
     * slice out this element's substring.
     */
    std::uint64_t otpElement(std::uint64_t paddr, ElemWidth we,
                             std::uint64_t version) const;

    /**
     * @name Cache-backed pad generation
     *
     * Each variant consults a pad store before invoking the cipher
     * and inserts every freshly generated chunk pad back. `Cache` is
     * any type with the (chunkAddr, version) keyed pair
     *   bool lookup(std::uint64_t, std::uint64_t, Block128 *)
     *   void insert(std::uint64_t, std::uint64_t, const Block128 &)
     * -- in practice secndp::ShardedPadCache (the trusted-side shared
     * cache, src/cache) or secndp::InlinePadCache (the one-entry
     * adapter for scalar streaming loops). The store owns version
     * safety: a lookup only hits on an exact (address, version)
     * match, so these methods never see a stale pad.
     */
    /// @{

    /** otpElement through a chunk-pad store (Alg. 4 amortized). */
    template <typename Cache>
    std::uint64_t otpElementCached(Cache &cache, std::uint64_t paddr,
                                   ElemWidth we,
                                   std::uint64_t version) const;

    /** otpBlocks with per-chunk store probes; misses are pipelined
     *  through the cipher in groups of up to batchBlocks. */
    template <typename Cache>
    void otpBlocksCached(Cache &cache, std::uint64_t addr,
                         std::uint64_t version,
                         std::span<Block128> out) const;

    /** otpFillBatch through a chunk-pad store. */
    template <typename Cache>
    void otpFillCached(Cache &cache, std::uint64_t addr,
                       std::uint64_t version,
                       std::span<std::uint8_t> out) const;

    /// @}

    /**
     * Batch form of otpElement: out[k] is the pad for the element at
     * paddrs[k]. Runs of elements sharing a 16-byte chunk reuse one
     * pad; distinct chunks are pipelined through the cipher in groups
     * of up to batchBlocks. Element addresses may be arbitrary
     * (scattered gather patterns included).
     */
    void otpElements(std::span<const std::uint64_t> paddrs, ElemWidth we,
                     std::uint64_t version,
                     std::span<std::uint64_t> out) const;

    /**
     * Fill `out` with OTP bytes for the byte range starting at the
     * 16-byte-aligned address `addr` (bulk form of Alg. 1), batching
     * whole blocks through the cipher. out.size() need not be a
     * multiple of 16.
     */
    void otpFillBatch(std::uint64_t addr, std::uint64_t version,
                      std::span<std::uint8_t> out) const;

    /** Alias of otpFillBatch (the historical name). */
    void otpFill(std::uint64_t addr, std::uint64_t version,
                 std::span<std::uint8_t> out) const
    {
        otpFillBatch(addr, version, out);
    }

    /**
     * Batch tag pads: out[k] = first w_t bits of
     * E(K, 10 || paddr_rows[k] || v), pipelined through the cipher
     * (bulk form of Alg. 3 line 4 / Alg. 5 lines 11-14).
     */
    void tagOtps(std::span<const std::uint64_t> paddr_rows,
                 std::uint64_t version, std::span<Fq127> out) const;

    /**
     * Checksum secret s: first w_t = 127 bits of
     * E(K, 01 || paddr(P) || v), as a field element (Alg. 2 line 4).
     */
    Fq127 checksumSecret(std::uint64_t paddr_matrix,
                         std::uint64_t version) const;

    /**
     * Tag pad E_Ti: first w_t bits of E(K, 10 || paddr(P_i) || v)
     * (Alg. 3 line 4).
     */
    Fq127 tagOtp(std::uint64_t paddr_row, std::uint64_t version) const;

    const BlockCipher &cipher() const { return cipher_; }

  private:
    /** Low 127 bits of a cipher output block, reduced into F_q. */
    static Fq127 first127(const Block128 &block);

    const BlockCipher &cipher_;
};

template <typename Cache>
std::uint64_t
CounterModeEncryptor::otpElementCached(Cache &cache,
                                       std::uint64_t paddr,
                                       ElemWidth we,
                                       std::uint64_t version) const
{
    const std::uint64_t chunk_addr =
        paddr & ~std::uint64_t{BlockCipher::blockBytes - 1};
    Block128 pad;
    if (!cache.lookup(chunk_addr, version, &pad)) {
        pad = otpBlock(chunk_addr, version);
        cache.insert(chunk_addr, version, pad);
    }
    const unsigned offset = static_cast<unsigned>(paddr - chunk_addr);
    SECNDP_ASSERT(offset % bytes(we) == 0,
                  "element address %lu not aligned to %u-bit width",
                  paddr, bits(we));
    std::uint64_t v = 0;
    std::memcpy(&v, pad.data() + offset, bytes(we));
    return v;
}

template <typename Cache>
void
CounterModeEncryptor::otpBlocksCached(Cache &cache, std::uint64_t addr,
                                      std::uint64_t version,
                                      std::span<Block128> out) const
{
    std::size_t i = 0;
    while (i < out.size()) {
        // Probe the store chunk by chunk; gather up to batchBlocks
        // misses and pipeline them through one cipher call.
        Block128 miss[batchBlocks];
        std::size_t miss_at[batchBlocks];
        std::size_t nmiss = 0;
        std::size_t j = i;
        for (; j < out.size() && nmiss < batchBlocks; ++j) {
            const std::uint64_t chunk =
                addr + j * BlockCipher::blockBytes;
            if (!cache.lookup(chunk, version, &out[j])) {
                miss[nmiss] = buildCounterBlock(TweakDomain::Data,
                                                chunk, version);
                miss_at[nmiss] = j;
                ++nmiss;
            }
        }
        if (nmiss > 0) {
            cipher_.encryptBlocks(miss, miss, nmiss);
            for (std::size_t k = 0; k < nmiss; ++k) {
                out[miss_at[k]] = miss[k];
                cache.insert(addr +
                                 miss_at[k] * BlockCipher::blockBytes,
                             version, miss[k]);
            }
        }
        i = j;
    }
}

template <typename Cache>
void
CounterModeEncryptor::otpFillCached(Cache &cache, std::uint64_t addr,
                                    std::uint64_t version,
                                    std::span<std::uint8_t> out) const
{
    constexpr std::size_t bb = BlockCipher::blockBytes;
    std::size_t done = 0;
    while (out.size() - done >= bb) {
        const std::size_t nblk =
            std::min<std::size_t>((out.size() - done) / bb,
                                  batchBlocks);
        Block128 blocks[batchBlocks];
        otpBlocksCached(cache, addr + done, version,
                        std::span<Block128>(blocks, nblk));
        std::memcpy(out.data() + done, blocks, nblk * bb);
        done += nblk * bb;
    }
    if (done < out.size()) {
        const std::uint64_t chunk = addr + done;
        Block128 pad;
        if (!cache.lookup(chunk, version, &pad)) {
            pad = otpBlock(chunk, version);
            cache.insert(chunk, version, pad);
        }
        std::memcpy(out.data() + done, pad.data(),
                    out.size() - done);
    }
}

} // namespace secndp

#endif // SECNDP_CRYPTO_COUNTER_MODE_HH
