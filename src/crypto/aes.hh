/**
 * @file
 * AES-128 (FIPS-197) block encryption, implemented from scratch.
 *
 * Counter-mode memory protection only ever uses the forward direction,
 * so no decryption path is provided. Key expansion is always the plain
 * byte-oriented FIPS-197 schedule; the per-block round pipeline is
 * dispatched at construction to the fastest backend the CPU supports
 * (scalar tables / AES-NI / VAES, see crypto/aes_backend.hh). All
 * backends consume the same round keys, so ciphertexts are
 * byte-identical whichever pipeline runs. SECNDP_FORCE_SCALAR=1 pins
 * the portable path process-wide.
 *
 * Correctness is pinned by FIPS-197 Appendix B/C known-answer tests in
 * tests/test_aes.cc and the cross-backend equivalence tests in
 * tests/test_crypto_backends.cc.
 */

#ifndef SECNDP_CRYPTO_AES_HH
#define SECNDP_CRYPTO_AES_HH

#include <array>
#include <cstdint>

#include "crypto/aes_backend.hh"
#include "crypto/block_cipher.hh"

namespace secndp {

/** AES with a 128-bit key. */
class Aes128 : public BlockCipher
{
  public:
    using Key = std::array<std::uint8_t, 16>;

    /**
     * @param key 128-bit key
     * @param backend round-pipeline implementation; defaults to the
     *        fastest supported one and silently downgrades an
     *        unsupported explicit request (tests pass Scalar to pin
     *        the reference path)
     */
    explicit Aes128(const Key &key,
                    AesBackend backend = bestAesBackend())
        : backend_(resolveAesBackend(backend))
    {
        setKey(key);
    }

    /** (Re)derive the round keys from a 128-bit key. */
    void setKey(const Key &key);

    void encryptBlock(const Block128 &in, Block128 &out) const override;
    void encryptBlocks(const Block128 *in, Block128 *out,
                       std::size_t n) const override;

    /** The backend actually in use after downgrade resolution. */
    AesBackend backend() const { return backend_; }

  private:
    static constexpr unsigned numRounds = 10;
    /** Expanded round keys: (numRounds + 1) x 16 bytes. */
    std::array<std::uint8_t, 16 * (numRounds + 1)> roundKeys_{};
    AesBackend backend_ = AesBackend::Scalar;
};

/**
 * AES with a 256-bit key. The SecNDP security bounds (Thm. 1/2) are
 * parametric in w_K; deployments wanting a 2^-256 key-guess term use
 * this cipher with the same counter-mode layer.
 */
class Aes256 : public BlockCipher
{
  public:
    using Key = std::array<std::uint8_t, 32>;

    explicit Aes256(const Key &key,
                    AesBackend backend = bestAesBackend())
        : backend_(resolveAesBackend(backend))
    {
        setKey(key);
    }

    /** (Re)derive the round keys from a 256-bit key. */
    void setKey(const Key &key);

    void encryptBlock(const Block128 &in, Block128 &out) const override;
    void encryptBlocks(const Block128 *in, Block128 *out,
                       std::size_t n) const override;

    /** The backend actually in use after downgrade resolution. */
    AesBackend backend() const { return backend_; }

  private:
    static constexpr unsigned numRounds = 14;
    std::array<std::uint8_t, 16 * (numRounds + 1)> roundKeys_{};
    AesBackend backend_ = AesBackend::Scalar;
};

} // namespace secndp

#endif // SECNDP_CRYPTO_AES_HH
