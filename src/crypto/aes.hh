/**
 * @file
 * AES-128 (FIPS-197) block encryption, implemented from scratch.
 *
 * Counter-mode memory protection only ever uses the forward direction,
 * so no decryption path is provided. The implementation is a plain
 * byte-oriented version (S-box table + xtime MixColumns): simple to
 * audit and plenty fast for simulation, where the *modeled* AES engine
 * throughput (111.3 Gbps, [22]) is what the evaluation uses.
 *
 * Correctness is pinned by FIPS-197 Appendix B/C known-answer tests in
 * tests/test_aes.cc.
 */

#ifndef SECNDP_CRYPTO_AES_HH
#define SECNDP_CRYPTO_AES_HH

#include <array>
#include <cstdint>

#include "crypto/block_cipher.hh"

namespace secndp {

/** AES with a 128-bit key. */
class Aes128 : public BlockCipher
{
  public:
    using Key = std::array<std::uint8_t, 16>;

    explicit Aes128(const Key &key) { setKey(key); }

    /** (Re)derive the round keys from a 128-bit key. */
    void setKey(const Key &key);

    void encryptBlock(const Block128 &in, Block128 &out) const override;

  private:
    static constexpr unsigned numRounds = 10;
    /** Expanded round keys: (numRounds + 1) x 16 bytes. */
    std::array<std::uint8_t, 16 * (numRounds + 1)> roundKeys_{};
};

/**
 * AES with a 256-bit key. The SecNDP security bounds (Thm. 1/2) are
 * parametric in w_K; deployments wanting a 2^-256 key-guess term use
 * this cipher with the same counter-mode layer.
 */
class Aes256 : public BlockCipher
{
  public:
    using Key = std::array<std::uint8_t, 32>;

    explicit Aes256(const Key &key) { setKey(key); }

    /** (Re)derive the round keys from a 256-bit key. */
    void setKey(const Key &key);

    void encryptBlock(const Block128 &in, Block128 &out) const override;

  private:
    static constexpr unsigned numRounds = 14;
    std::array<std::uint8_t, 16 * (numRounds + 1)> roundKeys_{};
};

} // namespace secndp

#endif // SECNDP_CRYPTO_AES_HH
