/**
 * @file
 * Verification-driven recovery for the serving layer.
 *
 * When a tag check fails, the trusted side does not know *what* went
 * wrong -- a transient bus flip, a corrupted DIMM, or a malicious NDP
 * -- only that the result cannot be trusted. The recovery ladder
 * degrades gracefully instead of dying on the first bad tag:
 *
 *   1. retry  -- re-read + re-verify, up to maxRetries times, with
 *                exponential backoff between attempts (transient
 *                faults clear; persistent ones keep failing);
 *   2. fallback -- recompute on the trusted host from a full fetch
 *                (bypasses the NDP entirely; always correct, but
 *                costs roughly a TEE-mode query);
 *   3. abort  -- shed the request as a terminal failure (only when
 *                the fallback is disabled by policy).
 *
 * All costs are virtual nanoseconds on the serving timeline, so
 * availability and tail latency *under attack* stay deterministic in
 * the fault seed. Counters land in the "verify" StatGroup
 * (checks/failures/retries/recovered_retry/recovered_fallback/
 * aborted + the recovery_ns histogram).
 */

#ifndef SECNDP_FAULTS_RECOVERY_HH
#define SECNDP_FAULTS_RECOVERY_HH

#include <functional>

#include "common/stats.hh"

namespace secndp {

/** Knobs of the detection-and-recovery ladder. */
struct RecoveryPolicy
{
    /** Re-read + re-verify attempts after the first failure. */
    unsigned maxRetries = 3;
    /** Backoff before the first retry, ns. */
    double backoffBaseNs = 2000.0;
    /** Backoff multiplier per further retry. */
    double backoffMult = 2.0;
    /** Recompute on the trusted host once retries are exhausted. */
    bool hostFallback = true;
    /**
     * Virtual cost of the host recompute, as a multiple of the
     * request's NDP service time (full fetch + decrypt + host sum;
     * roughly the TEE/NDP speedup ratio).
     */
    double fallbackCostFactor = 4.0;
};

/** Terminal state of one recovery episode. */
enum class RecoveryOutcome
{
    Clean,             ///< first verification passed
    RecoveredRetry,    ///< a re-read verified
    RecoveredFallback, ///< trusted host recompute served the request
    Aborted,           ///< shed: retries exhausted, fallback disabled
};

const char *recoveryOutcomeName(RecoveryOutcome outcome);

/** Runs the recovery ladder and owns the "verify" stat group. */
class RecoveryLoop
{
  public:
    explicit RecoveryLoop(RecoveryPolicy policy);

    struct Result
    {
        RecoveryOutcome outcome = RecoveryOutcome::Clean;
        /** Verification attempts, including the first. */
        unsigned attempts = 1;
        /** Extra virtual time spent recovering, ns. */
        double penaltyNs = 0.0;
    };

    /**
     * Drive one request through the ladder. `attempt` performs one
     * read + verify and returns whether the tag check passed;
     * `reread_cost_ns` is the virtual cost of one re-read (typically
     * the request's original service time).
     */
    Result run(const std::function<bool()> &attempt,
               double reread_cost_ns);

    const RecoveryPolicy &policy() const { return policy_; }

  private:
    RecoveryPolicy policy_;
    StatGroup verify_{"verify"};
};

} // namespace secndp

#endif // SECNDP_FAULTS_RECOVERY_HH
