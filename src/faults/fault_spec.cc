#include "faults/fault_spec.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace secndp {

namespace {

const char *const kindNames[faultKindCount] = {
    "flip", "burst", "tag", "replay", "wrong", "forge", "drop",
};

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    out = std::strtoull(s.c_str(), &end, 0); // 0x... accepted
    return errno == 0 && end && *end == '\0';
}

bool
parseDouble(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    out = std::strtod(s.c_str(), &end);
    return errno == 0 && end && *end == '\0';
}

bool
fail(std::string *err, const std::string &msg)
{
    if (err)
        *err = msg;
    return false;
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    return kindNames[static_cast<unsigned>(kind)];
}

bool
parseFaultKind(const std::string &name, FaultKind &out)
{
    for (unsigned k = 0; k < faultKindCount; ++k) {
        if (name == kindNames[k]) {
            out = static_cast<FaultKind>(k);
            return true;
        }
    }
    return false;
}

bool
parseFaultSpec(const std::string &text, FaultSpec &out,
               std::string *err)
{
    out.rules.clear();
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t semi = text.find(';', pos);
        const std::string item = text.substr(
            pos, semi == std::string::npos ? std::string::npos
                                           : semi - pos);
        pos = semi == std::string::npos ? text.size() : semi + 1;
        if (item.empty())
            continue;

        const std::size_t colon = item.find(':');
        const std::string kind_name = item.substr(0, colon);
        FaultRule rule;
        if (!parseFaultKind(kind_name, rule.kind))
            return fail(err, "unknown fault kind '" + kind_name + "'");

        std::string opts =
            colon == std::string::npos ? "" : item.substr(colon + 1);
        std::size_t opos = 0;
        while (opos < opts.size()) {
            const std::size_t comma = opts.find(',', opos);
            const std::string kv = opts.substr(
                opos, comma == std::string::npos ? std::string::npos
                                                 : comma - opos);
            opos = comma == std::string::npos ? opts.size()
                                              : comma + 1;
            if (kv.empty())
                continue;
            const std::size_t eq = kv.find('=');
            if (eq == std::string::npos)
                return fail(err, "expected key=value, got '" + kv +
                                     "'");
            const std::string key = kv.substr(0, eq);
            const std::string val = kv.substr(eq + 1);
            std::uint64_t u = 0;
            if (key == "rate") {
                if (!parseDouble(val, rule.rate) || rule.rate < 0.0 ||
                    rule.rate > 1.0)
                    return fail(err, "bad rate '" + val + "'");
            } else if (key == "one_shot") {
                if (!parseU64(val, u))
                    return fail(err, "bad one_shot '" + val + "'");
                rule.oneShotAt = static_cast<std::int64_t>(u);
            } else if (key == "addr") {
                if (!parseU64(val, rule.addrLo))
                    return fail(err, "bad addr '" + val + "'");
            } else if (key == "addr_end") {
                if (!parseU64(val, rule.addrHi))
                    return fail(err, "bad addr_end '" + val + "'");
            } else if (key == "len") {
                if (!parseU64(val, u) || u == 0)
                    return fail(err, "bad len '" + val + "'");
                rule.burstLen = static_cast<unsigned>(u);
            } else if (key == "chan") {
                if (!parseU64(val, u))
                    return fail(err, "bad chan '" + val + "'");
                rule.channel = static_cast<int>(u);
            } else if (key == "chans") {
                if (!parseU64(val, u) || u == 0)
                    return fail(err, "bad chans '" + val + "'");
                rule.channels = static_cast<unsigned>(u);
            } else {
                return fail(err, "unknown fault option '" + key + "'");
            }
        }
        if (rule.addrLo >= rule.addrHi)
            return fail(err, "empty address scope in '" + item + "'");
        if (rule.channel >= 0 &&
            rule.channel >= static_cast<int>(rule.channels))
            return fail(err, "chan out of range in '" + item + "'");
        out.rules.push_back(rule);
    }
    return true;
}

std::string
faultSpecToString(const FaultSpec &spec)
{
    std::string s;
    for (const FaultRule &r : spec.rules) {
        if (!s.empty())
            s += ';';
        s += faultKindName(r.kind);
        char buf[96];
        if (r.oneShotAt >= 0) {
            std::snprintf(buf, sizeof(buf), ":one_shot=%lld",
                          static_cast<long long>(r.oneShotAt));
        } else {
            std::snprintf(buf, sizeof(buf), ":rate=%g", r.rate);
        }
        s += buf;
        if (r.addrLo != 0 || r.addrHi != ~std::uint64_t{0}) {
            std::snprintf(buf, sizeof(buf),
                          ",addr=0x%llx,addr_end=0x%llx",
                          static_cast<unsigned long long>(r.addrLo),
                          static_cast<unsigned long long>(r.addrHi));
            s += buf;
        }
        if (r.kind == FaultKind::Burst && r.burstLen != 8) {
            std::snprintf(buf, sizeof(buf), ",len=%u", r.burstLen);
            s += buf;
        }
        if (r.channel >= 0) {
            std::snprintf(buf, sizeof(buf), ",chan=%d,chans=%u",
                          r.channel, r.channels);
            s += buf;
        }
    }
    return s;
}

} // namespace secndp
