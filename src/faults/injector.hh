/**
 * @file
 * The seeded, policy-driven adversary: a TamperHook implementation
 * that corrupts the untrusted world according to a FaultSpec.
 *
 * Injection points (see secndp/tamper_hook.hh) cover the paper's
 * threat model end to end: ciphertext bit flips and burst corruption
 * at read time, stored-tag corruption, stale-snapshot replay,
 * tampered NDP partial sums, and forged or dropped C_Tres tags.
 * Every decision is drawn from a private xoshiro Rng, so a
 * (spec, seed) pair replays the identical attack bit-for-bit -- the
 * property the redteam harness and the CI smoke job rely on.
 *
 * Accounting: each actual injection is recorded as a TamperEvent and
 * counted in the "faults" StatGroup; the per-query correlation ledger
 * (beginQuery / queryInjections / recordOutcome) feeds the "verify"
 * detection counters (detected / missed / false_alarms) and the
 * detection_rate scalar. Both groups exist only while an injector is
 * alive, so runs without injection emit byte-identical reports to the
 * pre-adversary baselines.
 *
 * Thread safety: none -- one injector serves one (single-threaded)
 * query loop, matching the single-writer StatGroup contract.
 */

#ifndef SECNDP_FAULTS_INJECTOR_HH
#define SECNDP_FAULTS_INJECTOR_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "faults/fault_spec.hh"
#include "secndp/tamper_hook.hh"

namespace secndp {

/** One recorded injection. */
struct TamperEvent
{
    FaultKind kind = FaultKind::BitFlip;
    /** Site byte address (base address for query-level faults). */
    std::uint64_t addr = 0;
    /** Query ordinal (beginQuery count) the fault landed in. */
    std::uint64_t query = 0;
    /** Global event index. */
    std::uint64_t ordinal = 0;
    /**
     * The victim request's trace ID: the RequestTracer thread-local
     * context at injection time (RequestTracer::noTrace when no
     * request was in scope). Survives SECNDP_TRACING=0 builds, so
     * fault -> victim attribution is checkable even without spans --
     * the redteam harness asserts every event links to exactly one
     * victim query.
     */
    std::uint64_t victimTrace = ~std::uint64_t{0};
};

/** Policy-driven, seeded fault injector (see file doc). */
class FaultInjector final : public TamperHook
{
  public:
    /**
     * @param spec            rules to apply (must be enabled())
     * @param seed            Rng seed; same (spec, seed) => same attack
     * @param register_stats  false keeps the faults/verify groups out
     *        of the process-wide registry (sweep harnesses aggregate
     *        many injectors and publish one summary instead)
     */
    FaultInjector(FaultSpec spec, std::uint64_t seed,
                  bool register_stats = true);

    /** @name TamperHook implementation */
    /// @{
    bool replayQuery(std::uint64_t base_addr) override;
    std::uint64_t onCipherRead(std::uint64_t addr, std::uint64_t value,
                               ElemWidth we) override;
    Fq127 onTagRead(std::uint64_t row_addr, Fq127 tag) override;
    void onResult(std::uint64_t base_addr,
                  std::span<std::uint64_t> values,
                  ElemWidth we) override;
    std::optional<Fq127> onResultTag(std::uint64_t base_addr,
                                     Fq127 tag) override;
    /// @}

    /** @name Per-query correlation ledger */
    /// @{
    /** Start a new query window (resets the injection count). */
    void beginQuery();

    /** Injections since the last beginQuery(). */
    std::uint64_t queryInjections() const { return queryInjected_; }

    /**
     * Record the verification outcome of the query started by the
     * last beginQuery(): injected && !verified -> detected,
     * injected && verified && result correct -> benign (the fault
     * annihilated mod 2^we -- SecNDP claims result integrity, not
     * memory integrity, so passing is sound), injected && verified
     * && result wrong -> missed (a successful forgery!),
     * clean && !verified -> false alarm.
     *
     * @param verified      did the tag check pass?
     * @param result_intact when verified with injections in flight:
     *        did the caller confirm the delivered values equal an
     *        honest (hook-detached) re-read? Ignored otherwise.
     */
    void recordOutcome(bool verified, bool result_intact = false);
    /// @}

    /** @name Aggregate accounting */
    /// @{
    const std::vector<TamperEvent> &events() const { return events_; }
    std::uint64_t injectedTotal() const { return injectedTotal_; }
    std::uint64_t injectedOf(FaultKind kind) const
    {
        return injectedByKind_[static_cast<unsigned>(kind)];
    }
    std::uint64_t faultedQueries() const { return faultedQueries_; }
    std::uint64_t cleanQueries() const { return cleanQueries_; }
    std::uint64_t detectedQueries() const { return detected_; }
    std::uint64_t benignQueries() const { return benign_; }
    std::uint64_t missedQueries() const { return missed_; }
    std::uint64_t falseAlarms() const { return falseAlarms_; }

    /** detected / (detected + missed); 1.0 when nothing injected. */
    double detectionRate() const;
    /// @}

    const FaultSpec &spec() const { return spec_; }

  private:
    struct RuleState
    {
        FaultRule rule;
        std::uint64_t decisions = 0;
        bool oneShotFired = false;
    };

    /**
     * Should a fault of `kind` fire at `addr`? Walks every matching
     * rule: one-shots fire at their configured decision ordinal,
     * rate rules roll the Rng. Each matching rule advances its own
     * decision counter.
     */
    bool fire(FaultKind kind, std::uint64_t addr);

    /** Record an injection (event log + counters + trace). */
    void record(FaultKind kind, std::uint64_t addr);

    FaultSpec spec_;
    Rng rng_;
    std::vector<RuleState> ruleStates_;

    StatGroup faults_;
    StatGroup verify_;

    std::vector<TamperEvent> events_;
    std::uint64_t injectedByKind_[faultKindCount] = {};
    std::uint64_t injectedTotal_ = 0;

    std::uint64_t queryOrdinal_ = 0;
    std::uint64_t queryInjected_ = 0;
    std::uint64_t faultedQueries_ = 0;
    std::uint64_t cleanQueries_ = 0;
    std::uint64_t detected_ = 0;
    std::uint64_t benign_ = 0;
    std::uint64_t missed_ = 0;
    std::uint64_t falseAlarms_ = 0;

    /** Remaining elements of an in-flight burst. */
    unsigned burstRemaining_ = 0;

    /** Lazily-created trace track (-1 until first event). */
    std::int64_t traceTrack_ = -1;
};

} // namespace secndp

#endif // SECNDP_FAULTS_INJECTOR_HH
