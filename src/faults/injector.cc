#include "faults/injector.hh"

#include "common/logging.hh"
#include "common/request_trace.hh"
#include "common/trace_event.hh"

namespace secndp {

namespace {

StatGroup
makeGroup(const char *name, bool registered)
{
    return registered ? StatGroup(name)
                      : StatGroup(name, StatGroup::noRegister);
}

} // namespace

FaultInjector::FaultInjector(FaultSpec spec, std::uint64_t seed,
                             bool register_stats)
    : spec_(std::move(spec)), rng_(seed),
      faults_(makeGroup("faults", register_stats)),
      verify_(makeGroup("verify", register_stats))
{
    SECNDP_ASSERT(spec_.enabled(), "FaultInjector needs >= 1 rule");
    ruleStates_.reserve(spec_.rules.size());
    for (const FaultRule &r : spec_.rules)
        ruleStates_.push_back({r, 0, false});
}

bool
FaultInjector::fire(FaultKind kind, std::uint64_t addr)
{
    bool fired = false;
    for (RuleState &rs : ruleStates_) {
        if (rs.rule.kind != kind || !rs.rule.inScope(addr))
            continue;
        const std::uint64_t decision = rs.decisions++;
        if (rs.rule.oneShotAt >= 0) {
            if (!rs.oneShotFired &&
                decision ==
                    static_cast<std::uint64_t>(rs.rule.oneShotAt)) {
                rs.oneShotFired = true;
                fired = true;
            }
        } else if (rng_.nextDouble() < rs.rule.rate) {
            fired = true;
        }
    }
    return fired;
}

void
FaultInjector::record(FaultKind kind, std::uint64_t addr)
{
    TamperEvent ev;
    ev.kind = kind;
    ev.addr = addr;
    ev.query = queryOrdinal_ == 0 ? 0 : queryOrdinal_ - 1;
    ev.ordinal = injectedTotal_;
    // Cross-link to the victim request: whoever drives this query
    // parks its trace ID in the tracer context before reading.
    ev.victimTrace = RequestTracer::current();
    events_.push_back(ev);
    SECNDP_RQSPAN(ev.victimTrace, SpanKind::Fault,
                  RequestTracer::now(), 0.0, 0,
                  static_cast<std::uint64_t>(kind));

    ++injectedTotal_;
    ++injectedByKind_[static_cast<unsigned>(kind)];
    ++queryInjected_;
    ++faults_.counter("injected_total");
    faults_.counter(std::string("injected_") + faultKindName(kind)) +=
        1;

    debugLog("fault injected: %s at 0x%llx (query %llu)",
             faultKindName(kind),
             static_cast<unsigned long long>(addr),
             static_cast<unsigned long long>(ev.query));

#if SECNDP_TRACING
    auto &tracer = Tracer::instance();
    if (tracer.active()) {
        if (traceTrack_ < 0)
            traceTrack_ = tracer.newTrack("faults");
        // The fault track is event-ordinal indexed: injections have
        // no cycle of their own (they fire inside functional reads).
        tracer.complete("fault", faultKindName(kind),
                        static_cast<std::uint32_t>(traceTrack_),
                        static_cast<std::int64_t>(ev.ordinal), 1);
    }
#endif
}

bool
FaultInjector::replayQuery(std::uint64_t base_addr)
{
    if (!fire(FaultKind::Replay, base_addr))
        return false;
    record(FaultKind::Replay, base_addr);
    return true;
}

std::uint64_t
FaultInjector::onCipherRead(std::uint64_t addr, std::uint64_t value,
                            ElemWidth we)
{
    const std::uint64_t mask = elemMask(we);
    if (burstRemaining_ > 0) {
        // An in-flight burst garbles consecutive reads without
        // re-rolling (models a stuck buffer / row-burst error).
        --burstRemaining_;
        record(FaultKind::Burst, addr);
        return rng_.next() & mask;
    }
    if (fire(FaultKind::Burst, addr)) {
        for (const RuleState &rs : ruleStates_) {
            if (rs.rule.kind == FaultKind::Burst &&
                rs.rule.inScope(addr)) {
                burstRemaining_ =
                    rs.rule.burstLen > 0 ? rs.rule.burstLen - 1 : 0;
                break;
            }
        }
        record(FaultKind::Burst, addr);
        return rng_.next() & mask;
    }
    if (fire(FaultKind::BitFlip, addr)) {
        record(FaultKind::BitFlip, addr);
        return value ^ (std::uint64_t{1} << rng_.nextBounded(bits(we)));
    }
    return value;
}

Fq127
FaultInjector::onTagRead(std::uint64_t row_addr, Fq127 tag)
{
    if (!fire(FaultKind::TagCorrupt, row_addr))
        return tag;
    record(FaultKind::TagCorrupt, row_addr);
    // A uniformly random non-zero delta in F_q.
    Fq127 delta = Fq127::fromHalves(rng_.next(), rng_.next());
    if (delta.isZero())
        delta = Fq127(1);
    return tag + delta;
}

void
FaultInjector::onResult(std::uint64_t base_addr,
                        std::span<std::uint64_t> values, ElemWidth we)
{
    if (values.empty() || !fire(FaultKind::WrongResult, base_addr))
        return;
    record(FaultKind::WrongResult, base_addr);
    const std::uint64_t mask = elemMask(we);
    const std::size_t j = rng_.nextBounded(values.size());
    const std::uint64_t delta = (rng_.next() & mask) | 1;
    values[j] = (values[j] + delta) & mask;
}

std::optional<Fq127>
FaultInjector::onResultTag(std::uint64_t base_addr, Fq127 tag)
{
    if (fire(FaultKind::DropTag, base_addr)) {
        record(FaultKind::DropTag, base_addr);
        return std::nullopt;
    }
    if (fire(FaultKind::ForgeTag, base_addr)) {
        record(FaultKind::ForgeTag, base_addr);
        // The best an adversary without K can do: a uniform guess
        // (success probability ~ m/q ~ 2^-123 for m = 16).
        return Fq127::fromHalves(rng_.next(), rng_.next());
    }
    return tag;
}

void
FaultInjector::beginQuery()
{
    ++queryOrdinal_;
    queryInjected_ = 0;
    // A burst never spans a query boundary: the next query re-reads.
    burstRemaining_ = 0;
}

void
FaultInjector::recordOutcome(bool verified, bool result_intact)
{
    ++verify_.counter("checks");
    if (!verified)
        ++verify_.counter("failures");
    if (queryInjected_ > 0) {
        ++faultedQueries_;
        ++faults_.counter("queries_faulted");
        if (verified && result_intact) {
            // The injection annihilated in the linear combination
            // (e.g. a flipped bit whose weighted contribution is
            // 0 mod 2^we): the delivered result is correct, and
            // SecNDP only claims result integrity, not memory
            // integrity. Verification rightly passed.
            ++benign_;
            ++verify_.counter("benign");
        } else if (verified) {
            ++missed_;
            ++verify_.counter("missed");
            warn("tampered query VERIFIED: %llu injections slipped "
                 "past the tag check (forgery?)",
                 static_cast<unsigned long long>(queryInjected_));
            // A successful forgery is a flight-recorder anomaly: the
            // dump preserves the spans leading up to it.
            SECNDP_RQANOMALY(AnomalyKind::MissedForgery,
                             RequestTracer::current(),
                             RequestTracer::now());
        } else {
            ++detected_;
            ++verify_.counter("detected");
        }
    } else {
        ++cleanQueries_;
        ++faults_.counter("queries_clean");
        if (!verified) {
            ++falseAlarms_;
            ++verify_.counter("false_alarms");
        }
    }
    verify_.scalar("detection_rate") = detectionRate();
}

double
FaultInjector::detectionRate() const
{
    const std::uint64_t total = detected_ + missed_;
    return total == 0 ? 1.0
                      : static_cast<double>(detected_) / total;
}

} // namespace secndp
