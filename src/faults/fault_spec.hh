/**
 * @file
 * Declarative fault/attack configurations for the adversary subsystem.
 *
 * A FaultSpec is a list of rules, each naming a fault kind (what the
 * adversary does), a firing model (per-site probability, or a one-shot
 * at the Nth decision point), and an optional scope (byte-address
 * range and/or line-interleaved channel). Rules are parsed from a
 * compact CLI string so every tool can take the same `--inject` flag:
 *
 *   flip:rate=1e-6
 *   flip:rate=1e-4;replay:rate=0.5,addr=0x20000
 *   wrong:one_shot=5
 *   burst:rate=0.01,len=16,chan=1,chans=2
 *
 * Grammar: rules separated by ';', each `kind[:key=val[,key=val...]]`.
 * Kinds: flip | burst | tag | replay | wrong | forge | drop.
 * Keys:  rate (probability per decision point, default 1.0),
 *        one_shot (fire exactly once at the Nth decision, 0-based;
 *                  overrides rate),
 *        addr / addr_end (byte-address scope, [addr, addr_end)),
 *        len (burst length in elements, default 8),
 *        chan / chans (restrict to one line-interleaved channel).
 */

#ifndef SECNDP_FAULTS_FAULT_SPEC_HH
#define SECNDP_FAULTS_FAULT_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

namespace secndp {

/** What the adversary does at a firing injection point. */
enum class FaultKind : unsigned
{
    BitFlip,     ///< flip one random bit of a ciphertext element read
    Burst,       ///< garbage a run of consecutive element reads
    TagCorrupt,  ///< perturb a stored tag C_Ti as it is read
    Replay,      ///< serve the stale (pre-re-encryption) snapshot
    WrongResult, ///< tamper the NDP partial sum C_res
    ForgeTag,    ///< replace the combined tag C_Tres with a guess
    DropTag,     ///< withhold the combined tag C_Tres entirely
};

/** Number of FaultKind values (for per-kind counters/sweeps). */
constexpr unsigned faultKindCount = 7;

/** Short CLI name: flip | burst | tag | replay | wrong | forge | drop. */
const char *faultKindName(FaultKind kind);

/** Parse a CLI kind name; false on junk. */
bool parseFaultKind(const std::string &name, FaultKind &out);

/** One injection rule. */
struct FaultRule
{
    FaultKind kind = FaultKind::BitFlip;
    /** Firing probability per decision point (ignored if one-shot). */
    double rate = 1.0;
    /** >= 0: fire exactly once, at this 0-based decision ordinal. */
    std::int64_t oneShotAt = -1;
    /** Byte-address scope [addrLo, addrHi). */
    std::uint64_t addrLo = 0;
    std::uint64_t addrHi = ~std::uint64_t{0};
    /** Burst length in elements (Burst only). */
    unsigned burstLen = 8;
    /** >= 0: only addresses mapping to this line-interleaved channel
     *  out of `channels` (64-byte lines, like the memsim mapping). */
    int channel = -1;
    unsigned channels = 2;

    /** Does a byte address fall inside this rule's scope? */
    bool inScope(std::uint64_t addr) const
    {
        if (addr < addrLo || addr >= addrHi)
            return false;
        if (channel >= 0 &&
            static_cast<int>((addr / 64) % channels) != channel)
            return false;
        return true;
    }
};

/** A full injection configuration. */
struct FaultSpec
{
    std::vector<FaultRule> rules;

    bool enabled() const { return !rules.empty(); }
};

/**
 * Parse an `--inject` spec string (see file doc for the grammar).
 * Returns false and sets *err on malformed input. An empty string
 * parses to a disabled spec.
 */
bool parseFaultSpec(const std::string &text, FaultSpec &out,
                    std::string *err = nullptr);

/** Canonical round-trippable rendering (for run metadata). */
std::string faultSpecToString(const FaultSpec &spec);

} // namespace secndp

#endif // SECNDP_FAULTS_FAULT_SPEC_HH
