#include "faults/recovery.hh"

#include "common/request_trace.hh"

namespace secndp {

const char *
recoveryOutcomeName(RecoveryOutcome outcome)
{
    switch (outcome) {
      case RecoveryOutcome::Clean:
        return "clean";
      case RecoveryOutcome::RecoveredRetry:
        return "recovered_retry";
      case RecoveryOutcome::RecoveredFallback:
        return "recovered_fallback";
      case RecoveryOutcome::Aborted:
        return "aborted";
    }
    return "?";
}

RecoveryLoop::RecoveryLoop(RecoveryPolicy policy) : policy_(policy) {}

RecoveryLoop::Result
RecoveryLoop::run(const std::function<bool()> &attempt,
                  double reread_cost_ns)
{
    Result res;
    ++verify_.counter("checks");
    if (attempt())
        return res;
    ++verify_.counter("failures");

    double backoff = policy_.backoffBaseNs;
    for (unsigned r = 0; r < policy_.maxRetries; ++r) {
        ++verify_.counter("retries");
        // Span base: the victim's completion instant (the serving
        // loop parks it in the tracer's thread-local "now" along with
        // the trace ID) plus the penalty already accrued.
        SECNDP_RQSPAN(RequestTracer::current(), SpanKind::Retry,
                      RequestTracer::now() + res.penaltyNs,
                      backoff + reread_cost_ns, 0, r + 1);
        res.penaltyNs += backoff + reread_cost_ns;
        backoff *= policy_.backoffMult;
        ++res.attempts;
        ++verify_.counter("checks");
        if (attempt()) {
            res.outcome = RecoveryOutcome::RecoveredRetry;
            ++verify_.counter("recovered_retry");
            verify_.histogram("recovery_ns").sample(res.penaltyNs);
            return res;
        }
        ++verify_.counter("failures");
    }

    if (policy_.hostFallback) {
        res.outcome = RecoveryOutcome::RecoveredFallback;
        SECNDP_RQSPAN(RequestTracer::current(),
                      SpanKind::HostFallback,
                      RequestTracer::now() + res.penaltyNs,
                      policy_.fallbackCostFactor * reread_cost_ns, 0,
                      res.attempts);
        res.penaltyNs += policy_.fallbackCostFactor * reread_cost_ns;
        ++verify_.counter("recovered_fallback");
        verify_.histogram("recovery_ns").sample(res.penaltyNs);
        return res;
    }

    res.outcome = RecoveryOutcome::Aborted;
    ++verify_.counter("aborted");
    return res;
}

} // namespace secndp
