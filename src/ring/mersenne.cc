#include "ring/mersenne.hh"

#include <algorithm>

#include "common/logging.hh"

namespace secndp {

using u128 = Fq127::u128;

/**
 * Reduce v (< 2^128) modulo q = 2^127 - 1.
 *
 * Mersenne fold: v = hi * 2^127 + lo  =>  v mod q = hi + lo (mod q),
 * since 2^127 = 1 (mod q). After one fold the value fits in 128 bits
 * and is at most q + 1, so one conditional subtraction finishes.
 */
u128
Fq127::reduce(u128 v)
{
    const u128 q = modulus();
    v = (v & q) + (v >> 127);
    if (v >= q)
        v -= q;
    return v;
}

Fq127
Fq127::fromRaw(u128 v)
{
    Fq127 r;
    r.value_ = reduce(v);
    return r;
}

Fq127
Fq127::fromHalves(std::uint64_t lo, std::uint64_t hi)
{
    return fromRaw((static_cast<u128>(hi) << 64) | lo);
}

Fq127
Fq127::operator+(Fq127 o) const
{
    // Both operands < q < 2^127, so the sum fits in 128 bits.
    return fromRaw(value_ + o.value_);
}

Fq127
Fq127::operator-(Fq127 o) const
{
    Fq127 r;
    r.value_ = value_ >= o.value_ ? value_ - o.value_
                                  : value_ + modulus() - o.value_;
    return r;
}

Fq127
Fq127::operator-() const
{
    Fq127 r;
    r.value_ = value_ == 0 ? 0 : modulus() - value_;
    return r;
}

Fq127
Fq127::operator*(Fq127 o) const
{
    // 128x128 -> 256-bit schoolbook product via 64-bit limbs.
    const std::uint64_t a0 = static_cast<std::uint64_t>(value_);
    const std::uint64_t a1 = static_cast<std::uint64_t>(value_ >> 64);
    const std::uint64_t b0 = static_cast<std::uint64_t>(o.value_);
    const std::uint64_t b1 = static_cast<std::uint64_t>(o.value_ >> 64);

    const u128 p00 = static_cast<u128>(a0) * b0;
    const u128 p01 = static_cast<u128>(a0) * b1;
    const u128 p10 = static_cast<u128>(a1) * b0;
    const u128 p11 = static_cast<u128>(a1) * b1;

    // mid = p01 + p10 contributes at bit 64; track its carry into hi.
    u128 mid = p01 + p10;
    u128 carry_mid = mid < p01 ? (u128{1} << 64) : 0;

    u128 lo = p00 + (mid << 64);
    const u128 carry_lo = lo < p00 ? 1 : 0;
    u128 hi = p11 + (mid >> 64) + carry_mid + carry_lo;

    // product = hi * 2^128 + lo; 2^128 = 2 (mod q), and hi < 2^126 so
    // 2*hi fits. Fold twice.
    const u128 q = modulus();
    u128 acc = (lo & q) + (lo >> 127) + ((hi << 1) & q) + (hi >> 126);
    // acc < 4q, fold once more then at most one subtraction.
    acc = (acc & q) + (acc >> 127);
    if (acc >= q)
        acc -= q;
    Fq127 r;
    r.value_ = acc;
    return r;
}

Fq127
Fq127::pow(u128 e) const
{
    Fq127 base = *this;
    Fq127 acc = Fq127(1);
    while (e != 0) {
        if (e & 1)
            acc *= base;
        base *= base;
        e >>= 1;
    }
    return acc;
}

Fq127
Fq127::inverse() const
{
    SECNDP_ASSERT(!isZero(), "inverse of zero in F_q");
    return pow(modulus() - 2);
}

std::string
Fq127::toString() const
{
    if (value_ == 0)
        return "0";
    std::string digits;
    u128 v = value_;
    while (v != 0) {
        digits.push_back(static_cast<char>('0' + static_cast<int>(v % 10)));
        v /= 10;
    }
    std::reverse(digits.begin(), digits.end());
    return digits;
}

} // namespace secndp
