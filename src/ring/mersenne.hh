/**
 * @file
 * Arithmetic in the Mersenne prime field F_q with q = 2^127 - 1.
 *
 * SecNDP's verification tags are linear-modular-hash checksums
 * (Halevi-Krawczyk MMH / CWC style) computed in this field (paper
 * sections IV-F and V-D; Bernstein's hash127 uses the same prime).
 * Mersenne reduction keeps the tag arithmetic close to plain integer
 * arithmetic, which is why the paper picks this q for the NDP PUs.
 *
 * Representation: a value v with 0 <= v < q stored in an
 * unsigned __int128. The redundant encoding q itself is never stored
 * (reduce() maps it to 0).
 */

#ifndef SECNDP_RING_MERSENNE_HH
#define SECNDP_RING_MERSENNE_HH

#include <cstdint>
#include <string>

namespace secndp {

/** An element of F_q, q = 2^127 - 1. */
class Fq127
{
  public:
    using u128 = unsigned __int128;

    /** The field modulus 2^127 - 1. */
    static constexpr u128 modulus()
    {
        return (u128{1} << 127) - 1;
    }

    constexpr Fq127() : value_(0) {}

    /** From a 64-bit unsigned integer (always already reduced). */
    constexpr Fq127(std::uint64_t v) : value_(v) {}

    /** From a raw 128-bit value (reduced mod q). */
    static Fq127 fromRaw(u128 v);

    /** From the low/high 64-bit halves of a 128-bit value. */
    static Fq127 fromHalves(std::uint64_t lo, std::uint64_t hi);

    u128 raw() const { return value_; }
    std::uint64_t lo64() const
    {
        return static_cast<std::uint64_t>(value_);
    }
    std::uint64_t hi64() const
    {
        return static_cast<std::uint64_t>(value_ >> 64);
    }

    Fq127 operator+(Fq127 o) const;
    Fq127 operator-(Fq127 o) const;
    Fq127 operator*(Fq127 o) const;
    Fq127 operator-() const;

    Fq127 &operator+=(Fq127 o) { return *this = *this + o; }
    Fq127 &operator-=(Fq127 o) { return *this = *this - o; }
    Fq127 &operator*=(Fq127 o) { return *this = *this * o; }

    bool operator==(const Fq127 &o) const = default;

    /** this^e by square-and-multiply. */
    Fq127 pow(u128 e) const;

    /** Multiplicative inverse (Fermat); panics on zero. */
    Fq127 inverse() const;

    bool isZero() const { return value_ == 0; }

    /** Decimal string, for diagnostics and golden tests. */
    std::string toString() const;

  private:
    static u128 reduce(u128 v);

    u128 value_;
};

/**
 * Lazy-reduction Horner accumulator: acc <- acc * s + v with the
 * accumulator kept *weakly reduced* (any value < 2^128 congruent to
 * the true result mod q) across the whole loop, and one canonical
 * reduction at the end.
 *
 * Why two cheap folds per step suffice (the proof sketch DESIGN.md
 * §10 references): with acc < 2^128 and s < q < 2^127, the product
 * is < 2^255, so its high 128-bit limb hi is < 2^127 and
 * lo + 2^128 * hi = lo + 2 * hi (mod q, since 2^127 = 1). The first
 * fold r = (lo & q) + (lo >> 127) + ((hi << 1) & q) + (hi >> 126)
 * is <= 2q = 2^128 - 2 (each masked term <= q - 1, each shifted
 * term <= 1); the second fold r = (r & q) + (r >> 127) is <= q, and
 * adding the 64-bit element keeps the accumulator < q + 2^64 < 2^128
 * -- the loop invariant. No conditional subtraction, no canonical
 * normalization, until reduced() runs once per chunk.
 *
 * Fq127::operator* by contrast performs the folds *and* the final
 * conditional subtraction on fully reduced operands at every step;
 * checksum.cc keeps that path as the reference oracle
 * (linearChecksumReference) that tests pin this class against.
 */
class Fq127Horner
{
  public:
    using u128 = Fq127::u128;

    constexpr Fq127Horner() = default;
    explicit Fq127Horner(Fq127 init) : acc_(init.raw()) {}

    /** acc <- acc * s + v (mod q), weakly reduced. */
    void mulAdd(Fq127 s, std::uint64_t v)
    {
        const std::uint64_t a0 = static_cast<std::uint64_t>(acc_);
        const std::uint64_t a1 = static_cast<std::uint64_t>(acc_ >> 64);
        const std::uint64_t b0 = s.lo64();
        const std::uint64_t b1 = s.hi64();

        const u128 p00 = static_cast<u128>(a0) * b0;
        const u128 p01 = static_cast<u128>(a0) * b1;
        const u128 p10 = static_cast<u128>(a1) * b0;
        const u128 p11 = static_cast<u128>(a1) * b1;

        u128 mid = p01 + p10;
        const u128 carry_mid = mid < p01 ? (u128{1} << 64) : 0;
        u128 lo = p00 + (mid << 64);
        const u128 carry_lo = lo < p00 ? 1 : 0;
        const u128 hi = p11 + (mid >> 64) + carry_mid + carry_lo;

        const u128 q = Fq127::modulus();
        u128 r = (lo & q) + (lo >> 127) + ((hi << 1) & q) + (hi >> 126);
        r = (r & q) + (r >> 127);
        acc_ = r + v;
    }

    /** Canonical value (the once-per-chunk full reduction). */
    Fq127 reduced() const { return Fq127::fromRaw(acc_); }

  private:
    u128 acc_ = 0;
};

/**
 * Lazy dot-product accumulator: sum_i a_i * b_i with a_i in F_q and
 * b_i a 64-bit ring element. Products are accumulated *unreduced* in
 * a 256-bit (hi, lo) limb pair -- two 64x64 multiplies and a few adds
 * per term, no modular reduction at all -- and reduced exactly once.
 * Per-product hi contributions are < 2^63, so the high limb cannot
 * overflow before ~2^65 terms.
 */
class Fq127Dot
{
  public:
    using u128 = Fq127::u128;

    /** Accumulate a * b. */
    void addProduct(Fq127 a, std::uint64_t b)
    {
        const u128 p0 = static_cast<u128>(a.lo64()) * b;
        const u128 p1 = static_cast<u128>(a.hi64()) * b;
        const u128 lo = p0 + (p1 << 64);
        const u128 hi = (p1 >> 64) + (lo < p0 ? 1 : 0);
        lo_ += lo;
        hi_ += hi + (lo_ < lo ? 1 : 0);
    }

    /** Canonical value: lo + 2^128 * hi = lo + 2 * hi (mod q). */
    Fq127 reduced() const
    {
        return Fq127::fromRaw(lo_) + Fq127::fromRaw(hi_) * Fq127(2);
    }

  private:
    u128 lo_ = 0;
    u128 hi_ = 0;
};

} // namespace secndp

#endif // SECNDP_RING_MERSENNE_HH
