/**
 * @file
 * Arithmetic in the Mersenne prime field F_q with q = 2^127 - 1.
 *
 * SecNDP's verification tags are linear-modular-hash checksums
 * (Halevi-Krawczyk MMH / CWC style) computed in this field (paper
 * sections IV-F and V-D; Bernstein's hash127 uses the same prime).
 * Mersenne reduction keeps the tag arithmetic close to plain integer
 * arithmetic, which is why the paper picks this q for the NDP PUs.
 *
 * Representation: a value v with 0 <= v < q stored in an
 * unsigned __int128. The redundant encoding q itself is never stored
 * (reduce() maps it to 0).
 */

#ifndef SECNDP_RING_MERSENNE_HH
#define SECNDP_RING_MERSENNE_HH

#include <cstdint>
#include <string>

namespace secndp {

/** An element of F_q, q = 2^127 - 1. */
class Fq127
{
  public:
    using u128 = unsigned __int128;

    /** The field modulus 2^127 - 1. */
    static constexpr u128 modulus()
    {
        return (u128{1} << 127) - 1;
    }

    constexpr Fq127() : value_(0) {}

    /** From a 64-bit unsigned integer (always already reduced). */
    constexpr Fq127(std::uint64_t v) : value_(v) {}

    /** From a raw 128-bit value (reduced mod q). */
    static Fq127 fromRaw(u128 v);

    /** From the low/high 64-bit halves of a 128-bit value. */
    static Fq127 fromHalves(std::uint64_t lo, std::uint64_t hi);

    u128 raw() const { return value_; }
    std::uint64_t lo64() const
    {
        return static_cast<std::uint64_t>(value_);
    }
    std::uint64_t hi64() const
    {
        return static_cast<std::uint64_t>(value_ >> 64);
    }

    Fq127 operator+(Fq127 o) const;
    Fq127 operator-(Fq127 o) const;
    Fq127 operator*(Fq127 o) const;
    Fq127 operator-() const;

    Fq127 &operator+=(Fq127 o) { return *this = *this + o; }
    Fq127 &operator-=(Fq127 o) { return *this = *this - o; }
    Fq127 &operator*=(Fq127 o) { return *this = *this * o; }

    bool operator==(const Fq127 &o) const = default;

    /** this^e by square-and-multiply. */
    Fq127 pow(u128 e) const;

    /** Multiplicative inverse (Fermat); panics on zero. */
    Fq127 inverse() const;

    bool isZero() const { return value_ == 0; }

    /** Decimal string, for diagnostics and golden tests. */
    std::string toString() const;

  private:
    static u128 reduce(u128 v);

    u128 value_;
};

} // namespace secndp

#endif // SECNDP_RING_MERSENNE_HH
