/**
 * @file
 * Flat storage of ring elements with a runtime element width.
 *
 * SecNDP parameterizes the scheme by the element width w_e (8/16/32/64
 * bits; paper section IV-A requires a power of two no larger than a
 * cache line). A RingBuffer stores elements of Z(2^we) packed
 * little-endian in a byte array -- exactly the layout the (simulated)
 * memory sees -- and exposes uint64-valued accessors.
 */

#ifndef SECNDP_RING_RING_BUFFER_HH
#define SECNDP_RING_RING_BUFFER_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace secndp {

/** Supported element widths, in bits. */
enum class ElemWidth : unsigned
{
    W8 = 8,
    W16 = 16,
    W32 = 32,
    W64 = 64,
};

/** Width in bits as an unsigned. */
constexpr unsigned
bits(ElemWidth w)
{
    return static_cast<unsigned>(w);
}

/** Width in bytes. */
constexpr unsigned
bytes(ElemWidth w)
{
    return bits(w) / 8;
}

/** Mask selecting the low bits of one element. */
constexpr std::uint64_t
elemMask(ElemWidth w)
{
    return bits(w) >= 64 ? ~0ULL
                         : ((std::uint64_t{1} << bits(w)) - 1);
}

/** Parse a bit width (8/16/32/64) into an ElemWidth; panics otherwise. */
ElemWidth elemWidthFromBits(unsigned bits);

/** Packed little-endian array of Z(2^we) elements. */
class RingBuffer
{
  public:
    RingBuffer() : width_(ElemWidth::W32) {}
    RingBuffer(std::size_t count, ElemWidth width);

    std::size_t size() const { return count_; }
    ElemWidth width() const { return width_; }
    std::size_t sizeBytes() const { return data_.size(); }

    /** Element i as an unsigned ring value (zero-extended). */
    std::uint64_t get(std::size_t i) const;

    /** Store v mod 2^we into element i. */
    void set(std::size_t i, std::uint64_t v);

    /** Raw byte view (the exact memory image). */
    std::span<const std::uint8_t> byteSpan() const { return data_; }
    std::span<std::uint8_t> byteSpan() { return data_; }

    /** Ring addition into element i: elem[i] = elem[i] + v mod 2^we. */
    void addTo(std::size_t i, std::uint64_t v);

    bool operator==(const RingBuffer &o) const = default;

  private:
    std::vector<std::uint8_t> data_;
    std::size_t count_ = 0;
    ElemWidth width_;
};

} // namespace secndp

#endif // SECNDP_RING_RING_BUFFER_HH
