#include "ring/ring_buffer.hh"

#include <cstring>

#include "common/logging.hh"

namespace secndp {

ElemWidth
elemWidthFromBits(unsigned bits)
{
    switch (bits) {
      case 8: return ElemWidth::W8;
      case 16: return ElemWidth::W16;
      case 32: return ElemWidth::W32;
      case 64: return ElemWidth::W64;
      default:
        panic("unsupported element width %u", bits);
    }
}

RingBuffer::RingBuffer(std::size_t count, ElemWidth width)
    : data_(count * bytes(width), 0), count_(count), width_(width)
{
}

std::uint64_t
RingBuffer::get(std::size_t i) const
{
    SECNDP_ASSERT(i < count_, "index %zu out of %zu", i, count_);
    const unsigned nb = bytes(width_);
    std::uint64_t v = 0;
    std::memcpy(&v, data_.data() + i * nb, nb);
    return v;
}

void
RingBuffer::set(std::size_t i, std::uint64_t v)
{
    SECNDP_ASSERT(i < count_, "index %zu out of %zu", i, count_);
    const unsigned nb = bytes(width_);
    v &= elemMask(width_);
    std::memcpy(data_.data() + i * nb, &v, nb);
}

void
RingBuffer::addTo(std::size_t i, std::uint64_t v)
{
    set(i, get(i) + v);
}

} // namespace secndp
