#include "serve/host_crypto.hh"

#include <algorithm>
#include <span>

#include "common/phase_profiler.hh"
#include "common/rng.hh"
#include "crypto/aes.hh"

namespace secndp {

namespace {

/** Field ops one tag check performs at most (keeps jobs bounded). */
constexpr std::uint64_t verifyOpCap = 4096;

} // namespace

void
runHostCrypto(const CounterModeEncryptor &enc,
              const std::vector<HostCryptoWork> &work, StatGroup &g,
              ShardedPadCache *cache)
{
    ScopedPhase phase("host_crypto");
    constexpr std::size_t bb = CounterModeEncryptor::batchBlocks;
    std::uint8_t sink = 0;
    for (const auto &w : work) {
        if (cache != nullptr &&
            (!w.genChunks.empty() || !w.fetchChunks.empty())) {
            // Cache-aware split (decided on the serve thread): only
            // the admission misses run the cipher; their pads land
            // in the shared cache for every later batch.
            Block128 otp[bb];
            for (std::size_t i = 0; i < w.genChunks.size();) {
                const std::size_t n = std::min<std::size_t>(
                    bb, w.genChunks.size() - i);
                enc.otpBlocksAt(
                    std::span(w.genChunks.data() + i, n), 1,
                    std::span(otp, n));
                for (std::size_t k = 0; k < n; ++k) {
                    cache->fill(w.genChunks[i + k], 1, otp[k]);
                    sink ^= otp[k][0];
                }
                i += n;
            }
            g.counter("otp_blocks") += w.genChunks.size();
            for (const std::uint64_t chunk : w.fetchChunks) {
                Block128 pad;
                // A peek can lose the race against the filling
                // worker; regenerate locally then (uncounted -- the
                // counters stay interleaving-independent).
                if (!cache->peek(chunk, 1, &pad))
                    pad = enc.otpBlock(chunk, 1);
                sink ^= pad[0];
            }
            g.counter("cache_fetched_blocks") +=
                w.fetchChunks.size();
        } else {
            // Data-share OTPs: consecutive chunks pipelined through
            // the batched cipher entry point (the backend decides how
            // many blocks fly per instruction group).
            Block128 otp[bb];
            for (std::uint64_t b = 0; b < w.dataOtpBlocks;) {
                const std::size_t n = std::min<std::uint64_t>(
                    bb, w.dataOtpBlocks - b);
                enc.otpBlocks(w.addr + 16 * b, 1, std::span(otp, n));
                for (std::size_t k = 0; k < n; ++k)
                    sink ^= otp[k][0];
                b += n;
            }
            g.counter("otp_blocks") += w.dataOtpBlocks;
        }
        Fq127 tag_pads[bb];
        std::uint64_t tag_addrs[bb];
        for (std::uint64_t b = 0; b < w.tagOtpBlocks;) {
            const std::size_t n = std::min<std::uint64_t>(
                bb, w.tagOtpBlocks - b);
            for (std::size_t k = 0; k < n; ++k)
                tag_addrs[k] = w.addr + 16 * (b + k);
            enc.tagOtps(std::span(tag_addrs, n), 1,
                        std::span(tag_pads, n));
            for (std::size_t k = 0; k < n; ++k)
                sink ^= static_cast<std::uint8_t>(tag_pads[k].lo64());
            b += n;
        }
        g.counter("tag_otp_blocks") += w.tagOtpBlocks;
        if (w.verifyOps > 0) {
            // E_Tres recombination: Horner-style fold of the checksum
            // secret across the combined weights (Alg. 5 lines 11-14,
            // capped -- counters reflect work actually performed).
            // Lazy reduction: the accumulator stays weakly reduced
            // across the fold and reduces canonically once.
            const std::uint64_t ops =
                std::min(w.verifyOps, verifyOpCap);
            Fq127 s = enc.checksumSecret(w.addr, 1);
            Fq127Horner acc(s);
            for (std::uint64_t k = 0; k < ops; ++k)
                acc.mulAdd(s, k + 1);
            g.counter("field_ops") += ops;
            ++g.counter("tag_checks");
            if (acc.reduced().isZero())
                ++g.counter("degenerate_tags");
        }
    }
    // The cipher is an opaque virtual call so the loops cannot fold
    // away; this branch just pins `sink` as observable.
    if (sink == 0)
        ++g.counter("zero_sink");
    ++g.counter("jobs");
}

IntegrityShadow::IntegrityShadow(const FaultSpec &spec,
                                 std::uint64_t seed,
                                 const RecoveryPolicy &policy,
                                 ShardedPadCache *cache)
    : injector_(spec, seed),
      client_(Aes128::Key{0xad, 0x7e, 0x25, 0xa9, 0xad, 0x7e,
                          0x25, 0xaa, 0xad, 0x7e, 0x25, 0xab,
                          0xad, 0x7e, 0x25, 0xac}),
      recovery_(policy)
{
    client_.attachPadCache(cache);
    // Values < 2^20 with weights <= 8 keep every honest weighted
    // sum far below 2^32, so a clean run always verifies (paper
    // footnote 1: overflow is indistinguishable from tampering).
    Matrix plain(shadowRows, shadowCols, ElemWidth::W32, shadowBase);
    Rng fill(seed ^ 0x9e3779b97f4a7c15ULL);
    for (std::size_t r = 0; r < shadowRows; ++r)
        for (std::size_t c = 0; c < shadowCols; ++c)
            plain.set(r, c, fill.next() & 0xfffff);
    // Provision twice: the first image becomes the device's stale
    // snapshot, so replay rules have real ammunition. (Each
    // provision bumps the version and invalidates any attached
    // cache's view of the region.)
    client_.provision(plain, device_);
    client_.provision(plain, device_);
    device_.attachTamperHook(&injector_);
}

bool
IntegrityShadow::verifyOnce(std::uint64_t id)
{
    std::array<std::size_t, shadowLookups> rows;
    std::array<std::uint64_t, shadowLookups> weights;
    for (std::size_t k = 0; k < shadowLookups; ++k) {
        rows[k] = (id * 7 + k * 13) % shadowRows;
        weights[k] = 1 + ((id >> (3 * k)) & 7);
    }
    injector_.beginQuery();
    const VerifiedResult res =
        client_.weightedSumRows(device_, rows, weights, true);
    if (!res.verified) {
        // Replay/WrongResult caught: drop every pad cached for this
        // region before any recovery re-read, so the retry derives
        // everything fresh (see the constructor comment).
        client_.flushPadCache();
    }
    // Distinguish a true forgery from an injection that
    // annihilated mod 2^we (the delivered result is correct, so
    // verification rightly passed -- benign, not missed).
    bool intact = false;
    if (res.verified && injector_.queryInjections() > 0) {
        device_.attachTamperHook(nullptr);
        const VerifiedResult honest = client_.weightedSumRows(
            device_, rows, weights, false);
        device_.attachTamperHook(&injector_);
        intact = honest.values == res.values;
    }
    injector_.recordOutcome(res.verified, intact);
    return res.verified;
}

} // namespace secndp
