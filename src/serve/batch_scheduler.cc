#include "serve/batch_scheduler.hh"

#include <algorithm>

#include "common/logging.hh"
#include "memsim/dram_spec.hh"

namespace secndp {

BatchScheduler::BatchScheduler(RequestQueue &queue, BatchPolicy policy,
                               unsigned shards)
    : queue_(queue), policy_(policy), shards_(shards ? shards : 1)
{
    SECNDP_ASSERT(policy_.maxBatch > 0, "maxBatch must be positive");
}

std::vector<ServeRequest>
BatchScheduler::poll(double now, bool force, double *wake_ns)
{
    *wake_ns = RequestQueue::noArrival;
    const std::size_t depth = queue_.size();
    if (depth == 0)
        return {};

    if (depth >= policy_.maxBatch) {
        ++fullFlushes_;
        return queue_.popUpTo(policy_.maxBatch);
    }

    const double oldest = queue_.oldestArrivalNs();
    // Tolerate float drift when the loop advances exactly to the
    // flush boundary.
    if (now - oldest >= policy_.flushTimeoutNs - 1e-6) {
        ++timeoutFlushes_;
        return queue_.popUpTo(policy_.maxBatch);
    }
    if (force) {
        ++drainFlushes_;
        return queue_.popUpTo(policy_.maxBatch);
    }

    *wake_ns = oldest + policy_.flushTimeoutNs;
    return {};
}

BatchExecution
runShardedBatch(const SystemConfig &cfg, ExecMode mode,
                const WorkloadTrace &pool,
                const std::vector<ServeRequest> &batch,
                std::vector<PageMapper> &mappers,
                const std::vector<std::uint64_t> *otp_block_discount)
{
    SECNDP_ASSERT(!mappers.empty(), "need at least one shard mapper");
    SECNDP_ASSERT(otp_block_discount == nullptr ||
                      otp_block_discount->size() == batch.size(),
                  "discount size %zu != batch size %zu",
                  otp_block_discount ? otp_block_discount->size() : 0,
                  batch.size());
    const unsigned shards = static_cast<unsigned>(mappers.size());

    // Normalize to one (channel, pseudo-channel) slice; identity when
    // the caller already passed a per-slice config.
    SystemConfig shard_cfg = cfg;
    shard_cfg.dram = perPseudoChannelConfig(cfg.dram);

    BatchExecution exec;
    exec.requestServiceNs.resize(batch.size(), 0.0);
    exec.requestShard.resize(batch.size(), 0);
    exec.requestTiming.resize(batch.size());

    // Round-robin request -> channel assignment. Requests keep their
    // batch order inside a shard, so the sub-trace is deterministic.
    std::vector<WorkloadTrace> shard_traces(shards);
    std::vector<std::vector<std::size_t>> shard_members(shards);
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const unsigned s = static_cast<unsigned>(i % shards);
        SECNDP_ASSERT(batch[i].queryIndex < pool.queries.size(),
                      "request %llu references query %zu of a %zu-query "
                      "pool",
                      static_cast<unsigned long long>(batch[i].id),
                      batch[i].queryIndex, pool.queries.size());
        TraceQuery q = pool.queries[batch[i].queryIndex];
        if (otp_block_discount != nullptr) {
            // Pads the trusted-side cache already holds: the engine
            // skips their AES regeneration (the simulated OTP window
            // shrinks; memory traffic is unchanged).
            q.engineWork.dataOtpBlocks -=
                std::min(q.engineWork.dataOtpBlocks,
                         (*otp_block_discount)[i]);
        }
        shard_traces[s].queries.push_back(std::move(q));
        shard_members[s].push_back(i);
        exec.requestShard[i] = s;
    }

    for (unsigned s = 0; s < shards; ++s) {
        if (shard_traces[s].queries.empty())
            continue;
        const RunMetrics m =
            runWorkload(shard_cfg, shard_traces[s], mode, mappers[s]);
        for (std::size_t k = 0; k < shard_members[s].size(); ++k) {
            const std::size_t i = shard_members[s][k];
            // Per-query completion when the simulator reports it;
            // whole-shard drain as the conservative fallback.
            if (k < m.perQuery.size() &&
                m.perQuery[k].finishNs > 0.0) {
                exec.requestServiceNs[i] = m.perQuery[k].finishNs;
                exec.requestTiming[i] = m.perQuery[k];
            } else {
                exec.requestServiceNs[i] = m.ns;
                exec.requestTiming[i].finishNs = m.ns;
            }
        }
        exec.batchServiceNs = std::max(exec.batchServiceNs, m.ns);

        // Channels run in parallel: cycle/time metrics max, work
        // counters add.
        exec.metrics.cycles = std::max(exec.metrics.cycles, m.cycles);
        exec.metrics.ns = std::max(exec.metrics.ns, m.ns);
        exec.metrics.lines += m.lines;
        exec.metrics.acts += m.acts;
        exec.metrics.ioBits += m.ioBits;
        exec.metrics.aesBlocks += m.aesBlocks;
        exec.metrics.otpPuOps += m.otpPuOps;
        exec.metrics.verifyOps += m.verifyOps;
        exec.metrics.fracDecryptBound = std::max(
            exec.metrics.fracDecryptBound, m.fracDecryptBound);
    }
    return exec;
}

} // namespace secndp
