/**
 * @file
 * Batch formation and channel sharding for the serving layer.
 *
 * The BatchScheduler watches a RequestQueue and decides *when* to
 * flush a batch on the virtual serving timeline:
 *
 *   full flush    -- the queue holds >= maxBatch requests;
 *   timeout flush -- the oldest queued request has waited
 *                    flushTimeoutNs (bounds the latency cost of
 *                    waiting for co-batchable work);
 *   drain flush   -- the caller knows no further arrivals can come
 *                    (end of an open-loop stream) and forces the
 *                    remainder out.
 *
 * A flushed batch is sharded round-robin across `shards` simulated
 * (channel, pseudo-channel) slices; each shard drives the existing
 * arch::System (memsim + ndp + engine pipeline) for its sub-batch,
 * and the batch occupies the serving system until its slowest shard
 * finishes -- exactly how a multi-channel NDP DIMM pool behaves. On
 * DDR5 pseudo-channel generations the serving layer treats each
 * pseudo-channel as an extra independent shard (command-bus
 * contention between pseudo-channels is modeled by the cycle-level
 * benches, not here).
 */

#ifndef SECNDP_SERVE_BATCH_SCHEDULER_HH
#define SECNDP_SERVE_BATCH_SCHEDULER_HH

#include <cstdint>
#include <vector>

#include "arch/system.hh"
#include "memsim/page_mapper.hh"
#include "serve/request_queue.hh"

namespace secndp {

/** Coalescing knobs. */
struct BatchPolicy
{
    /** Largest batch one flush may carry. */
    unsigned maxBatch = 8;
    /** Flush once the oldest request has waited this long, ns. */
    double flushTimeoutNs = 5000.0;
};

/** Per-request outcome of executing one batch. */
struct BatchExecution
{
    /** Per-request completion on the shard timeline, ns (index-
     *  aligned with the batch passed to run()): the request's *own*
     *  packet finish, not the whole shard's drain -- early queries in
     *  a shard no longer pay for their co-batched successors. */
    std::vector<double> requestServiceNs;
    /** Shard each request executed on. */
    std::vector<unsigned> requestShard;
    /** Per-request lifecycle windows (otp_gen/verify spans), batch
     *  index-aligned, on the shard timeline. */
    std::vector<QueryTiming> requestTiming;
    /** Slowest shard -- the batch holds the system this long. */
    double batchServiceNs = 0.0;
    /** Merged simulator metrics across shards. */
    RunMetrics metrics;
};

class BatchScheduler
{
  public:
    /**
     * @param queue   admission queue to drain (not owned)
     * @param policy  coalescing knobs
     * @param shards  simulated memory channels batches shard across
     */
    BatchScheduler(RequestQueue &queue, BatchPolicy policy,
                   unsigned shards = 1);

    /**
     * Flush decision at virtual time `now`. Returns the batch to run
     * (empty when nothing should flush yet). When no batch flushes
     * and the queue is non-empty, *wake_ns receives the earliest
     * future time the timeout rule can fire; otherwise it is +inf.
     *
     * @param force drain flush: flush any pending requests now
     */
    std::vector<ServeRequest> poll(double now, bool force,
                                   double *wake_ns);

    /** @name Flush-cause counters (deterministic under a fixed seed) */
    /// @{
    std::uint64_t fullFlushes() const { return fullFlushes_; }
    std::uint64_t timeoutFlushes() const { return timeoutFlushes_; }
    std::uint64_t drainFlushes() const { return drainFlushes_; }
    /// @}

    unsigned shards() const { return shards_; }
    const BatchPolicy &policy() const { return policy_; }

  private:
    RequestQueue &queue_;
    BatchPolicy policy_;
    unsigned shards_;
    std::uint64_t fullFlushes_ = 0;
    std::uint64_t timeoutFlushes_ = 0;
    std::uint64_t drainFlushes_ = 0;
};

/**
 * Execute one batch: shard its queries round-robin across
 * `mappers.size()` channels (each mapper is that channel's persistent
 * demand-paging state) and run the arch::System pipeline per shard.
 *
 * `cfg` describes ONE (channel, pseudo-channel) slice (the dram
 * config is normalized through perPseudoChannelConfig); `pool` is the
 * request pool the batch's queryIndex values refer to.
 *
 * `otp_block_discount`, when non-null, is index-aligned with `batch`:
 * entry i is the number of data OTP blocks of request i already held
 * by the trusted-side pad cache, which the on-chip engine therefore
 * does not regenerate. The discount is clamped to the query's own
 * dataOtpBlocks; the pool itself is never mutated. Null (the only
 * caller state when no cache is configured) leaves the simulated
 * engine work byte-identical to the pre-cache serving layer.
 */
BatchExecution runShardedBatch(
    const SystemConfig &cfg, ExecMode mode, const WorkloadTrace &pool,
    const std::vector<ServeRequest> &batch,
    std::vector<PageMapper> &mappers,
    const std::vector<std::uint64_t> *otp_block_discount = nullptr);

} // namespace secndp

#endif // SECNDP_SERVE_BATCH_SCHEDULER_HH
