/**
 * @file
 * Admission queue of the SecNDP query-serving layer.
 *
 * Incoming requests (one embedding-lookup / medical-query TraceQuery
 * each) wait here until the BatchScheduler coalesces them into a
 * batch. The queue is bounded: when the arrival rate exceeds the
 * sustainable service rate the excess is *rejected at admission*
 * (load shedding) rather than queued into unbounded latency.
 *
 * Two admission policies:
 *   Fifo     -- dispatch in arrival order.
 *   Deadline -- earliest-deadline-first: the scheduler drains the
 *               requests closest to their deadline first (ties broken
 *               by id, i.e. arrival order, for determinism).
 *
 * Thread-safe: the serving loop and (future) completion callbacks may
 * push/pop concurrently. All virtual-time values are nanoseconds on
 * the serving timeline.
 */

#ifndef SECNDP_SERVE_REQUEST_QUEUE_HH
#define SECNDP_SERVE_REQUEST_QUEUE_HH

#include <cstdint>
#include <limits>
#include <mutex>
#include <vector>

namespace secndp {

/** One in-flight serving request. */
struct ServeRequest
{
    /** Monotonic id, also the deterministic tie-breaker. */
    std::uint64_t id = 0;
    /** Index into the request pool (WorkloadTrace::queries). */
    std::size_t queryIndex = 0;
    /** Arrival on the virtual serving timeline, ns. */
    double arrivalNs = 0.0;
    /** Absolute completion deadline, ns (0 = no deadline). */
    double deadlineNs = 0.0;
};

/** Admission/dispatch ordering policies. */
enum class QueuePolicy
{
    Fifo,
    Deadline,
};

const char *queuePolicyName(QueuePolicy policy);

class RequestQueue
{
  public:
    explicit RequestQueue(QueuePolicy policy,
                          std::size_t capacity = 1024);

    /** Admit a request; false when the queue is full (rejected). */
    bool push(const ServeRequest &req);

    /**
     * Remove and return up to `n` requests in policy order (arrival
     * order for Fifo, earliest absolute deadline for Deadline).
     */
    std::vector<ServeRequest> popUpTo(std::size_t n);

    std::size_t size() const;
    bool empty() const { return size() == 0; }
    std::size_t capacity() const { return capacity_; }
    QueuePolicy policy() const { return policy_; }

    /** Earliest arrivalNs among queued requests; +inf when empty. */
    double oldestArrivalNs() const;

    static constexpr double noArrival =
        std::numeric_limits<double>::infinity();

  private:
    /** Policy sort key: is `a` dispatched before `b`? */
    bool before(const ServeRequest &a, const ServeRequest &b) const;

    QueuePolicy policy_;
    std::size_t capacity_;
    mutable std::mutex mutex_;
    std::vector<ServeRequest> waiting_;
};

} // namespace secndp

#endif // SECNDP_SERVE_REQUEST_QUEUE_HH
