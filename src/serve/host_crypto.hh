/**
 * @file
 * Host-side SecNDP work shared by every serving front-end (the
 * in-process loop in serve/server.cc and the TCP front-end in
 * src/net/net_server.cc): the per-batch counter-mode OTP + C_Tres
 * verification jobs that run on the WorkerPool, and the functional
 * integrity shadow the fault injector plays against.
 *
 * Moved verbatim out of server.cc so both front-ends execute the
 * exact same host-crypto path -- in-process sidecars stay
 * byte-identical to the pre-net serving layer.
 */

#ifndef SECNDP_SERVE_HOST_CRYPTO_HH
#define SECNDP_SERVE_HOST_CRYPTO_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "crypto/counter_mode.hh"
#include "faults/fault_spec.hh"
#include "faults/injector.hh"
#include "faults/recovery.hh"
#include "secndp/protocol.hh"

namespace secndp {

/** Host-side SecNDP work of one request (captured into pool jobs). */
struct HostCryptoWork
{
    std::uint64_t addr = 0;
    std::uint64_t dataOtpBlocks = 0;
    std::uint64_t tagOtpBlocks = 0;
    std::uint64_t verifyOps = 0;
};

/**
 * Perform the (capped) host crypto of one batch: counter-mode OTP
 * blocks for the data share, tag pads, and a C_Tres-style linear
 * checksum recombination in F_q. This is real CPU work -- the whole
 * point is that it runs on a worker thread while the main loop
 * simulates the next batch.
 */
void runHostCrypto(const CounterModeEncryptor &enc,
                   const std::vector<HostCryptoWork> &work,
                   StatGroup &g);

/**
 * Functional integrity shadow. The serving loop itself is a
 * performance simulation (memsim carries no data values), so the
 * adversary is played against a small *real* client/device pair whose
 * device runs the configured FaultInjector. Every completed request
 * maps deterministically onto one verified weighted row sum against
 * the shadow; a failed tag check there drives the recovery ladder and
 * its virtual-time penalty is charged to that request's latency
 * (busy_until is untouched -- recovery re-reads are modeled as
 * pipelined with later batches, a documented approximation).
 */
class IntegrityShadow
{
  public:
    IntegrityShadow(const FaultSpec &spec, std::uint64_t seed,
                    const RecoveryPolicy &policy);

    /** One read + verify of the request's shadow query. */
    bool verifyOnce(std::uint64_t id);

    RecoveryLoop &recovery() { return recovery_; }
    const FaultInjector &injector() const { return injector_; }

  private:
    static constexpr std::size_t shadowRows = 64;
    static constexpr std::size_t shadowCols = 16;
    static constexpr std::size_t shadowLookups = 4;
    static constexpr std::uint64_t shadowBase = 0x200000;

    FaultInjector injector_;
    SecNdpClient client_;
    UntrustedNdpDevice device_;
    RecoveryLoop recovery_;
};

} // namespace secndp

#endif // SECNDP_SERVE_HOST_CRYPTO_HH
