/**
 * @file
 * Host-side SecNDP work shared by every serving front-end (the
 * in-process loop in serve/server.cc and the TCP front-end in
 * src/net/net_server.cc): the per-batch counter-mode OTP + C_Tres
 * verification jobs that run on the WorkerPool, and the functional
 * integrity shadow the fault injector plays against.
 *
 * Moved verbatim out of server.cc so both front-ends execute the
 * exact same host-crypto path -- in-process sidecars stay
 * byte-identical to the pre-net serving layer.
 */

#ifndef SECNDP_SERVE_HOST_CRYPTO_HH
#define SECNDP_SERVE_HOST_CRYPTO_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "crypto/counter_mode.hh"
#include "faults/fault_spec.hh"
#include "faults/injector.hh"
#include "faults/recovery.hh"
#include "secndp/protocol.hh"

namespace secndp {

/** Host-side SecNDP work of one request (captured into pool jobs). */
struct HostCryptoWork
{
    std::uint64_t addr = 0;
    std::uint64_t dataOtpBlocks = 0;
    std::uint64_t tagOtpBlocks = 0;
    std::uint64_t verifyOps = 0;
    /**
     * @name Pad-cache split (populated only when the serve loop owns
     * a ShardedPadCache). The serve thread's admission pass replaces
     * `dataOtpBlocks` with an explicit chunk-address split: misses
     * the worker must generate (and fill() into the cache) and hits
     * it fetches with a lock-held peek(). Both lists are decided on
     * the serve thread in deterministic batch order, so the
     * serve_worker.otp_blocks counter stays a pure function of the
     * request stream even though fills race peeks (a peek that loses
     * the race regenerates the pad locally, uncounted).
     */
    /// @{
    std::vector<std::uint64_t> genChunks;
    std::vector<std::uint64_t> fetchChunks;
    /// @}
};

/**
 * Perform the (capped) host crypto of one batch: counter-mode OTP
 * blocks for the data share, tag pads, and a C_Tres-style linear
 * checksum recombination in F_q. This is real CPU work -- the whole
 * point is that it runs on a worker thread while the main loop
 * simulates the next batch. With `cache` non-null, work items
 * carrying a genChunks/fetchChunks split take the cache-aware path:
 * misses run the cipher and fill the shared cache, hits are served
 * from it (the AES calls the cache exists to elide).
 */
void runHostCrypto(const CounterModeEncryptor &enc,
                   const std::vector<HostCryptoWork> &work,
                   StatGroup &g, ShardedPadCache *cache = nullptr);

/**
 * Functional integrity shadow. The serving loop itself is a
 * performance simulation (memsim carries no data values), so the
 * adversary is played against a small *real* client/device pair whose
 * device runs the configured FaultInjector. Every completed request
 * maps deterministically onto one verified weighted row sum against
 * the shadow; a failed tag check there drives the recovery ladder and
 * its virtual-time penalty is charged to that request's latency
 * (busy_until is untouched -- recovery re-reads are modeled as
 * pipelined with later batches, a documented approximation).
 */
class IntegrityShadow
{
  public:
    /**
     * @param cache optional trusted-side pad cache for the shadow
     *        client (never shared with another key's client -- pads
     *        are key-dependent). On every failed verification the
     *        shadow flushes the region's cached pads before the
     *        recovery re-read: the trusted side distrusts everything
     *        it derived for data it just caught being tampered with,
     *        so a replayed/forged query can never be re-checked
     *        against a previously cached pad.
     */
    IntegrityShadow(const FaultSpec &spec, std::uint64_t seed,
                    const RecoveryPolicy &policy,
                    ShardedPadCache *cache = nullptr);

    /** One read + verify of the request's shadow query. */
    bool verifyOnce(std::uint64_t id);

    RecoveryLoop &recovery() { return recovery_; }
    const FaultInjector &injector() const { return injector_; }
    const SecNdpClient &client() const { return client_; }

  private:
    static constexpr std::size_t shadowRows = 64;
    static constexpr std::size_t shadowCols = 16;
    static constexpr std::size_t shadowLookups = 4;
    static constexpr std::uint64_t shadowBase = 0x200000;

    FaultInjector injector_;
    SecNdpClient client_;
    UntrustedNdpDevice device_;
    RecoveryLoop recovery_;
};

} // namespace secndp

#endif // SECNDP_SERVE_HOST_CRYPTO_HH
