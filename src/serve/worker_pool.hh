/**
 * @file
 * A real std::thread worker pool for host-side SecNDP work.
 *
 * The serving loop simulates device time batch by batch; the *host*
 * cost of a batch -- counter-mode OTP generation and verification of
 * the combined C_Tres tags -- is actual CPU work, so it runs here on
 * worker threads, letting encryption/verification of batch N overlap
 * simulation of batch N+1 in wall-clock time (the same overlap the
 * paper's on-chip engine exploits in simulated time).
 *
 * Statistics: the pre-existing stats layer is single-writer per
 * StatGroup (see common/stats.hh "Concurrency"). Each job runs
 * against a job-local unregistered group that folds into the pool's
 * shared accumulator under the pool mutex when the job finishes, so
 * (a) workers never touch a registered group that a mid-run telemetry
 * snapshot could be reading, and (b) statsSnapshot() can hand the
 * serve thread a locked point-in-time copy of everything completed so
 * far. The accumulator registers with the StatRegistry only at pool
 * destruction (one fold into the per-name retired aggregate), so
 * end-of-run reports see the exact same merged group as the old
 * per-thread-group design: counter/scalar adds and distribution/
 * histogram unions are order-independent, keeping sidecars
 * byte-deterministic. Keep worker-side samples integral so the folded
 * sums are exact.
 */

#ifndef SECNDP_SERVE_WORKER_POOL_HH
#define SECNDP_SERVE_WORKER_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hh"

namespace secndp {

class WorkerPool
{
  public:
    /** A job; `stats` is a job-local group folded on completion. */
    using Job = std::function<void(StatGroup &stats)>;

    /**
     * @param threads     worker count (clamped to >= 1)
     * @param stat_group  name the pool's stats register as
     */
    explicit WorkerPool(unsigned threads,
                        std::string stat_group = "serve_worker");

    /** Drains outstanding jobs, joins, and retires the stats. */
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Enqueue a job (runs on some worker, FIFO dispatch). */
    void submit(Job job);

    /** Block until every submitted job has finished. */
    void drain();

    unsigned threads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Jobs finished so far (drain() first for an exact total). */
    std::uint64_t jobsCompleted() const;

    /**
     * Point-in-time copy of the stats of every *completed* job (jobs
     * still running contribute nothing yet). Safe from any thread;
     * the returned group is unregistered. The live-telemetry path
     * folds this into each published snapshot.
     */
    StatGroup statsSnapshot() const;

  private:
    void workerMain();

    std::string statGroupName_;
    mutable std::mutex mutex_;
    std::condition_variable workAvailable_;
    std::condition_variable idle_;
    std::deque<Job> queue_;
    std::size_t running_ = 0;
    std::uint64_t completed_ = 0;
    bool stopping_ = false;
    /** Completed-job stats; guarded by mutex_, never registered. */
    StatGroup stats_;
    std::vector<std::thread> workers_;
};

} // namespace secndp

#endif // SECNDP_SERVE_WORKER_POOL_HH
