/**
 * @file
 * A real std::thread worker pool for host-side SecNDP work.
 *
 * The serving loop simulates device time batch by batch; the *host*
 * cost of a batch -- counter-mode OTP generation and verification of
 * the combined C_Tres tags -- is actual CPU work, so it runs here on
 * worker threads, letting encryption/verification of batch N overlap
 * simulation of batch N+1 in wall-clock time (the same overlap the
 * paper's on-chip engine exploits in simulated time).
 *
 * Statistics: the pre-existing stats layer is single-writer per
 * StatGroup (see common/stats.hh "Concurrency"). Each worker thread
 * therefore owns a private StatGroup under the pool's group name;
 * the groups fold into the registry's per-name retired aggregate when
 * the pool joins, so reports see one merged group regardless of how
 * jobs were distributed. Totals are interleaving-independent; keep
 * worker-side samples integral so the folded sums are too.
 */

#ifndef SECNDP_SERVE_WORKER_POOL_HH
#define SECNDP_SERVE_WORKER_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace secndp {

class StatGroup;

class WorkerPool
{
  public:
    /** A job; `stats` is the calling worker's private group. */
    using Job = std::function<void(StatGroup &stats)>;

    /**
     * @param threads     worker count (clamped to >= 1)
     * @param stat_group  name the per-thread StatGroups register as
     */
    explicit WorkerPool(unsigned threads,
                        std::string stat_group = "serve_worker");

    /** Drains outstanding jobs, then joins. */
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Enqueue a job (runs on some worker, FIFO dispatch). */
    void submit(Job job);

    /** Block until every submitted job has finished. */
    void drain();

    unsigned threads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Jobs finished so far (drain() first for an exact total). */
    std::uint64_t jobsCompleted() const;

  private:
    void workerMain();

    std::string statGroupName_;
    mutable std::mutex mutex_;
    std::condition_variable workAvailable_;
    std::condition_variable idle_;
    std::deque<Job> queue_;
    std::size_t running_ = 0;
    std::uint64_t completed_ = 0;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

} // namespace secndp

#endif // SECNDP_SERVE_WORKER_POOL_HH
