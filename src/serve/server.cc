#include "serve/server.hh"

#include <algorithm>
#include <queue>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/phase_profiler.hh"
#include "common/sampler.hh"
#include "common/stats.hh"
#include "crypto/aes.hh"
#include "crypto/counter_mode.hh"
#include "serve/worker_pool.hh"

namespace secndp {

namespace {

/** Host-side SecNDP work of one request (captured into pool jobs). */
struct HostCryptoWork
{
    std::uint64_t addr = 0;
    std::uint64_t dataOtpBlocks = 0;
    std::uint64_t tagOtpBlocks = 0;
    std::uint64_t verifyOps = 0;
};

/** Field ops one tag check performs at most (keeps jobs bounded). */
constexpr std::uint64_t verifyOpCap = 4096;

/**
 * Perform the (capped) host crypto of one batch: counter-mode OTP
 * blocks for the data share, tag pads, and a C_Tres-style linear
 * checksum recombination in F_q. This is real CPU work -- the whole
 * point is that it runs on a worker thread while the main loop
 * simulates the next batch.
 */
void
runHostCrypto(const CounterModeEncryptor &enc,
              const std::vector<HostCryptoWork> &work, StatGroup &g)
{
    ScopedPhase phase("host_crypto");
    std::uint8_t sink = 0;
    for (const auto &w : work) {
        for (std::uint64_t b = 0; b < w.dataOtpBlocks; ++b) {
            const Block128 otp = enc.otpBlock(w.addr + 16 * b, 1);
            sink ^= otp[0];
        }
        g.counter("otp_blocks") += w.dataOtpBlocks;
        for (std::uint64_t b = 0; b < w.tagOtpBlocks; ++b) {
            const Fq127 pad = enc.tagOtp(w.addr + 16 * b, 1);
            sink ^= static_cast<std::uint8_t>(pad.lo64());
        }
        g.counter("tag_otp_blocks") += w.tagOtpBlocks;
        if (w.verifyOps > 0) {
            // E_Tres recombination: Horner-style fold of the checksum
            // secret across the combined weights (Alg. 5 lines 11-14,
            // capped -- counters reflect work actually performed).
            const std::uint64_t ops =
                std::min(w.verifyOps, verifyOpCap);
            Fq127 s = enc.checksumSecret(w.addr, 1);
            Fq127 acc = s;
            for (std::uint64_t k = 0; k < ops; ++k)
                acc = acc * s + Fq127(k + 1);
            g.counter("field_ops") += ops;
            ++g.counter("tag_checks");
            if (acc.isZero())
                ++g.counter("degenerate_tags");
        }
    }
    // The cipher is an opaque virtual call so the loops cannot fold
    // away; this branch just pins `sink` as observable.
    if (sink == 0)
        ++g.counter("zero_sink");
    ++g.counter("jobs");
}

} // namespace

ServeReport
runServe(const ServeConfig &cfg, const LoadConfig &load,
         const WorkloadTrace &pool)
{
    if (pool.queries.empty())
        fatal("serving request pool has no queries");
    if (load.mode == LoadMode::Closed &&
        cfg.queueCapacity < load.concurrency) {
        fatal("closed-loop concurrency %u exceeds queue capacity %zu "
              "(every request would be shed)",
              load.concurrency, cfg.queueCapacity);
    }

    const std::size_t total = load.requests;
    ServeReport rep;

    RequestQueue queue(cfg.policy, cfg.queueCapacity);
    BatchScheduler sched(queue, cfg.batch, cfg.shards);

    // One persistent demand-paging mapper per channel: rows keep their
    // physical placement across the whole serving run.
    SystemConfig shard_cfg = cfg.sys;
    shard_cfg.dram.geometry.channels = 1;
    std::vector<PageMapper> mappers;
    mappers.reserve(cfg.shards ? cfg.shards : 1);
    for (unsigned s = 0; s < std::max(cfg.shards, 1u); ++s) {
        mappers.emplace_back(shard_cfg.dram.geometry.totalBytes(), 4096,
                             cfg.sys.pageSeed + s);
    }

    // Host-crypto state shared by all worker jobs; AES is stateless
    // after key schedule, CounterModeEncryptor is const -- both are
    // safe to use from every worker concurrently. Declared before the
    // pool so they outlive the worker threads.
    const Aes128::Key host_key{0x5e, 0xc0, 0xd9, 0x01, 0x5e, 0xc0,
                               0xd9, 0x02, 0x5e, 0xc0, 0xd9, 0x03,
                               0x5e, 0xc0, 0xd9, 0x04};
    Aes128 host_aes(host_key);
    CounterModeEncryptor host_enc(host_aes);
    StatGroup serve("serve");
    WorkerPool workers(cfg.workers);

    // Pending arrivals: (time, id) min-heap, id as the deterministic
    // tie-break. Open loop pre-generates the whole stream; closed
    // loop issues `concurrency` users and re-issues on completion.
    using Arrival = std::pair<double, std::uint64_t>;
    std::priority_queue<Arrival, std::vector<Arrival>,
                        std::greater<Arrival>>
        arrivals;
    std::uint64_t issued = 0;
    auto issue = [&](double t) {
        arrivals.emplace(t, issued);
        ++issued;
        ++rep.offered;
    };
    if (load.mode == LoadMode::Open) {
        for (double t :
             openLoopArrivalsNs(total, load.qps, load.seed))
            issue(t);
    } else {
        const std::size_t users = std::min<std::size_t>(
            load.concurrency ? load.concurrency : 1, total);
        for (std::size_t i = 0; i < users; ++i)
            issue(0.0);
    }

    double now = 0.0;
    double busy_until = 0.0;
    auto &sampler = Sampler::instance();
    const auto cycle_of = [&](double ns) {
        return static_cast<std::int64_t>(
            cfg.sys.dram.clock.cyclesFromNs(ns));
    };

    // Admit every arrival at or before `now`.
    auto admit = [&] {
        while (!arrivals.empty() && arrivals.top().first <= now + 1e-9) {
            const auto [t, id] = arrivals.top();
            arrivals.pop();
            ServeRequest r;
            r.id = id;
            r.queryIndex = id % pool.queries.size();
            r.arrivalNs = t;
            r.deadlineNs =
                load.deadlineNs > 0 ? t + load.deadlineNs : 0.0;
            if (queue.push(r)) {
                ++rep.admitted;
                ++serve.counter("requests_admitted");
            } else {
                ++rep.rejected;
                ++serve.counter("requests_rejected");
                // A closed-loop user whose request was shed issues
                // the next one immediately.
                if (load.mode == LoadMode::Closed && issued < total)
                    issue(t);
            }
        }
    };

    while (rep.completed + rep.rejected < total) {
        admit();
        const bool idle = now >= busy_until - 1e-9;
        if (idle) {
            double wake = RequestQueue::noArrival;
            auto batch = sched.poll(now, arrivals.empty(), &wake);
            if (!batch.empty()) {
                const double start = now;
                const auto exec = runShardedBatch(
                    shard_cfg, cfg.mode, pool, batch, mappers);
                busy_until = start + exec.batchServiceNs;
                ++rep.batches;
                ++serve.counter("batches");
                serve.histogram("batch_occupancy")
                    .sample(static_cast<double>(batch.size()));
                serve.histogram("batch_service_ns")
                    .sample(exec.batchServiceNs);

                std::vector<HostCryptoWork> host_work;
                host_work.reserve(batch.size());
                for (std::size_t i = 0; i < batch.size(); ++i) {
                    const ServeRequest &r = batch[i];
                    const double completion =
                        start + exec.requestServiceNs[i];
                    const double latency = completion - r.arrivalNs;
                    serve.histogram("latency_ns").sample(latency);
                    serve.histogram("queue_wait_ns")
                        .sample(start - r.arrivalNs);
                    serve.histogram("service_ns")
                        .sample(exec.requestServiceNs[i]);
                    if (r.deadlineNs > 0 && completion > r.deadlineNs) {
                        ++rep.deadlineMisses;
                        ++serve.counter("deadline_misses");
                    }
                    ++rep.completed;
                    ++serve.counter("requests_completed");
                    if (load.mode == LoadMode::Closed &&
                        issued < total)
                        issue(completion);

                    const TraceQuery &q =
                        pool.queries[r.queryIndex];
                    HostCryptoWork w;
                    w.addr = (q.ranges.empty()
                                  ? r.id * 4096
                                  : q.ranges[0].vaddr) &
                             ~std::uint64_t{15};
                    w.dataOtpBlocks =
                        std::min(q.engineWork.dataOtpBlocks,
                                 cfg.hostOtpBlockCap);
                    w.tagOtpBlocks =
                        std::min(q.engineWork.tagOtpBlocks,
                                 cfg.hostOtpBlockCap);
                    w.verifyOps = q.engineWork.verifyOps;
                    host_work.push_back(w);
                }
                workers.submit([&host_enc,
                                work = std::move(host_work)](
                                   StatGroup &g) {
                    runHostCrypto(host_enc, work, g);
                });

                // Serving-level time series on the global timeline.
                sampler.tick(cycle_of(busy_until));
                sampler.gauge("serve_queue_depth", cycle_of(start),
                              static_cast<double>(queue.size()));
                sampler.gauge("serve_batch_fill", cycle_of(start),
                              static_cast<double>(batch.size()) /
                                  cfg.batch.maxBatch);
                continue; // re-evaluate at the same instant
            }
            double next = wake;
            if (!arrivals.empty())
                next = std::min(next, arrivals.top().first);
            if (next == RequestQueue::noArrival)
                break; // no queued work, no future arrivals
            now = std::max(now, next);
        } else {
            double next = busy_until;
            if (!arrivals.empty())
                next = std::min(next, arrivals.top().first);
            now = std::max(now, next);
        }
    }

    {
        ScopedPhase phase("verify_drain");
        workers.drain();
    }

    rep.makespanNs = std::max(busy_until, now);
    rep.sustainedQps = rep.makespanNs > 0
                           ? rep.completed / (rep.makespanNs / 1e9)
                           : 0.0;
    serve.scalar("sustained_qps") = rep.sustainedQps;
    serve.scalar("makespan_ns") = rep.makespanNs;
    serve.counter("flush_full") = sched.fullFlushes();
    serve.counter("flush_timeout") = sched.timeoutFlushes();
    serve.counter("flush_drain") = sched.drainFlushes();
    rep.p50LatencyNs = serve.histogram("latency_ns").percentile(0.50);
    rep.p95LatencyNs = serve.histogram("latency_ns").percentile(0.95);
    rep.p99LatencyNs = serve.histogram("latency_ns").percentile(0.99);
    return rep;
}

} // namespace secndp
