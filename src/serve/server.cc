#include "serve/server.hh"

#include <algorithm>
#include <array>
#include <chrono>
#include <memory>
#include <queue>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/phase_profiler.hh"
#include "common/request_trace.hh"
#include "common/rng.hh"
#include "common/sampler.hh"
#include "common/stats.hh"
#include "crypto/aes.hh"
#include "crypto/counter_mode.hh"
#include "faults/injector.hh"
#include "secndp/protocol.hh"
#include "serve/worker_pool.hh"
#include "telemetry/metrics_exporter.hh"
#include "telemetry/slo_tracker.hh"
#include "telemetry/snapshot.hh"

namespace secndp {

namespace {

/** Host-side SecNDP work of one request (captured into pool jobs). */
struct HostCryptoWork
{
    std::uint64_t addr = 0;
    std::uint64_t dataOtpBlocks = 0;
    std::uint64_t tagOtpBlocks = 0;
    std::uint64_t verifyOps = 0;
};

/** Field ops one tag check performs at most (keeps jobs bounded). */
constexpr std::uint64_t verifyOpCap = 4096;

/**
 * Perform the (capped) host crypto of one batch: counter-mode OTP
 * blocks for the data share, tag pads, and a C_Tres-style linear
 * checksum recombination in F_q. This is real CPU work -- the whole
 * point is that it runs on a worker thread while the main loop
 * simulates the next batch.
 */
void
runHostCrypto(const CounterModeEncryptor &enc,
              const std::vector<HostCryptoWork> &work, StatGroup &g)
{
    ScopedPhase phase("host_crypto");
    constexpr std::size_t bb = CounterModeEncryptor::batchBlocks;
    std::uint8_t sink = 0;
    for (const auto &w : work) {
        // Data-share OTPs: consecutive chunks pipelined through the
        // batched cipher entry point (the backend decides how many
        // blocks fly per instruction group).
        Block128 otp[bb];
        for (std::uint64_t b = 0; b < w.dataOtpBlocks;) {
            const std::size_t n = std::min<std::uint64_t>(
                bb, w.dataOtpBlocks - b);
            enc.otpBlocks(w.addr + 16 * b, 1, std::span(otp, n));
            for (std::size_t k = 0; k < n; ++k)
                sink ^= otp[k][0];
            b += n;
        }
        g.counter("otp_blocks") += w.dataOtpBlocks;
        Fq127 tag_pads[bb];
        std::uint64_t tag_addrs[bb];
        for (std::uint64_t b = 0; b < w.tagOtpBlocks;) {
            const std::size_t n = std::min<std::uint64_t>(
                bb, w.tagOtpBlocks - b);
            for (std::size_t k = 0; k < n; ++k)
                tag_addrs[k] = w.addr + 16 * (b + k);
            enc.tagOtps(std::span(tag_addrs, n), 1,
                        std::span(tag_pads, n));
            for (std::size_t k = 0; k < n; ++k)
                sink ^= static_cast<std::uint8_t>(tag_pads[k].lo64());
            b += n;
        }
        g.counter("tag_otp_blocks") += w.tagOtpBlocks;
        if (w.verifyOps > 0) {
            // E_Tres recombination: Horner-style fold of the checksum
            // secret across the combined weights (Alg. 5 lines 11-14,
            // capped -- counters reflect work actually performed).
            // Lazy reduction: the accumulator stays weakly reduced
            // across the fold and reduces canonically once.
            const std::uint64_t ops =
                std::min(w.verifyOps, verifyOpCap);
            Fq127 s = enc.checksumSecret(w.addr, 1);
            Fq127Horner acc(s);
            for (std::uint64_t k = 0; k < ops; ++k)
                acc.mulAdd(s, k + 1);
            g.counter("field_ops") += ops;
            ++g.counter("tag_checks");
            if (acc.reduced().isZero())
                ++g.counter("degenerate_tags");
        }
    }
    // The cipher is an opaque virtual call so the loops cannot fold
    // away; this branch just pins `sink` as observable.
    if (sink == 0)
        ++g.counter("zero_sink");
    ++g.counter("jobs");
}

/**
 * Functional integrity shadow. The serving loop itself is a
 * performance simulation (memsim carries no data values), so the
 * adversary is played against a small *real* client/device pair whose
 * device runs the configured FaultInjector. Every completed request
 * maps deterministically onto one verified weighted row sum against
 * the shadow; a failed tag check there drives the recovery ladder and
 * its virtual-time penalty is charged to that request's latency
 * (busy_until is untouched -- recovery re-reads are modeled as
 * pipelined with later batches, a documented approximation).
 */
class IntegrityShadow
{
  public:
    IntegrityShadow(const FaultSpec &spec, std::uint64_t seed,
                    const RecoveryPolicy &policy)
        : injector_(spec, seed),
          client_(Aes128::Key{0xad, 0x7e, 0x25, 0xa9, 0xad, 0x7e,
                              0x25, 0xaa, 0xad, 0x7e, 0x25, 0xab,
                              0xad, 0x7e, 0x25, 0xac}),
          recovery_(policy)
    {
        // Values < 2^20 with weights <= 8 keep every honest weighted
        // sum far below 2^32, so a clean run always verifies (paper
        // footnote 1: overflow is indistinguishable from tampering).
        Matrix plain(shadowRows, shadowCols, ElemWidth::W32,
                     shadowBase);
        Rng fill(seed ^ 0x9e3779b97f4a7c15ULL);
        for (std::size_t r = 0; r < shadowRows; ++r)
            for (std::size_t c = 0; c < shadowCols; ++c)
                plain.set(r, c, fill.next() & 0xfffff);
        // Provision twice: the first image becomes the device's stale
        // snapshot, so replay rules have real ammunition.
        client_.provision(plain, device_);
        client_.provision(plain, device_);
        device_.attachTamperHook(&injector_);
    }

    /** One read + verify of the request's shadow query. */
    bool verifyOnce(std::uint64_t id)
    {
        std::array<std::size_t, shadowLookups> rows;
        std::array<std::uint64_t, shadowLookups> weights;
        for (std::size_t k = 0; k < shadowLookups; ++k) {
            rows[k] = (id * 7 + k * 13) % shadowRows;
            weights[k] = 1 + ((id >> (3 * k)) & 7);
        }
        injector_.beginQuery();
        const VerifiedResult res =
            client_.weightedSumRows(device_, rows, weights, true);
        // Distinguish a true forgery from an injection that
        // annihilated mod 2^we (the delivered result is correct, so
        // verification rightly passed -- benign, not missed).
        bool intact = false;
        if (res.verified && injector_.queryInjections() > 0) {
            device_.attachTamperHook(nullptr);
            const VerifiedResult honest = client_.weightedSumRows(
                device_, rows, weights, false);
            device_.attachTamperHook(&injector_);
            intact = honest.values == res.values;
        }
        injector_.recordOutcome(res.verified, intact);
        return res.verified;
    }

    RecoveryLoop &recovery() { return recovery_; }
    const FaultInjector &injector() const { return injector_; }

  private:
    static constexpr std::size_t shadowRows = 64;
    static constexpr std::size_t shadowCols = 16;
    static constexpr std::size_t shadowLookups = 4;
    static constexpr std::uint64_t shadowBase = 0x200000;

    FaultInjector injector_;
    SecNdpClient client_;
    UntrustedNdpDevice device_;
    RecoveryLoop recovery_;
};

} // namespace

ServeReport
runServe(const ServeConfig &cfg, const LoadConfig &load,
         const WorkloadTrace &pool)
{
    if (pool.queries.empty())
        fatal("serving request pool has no queries");
    if (load.mode == LoadMode::Closed &&
        cfg.queueCapacity < load.concurrency) {
        fatal("closed-loop concurrency %u exceeds queue capacity %zu "
              "(every request would be shed)",
              load.concurrency, cfg.queueCapacity);
    }

    const std::size_t total = load.requests;
    ServeReport rep;

    RequestQueue queue(cfg.policy, cfg.queueCapacity);
    BatchScheduler sched(queue, cfg.batch, cfg.shards);

    // One persistent demand-paging mapper per channel: rows keep their
    // physical placement across the whole serving run.
    SystemConfig shard_cfg = cfg.sys;
    shard_cfg.dram.geometry.channels = 1;
    std::vector<PageMapper> mappers;
    mappers.reserve(cfg.shards ? cfg.shards : 1);
    for (unsigned s = 0; s < std::max(cfg.shards, 1u); ++s) {
        mappers.emplace_back(shard_cfg.dram.geometry.totalBytes(), 4096,
                             cfg.sys.pageSeed + s);
    }

    // Host-crypto state shared by all worker jobs; AES is stateless
    // after key schedule, CounterModeEncryptor is const -- both are
    // safe to use from every worker concurrently. Declared before the
    // pool so they outlive the worker threads.
    const Aes128::Key host_key{0x5e, 0xc0, 0xd9, 0x01, 0x5e, 0xc0,
                               0xd9, 0x02, 0x5e, 0xc0, 0xd9, 0x03,
                               0x5e, 0xc0, 0xd9, 0x04};
    Aes128 host_aes(host_key);
    CounterModeEncryptor host_enc(host_aes);
    StatGroup serve("serve");
    WorkerPool workers(cfg.workers);

    // Adversary + recovery machinery exists only when configured, so
    // a clean run stays byte-identical to the pre-adversary layer: no
    // faults/verify stat groups, no shadow work, no extra branches
    // with observable effects.
    std::unique_ptr<IntegrityShadow> shadow;
    if (cfg.faults.enabled()) {
        shadow = std::make_unique<IntegrityShadow>(
            cfg.faults, cfg.faultSeed, cfg.recovery);
    }

    // Pending arrivals: (time, id) min-heap, id as the deterministic
    // tie-break. Open loop pre-generates the whole stream; closed
    // loop issues `concurrency` users and re-issues on completion.
    using Arrival = std::pair<double, std::uint64_t>;
    std::priority_queue<Arrival, std::vector<Arrival>,
                        std::greater<Arrival>>
        arrivals;
    std::uint64_t issued = 0;
    auto issue = [&](double t) {
        arrivals.emplace(t, issued);
        ++issued;
        ++rep.offered;
    };
    if (load.mode == LoadMode::Open) {
        for (double t :
             openLoopArrivalsNs(total, load.qps, load.seed))
            issue(t);
    } else {
        const std::size_t users = std::min<std::size_t>(
            load.concurrency ? load.concurrency : 1, total);
        for (std::size_t i = 0; i < users; ++i)
            issue(0.0);
    }

    // Live telemetry: the serve thread (single writer of the hot
    // groups) captures a consistent snapshot at each batch boundary
    // and hands it to the exporter; with no exporter this entire path
    // is dead and the run is byte-identical to a telemetry-free one.
    telemetry::MetricsExporter *exporter = cfg.telemetry.exporter;
    telemetry::SloTracker *slo = cfg.telemetry.slo;
    std::uint64_t pub_seq = 0;
    auto publishSnapshot = [&](double sim_now, bool complete) {
        if (!exporter)
            return;
        auto snap = std::make_shared<telemetry::TelemetrySnapshot>(
            telemetry::captureOwnedSnapshot());
        snap->seq = ++pub_seq;
        snap->simNowNs = sim_now;
        snap->complete = complete;
        snap->fold(workers.statsSnapshot());
        for (const auto &kv : Sampler::instance().latestValues())
            snap->gauges["sampler." + kv.first] = kv.second;
        snap->gauges["serve.queue_depth"] =
            static_cast<double>(queue.size());
        if (slo) {
            slo->advanceTo(sim_now);
            for (const auto &kv : slo->gauges())
                snap->gauges[kv.first] = kv.second;
        }
        exporter->publish(std::move(snap));
    };
    // Publish a seed snapshot before flipping ready: a scraper that
    // sees /readyz 200 must never get "no snapshot yet" back.
    if (exporter) {
        publishSnapshot(0.0, false);
        exporter->setReady(true);
    }

    double now = 0.0;
    double busy_until = 0.0;
    auto &sampler = Sampler::instance();
    const auto cycle_of = [&](double ns) {
        return static_cast<std::int64_t>(
            cfg.sys.dram.clock.cyclesFromNs(ns));
    };

    // Admit every arrival at or before `now`.
    auto admit = [&] {
        while (!arrivals.empty() && arrivals.top().first <= now + 1e-9) {
            const auto [t, id] = arrivals.top();
            arrivals.pop();
            ServeRequest r;
            r.id = id;
            r.queryIndex = id % pool.queries.size();
            r.arrivalNs = t;
            r.deadlineNs =
                load.deadlineNs > 0 ? t + load.deadlineNs : 0.0;
            if (queue.push(r)) {
                ++rep.admitted;
                ++serve.counter("requests_admitted");
            } else {
                ++rep.rejected;
                ++serve.counter("requests_rejected");
                if (slo)
                    slo->recordShed(t);
                // Load shedding is a flight-recorder anomaly: the
                // dump captures what the system was doing when the
                // queue filled.
                SECNDP_RQSPAN(r.id, SpanKind::Shed, t, 0.0, 0,
                              queue.size());
                SECNDP_RQANOMALY(AnomalyKind::Shed, r.id, t);
                // A closed-loop user whose request was shed issues
                // the next one immediately.
                if (load.mode == LoadMode::Closed && issued < total)
                    issue(t);
            }
        }
    };

    while (rep.completed + rep.rejected + rep.aborted < total) {
        admit();
        const bool idle = now >= busy_until - 1e-9;
        if (idle) {
            double wake = RequestQueue::noArrival;
            auto batch = sched.poll(now, arrivals.empty(), &wake);
            if (!batch.empty()) {
                const double start = now;
                const auto exec = runShardedBatch(
                    shard_cfg, cfg.mode, pool, batch, mappers);
                busy_until = start + exec.batchServiceNs;
                ++rep.batches;
                ++serve.counter("batches");
                serve.histogram("batch_occupancy")
                    .sample(static_cast<double>(batch.size()));
                serve.histogram("batch_service_ns")
                    .sample(exec.batchServiceNs);

                std::vector<HostCryptoWork> host_work;
                host_work.reserve(batch.size());
                for (std::size_t i = 0; i < batch.size(); ++i) {
                    const ServeRequest &r = batch[i];
                    double completion =
                        start + exec.requestServiceNs[i];
#if SECNDP_TRACING
                    // Lifecycle spans, emission-ordered: wait ->
                    // flush -> engine windows -> channel drain.
                    // Everything is on the global virtual timeline
                    // (shard windows offset by the batch start).
                    if (SECNDP_RQTRACE_ACTIVE()) {
                        auto &rq = RequestTracer::instance();
                        const QueryTiming &qt = exec.requestTiming[i];
                        const unsigned s = exec.requestShard[i];
                        rq.record(r.id, SpanKind::QueueWait,
                                  r.arrivalNs, start - r.arrivalNs,
                                  s, 0);
                        rq.record(r.id, SpanKind::BatchForm, start,
                                  0.0, s, batch.size());
                        if (qt.otpDurNs > 0.0) {
                            rq.record(r.id, SpanKind::OtpGen,
                                      start + qt.otpStartNs,
                                      qt.otpDurNs, s, qt.otpBlocks);
                        }
                        rq.record(r.id, SpanKind::SimDrain, start,
                                  exec.requestServiceNs[i], s,
                                  qt.decryptBound);
                        if (qt.verifyDurNs > 0.0) {
                            rq.record(r.id, SpanKind::Verify,
                                      start + qt.verifyStartNs,
                                      qt.verifyDurNs, s, 0);
                        }
                    }
#endif
                    bool abort_req = false;
                    if (shadow) {
                        // Park trace context for the injector's
                        // fault -> victim cross-links and the
                        // recovery ladder's retry/fallback spans.
                        RequestTracer::setCurrent(r.id);
                        RequestTracer::setNow(completion);
                        const auto rec = shadow->recovery().run(
                            [&] { return shadow->verifyOnce(r.id); },
                            exec.requestServiceNs[i]);
                        RequestTracer::clearCurrent();
                        completion += rec.penaltyNs;
                        switch (rec.outcome) {
                        case RecoveryOutcome::Clean:
                            break;
                        case RecoveryOutcome::RecoveredRetry:
                            ++rep.recoveredRetry;
                            break;
                        case RecoveryOutcome::RecoveredFallback:
                            ++rep.recoveredFallback;
                            break;
                        case RecoveryOutcome::Aborted:
                            abort_req = true;
                            break;
                        }
                    }
                    if (abort_req) {
                        // Terminal shed/abort: the result could never
                        // be verified, so the request leaves the
                        // system unserved and unsampled. Span first,
                        // then the anomaly -- the flight dump's last
                        // span must be the aborting request itself.
                        ++rep.aborted;
                        ++serve.counter("requests_aborted");
                        if (slo)
                            slo->recordAbort(completion);
                        SECNDP_RQSPAN(r.id, SpanKind::Abort,
                                      completion, 0.0,
                                      exec.requestShard[i], 0);
                        SECNDP_RQANOMALY(AnomalyKind::Abort, r.id,
                                         completion);
                    } else {
                        const double latency = completion - r.arrivalNs;
                        if (slo)
                            slo->recordLatency(completion, latency);
                        serve.histogram("latency_ns").sample(latency);
                        serve.histogram("queue_wait_ns")
                            .sample(start - r.arrivalNs);
                        serve.histogram("service_ns")
                            .sample(exec.requestServiceNs[i]);
                        if (r.deadlineNs > 0 &&
                            completion > r.deadlineNs) {
                            ++rep.deadlineMisses;
                            ++serve.counter("deadline_misses");
                        }
#if SECNDP_TRACING
                        {
                            auto &rq = RequestTracer::instance();
                            if (rq.active() && rq.sloNs() > 0.0 &&
                                latency > rq.sloNs()) {
                                rq.anomaly(AnomalyKind::SloBreach,
                                           r.id, completion);
                            }
                        }
#endif
                        ++rep.completed;
                        ++serve.counter("requests_completed");
                    }
                    if (load.mode == LoadMode::Closed &&
                        issued < total)
                        issue(completion);

                    const TraceQuery &q =
                        pool.queries[r.queryIndex];
                    HostCryptoWork w;
                    w.addr = (q.ranges.empty()
                                  ? r.id * 4096
                                  : q.ranges[0].vaddr) &
                             ~std::uint64_t{15};
                    w.dataOtpBlocks =
                        std::min(q.engineWork.dataOtpBlocks,
                                 cfg.hostOtpBlockCap);
                    w.tagOtpBlocks =
                        std::min(q.engineWork.tagOtpBlocks,
                                 cfg.hostOtpBlockCap);
                    w.verifyOps = q.engineWork.verifyOps;
                    host_work.push_back(w);
                }
                workers.submit([&host_enc,
                                work = std::move(host_work)](
                                   StatGroup &g) {
                    runHostCrypto(host_enc, work, g);
                });

                // Serving-level time series on the global timeline.
                sampler.tick(cycle_of(busy_until));
                sampler.gauge("serve_queue_depth", cycle_of(start),
                              static_cast<double>(queue.size()));
                sampler.gauge("serve_batch_fill", cycle_of(start),
                              static_cast<double>(batch.size()) /
                                  cfg.batch.maxBatch);
                publishSnapshot(busy_until, false);
                continue; // re-evaluate at the same instant
            }
            double next = wake;
            if (!arrivals.empty())
                next = std::min(next, arrivals.top().first);
            if (next == RequestQueue::noArrival)
                break; // no queued work, no future arrivals
            now = std::max(now, next);
        } else {
            double next = busy_until;
            if (!arrivals.empty())
                next = std::min(next, arrivals.top().first);
            now = std::max(now, next);
        }
    }

    // Optional wall-clock hold: keep the endpoint observably
    // "serving" (ready=200, fresh pre-drain snapshot) so scrapers
    // have a window to land in. Happens off the simulated timeline.
    if (exporter && cfg.telemetry.holdBeforeDrainMs > 0) {
        publishSnapshot(std::max(busy_until, now), false);
        std::this_thread::sleep_for(std::chrono::duration<double,
                                                          std::milli>(
            cfg.telemetry.holdBeforeDrainMs));
    }
    if (exporter)
        exporter->setReady(false); // drain begins: not ready

    {
        ScopedPhase phase("verify_drain");
        workers.drain();
    }

#if SECNDP_TRACING
    // Publish flight-recorder accounting into the sidecar, but only
    // when tracing was armed: an untraced run must stay byte-identical
    // to the pre-tracing baselines (no "trace" group at all).
    if (RequestTracer::instance().active()) {
        auto &rq = RequestTracer::instance();
        StatGroup trace("trace");
        trace.counter("spans") = rq.spansRecorded();
        trace.counter("spans_dropped") = rq.droppedSpans();
        trace.counter("anomalies") = rq.anomalyCount();
        trace.counter("flight_dumps") = rq.flightDumps();
        trace.counter("slo_breaches") =
            rq.anomalyCountOf(AnomalyKind::SloBreach);
        trace.counter("sheds") =
            rq.anomalyCountOf(AnomalyKind::Shed);
        trace.counter("aborts") =
            rq.anomalyCountOf(AnomalyKind::Abort);
    }
#endif

    rep.makespanNs = std::max(busy_until, now);
    rep.sustainedQps = rep.makespanNs > 0
                           ? rep.completed / (rep.makespanNs / 1e9)
                           : 0.0;
    serve.scalar("sustained_qps") = rep.sustainedQps;
    serve.scalar("makespan_ns") = rep.makespanNs;
    serve.counter("flush_full") = sched.fullFlushes();
    serve.counter("flush_timeout") = sched.timeoutFlushes();
    serve.counter("flush_drain") = sched.drainFlushes();
    rep.p50LatencyNs = serve.histogram("latency_ns").percentile(0.50);
    rep.p95LatencyNs = serve.histogram("latency_ns").percentile(0.95);
    rep.p99LatencyNs = serve.histogram("latency_ns").percentile(0.99);
    if (shadow) {
        rep.tamperDetected = shadow->injector().detectedQueries();
        rep.faultsInjected = shadow->injector().injectedTotal();
    }

    if (slo) {
        // End-of-run SLO accounting rides the sidecar as its own
        // group; scoped so it retires before the final capture below
        // and the complete snapshot sees it.
        slo->advanceTo(rep.makespanNs);
        StatGroup tg("telemetry");
        slo->publish(tg);
    }
    // Final complete snapshot: counters are whole-run totals, so a
    // post-drain scrape agrees with the stats sidecar exactly.
    publishSnapshot(rep.makespanNs, true);

    return rep;
}

} // namespace secndp
