#include "serve/server.hh"

#include <algorithm>
#include <array>
#include <chrono>
#include <memory>
#include <queue>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/phase_profiler.hh"
#include "common/request_trace.hh"
#include "common/rng.hh"
#include "common/sampler.hh"
#include "common/stats.hh"
#include "crypto/aes.hh"
#include "crypto/counter_mode.hh"
#include "faults/injector.hh"
#include "memsim/dram_spec.hh"
#include "secndp/protocol.hh"
#include "serve/host_crypto.hh"
#include "serve/worker_pool.hh"
#include "telemetry/metrics_exporter.hh"
#include "telemetry/slo_tracker.hh"
#include "telemetry/snapshot.hh"

namespace secndp {

ServeReport
runServe(const ServeConfig &cfg, const LoadConfig &load,
         const WorkloadTrace &pool)
{
    if (pool.queries.empty())
        fatal("serving request pool has no queries");
    if (load.mode == LoadMode::Closed &&
        cfg.queueCapacity < load.concurrency) {
        fatal("closed-loop concurrency %u exceeds queue capacity %zu "
              "(every request would be shed)",
              load.concurrency, cfg.queueCapacity);
    }

    const std::size_t total = load.requests;
    ServeReport rep;

    // DDR5 pseudo-channels multiply the shard count: each (channel,
    // pseudo-channel) slice is an independent serving lane with its
    // own NDP controllers. Approximation: serve shards do not model
    // cross-pseudo-channel command-bus contention (the cycle-level
    // benches do); for pseudoChannels == 1 this degenerates to the
    // original per-channel sharding byte-for-byte.
    const unsigned eff_shards =
        std::max(cfg.shards, 1u) *
        std::max(cfg.sys.dram.geometry.pseudoChannels, 1u);
    RequestQueue queue(cfg.policy, cfg.queueCapacity);
    BatchScheduler sched(queue, cfg.batch, eff_shards);

    // One persistent demand-paging mapper per shard: rows keep their
    // physical placement across the whole serving run.
    SystemConfig shard_cfg = cfg.sys;
    shard_cfg.dram = perPseudoChannelConfig(cfg.sys.dram);
    std::vector<PageMapper> mappers;
    mappers.reserve(eff_shards);
    for (unsigned s = 0; s < eff_shards; ++s) {
        mappers.emplace_back(shard_cfg.dram.geometry.totalBytes(), 4096,
                             cfg.sys.pageSeed + s);
    }

    // Host-crypto state shared by all worker jobs; AES is stateless
    // after key schedule, CounterModeEncryptor is const -- both are
    // safe to use from every worker concurrently. Declared before the
    // pool so they outlive the worker threads.
    const Aes128::Key host_key{0x5e, 0xc0, 0xd9, 0x01, 0x5e, 0xc0,
                               0xd9, 0x02, 0x5e, 0xc0, 0xd9, 0x03,
                               0x5e, 0xc0, 0xd9, 0x04};
    Aes128 host_aes(host_key);
    CounterModeEncryptor host_enc(host_aes);
    StatGroup serve("serve");
    WorkerPool workers(cfg.workers);

    // Trusted-side pad cache: one instance, owned here, shared with
    // every worker thread. The shadow client gets its own small cache
    // (pads are key-dependent; sharing across keys would serve wrong
    // bytes) so the recovery-flush path is live under serving too.
    std::unique_ptr<ShardedPadCache> cache;
    if (cfg.cache.enabled())
        cache = std::make_unique<ShardedPadCache>(cfg.cache);
    std::unique_ptr<ShardedPadCache> shadow_cache;

    // Adversary + recovery machinery exists only when configured, so
    // a clean run stays byte-identical to the pre-adversary layer: no
    // faults/verify stat groups, no shadow work, no extra branches
    // with observable effects.
    std::unique_ptr<IntegrityShadow> shadow;
    if (cfg.faults.enabled()) {
        if (cfg.cache.enabled()) {
            PadCacheConfig scc = cfg.cache;
            scc.capacityBytes = std::min<std::size_t>(
                scc.capacityBytes, std::size_t{64} << 10);
            shadow_cache = std::make_unique<ShardedPadCache>(scc);
        }
        shadow = std::make_unique<IntegrityShadow>(
            cfg.faults, cfg.faultSeed, cfg.recovery,
            shadow_cache.get());
    }

    // Pending arrivals: (time, id) min-heap, id as the deterministic
    // tie-break. Open loop pre-generates the whole stream; closed
    // loop issues `concurrency` users and re-issues on completion.
    using Arrival = std::pair<double, std::uint64_t>;
    std::priority_queue<Arrival, std::vector<Arrival>,
                        std::greater<Arrival>>
        arrivals;
    std::uint64_t issued = 0;
    auto issue = [&](double t) {
        arrivals.emplace(t, issued);
        ++issued;
        ++rep.offered;
    };
    if (load.mode == LoadMode::Open) {
        for (double t :
             openLoopArrivalsNs(total, load.qps, load.seed))
            issue(t);
    } else {
        const std::size_t users = std::min<std::size_t>(
            load.concurrency ? load.concurrency : 1, total);
        for (std::size_t i = 0; i < users; ++i)
            issue(0.0);
    }

    // Live telemetry: the serve thread (single writer of the hot
    // groups) captures a consistent snapshot at each batch boundary
    // and hands it to the exporter; with no exporter this entire path
    // is dead and the run is byte-identical to a telemetry-free one.
    telemetry::MetricsExporter *exporter = cfg.telemetry.exporter;
    telemetry::SloTracker *slo = cfg.telemetry.slo;
    std::uint64_t pub_seq = 0;
    auto publishSnapshot = [&](double sim_now, bool complete) {
        if (!exporter)
            return;
        auto snap = std::make_shared<telemetry::TelemetrySnapshot>(
            telemetry::captureOwnedSnapshot());
        snap->seq = ++pub_seq;
        snap->simNowNs = sim_now;
        snap->complete = complete;
        snap->fold(workers.statsSnapshot());
        for (const auto &kv : Sampler::instance().latestValues())
            snap->gauges["sampler." + kv.first] = kv.second;
        snap->gauges["serve.queue_depth"] =
            static_cast<double>(queue.size());
        if (cache) {
            snap->gauges["cache.hit_rate"] = cache->hitRate();
            snap->gauges["cache.occupancy_entries"] =
                static_cast<double>(cache->entries());
        }
        if (slo) {
            slo->advanceTo(sim_now);
            for (const auto &kv : slo->gauges())
                snap->gauges[kv.first] = kv.second;
        }
        exporter->publish(std::move(snap));
    };
    // Publish a seed snapshot before flipping ready: a scraper that
    // sees /readyz 200 must never get "no snapshot yet" back.
    if (exporter) {
        publishSnapshot(0.0, false);
        exporter->setReady(true);
    }

    double now = 0.0;
    double busy_until = 0.0;
    auto &sampler = Sampler::instance();
    const auto cycle_of = [&](double ns) {
        return static_cast<std::int64_t>(
            cfg.sys.dram.clock.cyclesFromNs(ns));
    };

    // Admit every arrival at or before `now`.
    auto admit = [&] {
        while (!arrivals.empty() && arrivals.top().first <= now + 1e-9) {
            const auto [t, id] = arrivals.top();
            arrivals.pop();
            ServeRequest r;
            r.id = id;
            r.queryIndex = id % pool.queries.size();
            r.arrivalNs = t;
            r.deadlineNs =
                load.deadlineNs > 0 ? t + load.deadlineNs : 0.0;
            if (queue.push(r)) {
                ++rep.admitted;
                ++serve.counter("requests_admitted");
            } else {
                ++rep.rejected;
                ++serve.counter("requests_rejected");
                if (slo)
                    slo->recordShed(t);
                // Load shedding is a flight-recorder anomaly: the
                // dump captures what the system was doing when the
                // queue filled.
                SECNDP_RQSPAN(r.id, SpanKind::Shed, t, 0.0, 0,
                              queue.size());
                SECNDP_RQANOMALY(AnomalyKind::Shed, r.id, t);
                // A closed-loop user whose request was shed issues
                // the next one immediately.
                if (load.mode == LoadMode::Closed && issued < total)
                    issue(t);
            }
        }
    };

    while (rep.completed + rep.rejected + rep.aborted < total) {
        admit();
        const bool idle = now >= busy_until - 1e-9;
        if (idle) {
            double wake = RequestQueue::noArrival;
            auto batch = sched.poll(now, arrivals.empty(), &wake);
            if (!batch.empty()) {
                const double start = now;
                // Pad-cache admission pass: the serve thread (sole
                // policy-mutating writer) walks each request's chunk
                // addresses in deterministic batch order. Hits
                // discount the simulated on-chip OTP window below;
                // the first hostOtpBlockCap chunks also become the
                // worker's generate/fetch split. All pads here are
                // the serving layer's synthetic version-1 stream.
                std::vector<std::uint64_t> discount;
                std::vector<std::vector<std::uint64_t>> gen_chunks;
                std::vector<std::vector<std::uint64_t>> fetch_chunks;
                if (cache) {
                    discount.assign(batch.size(), 0);
                    gen_chunks.resize(batch.size());
                    fetch_chunks.resize(batch.size());
                    for (std::size_t i = 0; i < batch.size(); ++i) {
                        const TraceQuery &bq =
                            pool.queries[batch[i].queryIndex];
                        std::uint64_t budget = cfg.hostOtpBlockCap;
                        for (const auto &range : bq.ranges) {
                            const std::uint64_t end_addr =
                                range.vaddr + range.bytes;
                            for (std::uint64_t chunk =
                                     range.vaddr & ~std::uint64_t{15};
                                 chunk < end_addr; chunk += 16) {
                                const bool hit =
                                    cache->admit(chunk, 1);
                                if (hit)
                                    ++discount[i];
                                if (budget > 0) {
                                    (hit ? fetch_chunks[i]
                                         : gen_chunks[i])
                                        .push_back(chunk);
                                    --budget;
                                }
                            }
                        }
                    }
                }
                const auto exec = runShardedBatch(
                    shard_cfg, cfg.mode, pool, batch, mappers,
                    cache ? &discount : nullptr);
                busy_until = start + exec.batchServiceNs;
                ++rep.batches;
                ++serve.counter("batches");
                serve.histogram("batch_occupancy")
                    .sample(static_cast<double>(batch.size()));
                serve.histogram("batch_service_ns")
                    .sample(exec.batchServiceNs);

                std::vector<HostCryptoWork> host_work;
                host_work.reserve(batch.size());
                for (std::size_t i = 0; i < batch.size(); ++i) {
                    const ServeRequest &r = batch[i];
                    double completion =
                        start + exec.requestServiceNs[i];
#if SECNDP_TRACING
                    // Lifecycle spans, emission-ordered: wait ->
                    // flush -> engine windows -> channel drain.
                    // Everything is on the global virtual timeline
                    // (shard windows offset by the batch start).
                    if (SECNDP_RQTRACE_ACTIVE()) {
                        auto &rq = RequestTracer::instance();
                        const QueryTiming &qt = exec.requestTiming[i];
                        const unsigned s = exec.requestShard[i];
                        rq.record(r.id, SpanKind::QueueWait,
                                  r.arrivalNs, start - r.arrivalNs,
                                  s, 0);
                        rq.record(r.id, SpanKind::BatchForm, start,
                                  0.0, s, batch.size());
                        if (qt.otpDurNs > 0.0) {
                            rq.record(r.id, SpanKind::OtpGen,
                                      start + qt.otpStartNs,
                                      qt.otpDurNs, s, qt.otpBlocks);
                        }
                        rq.record(r.id, SpanKind::SimDrain, start,
                                  exec.requestServiceNs[i], s,
                                  qt.decryptBound);
                        if (qt.verifyDurNs > 0.0) {
                            rq.record(r.id, SpanKind::Verify,
                                      start + qt.verifyStartNs,
                                      qt.verifyDurNs, s, 0);
                        }
                    }
#endif
                    bool abort_req = false;
                    if (shadow) {
                        // Park trace context for the injector's
                        // fault -> victim cross-links and the
                        // recovery ladder's retry/fallback spans.
                        RequestTracer::setCurrent(r.id);
                        RequestTracer::setNow(completion);
                        const auto rec = shadow->recovery().run(
                            [&] { return shadow->verifyOnce(r.id); },
                            exec.requestServiceNs[i]);
                        RequestTracer::clearCurrent();
                        completion += rec.penaltyNs;
                        switch (rec.outcome) {
                        case RecoveryOutcome::Clean:
                            break;
                        case RecoveryOutcome::RecoveredRetry:
                            ++rep.recoveredRetry;
                            break;
                        case RecoveryOutcome::RecoveredFallback:
                            ++rep.recoveredFallback;
                            break;
                        case RecoveryOutcome::Aborted:
                            abort_req = true;
                            break;
                        }
                    }
                    if (abort_req) {
                        // Terminal shed/abort: the result could never
                        // be verified, so the request leaves the
                        // system unserved and unsampled. Span first,
                        // then the anomaly -- the flight dump's last
                        // span must be the aborting request itself.
                        ++rep.aborted;
                        ++serve.counter("requests_aborted");
                        if (slo)
                            slo->recordAbort(completion);
                        SECNDP_RQSPAN(r.id, SpanKind::Abort,
                                      completion, 0.0,
                                      exec.requestShard[i], 0);
                        SECNDP_RQANOMALY(AnomalyKind::Abort, r.id,
                                         completion);
                    } else {
                        const double latency = completion - r.arrivalNs;
                        if (slo)
                            slo->recordLatency(completion, latency);
                        serve.histogram("latency_ns").sample(latency);
                        serve.histogram("queue_wait_ns")
                            .sample(start - r.arrivalNs);
                        serve.histogram("service_ns")
                            .sample(exec.requestServiceNs[i]);
                        if (r.deadlineNs > 0 &&
                            completion > r.deadlineNs) {
                            ++rep.deadlineMisses;
                            ++serve.counter("deadline_misses");
                        }
#if SECNDP_TRACING
                        {
                            auto &rq = RequestTracer::instance();
                            if (rq.active() && rq.sloNs() > 0.0 &&
                                latency > rq.sloNs()) {
                                rq.anomaly(AnomalyKind::SloBreach,
                                           r.id, completion);
                            }
                        }
#endif
                        ++rep.completed;
                        ++serve.counter("requests_completed");
                    }
                    if (load.mode == LoadMode::Closed &&
                        issued < total)
                        issue(completion);

                    const TraceQuery &q =
                        pool.queries[r.queryIndex];
                    HostCryptoWork w;
                    w.addr = (q.ranges.empty()
                                  ? r.id * 4096
                                  : q.ranges[0].vaddr) &
                             ~std::uint64_t{15};
                    w.dataOtpBlocks =
                        std::min(q.engineWork.dataOtpBlocks,
                                 cfg.hostOtpBlockCap);
                    w.tagOtpBlocks =
                        std::min(q.engineWork.tagOtpBlocks,
                                 cfg.hostOtpBlockCap);
                    w.verifyOps = q.engineWork.verifyOps;
                    if (cache) {
                        w.genChunks = std::move(gen_chunks[i]);
                        w.fetchChunks = std::move(fetch_chunks[i]);
                    }
                    host_work.push_back(std::move(w));
                }
                workers.submit([&host_enc, cache_ptr = cache.get(),
                                work = std::move(host_work)](
                                   StatGroup &g) {
                    runHostCrypto(host_enc, work, g, cache_ptr);
                });

                // Serving-level time series on the global timeline.
                sampler.tick(cycle_of(busy_until));
                sampler.gauge("serve_queue_depth", cycle_of(start),
                              static_cast<double>(queue.size()));
                sampler.gauge("serve_batch_fill", cycle_of(start),
                              static_cast<double>(batch.size()) /
                                  cfg.batch.maxBatch);
                if (cache) {
                    // Hit-rate / occupancy time series (cumulative
                    // hit rate; armed samplers only).
                    sampler.gauge("cache_hit_rate", cycle_of(start),
                                  cache->hitRate());
                    sampler.gauge(
                        "cache_occupancy", cycle_of(start),
                        static_cast<double>(cache->entries()));
                }
                publishSnapshot(busy_until, false);
                continue; // re-evaluate at the same instant
            }
            double next = wake;
            if (!arrivals.empty())
                next = std::min(next, arrivals.top().first);
            if (next == RequestQueue::noArrival)
                break; // no queued work, no future arrivals
            now = std::max(now, next);
        } else {
            double next = busy_until;
            if (!arrivals.empty())
                next = std::min(next, arrivals.top().first);
            now = std::max(now, next);
        }
    }

    // Optional wall-clock hold: keep the endpoint observably
    // "serving" (ready=200, fresh pre-drain snapshot) so scrapers
    // have a window to land in. Happens off the simulated timeline.
    if (exporter && cfg.telemetry.holdBeforeDrainMs > 0) {
        publishSnapshot(std::max(busy_until, now), false);
        std::this_thread::sleep_for(std::chrono::duration<double,
                                                          std::milli>(
            cfg.telemetry.holdBeforeDrainMs));
    }
    if (exporter)
        exporter->setReady(false); // drain begins: not ready

    {
        ScopedPhase phase("verify_drain");
        workers.drain();
    }

#if SECNDP_TRACING
    // Publish flight-recorder accounting into the sidecar, but only
    // when tracing was armed: an untraced run must stay byte-identical
    // to the pre-tracing baselines (no "trace" group at all).
    if (RequestTracer::instance().active()) {
        auto &rq = RequestTracer::instance();
        StatGroup trace("trace");
        trace.counter("spans") = rq.spansRecorded();
        trace.counter("spans_dropped") = rq.droppedSpans();
        trace.counter("anomalies") = rq.anomalyCount();
        trace.counter("flight_dumps") = rq.flightDumps();
        trace.counter("slo_breaches") =
            rq.anomalyCountOf(AnomalyKind::SloBreach);
        trace.counter("sheds") =
            rq.anomalyCountOf(AnomalyKind::Shed);
        trace.counter("aborts") =
            rq.anomalyCountOf(AnomalyKind::Abort);
    }
#endif

    rep.makespanNs = std::max(busy_until, now);
    rep.sustainedQps = rep.makespanNs > 0
                           ? rep.completed / (rep.makespanNs / 1e9)
                           : 0.0;
    serve.scalar("sustained_qps") = rep.sustainedQps;
    serve.scalar("makespan_ns") = rep.makespanNs;
    serve.counter("flush_full") = sched.fullFlushes();
    serve.counter("flush_timeout") = sched.timeoutFlushes();
    serve.counter("flush_drain") = sched.drainFlushes();
    rep.p50LatencyNs = serve.histogram("latency_ns").percentile(0.50);
    rep.p95LatencyNs = serve.histogram("latency_ns").percentile(0.95);
    rep.p99LatencyNs = serve.histogram("latency_ns").percentile(0.99);
    if (shadow) {
        rep.tamperDetected = shadow->injector().detectedQueries();
        rep.faultsInjected = shadow->injector().injectedTotal();
    }

    if (slo) {
        // End-of-run SLO accounting rides the sidecar as its own
        // group; scoped so it retires before the final capture below
        // and the complete snapshot sees it.
        slo->advanceTo(rep.makespanNs);
        StatGroup tg("telemetry");
        slo->publish(tg);
    }
    if (cache) {
        // Whole-run cache accounting as its own sidecar group;
        // scoped so the complete snapshot below sees it. The shadow
        // verifier's private cache is intentionally not published --
        // it serves a different key and would pollute the serving
        // cache's hit-rate story.
        StatGroup cg("cache");
        cache->publish(cg);
    }
    // Final complete snapshot: counters are whole-run totals, so a
    // post-drain scrape agrees with the stats sidecar exactly.
    publishSnapshot(rep.makespanNs, true);

    return rep;
}

} // namespace secndp
