/**
 * @file
 * Request-stream synthesis for the serving layer.
 *
 * Two canonical load models (the pairing every serving benchmark
 * uses, cf. treadmill/mutilate-style generators):
 *
 *   open loop   -- arrivals are a Poisson process at a target QPS,
 *                  independent of completions. Exposes queueing
 *                  collapse: past saturation the queue (and tail
 *                  latency) grows without bound until admission
 *                  control sheds load.
 *   closed loop -- a fixed population of `concurrency` users, each
 *                  re-issuing the instant its previous request
 *                  completes (zero think time). Self-throttling;
 *                  measures peak sustainable throughput.
 *
 * Streams are synthesized with the repo's deterministic xoshiro Rng,
 * so a (mode, qps/concurrency, requests, seed) tuple is reproducible
 * bit-for-bit -- the property the CI loadgen gate relies on.
 */

#ifndef SECNDP_SERVE_LOADGEN_HH
#define SECNDP_SERVE_LOADGEN_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace secndp {

/** Load-generation models. */
enum class LoadMode
{
    Open,
    Closed,
};

const char *loadModeName(LoadMode mode);

/** Load-stream parameters. */
struct LoadConfig
{
    LoadMode mode = LoadMode::Open;
    /** Open loop: mean arrival rate, queries per second. */
    double qps = 500000.0;
    /** Closed loop: fixed outstanding-request population. */
    unsigned concurrency = 16;
    /** Total requests the run issues. */
    std::size_t requests = 256;
    /** Relative completion deadline per request, ns (0 = none). */
    double deadlineNs = 0.0;
    std::uint64_t seed = Rng::defaultSeed;
};

/**
 * Poisson arrival times for an open-loop stream: `n` strictly
 * increasing timestamps (ns) with exponential interarrivals of mean
 * 1/qps. Deterministic in (n, qps, seed).
 */
std::vector<double> openLoopArrivalsNs(std::size_t n, double qps,
                                       std::uint64_t seed);

} // namespace secndp

#endif // SECNDP_SERVE_LOADGEN_HH
