#include "serve/worker_pool.hh"

namespace secndp {

WorkerPool::WorkerPool(unsigned threads, std::string stat_group)
    : statGroupName_(std::move(stat_group)),
      stats_(statGroupName_, StatGroup::noRegister)
{
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerMain(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workAvailable_.notify_all();
    for (auto &t : workers_)
        t.join();
    // One registered fold so reports see the merged group exactly as
    // the retired per-thread groups used to produce it.
    if (!stats_.empty()) {
        StatGroup retired(statGroupName_);
        retired.mergeFrom(stats_);
    }
}

void
WorkerPool::submit(Job job)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        queue_.push_back(std::move(job));
    }
    workAvailable_.notify_one();
}

void
WorkerPool::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock,
               [this] { return queue_.empty() && running_ == 0; });
}

std::uint64_t
WorkerPool::jobsCompleted() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    return completed_;
}

StatGroup
WorkerPool::statsSnapshot() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    return stats_;
}

void
WorkerPool::workerMain()
{
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workAvailable_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ with no work left
            job = std::move(queue_.front());
            queue_.pop_front();
            ++running_;
        }
        // Job-local, unregistered: the job writes race-free, the
        // fold below happens under the pool mutex.
        StatGroup jobStats(statGroupName_, StatGroup::noRegister);
        job(jobStats);
        {
            std::unique_lock<std::mutex> lock(mutex_);
            stats_.mergeFrom(jobStats);
            --running_;
            ++completed_;
            if (queue_.empty() && running_ == 0)
                idle_.notify_all();
        }
    }
}

} // namespace secndp
