#include "serve/loadgen.hh"

#include <cmath>

#include "common/logging.hh"

namespace secndp {

const char *
loadModeName(LoadMode mode)
{
    switch (mode) {
      case LoadMode::Open: return "open";
      case LoadMode::Closed: return "closed";
    }
    return "?";
}

std::vector<double>
openLoopArrivalsNs(std::size_t n, double qps, std::uint64_t seed)
{
    SECNDP_ASSERT(qps > 0.0, "open-loop qps must be positive");
    Rng rng(seed);
    const double mean_gap_ns = 1e9 / qps;
    std::vector<double> arrivals;
    arrivals.reserve(n);
    double t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        // Inverse-CDF exponential draw; 1 - u in (0, 1] avoids log(0).
        const double u = rng.nextDouble();
        t += -std::log(1.0 - u) * mean_gap_ns;
        arrivals.push_back(t);
    }
    return arrivals;
}

} // namespace secndp
