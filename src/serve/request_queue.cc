#include "serve/request_queue.hh"

#include <algorithm>

namespace secndp {

const char *
queuePolicyName(QueuePolicy policy)
{
    switch (policy) {
      case QueuePolicy::Fifo: return "fifo";
      case QueuePolicy::Deadline: return "deadline";
    }
    return "?";
}

RequestQueue::RequestQueue(QueuePolicy policy, std::size_t capacity)
    : policy_(policy), capacity_(capacity)
{
}

bool
RequestQueue::before(const ServeRequest &a, const ServeRequest &b) const
{
    if (policy_ == QueuePolicy::Deadline) {
        // 0 means "no deadline": always less urgent than any real one.
        const double da = a.deadlineNs == 0.0 ? noArrival : a.deadlineNs;
        const double db = b.deadlineNs == 0.0 ? noArrival : b.deadlineNs;
        if (da != db)
            return da < db;
    }
    return a.id < b.id;
}

bool
RequestQueue::push(const ServeRequest &req)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (waiting_.size() >= capacity_)
        return false;
    waiting_.push_back(req);
    return true;
}

std::vector<ServeRequest>
RequestQueue::popUpTo(std::size_t n)
{
    std::lock_guard<std::mutex> lock(mutex_);
    n = std::min(n, waiting_.size());
    std::vector<ServeRequest> out;
    if (n == 0)
        return out;
    // The queue is bounded and small; a partial selection sort per
    // flush is simpler than maintaining a policy-keyed heap and is
    // nowhere near the serving hot path (the simulator is).
    std::partial_sort(waiting_.begin(), waiting_.begin() + n,
                      waiting_.end(),
                      [this](const ServeRequest &a, const ServeRequest &b) {
                          return before(a, b);
                      });
    out.assign(waiting_.begin(), waiting_.begin() + n);
    waiting_.erase(waiting_.begin(), waiting_.begin() + n);
    return out;
}

std::size_t
RequestQueue::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return waiting_.size();
}

double
RequestQueue::oldestArrivalNs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    double oldest = noArrival;
    for (const auto &r : waiting_)
        oldest = std::min(oldest, r.arrivalNs);
    return oldest;
}

} // namespace secndp
