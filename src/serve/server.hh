/**
 * @file
 * The SecNDP query-serving loop: queue -> scheduler -> shards ->
 * verify pool.
 *
 * runServe() plays a request stream (open or closed loop, see
 * serve/loadgen.hh) against a batched multi-channel SecNDP system on
 * a virtual nanosecond timeline:
 *
 *   1. arrivals are admitted into a bounded RequestQueue (rejections
 *      are load shedding, counted, and never retried);
 *   2. whenever the simulated system is idle, the BatchScheduler
 *      flushes a batch (full / timeout / drain, see
 *      serve/batch_scheduler.hh) which shards round-robin across
 *      `shards` memory channels and occupies the system until the
 *      slowest shard finishes;
 *   3. the host-side SecNDP work of the batch -- counter-mode OTP
 *      generation for every touched block and the C_Tres tag checks
 *      -- is enqueued on a real WorkerPool, so host crypto of batch N
 *      overlaps simulation of batch N+1 in wall-clock time.
 *
 * Every per-request metric lands in the "serve" StatGroup
 * (latency_ns / queue_wait_ns / service_ns / batch_occupancy
 * histograms, admission + flush-cause counters, sustained_qps), the
 * worker pool's host-crypto counters land in "serve_worker", and both
 * ride the standard schema-v2 stats sidecars. All simulated-side
 * numbers are deterministic in the seed; only host_phases wall times
 * vary between machines.
 */

#ifndef SECNDP_SERVE_SERVER_HH
#define SECNDP_SERVE_SERVER_HH

#include <cstdint>

#include "arch/system.hh"
#include "cache/pad_cache.hh"
#include "faults/fault_spec.hh"
#include "faults/recovery.hh"
#include "serve/batch_scheduler.hh"
#include "serve/loadgen.hh"
#include "serve/request_queue.hh"

namespace secndp {

namespace telemetry {
class MetricsExporter;
class SloTracker;
} // namespace telemetry

/**
 * Live-telemetry hookup (all optional; every pointer null = the
 * feature is off and the serving loop's stats sidecars stay
 * byte-identical -- no telemetry group, no snapshots, no extra work).
 *
 * The serve thread is the sole caller into both objects: it publishes
 * a TelemetrySnapshot to `exporter` at every batch boundary and again
 * (complete=true) after the final drain, and it feeds `slo` from the
 * same completion/shed/abort events the serve.* counters see, so a
 * mid-run scrape and the end-of-run sidecar always agree on totals.
 */
struct ServeTelemetry
{
    /** Scrape endpoint to publish snapshots to (null = no export). */
    telemetry::MetricsExporter *exporter = nullptr;
    /** Burn-rate tracker; also drives the end-of-run `telemetry`
     *  sidecar group when non-null. */
    telemetry::SloTracker *slo = nullptr;
    /**
     * Wall-clock milliseconds to hold the run open *before* draining,
     * with /readyz still 200 and the last pre-drain snapshot
     * published -- gives scrapers (CI, `secndp_report top`) a window
     * where the system is observably "serving". Simulated-time stats
     * are unaffected (the hold happens between batches and drain).
     */
    double holdBeforeDrainMs = 0.0;
};

/** Serving-system configuration. */
struct ServeConfig
{
    /** Per-channel hardware config (channels forced to 1 per shard). */
    SystemConfig sys;
    ExecMode mode = ExecMode::SecNdpEnc;
    /** Memory channels batches shard across. */
    unsigned shards = 2;
    BatchPolicy batch;
    QueuePolicy policy = QueuePolicy::Fifo;
    std::size_t queueCapacity = 1024;
    /** Host-crypto worker threads. */
    unsigned workers = 2;
    /**
     * Per-request cap on *performed* host OTP blocks (the counters
     * still reflect work actually done, so they stay deterministic).
     * Keeps software-AES host work proportional, not dominant.
     */
    std::uint64_t hostOtpBlockCap = 256;

    /**
     * Fault injection into the untrusted side (empty = disabled).
     * When enabled, every completed request is end-to-end verified
     * against a functional integrity shadow whose device runs the
     * injected adversary, and failures drive the recovery ladder
     * below. When disabled, none of this machinery exists and the
     * serving loop (and its stats sidecars) is byte-identical to the
     * pre-adversary behavior.
     */
    FaultSpec faults;
    /** Adversary Rng seed (independent of the load seed). */
    std::uint64_t faultSeed = 1;
    /** Detection-and-recovery ladder (see faults/recovery.hh). */
    RecoveryPolicy recovery;

    /** Live telemetry hookup (all-null defaults = disabled). */
    ServeTelemetry telemetry;

    /**
     * Trusted-side pad cache (src/cache). capacityBytes == 0 (the
     * default) disables it entirely: no cache object, no admission
     * pass, no cache.* stats group -- the run is byte-identical to
     * the pre-cache serving layer. When enabled, the serve loop owns
     * ONE ShardedPadCache shared across worker threads; the serve
     * thread alone runs the policy-mutating admission pass (in
     * deterministic batch order), workers only peek()/fill(), so
     * every cache.* counter is a pure function of the request
     * stream. Cache hits shrink both the simulated on-chip OTP
     * window (the p99 win) and the real host AES work.
     */
    PadCacheConfig cache;
};

/** Aggregate outcome of one serving run. */
struct ServeReport
{
    std::size_t offered = 0;   ///< requests generated
    std::size_t admitted = 0;  ///< accepted into the queue
    std::size_t rejected = 0;  ///< shed at admission (queue full)
    std::size_t completed = 0; ///< served to completion
    /** Terminal verification failures (retries exhausted, fallback
     *  disabled): the shed/abort end state of the recovery ladder. */
    std::size_t aborted = 0;
    /** @name Integrity outcomes (all 0 when injection is disabled) */
    /// @{
    std::uint64_t tamperDetected = 0;   ///< queries failing the check
    std::uint64_t recoveredRetry = 0;   ///< verified on a re-read
    std::uint64_t recoveredFallback = 0; ///< host recompute served it
    std::uint64_t faultsInjected = 0;   ///< raw injection events
    /// @}
    std::uint64_t batches = 0;
    std::uint64_t deadlineMisses = 0;
    double makespanNs = 0.0;     ///< virtual end of the last batch
    double sustainedQps = 0.0;   ///< completed / makespan
    double p50LatencyNs = 0.0;
    double p95LatencyNs = 0.0;
    double p99LatencyNs = 0.0;
};

/**
 * Serve `load` against `cfg`, drawing request payloads round-robin
 * from `pool` (request i uses pool query i mod pool size).
 * Blocks until every request is completed or rejected and the worker
 * pool has drained. fatal()s on an empty pool.
 */
ServeReport runServe(const ServeConfig &cfg, const LoadConfig &load,
                     const WorkloadTrace &pool);

} // namespace secndp

#endif // SECNDP_SERVE_SERVER_HH
