#include "telemetry/metrics_exporter.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <vector>

#include "telemetry/prom_text.hh"

#ifdef __linux__
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace secndp::telemetry {

#ifdef __linux__

namespace {

bool
setNonBlocking(int fd)
{
    const int flags = fcntl(fd, F_GETFL, 0);
    return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/** One in-flight connection: request bytes in, response bytes out. */
struct Conn
{
    int fd = -1;
    std::string in;
    std::string out;
    std::size_t outPos = 0;
    bool responding = false;
};

std::string
httpResponse(int code, const char *reason, const char *contentType,
             const std::string &body)
{
    std::ostringstream os;
    os << "HTTP/1.1 " << code << " " << reason << "\r\n"
       << "Content-Type: " << contentType << "\r\n"
       << "Content-Length: " << body.size() << "\r\n"
       << "Connection: close\r\n\r\n"
       << body;
    return os.str();
}

/** Request line path, or empty until the header terminator arrives. */
std::string
requestPath(const std::string &in)
{
    if (in.find("\r\n\r\n") == std::string::npos &&
        in.find("\n\n") == std::string::npos)
        return "";
    const std::size_t sp1 = in.find(' ');
    if (sp1 == std::string::npos)
        return "/";
    const std::size_t sp2 = in.find(' ', sp1 + 1);
    if (sp2 == std::string::npos)
        return "/";
    return in.substr(sp1 + 1, sp2 - sp1 - 1);
}

constexpr std::size_t kMaxRequestBytes = 8192;

} // namespace

bool
MetricsExporter::start(const Config &cfg, std::string *err)
{
    if (running_.load()) {
        if (err)
            *err = "exporter already running";
        return false;
    }
    cfg_ = cfg;

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        if (err)
            *err = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cfg_.port);
    if (::inet_pton(AF_INET, cfg_.bindAddr.c_str(),
                    &addr.sin_addr) != 1) {
        if (err)
            *err = "bad bind address: " + cfg_.bindAddr;
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd_, 16) != 0 || !setNonBlocking(listenFd_)) {
        if (err)
            *err = std::string("bind/listen ") + cfg_.bindAddr + ":" +
                   std::to_string(cfg_.port) + ": " +
                   std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }

    sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&bound),
                      &blen) == 0)
        port_ = ntohs(bound.sin_port);

    if (::pipe(wakePipe_) != 0) {
        if (err)
            *err = std::string("pipe: ") + std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    setNonBlocking(wakePipe_[0]);
    setNonBlocking(wakePipe_[1]);

    stopRequested_.store(false);
    running_.store(true);
    thread_ = std::thread([this] { serveLoop(); });
    return true;
}

void
MetricsExporter::stop()
{
    if (!running_.load() && !thread_.joinable())
        return;
    stopRequested_.store(true);
    if (wakePipe_[1] >= 0) {
        const char b = 'x';
        [[maybe_unused]] ssize_t n = ::write(wakePipe_[1], &b, 1);
    }
    if (thread_.joinable())
        thread_.join();
    for (int *fd : {&listenFd_, &wakePipe_[0], &wakePipe_[1]}) {
        if (*fd >= 0)
            ::close(*fd);
        *fd = -1;
    }
    running_.store(false);
    port_ = 0;
}

MetricsExporter::~MetricsExporter()
{
    stop();
}

void
MetricsExporter::publish(std::shared_ptr<const TelemetrySnapshot> snap)
{
    std::lock_guard<std::mutex> lock(snapMutex_);
    snap_ = std::move(snap);
}

std::shared_ptr<const TelemetrySnapshot>
MetricsExporter::latest() const
{
    std::lock_guard<std::mutex> lock(snapMutex_);
    return snap_;
}

void
MetricsExporter::serveLoop()
{
    const int epfd = ::epoll_create1(0);
    if (epfd < 0) {
        running_.store(false);
        return;
    }

    auto watch = [&](int fd, std::uint32_t events, void *ptr) {
        epoll_event ev{};
        ev.events = events;
        ev.data.ptr = ptr;
        ::epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &ev);
    };
    auto rearm = [&](int fd, std::uint32_t events, void *ptr) {
        epoll_event ev{};
        ev.events = events;
        ev.data.ptr = ptr;
        ::epoll_ctl(epfd, EPOLL_CTL_MOD, fd, &ev);
    };

    // Sentinel ptr values for the two non-connection fds.
    Conn listenSentinel, wakeSentinel;
    listenSentinel.fd = listenFd_;
    wakeSentinel.fd = wakePipe_[0];
    watch(listenFd_, EPOLLIN, &listenSentinel);
    watch(wakePipe_[0], EPOLLIN, &wakeSentinel);

    std::vector<Conn *> conns;
    auto closeConn = [&](Conn *c) {
        ::epoll_ctl(epfd, EPOLL_CTL_DEL, c->fd, nullptr);
        ::close(c->fd);
        conns.erase(std::find(conns.begin(), conns.end(), c));
        delete c;
    };

    auto buildResponse = [&](const std::string &path) {
        if (path == "/metrics" || path == "/metrics/") {
            auto snap = latest();
            std::ostringstream body;
            if (snap)
                renderExposition(body, *snap);
            else
                body << "# no snapshot published yet\n";
            scrapes_.fetch_add(1);
            return httpResponse(
                200, "OK",
                "text/plain; version=0.0.4; charset=utf-8",
                body.str());
        }
        if (path == "/healthz")
            return httpResponse(200, "OK", "text/plain", "ok\n");
        if (path == "/readyz") {
            return ready_.load()
                       ? httpResponse(200, "OK", "text/plain",
                                      "ready\n")
                       : httpResponse(503, "Service Unavailable",
                                      "text/plain", "draining\n");
        }
        return httpResponse(404, "Not Found", "text/plain",
                            "not found\n");
    };

    epoll_event events[32];
    while (!stopRequested_.load()) {
        const int n = ::epoll_wait(epfd, events, 32, 500);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        for (int i = 0; i < n; ++i) {
            auto *c = static_cast<Conn *>(events[i].data.ptr);

            if (c == &wakeSentinel) {
                char buf[64];
                while (::read(wakePipe_[0], buf, sizeof(buf)) > 0) {
                }
                continue;
            }

            if (c == &listenSentinel) {
                for (;;) {
                    const int fd = ::accept(listenFd_, nullptr,
                                            nullptr);
                    if (fd < 0)
                        break;
                    if (static_cast<int>(conns.size()) >=
                            cfg_.maxConnections ||
                        !setNonBlocking(fd)) {
                        ::close(fd);
                        continue;
                    }
                    auto *nc = new Conn;
                    nc->fd = fd;
                    conns.push_back(nc);
                    watch(fd, EPOLLIN, nc);
                }
                continue;
            }

            if (events[i].events & (EPOLLHUP | EPOLLERR)) {
                closeConn(c);
                continue;
            }

            if (!c->responding && (events[i].events & EPOLLIN)) {
                char buf[2048];
                bool dead = false;
                for (;;) {
                    const ssize_t r = ::read(c->fd, buf, sizeof(buf));
                    if (r > 0) {
                        c->in.append(buf, static_cast<std::size_t>(r));
                        if (c->in.size() > kMaxRequestBytes) {
                            dead = true;
                            break;
                        }
                    } else if (r == 0) {
                        dead = true;
                        break;
                    } else {
                        break; // EAGAIN (or a real error on write)
                    }
                }
                if (dead) {
                    closeConn(c);
                    continue;
                }
                const std::string path = requestPath(c->in);
                if (!path.empty()) {
                    c->out = buildResponse(path);
                    c->responding = true;
                    rearm(c->fd, EPOLLOUT, c);
                }
                continue;
            }

            if (c->responding && (events[i].events & EPOLLOUT)) {
                while (c->outPos < c->out.size()) {
                    const ssize_t w =
                        ::write(c->fd, c->out.data() + c->outPos,
                                c->out.size() - c->outPos);
                    if (w > 0) {
                        c->outPos += static_cast<std::size_t>(w);
                    } else if (w < 0 && (errno == EAGAIN ||
                                         errno == EWOULDBLOCK)) {
                        break;
                    } else {
                        c->outPos = c->out.size();
                        break;
                    }
                }
                if (c->outPos >= c->out.size())
                    closeConn(c);
            }
        }
    }

    for (Conn *c : conns) {
        ::close(c->fd);
        delete c;
    }
    ::close(epfd);
    running_.store(false);
}

#else // !__linux__

bool
MetricsExporter::start(const Config &, std::string *err)
{
    if (err)
        *err = "metrics exporter requires Linux (epoll)";
    return false;
}

void
MetricsExporter::stop()
{
}

MetricsExporter::~MetricsExporter() = default;

void
MetricsExporter::publish(std::shared_ptr<const TelemetrySnapshot> snap)
{
    std::lock_guard<std::mutex> lock(snapMutex_);
    snap_ = std::move(snap);
}

std::shared_ptr<const TelemetrySnapshot>
MetricsExporter::latest() const
{
    std::lock_guard<std::mutex> lock(snapMutex_);
    return snap_;
}

void
MetricsExporter::serveLoop()
{
}

#endif // __linux__

} // namespace secndp::telemetry
