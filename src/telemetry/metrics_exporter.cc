#include "telemetry/metrics_exporter.hh"

#include <algorithm>
#include <cerrno>
#include <sstream>
#include <vector>

#include "net/socket_util.hh"
#include "telemetry/prom_text.hh"

#ifdef __linux__
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace secndp::telemetry {

#ifdef __linux__

namespace {

/** One in-flight connection: request bytes in, response bytes out. */
struct Conn
{
    int fd = -1;
    std::string in;
    std::string out;
    std::size_t outPos = 0;
    bool responding = false;
};

std::string
httpResponse(int code, const char *reason, const char *contentType,
             const std::string &body)
{
    std::ostringstream os;
    os << "HTTP/1.1 " << code << " " << reason << "\r\n"
       << "Content-Type: " << contentType << "\r\n"
       << "Content-Length: " << body.size() << "\r\n"
       << "Connection: close\r\n\r\n"
       << body;
    return os.str();
}

/** Request line path, or empty until the header terminator arrives. */
std::string
requestPath(const std::string &in)
{
    if (in.find("\r\n\r\n") == std::string::npos &&
        in.find("\n\n") == std::string::npos)
        return "";
    const std::size_t sp1 = in.find(' ');
    if (sp1 == std::string::npos)
        return "/";
    const std::size_t sp2 = in.find(' ', sp1 + 1);
    if (sp2 == std::string::npos)
        return "/";
    return in.substr(sp1 + 1, sp2 - sp1 - 1);
}

constexpr std::size_t kMaxRequestBytes = 8192;

} // namespace

bool
MetricsExporter::start(const Config &cfg, std::string *err)
{
    if (running_.load()) {
        if (err)
            *err = "exporter already running";
        return false;
    }
    cfg_ = cfg;
    net::ignoreSigpipe();

    listenFd_ = net::listenTcp(cfg_.bindAddr, cfg_.port, 16, &port_,
                               err);
    if (listenFd_ < 0)
        return false;

    if (!wake_.open(err)) {
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }

    stopRequested_.store(false);
    running_.store(true);
    thread_ = std::thread([this] { serveLoop(); });
    return true;
}

void
MetricsExporter::stop()
{
    if (!running_.load() && !thread_.joinable())
        return;
    stopRequested_.store(true);
    wake_.notify();
    if (thread_.joinable())
        thread_.join();
    if (listenFd_ >= 0)
        ::close(listenFd_);
    listenFd_ = -1;
    wake_.close();
    running_.store(false);
    port_ = 0;
}

MetricsExporter::~MetricsExporter()
{
    stop();
}

void
MetricsExporter::publish(std::shared_ptr<const TelemetrySnapshot> snap)
{
    std::lock_guard<std::mutex> lock(snapMutex_);
    snap_ = std::move(snap);
}

std::shared_ptr<const TelemetrySnapshot>
MetricsExporter::latest() const
{
    std::lock_guard<std::mutex> lock(snapMutex_);
    return snap_;
}

void
MetricsExporter::serveLoop()
{
    const int epfd = ::epoll_create1(0);
    if (epfd < 0) {
        running_.store(false);
        return;
    }

    auto watch = [&](int fd, std::uint32_t events, void *ptr) {
        epoll_event ev{};
        ev.events = events;
        ev.data.ptr = ptr;
        ::epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &ev);
    };
    auto rearm = [&](int fd, std::uint32_t events, void *ptr) {
        epoll_event ev{};
        ev.events = events;
        ev.data.ptr = ptr;
        ::epoll_ctl(epfd, EPOLL_CTL_MOD, fd, &ev);
    };

    // Sentinel ptr values for the two non-connection fds.
    Conn listenSentinel, wakeSentinel;
    listenSentinel.fd = listenFd_;
    wakeSentinel.fd = wake_.rd;
    watch(listenFd_, EPOLLIN, &listenSentinel);
    watch(wake_.rd, EPOLLIN, &wakeSentinel);

    std::vector<Conn *> conns;
    auto closeConn = [&](Conn *c) {
        ::epoll_ctl(epfd, EPOLL_CTL_DEL, c->fd, nullptr);
        ::close(c->fd);
        conns.erase(std::find(conns.begin(), conns.end(), c));
        delete c;
    };

    auto buildResponse = [&](const std::string &path) {
        if (path == "/metrics" || path == "/metrics/") {
            auto snap = latest();
            std::ostringstream body;
            if (snap)
                renderExposition(body, *snap);
            else
                body << "# no snapshot published yet\n";
            scrapes_.fetch_add(1);
            return httpResponse(
                200, "OK",
                "text/plain; version=0.0.4; charset=utf-8",
                body.str());
        }
        if (path == "/healthz")
            return httpResponse(200, "OK", "text/plain", "ok\n");
        if (path == "/readyz") {
            return ready_.load()
                       ? httpResponse(200, "OK", "text/plain",
                                      "ready\n")
                       : httpResponse(503, "Service Unavailable",
                                      "text/plain", "draining\n");
        }
        return httpResponse(404, "Not Found", "text/plain",
                            "not found\n");
    };

    epoll_event events[32];
    while (!stopRequested_.load()) {
        const int n = ::epoll_wait(epfd, events, 32, 500);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        for (int i = 0; i < n; ++i) {
            auto *c = static_cast<Conn *>(events[i].data.ptr);

            if (c == &wakeSentinel) {
                wake_.drain();
                continue;
            }

            if (c == &listenSentinel) {
                for (;;) {
                    const int fd = ::accept(listenFd_, nullptr,
                                            nullptr);
                    if (fd < 0)
                        break;
                    if (static_cast<int>(conns.size()) >=
                            cfg_.maxConnections ||
                        !net::setNonBlocking(fd)) {
                        ::close(fd);
                        continue;
                    }
                    auto *nc = new Conn;
                    nc->fd = fd;
                    conns.push_back(nc);
                    watch(fd, EPOLLIN, nc);
                }
                continue;
            }

            if (events[i].events & (EPOLLHUP | EPOLLERR)) {
                closeConn(c);
                continue;
            }

            if (!c->responding && (events[i].events & EPOLLIN)) {
                const net::IoResult r = net::readSome(
                    c->fd, c->in, 2048, kMaxRequestBytes);
                const std::string path = requestPath(c->in);
                // An oversized request that still has no complete
                // header is abuse; EOF/error before one is a dead
                // peer either way.
                if (path.empty() &&
                    (r.eof || r.error ||
                     c->in.size() >= kMaxRequestBytes)) {
                    closeConn(c);
                    continue;
                }
                if (!path.empty()) {
                    c->out = buildResponse(path);
                    c->responding = true;
                    rearm(c->fd, EPOLLOUT, c);
                }
                continue;
            }

            if (c->responding && (events[i].events & EPOLLOUT)) {
                const net::IoResult w =
                    net::writeSome(c->fd, c->out, c->outPos);
                if (w.error)
                    c->outPos = c->out.size();
                if (c->outPos >= c->out.size())
                    closeConn(c);
            }
        }
    }

    for (Conn *c : conns) {
        ::close(c->fd);
        delete c;
    }
    ::close(epfd);
    running_.store(false);
}

#else // !__linux__

bool
MetricsExporter::start(const Config &, std::string *err)
{
    if (err)
        *err = "metrics exporter requires Linux (epoll)";
    return false;
}

void
MetricsExporter::stop()
{
}

MetricsExporter::~MetricsExporter() = default;

void
MetricsExporter::publish(std::shared_ptr<const TelemetrySnapshot> snap)
{
    std::lock_guard<std::mutex> lock(snapMutex_);
    snap_ = std::move(snap);
}

std::shared_ptr<const TelemetrySnapshot>
MetricsExporter::latest() const
{
    std::lock_guard<std::mutex> lock(snapMutex_);
    return snap_;
}

void
MetricsExporter::serveLoop()
{
}

#endif // __linux__

} // namespace secndp::telemetry
