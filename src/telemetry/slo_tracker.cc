#include "telemetry/slo_tracker.hh"

#include <algorithm>
#include <cmath>

#include "common/stats.hh"

namespace secndp::telemetry {

namespace {
constexpr std::size_t kBucketsPerWindow = 60;
} // namespace

void
SloTracker::Ring::init(double windowNs, std::size_t buckets)
{
    bucketNs = std::max(windowNs, 1.0) / buckets;
    good.assign(buckets, 0);
    bad.assign(buckets, 0);
    headBucket = 0;
    started = false;
}

void
SloTracker::Ring::advanceTo(double nowNs)
{
    const auto target =
        static_cast<std::int64_t>(std::floor(nowNs / bucketNs));
    if (!started) {
        headBucket = target;
        started = true;
        return;
    }
    if (target <= headBucket)
        return;
    const auto steps = target - headBucket;
    const auto n = static_cast<std::int64_t>(good.size());
    if (steps >= n) {
        std::fill(good.begin(), good.end(), 0);
        std::fill(bad.begin(), bad.end(), 0);
    } else {
        // Zero the buckets the head sweeps over as it moves forward.
        for (std::int64_t s = 1; s <= steps; ++s) {
            const auto idx =
                static_cast<std::size_t>((headBucket + s) % n);
            good[idx] = 0;
            bad[idx] = 0;
        }
    }
    headBucket = target;
}

void
SloTracker::Ring::add(double nowNs, bool isBad)
{
    advanceTo(nowNs);
    const auto idx = static_cast<std::size_t>(
        headBucket % static_cast<std::int64_t>(good.size()));
    (isBad ? bad : good)[idx]++;
}

std::uint64_t
SloTracker::Ring::total() const
{
    std::uint64_t t = 0;
    for (std::size_t i = 0; i < good.size(); ++i)
        t += good[i] + bad[i];
    return t;
}

std::uint64_t
SloTracker::Ring::badTotal() const
{
    std::uint64_t t = 0;
    for (auto b : bad)
        t += b;
    return t;
}

SloTracker::SloTracker(const SloConfig &cfg) : cfg_(cfg)
{
    latFast_.init(cfg_.fastWindowNs, kBucketsPerWindow);
    latSlow_.init(cfg_.effectiveSlowWindowNs(), kBucketsPerWindow);
    availFast_.init(cfg_.fastWindowNs, kBucketsPerWindow);
    availSlow_.init(cfg_.effectiveSlowWindowNs(), kBucketsPerWindow);
}

void
SloTracker::recordLatency(double nowNs, double latencyNs)
{
    const bool slow = latencyNs > cfg_.targetLatencyNs;
    latFast_.add(nowNs, slow);
    latSlow_.add(nowNs, slow);
    availFast_.add(nowNs, false);
    availSlow_.add(nowNs, false);
    ++cumTotal_;
    ++cumArrivals_;
    if (slow)
        ++cumSlow_;
}

void
SloTracker::recordShed(double nowNs)
{
    availFast_.add(nowNs, true);
    availSlow_.add(nowNs, true);
    ++cumArrivals_;
    ++cumErr_;
    ++cumShed_;
}

void
SloTracker::recordAbort(double nowNs)
{
    availFast_.add(nowNs, true);
    availSlow_.add(nowNs, true);
    ++cumArrivals_;
    ++cumErr_;
    ++cumAbort_;
}

void
SloTracker::advanceTo(double nowNs)
{
    latFast_.advanceTo(nowNs);
    latSlow_.advanceTo(nowNs);
    availFast_.advanceTo(nowNs);
    availSlow_.advanceTo(nowNs);
}

Burn
SloTracker::burnOf(const Ring &fast, const Ring &slow, double budget)
{
    Burn b;
    b.fastTotal = fast.total();
    b.slowTotal = slow.total();
    if (budget <= 0.0)
        budget = 1e-9;
    if (b.fastTotal) {
        const double rate =
            static_cast<double>(fast.badTotal()) / b.fastTotal;
        b.fast = rate / budget;
    }
    if (b.slowTotal) {
        const double rate =
            static_cast<double>(slow.badTotal()) / b.slowTotal;
        b.slow = rate / budget;
    }
    return b;
}

Burn
SloTracker::latencyBurn() const
{
    return burnOf(latFast_, latSlow_, 1.0 - cfg_.objective);
}

Burn
SloTracker::availabilityBurn() const
{
    return burnOf(availFast_, availSlow_,
                  1.0 - cfg_.availabilityObjective);
}

bool
SloTracker::alerting() const
{
    return latencyBurn().fast > cfg_.alertBurn ||
           availabilityBurn().fast > cfg_.alertBurn;
}

bool
SloTracker::gateFailed() const
{
    if (cumTotal_) {
        const double rate =
            static_cast<double>(cumSlow_) / cumTotal_;
        if (rate > 1.0 - cfg_.objective)
            return true;
    }
    if (cumArrivals_) {
        const double rate =
            static_cast<double>(cumErr_) / cumArrivals_;
        if (rate > 1.0 - cfg_.availabilityObjective)
            return true;
    }
    return false;
}

std::map<std::string, double>
SloTracker::gauges() const
{
    const Burn lat = latencyBurn();
    const Burn avail = availabilityBurn();
    return {
        {"telemetry.slo.latency_target_ns", cfg_.targetLatencyNs},
        {"telemetry.slo.latency_objective", cfg_.objective},
        {"telemetry.slo.availability_objective",
         cfg_.availabilityObjective},
        {"telemetry.slo.latency_burn_fast", lat.fast},
        {"telemetry.slo.latency_burn_slow", lat.slow},
        {"telemetry.slo.availability_burn_fast", avail.fast},
        {"telemetry.slo.availability_burn_slow", avail.slow},
        {"telemetry.slo.alerting", alerting() ? 1.0 : 0.0},
    };
}

void
SloTracker::publish(StatGroup &g) const
{
    g.scalar("slo.latency_target_ns") = cfg_.targetLatencyNs;
    g.scalar("slo.latency_objective") = cfg_.objective;
    g.scalar("slo.availability_objective") =
        cfg_.availabilityObjective;
    g.counter("slo.requests") = cumTotal_;
    g.counter("slo.latency_violations") = cumSlow_;
    g.counter("slo.arrivals") = cumArrivals_;
    g.counter("slo.availability_errors") = cumErr_;
    g.counter("slo.shed") = cumShed_;
    g.counter("slo.aborted") = cumAbort_;
    const Burn lat = latencyBurn();
    const Burn avail = availabilityBurn();
    g.scalar("slo.latency_burn_fast") = lat.fast;
    g.scalar("slo.latency_burn_slow") = lat.slow;
    g.scalar("slo.availability_burn_fast") = avail.fast;
    g.scalar("slo.availability_burn_slow") = avail.slow;
    g.counter("slo.gate_failed") = gateFailed() ? 1 : 0;
}

} // namespace secndp::telemetry
