#include "telemetry/prom_text.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/stats.hh"

namespace secndp::telemetry {

namespace {

bool
validStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':';
}

bool
validBody(char c)
{
    return validStart(c) ||
           std::isdigit(static_cast<unsigned char>(c));
}

/** Prometheus-flavored number: integers render without exponent or
 *  fraction, everything else as shortest round-trippable decimal. */
std::string
fmtValue(double v)
{
    char buf[48];
    if (std::isnan(v)) {
        return "NaN";
    } else if (std::isinf(v)) {
        return v > 0 ? "+Inf" : "-Inf";
    } else if (v == std::floor(v) && std::abs(v) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    }
    return buf;
}

void
renderHeader(std::ostream &os, const std::string &name,
             const std::string &help, const char *type)
{
    if (!help.empty())
        os << "# HELP " << name << " " << promEscapeHelp(help)
           << "\n";
    os << "# TYPE " << name << " " << type << "\n";
}

} // namespace

std::string
promMetricName(const std::string &raw)
{
    std::string name;
    name.reserve(raw.size() + 1);
    for (char c : raw)
        name.push_back(validBody(c) ? c : '_');
    if (name.empty())
        return "_";
    if (!validStart(name[0]))
        name.insert(name.begin(), '_');
    // "__..." is reserved for Prometheus-internal names.
    if (name.size() >= 2 && name[0] == '_' && name[1] == '_')
        name.insert(0, "secndp");
    return name;
}

std::string
promQualify(const std::string &group, const std::string &stat)
{
    return promMetricName("secndp_" + group + "." + stat);
}

std::string
promEscapeLabel(const std::string &v)
{
    std::string out;
    out.reserve(v.size());
    for (char c : v) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default: out.push_back(c);
        }
    }
    return out;
}

std::string
promEscapeHelp(const std::string &v)
{
    std::string out;
    out.reserve(v.size());
    for (char c : v) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          default: out.push_back(c);
        }
    }
    return out;
}

void
renderCounter(std::ostream &os, const std::string &name,
              const std::string &help, double value)
{
    renderHeader(os, name, help, "counter");
    os << name << " " << fmtValue(value) << "\n";
}

void
renderGauge(std::ostream &os, const std::string &name,
            const std::string &help, double value)
{
    renderHeader(os, name, help, "gauge");
    os << name << " " << fmtValue(value) << "\n";
}

void
renderUntyped(std::ostream &os, const std::string &name,
              const std::string &help, double value)
{
    renderHeader(os, name, help, "untyped");
    os << name << " " << fmtValue(value) << "\n";
}

void
renderHistogram(std::ostream &os, const std::string &name,
                const std::string &help, const Histogram &h)
{
    renderHeader(os, name, help, "histogram");
    // Cumulative log2 buckets. The registry's bucket k holds
    // [2^(k-1), 2^k), so `le` carries the exclusive upper edge --
    // boundary-exact values land one bucket high of strict Prometheus
    // `<=` semantics, a documented approximation for continuous
    // latency data.
    std::uint64_t cum = 0;
    const auto &buckets = h.buckets();
    for (std::size_t b = 0; b < buckets.size(); ++b) {
        cum += buckets[b];
        os << name << "_bucket{le=\""
           << fmtValue(Histogram::bucketHigh(
                  static_cast<unsigned>(b)))
           << "\"} " << cum << "\n";
    }
    os << name << "_bucket{le=\"+Inf\"} " << h.count() << "\n";
    os << name << "_sum " << fmtValue(h.sum()) << "\n";
    os << name << "_count " << h.count() << "\n";
}

void
renderSummary(std::ostream &os, const std::string &name,
              const std::string &help, std::uint64_t count, double sum,
              const std::vector<std::pair<double, double>> &quantiles)
{
    renderHeader(os, name, help, "summary");
    for (const auto &q : quantiles) {
        // Short %g for the label: 0.99 must read "0.99", not the
        // 17-digit round-trip form fmtValue would emit.
        char qbuf[32];
        std::snprintf(qbuf, sizeof(qbuf), "%g", q.first);
        os << name << "{quantile=\"" << qbuf << "\"} "
           << fmtValue(q.second) << "\n";
    }
    os << name << "_sum " << fmtValue(sum) << "\n";
    os << name << "_count " << count << "\n";
}

void
renderExposition(std::ostream &os, const TelemetrySnapshot &snap)
{
    // Run identity as an info-style gauge: every meta key becomes a
    // label, so dashboards can join on tool/workload/config.
    {
        renderHeader(os, "secndp_build_info",
                     "Run metadata from the stats registry.", "gauge");
        os << "secndp_build_info{";
        bool first = true;
        for (const auto &kv : snap.meta) {
            if (!first)
                os << ",";
            first = false;
            os << promMetricName(kv.first) << "=\""
               << promEscapeLabel(kv.second) << "\"";
        }
        os << "} 1\n";
    }
    renderGauge(os, "secndp_sim_time_ns",
                "Virtual serving clock at snapshot capture.",
                snap.simNowNs);
    renderGauge(os, "secndp_snapshot_seq",
                "Publish sequence number of the served snapshot.",
                static_cast<double>(snap.seq));
    renderGauge(os, "secndp_snapshot_complete",
                "1 once the run has drained (counters are totals).",
                snap.complete ? 1.0 : 0.0);

    for (const auto &kv : snap.counters) {
        renderCounter(os, promMetricName("secndp_" + kv.first),
                      "Cumulative counter " + kv.first + ".",
                      static_cast<double>(kv.second));
    }
    for (const auto &kv : snap.gauges) {
        renderGauge(os, promMetricName("secndp_" + kv.first),
                    "Gauge " + kv.first + ".", kv.second);
    }
    for (const auto &kv : snap.histograms) {
        renderHistogram(os, promMetricName("secndp_" + kv.first),
                        "Histogram " + kv.first + " (log2 buckets).",
                        kv.second);
    }
}

bool
parseExposition(const std::string &text,
                std::vector<PromSample> &out, std::string *err)
{
    std::size_t pos = 0, lineno = 0;
    auto fail = [&](const std::string &what) {
        if (err)
            *err = "line " + std::to_string(lineno) + ": " + what;
        return false;
    };
    while (pos < text.size()) {
        ++lineno;
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        std::size_t i = 0;
        while (i < line.size() && (line[i] == ' ' || line[i] == '\t'))
            ++i;
        if (i >= line.size() || line[i] == '#')
            continue;

        PromSample s;
        const std::size_t name_start = i;
        while (i < line.size() && validBody(line[i]))
            ++i;
        s.name = line.substr(name_start, i - name_start);
        if (s.name.empty())
            return fail("expected metric name");

        if (i < line.size() && line[i] == '{') {
            ++i;
            while (i < line.size() && line[i] != '}') {
                const std::size_t key_start = i;
                while (i < line.size() && validBody(line[i]))
                    ++i;
                const std::string key =
                    line.substr(key_start, i - key_start);
                if (key.empty() || i >= line.size() || line[i] != '=')
                    return fail("malformed label in '" + line + "'");
                ++i;
                if (i >= line.size() || line[i] != '"')
                    return fail("label value must be quoted");
                ++i;
                std::string val;
                while (i < line.size() && line[i] != '"') {
                    if (line[i] == '\\' && i + 1 < line.size()) {
                        ++i;
                        if (line[i] == 'n')
                            val.push_back('\n');
                        else
                            val.push_back(line[i]);
                    } else {
                        val.push_back(line[i]);
                    }
                    ++i;
                }
                if (i >= line.size())
                    return fail("unterminated label value");
                ++i; // closing quote
                s.labels[key] = val;
                if (i < line.size() && line[i] == ',')
                    ++i;
            }
            if (i >= line.size())
                return fail("unterminated label set");
            ++i; // closing brace
        }

        while (i < line.size() && (line[i] == ' ' || line[i] == '\t'))
            ++i;
        if (i >= line.size())
            return fail("missing value for '" + s.name + "'");
        // Value (then an optional timestamp we ignore).
        char *endp = nullptr;
        const std::string rest = line.substr(i);
        if (rest == "+Inf")
            s.value = HUGE_VAL;
        else if (rest == "-Inf")
            s.value = -HUGE_VAL;
        else if (rest == "NaN")
            s.value = NAN;
        else {
            s.value = std::strtod(rest.c_str(), &endp);
            if (endp == rest.c_str())
                return fail("bad value '" + rest + "'");
        }
        out.push_back(std::move(s));
    }
    return true;
}

double
promHistogramQuantile(std::vector<std::pair<double, double>> le_cum,
                      double p)
{
    if (le_cum.empty())
        return 0.0;
    std::sort(le_cum.begin(), le_cum.end());
    const double total = le_cum.back().second;
    if (total <= 0.0)
        return 0.0;
    p = std::min(1.0, std::max(0.0, p));
    const double target = p * total;
    double prev_edge = 0.0, prev_cum = 0.0;
    for (const auto &b : le_cum) {
        if (b.second >= target - 1e-9) {
            const double in_bucket = b.second - prev_cum;
            if (in_bucket <= 0.0 || std::isinf(b.first))
                return prev_edge;
            const double frac = (target - prev_cum) / in_bucket;
            return prev_edge + frac * (b.first - prev_edge);
        }
        prev_edge = b.first;
        prev_cum = b.second;
    }
    return prev_edge;
}

} // namespace secndp::telemetry
