/**
 * @file
 * Minimal blocking HTTP/1.1 GET for loopback scraping -- just enough
 * for `secndp_report top` and the telemetry tests to fetch /metrics
 * from a MetricsExporter. Not a general HTTP client.
 */

#ifndef SECNDP_TELEMETRY_HTTP_CLIENT_HH
#define SECNDP_TELEMETRY_HTTP_CLIENT_HH

#include <cstdint>
#include <string>

namespace secndp::telemetry {

/**
 * GET http://host:port/path with a connect/read deadline. On success
 * returns true with the status code and the response body (headers
 * stripped). On failure returns false with *err describing why.
 */
bool httpGet(const std::string &host, std::uint16_t port,
             const std::string &path, int &status, std::string &body,
             std::string *err = nullptr, int timeoutMs = 2000);

} // namespace secndp::telemetry

#endif // SECNDP_TELEMETRY_HTTP_CLIENT_HH
