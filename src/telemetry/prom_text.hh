/**
 * @file
 * Prometheus text exposition format (version 0.0.4): metric-name
 * mangling, escaping, family renderers, and a scrape parser.
 *
 * This is the single source of truth for how a `group.stat` path from
 * the stats registry becomes a Prometheus metric name, shared by the
 * live MetricsExporter and the offline `secndp_report summary
 * --format=prom` sidecar conversion -- the same run must expose the
 * same names whether it is scraped mid-flight or converted
 * post-mortem. (Types may differ where the data does: live histograms
 * carry bucket vectors, sidecars only percentiles, so the offline
 * path renders summaries; base names are identical either way.)
 *
 * Counters deliberately keep their bare stat name instead of the
 * conventional `_total` suffix: sidecar JSON cannot distinguish an
 * integral counter from a scalar after parsing, and identical
 * live/offline names outrank suffix convention here.
 */

#ifndef SECNDP_TELEMETRY_PROM_TEXT_HH
#define SECNDP_TELEMETRY_PROM_TEXT_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "telemetry/snapshot.hh"

namespace secndp {

class Histogram;

namespace telemetry {

/**
 * Mangle an arbitrary stat path into a valid Prometheus metric name:
 * `[a-zA-Z_:][a-zA-Z0-9_:]*`. Dots and every other invalid character
 * become '_', a leading digit gets a '_' guard, an empty input
 * becomes "_", and names that would start with the reserved "__"
 * prefix are guarded with "secndp".
 */
std::string promMetricName(const std::string &raw);

/** Fully-qualified metric name for a registry stat:
 *  promMetricName("secndp_<group>.<stat>"). */
std::string promQualify(const std::string &group,
                        const std::string &stat);

/** Escape a label value: backslash, double quote, newline. */
std::string promEscapeLabel(const std::string &v);

/** Escape HELP text: backslash and newline. */
std::string promEscapeHelp(const std::string &v);

/** @name Family renderers (each emits # HELP, # TYPE, samples) */
/// @{
void renderCounter(std::ostream &os, const std::string &name,
                   const std::string &help, double value);
void renderGauge(std::ostream &os, const std::string &name,
                 const std::string &help, double value);
void renderUntyped(std::ostream &os, const std::string &name,
                   const std::string &help, double value);
/** Real bucketed histogram: cumulative `le` series from the log2
 *  bucket vector (+Inf always present), then _sum and _count. */
void renderHistogram(std::ostream &os, const std::string &name,
                     const std::string &help, const Histogram &h);
/** Percentile-only summary (the offline sidecar view): quantile
 *  samples plus _sum and _count. */
void renderSummary(std::ostream &os, const std::string &name,
                   const std::string &help, std::uint64_t count,
                   double sum,
                   const std::vector<std::pair<double, double>>
                       &quantiles);
/// @}

/**
 * Render a whole snapshot: secndp_build_info (meta as labels),
 * secndp_sim_time_ns / secndp_snapshot_seq / secndp_snapshot_complete
 * self-describing gauges, then every counter, gauge, and histogram in
 * sorted name order. Deterministic for a given snapshot.
 */
void renderExposition(std::ostream &os, const TelemetrySnapshot &snap);

/** One parsed sample line. */
struct PromSample
{
    std::string name;
    std::map<std::string, std::string> labels;
    double value = 0.0;
};

/**
 * Parse exposition text into samples (comments and blank lines
 * skipped, optional timestamps ignored). Returns false with *err on
 * the first malformed line.
 */
bool parseExposition(const std::string &text,
                     std::vector<PromSample> &out,
                     std::string *err = nullptr);

/**
 * Approximate p-quantile from parsed cumulative histogram buckets:
 * (le upper edge, cumulative count) pairs, any order, +Inf included.
 * Linear interpolation inside the hit bucket. Empty -> 0.
 */
double promHistogramQuantile(
    std::vector<std::pair<double, double>> le_cum, double p);

} // namespace telemetry
} // namespace secndp

#endif // SECNDP_TELEMETRY_PROM_TEXT_HH
