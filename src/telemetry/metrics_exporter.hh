/**
 * @file
 * Prometheus scrape endpoint: a background thread serving
 *
 *   GET /metrics  -- text exposition of the latest published snapshot
 *   GET /healthz  -- 200 while the exporter thread is running
 *   GET /readyz   -- 200/503 following setReady() (flips to 503 when
 *                    the serving loop enters drain, so a scraper /
 *                    load balancer can see the run winding down)
 *
 * Design: single exporter thread, non-blocking sockets, one
 * level-triggered epoll loop (Linux only -- start() reports failure
 * elsewhere and the caller runs without live telemetry). The serving
 * loop stays the sole writer of the hot stats; it hands completed
 * TelemetrySnapshots over via an atomic shared_ptr swap in publish(),
 * and scrapes render whichever snapshot is current. Nothing in the
 * request path ever blocks the serve thread, and with the exporter
 * disabled no code here runs at all -- sidecars are byte-identical
 * either way.
 *
 * The listener binds 127.0.0.1 by default and answers one request per
 * connection (Connection: close); per-connection read buffers are
 * bounded. This is a metrics endpoint, not a general web server.
 */

#ifndef SECNDP_TELEMETRY_METRICS_EXPORTER_HH
#define SECNDP_TELEMETRY_METRICS_EXPORTER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "net/socket_util.hh"
#include "telemetry/snapshot.hh"

namespace secndp::telemetry {

class MetricsExporter
{
  public:
    struct Config
    {
        /** TCP port; 0 picks an ephemeral port (read back via
         *  port()). */
        std::uint16_t port = 0;
        std::string bindAddr = "127.0.0.1";
        /** Concurrent connection cap; excess accepts are closed. */
        int maxConnections = 32;
    };

    MetricsExporter() = default;
    ~MetricsExporter();

    MetricsExporter(const MetricsExporter &) = delete;
    MetricsExporter &operator=(const MetricsExporter &) = delete;

    /**
     * Bind, listen, and launch the exporter thread. Returns false
     * with `err` set on unsupported platforms or bind failure (port
     * in use); the caller degrades to no live telemetry.
     */
    bool start(const Config &cfg, std::string *err = nullptr);

    /** Stop the thread and close every socket. Idempotent. */
    void stop();

    bool running() const { return running_.load(); }

    /** Bound port (resolves ephemeral binds); 0 when not running. */
    std::uint16_t port() const { return port_; }

    /** Swap in a new snapshot for subsequent scrapes. Cheap;
     *  callable from any thread (in practice: the serve loop). */
    void publish(std::shared_ptr<const TelemetrySnapshot> snap);

    /** Latest published snapshot (may be null before first publish). */
    std::shared_ptr<const TelemetrySnapshot> latest() const;

    /** Drive /readyz: true -> 200, false -> 503. Starts false. */
    void setReady(bool ready) { ready_.store(ready); }
    bool ready() const { return ready_.load(); }

    /** Number of /metrics requests served (exporter-side only --
     *  deliberately never folded into sidecar stats, which must not
     *  depend on scraper behavior). */
    std::uint64_t scrapes() const { return scrapes_.load(); }

  private:
    void serveLoop();

    Config cfg_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopRequested_{false};
    std::atomic<bool> ready_{false};
    std::atomic<std::uint64_t> scrapes_{0};
    std::uint16_t port_ = 0;
    int listenFd_ = -1;
    net::WakePipe wake_;
    std::thread thread_;

    mutable std::mutex snapMutex_;
    std::shared_ptr<const TelemetrySnapshot> snap_;
};

} // namespace secndp::telemetry

#endif // SECNDP_TELEMETRY_METRICS_EXPORTER_HH
