/**
 * @file
 * Point-in-time consistent telemetry snapshots.
 *
 * A TelemetrySnapshot is an immutable value the serving loop captures
 * at a batch boundary and hands to the MetricsExporter thread through
 * a shared_ptr swap -- the exporter renders whatever snapshot was
 * current when a scrape arrives and never touches a live StatGroup.
 * Consistency comes from WHO captures, not from locks on the stats:
 * the single writer of the hot groups (the serve loop) builds the
 * snapshot from StatRegistry::snapshotOwned() (its own live groups
 * plus the registry's retired aggregate), the worker pool's locked
 * copy (serve/worker_pool.hh), the Sampler's latest gauge values, and
 * any derived gauges it computes itself (queue depth, burn rates).
 *
 * Histograms are carried as full secndp::Histogram copies, so the
 * exporter can emit real Prometheus bucket vectors (cumulative `le`
 * series), not just precomputed percentiles.
 */

#ifndef SECNDP_TELEMETRY_SNAPSHOT_HH
#define SECNDP_TELEMETRY_SNAPSHOT_HH

#include <cstdint>
#include <map>
#include <string>

#include "common/stats.hh"

namespace secndp::telemetry {

struct TelemetrySnapshot
{
    /** Publish sequence number (monotonic per run). */
    std::uint64_t seq = 0;
    /** Virtual clock at capture (ns on the serving timeline). */
    double simNowNs = 0.0;
    /** Capture taken after the final drain (counters are totals). */
    bool complete = false;

    /** `group.stat` keyed, mirroring the sidecar flattening. */
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, Histogram> histograms;
    std::map<std::string, std::string> meta;

    /** Fold one group's stats in (counters/scalars add, histograms
     *  union; distributions surface as count/mean/min/max gauges). */
    void fold(const StatGroup &g);

    /** Fold a whole snapshot map (e.g. snapshotOwned()). */
    void fold(const std::map<std::string, StatGroup> &groups);
};

/**
 * Build the standard snapshot: registry meta + snapshotOwned() folded
 * in. Callers layer component-specific locked copies and derived
 * gauges on top before publishing.
 */
TelemetrySnapshot captureOwnedSnapshot();

} // namespace secndp::telemetry

#endif // SECNDP_TELEMETRY_SNAPSHOT_HH
