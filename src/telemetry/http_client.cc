#include "telemetry/http_client.hh"

#include <cstdlib>
#include <cstring>

#ifdef __linux__
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace secndp::telemetry {

#ifdef __linux__

bool
httpGet(const std::string &host, std::uint16_t port,
        const std::string &path, int &status, std::string &body,
        std::string *err, int timeoutMs)
{
    auto fail = [&](const std::string &what) {
        if (err)
            *err = what;
        return false;
    };

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return fail(std::string("socket: ") + std::strerror(errno));

    timeval tv{};
    tv.tv_sec = timeoutMs / 1000;
    tv.tv_usec = (timeoutMs % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        return fail("bad host address: " + host);
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const std::string why = std::strerror(errno);
        ::close(fd);
        return fail("connect " + host + ":" + std::to_string(port) +
                    ": " + why);
    }

    const std::string req = "GET " + path +
                            " HTTP/1.1\r\nHost: " + host +
                            "\r\nConnection: close\r\n\r\n";
    std::size_t sent = 0;
    while (sent < req.size()) {
        // MSG_NOSIGNAL: a server that resets mid-request must surface
        // as EPIPE here, not kill the process with SIGPIPE.
        const ssize_t w = ::send(fd, req.data() + sent,
                                 req.size() - sent, MSG_NOSIGNAL);
        if (w < 0 && errno == EINTR)
            continue;
        if (w <= 0) {
            ::close(fd);
            return fail(std::string("send: ") + std::strerror(errno));
        }
        sent += static_cast<std::size_t>(w);
    }

    std::string raw;
    char buf[4096];
    for (;;) {
        const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
        if (r > 0) {
            raw.append(buf, static_cast<std::size_t>(r));
        } else if (r == 0) {
            break;
        } else if (errno == EINTR) {
            continue;
        } else {
            ::close(fd);
            return fail(std::string("recv: ") + std::strerror(errno));
        }
    }
    ::close(fd);

    // "HTTP/1.1 200 OK\r\n...headers...\r\n\r\nbody"
    if (raw.rfind("HTTP/", 0) != 0)
        return fail("malformed response (no status line)");
    const std::size_t sp = raw.find(' ');
    if (sp == std::string::npos)
        return fail("malformed status line");
    status = std::atoi(raw.c_str() + sp + 1);
    std::size_t hdrEnd = raw.find("\r\n\r\n");
    std::size_t bodyOff;
    if (hdrEnd != std::string::npos) {
        bodyOff = hdrEnd + 4;
    } else {
        hdrEnd = raw.find("\n\n");
        if (hdrEnd == std::string::npos)
            return fail("no header terminator");
        bodyOff = hdrEnd + 2;
    }
    body = raw.substr(bodyOff);
    return true;
}

#else // !__linux__

bool
httpGet(const std::string &, std::uint16_t, const std::string &,
        int &, std::string &, std::string *err, int)
{
    if (err)
        *err = "httpGet requires Linux sockets";
    return false;
}

#endif // __linux__

} // namespace secndp::telemetry
