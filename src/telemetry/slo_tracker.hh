/**
 * @file
 * Multi-window SLO error-budget burn-rate tracking.
 *
 * Two objectives over the simulated serving timeline:
 *
 *  - latency: fraction of requests finishing within targetLatencyNs
 *    must be >= objective (e.g. 99.9% under 1 ms);
 *  - availability: fraction of arrivals that complete (neither shed
 *    nor aborted) must be >= availabilityObjective.
 *
 * For each objective the tracker reports the error-budget burn rate --
 * observed error rate divided by the budget (1 - objective) -- over a
 * FAST and a SLOW sliding window (slow = 12x fast by default, the
 * classic multi-window multi-burn-rate alerting shape: the fast
 * window catches a new fire quickly, the slow window keeps a brief
 * spike from paging). Burn rate 1.0 means "exactly consuming budget";
 * a fast-window burn above `alertBurn` with the slow window also
 * elevated is the page-worthy condition surfaced by `secndp_report
 * top` and the `telemetry.slo.*` sidecar stats.
 *
 * Windows are rings of coarse time buckets over the *simulated* clock
 * (nanoseconds on the serving timeline), so results are deterministic
 * for a given seed and independent of host wall time. Single-writer:
 * only the serve thread calls the record/advance methods; readers get
 * values via the gauges it publishes into each TelemetrySnapshot.
 */

#ifndef SECNDP_TELEMETRY_SLO_TRACKER_HH
#define SECNDP_TELEMETRY_SLO_TRACKER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace secndp {

class StatGroup;

namespace telemetry {

struct SloConfig
{
    /** Latency objective: targetLatencyNs at `objective` quantile. */
    double targetLatencyNs = 1e6;
    double objective = 0.999;
    /** Availability objective (completions / arrivals). */
    double availabilityObjective = 0.999;
    /** Fast window length on the simulated clock. */
    double fastWindowNs = 5e6;
    /** Slow window; <= 0 means 12x the fast window. */
    double slowWindowNs = 0.0;
    /** Fast-window burn rate that flips the `alerting` flag. */
    double alertBurn = 14.4;

    double effectiveSlowWindowNs() const
    {
        return slowWindowNs > 0.0 ? slowWindowNs
                                  : 12.0 * fastWindowNs;
    }
};

/** Burn-rate readout for one objective. */
struct Burn
{
    double fast = 0.0;
    double slow = 0.0;
    /** Events inside the fast window (denominator). */
    std::uint64_t fastTotal = 0;
    std::uint64_t slowTotal = 0;
};

class SloTracker
{
  public:
    explicit SloTracker(const SloConfig &cfg);

    /** A request completed at simulated time `nowNs` with end-to-end
     *  latency `latencyNs`. Feeds both objectives. */
    void recordLatency(double nowNs, double latencyNs);
    /** An arrival was shed (availability error). */
    void recordShed(double nowNs);
    /** A request aborted after admission (availability error). */
    void recordAbort(double nowNs);

    /** Slide the windows forward without recording anything. */
    void advanceTo(double nowNs);

    Burn latencyBurn() const;
    Burn availabilityBurn() const;

    /** Fast latency burn above the configured alert threshold? */
    bool alerting() const;

    /**
     * Whole-run gate for `--slo-gate`: did the cumulative (not
     * windowed) error rate of either objective exceed its budget?
     */
    bool gateFailed() const;

    /** Cumulative whole-run totals (gate inputs). */
    std::uint64_t totalRequests() const { return cumTotal_; }
    std::uint64_t totalLatencyViolations() const { return cumSlow_; }
    std::uint64_t totalAvailabilityErrors() const { return cumErr_; }

    /** Burn-rate and objective gauges, `telemetry.slo.*` keyed --
     *  the exact names the sidecar group and live scrape share. */
    std::map<std::string, double> gauges() const;

    /**
     * Write the end-of-run `telemetry` StatGroup stats: objectives as
     * scalars, cumulative totals as counters, final burn gauges.
     */
    void publish(StatGroup &g) const;

    const SloConfig &config() const { return cfg_; }

  private:
    /** Ring of time buckets; covers `windowNs` ending at the write
     *  head. Good (in-SLO) and bad (out-of-SLO) event counts. */
    struct Ring
    {
        double bucketNs = 0.0;
        std::vector<std::uint64_t> good;
        std::vector<std::uint64_t> bad;
        /** Absolute index of the bucket the head points at. */
        std::int64_t headBucket = 0;
        bool started = false;

        void init(double windowNs, std::size_t buckets);
        void advanceTo(double nowNs);
        void add(double nowNs, bool isBad);
        std::uint64_t total() const;
        std::uint64_t badTotal() const;
    };

    static Burn burnOf(const Ring &fast, const Ring &slow,
                       double budget);

    SloConfig cfg_;
    Ring latFast_, latSlow_;
    Ring availFast_, availSlow_;

    std::uint64_t cumTotal_ = 0;  ///< completed requests
    std::uint64_t cumSlow_ = 0;   ///< over-target completions
    std::uint64_t cumArrivals_ = 0;
    std::uint64_t cumErr_ = 0;    ///< shed + aborted
    std::uint64_t cumShed_ = 0;
    std::uint64_t cumAbort_ = 0;
};

} // namespace telemetry
} // namespace secndp

#endif // SECNDP_TELEMETRY_SLO_TRACKER_HH
