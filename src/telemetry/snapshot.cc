#include "telemetry/snapshot.hh"

namespace secndp::telemetry {

void
TelemetrySnapshot::fold(const StatGroup &g)
{
    const std::string prefix = g.name() + ".";
    for (const auto &kv : g.counters())
        counters[prefix + kv.first] += kv.second;
    for (const auto &kv : g.scalars())
        gauges[prefix + kv.first] += kv.second;
    for (const auto &kv : g.distributions()) {
        const std::string base = prefix + kv.first;
        gauges[base + ".count"] +=
            static_cast<double>(kv.second.count());
        // Last fold wins for the non-additive fields; same-named
        // distributions across folded groups are already merged by
        // the registry, so this only matters for disjoint names.
        gauges[base + ".mean"] = kv.second.mean();
        gauges[base + ".min"] = kv.second.minValue();
        gauges[base + ".max"] = kv.second.maxValue();
    }
    for (const auto &kv : g.histograms())
        histograms[prefix + kv.first].mergeFrom(kv.second);
}

void
TelemetrySnapshot::fold(const std::map<std::string, StatGroup> &groups)
{
    for (const auto &kv : groups)
        fold(kv.second);
}

TelemetrySnapshot
captureOwnedSnapshot()
{
    TelemetrySnapshot snap;
    auto &reg = StatRegistry::instance();
    snap.meta = reg.metaSnapshot();
    snap.fold(reg.snapshotOwned());
    return snap;
}

} // namespace secndp::telemetry
