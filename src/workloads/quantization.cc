#include "workloads/quantization.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace secndp {

std::size_t
QuantizedTable::groupIndex(std::size_t i, std::size_t j) const
{
    switch (scheme) {
      case QuantScheme::RowWise: return i;
      case QuantScheme::ColumnWise: return j;
      case QuantScheme::TableWise: return 0;
      case QuantScheme::None: break;
    }
    panic("no quantization groups for fp32");
}

float
QuantizedTable::dequant(std::size_t i, std::size_t j) const
{
    const std::size_t g = groupIndex(i, j);
    return q(i, j) * scales[g] + biases[g];
}

QuantizedTable
quantizeTable(const std::vector<float> &values, std::size_t rows,
              std::size_t cols, QuantScheme scheme)
{
    SECNDP_ASSERT(values.size() == rows * cols, "size mismatch");
    SECNDP_ASSERT(scheme != QuantScheme::None,
                  "cannot quantize to fp32");
    QuantizedTable out;
    out.scheme = scheme;
    out.rows = rows;
    out.cols = cols;
    out.data.resize(rows * cols);

    const std::size_t groups = scheme == QuantScheme::RowWise ? rows
                               : scheme == QuantScheme::ColumnWise
                                   ? cols
                                   : 1;
    std::vector<float> mins(groups,
                            std::numeric_limits<float>::infinity());
    std::vector<float> maxs(groups,
                            -std::numeric_limits<float>::infinity());
    for (std::size_t i = 0; i < rows; ++i) {
        for (std::size_t j = 0; j < cols; ++j) {
            const std::size_t g = scheme == QuantScheme::RowWise ? i
                                  : scheme == QuantScheme::ColumnWise
                                      ? j
                                      : 0;
            const float v = values[i * cols + j];
            mins[g] = std::min(mins[g], v);
            maxs[g] = std::max(maxs[g], v);
        }
    }

    out.scales.resize(groups);
    out.biases.resize(groups);
    for (std::size_t g = 0; g < groups; ++g) {
        const float span = maxs[g] - mins[g];
        out.scales[g] = span > 0 ? span / 255.0f : 1.0f;
        out.biases[g] = mins[g];
    }

    for (std::size_t i = 0; i < rows; ++i) {
        for (std::size_t j = 0; j < cols; ++j) {
            const std::size_t g = out.groupIndex(i, j);
            const float v = values[i * cols + j];
            const float q =
                std::nearbyint((v - out.biases[g]) / out.scales[g]);
            out.data[i * cols + j] = static_cast<std::uint8_t>(
                std::clamp(q, 0.0f, 255.0f));
        }
    }
    return out;
}

double
maxAbsError(const std::vector<float> &values, const QuantizedTable &t)
{
    double worst = 0.0;
    for (std::size_t i = 0; i < t.rows; ++i)
        for (std::size_t j = 0; j < t.cols; ++j)
            worst = std::max(worst,
                             std::abs(static_cast<double>(
                                 values[i * t.cols + j] -
                                 t.dequant(i, j))));
    return worst;
}

double
meanSquaredError(const std::vector<float> &values,
                 const QuantizedTable &t)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < t.rows; ++i) {
        for (std::size_t j = 0; j < t.cols; ++j) {
            const double e =
                values[i * t.cols + j] - t.dequant(i, j);
            acc += e * e;
        }
    }
    return acc / (t.rows * t.cols);
}

} // namespace secndp
