#include "workloads/ctr_model.hh"

#include <cmath>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"

namespace secndp {

namespace {

double
sigmoid(double z)
{
    return 1.0 / (1.0 + std::exp(-z));
}

/** Clamp probabilities away from 0/1 for a finite LogLoss. */
double
clampP(double p)
{
    return std::min(1.0 - 1e-12, std::max(1e-12, p));
}

} // namespace

const char *
numericFormatName(NumericFormat fmt)
{
    switch (fmt) {
      case NumericFormat::Fp32: return "32-bit floating point";
      case NumericFormat::Fixed32: return "32-bit fixed point";
      case NumericFormat::Int8TableWise:
        return "table-wise quantization (8-bit)";
      case NumericFormat::Int8ColumnWise:
        return "column-wise quantization (8-bit)";
    }
    return "?";
}

double
evalCtrLogLoss(const CtrModelConfig &cfg, NumericFormat fmt)
{
    Rng rng(cfg.seed);
    const std::size_t rows = cfg.rowsPerTable;
    const std::size_t dim = cfg.dim;

    // Heterogeneous per-column variances: early columns are "dense
    // counters" with small spread, late columns wide -- a table-wide
    // min/max then over-quantizes the narrow columns.
    std::vector<double> col_sigma(dim);
    for (std::size_t j = 0; j < dim; ++j)
        col_sigma[j] = 0.01 + 0.25 * static_cast<double>(j) / dim;

    // One shared table prototype per experiment keeps memory modest:
    // tables differ only by RNG stream position.
    std::vector<std::vector<float>> tables(cfg.numTables);
    for (auto &t : tables) {
        t.resize(rows * dim);
        for (std::size_t i = 0; i < rows; ++i) {
            for (std::size_t j = 0; j < dim; ++j) {
                double v = rng.nextGaussian() * col_sigma[j];
                // Rare heavy-tailed outliers in the last column.
                if (j == dim - 1 && rng.nextBounded(64) == 0) {
                    v += (rng.nextBounded(2) ? 1.0 : -1.0) *
                         cfg.outlierMagnitude;
                }
                t[i * dim + j] = static_cast<float>(v);
            }
        }
    }

    // Quantized views when needed.
    std::vector<QuantizedTable> quant;
    if (fmt == NumericFormat::Int8TableWise ||
        fmt == NumericFormat::Int8ColumnWise) {
        const QuantScheme scheme = fmt == NumericFormat::Int8TableWise
                                       ? QuantScheme::TableWise
                                       : QuantScheme::ColumnWise;
        quant.reserve(tables.size());
        for (const auto &t : tables)
            quant.push_back(quantizeTable(t, rows, dim, scheme));
    }

    // Scoring head: one weight per (table, dim) feature.
    std::vector<double> head(cfg.numTables * dim);
    for (auto &w : head)
        w = rng.nextGaussian();

    // Pre-scale so logits have roughly cfg.logitScale std: each
    // pooled feature is a sum of pf ~ N(0, sigma_j^2) draws.
    double feat_var = 0.0;
    for (std::size_t j = 0; j < dim; ++j)
        feat_var += cfg.pf * col_sigma[j] * col_sigma[j];
    feat_var *= cfg.numTables;
    const double head_scale =
        cfg.logitScale / std::sqrt(feat_var);

    double loss = 0.0;
    std::vector<double> pooled_true(dim), pooled_eval(dim);
    for (unsigned s = 0; s < cfg.numSamples; ++s) {
        double z_true = 0.0, z_eval = 0.0;
        for (unsigned t = 0; t < cfg.numTables; ++t) {
            std::fill(pooled_true.begin(), pooled_true.end(), 0.0);
            std::fill(pooled_eval.begin(), pooled_eval.end(), 0.0);
            for (unsigned k = 0; k < cfg.pf; ++k) {
                const std::uint64_t row = rng.nextBounded(rows);
                for (std::size_t j = 0; j < dim; ++j) {
                    const float v = tables[t][row * dim + j];
                    pooled_true[j] += v;
                    switch (fmt) {
                      case NumericFormat::Fp32:
                        pooled_eval[j] += v;
                        break;
                      case NumericFormat::Fixed32:
                        pooled_eval[j] +=
                            fromFixed(toFixed(v, cfg.fixedFmt),
                                      cfg.fixedFmt);
                        break;
                      default:
                        pooled_eval[j] += quant[t].dequant(row, j);
                        break;
                    }
                }
            }
            for (std::size_t j = 0; j < dim; ++j) {
                const double w = head[t * dim + j] * head_scale;
                z_true += w * pooled_true[j];
                z_eval += w * pooled_eval[j];
            }
        }
        // Label drawn from the TRUE fp32 model (well calibrated).
        const double p_true = sigmoid(z_true);
        const int y = rng.nextDouble() < p_true ? 1 : 0;
        const double p = clampP(sigmoid(z_eval));
        loss += y ? -std::log(p) : -std::log(1.0 - p);
    }
    return loss / cfg.numSamples;
}

} // namespace secndp
