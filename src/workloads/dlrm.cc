#include "workloads/dlrm.hh"

#include <unordered_set>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace secndp {

namespace {

/** Bytes of tag stored per row in memory-resident layouts. */
constexpr unsigned kTagBytes = 16;

/** MACs of one 2-layer MLP stack given its widths. */
constexpr std::uint64_t
mlpMacs(unsigned a, unsigned b, unsigned c)
{
    return std::uint64_t{a} * b + std::uint64_t{b} * c;
}

DlrmModelConfig
makeConfig(const char *name, unsigned tables, std::uint64_t bytes,
           unsigned top_hidden)
{
    DlrmModelConfig cfg;
    cfg.name = name;
    cfg.numTables = tables;
    cfg.totalEmbBytes = bytes;
    cfg.rowElems = 32;
    // bottom FC 256-128-32 + top FC 256-<hidden>-1 (Table I).
    cfg.fcMacsPerSample =
        mlpMacs(256, 128, 32) + mlpMacs(256, top_hidden, 1);
    return cfg;
}

} // namespace

const char *
quantSchemeName(QuantScheme q)
{
    switch (q) {
      case QuantScheme::None: return "fp32";
      case QuantScheme::RowWise: return "int8-row";
      case QuantScheme::ColumnWise: return "int8-col";
      case QuantScheme::TableWise: return "int8-table";
    }
    return "?";
}

const char *
verLayoutName(VerLayout layout)
{
    switch (layout) {
      case VerLayout::None: return "enc-only";
      case VerLayout::Coloc: return "ver-coloc";
      case VerLayout::Sep: return "ver-sep";
      case VerLayout::Ecc: return "ver-ecc";
    }
    return "?";
}

DlrmModelConfig
rmc1Small()
{
    return makeConfig("RMC1-small", 8, 1ULL << 30, 64);
}

DlrmModelConfig
rmc1Large()
{
    return makeConfig("RMC1-large", 12, 3ULL << 29, 64); // 1.5 GB
}

DlrmModelConfig
rmc2Small()
{
    return makeConfig("RMC2-small", 24, 3ULL << 30, 128);
}

DlrmModelConfig
rmc2Large()
{
    return makeConfig("RMC2-large", 64, 8ULL << 30, 128);
}

unsigned
slsRowBytes(const DlrmModelConfig &model, QuantScheme quant)
{
    switch (quant) {
      case QuantScheme::None:
        return model.rowElems * 4;
      case QuantScheme::RowWise:
        // int8 elements + fp32 scale and bias stored with the row
        // ("2 cache lines into about 0.5 cache line per vector").
        return model.rowElems + 8;
      case QuantScheme::ColumnWise:
      case QuantScheme::TableWise:
        // int8 elements; scale/bias cached in the processor.
        return model.rowElems;
    }
    return model.rowElems * 4;
}

bool
verEccFits(unsigned data_bytes)
{
    // x8 ECC DIMM budget: 1 ECC byte per 8 data bytes.
    return data_bytes / 8 >= kTagBytes;
}

WorkloadTrace
buildSlsTrace(const DlrmModelConfig &model, const SlsTraceConfig &cfg)
{
    Rng rng(cfg.seed);
    const unsigned data_bytes = slsRowBytes(model, cfg.quant);
    const bool verifying = cfg.layout != VerLayout::None;
    const unsigned stride = cfg.layout == VerLayout::Coloc
                                ? data_bytes + kTagBytes
                                : data_bytes;
    const std::uint64_t rows_per_table = model.rowsPerTable(data_bytes);
    SECNDP_ASSERT(rows_per_table > 0, "empty embedding table");

    // Virtual layout: tables back to back (4 KB aligned); the Ver-sep
    // tag region follows all tables.
    const std::uint64_t table_span =
        roundUp(rows_per_table * stride, 4096);
    const std::uint64_t tag_region_base = table_span * model.numTables;

    const unsigned elem_bytes = cfg.quant == QuantScheme::None ? 4 : 1;
    const unsigned result_bytes =
        model.rowElems * 4 + (verifying ? kTagBytes : 0);

    WorkloadTrace trace;
    trace.queries.reserve(std::size_t{cfg.batch} * model.numTables);

    for (unsigned sample = 0; sample < cfg.batch; ++sample) {
        for (unsigned table = 0; table < model.numTables; ++table) {
            const unsigned pf =
                cfg.productionPf
                    ? 50 + static_cast<unsigned>(rng.nextBounded(51))
                    : cfg.pf;
            TraceQuery query;
            query.ranges.reserve(pf * (cfg.layout == VerLayout::Sep
                                           ? 2 : 1));
            const std::uint64_t table_base = table * table_span;
            for (unsigned k = 0; k < pf; ++k) {
                const std::uint64_t row =
                    rng.nextZipf(rows_per_table, cfg.zipfAlpha);
                const std::uint64_t row_vaddr =
                    table_base + row * stride;
                // Ver-coloc fetches row+tag as one contiguous range.
                const std::uint32_t fetch_bytes =
                    cfg.layout == VerLayout::Coloc
                        ? data_bytes + kTagBytes
                        : data_bytes;
                query.ranges.push_back({row_vaddr, fetch_bytes});
                if (cfg.layout == VerLayout::Sep) {
                    const std::uint64_t tag_vaddr =
                        tag_region_base +
                        (std::uint64_t{table} * rows_per_table + row) *
                            kTagBytes;
                    query.ranges.push_back({tag_vaddr, kTagBytes});
                }
            }

            // On-chip engine work (section V-C/V-E).
            EngineWork &w = query.engineWork;
            w.dataOtpBlocks = std::uint64_t{pf} *
                              divCeil(data_bytes, 16);
            if (verifying) {
                // One tag pad per touched row plus the checksum
                // secret s; Ver-coloc/Sep also decrypt the fetched
                // tags with the same pads (already counted).
                w.tagOtpBlocks = pf + 1;
            }
            w.otpPuOps = std::uint64_t{pf} * model.rowElems;
            if (verifying)
                w.verifyOps = model.rowElems + pf;
            query.resultBytes = result_bytes;
            (void)elem_bytes;
            trace.queries.push_back(std::move(query));
        }
    }
    return trace;
}

std::uint64_t
uniquePagesTouched(const WorkloadTrace &trace)
{
    std::unordered_set<std::uint64_t> pages;
    for (const auto &q : trace.queries) {
        for (const auto &r : q.ranges) {
            const std::uint64_t first = r.vaddr / 4096;
            const std::uint64_t last = (r.vaddr + r.bytes - 1) / 4096;
            for (std::uint64_t p = first; p <= last; ++p)
                pages.insert(p);
        }
    }
    return pages.size();
}

double
fcComputeNs(const DlrmModelConfig &model, unsigned batch, double gmacs)
{
    return model.fcMacsPerSample * batch / gmacs;
}

} // namespace secndp
