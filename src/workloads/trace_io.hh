/**
 * @file
 * Workload-trace serialization.
 *
 * The paper evaluates both synthetic and production query traces; this
 * module gives the repo a stable on-disk trace format so externally
 * captured traces (e.g. real embedding-lookup logs) can drive the
 * simulator, and generated traces can be archived for exact reruns.
 *
 * Format (line-oriented text, '#' comments):
 *   secndp-trace v1
 *   # queries: <n>             (optional; see below)
 *   q <result_bytes> <data_otp_blocks> <tag_otp_blocks> \
 *     <otp_pu_ops> <verify_ops>
 *   r <vaddr> <bytes>          (one per access range, after its 'q')
 *
 * writeTrace() always emits the "# queries: <n>" comment and
 * readTrace() checks it when present, so a truncated or half-copied
 * file fails loudly instead of silently driving the simulator with a
 * shortened trace. Hand-written traces may omit it. Records with
 * trailing tokens, stream I/O errors mid-read, and count mismatches
 * are all fatal().
 */

#ifndef SECNDP_WORKLOADS_TRACE_IO_HH
#define SECNDP_WORKLOADS_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "arch/system.hh"

namespace secndp {

/** Serialize a trace to a stream. */
void writeTrace(std::ostream &os, const WorkloadTrace &trace);

/** Parse a trace; fatal()s on malformed input (user error). */
WorkloadTrace readTrace(std::istream &is);

/** File convenience wrappers. */
void saveTraceFile(const std::string &path, const WorkloadTrace &trace);
WorkloadTrace loadTraceFile(const std::string &path);

} // namespace secndp

#endif // SECNDP_WORKLOADS_TRACE_IO_HH
