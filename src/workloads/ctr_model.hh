/**
 * @file
 * Synthetic production-scale click-through-rate model for the
 * arithmetic-precision study (paper Table IV).
 *
 * SUBSTITUTION (see DESIGN.md): the paper evaluates LogLoss of a
 * proprietary recommendation model on a production dataset. We build
 * a calibrated generative substitute -- embedding tables pooled per
 * sample, a linear scoring head, labels drawn from the model's own
 * probability -- so the fp32 LogLoss sits near the paper's 0.64 and
 * the quantization deltas depend only on how number-format error
 * propagates through SLS pooling, which is the property under study.
 * Columns are given heterogeneous variances so column-wise
 * quantization genuinely beats table-wise, as in the paper.
 */

#ifndef SECNDP_WORKLOADS_CTR_MODEL_HH
#define SECNDP_WORKLOADS_CTR_MODEL_HH

#include <cstdint>

#include "common/fixed_point.hh"
#include "workloads/quantization.hh"

namespace secndp {

/** Numeric formats compared in Table IV. */
enum class NumericFormat
{
    Fp32,
    Fixed32,        ///< 32-bit fixed point (the SecNDP ring format)
    Int8TableWise,
    Int8ColumnWise,
};

const char *numericFormatName(NumericFormat fmt);

/** Synthetic CTR model + dataset configuration. */
struct CtrModelConfig
{
    unsigned numTables = 16;
    std::uint64_t rowsPerTable = 2000;
    unsigned dim = 32;          ///< embedding dimension m
    unsigned pf = 20;           ///< pooled rows per table per sample
    unsigned numSamples = 40000; ///< paper: 40K evaluation samples
    double logitScale = 0.50;   ///< calibrated: base LogLoss ~0.64
    /**
     * Magnitude of rare outlier values injected into the last
     * column (about one per 64 rows). Production tables have such
     * outliers -- they are why a single table-wide min/max range
     * over-quantizes everything else, the effect Table IV measures.
     */
    double outlierMagnitude = 4.0;
    FixedPointFormat fixedFmt{32, 16};
    std::uint64_t seed = 20220402; // HPCA'22 vintage
};

/** LogLoss of the model evaluated under one numeric format. */
double evalCtrLogLoss(const CtrModelConfig &cfg, NumericFormat fmt);

} // namespace secndp

#endif // SECNDP_WORKLOADS_CTR_MODEL_HH
