/**
 * @file
 * Deep-learning recommendation (DLRM) workload generation
 * (paper section VI-A, Table I, Figure 6).
 *
 * The NDP-offloaded kernel is the embedding-table lookup
 * (SparseLengthsWeightedSum): a query gathers PF rows of one table
 * and pools them with weights. We generate traces at the address
 * level for the performance simulator (the scheme's *functional*
 * behaviour is exercised separately on real matrices in tests and
 * examples), supporting:
 *
 *  - the four model configurations of Table I,
 *  - fp32 rows and 8-bit row-/column-/table-wise quantized rows,
 *  - the three verification-tag layouts of section V-D,
 *  - uniform PF or production-like PF ~ U[50, 100], and Zipf-skewed
 *    row popularity.
 */

#ifndef SECNDP_WORKLOADS_DLRM_HH
#define SECNDP_WORKLOADS_DLRM_HH

#include <cstdint>
#include <string>

#include "arch/system.hh"
#include "common/rng.hh"

namespace secndp {

/** Quantization schemes for embedding rows (section VI-A). */
enum class QuantScheme
{
    None,       ///< fp32 (4 B/element)
    RowWise,    ///< int8 + per-row scale/bias stored with the row
    ColumnWise, ///< int8 + per-column scale/bias (cached on-chip)
    TableWise,  ///< int8 + per-table scale/bias (cached on-chip)
};

const char *quantSchemeName(QuantScheme q);

/** Verification-tag storage layouts (section V-D). */
enum class VerLayout
{
    None,   ///< encryption only
    Coloc,  ///< 16 B tag appended to each row (rows mis-align lines)
    Sep,    ///< tags in a separate physical region
    Ecc,    ///< tags ride in the ECC chip: no extra access
};

const char *verLayoutName(VerLayout layout);

/** One DLRM configuration (Table I). */
struct DlrmModelConfig
{
    std::string name;
    unsigned numTables = 8;
    std::uint64_t totalEmbBytes = 1ULL << 30;
    unsigned rowElems = 32; ///< m
    /** MACs per sample in the bottom + top MLPs. */
    std::uint64_t fcMacsPerSample = 0;

    std::uint64_t
    rowsPerTable(unsigned row_bytes) const
    {
        return totalEmbBytes / numTables / row_bytes;
    }
};

/** @name Table I presets */
/// @{
DlrmModelConfig rmc1Small();
DlrmModelConfig rmc1Large();
DlrmModelConfig rmc2Small();
DlrmModelConfig rmc2Large();
/// @}

/** SLS trace-generation parameters. */
struct SlsTraceConfig
{
    unsigned batch = 256;
    unsigned pf = 80;
    /** Draw PF per query from U[50, 100] (production-like). */
    bool productionPf = false;
    /** Zipf exponent of row popularity (0 = uniform). */
    double zipfAlpha = 0.0;
    QuantScheme quant = QuantScheme::None;
    VerLayout layout = VerLayout::None;
    std::uint64_t seed = Rng::defaultSeed;
};

/** Per-row byte cost of a scheme (data only, without tag). */
unsigned slsRowBytes(const DlrmModelConfig &model, QuantScheme quant);

/**
 * Can Ver-ECC hold a 16 B tag for a row of `data_bytes`? The ECC
 * chip carries 1 ECC byte per 8 data bytes (x8 ECC DIMM), so a row
 * must span at least 128 B of data for its tag to ride along --
 * which is why the paper's quantized (32 B) rows cannot use Ver-ECC
 * ("the corresponding tags cannot fit in the ECC chip").
 */
bool verEccFits(unsigned data_bytes);

/**
 * Build the SLS trace: one TraceQuery per (sample, table) lookup,
 * with access ranges laid out per the quantization scheme and tag
 * layout, and the SecNDP engine work attached.
 */
WorkloadTrace buildSlsTrace(const DlrmModelConfig &model,
                            const SlsTraceConfig &cfg);

/** Distinct 4 KB pages a trace touches (for the SGX paging model). */
std::uint64_t uniquePagesTouched(const WorkloadTrace &trace);

/** Unprotected CPU time of the MLP portion, ns (roofline model). */
double fcComputeNs(const DlrmModelConfig &model, unsigned batch,
                   double gmacs = 20.0);

} // namespace secndp

#endif // SECNDP_WORKLOADS_DLRM_HH
