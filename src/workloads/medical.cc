#include "workloads/medical.hh"

#include <cmath>

#include "common/bitutil.hh"
#include "common/fixed_point.hh"
#include "common/logging.hh"

namespace secndp {

namespace {
constexpr unsigned kTagBytes = 16;
} // namespace

WorkloadTrace
buildMedicalTrace(const MedicalDbConfig &cfg, VerLayout layout)
{
    Rng rng(cfg.seed);
    const unsigned data_bytes = cfg.genes * 4;
    const bool verifying = layout != VerLayout::None;
    const unsigned stride = layout == VerLayout::Coloc
                                ? data_bytes + kTagBytes
                                : data_bytes;
    const std::uint64_t db_span = cfg.patients * std::uint64_t{stride};
    const std::uint64_t tag_region_base = roundUp(db_span, 4096);

    WorkloadTrace trace;
    trace.queries.reserve(cfg.numQueries);
    for (unsigned q = 0; q < cfg.numQueries; ++q) {
        TraceQuery query;
        std::uint64_t start_patient;
        if (cfg.contiguousIds) {
            start_patient =
                rng.nextBounded(cfg.patients - cfg.pf + 1);
        } else {
            start_patient = 0; // scattered handled per row below
        }
        for (unsigned k = 0; k < cfg.pf; ++k) {
            const std::uint64_t patient =
                cfg.contiguousIds ? start_patient + k
                                  : rng.nextBounded(cfg.patients);
            const std::uint64_t row_vaddr = patient * stride;
            const std::uint32_t fetch = layout == VerLayout::Coloc
                                            ? data_bytes + kTagBytes
                                            : data_bytes;
            query.ranges.push_back({row_vaddr, fetch});
            if (layout == VerLayout::Sep) {
                query.ranges.push_back(
                    {tag_region_base + patient * kTagBytes,
                     kTagBytes});
            }
        }
        EngineWork &w = query.engineWork;
        w.dataOtpBlocks =
            std::uint64_t{cfg.pf} * divCeil(data_bytes, 16);
        if (verifying)
            w.tagOtpBlocks = cfg.pf + 1;
        w.otpPuOps = std::uint64_t{cfg.pf} * cfg.genes;
        if (verifying)
            w.verifyOps = cfg.genes + cfg.pf;
        query.resultBytes =
            cfg.genes * 4 + (verifying ? kTagBytes : 0);
        trace.queries.push_back(std::move(query));
    }
    return trace;
}

//
// Student / Welch statistics.
//

namespace {

/** Continued fraction for the incomplete beta (Lentz's algorithm). */
double
betaContinuedFraction(double a, double b, double x)
{
    constexpr int max_iter = 300;
    constexpr double eps = 3e-14;
    constexpr double fpmin = 1e-300;

    const double qab = a + b;
    const double qap = a + 1.0;
    const double qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::abs(d) < fpmin)
        d = fpmin;
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= max_iter; ++m) {
        const int m2 = 2 * m;
        double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::abs(d) < fpmin)
            d = fpmin;
        c = 1.0 + aa / c;
        if (std::abs(c) < fpmin)
            c = fpmin;
        d = 1.0 / d;
        h *= d * c;
        aa = -(a + m) * (qab + m) * x /
             ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::abs(d) < fpmin)
            d = fpmin;
        c = 1.0 + aa / c;
        if (std::abs(c) < fpmin)
            c = fpmin;
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::abs(del - 1.0) < eps)
            return h;
    }
    warn("incomplete beta did not converge (a=%g b=%g x=%g)", a, b, x);
    return h;
}

} // namespace

double
regularizedIncompleteBeta(double a, double b, double x)
{
    SECNDP_ASSERT(a > 0 && b > 0, "beta parameters must be positive");
    if (x <= 0.0)
        return 0.0;
    if (x >= 1.0)
        return 1.0;
    const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                            std::lgamma(b) + a * std::log(x) +
                            b * std::log1p(-x);
    const double front = std::exp(ln_front);
    // Use the symmetry relation for numerical stability.
    if (x < (a + 1.0) / (a + b + 2.0))
        return front * betaContinuedFraction(a, b, x) / a;
    return 1.0 -
           front * betaContinuedFraction(b, a, 1.0 - x) / b;
}

TTestResult
welchTTest(double mean_a, double var_a, std::uint64_t n_a,
           double mean_b, double var_b, std::uint64_t n_b)
{
    SECNDP_ASSERT(n_a >= 2 && n_b >= 2, "need at least 2 per group");
    TTestResult r;
    const double sa = var_a / n_a;
    const double sb = var_b / n_b;
    const double se2 = sa + sb;
    if (se2 <= 0.0) {
        r.t = mean_a == mean_b ? 0.0
                               : std::numeric_limits<double>::infinity();
        r.df = static_cast<double>(n_a + n_b - 2);
        r.pValue = mean_a == mean_b ? 1.0 : 0.0;
        return r;
    }
    r.t = (mean_a - mean_b) / std::sqrt(se2);
    // Welch-Satterthwaite degrees of freedom.
    r.df = se2 * se2 /
           (sa * sa / (n_a - 1) + sb * sb / (n_b - 1));
    // Two-sided p-value: P(|T| > t) = I_{df/(df+t^2)}(df/2, 1/2).
    const double x = r.df / (r.df + r.t * r.t);
    r.pValue = regularizedIncompleteBeta(r.df / 2.0, 0.5, x);
    return r;
}

//
// Secure gene database.
//

SecureGeneDb::SecureGeneDb(const Aes128::Key &key, std::size_t patients,
                           std::size_t genes, unsigned frac_bits,
                           Rng &rng)
    : patients_(patients), genes_(genes), fracBits_(frac_bits),
      clientX_(key), clientX2_(key)
{
    SECNDP_ASSERT(frac_bits <= 12, "frac_bits too large for x^2 sums");
    truth_.resize(patients * genes);

    const FixedPointFormat fmt{32,
                               static_cast<unsigned>(fracBits_)};
    Matrix x(patients, genes, ElemWidth::W32, 0x10000000);
    Matrix x2(patients, genes, ElemWidth::W64, 0x40000000);
    for (std::size_t i = 0; i < patients; ++i) {
        for (std::size_t j = 0; j < genes; ++j) {
            // Positive, skewed expression levels in [0, ~12).
            const double level =
                std::exp(rng.nextGaussian() * 0.5 + 0.5);
            // Store the REPRESENTABLE value as ground truth so
            // secure results can be checked exactly.
            const std::int64_t raw = toFixed(level, fmt);
            truth_[i * genes + j] = fromFixed(raw, fmt);
            x.set(i, j, static_cast<std::uint64_t>(raw));
            x2.set(i, j,
                   static_cast<std::uint64_t>(raw) *
                       static_cast<std::uint64_t>(raw));
        }
    }
    clientX_.provision(x, deviceX_);
    clientX2_.provision(x2, deviceX2_);
}

double
SecureGeneDb::truth(std::size_t patient, std::size_t gene) const
{
    return truth_[patient * genes_ + gene];
}

GeneGroupStats
SecureGeneDb::groupStats(const std::vector<std::size_t> &patients) const
{
    const std::vector<std::uint64_t> ones(patients.size(), 1);
    const auto sum_x =
        clientX_.weightedSumRows(deviceX_, patients, ones);
    const auto sum_x2 =
        clientX2_.weightedSumRows(deviceX2_, patients, ones);

    GeneGroupStats stats;
    stats.verified = sum_x.verified && sum_x2.verified;
    stats.mean.resize(genes_);
    stats.variance.resize(genes_);
    const double n = static_cast<double>(patients.size());
    const double scale = std::ldexp(1.0, fracBits_);
    for (std::size_t j = 0; j < genes_; ++j) {
        const double sx = sum_x.values[j] / scale;
        const double sx2 = sum_x2.values[j] / (scale * scale);
        stats.mean[j] = sx / n;
        stats.variance[j] =
            n > 1 ? (sx2 - n * stats.mean[j] * stats.mean[j]) /
                        (n - 1)
                  : 0.0;
    }
    return stats;
}

} // namespace secndp
