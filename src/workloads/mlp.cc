#include "workloads/mlp.hh"

#include <cmath>

#include "common/logging.hh"

namespace secndp {

double
sigmoid(double z)
{
    if (z >= 0) {
        const double e = std::exp(-z);
        return 1.0 / (1.0 + e);
    }
    const double e = std::exp(z);
    return e / (1.0 + e);
}

Mlp::Mlp(std::vector<unsigned> layer_dims, Rng &rng)
    : dims_(std::move(layer_dims))
{
    SECNDP_ASSERT(dims_.size() >= 2, "MLP needs >= 2 layer dims");
    for (std::size_t l = 0; l + 1 < dims_.size(); ++l) {
        const unsigned in = dims_[l], out = dims_[l + 1];
        const double scale = std::sqrt(2.0 / (in + out));
        std::vector<double> w(static_cast<std::size_t>(in) * out);
        for (auto &v : w)
            v = rng.nextGaussian() * scale;
        weights_.push_back(std::move(w));
        std::vector<double> b(out);
        for (auto &v : b)
            v = rng.nextGaussian() * 0.01;
        biases_.push_back(std::move(b));
    }
}

std::vector<double>
Mlp::forward(const std::vector<double> &in) const
{
    SECNDP_ASSERT(in.size() == dims_.front(), "input dim %zu != %u",
                  in.size(), dims_.front());
    std::vector<double> act = in;
    for (std::size_t l = 0; l < weights_.size(); ++l) {
        const unsigned in_d = dims_[l], out_d = dims_[l + 1];
        std::vector<double> next(out_d);
        for (unsigned o = 0; o < out_d; ++o) {
            double acc = biases_[l][o];
            const double *row = weights_[l].data() +
                                static_cast<std::size_t>(o) * in_d;
            for (unsigned i = 0; i < in_d; ++i)
                acc += row[i] * act[i];
            // ReLU between layers, linear at the output.
            next[o] = (l + 1 < weights_.size() && acc < 0) ? 0 : acc;
        }
        act = std::move(next);
    }
    return act;
}

std::vector<double>
Mlp::forwardFixed(const std::vector<double> &in,
                  const FixedPointFormat &fmt) const
{
    SECNDP_ASSERT(in.size() == dims_.front(), "input dim %zu != %u",
                  in.size(), dims_.front());
    auto q = [&](double v) { return fromFixed(toFixed(v, fmt), fmt); };
    std::vector<double> act(in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
        act[i] = q(in[i]);
    for (std::size_t l = 0; l < weights_.size(); ++l) {
        const unsigned in_d = dims_[l], out_d = dims_[l + 1];
        std::vector<double> next(out_d);
        for (unsigned o = 0; o < out_d; ++o) {
            double acc = q(biases_[l][o]);
            const double *row = weights_[l].data() +
                                static_cast<std::size_t>(o) * in_d;
            for (unsigned i = 0; i < in_d; ++i)
                acc += q(row[i]) * act[i];
            acc = q(acc); // re-quantize the accumulator per output
            next[o] = (l + 1 < weights_.size() && acc < 0) ? 0 : acc;
        }
        act = std::move(next);
    }
    return act;
}

std::uint64_t
Mlp::macs() const
{
    std::uint64_t total = 0;
    for (std::size_t l = 0; l + 1 < dims_.size(); ++l)
        total += std::uint64_t{dims_[l]} * dims_[l + 1];
    return total;
}

DlrmDenseSide::DlrmDenseSide(unsigned dense_dim,
                             std::vector<unsigned> bottom,
                             unsigned sparse_dim,
                             std::vector<unsigned> top, Rng &rng)
    : bottom_([&] {
          SECNDP_ASSERT(!bottom.empty() && bottom.front() == dense_dim,
                        "bottom MLP input must match dense_dim");
          return Mlp(std::move(bottom), rng);
      }()),
      top_([&] {
          return Mlp(std::move(top), rng);
      }()),
      denseDim_(dense_dim), sparseDim_(sparse_dim)
{
    SECNDP_ASSERT(top_.inputDim() ==
                      bottom_.outputDim() + sparseDim_,
                  "top MLP input %u != bottom out %u + sparse %u",
                  top_.inputDim(), bottom_.outputDim(), sparseDim_);
    SECNDP_ASSERT(top_.outputDim() == 1, "top MLP must emit 1 logit");
}

double
DlrmDenseSide::predict(const std::vector<double> &dense,
                       const std::vector<double> &pooled_sparse) const
{
    SECNDP_ASSERT(pooled_sparse.size() == sparseDim_,
                  "pooled width %zu != %u", pooled_sparse.size(),
                  sparseDim_);
    auto bottom_out = bottom_.forward(dense);
    bottom_out.insert(bottom_out.end(), pooled_sparse.begin(),
                      pooled_sparse.end());
    return sigmoid(top_.forward(bottom_out)[0]);
}

double
DlrmDenseSide::predictFixed(const std::vector<double> &dense,
                            const std::vector<double> &pooled_sparse,
                            const FixedPointFormat &fmt) const
{
    SECNDP_ASSERT(pooled_sparse.size() == sparseDim_,
                  "pooled width %zu != %u", pooled_sparse.size(),
                  sparseDim_);
    auto bottom_out = bottom_.forwardFixed(dense, fmt);
    bottom_out.insert(bottom_out.end(), pooled_sparse.begin(),
                      pooled_sparse.end());
    return sigmoid(top_.forwardFixed(bottom_out, fmt)[0]);
}

} // namespace secndp
