#include "workloads/trace_io.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace secndp {

void
writeTrace(std::ostream &os, const WorkloadTrace &trace)
{
    os << "secndp-trace v1\n";
    os << "# queries: " << trace.queries.size() << "\n";
    for (const auto &q : trace.queries) {
        os << "q " << q.resultBytes << " "
           << q.engineWork.dataOtpBlocks << " "
           << q.engineWork.tagOtpBlocks << " "
           << q.engineWork.otpPuOps << " " << q.engineWork.verifyOps
           << "\n";
        for (const auto &r : q.ranges)
            os << "r " << r.vaddr << " " << r.bytes << "\n";
    }
}

WorkloadTrace
readTrace(std::istream &is)
{
    std::string line;
    if (!std::getline(is, line) || line != "secndp-trace v1")
        fatal("not a secndp-trace v1 stream");

    WorkloadTrace trace;
    std::size_t lineno = 1;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ss(line);
        std::string kind;
        ss >> kind;
        if (kind == "q") {
            TraceQuery q;
            ss >> q.resultBytes >> q.engineWork.dataOtpBlocks >>
                q.engineWork.tagOtpBlocks >> q.engineWork.otpPuOps >>
                q.engineWork.verifyOps;
            if (!ss)
                fatal("malformed 'q' record at line %zu", lineno);
            trace.queries.push_back(std::move(q));
        } else if (kind == "r") {
            if (trace.queries.empty())
                fatal("'r' record before any 'q' at line %zu",
                      lineno);
            AccessRange r;
            ss >> r.vaddr >> r.bytes;
            if (!ss || r.bytes == 0)
                fatal("malformed 'r' record at line %zu", lineno);
            trace.queries.back().ranges.push_back(r);
        } else {
            fatal("unknown record '%s' at line %zu", kind.c_str(),
                  lineno);
        }
    }
    return trace;
}

void
saveTraceFile(const std::string &path, const WorkloadTrace &trace)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '%s' for writing", path.c_str());
    writeTrace(os, trace);
}

WorkloadTrace
loadTraceFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open '%s'", path.c_str());
    return readTrace(is);
}

} // namespace secndp
