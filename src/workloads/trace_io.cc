#include "workloads/trace_io.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace secndp {

void
writeTrace(std::ostream &os, const WorkloadTrace &trace)
{
    os << "secndp-trace v1\n";
    // The query count doubles as a truncation check on read: a
    // partially-copied file fails loudly instead of silently serving
    // a shortened trace.
    os << "# queries: " << trace.queries.size() << "\n";
    for (const auto &q : trace.queries) {
        os << "q " << q.resultBytes << " "
           << q.engineWork.dataOtpBlocks << " "
           << q.engineWork.tagOtpBlocks << " "
           << q.engineWork.otpPuOps << " " << q.engineWork.verifyOps
           << "\n";
        for (const auto &r : q.ranges)
            os << "r " << r.vaddr << " " << r.bytes << "\n";
    }
}

namespace {

/** fatal() when a record line carries tokens beyond its fields. */
void
rejectTrailing(std::istringstream &ss, const char *kind,
               std::size_t lineno)
{
    std::string extra;
    if (ss >> extra) {
        fatal("trailing garbage '%s' after '%s' record at line %zu",
              extra.c_str(), kind, lineno);
    }
}

} // namespace

WorkloadTrace
readTrace(std::istream &is)
{
    std::string line;
    if (!std::getline(is, line) || line != "secndp-trace v1")
        fatal("not a secndp-trace v1 stream");

    WorkloadTrace trace;
    std::size_t lineno = 1;
    bool have_expected = false;
    std::size_t expected_queries = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#') {
            // "# queries: N" (written by writeTrace) arms the
            // truncation check; other comments stay free-form.
            std::istringstream cs(line);
            std::string hash, key;
            if (!have_expected && cs >> hash >> key &&
                key == "queries:" && cs >> expected_queries) {
                have_expected = true;
            }
            continue;
        }
        std::istringstream ss(line);
        std::string kind;
        ss >> kind;
        if (kind == "q") {
            TraceQuery q;
            ss >> q.resultBytes >> q.engineWork.dataOtpBlocks >>
                q.engineWork.tagOtpBlocks >> q.engineWork.otpPuOps >>
                q.engineWork.verifyOps;
            if (!ss)
                fatal("malformed 'q' record at line %zu", lineno);
            rejectTrailing(ss, "q", lineno);
            trace.queries.push_back(std::move(q));
        } else if (kind == "r") {
            if (trace.queries.empty())
                fatal("'r' record before any 'q' at line %zu",
                      lineno);
            AccessRange r;
            ss >> r.vaddr >> r.bytes;
            if (!ss || r.bytes == 0)
                fatal("malformed 'r' record at line %zu", lineno);
            rejectTrailing(ss, "r", lineno);
            trace.queries.back().ranges.push_back(r);
        } else {
            fatal("unknown record '%s' at line %zu", kind.c_str(),
                  lineno);
        }
    }
    // getline() stops on both EOF and stream errors; only the former
    // is a complete read. Without this check a failing disk or a
    // half-copied pipe would silently yield a shorter trace.
    if (is.bad())
        fatal("I/O error reading trace after line %zu", lineno);
    if (have_expected && trace.queries.size() != expected_queries) {
        fatal("truncated or corrupt trace: header promises %zu "
              "queries but %zu were read",
              expected_queries, trace.queries.size());
    }
    return trace;
}

void
saveTraceFile(const std::string &path, const WorkloadTrace &trace)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '%s' for writing", path.c_str());
    writeTrace(os, trace);
    os.flush();
    if (!os)
        fatal("I/O error writing trace to '%s'", path.c_str());
}

WorkloadTrace
loadTraceFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open '%s'", path.c_str());
    return readTrace(is);
}

} // namespace secndp
