/**
 * @file
 * The CPU-resident MLP portion of DLRM (paper Table I: bottom FC
 * 256-128-32, top FC 256-{64,128}-1).
 *
 * In SecNDP the MLPs stay on the trusted processor (their weights are
 * cache-resident); only the embedding SLS goes to NDP. This module
 * implements the dense side so examples and accuracy studies can run
 * the *whole* model functionally: fp32 or fixed-point GEMV + ReLU,
 * sigmoid head, plus DLRM's dense/sparse feature concatenation.
 */

#ifndef SECNDP_WORKLOADS_MLP_HH
#define SECNDP_WORKLOADS_MLP_HH

#include <cstdint>
#include <vector>

#include "common/fixed_point.hh"
#include "common/rng.hh"

namespace secndp {

/** One fully-connected stack with ReLU between layers and a linear
 *  final layer. */
class Mlp
{
  public:
    /**
     * @param layer_dims e.g. {256, 128, 32}: input 256 -> 128 -> 32
     * @param rng weight initialization (Xavier-style scaling)
     */
    Mlp(std::vector<unsigned> layer_dims, Rng &rng);

    unsigned inputDim() const { return dims_.front(); }
    unsigned outputDim() const { return dims_.back(); }

    /** fp32/double reference forward pass. */
    std::vector<double> forward(const std::vector<double> &in) const;

    /**
     * Fixed-point forward pass: inputs, weights, and activations are
     * quantized to `fmt` at every layer boundary (what a fixed-point
     * TEE implementation computes).
     */
    std::vector<double> forwardFixed(const std::vector<double> &in,
                                     const FixedPointFormat &fmt) const;

    /** Multiply-accumulate count of one forward pass. */
    std::uint64_t macs() const;

  private:
    std::vector<unsigned> dims_;
    /** weights_[l] is dims_[l+1] x dims_[l], row-major; biases per
     *  output. */
    std::vector<std::vector<double>> weights_;
    std::vector<std::vector<double>> biases_;
};

/** Numerically-stable logistic sigmoid. */
double sigmoid(double z);

/**
 * A complete mini-DLRM dense side: bottom MLP over dense features,
 * concatenation with pooled sparse embeddings, top MLP to one logit.
 */
class DlrmDenseSide
{
  public:
    /**
     * @param dense_dim raw dense-feature count
     * @param bottom e.g. {256, 128, 32}
     * @param sparse_dim total pooled-embedding width entering the top
     * @param top e.g. {256, 64, 1} (input dim must equal
     *        bottom-output + sparse_dim)
     */
    DlrmDenseSide(unsigned dense_dim, std::vector<unsigned> bottom,
                  unsigned sparse_dim, std::vector<unsigned> top,
                  Rng &rng);

    /** Click probability from dense features + pooled embeddings. */
    double predict(const std::vector<double> &dense,
                   const std::vector<double> &pooled_sparse) const;

    /** Same, in fixed point end to end. */
    double predictFixed(const std::vector<double> &dense,
                        const std::vector<double> &pooled_sparse,
                        const FixedPointFormat &fmt) const;

    std::uint64_t macsPerSample() const
    {
        return bottom_.macs() + top_.macs();
    }

  private:
    Mlp bottom_;
    Mlp top_;
    unsigned denseDim_;
    unsigned sparseDim_;
};

} // namespace secndp

#endif // SECNDP_WORKLOADS_MLP_HH
