/**
 * @file
 * Medical data analytics workload (paper section VI-A, use case 2):
 * statistical hypothesis tests over a private gene-expression
 * database. The NDP computes group summations (a weighted summation
 * with unit weights -- linear, so SecNDP applies); the processor
 * derives means/variances and Student's t statistics.
 *
 * Variance needs sum(x^2), which is not linear in x, so the secure
 * pipeline provisions TWO encrypted matrices: X and X.^2 (squared
 * element-wise at encryption time inside the TEE). Both sums are then
 * linear queries.
 */

#ifndef SECNDP_WORKLOADS_MEDICAL_HH
#define SECNDP_WORKLOADS_MEDICAL_HH

#include <cstdint>
#include <vector>

#include "arch/system.hh"
#include "common/rng.hh"
#include "secndp/protocol.hh"
#include "workloads/dlrm.hh"

namespace secndp {

/** Database geometry (paper section VI-A-(2)). */
struct MedicalDbConfig
{
    unsigned genes = 1024;        ///< m (performance-sim default)
    std::uint64_t patients = 500000;
    unsigned pf = 10000;          ///< patients aggregated per query
    unsigned numQueries = 1;
    /** Queried patient IDs are "not sparse": contiguous blocks. */
    bool contiguousIds = true;
    std::uint64_t seed = Rng::defaultSeed;
};

/**
 * Address-level trace for the performance simulator: each query sums
 * `pf` patient rows of `genes` 32-bit values.
 */
WorkloadTrace buildMedicalTrace(const MedicalDbConfig &cfg,
                                VerLayout layout);

/** Welch's t-test outcome. */
struct TTestResult
{
    double t = 0.0;
    double df = 0.0;
    double pValue = 1.0; ///< two-sided
};

/** Welch's unequal-variance t-test from group moments. */
TTestResult welchTTest(double mean_a, double var_a, std::uint64_t n_a,
                       double mean_b, double var_b, std::uint64_t n_b);

/** Regularized incomplete beta function I_x(a, b) (for Student t). */
double regularizedIncompleteBeta(double a, double b, double x);

/**
 * Secure group-statistics query over an encrypted gene DB: sums X and
 * X^2 rows for the given patients via the SecNDP protocol (verified),
 * and returns per-gene mean/variance. Values are fixed-point encoded
 * with `frac_bits` fractional bits.
 */
struct GeneGroupStats
{
    std::vector<double> mean;
    std::vector<double> variance;
    bool verified = false;
};

class SecureGeneDb
{
  public:
    /**
     * Provision a (synthetic) gene DB: patients x genes expression
     * levels, plus the squared matrix, both encrypted under `key`.
     */
    SecureGeneDb(const Aes128::Key &key, std::size_t patients,
                 std::size_t genes, unsigned frac_bits, Rng &rng);

    /** Verified group statistics for a set of patient rows. */
    GeneGroupStats groupStats(
        const std::vector<std::size_t> &patients) const;

    /** Ground-truth expression level (for tests). */
    double truth(std::size_t patient, std::size_t gene) const;

    std::size_t patients() const { return patients_; }
    std::size_t genes() const { return genes_; }

    /** Adversary hook for the attack demo. */
    UntrustedNdpDevice &device() { return deviceX_; }

  private:
    std::size_t patients_;
    std::size_t genes_;
    unsigned fracBits_;
    std::vector<double> truth_;
    SecNdpClient clientX_;
    SecNdpClient clientX2_;
    UntrustedNdpDevice deviceX_;
    UntrustedNdpDevice deviceX2_;
};

} // namespace secndp

#endif // SECNDP_WORKLOADS_MEDICAL_HH
