/**
 * @file
 * Embedding quantization (paper section VI-A, Figure 6 right).
 *
 * Row-wise quantization stores a scale and bias per row; the paper
 * proposes table-wise and column-wise variants whose scale/bias can
 * be cached on-chip so the SLS kernel runs directly on quantized
 * integers -- the property that makes computation over ciphertext
 * efficient. This module is the *functional* side used by the
 * accuracy evaluation (Table IV); the performance side is the row
 * layout in workloads/dlrm.
 */

#ifndef SECNDP_WORKLOADS_QUANTIZATION_HH
#define SECNDP_WORKLOADS_QUANTIZATION_HH

#include <cstdint>
#include <vector>

#include "workloads/dlrm.hh"

namespace secndp {

/** An 8-bit quantized table with its affine parameters. */
struct QuantizedTable
{
    QuantScheme scheme = QuantScheme::TableWise;
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::vector<std::uint8_t> data; ///< row-major quantized values
    /** Per-row, per-column, or single-element scale/bias. */
    std::vector<float> scales;
    std::vector<float> biases;

    std::uint8_t
    q(std::size_t i, std::size_t j) const
    {
        return data[i * cols + j];
    }

    /** Dequantize one element: P = Pq * scale + bias. */
    float dequant(std::size_t i, std::size_t j) const;

    /** Scale/bias group index of element (i, j). */
    std::size_t groupIndex(std::size_t i, std::size_t j) const;
};

/**
 * Quantize a row-major fp32 table to 8 bits under `scheme`
 * (min/max affine quantization per group).
 */
QuantizedTable quantizeTable(const std::vector<float> &values,
                             std::size_t rows, std::size_t cols,
                             QuantScheme scheme);

/** Largest absolute dequantization error over the table. */
double maxAbsError(const std::vector<float> &values,
                   const QuantizedTable &table);

/** Mean squared dequantization error over the table. */
double meanSquaredError(const std::vector<float> &values,
                        const QuantizedTable &table);

} // namespace secndp

#endif // SECNDP_WORKLOADS_QUANTIZATION_HH
