/**
 * @file
 * Whole-system composition: run a workload trace under one of the
 * paper's five execution modes and collect the metrics every
 * table/figure needs.
 *
 *   CpuUnprotected -- the non-NDP insecure baseline (speedup = 1x ref)
 *   CpuTee         -- non-NDP with counter-mode memory protection
 *   NdpUnprotected -- native rank-NDP, no protection
 *   SecNdpEnc      -- SecNDP, encryption only
 *   SecNdpEncVer   -- SecNDP, encryption + verification (tag layout
 *                     is encoded in the trace's access ranges)
 *
 * The SGX CPU-TEE reference of Table III lives in arch/sgx_model.
 */

#ifndef SECNDP_ARCH_SYSTEM_HH
#define SECNDP_ARCH_SYSTEM_HH

#include <cstdint>
#include <vector>

#include "engine/engine_model.hh"
#include "ndp/ndp_config.hh"
#include "ndp/packet_gen.hh"

namespace secndp {

/** Execution modes of the evaluation. */
enum class ExecMode
{
    CpuUnprotected,
    CpuTee,
    NdpUnprotected,
    SecNdpEnc,
    SecNdpEncVer,
};

const char *execModeName(ExecMode mode);

/** One query of a workload trace, mode-agnostic. */
struct TraceQuery
{
    /** Byte ranges read off-chip (data, plus tags if the layout
     *  stores them in regular memory). */
    std::vector<AccessRange> ranges;
    /** On-chip engine work for the SecNDP modes. */
    EngineWork engineWork;
    /** Result bytes returned to the processor by NDPLd. */
    std::uint32_t resultBytes = 0;
};

/** A full workload trace. */
struct WorkloadTrace
{
    std::vector<TraceQuery> queries;
};

/** Hardware configuration of one experiment. */
struct SystemConfig
{
    DramConfig dram;
    NdpConfig ndp;
    EngineConfig engine;
    std::uint64_t pageSeed = 1;
};

/**
 * Per-query lifecycle timing within one run, ns on the run's own
 * timeline (0 = batch issue). The serving layer maps these onto the
 * global serving timeline to emit request-tracer spans and to charge
 * each request its *own* completion instead of the whole batch's.
 */
struct QueryTiming
{
    double finishNs = 0.0;      ///< query result ready
    double otpStartNs = 0.0;    ///< AES-pool OTP window begin
    double otpDurNs = 0.0;      ///< OTP window length (0 = no work)
    double verifyStartNs = 0.0; ///< tag-check window begin
    double verifyDurNs = 0.0;   ///< tag-check length (0 = no check)
    std::uint64_t otpBlocks = 0;
    bool decryptBound = false;
};

/** Metrics of one run (inputs to speedup/energy computations). */
struct RunMetrics
{
    Cycle cycles = 0;
    double ns = 0.0;
    std::uint64_t lines = 0; ///< line reads issued to DRAM
    std::uint64_t acts = 0;  ///< row activations
    std::uint64_t ioBits = 0; ///< bits crossing the DIMM interface
    std::uint64_t aesBlocks = 0;
    std::uint64_t otpPuOps = 0;
    std::uint64_t verifyOps = 0;
    double fracDecryptBound = 0.0;
    /** Index-aligned with the trace's queries. */
    std::vector<QueryTiming> perQuery;
};

class PageMapper;

/** Execute `trace` under `mode` on the configured system. */
RunMetrics runWorkload(const SystemConfig &cfg,
                       const WorkloadTrace &trace, ExecMode mode);

/**
 * As above, but translating through a caller-owned PageMapper.
 *
 * A serving loop executes many small batches against the *same*
 * provisioned memory image; rebuilding the demand-paging free list
 * (one entry per physical page) for every batch is both wasteful and
 * wrong -- a row's physical placement must not change between the
 * requests that touch it. Pass the long-lived mapper here; the
 * single-shot overload keeps per-run isolation for the benches.
 */
RunMetrics runWorkload(const SystemConfig &cfg,
                       const WorkloadTrace &trace, ExecMode mode,
                       PageMapper &pages);

} // namespace secndp

#endif // SECNDP_ARCH_SYSTEM_HH
