#include "arch/system.hh"

#include "common/logging.hh"
#include "common/phase_profiler.hh"

namespace secndp {

const char *
execModeName(ExecMode mode)
{
    switch (mode) {
      case ExecMode::CpuUnprotected: return "cpu-unprotected";
      case ExecMode::CpuTee: return "cpu-tee";
      case ExecMode::NdpUnprotected: return "ndp-unprotected";
      case ExecMode::SecNdpEnc: return "secndp-enc";
      case ExecMode::SecNdpEncVer: return "secndp-enc+ver";
    }
    return "?";
}

RunMetrics
runWorkload(const SystemConfig &cfg, const WorkloadTrace &trace,
            ExecMode mode)
{
    // A fresh page mapper per run keeps experiments independent yet
    // reproducible.
    PageMapper pages(cfg.dram.geometry.totalBytes(), 4096,
                     cfg.pageSeed);
    return runWorkload(cfg, trace, mode, pages);
}

RunMetrics
runWorkload(const SystemConfig &cfg, const WorkloadTrace &trace,
            ExecMode mode, PageMapper &pages)
{
    const bool is_ndp = mode == ExecMode::NdpUnprotected ||
                        mode == ExecMode::SecNdpEnc ||
                        mode == ExecMode::SecNdpEncVer;
    const bool is_secndp = mode == ExecMode::SecNdpEnc ||
                           mode == ExecMode::SecNdpEncVer;

    // Translate queries to physical line sets.
    std::vector<NdpQuery> packets;
    packets.reserve(trace.queries.size());
    std::uint64_t result_bits = 0;
    for (const auto &q : trace.queries) {
        packets.push_back(buildQuery(pages, q.ranges,
                                     cfg.dram.geometry.lineBytes));
        result_bits += std::uint64_t{q.resultBytes} * 8;
    }

    RunMetrics metrics;
    const unsigned line_bits = cfg.dram.geometry.lineBytes * 8;

    BatchResult batch;
    {
        ScopedPhase phase("sim_drain");
        if (is_ndp) {
            NdpSimulation sim(cfg.dram, cfg.ndp);
            batch = sim.run(packets);
            // Only results cross the DIMM interface.
            metrics.ioBits = result_bits;
        } else {
            batch = runCpuBatch(cfg.dram, packets);
            // Every fetched line crosses the DIMM interface.
            metrics.ioBits = batch.totalLines * line_bits;
        }
    }
    metrics.cycles = batch.totalCycles;
    metrics.lines = batch.totalLines;
    metrics.acts = batch.acts;

    if (is_secndp) {
        std::vector<EngineWork> work;
        work.reserve(trace.queries.size());
        for (const auto &q : trace.queries) {
            EngineWork w = q.engineWork;
            if (mode == ExecMode::SecNdpEnc) {
                w.tagOtpBlocks = 0;
                w.verifyOps = 0;
            }
            work.push_back(w);
        }
        ScopedPhase phase("engine_overlay");
        const auto overlay =
            overlayEngine(cfg.engine, cfg.dram.clock, batch.packets,
                          work, mode == ExecMode::SecNdpEncVer);
        metrics.cycles = std::max(metrics.cycles, overlay.totalCycles);
        metrics.fracDecryptBound = overlay.fractionDecryptBound;
        metrics.aesBlocks = overlay.totalAesBlocks;
        metrics.otpPuOps = overlay.totalOtpPuOps;
        metrics.verifyOps = overlay.totalVerifyOps;
    } else if (mode == ExecMode::CpuTee) {
        // The whole fetched stream is counter-mode decrypted on-chip.
        const std::uint64_t blocks = batch.totalLines *
                                     (cfg.dram.geometry.lineBytes / 16);
        metrics.cycles = teeDecryptFinish(cfg.engine, cfg.dram.clock,
                                          blocks, metrics.cycles);
        metrics.aesBlocks = blocks;
    }

    metrics.ns = metrics.cycles * cfg.dram.clock.nsPerCycle();
    return metrics;
}

} // namespace secndp
