#include "arch/system.hh"

#include "common/logging.hh"
#include "common/phase_profiler.hh"

namespace secndp {

const char *
execModeName(ExecMode mode)
{
    switch (mode) {
      case ExecMode::CpuUnprotected: return "cpu-unprotected";
      case ExecMode::CpuTee: return "cpu-tee";
      case ExecMode::NdpUnprotected: return "ndp-unprotected";
      case ExecMode::SecNdpEnc: return "secndp-enc";
      case ExecMode::SecNdpEncVer: return "secndp-enc+ver";
    }
    return "?";
}

RunMetrics
runWorkload(const SystemConfig &cfg, const WorkloadTrace &trace,
            ExecMode mode)
{
    // A fresh page mapper per run keeps experiments independent yet
    // reproducible.
    PageMapper pages(cfg.dram.geometry.totalBytes(), 4096,
                     cfg.pageSeed);
    return runWorkload(cfg, trace, mode, pages);
}

RunMetrics
runWorkload(const SystemConfig &cfg, const WorkloadTrace &trace,
            ExecMode mode, PageMapper &pages)
{
    const bool is_ndp = mode == ExecMode::NdpUnprotected ||
                        mode == ExecMode::SecNdpEnc ||
                        mode == ExecMode::SecNdpEncVer;
    const bool is_secndp = mode == ExecMode::SecNdpEnc ||
                           mode == ExecMode::SecNdpEncVer;

    // Translate queries to physical line sets.
    std::vector<NdpQuery> packets;
    packets.reserve(trace.queries.size());
    std::uint64_t result_bits = 0;
    for (const auto &q : trace.queries) {
        packets.push_back(buildQuery(pages, q.ranges,
                                     cfg.dram.geometry.lineBytes));
        result_bits += std::uint64_t{q.resultBytes} * 8;
    }

    RunMetrics metrics;
    const unsigned line_bits = cfg.dram.geometry.lineBytes * 8;

    BatchResult batch;
    {
        ScopedPhase phase("sim_drain");
        if (is_ndp) {
            NdpSimulation sim(cfg.dram, cfg.ndp);
            batch = sim.run(packets);
            // Only results cross the DIMM interface.
            metrics.ioBits = result_bits;
        } else {
            batch = runCpuBatch(cfg.dram, packets);
            // Every fetched line crosses the DIMM interface.
            metrics.ioBits = batch.totalLines * line_bits;
        }
    }
    metrics.cycles = batch.totalCycles;
    metrics.lines = batch.totalLines;
    metrics.acts = batch.acts;

    const double ns_per_cycle = cfg.dram.clock.nsPerCycle();
    metrics.perQuery.resize(trace.queries.size());
    for (std::size_t q = 0;
         q < trace.queries.size() && q < batch.packets.size(); ++q) {
        metrics.perQuery[q].finishNs =
            batch.packets[q].finished * ns_per_cycle;
    }

    if (is_secndp) {
        std::vector<EngineWork> work;
        work.reserve(trace.queries.size());
        for (const auto &q : trace.queries) {
            EngineWork w = q.engineWork;
            if (mode == ExecMode::SecNdpEnc) {
                w.tagOtpBlocks = 0;
                w.verifyOps = 0;
            }
            work.push_back(w);
        }
        ScopedPhase phase("engine_overlay");
        const auto overlay =
            overlayEngine(cfg.engine, cfg.dram.clock, batch.packets,
                          work, mode == ExecMode::SecNdpEncVer);
        metrics.cycles = std::max(metrics.cycles, overlay.totalCycles);
        metrics.fracDecryptBound = overlay.fractionDecryptBound;
        metrics.aesBlocks = overlay.totalAesBlocks;
        metrics.otpPuOps = overlay.totalOtpPuOps;
        metrics.verifyOps = overlay.totalVerifyOps;
        const bool verifying = mode == ExecMode::SecNdpEncVer;
        for (std::size_t q = 0;
             q < metrics.perQuery.size() &&
             q < overlay.finished.size();
             ++q) {
            QueryTiming &t = metrics.perQuery[q];
            t.finishNs = overlay.finished[q] * ns_per_cycle;
            t.otpStartNs = overlay.otpStart[q] * ns_per_cycle;
            t.otpDurNs = (overlay.otpDone[q] - overlay.otpStart[q]) *
                         ns_per_cycle;
            if (verifying) {
                t.verifyStartNs =
                    overlay.verifyStart[q] * ns_per_cycle;
                t.verifyDurNs =
                    cfg.engine.verifyCheckCycles * ns_per_cycle;
            }
            t.otpBlocks = work[q].totalBlocks();
            t.decryptBound = overlay.decryptBound[q];
        }
    } else if (mode == ExecMode::CpuTee) {
        // The whole fetched stream is counter-mode decrypted on-chip.
        const std::uint64_t blocks = batch.totalLines *
                                     (cfg.dram.geometry.lineBytes / 16);
        metrics.cycles = teeDecryptFinish(cfg.engine, cfg.dram.clock,
                                          blocks, metrics.cycles);
        metrics.aesBlocks = blocks;
        // The stream decrypt releases results only once the whole
        // fetched stream is processed: every query finishes together.
        for (QueryTiming &t : metrics.perQuery)
            t.finishNs = metrics.cycles * ns_per_cycle;
    }

    metrics.ns = metrics.cycles * cfg.dram.clock.nsPerCycle();
    return metrics;
}

} // namespace secndp
