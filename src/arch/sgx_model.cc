#include "arch/sgx_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace secndp {

SgxMachine
sgxCoffeeLake()
{
    // streamSlowdown ~5.75 reproduces the paper's 0.1738x analytics
    // row (EPC-resident but tree-walk-taxed streaming); pageSwapNs is
    // calibrated so GB-scale working sets land in the 6-300x band.
    return {"SGX-CFL", 168.0 * (1 << 20), 5.75, 2500.0, 1.10, true};
}

SgxMachine
sgxIceLake()
{
    // No integrity tree: a flat memory-encryption bandwidth tax
    // (paper: 1.8-2.6x on memory phases, ~5% on compute).
    return {"SGX-ICL", 96.0 * (1ULL << 30), 1.75, 0.0, 1.05, false};
}

double
sgxMemoryPhaseSlowdown(const SgxMachine &machine,
                       std::uint64_t working_set_bytes,
                       std::uint64_t unique_pages_touched,
                       double baseline_ns)
{
    SECNDP_ASSERT(baseline_ns > 0, "zero baseline time");
    double ns = baseline_ns * machine.streamSlowdown;
    if (static_cast<double>(working_set_bytes) > machine.epcBytes &&
        machine.pageSwapNs > 0) {
        // Demand paging: every touched page misses the EPC with
        // probability 1 - EPC/WS (random access assumption).
        const double miss =
            1.0 - machine.epcBytes /
                      static_cast<double>(working_set_bytes);
        ns += unique_pages_touched * std::max(0.0, miss) *
              machine.pageSwapNs;
    }
    return ns / baseline_ns;
}

double
sgxEndToEndSlowdown(const SgxMachine &machine, double compute_ns,
                    double memory_ns,
                    std::uint64_t working_set_bytes,
                    std::uint64_t unique_pages_touched)
{
    const double mem_factor = sgxMemoryPhaseSlowdown(
        machine, working_set_bytes, unique_pages_touched, memory_ns);
    const double total_base = compute_ns + memory_ns;
    const double total_sgx = compute_ns * machine.computeSlowdown +
                             memory_ns * mem_factor;
    return total_sgx / total_base;
}

} // namespace secndp
