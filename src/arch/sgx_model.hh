/**
 * @file
 * Analytic CPU-TEE (Intel SGX) reference model for the Table III
 * comparison rows.
 *
 * SUBSTITUTION (see DESIGN.md): the paper measures two real SGX
 * machines; we model the two mechanisms it attributes the slowdowns
 * to (paper footnotes 6 and 7):
 *
 *  - Coffee Lake (client SGX): a Memory Encryption Engine with an
 *    integrity tree and a small (168 MB) EPC. Working sets beyond the
 *    EPC page-swap constantly (6-300x slowdowns); even EPC-resident
 *    streaming suffers the MEE + counter-tree walk tax.
 *  - Ice Lake (scalable SGX): huge EPC (96 GB), memory encryption
 *    without an integrity tree -- a moderate bandwidth/latency tax on
 *    memory-bound phases (1.8-2.6x), ~5% on cache-resident compute.
 */

#ifndef SECNDP_ARCH_SGX_MODEL_HH
#define SECNDP_ARCH_SGX_MODEL_HH

#include <cstdint>
#include <string>

namespace secndp {

/** Parameters of one SGX machine generation. */
struct SgxMachine
{
    std::string name;
    double epcBytes;
    /** Slowdown of memory-bound phases that fit in the EPC (MEE and,
     *  on CFL, counter-tree walks). */
    double streamSlowdown;
    /** Cost of one EPC page swap (encrypt+evict+fetch+verify). */
    double pageSwapNs;
    /** Slowdown of cache-resident compute (enclave transitions etc). */
    double computeSlowdown;
    bool hasIntegrityTree;
};

/** Intel Xeon E-2288G Coffee Lake, 168 MB EPC (paper section VI-B). */
SgxMachine sgxCoffeeLake();

/** Intel Xeon Platinum 8370C Ice Lake, 96 GB EPC, no integrity tree. */
SgxMachine sgxIceLake();

/**
 * Slowdown factor of a memory-bound phase under SGX relative to its
 * unprotected execution.
 *
 * @param machine the SGX generation
 * @param working_set_bytes enclave-resident data the phase touches
 * @param unique_pages_touched distinct 4 KB pages the phase reads
 * @param baseline_ns unprotected execution time of the phase
 */
double sgxMemoryPhaseSlowdown(const SgxMachine &machine,
                              std::uint64_t working_set_bytes,
                              std::uint64_t unique_pages_touched,
                              double baseline_ns);

/**
 * End-to-end slowdown combining a compute phase (cache-resident) and
 * a memory phase, given their unprotected times.
 */
double sgxEndToEndSlowdown(const SgxMachine &machine,
                           double compute_ns, double memory_ns,
                           std::uint64_t working_set_bytes,
                           std::uint64_t unique_pages_touched);

} // namespace secndp

#endif // SECNDP_ARCH_SGX_MODEL_HH
