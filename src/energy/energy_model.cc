#include "energy/energy_model.hh"

namespace secndp {

EnergyBreakdown
computeEnergy(const EnergyParams &params, const RunMetrics &metrics,
              double dimm_bit_factor)
{
    EnergyBreakdown e;
    e.dimmPj = (metrics.acts * params.actPj +
                metrics.lines * params.rdLinePj) *
               dimm_bit_factor;
    e.ioPj = metrics.ioBits * params.ioPjPerBit * dimm_bit_factor;
    e.enginePj = metrics.aesBlocks * params.aesBlockPj +
                 metrics.otpPuOps * params.otpMacPj +
                 metrics.verifyOps * params.verifyOpPj;
    return e;
}

double
engineAreaMm2(const EnergyParams &params, unsigned n_aes,
              bool with_verifier)
{
    double area = n_aes * params.aesAreaMm2 + params.otpPuAreaMm2;
    if (with_verifier)
        area += params.verifierAreaMm2;
    return area;
}

} // namespace secndp
