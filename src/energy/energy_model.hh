/**
 * @file
 * Memory-system and SecNDP-engine energy/area model
 * (paper section VI-B "Power and Area", Table V, section VII-C).
 *
 * SUBSTITUTION (see DESIGN.md): the paper feeds simulated traces to
 * DRAMPower [18] and CACTI-IO [34]. We use per-event energies with
 * the same structure -- energy is linear in activations, bursts, and
 * interface bits -- with constants calibrated so the canonical SLS
 * pattern (random 128 B rows => ~1 ACT + 2 line bursts per row)
 * reproduces the paper's per-bit figures:
 *
 *   DIMM core   27.42 pJ/bit  = (actPj + 2*rdLinePj) / 1024
 *   DIMM IO      7.3  pJ/bit  (CACTI-IO-class DDR4 interface)
 *   AES          0.5  pJ/bit  = aesBlockPj / 128   ([22] @ 45 nm)
 *   OTP PU       0.4  pJ/bit  = otpMacPj per 32-bit MAC / 32
 *
 * Everything downstream (Table V's rows, including the 79.2% /
 * 81.83% / 92.09% normalized energies) then follows from simulated
 * event counts, not from hardcoded row values.
 */

#ifndef SECNDP_ENERGY_ENERGY_MODEL_HH
#define SECNDP_ENERGY_ENERGY_MODEL_HH

#include "arch/system.hh"

namespace secndp {

/** Per-event energy and per-block area constants. */
struct EnergyParams
{
    // DRAM device core.
    double actPj = 17800.0;  ///< per ACT(+PRE) pair
    double rdLinePj = 5150.0; ///< per 64 B read burst
    double wrLinePj = 5400.0; ///< per 64 B write burst
    // DIMM interface.
    double ioPjPerBit = 7.3;
    // SecNDP engine.
    double aesBlockPj = 64.0;  ///< per 128-bit AES block
    double otpMacPj = 12.8;    ///< per OTP PU multiply-accumulate
    double verifyOpPj = 25.0;  ///< per F_q op in the verifier
    // Area at 45 nm (mm^2), section VII-C.
    double aesAreaMm2 = 0.13;
    double otpPuAreaMm2 = 0.20;
    double verifierAreaMm2 = 0.125;
};

/** Energy of one run, by component. */
struct EnergyBreakdown
{
    double dimmPj = 0.0;   ///< device core (ACT + bursts)
    double ioPj = 0.0;     ///< DIMM interface crossings
    double enginePj = 0.0; ///< AES + OTP PU + verifier

    double totalPj() const { return dimmPj + ioPj + enginePj; }
};

/**
 * Energy from run metrics.
 *
 * @param dimm_bit_factor extra device+interface bits moved per data
 *        bit (Ver-ECC tags ride the ECC chip: 1.125 for 16 B tags on
 *        128 B rows; 1.0 otherwise)
 */
EnergyBreakdown computeEnergy(const EnergyParams &params,
                              const RunMetrics &metrics,
                              double dimm_bit_factor = 1.0);

/** SecNDP engine area at 45 nm (section VII-C: 1.625 mm^2 at 10 AES). */
double engineAreaMm2(const EnergyParams &params, unsigned n_aes,
                     bool with_verifier);

} // namespace secndp

#endif // SECNDP_ENERGY_ENERGY_MODEL_HH
