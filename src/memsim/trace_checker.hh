/**
 * @file
 * Independent, generation-parameterized command-trace validator.
 *
 * Re-checks a recorded command stream against every timing rule of
 * the *active* DramConfig -- the timing table (tCCD_S/L and tRRD_S/L
 * keyed by the generation's bank-group topology), the refresh scheme
 * (DDR4 REFab rank blocking vs DDR5 REFsb per-bank-address
 * blocking), per-pseudo-channel data buses, and the one-command-per-
 * cycle shared command bus of multi-pseudo-channel generations --
 * using a deliberately separate (brute-force) implementation from
 * DramChannel, so scheduler bugs cannot hide behind a shared
 * legality routine. Used by tests to certify that the controller
 * emits only legal schedules under random workloads, for DDR4 and
 * DDR5 command streams alike.
 */

#ifndef SECNDP_MEMSIM_TRACE_CHECKER_HH
#define SECNDP_MEMSIM_TRACE_CHECKER_HH

#include <string>
#include <vector>

#include "memsim/controller.hh"

namespace secndp {

/**
 * Validate a per-controller command trace.
 *
 * @param cfg the DRAM configuration the trace was generated under
 * @param trace commands in non-decreasing cycle order
 * @param shared_bus whether the commands of each pseudo-channel
 *        share that pseudo-channel's data bus (CPU mode); per-rank
 *        (NDP) traces should be checked per rank
 * @return human-readable violations (empty == legal trace)
 */
std::vector<std::string> checkCommandTrace(
    const DramConfig &cfg, const std::vector<CmdTraceEntry> &trace,
    bool shared_bus = true);

} // namespace secndp

#endif // SECNDP_MEMSIM_TRACE_CHECKER_HH
