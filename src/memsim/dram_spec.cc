#include "memsim/dram_spec.hh"

#include "common/logging.hh"

namespace secndp {

namespace {

/**
 * Paper Table II as a named table. Every field below maps to a Table
 * II row (or a standard DDR4-2400 value where Table II is silent, as
 * documented field-by-field in dram_params.hh):
 *
 *   DDR4-2400, 1 channel            -> clock.freqGhz = 1.2, channels
 *   8 ranks x 8 GB                  -> ranks = 8, rankBytes = 8 GB
 *   4 bank groups x 4 banks         -> bankGroups, banksPerGroup
 *   8 KB row buffer, 64 B line      -> rowBytes, lineBytes
 *   tRC=55 tRCD=16 tCL=16 tRP=16    -> timings (cycles @ 1200 MHz)
 *   tBL=4 tCCD_S/L=4/6 tRRD_S/L=4/6
 *   tFAW=26
 *
 * This MUST stay equal to a default-constructed DramConfig: the
 * golden perf baselines were recorded under the defaults, and
 * `--dram ddr4-2400` is documented to be byte-identical to them
 * (tests assert the equality field by field).
 */
DramConfig
ddr4_2400()
{
    DramConfig cfg; // defaults ARE Table II
    cfg.generation = "ddr4-2400";
    return cfg;
}

/**
 * DDR5-4800 timing table, in cycles at the 2400 MHz memory clock
 * (tCK = 0.4167 ns). Values follow JEDEC DDR5-4800B speed-bin
 * shapes: the ns-domain analog constraints (tRCD/tRP/tRAS) stay
 * roughly constant vs DDR4, so their cycle counts roughly double;
 * the bank-group gap narrows (8 bank groups); refresh moves to
 * 16 Gb-device values.
 */
DramTimings
ddr5Timings()
{
    DramTimings t;
    t.tRCD = 39;   // ~16.3 ns
    t.tCL = 40;    // CL40
    t.tRP = 39;
    t.tRAS = 76;   // ~32 ns
    t.tRC = 115;   // tRAS + tRP
    t.tBL = 4;     // BL16 on the unified 64-bit abstraction
    t.tCCD_S = 8;  // 8 tCK in DDR5
    t.tCCD_L = 12; // max(8 tCK, 5 ns)
    t.tRRD_S = 8;
    t.tRRD_L = 12;
    t.tFAW = 32;   // max(32 tCK, 13.3 ns)
    t.tRTP = 18;   // max(12 tCK, 7.5 ns)
    t.tRTRS = 4;
    t.tCWL = 38;   // CL - 2
    t.tWR = 72;    // 30 ns
    t.tWTR = 24;   // tWTR_L ~ 10 ns
    t.tREFI = 9360; // 3.9 us (tREFI1) at 2400 MHz
    t.tRFC = 708;   // tRFC1 ~ 295 ns, 16 Gb device
    return t;
}

DramGeometry
ddr5Geometry()
{
    DramGeometry g;      // channels/ranks/rankBytes as Table II
    g.bankGroups = 8;    // DDR5: 8 bank groups x 4 banks
    g.banksPerGroup = 4;
    return g;
}

/** DDR5 modeled as one unified 64-bit channel (pseudoChannels=1). */
DramConfig
ddr5_4800()
{
    DramConfig cfg;
    cfg.timings = ddr5Timings();
    cfg.geometry = ddr5Geometry();
    cfg.clock.freqGhz = 2.4;
    cfg.generation = "ddr5-4800";
    return cfg;
}

/**
 * Real DDR5 topology: 2 pseudo-channels of 32 bits each. One 64 B
 * line is a BL16 burst on the 32-bit bus -> tBL = 8 cycles; the row
 * buffer seen by one pseudo-channel is half the unified one; refresh
 * is same-bank (REFsb), the DDR5 mode that keeps the other bank
 * addresses serving during a refresh.
 */
DramConfig
ddr5_4800_pch()
{
    DramConfig cfg = ddr5_4800();
    cfg.geometry.pseudoChannels = 2;
    cfg.geometry.busBytes = 4;
    cfg.geometry.rowBytes = 4096;
    cfg.timings.tBL = 8; // BL16 on a 32-bit bus
    cfg.timings.refresh = RefreshMode::SameBank;
    // One REFsb covers one bank address across all bank groups, so
    // cycling all banksPerGroup addresses inside tREFI1 needs
    // tREFIsb = tREFI1 / banksPerGroup; tRFCsb ~ 130 ns.
    cfg.timings.tREFIsb = cfg.timings.tREFI / 4;
    cfg.timings.tRFCsb = 312;
    cfg.generation = "ddr5-4800-pch";
    return cfg;
}

} // namespace

bool
lookupDramConfig(const std::string &name, DramConfig &out)
{
    if (name == "ddr4-2400") {
        out = ddr4_2400();
        return true;
    }
    if (name == "ddr5-4800") {
        out = ddr5_4800();
        return true;
    }
    if (name == "ddr5-4800-pch") {
        out = ddr5_4800_pch();
        return true;
    }
    return false;
}

DramConfig
makeDramConfig(const std::string &name)
{
    DramConfig cfg;
    if (!lookupDramConfig(name, cfg)) {
        fatal("unknown DRAM generation '%s' (known: %s)", name.c_str(),
              dramGenerationList().c_str());
    }
    return cfg;
}

const std::vector<std::string> &
dramGenerationNames()
{
    static const std::vector<std::string> names = {
        "ddr4-2400",
        "ddr5-4800",
        "ddr5-4800-pch",
    };
    return names;
}

std::string
dramGenerationList()
{
    std::string out;
    for (const auto &n : dramGenerationNames()) {
        if (!out.empty())
            out += "|";
        out += n;
    }
    return out;
}

DramConfig
perPseudoChannelConfig(const DramConfig &cfg)
{
    DramConfig shard = cfg;
    const unsigned pch = cfg.geometry.pseudoChannels
                             ? cfg.geometry.pseudoChannels
                             : 1;
    shard.geometry.channels = 1;
    shard.geometry.pseudoChannels = 1;
    shard.geometry.rankBytes = cfg.geometry.rankBytes / pch;
    return shard;
}

} // namespace secndp
