/**
 * @file
 * FR-FCFS open-page memory controller.
 *
 * One controller owns one command bus and one data bus and serves the
 * requests routed to it:
 *
 *  - CPU (non-NDP) mode: a single controller serves all ranks of one
 *    (channel, pseudo-channel) -- the shared channel bus is the
 *    bottleneck, with a tRTRS turnaround between bursts from
 *    different ranks.
 *  - Rank-NDP mode: one controller per (pseudo-channel, rank) -- each
 *    NDP PU accesses its own rank slice internally, giving the
 *    aggregate bandwidth that makes NDP win (paper section V,
 *    Figure 5); DDR5 pseudo-channels double the PU count per rank.
 *
 * Scheduling: FR-FCFS over a bounded transaction window (row hits
 * first, then oldest), open-page row policy with precharge on
 * conflict. Every issued command is validated by DramChannel's
 * legality asserts, and tests re-validate whole traces independently.
 */

#ifndef SECNDP_MEMSIM_CONTROLLER_HH
#define SECNDP_MEMSIM_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "memsim/channel.hh"

namespace secndp {

/** One line-sized memory request. */
struct MemRequest
{
    std::uint64_t addr = 0;
    bool write = false;
    std::uint64_t tag = 0; ///< caller-defined (e.g. query id)
};

/** Optional hook recording every issued command (trace checking). */
struct CmdTraceEntry
{
    DramCmd cmd;
    DramCoord coord;
    Cycle cycle;
};

/** FR-FCFS controller over one command bus + one data bus. */
class MemoryController
{
  public:
    using CompletionFn =
        std::function<void(const MemRequest &, Cycle done)>;

    /**
     * @param channel shared device state (may be shared with other
     *        controllers serving disjoint ranks)
     * @param window FR-FCFS visible transaction window
     */
    MemoryController(DramChannel &channel, unsigned window = 32);

    /** Register the completion callback (may stay unset). */
    void onComplete(CompletionFn fn) { complete_ = std::move(fn); }

    /** Optionally record every command for later validation. */
    void recordTrace(std::vector<CmdTraceEntry> *trace)
    {
        trace_ = trace;
    }

    /**
     * Add a request (unbounded backlog behind the window). `now` is
     * the arrival cycle, used for the request-latency histogram and
     * trace events (callers that enqueue everything up front before
     * draining may leave it 0).
     */
    void enqueue(const MemRequest &req, Cycle now = 0);

    bool busy() const { return pendingCount_ != 0; }
    std::size_t pending() const { return pendingCount_; }

    /**
     * Try to issue at most one command at `now`.
     * @return the next cycle at which calling again can make progress
     *         (== now + 1 if a command was issued; the earliest
     *         feasible time otherwise; max() when idle).
     */
    Cycle tick(Cycle now);

    /** Run until drained, starting at `from`; returns finish cycle. */
    Cycle drain(Cycle from = 0);

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    static constexpr Cycle idleForever =
        std::numeric_limits<Cycle>::max();

  private:
    struct Entry
    {
        MemRequest req;
        DramCoord coord;
        Cycle arrived;
    };

    /** Earliest cycle >= now the data bus allows a burst issue. */
    Cycle busReadyFor(const DramCoord &c, Cycle cmd_cycle,
                      bool write) const;

    void refillWindow();
    bool tryIssue(Entry &e, Cycle now, Cycle &next_hint);

    DramChannel &channel_;
    unsigned window_;
    std::deque<Entry> queue_;   ///< visible window
    std::deque<Entry> backlog_; ///< overflow behind the window
    std::size_t pendingCount_ = 0;
    CompletionFn complete_;
    std::vector<CmdTraceEntry> *trace_ = nullptr;

    /** Refresh housekeeping for one served (pseudo-channel, rank);
     *  true if a command was issued (caller must stop this cycle). */
    bool serviceRefresh(unsigned pch, unsigned rank, Cycle now,
                        Cycle &next_hint);

    /** Flat (pseudo-channel, rank) index. */
    unsigned puIndex(const DramCoord &c) const;

    std::unique_ptr<AddressMapper> mapper_;
    /** (pseudo-channel, rank) pairs we refresh, flat-indexed. */
    std::vector<std::uint8_t> servedRanks_;
    Cycle busFreeAt_ = 0;  ///< end of last burst on this data bus
    int lastBurstPu_ = -1; ///< (pch, rank) of last burst, for tRTRS
    bool issuedColumn_ = false;

    /** Lazily-allocated tracer track for this controller's data bus. */
    std::uint32_t traceTrack();
    std::uint32_t traceTrack_ = 0;

    StatGroup stats_;
};

} // namespace secndp

#endif // SECNDP_MEMSIM_CONTROLLER_HH
