/**
 * @file
 * Cycle-level DDR4 channel state: per-bank FSMs plus rank-level
 * constraint tracking (tCCD, tRRD, tFAW). This class owns *device*
 * legality; bus scheduling and request queues live in the controller.
 *
 * All methods take/return absolute cycle numbers. The `earliest*`
 * queries are side-effect free; `issue*` asserts legality and updates
 * state, so an illegal schedule is a simulator bug, not a silent
 * mis-simulation (the trace checker in tests re-validates
 * independently).
 */

#ifndef SECNDP_MEMSIM_CHANNEL_HH
#define SECNDP_MEMSIM_CHANNEL_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/stats.hh"
#include "memsim/address.hh"
#include "memsim/dram_params.hh"

namespace secndp {

/** Simulation time in memory-clock cycles (signed for -inf init). */
using Cycle = std::int64_t;

/** DRAM command types. */
enum class DramCmd
{
    Act,
    Pre,
    Rd,
    Wr,
    Ref, ///< per-rank auto-refresh
};

/** Cycle-level DDR4 channel device model. */
class DramChannel
{
  public:
    explicit DramChannel(const DramConfig &cfg);

    const DramConfig &config() const { return cfg_; }

    /** @name Row-buffer queries */
    /// @{
    bool rowOpen(const DramCoord &c) const;
    bool anyRowOpen(const DramCoord &c) const;
    /// @}

    /**
     * @name Earliest legal issue cycles (>= now). earliestRd/Wr
     * require the target row to be open; earliestAct requires the
     * bank to be closed; earliestPre requires it open.
     */
    /// @{
    Cycle earliestAct(const DramCoord &c, Cycle now) const;
    Cycle earliestPre(const DramCoord &c, Cycle now) const;
    Cycle earliestRd(const DramCoord &c, Cycle now) const;
    Cycle earliestWr(const DramCoord &c, Cycle now) const;
    /// @}

    /** @name Issue commands (assert legality, update state). */
    /// @{
    void issueAct(const DramCoord &c, Cycle at);
    void issuePre(const DramCoord &c, Cycle at);
    /** @return cycle at which the read burst completes on the bus. */
    Cycle issueRd(const DramCoord &c, Cycle at);
    /** @return cycle at which the write burst completes on the bus. */
    Cycle issueWr(const DramCoord &c, Cycle at);
    /// @}

    /**
     * @name Refresh (per-rank auto-refresh every tREFI; the rank is
     * unavailable for tRFC). Controllers refresh the ranks they
     * serve; ranks nobody touches are skipped, which cannot change
     * any result.
     */
    /// @{
    /** Is this rank's refresh interval due at `now`? */
    bool refreshDue(unsigned rank, Cycle now) const;
    /** Coordinates of some open bank in the rank, if any. */
    std::optional<DramCoord> openBankIn(unsigned rank) const;
    /** Earliest legal REF cycle >= now (all banks must be closed). */
    Cycle earliestRefresh(unsigned rank, Cycle now) const;
    /** Issue REF (all banks must be closed; respects tRP). */
    void issueRefresh(unsigned rank, Cycle at);
    /// @}

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

  private:
    struct BankState
    {
        bool open = false;
        std::uint64_t openRow = 0;
        Cycle lastAct = kFarPast;
        Cycle lastPre = kFarPast;
        Cycle lastRd = kFarPast;
        Cycle lastWrDataEnd = kFarPast;
    };

    struct RankState
    {
        std::deque<Cycle> actWindow; ///< last ACT cycles (FAW)
        std::vector<Cycle> lastActByBg;
        Cycle lastActAny = kFarPast;
        std::vector<Cycle> lastRdByBg;
        Cycle lastRdAny = kFarPast;
        std::vector<Cycle> lastWrByBg;
        Cycle lastWrAny = kFarPast;
        Cycle lastWrDataEnd = kFarPast;
        Cycle refreshDue = 0;           ///< next REF deadline
        Cycle refreshUntil = kFarPast;  ///< rank blocked during tRFC
    };

    static constexpr Cycle kFarPast = -(Cycle{1} << 40);

    BankState &bank(const DramCoord &c);
    const BankState &bank(const DramCoord &c) const;

    DramConfig cfg_;
    std::vector<RankState> ranks_;
    std::vector<BankState> banks_; ///< [rank][flatBank] flattened
    StatGroup stats_;
};

} // namespace secndp

#endif // SECNDP_MEMSIM_CHANNEL_HH
