/**
 * @file
 * Cycle-level DRAM channel state: per-bank FSMs plus rank-level
 * constraint tracking (tCCD, tRRD, tFAW), replicated per
 * pseudo-channel for DDR5. This class owns *device* legality; bus
 * scheduling and request queues live in the controller.
 *
 * Pseudo-channels (geometry.pseudoChannels > 1) are independent
 * timing domains -- separate bank FSMs, separate rank windows,
 * separate data buses -- EXCEPT for the channel's single command
 * bus: at most one pseudo-channel may receive a command in any given
 * cycle (commands to the *same* pseudo-channel keep the pre-existing
 * model's leniency, since rank-NDP PUs generate their own commands
 * internally). Single-pseudo-channel generations take none of these
 * paths, so DDR4 schedules are bit-identical to the pre-DDR5 model.
 *
 * Refresh follows the generation's RefreshMode: AllBank (DDR4 REFab,
 * the rank blocks for tRFC) or SameBank (DDR5 REFsb, one bank
 * address across all bank groups blocks for tRFCsb while the rest of
 * the rank keeps serving).
 *
 * All methods take/return absolute cycle numbers. The `earliest*`
 * queries are side-effect free; `issue*` asserts legality and updates
 * state, so an illegal schedule is a simulator bug, not a silent
 * mis-simulation (the trace checker in tests re-validates
 * independently).
 */

#ifndef SECNDP_MEMSIM_CHANNEL_HH
#define SECNDP_MEMSIM_CHANNEL_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/stats.hh"
#include "memsim/address.hh"
#include "memsim/dram_params.hh"

namespace secndp {

/** Simulation time in memory-clock cycles (signed for -inf init). */
using Cycle = std::int64_t;

/** DRAM command types. */
enum class DramCmd
{
    Act,
    Pre,
    Rd,
    Wr,
    Ref,   ///< per-rank all-bank auto-refresh (DDR4 REFab)
    RefSb, ///< same-bank refresh of one bank address (DDR5 REFsb)
};

/** Cycle-level DRAM channel device model. */
class DramChannel
{
  public:
    explicit DramChannel(const DramConfig &cfg);

    const DramConfig &config() const { return cfg_; }

    /** @name Row-buffer queries */
    /// @{
    bool rowOpen(const DramCoord &c) const;
    bool anyRowOpen(const DramCoord &c) const;
    /// @}

    /**
     * @name Earliest legal issue cycles (>= now). earliestRd/Wr
     * require the target row to be open; earliestAct requires the
     * bank to be closed; earliestPre requires it open.
     */
    /// @{
    Cycle earliestAct(const DramCoord &c, Cycle now) const;
    Cycle earliestPre(const DramCoord &c, Cycle now) const;
    Cycle earliestRd(const DramCoord &c, Cycle now) const;
    Cycle earliestWr(const DramCoord &c, Cycle now) const;
    /// @}

    /** @name Issue commands (assert legality, update state). */
    /// @{
    void issueAct(const DramCoord &c, Cycle at);
    void issuePre(const DramCoord &c, Cycle at);
    /** @return cycle at which the read burst completes on the bus. */
    Cycle issueRd(const DramCoord &c, Cycle at);
    /** @return cycle at which the write burst completes on the bus. */
    Cycle issueWr(const DramCoord &c, Cycle at);
    /// @}

    /**
     * @name Refresh. Controllers refresh the (pseudo-channel, rank)
     * pairs they serve; pairs nobody touches are skipped, which
     * cannot change any result. AllBank mode refreshes the whole
     * rank every tREFI; SameBank mode refreshes one bank address
     * (cycling round-robin) every tREFIsb.
     */
    /// @{
    /** Is this pair's refresh interval due at `now`? */
    bool refreshDue(unsigned pch, unsigned rank, Cycle now) const;
    /** Coordinates of some open bank in the pair, if any. */
    std::optional<DramCoord> openBankIn(unsigned pch,
                                        unsigned rank) const;
    /**
     * Some open bank the pending refresh needs closed, if any
     * (AllBank: any open bank; SameBank: an open bank at the next
     * refresh's bank address).
     */
    std::optional<DramCoord> refreshBlockingBank(unsigned pch,
                                                 unsigned rank) const;
    /** Earliest legal REF cycle >= now (target banks closed). */
    Cycle earliestRefresh(unsigned pch, unsigned rank,
                          Cycle now) const;
    /**
     * Issue the refresh (target banks must be closed and past tRP).
     * @return the refreshed bank address (SameBank) or 0 (AllBank).
     */
    unsigned issueRefresh(unsigned pch, unsigned rank, Cycle at);
    /// @}

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

  private:
    struct BankState
    {
        bool open = false;
        std::uint64_t openRow = 0;
        Cycle lastAct = kFarPast;
        Cycle lastPre = kFarPast;
        Cycle lastRd = kFarPast;
        Cycle lastWrDataEnd = kFarPast;
        Cycle refreshUntil = kFarPast; ///< REFsb blocks this bank
    };

    struct RankState
    {
        std::deque<Cycle> actWindow; ///< last ACT cycles (FAW)
        std::vector<Cycle> lastActByBg;
        Cycle lastActAny = kFarPast;
        std::vector<Cycle> lastRdByBg;
        Cycle lastRdAny = kFarPast;
        std::vector<Cycle> lastWrByBg;
        Cycle lastWrAny = kFarPast;
        Cycle lastWrDataEnd = kFarPast;
        Cycle refreshDue = 0;           ///< next REF deadline
        Cycle refreshUntil = kFarPast;  ///< rank blocked during tRFC
        unsigned sbNextBank = 0;        ///< next REFsb bank address
    };

    static constexpr Cycle kFarPast = -(Cycle{1} << 40);

    BankState &bank(const DramCoord &c);
    const BankState &bank(const DramCoord &c) const;
    RankState &rankState(unsigned pch, unsigned rank);
    const RankState &rankState(unsigned pch, unsigned rank) const;

    /**
     * Earliest cycle >= now the shared command bus accepts a command
     * for pseudo-channel `pch` (== now unless another pseudo-channel
     * already took the bus this cycle).
     */
    Cycle cmdBusReady(unsigned pch, Cycle now) const;
    /** Record a command-bus slot use at `at` by `pch`. */
    void takeCmdBus(unsigned pch, Cycle at);

    DramConfig cfg_;
    std::vector<RankState> ranks_; ///< [pch][rank] flattened
    std::vector<BankState> banks_; ///< [pch][rank][flatBank] flattened
    Cycle lastCmdAt_ = kFarPast;   ///< shared-command-bus arbitration
    unsigned lastCmdPch_ = 0;
    StatGroup stats_;
};

} // namespace secndp

#endif // SECNDP_MEMSIM_CHANNEL_HH
