#include "memsim/address.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace secndp {

AddressMapper::AddressMapper(const DramGeometry &geo) : geo_(geo)
{
    SECNDP_ASSERT(isPowerOfTwo(geo.lineBytes) &&
                      isPowerOfTwo(geo.rowBytes) &&
                      isPowerOfTwo(geo.bankGroups) &&
                      isPowerOfTwo(geo.banksPerGroup) &&
                      isPowerOfTwo(geo.ranks) &&
                      isPowerOfTwo(geo.pseudoChannels) &&
                      isPowerOfTwo(geo.channels) &&
                      isPowerOfTwo(geo.rankBytes),
                  "DRAM geometry fields must be powers of two");
    offsetBits_ = floorLog2(geo.lineBytes);
    channelBits_ = floorLog2(geo.channels);
    pchBits_ = floorLog2(geo.pseudoChannels);
    columnBits_ = floorLog2(geo.linesPerRow());
    bgBits_ = floorLog2(geo.bankGroups);
    bankBits_ = floorLog2(geo.banksPerGroup);
    rankBits_ = floorLog2(geo.ranks);
    rowBits_ = floorLog2(geo.rowsPerBank());
}

DramCoord
AddressMapper::decode(std::uint64_t addr) const
{
    SECNDP_ASSERT(addr < geo_.totalBytes(),
                  "address %lu beyond capacity", addr);
    DramCoord c;
    unsigned shift = offsetBits_;
    c.column = static_cast<unsigned>(
        bitSlice(addr, shift, shift + columnBits_));
    shift += columnBits_;
    c.bankGroup = static_cast<unsigned>(
        bitSlice(addr, shift, shift + bgBits_));
    shift += bgBits_;
    c.bank = static_cast<unsigned>(
        bitSlice(addr, shift, shift + bankBits_));
    shift += bankBits_;
    c.rank = static_cast<unsigned>(
        bitSlice(addr, shift, shift + rankBits_));
    shift += rankBits_;
    c.pseudoChannel = static_cast<unsigned>(
        bitSlice(addr, shift, shift + pchBits_));
    shift += pchBits_;
    c.channel = static_cast<unsigned>(
        bitSlice(addr, shift, shift + channelBits_));
    shift += channelBits_;
    c.row = bitSlice(addr, shift, shift + rowBits_);
    return c;
}

std::uint64_t
AddressMapper::encode(const DramCoord &coord) const
{
    // Mask every field to its slice width so encode() is the exact
    // inverse of decode() even for zero-width fields (encoding a
    // nonzero coordinate into a zero-bit slice used to smear the
    // value into the field above -- the asymmetry the round-trip
    // tests guard against).
    std::uint64_t addr = 0;
    unsigned shift = offsetBits_;
    addr |= (coord.column & lowMask(columnBits_)) << shift;
    shift += columnBits_;
    addr |= (coord.bankGroup & lowMask(bgBits_)) << shift;
    shift += bgBits_;
    addr |= (coord.bank & lowMask(bankBits_)) << shift;
    shift += bankBits_;
    addr |= (coord.rank & lowMask(rankBits_)) << shift;
    shift += rankBits_;
    addr |= (coord.pseudoChannel & lowMask(pchBits_)) << shift;
    shift += pchBits_;
    addr |= (coord.channel & lowMask(channelBits_)) << shift;
    shift += channelBits_;
    addr |= (coord.row & lowMask(rowBits_)) << shift;
    return addr;
}

} // namespace secndp
