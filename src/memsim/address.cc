#include "memsim/address.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace secndp {

AddressMapper::AddressMapper(const DramGeometry &geo) : geo_(geo)
{
    SECNDP_ASSERT(isPowerOfTwo(geo.lineBytes) &&
                      isPowerOfTwo(geo.rowBytes) &&
                      isPowerOfTwo(geo.bankGroups) &&
                      isPowerOfTwo(geo.banksPerGroup) &&
                      isPowerOfTwo(geo.ranks) &&
                      isPowerOfTwo(geo.channels) &&
                      isPowerOfTwo(geo.rankBytes),
                  "DRAM geometry fields must be powers of two");
    offsetBits_ = floorLog2(geo.lineBytes);
    channelBits_ = floorLog2(geo.channels);
    columnBits_ = floorLog2(geo.linesPerRow());
    bgBits_ = floorLog2(geo.bankGroups);
    bankBits_ = floorLog2(geo.banksPerGroup);
    rankBits_ = floorLog2(geo.ranks);
    rowBits_ = floorLog2(geo.rowsPerBank());
}

DramCoord
AddressMapper::decode(std::uint64_t addr) const
{
    SECNDP_ASSERT(addr < geo_.totalBytes(),
                  "address %lu beyond capacity", addr);
    DramCoord c;
    unsigned shift = offsetBits_;
    c.column = static_cast<unsigned>(
        bitSlice(addr, shift, shift + columnBits_));
    shift += columnBits_;
    c.bankGroup = static_cast<unsigned>(
        bitSlice(addr, shift, shift + bgBits_));
    shift += bgBits_;
    c.bank = static_cast<unsigned>(
        bitSlice(addr, shift, shift + bankBits_));
    shift += bankBits_;
    c.rank = static_cast<unsigned>(
        rankBits_ == 0 ? 0 : bitSlice(addr, shift, shift + rankBits_));
    shift += rankBits_;
    c.channel = static_cast<unsigned>(
        channelBits_ == 0
            ? 0
            : bitSlice(addr, shift, shift + channelBits_));
    shift += channelBits_;
    c.row = bitSlice(addr, shift, shift + rowBits_);
    return c;
}

std::uint64_t
AddressMapper::encode(const DramCoord &coord) const
{
    std::uint64_t addr = 0;
    unsigned shift = offsetBits_;
    addr |= static_cast<std::uint64_t>(coord.column) << shift;
    shift += columnBits_;
    addr |= static_cast<std::uint64_t>(coord.bankGroup) << shift;
    shift += bgBits_;
    addr |= static_cast<std::uint64_t>(coord.bank) << shift;
    shift += bankBits_;
    addr |= static_cast<std::uint64_t>(coord.rank) << shift;
    shift += rankBits_;
    addr |= static_cast<std::uint64_t>(coord.channel) << shift;
    shift += channelBits_;
    addr |= coord.row << shift;
    return addr;
}

} // namespace secndp
