/**
 * @file
 * Named DRAM generation tables.
 *
 * Three generations ship today:
 *
 *   ddr4-2400      paper Table II, byte-for-byte the default
 *                  DramConfig (the baseline every golden sidecar was
 *                  recorded under);
 *   ddr5-4800      DDR5-4800 timings at a 2400 MHz memory clock,
 *                  modeled as one unified 64-bit channel (no
 *                  pseudo-channel split) -- isolates the clock/timing
 *                  generation jump from the topology change;
 *   ddr5-4800-pch  the same device with the real DDR5 topology: two
 *                  32-bit pseudo-channels per channel sharing a
 *                  command bus, burst length 16 (tBL = 8 on the
 *                  half-width bus), same-bank refresh, and one NDP
 *                  controller per DIMM x pseudo-channel.
 *
 * Timing values are JEDEC-plausible shape targets, consistent with
 * the repo's convention that paper values are shape targets rather
 * than absolute-number targets.
 */

#ifndef SECNDP_MEMSIM_DRAM_SPEC_HH
#define SECNDP_MEMSIM_DRAM_SPEC_HH

#include <string>
#include <vector>

#include "memsim/dram_params.hh"

namespace secndp {

/**
 * Look up a generation table by name. Returns false (leaving `out`
 * untouched) for unknown names.
 */
bool lookupDramConfig(const std::string &name, DramConfig &out);

/** As above, but fatal() on unknown names (CLI entry points). */
DramConfig makeDramConfig(const std::string &name);

/** All registered generation names, for usage/error messages. */
const std::vector<std::string> &dramGenerationNames();

/** Comma-separated generation names, for usage strings. */
std::string dramGenerationList();

/**
 * The config of ONE pseudo-channel of one channel of `cfg`, used by
 * the serving layer to shard work over channels x pseudo-channels:
 * channels and pseudoChannels collapse to 1 and the rank capacity is
 * divided by the pseudo-channel count. Timings, bus width, and bank
 * topology are already per pseudo-channel, so they pass through. For
 * single-pseudo-channel generations this only forces channels = 1,
 * leaving the serving layer's pre-refactor behavior untouched.
 */
DramConfig perPseudoChannelConfig(const DramConfig &cfg);

} // namespace secndp

#endif // SECNDP_MEMSIM_DRAM_SPEC_HH
