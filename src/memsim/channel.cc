#include "memsim/channel.hh"

#include <algorithm>

#include "common/logging.hh"

namespace secndp {

DramChannel::DramChannel(const DramConfig &cfg)
    : cfg_(cfg), stats_("dram")
{
    const auto &geo = cfg_.geometry;
    const bool same_bank =
        cfg_.timings.refresh == RefreshMode::SameBank;
    SECNDP_ASSERT(!same_bank ||
                      (cfg_.timings.tREFIsb > 0 &&
                       cfg_.timings.tRFCsb > 0),
                  "SameBank refresh needs tREFIsb/tRFCsb");
    ranks_.resize(static_cast<std::size_t>(geo.pseudoChannels) *
                  geo.ranks);
    for (auto &r : ranks_) {
        r.lastActByBg.assign(geo.bankGroups, kFarPast);
        r.lastRdByBg.assign(geo.bankGroups, kFarPast);
        r.lastWrByBg.assign(geo.bankGroups, kFarPast);
        r.refreshDue =
            same_bank ? cfg_.timings.tREFIsb : cfg_.timings.tREFI;
    }
    banks_.resize(static_cast<std::size_t>(geo.pseudoChannels) *
                  geo.ranks * geo.banksPerRank());
}

DramChannel::BankState &
DramChannel::bank(const DramCoord &c)
{
    const auto &geo = cfg_.geometry;
    return banks_[(static_cast<std::size_t>(c.pseudoChannel) *
                       geo.ranks +
                   c.rank) *
                      geo.banksPerRank() +
                  c.flatBank(geo)];
}

const DramChannel::BankState &
DramChannel::bank(const DramCoord &c) const
{
    const auto &geo = cfg_.geometry;
    return banks_[(static_cast<std::size_t>(c.pseudoChannel) *
                       geo.ranks +
                   c.rank) *
                      geo.banksPerRank() +
                  c.flatBank(geo)];
}

DramChannel::RankState &
DramChannel::rankState(unsigned pch, unsigned rank)
{
    return ranks_[static_cast<std::size_t>(pch) *
                      cfg_.geometry.ranks +
                  rank];
}

const DramChannel::RankState &
DramChannel::rankState(unsigned pch, unsigned rank) const
{
    return ranks_[static_cast<std::size_t>(pch) *
                      cfg_.geometry.ranks +
                  rank];
}

Cycle
DramChannel::cmdBusReady(unsigned pch, Cycle now) const
{
    // One command per cycle on the channel's shared command bus, but
    // only *across* pseudo-channels: same-pseudo-channel commands
    // keep the pre-DDR5 model's leniency (rank PUs generate their
    // own commands after a packet dispatch), and single-
    // pseudo-channel generations never take this path at all.
    if (cfg_.geometry.pseudoChannels <= 1)
        return now;
    if (lastCmdAt_ == now && lastCmdPch_ != pch)
        return now + 1;
    return now;
}

void
DramChannel::takeCmdBus(unsigned pch, Cycle at)
{
    if (cfg_.geometry.pseudoChannels <= 1)
        return;
    lastCmdAt_ = at;
    lastCmdPch_ = pch;
}

bool
DramChannel::rowOpen(const DramCoord &c) const
{
    const auto &b = bank(c);
    return b.open && b.openRow == c.row;
}

bool
DramChannel::anyRowOpen(const DramCoord &c) const
{
    return bank(c).open;
}

Cycle
DramChannel::earliestAct(const DramCoord &c, Cycle now) const
{
    const auto &t = cfg_.timings;
    const auto &b = bank(c);
    SECNDP_ASSERT(!b.open, "ACT to open bank");
    const auto &r = rankState(c.pseudoChannel, c.rank);

    Cycle ready = now;
    ready = std::max(ready, b.lastAct + t.tRC);
    ready = std::max(ready, b.lastPre + t.tRP);
    ready = std::max(ready, r.lastActByBg[c.bankGroup] + t.tRRD_L);
    ready = std::max(ready, r.lastActAny + t.tRRD_S);
    ready = std::max(ready, r.refreshUntil);
    ready = std::max(ready, b.refreshUntil); // REFsb in flight
    // FAW: at most 4 ACTs per rank in any tFAW window.
    if (r.actWindow.size() >= 4)
        ready = std::max(ready, r.actWindow.front() + t.tFAW);
    return cmdBusReady(c.pseudoChannel, ready);
}

Cycle
DramChannel::earliestPre(const DramCoord &c, Cycle now) const
{
    const auto &t = cfg_.timings;
    const auto &b = bank(c);
    SECNDP_ASSERT(b.open, "PRE to closed bank");

    Cycle ready = now;
    ready = std::max(ready, b.lastAct + t.tRAS);
    ready = std::max(ready, b.lastRd + t.tRTP);
    ready = std::max(ready, b.lastWrDataEnd + t.tWR);
    return cmdBusReady(c.pseudoChannel, ready);
}

Cycle
DramChannel::earliestRd(const DramCoord &c, Cycle now) const
{
    const auto &t = cfg_.timings;
    const auto &b = bank(c);
    SECNDP_ASSERT(rowOpen(c), "RD to wrong/closed row");
    const auto &r = rankState(c.pseudoChannel, c.rank);

    Cycle ready = now;
    ready = std::max(ready, b.lastAct + t.tRCD);
    ready = std::max(ready, r.lastRdByBg[c.bankGroup] + t.tCCD_L);
    ready = std::max(ready, r.lastRdAny + t.tCCD_S);
    ready = std::max(ready, r.lastWrByBg[c.bankGroup] + t.tCCD_L);
    ready = std::max(ready, r.lastWrAny + t.tCCD_S);
    ready = std::max(ready, r.lastWrDataEnd + t.tWTR);
    return cmdBusReady(c.pseudoChannel, ready);
}

Cycle
DramChannel::earliestWr(const DramCoord &c, Cycle now) const
{
    const auto &t = cfg_.timings;
    const auto &b = bank(c);
    SECNDP_ASSERT(rowOpen(c), "WR to wrong/closed row");
    const auto &r = rankState(c.pseudoChannel, c.rank);

    Cycle ready = now;
    ready = std::max(ready, b.lastAct + t.tRCD);
    ready = std::max(ready, r.lastWrByBg[c.bankGroup] + t.tCCD_L);
    ready = std::max(ready, r.lastWrAny + t.tCCD_S);
    ready = std::max(ready, r.lastRdByBg[c.bankGroup] + t.tCCD_L);
    ready = std::max(ready, r.lastRdAny + t.tCCD_S);
    return cmdBusReady(c.pseudoChannel, ready);
}

void
DramChannel::issueAct(const DramCoord &c, Cycle at)
{
    SECNDP_ASSERT(at >= earliestAct(c, at), "illegal ACT at %ld", at);
    auto &b = bank(c);
    auto &r = rankState(c.pseudoChannel, c.rank);
    b.open = true;
    b.openRow = c.row;
    b.lastAct = at;
    r.lastActAny = at;
    r.lastActByBg[c.bankGroup] = at;
    r.actWindow.push_back(at);
    if (r.actWindow.size() > 4)
        r.actWindow.pop_front();
    takeCmdBus(c.pseudoChannel, at);
    // `acts` / `reads` / `writes` are Sampler probes (row_hit_rate
    // series): renaming them breaks the time-series contract.
    ++stats_.counter("acts");
}

void
DramChannel::issuePre(const DramCoord &c, Cycle at)
{
    SECNDP_ASSERT(at >= earliestPre(c, at), "illegal PRE at %ld", at);
    auto &b = bank(c);
    b.open = false;
    b.lastPre = at;
    takeCmdBus(c.pseudoChannel, at);
    ++stats_.counter("pres");
    // Row-buffer residency: how long the row stayed open. Long tails
    // here mean the open-page policy is paying off (or rows linger).
    stats_.histogram("row_open_cycles").sample(
        static_cast<double>(at - b.lastAct));
}

Cycle
DramChannel::issueRd(const DramCoord &c, Cycle at)
{
    SECNDP_ASSERT(at >= earliestRd(c, at), "illegal RD at %ld", at);
    const auto &t = cfg_.timings;
    auto &b = bank(c);
    auto &r = rankState(c.pseudoChannel, c.rank);
    b.lastRd = at;
    r.lastRdAny = at;
    r.lastRdByBg[c.bankGroup] = at;
    takeCmdBus(c.pseudoChannel, at);
    ++stats_.counter("reads");
    return at + t.tCL + t.tBL;
}

bool
DramChannel::refreshDue(unsigned pch, unsigned rank, Cycle now) const
{
    return now >= rankState(pch, rank).refreshDue;
}

std::optional<DramCoord>
DramChannel::openBankIn(unsigned pch, unsigned rank) const
{
    const auto &geo = cfg_.geometry;
    const std::size_t base =
        (static_cast<std::size_t>(pch) * geo.ranks + rank) *
        geo.banksPerRank();
    for (unsigned fb = 0; fb < geo.banksPerRank(); ++fb) {
        const auto &b = banks_[base + fb];
        if (b.open) {
            DramCoord c;
            c.pseudoChannel = pch;
            c.rank = rank;
            c.bankGroup = fb / geo.banksPerGroup;
            c.bank = fb % geo.banksPerGroup;
            c.row = b.openRow;
            return c;
        }
    }
    return std::nullopt;
}

std::optional<DramCoord>
DramChannel::refreshBlockingBank(unsigned pch, unsigned rank) const
{
    if (cfg_.timings.refresh == RefreshMode::AllBank)
        return openBankIn(pch, rank);
    // SameBank: only banks at the next refresh's bank address (one
    // per bank group) must close.
    const auto &geo = cfg_.geometry;
    const unsigned target = rankState(pch, rank).sbNextBank;
    const std::size_t base =
        (static_cast<std::size_t>(pch) * geo.ranks + rank) *
        geo.banksPerRank();
    for (unsigned bg = 0; bg < geo.bankGroups; ++bg) {
        const unsigned fb = bg * geo.banksPerGroup + target;
        const auto &b = banks_[base + fb];
        if (b.open) {
            DramCoord c;
            c.pseudoChannel = pch;
            c.rank = rank;
            c.bankGroup = bg;
            c.bank = target;
            c.row = b.openRow;
            return c;
        }
    }
    return std::nullopt;
}

Cycle
DramChannel::earliestRefresh(unsigned pch, unsigned rank,
                             Cycle now) const
{
    const auto &t = cfg_.timings;
    const auto &geo = cfg_.geometry;
    const std::size_t base =
        (static_cast<std::size_t>(pch) * geo.ranks + rank) *
        geo.banksPerRank();
    Cycle ready = now;
    if (t.refresh == RefreshMode::AllBank) {
        for (unsigned fb = 0; fb < geo.banksPerRank(); ++fb) {
            const auto &b = banks_[base + fb];
            ready = std::max(ready, b.lastPre + t.tRP);
            // RAS/RTP/WR constraints end in PRE; banks are closed.
        }
    } else {
        const unsigned target = rankState(pch, rank).sbNextBank;
        for (unsigned bg = 0; bg < geo.bankGroups; ++bg) {
            const auto &b =
                banks_[base + bg * geo.banksPerGroup + target];
            ready = std::max(ready, b.lastPre + t.tRP);
            ready = std::max(ready, b.refreshUntil);
        }
    }
    return cmdBusReady(pch, ready);
}

unsigned
DramChannel::issueRefresh(unsigned pch, unsigned rank, Cycle at)
{
    const auto &t = cfg_.timings;
    const auto &geo = cfg_.geometry;
    auto &r = rankState(pch, rank);
    const std::size_t base =
        (static_cast<std::size_t>(pch) * geo.ranks + rank) *
        geo.banksPerRank();

    if (t.refresh == RefreshMode::AllBank) {
        SECNDP_ASSERT(!openBankIn(pch, rank).has_value(),
                      "REF with open banks in rank %u", rank);
        // Respect precharge recovery of every bank in the rank.
        for (unsigned fb = 0; fb < geo.banksPerRank(); ++fb) {
            const auto &b = banks_[base + fb];
            SECNDP_ASSERT(at >= b.lastPre + t.tRP,
                          "REF inside tRP of bank %u", fb);
        }
        r.refreshUntil = at + t.tRFC;
        r.refreshDue = at + t.tREFI;
        takeCmdBus(pch, at);
        ++stats_.counter("refreshes");
        return 0;
    }

    // SameBank: block only the target bank address, in every bank
    // group, for tRFCsb; the rest of the rank keeps serving.
    const unsigned target = r.sbNextBank;
    SECNDP_ASSERT(!refreshBlockingBank(pch, rank).has_value(),
                  "REFsb with open target bank %u in rank %u", target,
                  rank);
    for (unsigned bg = 0; bg < geo.bankGroups; ++bg) {
        auto &b = banks_[base + bg * geo.banksPerGroup + target];
        SECNDP_ASSERT(at >= b.lastPre + t.tRP,
                      "REFsb inside tRP of bank %u", target);
        b.refreshUntil = at + t.tRFCsb;
    }
    r.sbNextBank = (target + 1) % geo.banksPerGroup;
    r.refreshDue = at + t.tREFIsb;
    takeCmdBus(pch, at);
    ++stats_.counter("refreshes");
    ++stats_.counter("refreshes_sb");
    return target;
}

Cycle
DramChannel::issueWr(const DramCoord &c, Cycle at)
{
    SECNDP_ASSERT(at >= earliestWr(c, at), "illegal WR at %ld", at);
    const auto &t = cfg_.timings;
    auto &b = bank(c);
    auto &r = rankState(c.pseudoChannel, c.rank);
    const Cycle data_end = at + t.tCWL + t.tBL;
    b.lastWrDataEnd = data_end;
    r.lastWrAny = at;
    r.lastWrByBg[c.bankGroup] = at;
    r.lastWrDataEnd = data_end;
    takeCmdBus(c.pseudoChannel, at);
    ++stats_.counter("writes");
    return data_end;
}

} // namespace secndp
