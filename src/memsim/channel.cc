#include "memsim/channel.hh"

#include <algorithm>

#include "common/logging.hh"

namespace secndp {

DramChannel::DramChannel(const DramConfig &cfg)
    : cfg_(cfg), stats_("dram")
{
    const auto &geo = cfg_.geometry;
    ranks_.resize(geo.ranks);
    for (auto &r : ranks_) {
        r.lastActByBg.assign(geo.bankGroups, kFarPast);
        r.lastRdByBg.assign(geo.bankGroups, kFarPast);
        r.lastWrByBg.assign(geo.bankGroups, kFarPast);
        r.refreshDue = cfg_.timings.tREFI;
    }
    banks_.resize(static_cast<std::size_t>(geo.ranks) *
                  geo.banksPerRank());
}

DramChannel::BankState &
DramChannel::bank(const DramCoord &c)
{
    return banks_[c.rank * cfg_.geometry.banksPerRank() +
                  c.flatBank(cfg_.geometry)];
}

const DramChannel::BankState &
DramChannel::bank(const DramCoord &c) const
{
    return banks_[c.rank * cfg_.geometry.banksPerRank() +
                  c.flatBank(cfg_.geometry)];
}

bool
DramChannel::rowOpen(const DramCoord &c) const
{
    const auto &b = bank(c);
    return b.open && b.openRow == c.row;
}

bool
DramChannel::anyRowOpen(const DramCoord &c) const
{
    return bank(c).open;
}

Cycle
DramChannel::earliestAct(const DramCoord &c, Cycle now) const
{
    const auto &t = cfg_.timings;
    const auto &b = bank(c);
    SECNDP_ASSERT(!b.open, "ACT to open bank");
    const auto &r = ranks_[c.rank];

    Cycle ready = now;
    ready = std::max(ready, b.lastAct + t.tRC);
    ready = std::max(ready, b.lastPre + t.tRP);
    ready = std::max(ready, r.lastActByBg[c.bankGroup] + t.tRRD_L);
    ready = std::max(ready, r.lastActAny + t.tRRD_S);
    ready = std::max(ready, r.refreshUntil);
    // FAW: at most 4 ACTs per rank in any tFAW window.
    if (r.actWindow.size() >= 4)
        ready = std::max(ready, r.actWindow.front() + t.tFAW);
    return ready;
}

Cycle
DramChannel::earliestPre(const DramCoord &c, Cycle now) const
{
    const auto &t = cfg_.timings;
    const auto &b = bank(c);
    SECNDP_ASSERT(b.open, "PRE to closed bank");

    Cycle ready = now;
    ready = std::max(ready, b.lastAct + t.tRAS);
    ready = std::max(ready, b.lastRd + t.tRTP);
    ready = std::max(ready, b.lastWrDataEnd + t.tWR);
    return ready;
}

Cycle
DramChannel::earliestRd(const DramCoord &c, Cycle now) const
{
    const auto &t = cfg_.timings;
    const auto &b = bank(c);
    SECNDP_ASSERT(rowOpen(c), "RD to wrong/closed row");
    const auto &r = ranks_[c.rank];

    Cycle ready = now;
    ready = std::max(ready, b.lastAct + t.tRCD);
    ready = std::max(ready, r.lastRdByBg[c.bankGroup] + t.tCCD_L);
    ready = std::max(ready, r.lastRdAny + t.tCCD_S);
    ready = std::max(ready, r.lastWrByBg[c.bankGroup] + t.tCCD_L);
    ready = std::max(ready, r.lastWrAny + t.tCCD_S);
    ready = std::max(ready, r.lastWrDataEnd + t.tWTR);
    return ready;
}

Cycle
DramChannel::earliestWr(const DramCoord &c, Cycle now) const
{
    const auto &t = cfg_.timings;
    const auto &b = bank(c);
    SECNDP_ASSERT(rowOpen(c), "WR to wrong/closed row");
    const auto &r = ranks_[c.rank];

    Cycle ready = now;
    ready = std::max(ready, b.lastAct + t.tRCD);
    ready = std::max(ready, r.lastWrByBg[c.bankGroup] + t.tCCD_L);
    ready = std::max(ready, r.lastWrAny + t.tCCD_S);
    ready = std::max(ready, r.lastRdByBg[c.bankGroup] + t.tCCD_L);
    ready = std::max(ready, r.lastRdAny + t.tCCD_S);
    return ready;
}

void
DramChannel::issueAct(const DramCoord &c, Cycle at)
{
    SECNDP_ASSERT(at >= earliestAct(c, at), "illegal ACT at %ld", at);
    auto &b = bank(c);
    auto &r = ranks_[c.rank];
    b.open = true;
    b.openRow = c.row;
    b.lastAct = at;
    r.lastActAny = at;
    r.lastActByBg[c.bankGroup] = at;
    r.actWindow.push_back(at);
    if (r.actWindow.size() > 4)
        r.actWindow.pop_front();
    // `acts` / `reads` / `writes` are Sampler probes (row_hit_rate
    // series): renaming them breaks the time-series contract.
    ++stats_.counter("acts");
}

void
DramChannel::issuePre(const DramCoord &c, Cycle at)
{
    SECNDP_ASSERT(at >= earliestPre(c, at), "illegal PRE at %ld", at);
    auto &b = bank(c);
    b.open = false;
    b.lastPre = at;
    ++stats_.counter("pres");
    // Row-buffer residency: how long the row stayed open. Long tails
    // here mean the open-page policy is paying off (or rows linger).
    stats_.histogram("row_open_cycles").sample(
        static_cast<double>(at - b.lastAct));
}

Cycle
DramChannel::issueRd(const DramCoord &c, Cycle at)
{
    SECNDP_ASSERT(at >= earliestRd(c, at), "illegal RD at %ld", at);
    const auto &t = cfg_.timings;
    auto &b = bank(c);
    auto &r = ranks_[c.rank];
    b.lastRd = at;
    r.lastRdAny = at;
    r.lastRdByBg[c.bankGroup] = at;
    ++stats_.counter("reads");
    return at + t.tCL + t.tBL;
}

bool
DramChannel::refreshDue(unsigned rank, Cycle now) const
{
    return now >= ranks_[rank].refreshDue;
}

std::optional<DramCoord>
DramChannel::openBankIn(unsigned rank) const
{
    const auto &geo = cfg_.geometry;
    for (unsigned fb = 0; fb < geo.banksPerRank(); ++fb) {
        const auto &b = banks_[rank * geo.banksPerRank() + fb];
        if (b.open) {
            DramCoord c;
            c.rank = rank;
            c.bankGroup = fb / geo.banksPerGroup;
            c.bank = fb % geo.banksPerGroup;
            c.row = b.openRow;
            return c;
        }
    }
    return std::nullopt;
}

Cycle
DramChannel::earliestRefresh(unsigned rank, Cycle now) const
{
    const auto &t = cfg_.timings;
    const auto &geo = cfg_.geometry;
    Cycle ready = now;
    for (unsigned fb = 0; fb < geo.banksPerRank(); ++fb) {
        const auto &b = banks_[rank * geo.banksPerRank() + fb];
        ready = std::max(ready, b.lastPre + t.tRP);
        // RAS/RTP/WR constraints end in PRE; banks must be closed.
    }
    return ready;
}

void
DramChannel::issueRefresh(unsigned rank, Cycle at)
{
    const auto &t = cfg_.timings;
    SECNDP_ASSERT(!openBankIn(rank).has_value(),
                  "REF with open banks in rank %u", rank);
    auto &r = ranks_[rank];
    // Respect precharge recovery of every bank in the rank.
    const auto &geo = cfg_.geometry;
    for (unsigned fb = 0; fb < geo.banksPerRank(); ++fb) {
        const auto &b = banks_[rank * geo.banksPerRank() + fb];
        SECNDP_ASSERT(at >= b.lastPre + t.tRP,
                      "REF inside tRP of bank %u", fb);
    }
    r.refreshUntil = at + t.tRFC;
    r.refreshDue = at + t.tREFI;
    ++stats_.counter("refreshes");
}

Cycle
DramChannel::issueWr(const DramCoord &c, Cycle at)
{
    SECNDP_ASSERT(at >= earliestWr(c, at), "illegal WR at %ld", at);
    const auto &t = cfg_.timings;
    auto &b = bank(c);
    auto &r = ranks_[c.rank];
    const Cycle data_end = at + t.tCWL + t.tBL;
    b.lastWrDataEnd = data_end;
    r.lastWrAny = at;
    r.lastWrByBg[c.bankGroup] = at;
    r.lastWrDataEnd = data_end;
    ++stats_.counter("writes");
    return data_end;
}

} // namespace secndp
