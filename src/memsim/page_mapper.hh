/**
 * @file
 * OS-style virtual-to-physical page mapping (paper section VI-B).
 *
 * The paper's methodology applies "a standard page mapping method" in
 * which the OS picks a random free physical page for each logical
 * page frame. Because rank bits sit above the page offset, this
 * randomization is what scatters embedding-table rows across ranks
 * and creates the rank-level load imbalance that caps NDP speedup on
 * irregular workloads.
 */

#ifndef SECNDP_MEMSIM_PAGE_MAPPER_HH
#define SECNDP_MEMSIM_PAGE_MAPPER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"

namespace secndp {

/** Random-free-page virtual memory mapper. */
class PageMapper
{
  public:
    /**
     * @param phys_bytes size of simulated physical memory
     * @param page_bytes page size (default 4 KB)
     * @param seed RNG seed for the free-list shuffle order
     */
    PageMapper(std::uint64_t phys_bytes, std::uint64_t page_bytes = 4096,
               std::uint64_t seed = Rng::defaultSeed);

    /**
     * Translate a virtual address; allocates a random free physical
     * page on first touch of each virtual page (demand paging).
     */
    std::uint64_t translate(std::uint64_t vaddr);

    /** Pre-touch a contiguous virtual range. */
    void populate(std::uint64_t vaddr, std::uint64_t len);

    std::uint64_t pageBytes() const { return pageBytes_; }
    std::uint64_t mappedPages() const { return pageTable_.size(); }
    std::uint64_t freePages() const
    {
        return totalPages_ - pageTable_.size();
    }

  private:
    std::uint64_t allocPhysPage();

    std::uint64_t pageBytes_;
    std::uint64_t totalPages_;
    Rng rng_;
    /** Lazily-shuffled free list (Fisher-Yates as we draw). */
    std::vector<std::uint32_t> freeList_;
    std::uint64_t drawn_ = 0;
    std::unordered_map<std::uint64_t, std::uint64_t> pageTable_;
};

} // namespace secndp

#endif // SECNDP_MEMSIM_PAGE_MAPPER_HH
