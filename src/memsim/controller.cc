#include "memsim/controller.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/sampler.hh"
#include "common/trace_event.hh"

namespace secndp {

MemoryController::MemoryController(DramChannel &channel, unsigned window)
    : channel_(channel), window_(window), stats_("ctrl")
{
    SECNDP_ASSERT(window > 0, "zero scheduling window");
    mapper_ = std::make_unique<AddressMapper>(channel.config().geometry);
    const auto &geo = channel.config().geometry;
    servedRanks_.assign(
        static_cast<std::size_t>(geo.pseudoChannels) * geo.ranks, 0);
}

unsigned
MemoryController::puIndex(const DramCoord &c) const
{
    return c.pseudoChannel * channel_.config().geometry.ranks + c.rank;
}

std::uint32_t
MemoryController::traceTrack()
{
#if SECNDP_TRACING
    if (traceTrack_ == 0)
        traceTrack_ = Tracer::instance().newTrack("ctrl.bus");
#endif
    return traceTrack_;
}

void
MemoryController::enqueue(const MemRequest &req, Cycle now)
{
    Entry e;
    e.req = req;
    e.coord = mapper_->decode(mapper_->lineAddr(req.addr));
    e.arrived = now;
    servedRanks_[puIndex(e.coord)] = 1;
    if (queue_.size() < window_)
        queue_.push_back(e);
    else
        backlog_.push_back(e);
    ++pendingCount_;
    ++stats_.counter("requests");
    stats_.histogram("queue_occupancy").sample(
        static_cast<double>(pendingCount_));
    SECNDP_TRACE_COUNTER("memsim", "queue", traceTrack(), now,
                         static_cast<double>(pendingCount_));
}

void
MemoryController::refillWindow()
{
    while (queue_.size() < window_ && !backlog_.empty()) {
        queue_.push_back(backlog_.front());
        backlog_.pop_front();
    }
}

Cycle
MemoryController::busReadyFor(const DramCoord &c, Cycle cmd_cycle,
                              bool write) const
{
    const auto &t = channel_.config().timings;
    const Cycle data_lat = write ? t.tCWL : t.tCL;
    Cycle data_start = cmd_cycle + data_lat;
    Cycle bus_ok = busFreeAt_;
    if (lastBurstPu_ >= 0 &&
        lastBurstPu_ != static_cast<int>(puIndex(c)))
        bus_ok += t.tRTRS;
    if (data_start >= bus_ok)
        return cmd_cycle;
    // Delay the command so its burst starts when the bus frees.
    return bus_ok - data_lat;
}

bool
MemoryController::tryIssue(Entry &e, Cycle now, Cycle &next_hint)
{
    const auto &t = channel_.config().timings;

    if (channel_.rowOpen(e.coord)) {
        // Row hit: issue the column command when device + bus allow.
        const Cycle dev_ready =
            e.req.write ? channel_.earliestWr(e.coord, now)
                        : channel_.earliestRd(e.coord, now);
        const Cycle ready =
            std::max(dev_ready, busReadyFor(e.coord, dev_ready,
                                            e.req.write));
        if (ready > now) {
            next_hint = std::min(next_hint, ready);
            return false;
        }
        const Cycle done = e.req.write ? channel_.issueWr(e.coord, now)
                                       : channel_.issueRd(e.coord, now);
        busFreeAt_ = done;
        lastBurstPu_ = static_cast<int>(puIndex(e.coord));
        stats_.counter(e.req.write ? "wr_bursts" : "rd_bursts") += 1;
        // `bus_busy_cycles` is a Sampler probe (bus_util series):
        // renaming it breaks the time-series contract.
        stats_.counter("bus_busy_cycles") += t.tBL;
        stats_.histogram("req_latency").sample(
            static_cast<double>(done - e.arrived));
        if (trace_) {
            trace_->push_back({e.req.write ? DramCmd::Wr : DramCmd::Rd,
                               e.coord, now});
        }
        // The burst itself occupies the data bus for the final tBL
        // cycles of [now, done); bursts on one bus never overlap, so
        // a complete event per burst draws bus utilization directly.
        SECNDP_TRACE_COMPLETE("memsim", e.req.write ? "wr" : "rd",
                              traceTrack(), done - t.tBL, t.tBL);
        if (complete_)
            complete_(e.req, done);
        --pendingCount_;
        issuedColumn_ = true;
        return true;
    }

    if (channel_.anyRowOpen(e.coord)) {
        // Row conflict: precharge.
        const Cycle ready = channel_.earliestPre(e.coord, now);
        if (ready > now) {
            next_hint = std::min(next_hint, ready);
            return false;
        }
        channel_.issuePre(e.coord, now);
        ++stats_.counter("row_conflicts");
        if (trace_)
            trace_->push_back({DramCmd::Pre, e.coord, now});
        return true;
    }

    // Bank closed: activate.
    const Cycle ready = channel_.earliestAct(e.coord, now);
    if (ready > now) {
        next_hint = std::min(next_hint, ready);
        return false;
    }
    channel_.issueAct(e.coord, now);
    if (trace_)
        trace_->push_back({DramCmd::Act, e.coord, now});
    return true;
}

bool
MemoryController::serviceRefresh(unsigned pch, unsigned rank,
                                 Cycle now, Cycle &next_hint)
{
    if (const auto open = channel_.refreshBlockingBank(pch, rank)) {
        // Close the banks the refresh needs (one PRE per tick).
        const Cycle ready = channel_.earliestPre(*open, now);
        if (ready > now) {
            next_hint = std::min(next_hint, ready);
            return false;
        }
        channel_.issuePre(*open, now);
        if (trace_)
            trace_->push_back({DramCmd::Pre, *open, now});
        return true;
    }
    const Cycle ready = channel_.earliestRefresh(pch, rank, now);
    if (ready > now) {
        next_hint = std::min(next_hint, ready);
        return false;
    }
    const bool same_bank = channel_.config().timings.refresh ==
                           RefreshMode::SameBank;
    const unsigned target = channel_.issueRefresh(pch, rank, now);
    debugLog("REF%s pch %u rank %u bank %u", same_bank ? "sb" : "",
             pch, rank, target);
    ++stats_.counter("refreshes");
    if (trace_) {
        DramCoord c;
        c.pseudoChannel = pch;
        c.rank = rank;
        c.bank = target; ///< REFsb bank address (0 for REFab)
        trace_->push_back(
            {same_bank ? DramCmd::RefSb : DramCmd::Ref, c, now});
    }
    return true;
}

Cycle
MemoryController::tick(Cycle now)
{
    refillWindow();
    if (queue_.empty())
        return idleForever;

    Cycle next_hint = idleForever;
    issuedColumn_ = false;

    // Refresh duty comes first: an overdue (pseudo-channel, rank)
    // blocks new work until its REF is in flight.
    const unsigned n_ranks = channel_.config().geometry.ranks;
    for (unsigned pu = 0; pu < servedRanks_.size(); ++pu) {
        const unsigned pch = pu / n_ranks;
        const unsigned rank = pu % n_ranks;
        if (!servedRanks_[pu] || !channel_.refreshDue(pch, rank, now))
            continue;
        if (serviceRefresh(pch, rank, now, next_hint))
            return now + 1;
        return next_hint == idleForever ? now + 1 : next_hint;
    }

    // Pass 1 (FR): row hits, oldest first.
    for (std::size_t i = 0; i < queue_.size(); ++i) {
        if (!channel_.rowOpen(queue_[i].coord))
            continue;
        if (tryIssue(queue_[i], now, next_hint)) {
            if (issuedColumn_)
                queue_.erase(queue_.begin() + i);
            return now + 1;
        }
    }

    // Pass 2 (FCFS): oldest request drives ACT/PRE; also allow younger
    // requests targeting *other* banks to open their rows (bank-level
    // parallelism), as real schedulers do.
    for (std::size_t i = 0; i < queue_.size(); ++i) {
        if (channel_.rowOpen(queue_[i].coord))
            continue; // handled in pass 1
        // Avoid thrashing: only the oldest request per bank may
        // precharge/activate.
        bool oldest_for_bank = true;
        for (std::size_t k = 0; k < i; ++k) {
            if (queue_[k].coord.pseudoChannel ==
                    queue_[i].coord.pseudoChannel &&
                queue_[k].coord.rank == queue_[i].coord.rank &&
                queue_[k].coord.flatBank(channel_.config().geometry) ==
                    queue_[i].coord.flatBank(channel_.config().geometry)) {
                oldest_for_bank = false;
                break;
            }
        }
        if (!oldest_for_bank)
            continue;
        if (tryIssue(queue_[i], now, next_hint))
            return now + 1;
    }

    return next_hint == idleForever ? now + 1 : next_hint;
}

Cycle
MemoryController::drain(Cycle from)
{
    Cycle now = from;
    Cycle last_data = from;
    // Track the true completion (end of last burst), not just the
    // last command issue.
    auto prev_cb = complete_;
    Cycle finish = from;
    complete_ = [&](const MemRequest &req, Cycle done) {
        finish = std::max(finish, done);
        if (prev_cb)
            prev_cb(req, done);
    };
    auto &sampler = Sampler::instance();
    while (busy()) {
        logSetCycle(now);
        sampler.tick(now);
        const Cycle next = tick(now);
        SECNDP_ASSERT(next > now || next == idleForever,
                      "controller made no progress at %ld", now);
        now = (next == idleForever) ? now + 1 : next;
    }
    logClearCycle();
    complete_ = prev_cb;
    (void)last_data;
    return std::max(finish, now);
}

} // namespace secndp
