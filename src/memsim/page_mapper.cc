#include "memsim/page_mapper.hh"

#include "common/logging.hh"

namespace secndp {

PageMapper::PageMapper(std::uint64_t phys_bytes, std::uint64_t page_bytes,
                       std::uint64_t seed)
    : pageBytes_(page_bytes), totalPages_(phys_bytes / page_bytes),
      rng_(seed)
{
    SECNDP_ASSERT(phys_bytes % page_bytes == 0,
                  "physical size not page aligned");
    SECNDP_ASSERT(totalPages_ <= UINT32_MAX,
                  "too many pages for 32-bit free list");
    freeList_.resize(totalPages_);
    for (std::uint64_t i = 0; i < totalPages_; ++i)
        freeList_[i] = static_cast<std::uint32_t>(i);
}

std::uint64_t
PageMapper::allocPhysPage()
{
    SECNDP_ASSERT(drawn_ < totalPages_, "out of physical pages");
    // Incremental Fisher-Yates: uniform over remaining free pages.
    const std::uint64_t j =
        drawn_ + rng_.nextBounded(totalPages_ - drawn_);
    std::swap(freeList_[drawn_], freeList_[j]);
    return freeList_[drawn_++];
}

std::uint64_t
PageMapper::translate(std::uint64_t vaddr)
{
    const std::uint64_t vpage = vaddr / pageBytes_;
    auto it = pageTable_.find(vpage);
    if (it == pageTable_.end())
        it = pageTable_.emplace(vpage, allocPhysPage()).first;
    return it->second * pageBytes_ + vaddr % pageBytes_;
}

void
PageMapper::populate(std::uint64_t vaddr, std::uint64_t len)
{
    const std::uint64_t first = vaddr / pageBytes_;
    const std::uint64_t last = (vaddr + len - 1) / pageBytes_;
    for (std::uint64_t p = first; p <= last; ++p)
        translate(p * pageBytes_);
}

} // namespace secndp
