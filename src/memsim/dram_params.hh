/**
 * @file
 * Data-driven DRAM device timing and geometry parameters.
 *
 * The structs here are a *spec*, not a generation: every field is
 * plain data, and the channel/controller FSMs consult only the spec,
 * so a new device generation is a new table, not new code. Named
 * generation tables (`ddr4-2400`, `ddr5-4800`, `ddr5-4800-pch`) live
 * in memsim/dram_spec.*.
 *
 * Defaults reproduce paper Table II: DDR4-2400, 8 GB ranks, and the
 * listed timing constraints (all in memory-clock cycles at 1200 MHz,
 * tCK = 0.8333 ns; the data bus moves 8 bytes per beat, 2 beats per
 * cycle, so one 64-byte line takes tBL = 4 cycles). A
 * default-constructed DramConfig IS the paper's configuration --
 * tests assert it stays equal to the named `ddr4-2400` table.
 */

#ifndef SECNDP_MEMSIM_DRAM_PARAMS_HH
#define SECNDP_MEMSIM_DRAM_PARAMS_HH

#include <cstdint>
#include <string>

namespace secndp {

/**
 * Refresh scheme of the generation.
 *
 * AllBank: DDR4 REFab -- one REF blocks the whole rank for tRFC.
 * SameBank: DDR5 REFsb -- a REF names one bank address and blocks
 * only that bank in every bank group for tRFCsb, issued every
 * tREFIsb per bank address (banks keep serving in between).
 */
enum class RefreshMode
{
    AllBank,
    SameBank,
};

/** Timing constraints, in memory-clock cycles (Table II defaults). */
struct DramTimings
{
    unsigned tRC = 55;   ///< ACT -> ACT, same bank
    unsigned tRCD = 16;  ///< ACT -> RD/WR, same bank
    unsigned tCL = 16;   ///< RD -> data start
    unsigned tRP = 16;   ///< PRE -> ACT, same bank
    unsigned tBL = 4;    ///< burst duration on the data bus
    unsigned tCCD_S = 4; ///< RD -> RD, same rank, different bank group
    unsigned tCCD_L = 6; ///< RD -> RD, same rank, same bank group
    unsigned tRRD_S = 4; ///< ACT -> ACT, same rank, diff bank group
    unsigned tRRD_L = 6; ///< ACT -> ACT, same rank, same bank group
    unsigned tFAW = 26;  ///< window for at most 4 ACTs per rank

    // Derived / auxiliary constraints (standard DDR4 values; not in
    // Table II but required for a legal command stream).
    unsigned tRAS = 39;  ///< ACT -> PRE, same bank (tRC - tRP)
    unsigned tRTP = 8;   ///< RD -> PRE, same bank
    unsigned tRTRS = 2;  ///< rank-to-rank data bus turnaround
    unsigned tCWL = 12;  ///< WR -> data start
    unsigned tWR = 18;   ///< end of write data -> PRE
    unsigned tWTR = 9;   ///< end of write data -> RD, same rank

    // Refresh (DDR4 8 Gb devices at 1200 MHz memory clock).
    unsigned tREFI = 9360; ///< average refresh interval (7.8 us)
    unsigned tRFC = 420;   ///< refresh cycle time (~350 ns)

    /** Refresh scheme; SameBank generations use the *sb values. */
    RefreshMode refresh = RefreshMode::AllBank;
    unsigned tREFIsb = 0; ///< per-bank-address REFsb interval
    unsigned tRFCsb = 0;  ///< same-bank refresh cycle time
};

/** Channel / pseudo-channel / rank / bank organization. */
struct DramGeometry
{
    unsigned channels = 1;     ///< memory channels (Table II uses 1)
    unsigned ranks = 8;        ///< NDP_rank in the paper's sweeps
    unsigned bankGroups = 4;
    unsigned banksPerGroup = 4;
    unsigned rowBytes = 8192;  ///< row buffer (page) size
    unsigned lineBytes = 64;   ///< cache line / burst size
    std::uint64_t rankBytes = 8ULL << 30; ///< 8 GB per rank

    /**
     * Independent sub-channels per channel (DDR5: 2). Each
     * pseudo-channel has its own data bus and its own per-bank FSMs,
     * but all pseudo-channels of a channel share one command bus.
     * A rank's capacity (rankBytes) is split evenly across them.
     */
    unsigned pseudoChannels = 1;
    /** Data-bus width of ONE pseudo-channel, bytes per beat
     *  (DDR4 unified channel: 8; DDR5 pseudo-channel: 4). */
    unsigned busBytes = 8;
    /** Physical DIMMs sharing the channel (NDP controllers are
     *  instantiated per DIMM x pseudo-channel x rank-per-DIMM, which
     *  flattens to per pseudo-channel x rank). */
    unsigned dimmsPerChannel = 1;

    unsigned banksPerRank() const { return bankGroups * banksPerGroup; }
    unsigned linesPerRow() const { return rowBytes / lineBytes; }
    unsigned ranksPerDimm() const { return ranks / dimmsPerChannel; }
    /** Rows per bank of one pseudo-channel's slice of a rank. */
    std::uint64_t rowsPerBank() const
    {
        return rankBytes / pseudoChannels / banksPerRank() / rowBytes;
    }
    /** Capacity of one channel. */
    std::uint64_t channelBytes() const { return rankBytes * ranks; }
    std::uint64_t totalBytes() const
    {
        return channelBytes() * channels;
    }
};

/** Clocking: DDR4-2400 -> 1200 MHz memory clock. */
struct DramClock
{
    double freqGhz = 1.2;

    double nsPerCycle() const { return 1.0 / freqGhz; }
    double cyclesFromNs(double ns) const { return ns * freqGhz; }

    /** Peak data bandwidth of one `busBytes`-wide DDR bus, GB/s. */
    double peakGBps(unsigned busBytes = 8) const
    {
        return freqGhz * 2.0 * busBytes;
    }
};

/** Everything a channel model needs. */
struct DramConfig
{
    DramTimings timings;
    DramGeometry geometry;
    DramClock clock;
    /** Generation table this config came from (run metadata). */
    std::string generation = "ddr4-2400";
};

} // namespace secndp

#endif // SECNDP_MEMSIM_DRAM_PARAMS_HH
