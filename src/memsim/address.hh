/**
 * @file
 * Physical address <-> DRAM coordinate mapping.
 *
 * Bit layout (low to high):
 *   [0, lg(line))               line offset
 *   [.., +lg(linesPerRow))      column (line index within a row)
 *   [.., +lg(bankGroups))       bank group
 *   [.., +lg(banksPerGroup))    bank
 *   [.., +lg(ranks))            rank
 *   [.., +lg(pseudoChannels))   pseudo-channel
 *   [.., +lg(channels))         channel
 *   [.., +lg(rowsPerBank))      row
 *
 * Rank, pseudo-channel, and channel bits sit above the 4 KB page
 * offset, so each OS page lives entirely in one (channel,
 * pseudo-channel, rank): that is what gives rank-NDP PUs page-local
 * work and makes the OS page mapper (memsim/page_mapper) the source
 * of PU-level load (im)balance, as in the paper's methodology -- and
 * it is also what interleaves pages across DDR5 pseudo-channels so
 * per-pseudo-channel NDP controllers get parallel work. (Coarse
 * channel striping also keeps multi-line rows on one sub-channel;
 * fine per-line interleave would split every 128 B embedding row and
 * double its activations.)
 */

#ifndef SECNDP_MEMSIM_ADDRESS_HH
#define SECNDP_MEMSIM_ADDRESS_HH

#include <cstdint>

#include "memsim/dram_params.hh"

namespace secndp {

/** Decoded DRAM coordinates of a physical address. */
struct DramCoord
{
    unsigned channel = 0;
    unsigned pseudoChannel = 0;
    unsigned rank = 0;
    unsigned bankGroup = 0;
    unsigned bank = 0;      ///< within the bank group
    std::uint64_t row = 0;
    unsigned column = 0;    ///< line index within the row

    /** Flat bank index within the (pseudo-channel, rank). */
    unsigned
    flatBank(const DramGeometry &geo) const
    {
        return bankGroup * geo.banksPerGroup + bank;
    }

    bool operator==(const DramCoord &o) const = default;
};

/** Maps physical byte addresses to DRAM coordinates and back. */
class AddressMapper
{
  public:
    explicit AddressMapper(const DramGeometry &geo);

    /** Decode a physical byte address. */
    DramCoord decode(std::uint64_t addr) const;

    /** Encode coordinates back to the line-aligned byte address. */
    std::uint64_t encode(const DramCoord &coord) const;

    /** Line-align an address. */
    std::uint64_t lineAddr(std::uint64_t addr) const
    {
        return addr & ~std::uint64_t{geo_.lineBytes - 1};
    }

    const DramGeometry &geometry() const { return geo_; }

  private:
    DramGeometry geo_;
    unsigned offsetBits_;
    unsigned channelBits_;
    unsigned pchBits_;
    unsigned columnBits_;
    unsigned bgBits_;
    unsigned bankBits_;
    unsigned rankBits_;
    unsigned rowBits_;
};

} // namespace secndp

#endif // SECNDP_MEMSIM_ADDRESS_HH
