#include "memsim/trace_checker.hh"

#include <cstdio>
#include <map>

namespace secndp {

namespace {

struct Key
{
    unsigned rank, bank; // flat bank
    bool operator<(const Key &o) const
    {
        return rank != o.rank ? rank < o.rank : bank < o.bank;
    }
};

std::string
fmt(const char *rule, const CmdTraceEntry &e, Cycle prev, unsigned need)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s violated at cycle %lld (rank %u bg %u bank %u "
                  "row %llu): prev %lld, need +%u",
                  rule, static_cast<long long>(e.cycle), e.coord.rank,
                  e.coord.bankGroup, e.coord.bank,
                  static_cast<unsigned long long>(e.coord.row),
                  static_cast<long long>(prev), need);
    return buf;
}

} // namespace

std::vector<std::string>
checkCommandTrace(const DramConfig &cfg,
                  const std::vector<CmdTraceEntry> &trace,
                  bool shared_bus)
{
    const auto &t = cfg.timings;
    const auto &geo = cfg.geometry;
    std::vector<std::string> bad;

    struct BankHist
    {
        std::vector<Cycle> acts, pres, rds;
        std::vector<Cycle> wrDataEnds;
        bool open = false;
        std::uint64_t row = 0;
    };
    std::map<Key, BankHist> banks;
    // Per (rank, bg) and per rank command histories.
    std::map<std::pair<unsigned, unsigned>, std::vector<Cycle>> actsByBg,
        colByBg;
    std::map<unsigned, std::vector<Cycle>> actsByRank, colByRank;
    std::map<unsigned, Cycle> refreshUntil; ///< rank -> REF end
    // Data bus bursts: (start, end, rank).
    struct Burst
    {
        Cycle start, end;
        unsigned rank;
    };
    std::vector<Burst> bursts;

    Cycle prev_cycle = -(Cycle{1} << 40);
    auto checkGap = [&](const char *rule, const std::vector<Cycle> &hist,
                        Cycle now, unsigned need,
                        const CmdTraceEntry &e) {
        if (!hist.empty() && now - hist.back() < static_cast<Cycle>(need))
            bad.push_back(fmt(rule, e, hist.back(), need));
    };

    for (const auto &e : trace) {
        if (e.cycle < prev_cycle)
            bad.push_back(fmt("cycle-order", e, prev_cycle, 0));
        prev_cycle = e.cycle;

        const Key key{e.coord.rank, e.coord.flatBank(geo)};
        auto &b = banks[key];
        const auto bg_key = std::make_pair(e.coord.rank,
                                           e.coord.bankGroup);

        switch (e.cmd) {
          case DramCmd::Act: {
            if (b.open)
                bad.push_back(fmt("ACT-on-open-bank", e, 0, 0));
            if (auto it = refreshUntil.find(e.coord.rank);
                it != refreshUntil.end() && e.cycle < it->second)
                bad.push_back(fmt("tRFC", e, it->second, t.tRFC));
            checkGap("tRC", b.acts, e.cycle, t.tRC, e);
            checkGap("tRP", b.pres, e.cycle, t.tRP, e);
            checkGap("tRRD_L", actsByBg[bg_key], e.cycle, t.tRRD_L, e);
            checkGap("tRRD_S", actsByRank[e.coord.rank], e.cycle,
                     t.tRRD_S, e);
            auto &ra = actsByRank[e.coord.rank];
            if (ra.size() >= 4 &&
                e.cycle - ra[ra.size() - 4] < static_cast<Cycle>(t.tFAW))
                bad.push_back(fmt("tFAW", e, ra[ra.size() - 4], t.tFAW));
            b.acts.push_back(e.cycle);
            actsByBg[bg_key].push_back(e.cycle);
            ra.push_back(e.cycle);
            b.open = true;
            b.row = e.coord.row;
            break;
          }
          case DramCmd::Pre: {
            if (!b.open)
                bad.push_back(fmt("PRE-on-closed-bank", e, 0, 0));
            checkGap("tRAS", b.acts, e.cycle, t.tRAS, e);
            checkGap("tRTP", b.rds, e.cycle, t.tRTP, e);
            if (!b.wrDataEnds.empty() &&
                e.cycle - b.wrDataEnds.back() <
                    static_cast<Cycle>(t.tWR))
                bad.push_back(fmt("tWR", e, b.wrDataEnds.back(), t.tWR));
            b.pres.push_back(e.cycle);
            b.open = false;
            break;
          }
          case DramCmd::Rd:
          case DramCmd::Wr: {
            const bool is_wr = (e.cmd == DramCmd::Wr);
            if (!b.open || b.row != e.coord.row)
                bad.push_back(fmt("COL-on-wrong-row", e, 0, 0));
            checkGap("tRCD", b.acts, e.cycle, t.tRCD, e);
            checkGap("tCCD_L", colByBg[bg_key], e.cycle, t.tCCD_L, e);
            checkGap("tCCD_S", colByRank[e.coord.rank], e.cycle,
                     t.tCCD_S, e);
            const Cycle data_start =
                e.cycle + (is_wr ? t.tCWL : t.tCL);
            const Cycle data_end = data_start + t.tBL;
            if (shared_bus && !bursts.empty()) {
                const auto &last = bursts.back();
                Cycle need = last.end;
                if (last.rank != e.coord.rank)
                    need += t.tRTRS;
                if (data_start < need)
                    bad.push_back(fmt("data-bus-overlap", e, last.end,
                                      t.tRTRS));
            }
            bursts.push_back({data_start, data_end, e.coord.rank});
            colByBg[bg_key].push_back(e.cycle);
            colByRank[e.coord.rank].push_back(e.cycle);
            if (is_wr)
                b.wrDataEnds.push_back(data_end);
            else
                b.rds.push_back(e.cycle);
            break;
          }
          case DramCmd::Ref: {
            // Every bank in the rank must be precharged (and past
            // its tRP recovery).
            for (const auto &kv : banks) {
                if (kv.first.rank != e.coord.rank)
                    continue;
                if (kv.second.open)
                    bad.push_back(fmt("REF-with-open-bank", e, 0, 0));
                if (!kv.second.pres.empty() &&
                    e.cycle - kv.second.pres.back() <
                        static_cast<Cycle>(t.tRP))
                    bad.push_back(
                        fmt("REF-inside-tRP", e,
                            kv.second.pres.back(), t.tRP));
            }
            refreshUntil[e.coord.rank] = e.cycle + t.tRFC;
            break;
          }
        }
    }
    return bad;
}

} // namespace secndp
