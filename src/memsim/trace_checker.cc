#include "memsim/trace_checker.hh"

#include <cstdio>
#include <map>

namespace secndp {

namespace {

struct Key
{
    unsigned pch, rank, bank; // flat bank
    bool operator<(const Key &o) const
    {
        if (pch != o.pch)
            return pch < o.pch;
        return rank != o.rank ? rank < o.rank : bank < o.bank;
    }
};

/** (pseudo-channel, rank) pair key. */
using RankKey = std::pair<unsigned, unsigned>;
/** (pseudo-channel, rank, bank group) key. */
struct BgKey
{
    unsigned pch, rank, bg;
    bool operator<(const BgKey &o) const
    {
        if (pch != o.pch)
            return pch < o.pch;
        return rank != o.rank ? rank < o.rank : bg < o.bg;
    }
};

std::string
fmt(const char *rule, const CmdTraceEntry &e, Cycle prev, unsigned need)
{
    char buf[176];
    std::snprintf(buf, sizeof(buf),
                  "%s violated at cycle %lld (pch %u rank %u bg %u "
                  "bank %u row %llu): prev %lld, need +%u",
                  rule, static_cast<long long>(e.cycle),
                  e.coord.pseudoChannel, e.coord.rank,
                  e.coord.bankGroup, e.coord.bank,
                  static_cast<unsigned long long>(e.coord.row),
                  static_cast<long long>(prev), need);
    return buf;
}

} // namespace

std::vector<std::string>
checkCommandTrace(const DramConfig &cfg,
                  const std::vector<CmdTraceEntry> &trace,
                  bool shared_bus)
{
    const auto &t = cfg.timings;
    const auto &geo = cfg.geometry;
    const bool same_bank_ref = t.refresh == RefreshMode::SameBank;
    std::vector<std::string> bad;

    struct BankHist
    {
        std::vector<Cycle> acts, pres, rds;
        std::vector<Cycle> wrDataEnds;
        bool open = false;
        std::uint64_t row = 0;
        Cycle refreshUntil = -(Cycle{1} << 40); ///< REFsb block
    };
    std::map<Key, BankHist> banks;
    // Per (pch, rank, bg) and per (pch, rank) command histories.
    std::map<BgKey, std::vector<Cycle>> actsByBg, colByBg;
    std::map<RankKey, std::vector<Cycle>> actsByRank, colByRank;
    std::map<RankKey, Cycle> refreshUntil; ///< REFab: rank -> end
    // Data bus bursts: one independent data bus per pseudo-channel;
    // tRTRS applies between bursts of different (pch, rank) pairs on
    // the same bus.
    struct Burst
    {
        Cycle start, end;
        unsigned rank;
    };
    std::map<unsigned, Burst> lastBurst; ///< pch -> last burst
    // Shared command bus: at most one pseudo-channel may receive a
    // command per cycle (only constrained when the generation splits
    // the channel).
    Cycle lastCmdAt = -(Cycle{1} << 40);
    unsigned lastCmdPch = 0;

    Cycle prev_cycle = -(Cycle{1} << 40);
    auto checkGap = [&](const char *rule, const std::vector<Cycle> &hist,
                        Cycle now, unsigned need,
                        const CmdTraceEntry &e) {
        if (!hist.empty() && now - hist.back() < static_cast<Cycle>(need))
            bad.push_back(fmt(rule, e, hist.back(), need));
    };

    for (const auto &e : trace) {
        if (e.cycle < prev_cycle)
            bad.push_back(fmt("cycle-order", e, prev_cycle, 0));
        prev_cycle = e.cycle;

        if (geo.pseudoChannels > 1) {
            if (e.cycle == lastCmdAt &&
                e.coord.pseudoChannel != lastCmdPch)
                bad.push_back(
                    fmt("cmd-bus-overlap", e, lastCmdAt, 1));
            lastCmdAt = e.cycle;
            lastCmdPch = e.coord.pseudoChannel;
        }

        const Key key{e.coord.pseudoChannel, e.coord.rank,
                      e.coord.flatBank(geo)};
        auto &b = banks[key];
        const RankKey rank_key{e.coord.pseudoChannel, e.coord.rank};
        const BgKey bg_key{e.coord.pseudoChannel, e.coord.rank,
                           e.coord.bankGroup};

        switch (e.cmd) {
          case DramCmd::Act: {
            if (b.open)
                bad.push_back(fmt("ACT-on-open-bank", e, 0, 0));
            if (auto it = refreshUntil.find(rank_key);
                it != refreshUntil.end() && e.cycle < it->second)
                bad.push_back(fmt("tRFC", e, it->second, t.tRFC));
            if (e.cycle < b.refreshUntil)
                bad.push_back(
                    fmt("tRFCsb", e, b.refreshUntil, t.tRFCsb));
            checkGap("tRC", b.acts, e.cycle, t.tRC, e);
            checkGap("tRP", b.pres, e.cycle, t.tRP, e);
            checkGap("tRRD_L", actsByBg[bg_key], e.cycle, t.tRRD_L, e);
            checkGap("tRRD_S", actsByRank[rank_key], e.cycle,
                     t.tRRD_S, e);
            auto &ra = actsByRank[rank_key];
            if (ra.size() >= 4 &&
                e.cycle - ra[ra.size() - 4] < static_cast<Cycle>(t.tFAW))
                bad.push_back(fmt("tFAW", e, ra[ra.size() - 4], t.tFAW));
            b.acts.push_back(e.cycle);
            actsByBg[bg_key].push_back(e.cycle);
            ra.push_back(e.cycle);
            b.open = true;
            b.row = e.coord.row;
            break;
          }
          case DramCmd::Pre: {
            if (!b.open)
                bad.push_back(fmt("PRE-on-closed-bank", e, 0, 0));
            checkGap("tRAS", b.acts, e.cycle, t.tRAS, e);
            checkGap("tRTP", b.rds, e.cycle, t.tRTP, e);
            if (!b.wrDataEnds.empty() &&
                e.cycle - b.wrDataEnds.back() <
                    static_cast<Cycle>(t.tWR))
                bad.push_back(fmt("tWR", e, b.wrDataEnds.back(), t.tWR));
            b.pres.push_back(e.cycle);
            b.open = false;
            break;
          }
          case DramCmd::Rd:
          case DramCmd::Wr: {
            const bool is_wr = (e.cmd == DramCmd::Wr);
            if (!b.open || b.row != e.coord.row)
                bad.push_back(fmt("COL-on-wrong-row", e, 0, 0));
            checkGap("tRCD", b.acts, e.cycle, t.tRCD, e);
            checkGap("tCCD_L", colByBg[bg_key], e.cycle, t.tCCD_L, e);
            checkGap("tCCD_S", colByRank[rank_key], e.cycle,
                     t.tCCD_S, e);
            const Cycle data_start =
                e.cycle + (is_wr ? t.tCWL : t.tCL);
            const Cycle data_end = data_start + t.tBL;
            if (shared_bus) {
                auto it = lastBurst.find(e.coord.pseudoChannel);
                if (it != lastBurst.end()) {
                    const auto &last = it->second;
                    Cycle need = last.end;
                    if (last.rank != e.coord.rank)
                        need += t.tRTRS;
                    if (data_start < need)
                        bad.push_back(fmt("data-bus-overlap", e,
                                          last.end, t.tRTRS));
                }
            }
            lastBurst[e.coord.pseudoChannel] = {data_start, data_end,
                                                e.coord.rank};
            colByBg[bg_key].push_back(e.cycle);
            colByRank[rank_key].push_back(e.cycle);
            if (is_wr)
                b.wrDataEnds.push_back(data_end);
            else
                b.rds.push_back(e.cycle);
            break;
          }
          case DramCmd::Ref: {
            // REFab: every bank in the rank must be precharged (and
            // past its tRP recovery).
            for (const auto &kv : banks) {
                if (kv.first.pch != e.coord.pseudoChannel ||
                    kv.first.rank != e.coord.rank)
                    continue;
                if (kv.second.open)
                    bad.push_back(fmt("REF-with-open-bank", e, 0, 0));
                if (!kv.second.pres.empty() &&
                    e.cycle - kv.second.pres.back() <
                        static_cast<Cycle>(t.tRP))
                    bad.push_back(
                        fmt("REF-inside-tRP", e,
                            kv.second.pres.back(), t.tRP));
            }
            refreshUntil[rank_key] = e.cycle + t.tRFC;
            break;
          }
          case DramCmd::RefSb: {
            // REFsb: e.coord.bank is the refreshed bank address --
            // that bank in EVERY bank group of the (pch, rank) must
            // be precharged and past tRP, and is then blocked for
            // tRFCsb (other banks keep serving).
            if (!same_bank_ref)
                bad.push_back(
                    fmt("REFsb-in-allbank-generation", e, 0, 0));
            for (unsigned bg = 0; bg < geo.bankGroups; ++bg) {
                const Key k{e.coord.pseudoChannel, e.coord.rank,
                            bg * geo.banksPerGroup + e.coord.bank};
                auto &tb = banks[k];
                if (tb.open)
                    bad.push_back(
                        fmt("REFsb-with-open-bank", e, 0, 0));
                if (!tb.pres.empty() &&
                    e.cycle - tb.pres.back() <
                        static_cast<Cycle>(t.tRP))
                    bad.push_back(fmt("REFsb-inside-tRP", e,
                                      tb.pres.back(), t.tRP));
                tb.refreshUntil = e.cycle + t.tRFCsb;
            }
            break;
          }
        }
    }
    return bad;
}

} // namespace secndp
