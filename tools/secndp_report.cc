/**
 * @file
 * secndp_report: analyze and diff .stats.json sidecars written by
 * secndp_sim / the benchmarks.
 *
 *   secndp_report summary FILE|DIR...
 *       Pretty-print per-run counters, distribution percentiles and
 *       host phase wall-times. Directories are expanded to every
 *       *.stats.json inside (non-recursive).
 *
 *   secndp_report diff --baseline DIR [--thresholds FILE] RUN_DIR
 *       Compare each baseline sidecar against its same-named file in
 *       RUN_DIR under the watch rules (default
 *       DIR/thresholds.tsv). Exits 0 when clean, 1 when a watched
 *       metric regressed past its threshold (the CI perf gate), 3 on
 *       I/O or parse errors, 2 on usage errors.
 *
 *   secndp_report explain [STATS] --spans PATH
 *       Join per-request span logs / flight dumps against a serving
 *       sidecar: per-phase p50/p95/p99 latency attribution, tail
 *       cohorts with exemplar trace IDs, and a cross-check of the
 *       span-derived percentiles against serve.latency_ns. PATH is a
 *       file or a directory of *.spans.json / *.flight.json.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "report/report.hh"
#include "report/spans.hh"

namespace {

namespace fs = std::filesystem;
using namespace secndp::report;

void
printUsage(std::FILE *to, const char *argv0)
{
    std::fprintf(to,
                 "usage: %s summary FILE|DIR...\n"
                 "       %s diff --baseline DIR [--thresholds FILE] "
                 "RUN_DIR\n"
                 "       %s explain [STATS] --spans PATH\n"
                 "\n"
                 "subcommands:\n"
                 "  summary   print per-run stat tables from "
                 ".stats.json sidecars\n"
                 "  diff      gate RUN_DIR against baseline sidecars; "
                 "exit 1 on regression\n"
                 "  explain   per-phase p50/p95/p99 tail-latency "
                 "attribution from span logs\n"
                 "\n"
                 "diff options:\n"
                 "  --baseline DIR     directory of golden "
                 "*.stats.json (required)\n"
                 "  --thresholds FILE  watch rules; default "
                 "DIR/thresholds.tsv\n"
                 "\n"
                 "explain options:\n"
                 "  STATS              serving .stats.json to "
                 "cross-check percentiles against\n"
                 "  --spans PATH       span/flight file, or a "
                 "directory of *.spans.json /\n"
                 "                     *.flight.json (required)\n"
                 "\n"
                 "exit codes: 0 ok, 1 regression/mismatch, 2 usage, "
                 "3 I/O or parse error\n",
                 argv0, argv0, argv0);
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

/** Expand a summary operand: a dir becomes its *.stats.json files. */
bool
expandOperand(const std::string &arg, std::vector<std::string> &files)
{
    std::error_code ec;
    if (fs::is_directory(arg, ec)) {
        std::vector<std::string> found;
        for (const auto &entry : fs::directory_iterator(arg, ec)) {
            if (entry.is_regular_file() &&
                endsWith(entry.path().filename().string(),
                         ".stats.json"))
                found.push_back(entry.path().string());
        }
        if (ec) {
            std::cerr << "error: cannot list '" << arg
                      << "': " << ec.message() << "\n";
            return false;
        }
        if (found.empty()) {
            std::cerr << "error: no *.stats.json in '" << arg
                      << "'\n";
            return false;
        }
        std::sort(found.begin(), found.end());
        files.insert(files.end(), found.begin(), found.end());
        return true;
    }
    files.push_back(arg);
    return true;
}

int
cmdSummary(const std::vector<std::string> &args, const char *argv0)
{
    if (args.empty()) {
        printUsage(stderr, argv0);
        return 2;
    }
    std::vector<std::string> files;
    for (const auto &arg : args) {
        if (!expandOperand(arg, files))
            return 3;
    }
    bool first = true;
    for (const auto &file : files) {
        StatsReport report;
        std::string err;
        if (!loadStatsReport(file, report, &err)) {
            std::cerr << "error: " << err << "\n";
            return 3;
        }
        if (!first)
            std::cout << "\n";
        first = false;
        printSummary(std::cout, report);
    }
    return 0;
}

int
cmdDiff(const std::vector<std::string> &args, const char *argv0)
{
    std::string baseline, thresholds, run_dir;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--baseline" && i + 1 < args.size()) {
            baseline = args[++i];
        } else if (args[i] == "--thresholds" && i + 1 < args.size()) {
            thresholds = args[++i];
        } else if (!args[i].empty() && args[i][0] == '-') {
            std::cerr << "error: unknown diff option '" << args[i]
                      << "'\n";
            printUsage(stderr, argv0);
            return 2;
        } else if (run_dir.empty()) {
            run_dir = args[i];
        } else {
            std::cerr << "error: more than one RUN_DIR\n";
            printUsage(stderr, argv0);
            return 2;
        }
    }
    if (baseline.empty() || run_dir.empty()) {
        printUsage(stderr, argv0);
        return 2;
    }
    return diffDirectories(std::cout, baseline, run_dir, thresholds);
}

int
cmdExplain(const std::vector<std::string> &args, const char *argv0)
{
    std::string spans_path, stats_path;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--spans" && i + 1 < args.size()) {
            spans_path = args[++i];
        } else if (!args[i].empty() && args[i][0] == '-') {
            std::cerr << "error: unknown explain option '" << args[i]
                      << "'\n";
            printUsage(stderr, argv0);
            return 2;
        } else if (stats_path.empty()) {
            stats_path = args[i];
        } else {
            std::cerr << "error: more than one STATS file\n";
            printUsage(stderr, argv0);
            return 2;
        }
    }
    if (spans_path.empty()) {
        printUsage(stderr, argv0);
        return 2;
    }

    std::string err;
    SpanSet set;
    if (!loadSpanOperand(spans_path, set, &err)) {
        std::cerr << "error: " << err << "\n";
        return 3;
    }
    StatsReport stats;
    bool have_stats = false;
    if (!stats_path.empty()) {
        if (!loadStatsReport(stats_path, stats, &err)) {
            std::cerr << "error: " << err << "\n";
            return 3;
        }
        have_stats = true;
    }
    return printExplain(std::cout, set,
                        have_stats ? &stats : nullptr)
               ? 0
               : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) {
        printUsage(stderr, argv[0]);
        return 2;
    }
    if (args[0] == "--help" || args[0] == "-h" || args[0] == "help") {
        printUsage(stdout, argv[0]);
        return 0;
    }
    const std::string cmd = args[0];
    args.erase(args.begin());
    if (cmd == "summary")
        return cmdSummary(args, argv[0]);
    if (cmd == "diff")
        return cmdDiff(args, argv[0]);
    if (cmd == "explain")
        return cmdExplain(args, argv[0]);
    std::cerr << "error: unknown subcommand '" << cmd << "'\n";
    printUsage(stderr, argv[0]);
    return 2;
}
