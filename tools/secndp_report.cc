/**
 * @file
 * secndp_report: analyze and diff .stats.json sidecars written by
 * secndp_sim / the benchmarks.
 *
 *   secndp_report summary FILE|DIR...
 *       Pretty-print per-run counters, distribution percentiles and
 *       host phase wall-times. Directories are expanded to every
 *       *.stats.json inside (non-recursive).
 *
 *   secndp_report diff --baseline DIR [--thresholds FILE] RUN_DIR
 *       Compare each baseline sidecar against its same-named file in
 *       RUN_DIR under the watch rules (default
 *       DIR/thresholds.tsv). Exits 0 when clean, 1 when a watched
 *       metric regressed past its threshold (the CI perf gate), 3 on
 *       I/O or parse errors, 2 on usage errors.
 *
 *   secndp_report explain [STATS] --spans PATH
 *       Join per-request span logs / flight dumps against a serving
 *       sidecar: per-phase p50/p95/p99 latency attribution, tail
 *       cohorts with exemplar trace IDs, and a cross-check of the
 *       span-derived percentiles against serve.latency_ns. PATH is a
 *       file or a directory of *.spans.json / *.flight.json.
 *
 *   secndp_report top --port N [--host H] [--interval-ms N] [--once]
 *       Live terminal dashboard over a running tool's --metrics-port
 *       endpoint: qps, latency percentiles from the scraped histogram
 *       buckets, queue depth, shed/abort counters, SLO burn rates.
 *
 *   secndp_report summary --format=prom FILE|DIR...
 *       One-shot sidecar -> Prometheus text conversion using the
 *       exact name mangling the live exporter uses, so offline and
 *       scraped series join on identical metric names.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hh"
#include "report/report.hh"
#include "report/spans.hh"
#include "telemetry/http_client.hh"
#include "telemetry/prom_text.hh"

namespace {

namespace fs = std::filesystem;
using namespace secndp::report;

void
printUsage(std::FILE *to, const char *argv0)
{
    std::fprintf(to,
                 "usage: %s summary [--format=prom] FILE|DIR...\n"
                 "       %s diff --baseline DIR [--thresholds FILE] "
                 "RUN_DIR\n"
                 "       %s explain [STATS] --spans PATH\n"
                 "       %s top --port N [--host H] "
                 "[--interval-ms N] [--once]\n"
                 "\n"
                 "subcommands:\n"
                 "  summary   print per-run stat tables from "
                 ".stats.json sidecars\n"
                 "            (--format=prom: Prometheus text with "
                 "the live exporter's\n"
                 "            metric names)\n"
                 "  diff      gate RUN_DIR against baseline sidecars; "
                 "exit 1 on regression\n"
                 "  explain   per-phase p50/p95/p99 tail-latency "
                 "attribution from span logs\n"
                 "  top       live dashboard over a --metrics-port "
                 "endpoint\n"
                 "\n"
                 "diff options:\n"
                 "  --baseline DIR     directory of golden "
                 "*.stats.json (required)\n"
                 "  --thresholds FILE  watch rules; default "
                 "DIR/thresholds.tsv\n"
                 "\n"
                 "explain options:\n"
                 "  STATS              serving .stats.json to "
                 "cross-check percentiles against\n"
                 "  --spans PATH       span/flight file, or a "
                 "directory of *.spans.json /\n"
                 "                     *.flight.json (required)\n"
                 "\n"
                 "top options:\n"
                 "  --port N           metrics port to scrape "
                 "(required)\n"
                 "  --host H           endpoint host (default "
                 "127.0.0.1)\n"
                 "  --interval-ms N    refresh period (default "
                 "500)\n"
                 "  --once             print one frame and exit "
                 "(no screen clearing)\n"
                 "\n"
                 "exit codes: 0 ok, 1 regression/mismatch, 2 usage, "
                 "3 I/O or parse error\n",
                 argv0, argv0, argv0, argv0);
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

/** Expand a summary operand: a dir becomes its *.stats.json files. */
bool
expandOperand(const std::string &arg, std::vector<std::string> &files)
{
    std::error_code ec;
    if (fs::is_directory(arg, ec)) {
        std::vector<std::string> found;
        for (const auto &entry : fs::directory_iterator(arg, ec)) {
            if (entry.is_regular_file() &&
                endsWith(entry.path().filename().string(),
                         ".stats.json"))
                found.push_back(entry.path().string());
        }
        if (ec) {
            std::cerr << "error: cannot list '" << arg
                      << "': " << ec.message() << "\n";
            return false;
        }
        if (found.empty()) {
            std::cerr << "error: no *.stats.json in '" << arg
                      << "'\n";
            return false;
        }
        std::sort(found.begin(), found.end());
        files.insert(files.end(), found.begin(), found.end());
        return true;
    }
    files.push_back(arg);
    return true;
}

/**
 * Offline sidecar -> Prometheus conversion sharing promQualify with
 * the live exporter, so scraped and converted series join on the same
 * names. Plain metrics render as untyped (sidecar JSON cannot
 * distinguish a counter from a scalar); histogram-shaped objects
 * (have a .p50) render as summaries whose _sum/_count match the live
 * histogram's; distribution-shaped objects render the same
 * _count/_mean/_min/_max gauges the live snapshot fold produces.
 */
void
renderReportProm(std::ostream &os, const StatsReport &r)
{
    using namespace secndp::telemetry;

    renderGauge(os, "secndp_build_info_schema_version",
                "Sidecar schema version.",
                static_cast<double>(r.schemaVersion));
    {
        os << "# HELP secndp_build_info Run metadata from the stats "
              "sidecar.\n# TYPE secndp_build_info gauge\n"
           << "secndp_build_info{";
        bool first = true;
        for (const auto &kv : r.meta) {
            if (!first)
                os << ",";
            first = false;
            os << promMetricName(kv.first) << "=\""
               << promEscapeLabel(kv.second) << "\"";
        }
        os << "} 1\n";
    }

    // Reassemble the flattened `group.stat.field` object metrics.
    static const char *objFields[] = {"count", "min",  "max", "mean",
                                      "p50",   "p95", "p99"};
    std::map<std::string, std::map<std::string, double>> objects;
    std::vector<std::pair<std::string, double>> plain;
    for (const auto &kv : r.metrics) {
        bool isField = false;
        const std::size_t dot = kv.first.rfind('.');
        if (dot != std::string::npos) {
            const std::string field = kv.first.substr(dot + 1);
            for (const char *f : objFields) {
                if (field == f &&
                    r.metrics.count(kv.first.substr(0, dot) +
                                    ".count")) {
                    objects[kv.first.substr(0, dot)][field] =
                        kv.second;
                    isField = true;
                    break;
                }
            }
        }
        if (!isField)
            plain.emplace_back(kv.first, kv.second);
    }

    for (const auto &kv : plain) {
        renderUntyped(os, promMetricName("secndp_" + kv.first),
                      "Sidecar metric " + kv.first + ".", kv.second);
    }
    for (const auto &obj : objects) {
        const std::string name = promMetricName("secndp_" + obj.first);
        const auto &f = obj.second;
        const double count = f.count("count") ? f.at("count") : 0.0;
        if (f.count("p50")) {
            std::vector<std::pair<double, double>> quantiles;
            for (const auto &q :
                 {std::pair<const char *, double>{"p50", 0.5},
                  {"p95", 0.95},
                  {"p99", 0.99}}) {
                if (f.count(q.first))
                    quantiles.emplace_back(q.second, f.at(q.first));
            }
            const double mean = f.count("mean") ? f.at("mean") : 0.0;
            renderSummary(os, name,
                          "Sidecar histogram " + obj.first +
                              " (percentiles; live scrapes carry "
                              "buckets).",
                          static_cast<std::uint64_t>(count),
                          mean * count, quantiles);
        } else {
            for (const char *field : {"count", "mean", "min", "max"}) {
                if (f.count(field)) {
                    renderGauge(os, name + "_" + field,
                                "Sidecar distribution field " +
                                    obj.first + "." + field + ".",
                                f.at(field));
                }
            }
        }
    }
}

int
cmdSummary(const std::vector<std::string> &args, const char *argv0)
{
    bool prom = false;
    std::vector<std::string> operands;
    for (const auto &arg : args) {
        if (arg == "--format=prom")
            prom = true;
        else if (arg.rfind("--format=", 0) == 0) {
            std::cerr << "error: unknown summary format '"
                      << arg.substr(9) << "' (only: prom)\n";
            return 2;
        } else
            operands.push_back(arg);
    }
    if (operands.empty()) {
        printUsage(stderr, argv0);
        return 2;
    }
    std::vector<std::string> files;
    for (const auto &arg : operands) {
        if (!expandOperand(arg, files))
            return 3;
    }
    bool first = true;
    for (const auto &file : files) {
        StatsReport report;
        std::string err;
        if (!loadStatsReport(file, report, &err)) {
            std::cerr << "error: " << err << "\n";
            return 3;
        }
        if (!first)
            std::cout << "\n";
        first = false;
        if (prom)
            renderReportProm(std::cout, report);
        else
            printSummary(std::cout, report);
    }
    return 0;
}

int
cmdDiff(const std::vector<std::string> &args, const char *argv0)
{
    std::string baseline, thresholds, run_dir;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--baseline" && i + 1 < args.size()) {
            baseline = args[++i];
        } else if (args[i] == "--thresholds" && i + 1 < args.size()) {
            thresholds = args[++i];
        } else if (!args[i].empty() && args[i][0] == '-') {
            std::cerr << "error: unknown diff option '" << args[i]
                      << "'\n";
            printUsage(stderr, argv0);
            return 2;
        } else if (run_dir.empty()) {
            run_dir = args[i];
        } else {
            std::cerr << "error: more than one RUN_DIR\n";
            printUsage(stderr, argv0);
            return 2;
        }
    }
    if (baseline.empty() || run_dir.empty()) {
        printUsage(stderr, argv0);
        return 2;
    }
    return diffDirectories(std::cout, baseline, run_dir, thresholds);
}

int
cmdExplain(const std::vector<std::string> &args, const char *argv0)
{
    std::string spans_path, stats_path;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--spans" && i + 1 < args.size()) {
            spans_path = args[++i];
        } else if (!args[i].empty() && args[i][0] == '-') {
            std::cerr << "error: unknown explain option '" << args[i]
                      << "'\n";
            printUsage(stderr, argv0);
            return 2;
        } else if (stats_path.empty()) {
            stats_path = args[i];
        } else {
            std::cerr << "error: more than one STATS file\n";
            printUsage(stderr, argv0);
            return 2;
        }
    }
    if (spans_path.empty()) {
        printUsage(stderr, argv0);
        return 2;
    }

    std::string err;
    SpanSet set;
    if (!loadSpanOperand(spans_path, set, &err)) {
        std::cerr << "error: " << err << "\n";
        return 3;
    }
    StatsReport stats;
    bool have_stats = false;
    if (!stats_path.empty()) {
        if (!loadStatsReport(stats_path, stats, &err)) {
            std::cerr << "error: " << err << "\n";
            return 3;
        }
        have_stats = true;
    }
    return printExplain(std::cout, set,
                        have_stats ? &stats : nullptr)
               ? 0
               : 1;
}

/** One parsed scrape: label-less samples + histogram buckets. */
struct TopFrame
{
    std::map<std::string, double> values;
    /** name -> (le upper edge, cumulative count) pairs. */
    std::map<std::string, std::vector<std::pair<double, double>>>
        buckets;
    bool ready = false;

    double value(const std::string &name) const
    {
        const auto it = values.find(name);
        return it == values.end() ? 0.0 : it->second;
    }
};

bool
scrapeFrame(const std::string &host, std::uint16_t port,
            TopFrame &frame, std::string *err)
{
    using namespace secndp::telemetry;
    int status = 0;
    std::string body;
    if (!httpGet(host, port, "/metrics", status, body, err))
        return false;
    if (status != 200) {
        if (err)
            *err = "/metrics returned " + std::to_string(status);
        return false;
    }
    std::vector<PromSample> samples;
    if (!parseExposition(body, samples, err))
        return false;
    for (const auto &s : samples) {
        const auto le = s.labels.find("le");
        if (le != s.labels.end()) {
            const double edge = le->second == "+Inf"
                                    ? HUGE_VAL
                                    : std::strtod(
                                          le->second.c_str(), nullptr);
            frame.buckets[s.name].emplace_back(edge, s.value);
        } else if (s.labels.empty()) {
            frame.values[s.name] = s.value;
        }
    }
    std::string rbody, rerr;
    if (httpGet(host, port, "/readyz", status, rbody, &rerr))
        frame.ready = status == 200;
    return true;
}

void
printTopFrame(const TopFrame &cur, const TopFrame *prev, bool clear)
{
    using namespace secndp::telemetry;
    if (clear)
        std::printf("\033[H\033[2J");

    const double sim_ns = cur.value("secndp_sim_time_ns");
    const double completed =
        cur.value("secndp_serve_requests_completed");
    const bool complete =
        cur.value("secndp_snapshot_complete") >= 1.0;

    // Instantaneous qps on the simulated timeline between frames;
    // falls back to the whole-run average when no delta is visible.
    double qps = sim_ns > 0 ? completed / (sim_ns / 1e9) : 0.0;
    if (prev) {
        const double dns = sim_ns - prev->value("secndp_sim_time_ns");
        const double dreq =
            completed - prev->value("secndp_serve_requests_completed");
        if (dns > 0)
            qps = dreq / (dns / 1e9);
    }

    std::printf("secndp top -- %s | sim %.1f us | snapshot #%.0f%s\n",
                cur.ready ? "SERVING (ready)" : "DRAINING/DONE",
                sim_ns / 1000.0, cur.value("secndp_snapshot_seq"),
                complete ? " [complete]" : "");
    std::printf("%-22s %12.0f\n", "qps (simulated)", qps);
    std::printf("%-22s %12.0f\n", "completed", completed);
    std::printf("%-22s %12.0f\n", "shed",
                cur.value("secndp_serve_requests_rejected"));
    std::printf("%-22s %12.0f\n", "aborted",
                cur.value("secndp_serve_requests_aborted"));
    std::printf("%-22s %12.0f\n", "queue depth",
                cur.value("secndp_serve_queue_depth"));
    std::printf("%-22s %12.0f\n", "batches",
                cur.value("secndp_serve_batches"));

    const auto hist =
        cur.buckets.find("secndp_serve_latency_ns_bucket");
    if (hist != cur.buckets.end()) {
        std::printf("%-22s %9.0f ns\n", "latency p50",
                    promHistogramQuantile(hist->second, 0.50));
        std::printf("%-22s %9.0f ns\n", "latency p95",
                    promHistogramQuantile(hist->second, 0.95));
        std::printf("%-22s %9.0f ns\n", "latency p99",
                    promHistogramQuantile(hist->second, 0.99));
    }

    if (cur.values.count("secndp_telemetry_slo_latency_burn_fast")) {
        const double fast =
            cur.value("secndp_telemetry_slo_latency_burn_fast");
        const double slow =
            cur.value("secndp_telemetry_slo_latency_burn_slow");
        const bool alerting =
            cur.value("secndp_telemetry_slo_alerting") >= 1.0;
        std::printf("%-22s %6.2f / %.2f%s\n",
                    "slo burn fast/slow", fast, slow,
                    alerting ? "  ** ALERTING **" : "");
        std::printf("%-22s %6.2f / %.2f\n", "avail burn fast/slow",
                    cur.value(
                        "secndp_telemetry_slo_availability_burn_fast"),
                    cur.value(
                        "secndp_telemetry_slo_availability_burn_"
                        "slow"));
    }
    if (cur.values.count("secndp_faults_injected_total")) {
        std::printf("%-22s %12.0f\n", "faults injected",
                    cur.value("secndp_faults_injected_total"));
        std::printf("%-22s %12.0f\n", "tamper detected",
                    cur.value("secndp_verify_detected"));
    }
    std::fflush(stdout);
}

int
cmdTop(const std::vector<std::string> &args, const char *argv0)
{
    std::string host = "127.0.0.1";
    int port = -1;
    int intervalMs = 500;
    bool once = false;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--port" && i + 1 < args.size())
            port = std::atoi(args[++i].c_str());
        else if (args[i] == "--host" && i + 1 < args.size())
            host = args[++i];
        else if (args[i] == "--interval-ms" && i + 1 < args.size())
            intervalMs = std::atoi(args[++i].c_str());
        else if (args[i] == "--once")
            once = true;
        else {
            std::cerr << "error: unknown top option '" << args[i]
                      << "'\n";
            printUsage(stderr, argv0);
            return 2;
        }
    }
    if (port <= 0 || port > 65535 || intervalMs <= 0) {
        std::cerr << "error: top needs --port in [1, 65535]\n";
        printUsage(stderr, argv0);
        return 2;
    }

    bool everScraped = false;
    TopFrame prev;
    int failures = 0;
    for (;;) {
        TopFrame frame;
        std::string err;
        if (scrapeFrame(host, static_cast<std::uint16_t>(port), frame,
                        &err)) {
            failures = 0;
            printTopFrame(frame, everScraped ? &prev : nullptr,
                          !once);
            prev = std::move(frame);
            everScraped = true;
            if (once)
                return 0;
        } else {
            ++failures;
            if (everScraped) {
                // The run ended and closed the endpoint: clean exit.
                std::printf("endpoint closed (%s)\n", err.c_str());
                return 0;
            }
            // Give a slow-starting run a few seconds to bind.
            if (failures * intervalMs > 5000) {
                std::cerr << "error: cannot scrape " << host << ":"
                          << port << ": " << err << "\n";
                return 3;
            }
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(intervalMs));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) {
        printUsage(stderr, argv[0]);
        return 2;
    }
    if (args[0] == "--help" || args[0] == "-h" || args[0] == "help") {
        printUsage(stdout, argv[0]);
        return 0;
    }
    if (args[0] == "--version") {
        std::printf("secndp_report %s\n", secndp::buildVersion());
        return 0;
    }
    const std::string cmd = args[0];
    args.erase(args.begin());
    if (cmd == "summary")
        return cmdSummary(args, argv[0]);
    if (cmd == "diff")
        return cmdDiff(args, argv[0]);
    if (cmd == "explain")
        return cmdExplain(args, argv[0]);
    if (cmd == "top")
        return cmdTop(args, argv[0]);
    std::cerr << "error: unknown subcommand '" << cmd << "'\n";
    printUsage(stderr, argv[0]);
    return 2;
}
