/**
 * @file
 * secndp_loadgen: open/closed-loop load generator for the SecNDP
 * serving layer (src/serve).
 *
 * Synthesizes a request stream from a generated (or loaded) workload
 * trace, plays it through the batched multi-channel serving pipeline
 * (queue -> scheduler -> shards -> verify pool), and reports
 * per-request end-to-end latency percentiles, sustained QPS, and
 * batch occupancy. All simulated-side statistics are deterministic in
 * --seed; only host_phases wall times and meta.git differ between
 * runs, which is what the CI loadgen gate checks.
 *
 * Examples:
 *   # open loop: Poisson arrivals at 2M QPS against SecNDP enc
 *   secndp_loadgen --mode open --qps 2000000 --requests 512 --seed 42
 *
 *   # closed loop: 16 outstanding requests, verification on,
 *   # 4 host verify threads, EDF admission with a 50us deadline
 *   secndp_loadgen --mode closed --concurrency 16 --exec-mode ver \
 *       --workers 4 --policy deadline --deadline-us 50
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "common/logging.hh"
#include "common/request_trace.hh"
#include "common/sampler.hh"
#include "common/stats.hh"
#include "memsim/dram_spec.hh"
#include "net/net_client.hh"
#include "net/net_server.hh"
#include "serve/server.hh"
#include "telemetry/metrics_exporter.hh"
#include "telemetry/slo_tracker.hh"
#include "workloads/dlrm.hh"
#include "workloads/medical.hh"
#include "workloads/trace_io.hh"

using namespace secndp;

namespace {

struct Options
{
    // Load model.
    std::string mode = "open";
    double qps = 500000.0;
    unsigned concurrency = 16;
    std::size_t requests = 256;
    double deadlineUs = 0.0;
    // Serving system.
    std::string execMode = "enc";
    std::string policy = "fifo";
    unsigned maxBatch = 8;
    double batchTimeoutUs = 5.0;
    unsigned shards = 2;
    unsigned workers = 2;
    std::size_t queueCap = 1024;
    std::string dram = "ddr4-2400"; ///< device generation name
    unsigned ranks = 8;
    unsigned regs = 8;
    unsigned aes = 12;
    // Trusted-side pad cache (0 MB = off, byte-identical sidecars).
    double cacheMb = 0.0;
    std::string cachePolicy = "lru";
    unsigned cacheShards = 8;
    // Request pool.
    std::string workload = "sls";
    std::string model = "rmc1-small";
    std::string quant = "fp32";
    std::string layout = "none";
    unsigned pool = 64;
    unsigned pf = 20;
    double zipf = 0.0;
    std::string loadTrace;
    std::uint64_t seed = Rng::defaultSeed;
    // Adversary / recovery.
    std::string inject;
    std::uint64_t injectSeed = 1;
    unsigned retryMax = 3;
    double retryBackoffUs = 2.0;
    bool noFallback = false;
    bool allowShed = false;
    // Tracing / flight recorder.
    std::string traceRequests;
    std::string flightOut;
    double sloUs = 0.0;
    // Live telemetry / SLO gate.
    int metricsPort = -1; ///< -1 off, 0 ephemeral, else fixed port
    double metricsLingerS = 0.0;
    double metricsHoldMs = 0.0;
    bool sloGate = false;
    double sloObjective = 0.999;
    double sloFastWindowUs = 10.0;
    // Socket mode (off when both empty: in-process serving).
    std::string listen;  ///< server: "[addr:]port" (port 0 ephemeral)
    std::string connect; ///< client: "host:port"
    unsigned connections = 0; ///< client fan-in (0 = derive)
    double netTimeoutS = 0.0; ///< 0 = mode default
    // Outputs.
    std::string statsJson;
    std::string timeseriesOut;
    std::int64_t sampleInterval = Sampler::defaultInterval;
};

/**
 * Parse a decimal port string, fataling on anything that is not a
 * pure number in [0, 65535] -- stoul would otherwise escape as an
 * uncaught exception on "--listen bogus".
 */
std::uint16_t
parsePort(const std::string &s, const char *flag)
{
    if (s.empty() || s.size() > 5 ||
        s.find_first_not_of("0123456789") != std::string::npos)
        fatal("%s: bad port '%s'", flag, s.c_str());
    const unsigned long n = std::stoul(s);
    if (n > 65535)
        fatal("%s: port %lu out of [0, 65535]", flag, n);
    return static_cast<std::uint16_t>(n);
}

/** Bind address echoed by the --listen announcement callback. */
std::string listenAddr = "127.0.0.1";

void
printListenPort(std::uint16_t port)
{
    std::printf("listening       %s:%u\n", listenAddr.c_str(),
                static_cast<unsigned>(port));
    std::fflush(stdout);
}

/**
 * Abort-path output flush (registered with atexit): fatal() exits the
 * process mid-run, which used to drop every requested sidecar -- the
 * one run you most want to examine is the one that died. The handler
 * writes whatever --stats-json/--timeseries-out/--trace-requests
 * outputs the normal path has not written yet, tagging the stats
 * sidecar with meta partial=1 so report tooling refuses to diff it
 * against complete baselines.
 */
struct PendingOutputs
{
    std::string statsJson;
    std::string timeseriesOut;
    std::string traceRequests;
    bool statsWritten = false;
    bool timeseriesWritten = false;
    bool spansWritten = false;
    bool armed = false;
};

PendingOutputs pending;

void
flushPendingOutputs()
{
    if (!pending.armed)
        return;
    pending.armed = false;
    if (!pending.timeseriesWritten && !pending.timeseriesOut.empty())
        (void)Sampler::instance().writeCsv(pending.timeseriesOut);
    if (!pending.statsWritten && !pending.statsJson.empty()) {
        StatRegistry::instance().setMeta("partial", "1");
        std::ofstream os(pending.statsJson);
        if (os)
            StatRegistry::instance().dumpJson(os);
    }
#if SECNDP_TRACING
    if (!pending.spansWritten && !pending.traceRequests.empty() &&
        RequestTracer::instance().active())
        (void)RequestTracer::instance().writeSpanLog(
            pending.traceRequests);
#endif
}

void
printUsage(std::FILE *to, const char *argv0)
{
    std::fprintf(to,
        "usage: %s [--mode open|closed] [--qps N] [--concurrency N]\n"
        "          [--requests N] [--deadline-us F]\n"
        "          [--exec-mode cpu|tee|ndp|enc|ver] "
        "[--policy fifo|deadline]\n"
        "          [--max-batch N] [--batch-timeout-us F] "
        "[--shards N]\n"
        "          [--workers N] [--queue-cap N] [--dram NAME] "
        "[--ranks N]\n"
        "          [--regs N] [--aes N]\n"
        "          [--cache-mb F] [--cache-policy lru|lfu] "
        "[--cache-shards N]\n"
        "          [--workload sls|medical] [--model M] "
        "[--quant Q] [--layout L]\n"
        "          [--pool N] [--pf N] [--zipf A] "
        "[--load-trace FILE] [--seed S]\n"
        "          [--inject SPEC] [--inject-seed S] "
        "[--retry-max N]\n"
        "          [--retry-backoff-us F] [--no-fallback] "
        "[--allow-shed]\n"
        "          [--trace-requests FILE] [--flight-out FILE] "
        "[--slo-us F]\n"
        "          [--metrics-port N] [--metrics-linger SECONDS]\n"
        "          [--metrics-hold-ms F] [--slo-gate] "
        "[--slo-objective F]\n"
        "          [--slo-fast-window-us F]\n"
        "          [--listen [ADDR:]PORT] [--connect HOST:PORT]\n"
        "          [--connections N] [--net-timeout SECONDS]\n"
        "          [--stats-json FILE] [--timeseries-out FILE]\n"
        "          [--sample-interval CYCLES] "
        "[--log-level debug|info|warn|error]\n"
        "          [--version] [--help]\n"
        "\n"
        "  --mode open        Poisson arrivals at --qps "
        "(queueing + shedding visible)\n"
        "  --mode closed      fixed --concurrency outstanding "
        "requests (peak throughput)\n"
        "  --pool N           distinct queries in the request pool "
        "(requests cycle it)\n"
        "  --shards N         memory channels a batch shards "
        "across (DDR5\n"
        "                     pseudo-channel generations multiply "
        "this by the\n"
        "                     pseudo-channel count)\n"
        "  --dram NAME        device generation: %s\n"
        "                     (default ddr4-2400, the paper's "
        "Table II)\n"
        "  --workers N        host OTP/verify worker threads\n"
        "  --cache-mb F       trusted-side pad cache capacity in MiB "
        "(0 = off,\n"
        "                     the default; sidecars stay "
        "byte-identical)\n"
        "  --cache-policy P   eviction policy: lru | lfu "
        "(TinyLFU admission)\n"
        "  --cache-shards N   cache lock shards (rounded to a power "
        "of two)\n"
        "  --inject SPEC      fault-injection rules, e.g. "
        "'flip:rate=1e-4;replay:rate=0.1'\n"
        "                     (kinds: flip|burst|tag|replay|wrong|"
        "forge|drop)\n"
        "  --retry-max N      re-read attempts before host fallback "
        "(default 3)\n"
        "  --no-fallback      disable trusted host recompute "
        "(failures abort)\n"
        "  --allow-shed       exit 0 even when admission sheds "
        "requests\n"
        "  --trace-requests FILE  full per-request span log "
        "(secndp-spans-v1; see\n"
        "                     'secndp_report explain')\n"
        "  --flight-out FILE  flight-recorder dump written on the "
        "first anomaly\n"
        "                     (abort / shed / missed forgery / SLO "
        "breach)\n"
        "  --slo-us F         latency SLO; breaches count as "
        "flight-recorder anomalies\n"
        "  --metrics-port N   serve live Prometheus metrics on "
        "127.0.0.1:N (0 = ephemeral;\n"
        "                     /metrics /healthz /readyz; default "
        "off -- sidecars are\n"
        "                     byte-identical either way)\n"
        "  --metrics-linger SECONDS  keep the endpoint up after the "
        "run completes\n"
        "  --metrics-hold-ms F  hold (wall clock) before drain with "
        "/readyz still 200\n"
        "  --slo-gate         exit 1 when the run burned more error "
        "budget than the\n"
        "                     objective allows (uses --slo-us as the "
        "latency target)\n"
        "  --slo-objective F  in-SLO fraction objective (default "
        "0.999)\n"
        "  --stats-json FILE  schema-v2 stats report "
        "(serve.* / serve_worker.* groups)\n"
        "  --listen [ADDR:]PORT  serve one session over TCP instead "
        "of in-process\n"
        "                     load (PORT 0 = ephemeral; the resolved "
        "port is printed\n"
        "                     as 'listening ADDR:PORT'). Load flags "
        "come from the\n"
        "                     client's Hello; serving/workload flags "
        "apply as usual.\n"
        "  --connect HOST:PORT  drive a --listen server over TCP "
        "using the load\n"
        "                     flags (--mode/--qps/--requests/--seed "
        "...); workload\n"
        "                     and serving flags are server-side\n"
        "  --connections N    client TCP connections (default: "
        "--concurrency for\n"
        "                     closed loop, 16 for open loop)\n"
        "  --net-timeout SECONDS  socket-mode stall watchdog "
        "(defaults: server 30,\n"
        "                     client 60)\n"
        "\n"
        "exit codes: 0 success; 1 SLO gate failed (--slo-gate); "
        "2 usage error;\n"
        "            3 requests shed or aborted (unless "
        "--allow-shed covers the shed)\n",
        argv0, dramGenerationList().c_str());
}

[[noreturn]] void
usage(const char *argv0)
{
    printUsage(stderr, argv0);
    std::exit(2);
}

ExecMode
parseExecMode(const std::string &s)
{
    if (s == "cpu") return ExecMode::CpuUnprotected;
    if (s == "tee") return ExecMode::CpuTee;
    if (s == "ndp") return ExecMode::NdpUnprotected;
    if (s == "enc") return ExecMode::SecNdpEnc;
    if (s == "ver") return ExecMode::SecNdpEncVer;
    fatal("unknown exec mode '%s'", s.c_str());
}

QuantScheme
parseQuant(const std::string &s)
{
    if (s == "fp32") return QuantScheme::None;
    if (s == "row") return QuantScheme::RowWise;
    if (s == "col") return QuantScheme::ColumnWise;
    if (s == "table") return QuantScheme::TableWise;
    fatal("unknown quant '%s'", s.c_str());
}

VerLayout
parseLayout(const std::string &s)
{
    if (s == "none") return VerLayout::None;
    if (s == "coloc") return VerLayout::Coloc;
    if (s == "sep") return VerLayout::Sep;
    if (s == "ecc") return VerLayout::Ecc;
    fatal("unknown layout '%s'", s.c_str());
}

DlrmModelConfig
parseModel(const std::string &s)
{
    if (s == "rmc1-small") return rmc1Small();
    if (s == "rmc1-large") return rmc1Large();
    if (s == "rmc2-small") return rmc2Small();
    if (s == "rmc2-large") return rmc2Large();
    fatal("unknown model '%s'", s.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage(argv[0]);
            return argv[i];
        };
        if (arg == "--help" || arg == "-h") {
            printUsage(stdout, argv[0]);
            return 0;
        }
        else if (arg == "--version") {
            std::printf("secndp_loadgen %s\n", buildVersion());
            return 0;
        }
        else if (arg == "--mode") opt.mode = next();
        else if (arg == "--qps") opt.qps = std::stod(next());
        else if (arg == "--concurrency")
            opt.concurrency = std::stoul(next());
        else if (arg == "--requests") opt.requests = std::stoul(next());
        else if (arg == "--deadline-us")
            opt.deadlineUs = std::stod(next());
        else if (arg == "--exec-mode") opt.execMode = next();
        else if (arg == "--policy") opt.policy = next();
        else if (arg == "--max-batch") opt.maxBatch = std::stoul(next());
        else if (arg == "--batch-timeout-us")
            opt.batchTimeoutUs = std::stod(next());
        else if (arg == "--shards") opt.shards = std::stoul(next());
        else if (arg == "--workers") opt.workers = std::stoul(next());
        else if (arg == "--queue-cap") opt.queueCap = std::stoul(next());
        else if (arg == "--dram") opt.dram = next();
        else if (arg == "--ranks") opt.ranks = std::stoul(next());
        else if (arg == "--regs") opt.regs = std::stoul(next());
        else if (arg == "--aes") opt.aes = std::stoul(next());
        else if (arg == "--cache-mb") {
            opt.cacheMb = std::stod(next());
            if (opt.cacheMb < 0)
                fatal("--cache-mb must be non-negative");
        }
        else if (arg == "--cache-policy") opt.cachePolicy = next();
        else if (arg == "--cache-shards") {
            opt.cacheShards = std::stoul(next());
            if (opt.cacheShards == 0)
                fatal("--cache-shards must be positive");
        }
        else if (arg == "--workload") opt.workload = next();
        else if (arg == "--model") opt.model = next();
        else if (arg == "--quant") opt.quant = next();
        else if (arg == "--layout") opt.layout = next();
        else if (arg == "--pool") opt.pool = std::stoul(next());
        else if (arg == "--pf") opt.pf = std::stoul(next());
        else if (arg == "--zipf") opt.zipf = std::stod(next());
        else if (arg == "--load-trace") opt.loadTrace = next();
        else if (arg == "--seed") opt.seed = std::stoull(next());
        else if (arg == "--inject") opt.inject = next();
        else if (arg == "--inject-seed")
            opt.injectSeed = std::stoull(next());
        else if (arg == "--retry-max")
            opt.retryMax = std::stoul(next());
        else if (arg == "--retry-backoff-us")
            opt.retryBackoffUs = std::stod(next());
        else if (arg == "--no-fallback") opt.noFallback = true;
        else if (arg == "--allow-shed") opt.allowShed = true;
        else if (arg == "--trace-requests") opt.traceRequests = next();
        else if (arg == "--flight-out") opt.flightOut = next();
        else if (arg == "--slo-us") opt.sloUs = std::stod(next());
        else if (arg == "--metrics-port") {
            opt.metricsPort = std::stoi(next());
            if (opt.metricsPort < 0 || opt.metricsPort > 65535)
                fatal("--metrics-port must be in [0, 65535]");
        }
        else if (arg == "--metrics-linger")
            opt.metricsLingerS = std::stod(next());
        else if (arg == "--metrics-hold-ms")
            opt.metricsHoldMs = std::stod(next());
        else if (arg == "--slo-gate") opt.sloGate = true;
        else if (arg == "--slo-objective") {
            opt.sloObjective = std::stod(next());
            if (opt.sloObjective <= 0.0 || opt.sloObjective >= 1.0)
                fatal("--slo-objective must be in (0, 1)");
        }
        else if (arg == "--slo-fast-window-us")
            opt.sloFastWindowUs = std::stod(next());
        else if (arg == "--listen") opt.listen = next();
        else if (arg == "--connect") opt.connect = next();
        else if (arg == "--connections")
            opt.connections = std::stoul(next());
        else if (arg == "--net-timeout") {
            opt.netTimeoutS = std::stod(next());
            if (opt.netTimeoutS <= 0)
                fatal("--net-timeout must be positive");
        }
        else if (arg == "--stats-json") opt.statsJson = next();
        else if (arg == "--timeseries-out") opt.timeseriesOut = next();
        else if (arg == "--sample-interval") {
            opt.sampleInterval = std::stoll(next());
            if (opt.sampleInterval <= 0)
                fatal("--sample-interval must be positive");
        }
        else if (arg == "--log-level") {
            LogLevel level;
            if (!parseLogLevel(next(), level))
                fatal("unknown log level '%s'", argv[i]);
            setLogLevel(level);
        }
        else usage(argv[0]);
    }

    if (opt.requests == 0)
        fatal("--requests must be positive");
    if (opt.maxBatch == 0)
        fatal("--max-batch must be positive");
    if (!opt.listen.empty() && !opt.connect.empty())
        fatal("--listen and --connect are mutually exclusive");
    if (!opt.connect.empty()) {
        // Client mode drives a remote serving process; every
        // server-side knob belongs on the --listen command line.
        if (opt.metricsPort >= 0 || opt.sloGate)
            fatal("--metrics-port/--slo-gate are server-side; pass "
                  "them to the --listen process");
        if (!opt.inject.empty())
            fatal("--inject is server-side; pass it to the --listen "
                  "process");
        if (!opt.traceRequests.empty() || !opt.flightOut.empty())
            fatal("--trace-requests/--flight-out are server-side; "
                  "pass them to the --listen process");
        if (!opt.timeseriesOut.empty())
            fatal("--timeseries-out is server-side; pass it to the "
                  "--listen process");
        if (opt.cacheMb > 0)
            fatal("--cache-mb is server-side; pass it to the "
                  "--listen process");
    }

    const bool tracing = !opt.traceRequests.empty() ||
                         !opt.flightOut.empty() || opt.sloUs > 0.0;
    if (tracing) {
        RequestTracer::Config tcfg;
        tcfg.keepSpanLog = !opt.traceRequests.empty();
        tcfg.flightPath = opt.flightOut;
        tcfg.sloNs = opt.sloUs * 1000.0;
        if (!RequestTracer::instance().start(tcfg)) {
            fatal("--trace-requests/--flight-out/--slo-us need a "
                  "tracing build (-DSECNDP_ENABLE_TRACING=ON)");
        }
    }

    LoadConfig load;
    if (opt.mode == "open") load.mode = LoadMode::Open;
    else if (opt.mode == "closed") load.mode = LoadMode::Closed;
    else fatal("unknown load mode '%s'", opt.mode.c_str());
    load.qps = opt.qps;
    if (load.qps <= 0)
        fatal("--qps must be positive");
    load.concurrency = opt.concurrency;
    load.requests = opt.requests;
    load.deadlineNs = opt.deadlineUs * 1000.0;
    load.seed = opt.seed;

    // Socket-mode fan-in: closed loop maps one outstanding request to
    // one connection, so --concurrency is the natural default.
    const unsigned netConns =
        opt.connections ? opt.connections
        : load.mode == LoadMode::Closed ? opt.concurrency
                                        : 16u;
    if ((!opt.listen.empty() || !opt.connect.empty()) && netConns == 0)
        fatal("--connections must be positive");

    ServeConfig cfg;
    cfg.mode = parseExecMode(opt.execMode);
    cfg.sys.dram = makeDramConfig(opt.dram);
    cfg.sys.dram.geometry.ranks = opt.ranks;
    cfg.sys.ndp.ndpReg = opt.regs;
    cfg.sys.engine.nAesEngines = opt.aes;
    cfg.shards = opt.shards ? opt.shards : 1;
    cfg.batch.maxBatch = opt.maxBatch;
    cfg.batch.flushTimeoutNs = opt.batchTimeoutUs * 1000.0;
    if (opt.policy == "fifo") cfg.policy = QueuePolicy::Fifo;
    else if (opt.policy == "deadline")
        cfg.policy = QueuePolicy::Deadline;
    else fatal("unknown policy '%s'", opt.policy.c_str());
    cfg.queueCapacity = opt.queueCap;
    cfg.workers = opt.workers;
    if (opt.cacheMb > 0) {
        cfg.cache.capacityBytes = static_cast<std::size_t>(
            opt.cacheMb * 1024.0 * 1024.0);
        cfg.cache.policy = parseCachePolicy(opt.cachePolicy);
        cfg.cache.shards = opt.cacheShards;
    }

    if (!opt.inject.empty()) {
        std::string err;
        if (!parseFaultSpec(opt.inject, cfg.faults, &err))
            fatal("bad --inject spec: %s", err.c_str());
    }
    cfg.faultSeed = opt.injectSeed;
    cfg.recovery.maxRetries = opt.retryMax;
    cfg.recovery.backoffBaseNs = opt.retryBackoffUs * 1000.0;
    cfg.recovery.hostFallback = !opt.noFallback;

    const VerLayout layout =
        cfg.mode == ExecMode::SecNdpEncVer && opt.layout == "none"
            ? VerLayout::Ecc
            : parseLayout(opt.layout);

    // Live telemetry: armed only by --metrics-port / --slo-gate, so
    // plain runs carry no telemetry group and stay byte-identical to
    // the pre-telemetry baselines. The SLO latency target defaults to
    // 1 ms when no --slo-us was given.
    const bool telemetryOn = opt.metricsPort >= 0 || opt.sloGate;
    const double sloTargetUs = opt.sloUs > 0 ? opt.sloUs : 1000.0;
    telemetry::MetricsExporter exporter;
    std::unique_ptr<telemetry::SloTracker> slo;
    if (telemetryOn) {
        telemetry::SloConfig scfg;
        scfg.targetLatencyNs = sloTargetUs * 1000.0;
        scfg.objective = opt.sloObjective;
        scfg.availabilityObjective = opt.sloObjective;
        scfg.fastWindowNs = opt.sloFastWindowUs * 1000.0;
        slo = std::make_unique<telemetry::SloTracker>(scfg);
        cfg.telemetry.slo = slo.get();
    }
    if (opt.metricsPort >= 0) {
        telemetry::MetricsExporter::Config ecfg;
        ecfg.port = static_cast<std::uint16_t>(opt.metricsPort);
        std::string err;
        if (!exporter.start(ecfg, &err))
            fatal("--metrics-port: %s", err.c_str());
        cfg.telemetry.exporter = &exporter;
        cfg.telemetry.holdBeforeDrainMs = opt.metricsHoldMs;
        // Announce the resolved port up front (matters for
        // --metrics-port 0) so `secndp_report top` can attach.
        std::printf("metrics         serving "
                    "http://127.0.0.1:%u/metrics\n",
                    exporter.port());
        std::fflush(stdout);
    }

    // Run metadata for the sidecar (secndp_report refuses to diff
    // unlike runs).
    {
        auto &reg = StatRegistry::instance();
        reg.setMeta("tool", "secndp_loadgen");
        reg.setMeta("load_mode", opt.mode);
        reg.setMeta("exec_mode", opt.execMode);
        reg.setMeta("workload", opt.workload);
        reg.setMeta("model", opt.model);
        reg.setMeta("policy", opt.policy);
        char knobs[224];
        std::snprintf(knobs, sizeof(knobs),
                      "qps=%.0f conc=%u requests=%zu max_batch=%u "
                      "timeout_us=%.2f shards=%u workers=%u "
                      "queue_cap=%zu deadline_us=%.2f pool=%u pf=%u "
                      "zipf=%.2f seed=%llu",
                      opt.qps, opt.concurrency, opt.requests,
                      opt.maxBatch, opt.batchTimeoutUs, cfg.shards,
                      opt.workers, opt.queueCap, opt.deadlineUs,
                      opt.pool, opt.pf, opt.zipf,
                      static_cast<unsigned long long>(opt.seed));
        reg.setMeta("config", knobs);
        // The default generation adds no meta key: pre-refactor
        // golden baselines carry no "dram" entry and `report diff`
        // hard-fails on any meta asymmetry.
        if (opt.dram != "ddr4-2400")
            reg.setMeta("dram", opt.dram);
        // Only attack runs carry the inject keys, so clean-run
        // sidecars stay byte-identical to the pre-adversary baselines.
        if (cfg.faults.enabled()) {
            reg.setMeta("inject", faultSpecToString(cfg.faults));
            char rec[96];
            std::snprintf(rec, sizeof(rec),
                          "seed=%llu retry_max=%u backoff_us=%.2f "
                          "fallback=%d",
                          static_cast<unsigned long long>(
                              opt.injectSeed),
                          opt.retryMax, opt.retryBackoffUs,
                          opt.noFallback ? 0 : 1);
            reg.setMeta("recovery", rec);
        }
        // Only cache-armed runs carry the cache key, so cache-off
        // sidecars stay byte-identical to the pre-cache baselines.
        if (cfg.cache.enabled()) {
            char cm[96];
            std::snprintf(cm, sizeof(cm),
                          "mb=%.2f policy=%s shards=%u", opt.cacheMb,
                          cachePolicyName(cfg.cache.policy),
                          opt.cacheShards);
            reg.setMeta("cache", cm);
        }
        // Traced runs carry a trace key (no file paths: sidecars must
        // byte-compare across output directories); untraced runs have
        // no key at all, keeping them comparable to old baselines.
        if (tracing) {
            char tr[64];
            std::snprintf(tr, sizeof(tr), "on slo_us=%.2f",
                          opt.sloUs);
            reg.setMeta("trace", tr);
        }
        // Socket-mode runs carry a net key (never an address or a
        // port: sidecars must byte-compare across ephemeral binds).
        if (!opt.listen.empty()) {
            reg.setMeta("net", "listen");
        } else if (!opt.connect.empty()) {
            char nm[48];
            std::snprintf(nm, sizeof(nm), "connect conns=%u",
                          netConns);
            reg.setMeta("net", nm);
        }
        // Telemetry-armed runs carry their SLO parameters (never the
        // port: sidecars must byte-compare across ephemeral binds).
        if (telemetryOn) {
            char tm[96];
            std::snprintf(tm, sizeof(tm),
                          "on target_us=%.2f objective=%.4f",
                          sloTargetUs, opt.sloObjective);
            reg.setMeta("telemetry", tm);
        }
    }

    pending.statsJson = opt.statsJson;
    pending.timeseriesOut = opt.timeseriesOut;
    pending.traceRequests = opt.traceRequests;
    pending.armed = true;
    std::atexit(flushPendingOutputs);

    // --connect: socket-mode client. The workload pool, fault
    // injection, and batching all live on the server side; this
    // process only speaks the load model over the wire.
    if (!opt.connect.empty()) {
        const auto sep = opt.connect.rfind(':');
        if (sep == std::string::npos || sep == 0 ||
            sep + 1 == opt.connect.size())
            fatal("--connect expects HOST:PORT");
        const std::uint16_t portNum =
            parsePort(opt.connect.substr(sep + 1), "--connect");
        if (portNum == 0)
            fatal("--connect port must be in [1, 65535]");

        NetClientConfig ncfg;
        ncfg.host = opt.connect.substr(0, sep);
        ncfg.port = portNum;
        ncfg.mode = load.mode;
        ncfg.connections = netConns;
        ncfg.requests = opt.requests;
        ncfg.qps = opt.qps;
        ncfg.deadlineNs = load.deadlineNs;
        ncfg.seed = opt.seed;
        if (opt.netTimeoutS > 0)
            ncfg.timeoutS = opt.netTimeoutS;

        std::printf("connect         tcp://%s:%u (%u connection(s), "
                    "%s)\n",
                    ncfg.host.c_str(), static_cast<unsigned>(ncfg.port),
                    netConns,
                    load.mode == LoadMode::Open ? "open loop"
                                                : "closed loop");
        std::fflush(stdout);

        const NetClientReport crep = runNetClient(ncfg);

        if (!opt.statsJson.empty()) {
            pending.statsWritten = true;
            std::ofstream os(opt.statsJson);
            if (!os)
                fatal("cannot open --stats-json file '%s'",
                      opt.statsJson.c_str());
            StatRegistry::instance().dumpJson(os);
            std::printf("stats           %s\n", opt.statsJson.c_str());
        }

        std::printf("load            %s (%s)\n", opt.mode.c_str(),
                    load.mode == LoadMode::Open
                        ? "Poisson arrivals"
                        : "fixed concurrency");
        if (load.mode == LoadMode::Open)
            std::printf("target qps      %.0f\n", opt.qps);
        std::printf("requests        %llu offered, %llu completed, "
                    "%llu rejected, %llu aborted\n",
                    static_cast<unsigned long long>(crep.offered),
                    static_cast<unsigned long long>(crep.completed),
                    static_cast<unsigned long long>(crep.rejected),
                    static_cast<unsigned long long>(crep.aborted));
        std::printf("delivery        %llu lost, %llu duplicated\n",
                    static_cast<unsigned long long>(crep.lost),
                    static_cast<unsigned long long>(crep.duplicates));
        std::printf("latency         p50 %.0f ns, p95 %.0f ns, "
                    "p99 %.0f ns\n",
                    crep.p50LatencyNs, crep.p95LatencyNs,
                    crep.p99LatencyNs);
        std::printf("makespan        %.3f us\n",
                    crep.makespanNs / 1000.0);
        std::printf("sustained qps   %.0f\n", crep.sustainedQps);

        if (!crep.ok) {
            std::printf("FAILED: %s\n",
                        crep.error.empty()
                            ? "session did not complete cleanly"
                            : crep.error.c_str());
            return 3;
        }
        bool netFailed = false;
        if (crep.aborted > 0) {
            std::printf("FAILED: %llu request(s) aborted on the "
                        "server\n",
                        static_cast<unsigned long long>(crep.aborted));
            netFailed = true;
        }
        if (crep.rejected > 0 && !opt.allowShed) {
            std::printf("FAILED: %llu request(s) shed at admission "
                        "(pass --allow-shed to tolerate load "
                        "shedding)\n",
                        static_cast<unsigned long long>(crep.rejected));
            netFailed = true;
        }
        return netFailed ? 3 : 0;
    }

    // Build the request pool: `pool` distinct queries requests cycle
    // through round-robin.
    WorkloadTrace pool;
    if (!opt.loadTrace.empty()) {
        pool = loadTraceFile(opt.loadTrace);
    } else if (opt.workload == "sls") {
        SlsTraceConfig tc;
        tc.batch = opt.pool;
        tc.pf = opt.pf;
        tc.zipfAlpha = opt.zipf;
        tc.quant = parseQuant(opt.quant);
        tc.layout = layout;
        tc.seed = opt.seed;
        pool = buildSlsTrace(parseModel(opt.model), tc);
    } else if (opt.workload == "medical") {
        MedicalDbConfig db;
        db.pf = opt.pf;
        db.numQueries = opt.pool;
        db.seed = opt.seed;
        pool = buildMedicalTrace(db, layout);
    } else {
        usage(argv[0]);
    }

    if (!opt.timeseriesOut.empty())
        Sampler::instance().start(opt.sampleInterval);

    // --listen: serve one TCP session; the load model (mode,
    // request count, seed) arrives in the client's Hello, so the
    // local load flags are unused. Otherwise run in-process.
    const bool serverMode = !opt.listen.empty();
    ServeReport rep;
    NetServeReport nrep;
    if (serverMode) {
        NetServeConfig scfg;
        scfg.serve = cfg;
        std::string portStr = opt.listen;
        const auto sep = opt.listen.rfind(':');
        if (sep != std::string::npos) {
            if (sep == 0 || sep + 1 == opt.listen.size())
                fatal("--listen expects [ADDR:]PORT");
            scfg.bindAddr = opt.listen.substr(0, sep);
            portStr = opt.listen.substr(sep + 1);
        }
        scfg.port = parsePort(portStr, "--listen");
        if (opt.netTimeoutS > 0)
            scfg.idleTimeoutS = opt.netTimeoutS;
        listenAddr = scfg.bindAddr;
        nrep = runNetServe(scfg, pool, &printListenPort);
        rep = nrep.serve;
    } else {
        rep = runServe(cfg, load, pool);
    }

    if (!opt.timeseriesOut.empty()) {
        pending.timeseriesWritten = true;
        if (!Sampler::instance().writeCsv(opt.timeseriesOut)) {
            fatal("cannot write --timeseries-out file '%s'",
                  opt.timeseriesOut.c_str());
        }
        std::printf("timeseries      %s (%zu intervals x %zu series)\n",
                    opt.timeseriesOut.c_str(),
                    Sampler::instance().intervalCount(),
                    Sampler::instance().seriesNames().size());
        Sampler::instance().stop();
    }
    if (!opt.statsJson.empty()) {
        pending.statsWritten = true;
        std::ofstream os(opt.statsJson);
        if (!os)
            fatal("cannot open --stats-json file '%s'",
                  opt.statsJson.c_str());
        StatRegistry::instance().dumpJson(os);
        std::printf("stats           %s\n", opt.statsJson.c_str());
    }
#if SECNDP_TRACING
    if (tracing) {
        auto &rq = RequestTracer::instance();
        if (!opt.traceRequests.empty()) {
            pending.spansWritten = true;
            if (!rq.writeSpanLog(opt.traceRequests)) {
                fatal("cannot write --trace-requests file '%s'",
                      opt.traceRequests.c_str());
            }
            std::printf("spans           %s (%llu span(s), %llu "
                        "dropped from flight ring)\n",
                        opt.traceRequests.c_str(),
                        static_cast<unsigned long long>(
                            rq.spansRecorded()),
                        static_cast<unsigned long long>(
                            rq.droppedSpans()));
        }
        if (!opt.flightOut.empty()) {
            std::printf("flight          %s (%llu anomaly(ies), "
                        "%llu dump(s))\n",
                        opt.flightOut.c_str(),
                        static_cast<unsigned long long>(
                            rq.anomalyCount()),
                        static_cast<unsigned long long>(
                            rq.flightDumps()));
        }
    }
#endif

    if (serverMode) {
        // Session parameters come from the client's Hello, not the
        // local load flags.
        std::printf("load            tcp session (%s, %u "
                    "connection(s), seed %llu)\n",
                    nrep.mode == LoadMode::Open ? "open loop"
                                                : "closed loop",
                    nrep.connections,
                    static_cast<unsigned long long>(nrep.seed));
    } else {
        std::printf("load            %s (%s)\n", opt.mode.c_str(),
                    load.mode == LoadMode::Open ? "Poisson arrivals"
                                                : "fixed concurrency");
        if (load.mode == LoadMode::Open)
            std::printf("target qps      %.0f\n", opt.qps);
        else
            std::printf("concurrency     %u\n", opt.concurrency);
    }
    std::printf("serving         mode=%s policy=%s max_batch=%u "
                "timeout=%.1fus shards=%u workers=%u\n",
                execModeName(cfg.mode), queuePolicyName(cfg.policy),
                opt.maxBatch, opt.batchTimeoutUs, cfg.shards,
                opt.workers);
    if (cfg.cache.enabled()) {
        std::printf("pad cache       %.2f MiB, policy=%s, %u "
                    "shard(s)\n",
                    opt.cacheMb, cachePolicyName(cfg.cache.policy),
                    opt.cacheShards);
    }
    std::printf("pool            %zu queries (%s)\n",
                pool.queries.size(), opt.workload.c_str());
    std::printf("requests        %zu offered, %zu admitted, %zu "
                "rejected, %zu completed\n",
                rep.offered, rep.admitted, rep.rejected,
                rep.completed);
    if (cfg.faults.enabled()) {
        std::printf("integrity       %llu faults injected, %llu "
                    "tamper detections\n",
                    static_cast<unsigned long long>(rep.faultsInjected),
                    static_cast<unsigned long long>(
                        rep.tamperDetected));
        std::printf("recovery        %llu by retry, %llu by host "
                    "fallback, %zu aborted\n",
                    static_cast<unsigned long long>(rep.recoveredRetry),
                    static_cast<unsigned long long>(
                        rep.recoveredFallback),
                    rep.aborted);
    }
    std::printf("batches         %llu (mean occupancy %.2f)\n",
                static_cast<unsigned long long>(rep.batches),
                rep.batches
                    ? static_cast<double>(rep.completed) / rep.batches
                    : 0.0);
    std::printf("latency         p50 %.0f ns, p95 %.0f ns, p99 %.0f "
                "ns\n",
                rep.p50LatencyNs, rep.p95LatencyNs, rep.p99LatencyNs);
    if (serverMode) {
        // Deadlines are client-stamped per query in socket mode.
        if (rep.deadlineMisses > 0)
            std::printf("deadline        %llu misses\n",
                        static_cast<unsigned long long>(
                            rep.deadlineMisses));
    } else if (load.deadlineNs > 0) {
        std::printf("deadline        %.1f us, %llu misses\n",
                    opt.deadlineUs,
                    static_cast<unsigned long long>(
                        rep.deadlineMisses));
    }
    std::printf("makespan        %.3f us\n", rep.makespanNs / 1000.0);
    std::printf("sustained qps   %.0f\n", rep.sustainedQps);
    if (slo) {
        const auto lat = slo->latencyBurn();
        const auto avail = slo->availabilityBurn();
        std::printf("slo             target %.1f us @ %.4f, burn "
                    "fast %.2f / slow %.2f (avail %.2f / %.2f)\n",
                    sloTargetUs, opt.sloObjective, lat.fast, lat.slow,
                    avail.fast, avail.slow);
    }
    if (exporter.running()) {
        std::printf("metrics         http://127.0.0.1:%u/metrics "
                    "(%llu scrape(s))\n",
                    exporter.port(),
                    static_cast<unsigned long long>(
                        exporter.scrapes()));
        if (opt.metricsLingerS > 0) {
            std::printf("metrics linger  %.1f s (final snapshot, "
                        "/readyz 503)\n",
                        opt.metricsLingerS);
            std::fflush(stdout);
            std::this_thread::sleep_for(
                std::chrono::duration<double>(opt.metricsLingerS));
        }
        exporter.stop();
    }

    // Scriptable failure semantics: any terminal shed/abort state is
    // a hard failure unless explicitly tolerated. Attack runs can
    // assert availability by exit code alone.
    bool failed = false;
    if (serverMode && !nrep.ok) {
        std::printf("FAILED: tcp session -- %s\n",
                    nrep.error.empty()
                        ? "session did not complete cleanly"
                        : nrep.error.c_str());
        failed = true;
    }
    if (rep.aborted > 0) {
        std::printf("FAILED: %zu request(s) aborted -- verification "
                    "never passed and host fallback was unavailable\n",
                    rep.aborted);
        failed = true;
    }
    if (rep.rejected > 0 && !opt.allowShed) {
        std::printf("FAILED: %zu request(s) shed at admission "
                    "(pass --allow-shed to tolerate load shedding)\n",
                    rep.rejected);
        failed = true;
    }
    if (failed)
        return 3;
    if (opt.sloGate && slo && slo->gateFailed()) {
        std::printf("FAILED: SLO gate -- cumulative error rate "
                    "exceeded the %.4f objective "
                    "(%llu/%llu over target, %llu availability "
                    "error(s))\n",
                    opt.sloObjective,
                    static_cast<unsigned long long>(
                        slo->totalLatencyViolations()),
                    static_cast<unsigned long long>(
                        slo->totalRequests()),
                    static_cast<unsigned long long>(
                        slo->totalAvailabilityErrors()));
        return 1;
    }
    return 0;
}
